#!/usr/bin/env bash
# clang-format dry-run over the repo's C++ sources. Exits nonzero if any
# file would be reformatted; prints the offending files. Skips (exit 0,
# with a notice) when clang-format is not installed so the check never
# blocks environments without it.
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (install it to enable)"
  exit 0
fi

mapfile -t files < <(find src tests bench examples -name '*.hpp' -o -name '*.cpp' | sort)

status=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_format: ${#files[@]} files clean"
fi
exit "$status"
