// Property sweep for the feature-width-specialized kernels: every
// specialized width (16/32/64/128) AND the generic runtime-f fallback must
// be bitwise equal to the serial *_reference twins — across feature widths
// straddling the dispatch table, degenerate row counts, empty rows, dense
// rows, all-zero matrices, and thread counts {1, 2, 8}. Matrix::operator==
// is exact element equality — no tolerance anywhere in this file.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/width_dispatch.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { set_parallel_threads(0); }
};

const int kThreadCounts[] = {1, 2, 8};

/// Reports which instantiation the dispatch table picked.
template <int F>
struct ProbeKernel {
  static int run() { return F; }
};

// f = 1/3/7 take the generic path; 16/64/128 hit dedicated instantiations
// (32 is covered by GemmWidthSweep's k axis below).
const vid_t kWidths[] = {1, 3, 7, 16, 64, 128};
const vid_t kRowCounts[] = {1, 2, 1000};

CsrMatrix random_csr(vid_t n_rows, vid_t n_cols, eid_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n_rows, n_cols);
  for (eid_t i = 0; i < nnz; ++i) {
    coo.add(static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_rows))),
            static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_cols))),
            rng.uniform(-2, 2));
  }
  return CsrMatrix::from_coo(coo);
}

/// A matrix stressing row-shape extremes: row 0 fully dense, a block of
/// structurally empty rows in the middle, sparse tail.
CsrMatrix ragged_csr(vid_t n_rows, vid_t n_cols, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n_rows, n_cols);
  for (vid_t c = 0; c < n_cols; ++c) coo.add(0, c, rng.uniform(-2, 2));
  // Rows in [1, n_rows/2) stay empty; the rest get a couple of entries.
  for (vid_t r = n_rows / 2; r < n_rows; ++r) {
    for (int d = 0; d < 2; ++d) {
      coo.add(r, static_cast<vid_t>(rng.next_below(
                     static_cast<std::uint64_t>(n_cols))),
              rng.uniform(-2, 2));
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(SpecializedKernels, DispatchTableRoutesEveryWidth) {
  // The probe kernel just reports which instantiation it is — a direct
  // unit test of the single dispatch point.
  for (const int w : kSpecializedWidths) {
    EXPECT_EQ(select_by_width<ProbeKernel>(w)(), w) << "width " << w;
  }
  for (const vid_t w : {vid_t{1}, vid_t{3}, vid_t{7}, vid_t{17}, vid_t{129}}) {
    EXPECT_EQ(select_by_width<ProbeKernel>(w)(), kDynamicWidth)
        << "width " << w;
  }
}

TEST(SpecializedKernels, SpmmWidthSweepBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(71);
  for (const vid_t n : kRowCounts) {
    const vid_t cols = n == 1 ? 40 : n / 2 + 8;
    const CsrMatrix a =
        random_csr(n, cols, static_cast<eid_t>(n) * 4 + 16, 1000 + n);
    for (const vid_t f : kWidths) {
      const Matrix h = Matrix::random_uniform(cols, f, rng);
      Matrix want(n, f);
      spmm_accumulate_reference(a, h, want);
      for (int t : kThreadCounts) {
        set_parallel_threads(t);
        Matrix got(n, f);
        spmm_accumulate(a, h, got);
        EXPECT_TRUE(got == want) << "n=" << n << " f=" << f << " threads=" << t;
      }
    }
  }
}

TEST(SpecializedKernels, SpmmEmptyAndDenseRows) {
  ThreadCountGuard guard;
  Rng rng(72);
  const CsrMatrix a = ragged_csr(64, 33, 73);
  for (const vid_t f : kWidths) {
    const Matrix h = Matrix::random_uniform(33, f, rng);
    Matrix want(64, f);
    spmm_accumulate_reference(a, h, want);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got(64, f);
      spmm_accumulate(a, h, got);
      EXPECT_TRUE(got == want) << "f=" << f << " threads=" << t;
    }
  }
}

TEST(SpecializedKernels, SpmmZeroNnzLeavesOutputUntouched) {
  ThreadCountGuard guard;
  Rng rng(73);
  const CsrMatrix a = CsrMatrix::from_coo(CooMatrix(50, 20));
  ASSERT_EQ(a.nnz(), 0);
  for (const vid_t f : {vid_t{16}, vid_t{7}}) {
    const Matrix h = Matrix::random_uniform(20, f, rng);
    // Accumulate into a non-zero z: an all-empty matrix must not write.
    Matrix want = Matrix::random_uniform(50, f, rng);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got = want;
      spmm_accumulate(a, h, got);
      EXPECT_TRUE(got == want) << "f=" << f << " threads=" << t;
    }
  }
}

TEST(SpecializedKernels, GemmWidthSweepBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(74);
  // The output width k is the templated axis of gemm_accumulate; sweep it
  // through every specialized width plus generic odd ones, with the inner
  // dimension crossing the kTileP=48 boundary.
  for (const vid_t m : kRowCounts) {
    for (const vid_t k : {vid_t{1}, vid_t{7}, vid_t{16}, vid_t{32}, vid_t{64},
                          vid_t{128}}) {
      const vid_t inner = 49;
      const Matrix a = Matrix::random_uniform(m, inner, rng);
      const Matrix b = Matrix::random_uniform(inner, k, rng);
      Matrix want(m, k);
      gemm_accumulate_reference(a, b, want);
      for (int t : kThreadCounts) {
        set_parallel_threads(t);
        Matrix got(m, k);
        gemm_accumulate(a, b, got);
        EXPECT_TRUE(got == want) << "m=" << m << " k=" << k << " threads=" << t;
      }
    }
  }
}

TEST(SpecializedKernels, GemmAtBWidthSweepBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(75);
  // k (b's width) is the templated axis; m crosses the kTileP boundary.
  for (const vid_t k : kWidths) {
    const Matrix a = Matrix::random_uniform(97, 33, rng);
    const Matrix b = Matrix::random_uniform(97, k, rng);
    const Matrix want = gemm_at_b_reference(a, b);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      EXPECT_TRUE(gemm_at_b(a, b) == want) << "k=" << k << " threads=" << t;
    }
  }
}

TEST(SpecializedKernels, GemmABtWidthSweepBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(76);
  // n (the shared inner width) is the templated axis of gemm_a_bt.
  for (const vid_t n : kWidths) {
    const Matrix a = Matrix::random_uniform(130, n, rng);
    const Matrix b = Matrix::random_uniform(67, n, rng);
    const Matrix want = gemm_a_bt_reference(a, b);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      EXPECT_TRUE(gemm_a_bt(a, b) == want) << "n=" << n << " threads=" << t;
    }
  }
}

}  // namespace
}  // namespace sagnn
