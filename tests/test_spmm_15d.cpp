// Distributed 1.5D SpMM (Algorithm 2): grid layout, correctness against
// serial SpMM across (p, c) combinations and both modes, replication
// consistency, and the c=1 degeneration.
#include <gtest/gtest.h>

#include "dist/spmm_15d.hpp"
#include "graph/generators.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

TEST(GridLayout, ShapeAndIndexing) {
  const GridLayout g = GridLayout::make(8, 2);
  EXPECT_EQ(g.rows, 4);
  EXPECT_EQ(g.s, 2);
  EXPECT_EQ(g.grid_row(5), 2);
  EXPECT_EQ(g.grid_col(5), 1);
  EXPECT_EQ(g.rank_of(2, 1), 5);
}

TEST(GridLayout, RejectsIndivisible) {
  EXPECT_THROW(GridLayout::make(6, 2), Error);  // c^2=4 does not divide 6
  EXPECT_THROW(GridLayout::make(8, 0), Error);
}

struct Case15 {
  vid_t n;
  eid_t m;
  vid_t f;
  int p;
  int c;
  SpmmMode mode;
};

Matrix run_dist_15d(const CsrMatrix& a, const Matrix& h, int p, int c,
                    SpmmMode mode, TrafficRecorder* traffic_out = nullptr) {
  const int rows = p / c;
  const auto ranges = uniform_block_ranges(a.n_rows(), rows);
  Matrix result(a.n_rows(), h.n_cols());
  std::vector<Matrix> replicas(static_cast<std::size_t>(p));
  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm15d spmm_dist(comm, a, ranges, c, mode);
    const BlockRange r = spmm_dist.my_range();
    const Matrix h_local = h.slice_rows(r.begin, r.end);
    const Matrix z_local = spmm_dist.multiply(h_local);
    replicas[static_cast<std::size_t>(comm.rank())] = z_local;
    if (spmm_dist.layout().grid_col(comm.rank()) == 0) {
      for (vid_t i = 0; i < z_local.n_rows(); ++i) {
        std::copy(z_local.row(i), z_local.row(i) + z_local.n_cols(),
                  result.row(r.begin + i));
      }
    }
  });
  // Replication consistency: all ranks in a process row hold identical Z.
  const GridLayout g = GridLayout::make(p, c);
  for (int rank = 0; rank < p; ++rank) {
    const int row0 = g.rank_of(g.grid_row(rank), 0);
    EXPECT_EQ(replicas[static_cast<std::size_t>(rank)].max_abs_diff(
                  replicas[static_cast<std::size_t>(row0)]),
              0.0)
        << "rank " << rank << " disagrees with its process row";
  }
  if (traffic_out != nullptr) *traffic_out = cluster.traffic();
  return result;
}

class Spmm15dMatchesSerial : public ::testing::TestWithParam<Case15> {};

TEST_P(Spmm15dMatchesSerial, Agrees) {
  const Case15 c = GetParam();
  Rng rng(c.n + c.p * 31 + c.c);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(c.n, c.m, rng));
  const Matrix h = Matrix::random_uniform(c.n, c.f, rng);
  const Matrix z = run_dist_15d(a, h, c.p, c.c, c.mode);
  EXPECT_LT(z.max_abs_diff(spmm(a, h)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Spmm15dMatchesSerial,
    ::testing::Values(Case15{64, 400, 4, 4, 1, SpmmMode::kOblivious},
                      Case15{64, 400, 4, 4, 1, SpmmMode::kSparsityAware},
                      Case15{64, 400, 4, 4, 2, SpmmMode::kOblivious},
                      Case15{64, 400, 4, 4, 2, SpmmMode::kSparsityAware},
                      Case15{96, 800, 8, 8, 2, SpmmMode::kOblivious},
                      Case15{96, 800, 8, 8, 2, SpmmMode::kSparsityAware},
                      Case15{96, 800, 6, 16, 4, SpmmMode::kOblivious},
                      Case15{96, 800, 6, 16, 4, SpmmMode::kSparsityAware},
                      Case15{50, 300, 3, 9, 3, SpmmMode::kSparsityAware},
                      Case15{128, 1200, 8, 16, 2, SpmmMode::kSparsityAware}));

TEST(Spmm15d, C1MatchesP2PVolumeOf1D) {
  // With c=1 the 1.5D algorithm degenerates to a 1D decomposition; the
  // sparsity-aware row-exchange volume must equal the 1D prediction.
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(60, 400, rng));
  const Matrix h = Matrix::random_uniform(60, 4, rng);
  TrafficRecorder traffic(1);
  run_dist_15d(a, h, 4, 1, SpmmMode::kSparsityAware, &traffic);
  const auto ranges = uniform_block_ranges(60, 4);
  std::uint64_t predicted = 0;
  for (int r = 0; r < 4; ++r) {
    predicted += DistCsr(a, ranges, r).total_needed_rows_remote();
  }
  predicted *= 4 * sizeof(real_t);
  EXPECT_EQ(traffic.phase("alltoall").total_bytes(), predicted);
}

TEST(Spmm15d, ReplicationReducesRowExchangeVolume) {
  // Increasing c reduces the number of off-diagonal blocks each rank must
  // fetch rows for (at the price of the all-reduce) — the 1.5D tradeoff.
  Rng rng(4);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(128, 2000, rng));
  const Matrix h = Matrix::random_uniform(128, 8, rng);
  TrafficRecorder t1(1), t2(1);
  run_dist_15d(a, h, 16, 1, SpmmMode::kSparsityAware, &t1);
  run_dist_15d(a, h, 16, 2, SpmmMode::kSparsityAware, &t2);
  EXPECT_LT(t2.phase("alltoall").total_bytes(), t1.phase("alltoall").total_bytes());
  EXPECT_GT(t2.phase("allreduce").total_bytes(), t1.phase("allreduce").total_bytes());
}

TEST(Spmm15d, ObliviousBcastVolumeIndependentOfSparsity) {
  // The oblivious algorithm moves the same bytes for a dense-ish and a
  // nearly-diagonal graph of equal size; the sparsity-aware one does not.
  const vid_t n = 64;
  Rng rng(5);
  const CsrMatrix dense_g = CsrMatrix::from_coo(erdos_renyi(n, 1200, rng));
  CooMatrix diag(n, n);
  for (vid_t v = 0; v + 1 < n; v += 2) diag.add(v, v + 1, 1.0f);
  diag.symmetrize();
  const CsrMatrix sparse_g = CsrMatrix::from_coo(diag);
  const Matrix h = Matrix::random_uniform(n, 4, rng);

  TrafficRecorder obl_dense(1), obl_sparse(1), sa_dense(1), sa_sparse(1);
  run_dist_15d(dense_g, h, 8, 2, SpmmMode::kOblivious, &obl_dense);
  run_dist_15d(sparse_g, h, 8, 2, SpmmMode::kOblivious, &obl_sparse);
  run_dist_15d(dense_g, h, 8, 2, SpmmMode::kSparsityAware, &sa_dense);
  run_dist_15d(sparse_g, h, 8, 2, SpmmMode::kSparsityAware, &sa_sparse);

  EXPECT_EQ(obl_dense.phase("bcast").total_bytes(),
            obl_sparse.phase("bcast").total_bytes());
  EXPECT_LT(sa_sparse.phase("alltoall").total_bytes(),
            sa_dense.phase("alltoall").total_bytes());
}

TEST(Spmm15d, RepeatedMultipliesStayCorrect) {
  Rng rng(6);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(48, 300, rng));
  const auto ranges = uniform_block_ranges(48, 4);
  Matrix h = Matrix::random_uniform(48, 3, rng);
  Matrix expected = h;
  for (int i = 0; i < 3; ++i) expected = spmm(a, expected);

  Matrix result(48, 3);
  Cluster cluster(8);
  cluster.run([&](Comm& comm) {
    DistSpmm15d spmm_dist(comm, a, ranges, 2, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    Matrix h_local = h.slice_rows(r.begin, r.end);
    for (int i = 0; i < 3; ++i) h_local = spmm_dist.multiply(h_local);
    if (spmm_dist.layout().grid_col(comm.rank()) == 0) {
      for (vid_t i = 0; i < h_local.n_rows(); ++i) {
        std::copy(h_local.row(i), h_local.row(i) + 3, result.row(r.begin + i));
      }
    }
  });
  EXPECT_LT(result.max_abs_diff(expected), 1e-3);
}

}  // namespace
}  // namespace sagnn
