// Dataset recipe tests: shapes, GCN normalization, learnability inputs,
// and the structural contrasts the paper's evaluation depends on.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace sagnn {
namespace {

void expect_well_formed(const Dataset& ds) {
  const vid_t n = ds.n_vertices();
  EXPECT_GT(n, 0);
  EXPECT_EQ(ds.adjacency.n_cols(), n);
  EXPECT_EQ(ds.features.n_rows(), n);
  EXPECT_EQ(ds.labels.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(ds.train_mask.size(), static_cast<std::size_t>(n));
  for (vid_t l : ds.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, ds.n_classes);
  }
  // Â has self loops: every diagonal entry present and positive.
  for (vid_t v = 0; v < n; ++v) EXPECT_GT(ds.adjacency.at(v, v), 0.0f);
  // Symmetric.
  EXPECT_EQ(ds.adjacency.nnz(), ds.adjacency.transpose().nnz());
  // Some training vertices.
  EXPECT_GT(std::count(ds.train_mask.begin(), ds.train_mask.end(), 1), 0);
}

TEST(Datasets, AllTinyRecipesWellFormed) {
  for (const char* name : {"reddit", "amazon", "protein", "papers"}) {
    SCOPED_TRACE(name);
    expect_well_formed(make_dataset(name, DatasetScale::kTiny));
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("imagenet", DatasetScale::kTiny), Error);
}

TEST(Datasets, Deterministic) {
  const Dataset a = make_reddit_sim(DatasetScale::kTiny, 9);
  const Dataset b = make_reddit_sim(DatasetScale::kTiny, 9);
  EXPECT_EQ(a.adjacency, b.adjacency);
  EXPECT_EQ(a.features.max_abs_diff(b.features), 0.0);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Datasets, SeedChangesGraph) {
  const Dataset a = make_amazon_sim(DatasetScale::kTiny, 1);
  const Dataset b = make_amazon_sim(DatasetScale::kTiny, 2);
  EXPECT_NE(a.adjacency, b.adjacency);
}

TEST(Datasets, RedditIsDenserThanAmazon) {
  // Table 3 contrast: Reddit is the dense graph, Amazon the sparse one.
  const Dataset reddit = make_reddit_sim(DatasetScale::kSmall);
  const Dataset amazon = make_amazon_sim(DatasetScale::kSmall);
  const double reddit_deg =
      static_cast<double>(reddit.n_edges()) / reddit.n_vertices();
  const double amazon_deg =
      static_cast<double>(amazon.n_edges()) / amazon.n_vertices();
  EXPECT_GT(reddit_deg, 2.0 * amazon_deg);
}

TEST(Datasets, PapersIsLargest) {
  const Dataset papers = make_papers_sim(DatasetScale::kSmall);
  const Dataset reddit = make_reddit_sim(DatasetScale::kSmall);
  const Dataset protein = make_protein_sim(DatasetScale::kSmall);
  EXPECT_GE(papers.n_vertices(), reddit.n_vertices());
  EXPECT_GE(papers.n_vertices(), protein.n_vertices());
}

TEST(Datasets, NormalizationBoundsSpectralMass) {
  // All values of Â lie in (0, 1] after D^{-1/2}(A+I)D^{-1/2}.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  for (real_t v : ds.adjacency.vals()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Datasets, FeaturesCorrelateWithLabels) {
  // The synthetic features embed the class id, so same-class vertices are
  // closer in feature space than cross-class ones on average.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  double same = 0, cross = 0;
  int n_same = 0, n_cross = 0;
  const vid_t n = std::min<vid_t>(ds.n_vertices(), 128);
  for (vid_t a = 0; a < n; ++a) {
    for (vid_t b = a + 1; b < n; ++b) {
      double d2 = 0;
      for (vid_t j = 0; j < ds.n_features(); ++j) {
        const double d = ds.features(a, j) - ds.features(b, j);
        d2 += d * d;
      }
      if (ds.labels[a] == ds.labels[b]) {
        same += d2;
        ++n_same;
      } else {
        cross += d2;
        ++n_cross;
      }
    }
  }
  ASSERT_GT(n_same, 0);
  ASSERT_GT(n_cross, 0);
  EXPECT_LT(same / n_same, cross / n_cross);
}

TEST(Datasets, AssembleFromCustomGraph) {
  Rng rng(3);
  CooMatrix adj = erdos_renyi(100, 400, rng);
  std::vector<vid_t> communities(100);
  for (vid_t v = 0; v < 100; ++v) communities[static_cast<std::size_t>(v)] = v / 25;
  const Dataset ds = assemble_dataset("custom", std::move(adj), 8, 4, 7, &communities);
  expect_well_formed(ds);
  EXPECT_EQ(ds.labels[0], 0);
  EXPECT_EQ(ds.labels[99], 3);
}

}  // namespace
}  // namespace sagnn
