// COO container tests: coalescing, symmetrization, diagonal manipulation.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"

namespace sagnn {
namespace {

TEST(Coo, AddAndCount) {
  CooMatrix m(3, 4);
  m.add(0, 1, 1.0f);
  m.add(2, 3, 2.0f);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.n_rows(), 3);
  EXPECT_EQ(m.n_cols(), 4);
}

TEST(Coo, AddOutOfRangeThrows) {
  CooMatrix m(2, 2);
  EXPECT_THROW(m.add(2, 0, 1.0f), Error);
  EXPECT_THROW(m.add(0, -1, 1.0f), Error);
}

TEST(Coo, CoalesceSumsDuplicates) {
  CooMatrix m(2, 2);
  m.add(0, 1, 1.0f);
  m.add(0, 1, 2.5f);
  m.add(1, 0, 1.0f);
  m.coalesce();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.entries()[0].val, 3.5f);
}

TEST(Coo, CoalesceSortsRowMajor) {
  CooMatrix m(3, 3);
  m.add(2, 0, 1.0f);
  m.add(0, 2, 1.0f);
  m.add(0, 0, 1.0f);
  m.coalesce();
  EXPECT_EQ(m.entries()[0].row, 0);
  EXPECT_EQ(m.entries()[0].col, 0);
  EXPECT_EQ(m.entries()[1].col, 2);
  EXPECT_EQ(m.entries()[2].row, 2);
}

TEST(Coo, SymmetrizeMirrorsEntries) {
  CooMatrix m(3, 3);
  m.add(0, 1, 2.0f);
  m.add(1, 2, 3.0f);
  m.symmetrize();
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(Coo, SymmetrizeKeepsDiagonal) {
  CooMatrix m(2, 2);
  m.add(0, 0, 5.0f);
  m.add(0, 1, 1.0f);
  m.symmetrize();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(Coo, SymmetrizeRequiresSquare) {
  CooMatrix m(2, 3);
  EXPECT_THROW(m.symmetrize(), Error);
}

TEST(Coo, DropDiagonal) {
  CooMatrix m(3, 3);
  m.add(0, 0, 1.0f);
  m.add(1, 1, 1.0f);
  m.add(0, 1, 1.0f);
  m.drop_diagonal();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.entries()[0].col, 1);
}

TEST(Coo, AddIdentity) {
  CooMatrix m(3, 3);
  m.add(0, 1, 1.0f);
  m.add_identity(2.0f);
  EXPECT_EQ(m.nnz(), 4);
  // Entry (1,1) must exist with value 2.
  bool found = false;
  for (const auto& e : m.entries()) {
    if (e.row == 1 && e.col == 1) {
      found = true;
      EXPECT_FLOAT_EQ(e.val, 2.0f);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Coo, AddIdentitySumsWithExistingDiagonal) {
  CooMatrix m(2, 2);
  m.add(0, 0, 1.0f);
  m.add_identity(1.0f);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.entries()[0].val, 2.0f);
}

TEST(Coo, IsSymmetricDetectsAsymmetry) {
  CooMatrix m(2, 2);
  m.add(0, 1, 1.0f);
  EXPECT_FALSE(m.is_symmetric());
  m.add(1, 0, 2.0f);  // wrong value
  EXPECT_FALSE(m.is_symmetric());
}

}  // namespace
}  // namespace sagnn
