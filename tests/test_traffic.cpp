// Traffic recorder accounting: per-pair counters, summaries, imbalance.
#include <gtest/gtest.h>

#include "simcomm/traffic.hpp"

namespace sagnn {
namespace {

TEST(Traffic, RecordsBytesAndMessages) {
  TrafficRecorder rec(3);
  rec.record("x", 0, 1, 100);
  rec.record("x", 0, 1, 50);
  rec.record("x", 2, 0, 7);
  const PhaseTraffic t = rec.phase("x");
  EXPECT_EQ(t.bytes_between(0, 1), 150u);
  EXPECT_EQ(t.bytes_between(2, 0), 7u);
  EXPECT_EQ(t.total_bytes(), 157u);
  EXPECT_EQ(t.total_msgs(), 3u);
}

TEST(Traffic, SelfMessagesExcludedFromSummaries) {
  TrafficRecorder rec(2);
  rec.record("x", 0, 0, 1000);
  rec.record("x", 0, 1, 10);
  const PhaseTraffic t = rec.phase("x");
  EXPECT_EQ(t.total_bytes(), 10u);
  EXPECT_EQ(t.send_bytes(0), 10u);
  EXPECT_EQ(t.recv_bytes(0), 0u);
  // But the raw counter still holds the self traffic.
  EXPECT_EQ(t.bytes_between(0, 0), 1000u);
}

TEST(Traffic, SendRecvRowColumnSums) {
  TrafficRecorder rec(3);
  rec.record("x", 0, 1, 5);
  rec.record("x", 0, 2, 7);
  rec.record("x", 1, 2, 11);
  const PhaseTraffic t = rec.phase("x");
  EXPECT_EQ(t.send_bytes(0), 12u);
  EXPECT_EQ(t.send_bytes(1), 11u);
  EXPECT_EQ(t.recv_bytes(2), 18u);
  EXPECT_EQ(t.max_send_bytes(), 12u);
}

TEST(Traffic, ImbalancePercent) {
  TrafficRecorder rec(2);
  rec.record("x", 0, 1, 300);
  rec.record("x", 1, 0, 100);
  const PhaseTraffic t = rec.phase("x");
  // avg send = 200, max = 300 -> 50% imbalance.
  EXPECT_NEAR(t.send_imbalance_percent(), 50.0, 1e-9);
}

TEST(Traffic, UnknownPhaseIsZero) {
  TrafficRecorder rec(4);
  const PhaseTraffic t = rec.phase("nope");
  EXPECT_EQ(t.total_bytes(), 0u);
  EXPECT_EQ(t.p, 4);
}

TEST(Traffic, TotalAcrossPhasesWithExclusion) {
  TrafficRecorder rec(2);
  rec.record("a", 0, 1, 10);
  rec.record("b", 0, 1, 20);
  rec.record("sync", 0, 1, 999);
  EXPECT_EQ(rec.total().total_bytes(), 1029u);
  EXPECT_EQ(rec.total({"sync"}).total_bytes(), 30u);
}

TEST(Traffic, PhaseNamesAndReset) {
  TrafficRecorder rec(2);
  rec.record("a", 0, 1, 1);
  rec.record("b", 1, 0, 1);
  EXPECT_EQ(rec.phase_names().size(), 2u);
  rec.reset();
  EXPECT_TRUE(rec.phase_names().empty());
  EXPECT_EQ(rec.phase("a").total_bytes(), 0u);
}

TEST(Traffic, StagePhaseNamesRoundTrip) {
  EXPECT_EQ(TrafficRecorder::stage_phase("alltoall", 3), "alltoall#3");
  EXPECT_EQ(TrafficRecorder::base_name("alltoall#3"), "alltoall");
  EXPECT_EQ(TrafficRecorder::base_name("alltoall"), "alltoall");
  EXPECT_EQ(TrafficRecorder::base_name("index_exchange"), "index_exchange");
}

TEST(Traffic, ChunkTagsAggregateByBaseName) {
  TrafficRecorder rec(2);
  rec.record(TrafficRecorder::stage_phase("alltoall", 0), 0, 1, 10);
  rec.record(TrafficRecorder::stage_phase("alltoall", 1), 0, 1, 20);
  rec.record(TrafficRecorder::stage_phase("alltoall", 1), 1, 0, 5);
  rec.record("bcast", 0, 1, 7);

  EXPECT_EQ(rec.stage_count("alltoall"), 2);
  EXPECT_EQ(rec.stage_count("bcast"), 1);  // untagged = one stage
  EXPECT_EQ(rec.stage_count("nope"), 0);

  const PhaseTraffic total = rec.phase_total("alltoall");
  EXPECT_EQ(total.total_bytes(), 35u);
  EXPECT_EQ(total.total_msgs(), 3u);
  EXPECT_EQ(total.bytes_between(0, 1), 30u);

  // Individual stages stay separately addressable, and untagged phases
  // read the same through phase() and phase_total().
  EXPECT_EQ(rec.phase("alltoall#0").total_bytes(), 10u);
  EXPECT_EQ(rec.phase("alltoall#1").total_bytes(), 25u);
  EXPECT_EQ(rec.phase("alltoall").total_bytes(), 0u);  // no untagged traffic
  EXPECT_EQ(rec.phase_total("bcast").total_bytes(), 7u);
}

TEST(Traffic, CopyIsSnapshot) {
  TrafficRecorder rec(2);
  rec.record("a", 0, 1, 5);
  TrafficRecorder copy = rec;
  rec.record("a", 0, 1, 5);
  EXPECT_EQ(copy.phase("a").total_bytes(), 5u);
  EXPECT_EQ(rec.phase("a").total_bytes(), 10u);
}

}  // namespace
}  // namespace sagnn
