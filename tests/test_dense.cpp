// Dense matrix container and GEMM kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dense/gemm.hpp"
#include "dense/matrix.hpp"

namespace sagnn {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  for (vid_t r = 0; r < 3; ++r) {
    for (vid_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(m(r, c), 0.0f);
  }
}

TEST(Matrix, FromDataValidatesSize) {
  EXPECT_THROW(Matrix(2, 2, {1.0f, 2.0f, 3.0f}), Error);
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(m(1, 0), 3.0f);
}

TEST(Matrix, IdentityDiagonal) {
  const Matrix eye = Matrix::identity(3);
  for (vid_t r = 0; r < 3; ++r) {
    for (vid_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(eye(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(Matrix, GlorotWithinLimit) {
  Rng rng(1);
  const Matrix w = Matrix::glorot(64, 16, rng);
  const real_t limit = std::sqrt(6.0f / (64 + 16));
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_LE(std::abs(w.data()[i]), limit);
  }
}

TEST(Matrix, SliceRows) {
  Matrix m(4, 2, {0, 1, 2, 3, 4, 5, 6, 7});
  const Matrix s = m.slice_rows(1, 3);
  EXPECT_EQ(s.n_rows(), 2);
  EXPECT_FLOAT_EQ(s(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s(1, 1), 5.0f);
  EXPECT_THROW(m.slice_rows(3, 5), Error);
}

TEST(Matrix, GatherScatterRoundTrip) {
  Rng rng(2);
  Matrix m = Matrix::random_uniform(8, 3, rng);
  const std::vector<vid_t> rows{6, 1, 3};
  const Matrix g = m.gather_rows(rows);
  EXPECT_EQ(g.n_rows(), 3);
  EXPECT_FLOAT_EQ(g(0, 0), m(6, 0));
  EXPECT_FLOAT_EQ(g(1, 2), m(1, 2));
  Matrix m2(8, 3);
  m2.scatter_rows(rows, g);
  EXPECT_FLOAT_EQ(m2(6, 1), m(6, 1));
  EXPECT_FLOAT_EQ(m2(3, 2), m(3, 2));
  EXPECT_FLOAT_EQ(m2(0, 0), 0.0f);
}

TEST(Matrix, GatherOutOfRangeThrows) {
  Matrix m(2, 2);
  const std::vector<vid_t> bad{0, 5};
  EXPECT_THROW(m.gather_rows(bad), Error);
}

TEST(Matrix, Distances) {
  Matrix a(1, 2, {0, 3});
  Matrix b(1, 2, {4, 3});
  EXPECT_DOUBLE_EQ(a.frobenius_distance(b), 4.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 4.0);
}

TEST(Gemm, KnownSmallProduct) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = gemm(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(3);
  const Matrix a = Matrix::random_uniform(5, 5, rng);
  EXPECT_EQ(gemm(a, Matrix::identity(5)).max_abs_diff(a), 0.0);
  EXPECT_EQ(gemm(Matrix::identity(5), a).max_abs_diff(a), 0.0);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  EXPECT_THROW(gemm(Matrix(2, 3), Matrix(4, 2)), Error);
}

TEST(Gemm, AtBMatchesExplicitTranspose) {
  Rng rng(4);
  const Matrix a = Matrix::random_uniform(7, 3, rng);
  const Matrix b = Matrix::random_uniform(7, 5, rng);
  // Build A^T explicitly and compare.
  Matrix at(3, 7);
  for (vid_t r = 0; r < 7; ++r) {
    for (vid_t c = 0; c < 3; ++c) at(c, r) = a(r, c);
  }
  EXPECT_LT(gemm_at_b(a, b).max_abs_diff(gemm(at, b)), 1e-5);
}

TEST(Gemm, ABtMatchesExplicitTranspose) {
  Rng rng(5);
  const Matrix a = Matrix::random_uniform(4, 6, rng);
  const Matrix b = Matrix::random_uniform(3, 6, rng);
  Matrix bt(6, 3);
  for (vid_t r = 0; r < 3; ++r) {
    for (vid_t c = 0; c < 6; ++c) bt(c, r) = b(r, c);
  }
  EXPECT_LT(gemm_a_bt(a, b).max_abs_diff(gemm(a, bt)), 1e-5);
}

TEST(Gemm, AccumulateAddsToC) {
  const Matrix a(1, 1, {2});
  const Matrix b(1, 1, {3});
  Matrix c(1, 1, {10});
  gemm_accumulate(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 16.0f);
}

}  // namespace
}  // namespace sagnn
