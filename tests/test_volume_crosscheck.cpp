// Cross-validation of the static volume model (partition/metrics) against
// the bytes the simulated cluster actually moves — the recorded all-to-all
// traffic of one sparsity-aware SpMM must equal the VolumeStats prediction
// exactly, for every partitioner.
#include <gtest/gtest.h>

#include "dist/spmm_1d.hpp"
#include "gnn/dist_trainer.hpp"
#include "graph/datasets.hpp"
#include "partition/metrics.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/permute.hpp"

namespace sagnn {
namespace {

class VolumeCrossCheck : public ::testing::TestWithParam<const char*> {};

TEST_P(VolumeCrossCheck, RecordedBytesEqualPrediction) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const CsrMatrix& a = ds.adjacency;
  const int p = 4;
  const vid_t f = 8;

  const auto part = make_partitioner(GetParam())->partition(a, p);
  const VolumeStats predicted = compute_volume_stats(a, part);

  // Relabel, distribute, run ONE sparsity-aware SpMM, record traffic.
  const auto perm = part.relabel_permutation();
  const CsrMatrix ap = permute_symmetric(a, perm);
  const auto ranges = ranges_from_sizes(part.part_sizes());
  Rng rng(1);
  const Matrix h = Matrix::random_uniform(a.n_rows(), f, rng);

  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, ap, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    (void)spmm_dist.multiply(comm, h.slice_rows(r.begin, r.end));
  });

  const PhaseTraffic traffic = cluster.traffic().phase("alltoall");
  // Per-pair equality: bytes(j -> i) == predicted rows * f * sizeof(real).
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < p; ++i) {
      if (i == j) continue;
      const std::uint64_t expected =
          predicted.pair_rows[static_cast<std::size_t>(j) * p + i] * f *
          sizeof(real_t);
      EXPECT_EQ(traffic.bytes_between(j, i), expected)
          << "pair (" << j << " -> " << i << ")";
    }
  }
  EXPECT_EQ(traffic.total_bytes(),
            predicted.total_rows() * f * sizeof(real_t));
}

INSTANTIATE_TEST_SUITE_P(Partitioners, VolumeCrossCheck,
                         ::testing::Values("block", "random", "metis", "gvb"));

TEST(VolumeCrossCheck, TrainerReportsConsistentAlltoallVolume) {
  // The trainer's per-epoch alltoall MB must equal the model's prediction
  // times the number of SpMMs per epoch (2L-1 for an L-layer GCN: L forward
  // + L-1 backward), with layer widths f = {16, 16, classes} after layer 1.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  auto trainer =
      TrainerBuilder(ds)
          .strategy(strategy_name(DistAlgo::k1dSparse))
          .ranks(4)
          .partitioner("metis")
          .gcn(GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 2))
          .build();
  trainer->train();
  const TrainResult result = trainer->result();

  // Forward SpMMs carry widths {f0, 16, 16}; backward carries {16, 16}.
  const double rows = static_cast<double>(result.volume_model.total_rows());
  const double expected_mb =
      rows * sizeof(real_t) *
      (ds.n_features() + 16 + 16 + 16 + 16) / 1.0e6;
  EXPECT_NEAR(result.phase_volumes.at("alltoall").megabytes_per_epoch,
              expected_mb, 1e-9);
}

}  // namespace
}  // namespace sagnn
