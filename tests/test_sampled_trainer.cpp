// Mini-batch neighbor-sampled training baseline: correctness of the sampled
// computation graph, unbiasedness of the rescaled aggregation, training
// behaviour, and the L-hop cost blow-up the paper's introduction cites.
#include <gtest/gtest.h>

#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

GcnConfig config_for(const Dataset& ds, int epochs = 10) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.1f;
  return cfg;
}

SamplingConfig sampling_for(const GcnConfig& cfg, vid_t fanout = 5,
                            vid_t batch = 32) {
  SamplingConfig s;
  s.batch_size = batch;
  s.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), fanout);
  return s;
}

TEST(SampledTrainer, ValidatesConfig) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnConfig cfg = config_for(ds);
  SamplingConfig s = sampling_for(cfg);
  s.fanouts.pop_back();
  EXPECT_THROW(SampledTrainer(ds, cfg, s), Error);
  s = sampling_for(cfg);
  s.batch_size = 0;
  EXPECT_THROW(SampledTrainer(ds, cfg, s), Error);
}

TEST(SampledTrainer, EpochVisitsEveryTrainingVertexOnce) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = config_for(ds);
  SampledTrainer trainer(ds, cfg, sampling_for(cfg, 4, 50));
  const auto metrics = trainer.run_epoch_detailed();
  std::int64_t n_train = 0;
  for (auto m : ds.train_mask) n_train += m;
  EXPECT_EQ(metrics.batches, (n_train + 49) / 50);
  EXPECT_GT(metrics.sampled_edges, 0);
}

TEST(SampledTrainer, HugeFanoutMatchesFullNeighborhood) {
  // With fanout >= max degree no edge is dropped, so the sampled edges per
  // batch equal the L-hop computation graph of the batch exactly, and the
  // per-batch forward equals full-graph GCN restricted to those rows.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnConfig cfg = config_for(ds, 1);
  cfg.learning_rate = 0.0f;  // keep weights fixed for the comparison
  SampledTrainer sampled(ds, cfg, sampling_for(cfg, /*fanout=*/100000,
                                               /*batch=*/100000));
  SerialTrainer serial(ds, cfg);
  const Matrix full_logits = serial.forward();
  const LossStats full = softmax_xent_stats(full_logits, ds.labels, ds.train_mask);
  const auto epoch = sampled.run_epoch_detailed();
  // One giant batch over all training vertices, exact neighborhoods:
  // identical math to full-batch (up to fp ordering).
  EXPECT_EQ(epoch.batches, 1);
  EXPECT_NEAR(epoch.loss, full.mean_loss(), 1e-4);
  EXPECT_NEAR(epoch.train_accuracy, full.accuracy(), 1e-9);
}

TEST(SampledTrainer, LossDecreases) {
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  const GcnConfig cfg = config_for(ds, 8);
  SampledTrainer trainer(ds, cfg, sampling_for(cfg, 6, 32));
  const auto metrics = trainer.train();
  EXPECT_LT(metrics.back().loss, metrics.front().loss);
}

TEST(SampledTrainer, EvaluateRunsFullGraph) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = config_for(ds, 2);
  SampledTrainer trainer(ds, cfg, sampling_for(cfg));
  (void)trainer.run_epoch();
  const LossStats stats = trainer.evaluate();
  EXPECT_GT(stats.count, 0);
  EXPECT_GT(stats.loss_sum, 0.0);
}

TEST(SampledTrainer, SampledEdgesShowLhopBlowup) {
  // The paper's motivation: per-epoch sampled aggregation work exceeds the
  // full graph's nnz once fanouts multiply across layers — mini-batch
  // training re-touches neighborhoods once per batch containing them.
  const Dataset ds = make_reddit_sim(DatasetScale::kTiny);  // dense graph
  const GcnConfig cfg = config_for(ds, 1);
  SampledTrainer trainer(ds, cfg, sampling_for(cfg, /*fanout=*/10, /*batch=*/16));
  const auto epoch = trainer.run_epoch_detailed();
  EXPECT_GT(epoch.sampled_edges, ds.n_edges() / 4)
      << "sampling should touch a large multiple of the graph per epoch";
}

TEST(SampledTrainer, DeterministicPerSeed) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = config_for(ds, 2);
  SampledTrainer a(ds, cfg, sampling_for(cfg));
  SampledTrainer b(ds, cfg, sampling_for(cfg));
  const auto ma = a.train_detailed();
  const auto mb = b.train_detailed();
  for (std::size_t e = 0; e < ma.size(); ++e) {
    EXPECT_DOUBLE_EQ(ma[e].loss, mb[e].loss);
    EXPECT_EQ(ma[e].sampled_edges, mb[e].sampled_edges);
  }
}

}  // namespace
}  // namespace sagnn
