// GcnLayer forward/backward local algebra.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/layer.hpp"
#include "gnn/model.hpp"

namespace sagnn {
namespace {

TEST(GcnLayer, ForwardShapeAndActivation) {
  Rng rng(1);
  GcnLayer layer(Matrix::glorot(4, 3, rng), /*apply_relu=*/true);
  const Matrix m = Matrix::random_uniform(10, 4, rng);
  const Matrix h = layer.forward(m);
  EXPECT_EQ(h.n_rows(), 10);
  EXPECT_EQ(h.n_cols(), 3);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_GE(h.data()[i], 0.0f);
}

TEST(GcnLayer, LastLayerIsLinear) {
  Rng rng(2);
  GcnLayer layer(Matrix::glorot(3, 2, rng), /*apply_relu=*/false);
  const Matrix m = Matrix::random_uniform(5, 3, rng, -10, -5);  // all negative
  const Matrix h = layer.forward(m);
  bool any_negative = false;
  for (std::size_t i = 0; i < h.size(); ++i) any_negative |= h.data()[i] < 0;
  EXPECT_TRUE(any_negative);
}

TEST(GcnLayer, ForwardRejectsWidthMismatch) {
  Rng rng(3);
  GcnLayer layer(Matrix::glorot(4, 3, rng), true);
  EXPECT_THROW(layer.forward(Matrix(10, 5)), Error);
}

TEST(GcnLayer, BackwardShapes) {
  Rng rng(4);
  GcnLayer layer(Matrix::glorot(4, 3, rng), true);
  (void)layer.forward(Matrix::random_uniform(6, 4, rng));
  const auto back = layer.backward(Matrix::random_uniform(6, 3, rng));
  EXPECT_EQ(back.d_weights.n_rows(), 4);
  EXPECT_EQ(back.d_weights.n_cols(), 3);
  EXPECT_EQ(back.d_m.n_rows(), 6);
  EXPECT_EQ(back.d_m.n_cols(), 4);
}

TEST(GcnLayer, BackwardMasksByReluGradient) {
  // With all-negative pre-activations, relu' == 0 and all gradients vanish.
  Matrix w(1, 1, {1.0f});
  GcnLayer layer(std::move(w), true);
  (void)layer.forward(Matrix(2, 1, {-1.0f, -2.0f}));
  const auto back = layer.backward(Matrix(2, 1, {5.0f, 5.0f}));
  EXPECT_FLOAT_EQ(back.d_weights(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(back.d_m(0, 0), 0.0f);
}

TEST(GcnLayer, ApplyGradientIsSgdStep) {
  Matrix w(1, 2, {1.0f, 2.0f});
  GcnLayer layer(std::move(w), true);
  layer.apply_gradient(Matrix(1, 2, {10.0f, -10.0f}), 0.1f);
  EXPECT_FLOAT_EQ(layer.weights()(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(layer.weights()(0, 1), 3.0f);
}

TEST(GcnModel, PaperConfigShape) {
  const GcnConfig cfg = GcnConfig::paper_3layer(300, 24);
  EXPECT_EQ(cfg.n_layers(), 3);
  const GcnModel model(cfg);
  EXPECT_EQ(model.layer(0).in_features(), 300);
  EXPECT_EQ(model.layer(0).out_features(), 16);
  EXPECT_EQ(model.layer(2).out_features(), 24);
  EXPECT_TRUE(model.layer(0).has_relu());
  EXPECT_TRUE(model.layer(1).has_relu());
  EXPECT_FALSE(model.layer(2).has_relu());
}

TEST(GcnModel, SameSeedIdenticalWeights) {
  const GcnConfig cfg = GcnConfig::paper_3layer(8, 4);
  const GcnModel a(cfg), b(cfg);
  EXPECT_DOUBLE_EQ(a.weight_distance(b), 0.0);
}

TEST(GcnModel, DifferentSeedDifferentWeights) {
  GcnConfig cfg = GcnConfig::paper_3layer(8, 4);
  const GcnModel a(cfg);
  cfg.seed = 43;
  const GcnModel b(cfg);
  EXPECT_GT(a.weight_distance(b), 0.0);
}

TEST(GcnModel, RejectsDegenerateConfig) {
  GcnConfig cfg;
  cfg.dims = {8};
  EXPECT_THROW(GcnModel{cfg}, Error);
}

}  // namespace
}  // namespace sagnn
