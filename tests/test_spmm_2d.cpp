// Distributed 2D (SUMMA-style) SpMM: grid construction, correctness against
// serial SpMM in both modes, residency remapping, and the structural
// property that its all-reduce volume is sparsity-independent.
#include <gtest/gtest.h>

#include "dist/spmm_2d.hpp"
#include "graph/generators.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

TEST(SquareGrid, MakeAndIndex) {
  const SquareGrid g = SquareGrid::make(9);
  EXPECT_EQ(g.q, 3);
  EXPECT_EQ(g.grid_row(7), 2);
  EXPECT_EQ(g.grid_col(7), 1);
  EXPECT_EQ(g.rank_of(2, 1), 7);
}

TEST(SquareGrid, RejectsNonSquare) {
  EXPECT_THROW(SquareGrid::make(8), Error);
  EXPECT_THROW(SquareGrid::make(2), Error);
}

struct Case2d {
  vid_t n;
  eid_t m;
  vid_t f;
  int p;
  SpmmMode mode;
};

Matrix run_dist_2d(const CsrMatrix& a, const Matrix& h, int p, SpmmMode mode,
                   TrafficRecorder* traffic_out = nullptr) {
  const SquareGrid g = SquareGrid::make(p);
  const auto ranges = uniform_block_ranges(a.n_rows(), g.q);
  Matrix result(a.n_rows(), h.n_cols());
  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm2d spmm_dist(comm, a, ranges, mode);
    const BlockRange in = spmm_dist.input_range();
    const Matrix z = spmm_dist.multiply(h.slice_rows(in.begin, in.end));
    // Grid column 0 writes the output (one owner per block row).
    if (spmm_dist.grid().grid_col(comm.rank()) == 0) {
      const BlockRange out = spmm_dist.output_range();
      for (vid_t i = 0; i < z.n_rows(); ++i) {
        std::copy(z.row(i), z.row(i) + z.n_cols(), result.row(out.begin + i));
      }
    }
  });
  if (traffic_out != nullptr) *traffic_out = cluster.traffic();
  return result;
}

class Spmm2dMatchesSerial : public ::testing::TestWithParam<Case2d> {};

TEST_P(Spmm2dMatchesSerial, Agrees) {
  const Case2d c = GetParam();
  Rng rng(c.n + c.p);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(c.n, c.m, rng));
  const Matrix h = Matrix::random_uniform(c.n, c.f, rng);
  EXPECT_LT(run_dist_2d(a, h, c.p, c.mode).max_abs_diff(spmm(a, h)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Spmm2dMatchesSerial,
    ::testing::Values(Case2d{32, 200, 4, 1, SpmmMode::kOblivious},
                      Case2d{32, 200, 4, 4, SpmmMode::kOblivious},
                      Case2d{32, 200, 4, 4, SpmmMode::kSparsityAware},
                      Case2d{60, 400, 6, 9, SpmmMode::kOblivious},
                      Case2d{60, 400, 6, 9, SpmmMode::kSparsityAware},
                      Case2d{100, 900, 8, 16, SpmmMode::kOblivious},
                      Case2d{100, 900, 8, 16, SpmmMode::kSparsityAware}));

TEST(Spmm2d, ChainedMultipliesViaRemap) {
  // Z residency (grid row) must be remapped to H residency (grid col)
  // before the next layer — the GCN chaining pattern.
  Rng rng(5);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(48, 300, rng));
  Matrix h = Matrix::random_uniform(48, 3, rng);
  Matrix expected = h;
  for (int i = 0; i < 3; ++i) expected = spmm(a, expected);

  const auto ranges = uniform_block_ranges(48, 3);
  Matrix result(48, 3);
  Cluster cluster(9);
  cluster.run([&](Comm& comm) {
    DistSpmm2d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange in = spmm_dist.input_range();
    Matrix local = h.slice_rows(in.begin, in.end);
    for (int i = 0; i < 3; ++i) {
      Matrix z = spmm_dist.multiply(local);
      local = spmm_dist.remap_for_next(z);
    }
    if (spmm_dist.grid().grid_col(comm.rank()) == 0) {
      // After remap the data is back in H residency (block = grid col = 0
      // for these writers, i.e. block row 0)... write from the diagonal
      // instead so every block row has exactly one writer.
    }
    if (spmm_dist.grid().grid_row(comm.rank()) ==
        spmm_dist.grid().grid_col(comm.rank())) {
      for (vid_t i = 0; i < local.n_rows(); ++i) {
        std::copy(local.row(i), local.row(i) + 3, result.row(in.begin + i));
      }
    }
  });
  EXPECT_LT(result.max_abs_diff(expected), 1e-3);
}

TEST(Spmm2d, AllreduceVolumeIsSparsityIndependent) {
  // The 2D algorithm's dominant communication (the row all-reduce of Z)
  // does not shrink with sparsity — CAGNET's reason for preferring 1D/1.5D
  // in GNN training.
  const vid_t n = 64;
  Rng rng(6);
  const CsrMatrix dense_g = CsrMatrix::from_coo(erdos_renyi(n, 1500, rng));
  CooMatrix diag(n, n);
  for (vid_t v = 0; v + 1 < n; v += 2) diag.add(v, v + 1, 1.0f);
  diag.symmetrize();
  const CsrMatrix sparse_g = CsrMatrix::from_coo(diag);
  const Matrix h = Matrix::random_uniform(n, 4, rng);

  TrafficRecorder t_dense(1), t_sparse(1);
  run_dist_2d(dense_g, h, 9, SpmmMode::kSparsityAware, &t_dense);
  run_dist_2d(sparse_g, h, 9, SpmmMode::kSparsityAware, &t_sparse);
  EXPECT_EQ(t_dense.phase("allreduce").total_bytes(),
            t_sparse.phase("allreduce").total_bytes());
  EXPECT_GT(t_dense.phase("allreduce").total_bytes(), 0u);
}

TEST(Spmm2d, RemapIsInvolutionOnResidency) {
  // remap(remap(x)) restores the original local block on every rank.
  Rng rng(7);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(40, 200, rng));
  const auto ranges = uniform_block_ranges(40, 2);
  const Matrix h = Matrix::random_uniform(40, 5, rng);
  Cluster cluster(4);
  cluster.run([&](Comm& comm) {
    DistSpmm2d spmm_dist(comm, a, ranges, SpmmMode::kOblivious);
    const BlockRange in = spmm_dist.input_range();
    const BlockRange out = spmm_dist.output_range();
    // Fabricate a Z-resident block and round-trip it. remap_for_next maps
    // Z residency -> H residency; applying the raw diagonal swap twice
    // must restore the bytes. Use the matching slice for each direction.
    const Matrix z_block = h.slice_rows(out.begin, out.end);
    const Matrix h_block = spmm_dist.remap_for_next(z_block);
    EXPECT_EQ(h_block.n_rows(), in.size());
    // The received block is partner's Z block == rows of H at input range.
    EXPECT_EQ(h_block.max_abs_diff(h.slice_rows(in.begin, in.end)), 0.0);
  });
}

}  // namespace
}  // namespace sagnn
