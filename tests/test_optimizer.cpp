// SGD and Adam optimizers.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gnn/optimizer.hpp"

namespace sagnn {
namespace {

TEST(Sgd, StepIsLinear) {
  Sgd opt(0.5f);
  Matrix w(1, 2, {1.0f, -1.0f});
  opt.step(w, Matrix(1, 2, {2.0f, 2.0f}));
  EXPECT_FLOAT_EQ(w(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 1), -2.0f);
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Adam opt(0.1f);
  Matrix w(1, 2, {0.0f, 0.0f});
  opt.step(0, w, Matrix(1, 2, {3.0f, -7.0f}));
  EXPECT_NEAR(w(0, 0), -0.1f, 1e-3f);
  EXPECT_NEAR(w(0, 1), 0.1f, 1e-3f);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 with gradient 2(w-3).
  Adam opt(0.2f);
  Matrix w(1, 1, {0.0f});
  for (int i = 0; i < 300; ++i) {
    const Matrix grad(1, 1, {2.0f * (w(0, 0) - 3.0f)});
    opt.step(0, w, grad);
  }
  EXPECT_NEAR(w(0, 0), 3.0f, 0.05f);
}

TEST(Adam, IndependentSlots) {
  Adam opt(0.1f);
  Matrix w0(1, 1, {0.0f}), w1(1, 1, {0.0f});
  for (int i = 0; i < 10; ++i) {
    opt.step(0, w0, Matrix(1, 1, {1.0f}));
  }
  opt.step(1, w1, Matrix(1, 1, {1.0f}));
  // Slot 1 just took its first step; it must not inherit slot 0 momentum.
  EXPECT_NEAR(w1(0, 0), -0.1f, 1e-3f);
  EXPECT_LT(w0(0, 0), w1(0, 0));
}

TEST(Adam, ShapeMismatchThrows) {
  Adam opt(0.1f);
  Matrix w(2, 2);
  EXPECT_THROW(opt.step(0, w, Matrix(1, 2)), Error);
}

TEST(Adam, DeterministicAcrossInstances) {
  // Replicated ranks run their own Adam instances; identical gradient
  // streams must give identical weights.
  Adam a(0.05f), b(0.05f);
  Rng rng(9);
  Matrix wa(2, 3), wb(2, 3);
  for (int i = 0; i < 20; ++i) {
    const Matrix g = Matrix::random_uniform(2, 3, rng);
    a.step(0, wa, g);
    b.step(0, wb, g);
  }
  EXPECT_EQ(wa.max_abs_diff(wb), 0.0);
}

}  // namespace
}  // namespace sagnn
