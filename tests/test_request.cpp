// The request-based nonblocking runtime: out-of-order completion across
// tags, deterministic per-(src, tag) matching independent of wait order,
// zero-byte payloads through waitall, typed misuse errors, abandoned
// receives, and abort safety with requests still pending.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "simcomm/cluster.hpp"
#include "simcomm/collectives.hpp"
#include "simcomm/comm.hpp"

namespace sagnn {
namespace {

TEST(Request, OutOfOrderCompletionAcrossTags) {
  // Rank 1 posts receives for tags 7 and 8, then waits them in the
  // opposite order of posting. Each request must still complete with the
  // message of ITS tag — matching is per (src, tag), not per mailbox.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> a{111};
      const std::vector<int> b{222};
      comm.send<int>(1, 7, a, "p2p");
      comm.send<int>(1, 8, b, "p2p");
    } else {
      Request on_tag7 = comm.irecv(0, 7);
      Request on_tag8 = comm.irecv(0, 8);
      const auto b = Comm::payload_as<int>(on_tag8.wait());
      const auto a = Comm::payload_as<int>(on_tag7.wait());
      EXPECT_EQ(a, std::vector<int>{111});
      EXPECT_EQ(b, std::vector<int>{222});
    }
  });
}

TEST(Request, PostOrderDefinesTheStreamNotWaitOrder) {
  // Three sends on one (src, tag) pair; three posted receives waited in
  // reverse. The k-th POSTED receive must get the k-th SENT message.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int k = 0; k < 3; ++k) {
        const std::vector<int> msg{10 * (k + 1)};
        comm.send<int>(1, 5, msg, "p2p");
      }
    } else {
      std::vector<Request> posted;
      for (int k = 0; k < 3; ++k) posted.push_back(comm.irecv(0, 5));
      const auto third = Comm::payload_as<int>(posted[2].wait());
      const auto second = Comm::payload_as<int>(posted[1].wait());
      const auto first = Comm::payload_as<int>(posted[0].wait());
      EXPECT_EQ(first, std::vector<int>{10});
      EXPECT_EQ(second, std::vector<int>{20});
      EXPECT_EQ(third, std::vector<int>{30});
    }
  });
}

TEST(Request, WaitallHandlesZeroBytePayloads) {
  // Empty halos are legal messages; waitall must return empty payloads in
  // request order, mixed freely with non-empty ones.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> empty;
      const std::vector<int> full{42, 43};
      comm.send<int>(1, 3, empty, "p2p");
      comm.send<int>(1, 4, full, "p2p");
      comm.send<int>(1, 6, empty, "p2p");
    } else {
      std::vector<Request> reqs;
      reqs.push_back(comm.irecv(0, 3));
      reqs.push_back(comm.irecv(0, 4));
      reqs.push_back(comm.irecv(0, 6));
      WaitStats stats;
      const auto payloads = waitall(reqs, &stats);
      ASSERT_EQ(payloads.size(), 3u);
      EXPECT_TRUE(payloads[0].empty());
      EXPECT_EQ(Comm::payload_as<int>(payloads[1]),
                (std::vector<int>{42, 43}));
      EXPECT_TRUE(payloads[2].empty());
      EXPECT_GE(stats.hidden + stats.blocked, 0.0);
      for (const Request& r : reqs) EXPECT_FALSE(r.valid());
    }
  });
}

TEST(Request, DoubleWaitIsATypedError) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> msg{1};
      comm.send<int>(1, 2, msg, "p2p");
    } else {
      Request req = comm.irecv(0, 2);
      (void)req.wait();
      EXPECT_THROW((void)req.wait(), RequestError);
    }
  });
}

TEST(Request, WaitOnEmptyHandleIsATypedError) {
  Request empty;
  EXPECT_THROW((void)empty.wait(), RequestError);
  // A moved-from handle is empty too.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> msg{9};
      comm.send<int>(1, 2, msg, "p2p");
    } else {
      Request req = comm.irecv(0, 2);
      Request stolen = std::move(req);
      EXPECT_THROW((void)req.wait(), RequestError);
      EXPECT_EQ(Comm::payload_as<int>(stolen.wait()), std::vector<int>{9});
    }
  });
}

TEST(Request, AbandonedReceiveDropsItsSlotOnly) {
  // Destroying a pending receive unwaited releases its position in the
  // (src, tag) stream: its matching message is dropped, and the NEXT
  // posted receive still gets the NEXT message — whether the abandon
  // happens before or after the messages arrive.
  run_spmd(2, [](Comm& comm) {
    for (const bool abandon_after_arrival : {false, true}) {
      const long tag = abandon_after_arrival ? 11 : 12;
      if (comm.rank() == 0) {
        comm.barrier();
        const std::vector<int> first{1};
        const std::vector<int> second{2};
        comm.send<int>(1, tag, first, "p2p");
        comm.send<int>(1, tag, second, "p2p");
        comm.barrier();
      } else {
        if (abandon_after_arrival) {
          comm.barrier();  // messages deposited before the abandon
          comm.barrier();
          { Request dropped = comm.irecv(0, tag); }
        } else {
          { Request dropped = comm.irecv(0, tag); }  // abandon first
          comm.barrier();
          comm.barrier();
        }
        EXPECT_EQ(comm.recv<int>(0, tag), std::vector<int>{2});
      }
      comm.barrier();
    }
  });
}

TEST(Request, IalltoallvMatchesBlockingAlltoallv) {
  const int p = 4;
  std::vector<std::vector<std::vector<float>>> blocking(p), nonblocking(p);
  auto bufs_for = [p](int rank) {
    std::vector<std::vector<float>> send(static_cast<std::size_t>(p));
    for (int dst = 0; dst < p; ++dst) {
      for (int i = 0; i <= dst; ++i) {
        send[static_cast<std::size_t>(dst)].push_back(
            static_cast<float>(100 * rank + 10 * dst + i));
      }
    }
    return send;
  };
  run_spmd(p, [&](Comm& comm) {
    blocking[static_cast<std::size_t>(comm.rank())] =
        alltoallv<float>(comm, bufs_for(comm.rank()));
  });
  run_spmd(p, [&](Comm& comm) {
    auto pending = ialltoallv<float>(comm, bufs_for(comm.rank()));
    EXPECT_TRUE(pending.valid());
    nonblocking[static_cast<std::size_t>(comm.rank())] = pending.wait();
    EXPECT_FALSE(pending.valid());
  });
  EXPECT_EQ(blocking, nonblocking);
}

TEST(Request, AbortResolvesPendingWaitsWithoutDeadlock) {
  // Rank 2 throws while every other rank is waiting on requests for
  // messages that will never be sent. The abort must wake them all with
  // AbortedError; a 5 s watchdog turns a regression into a failure
  // instead of a hung suite.
  std::atomic<bool> done{false};
  std::thread runner([&] {
    Cluster cluster(4);
    EXPECT_THROW(
        cluster.run([](Comm& comm) {
          if (comm.rank() == 2) throw Error("rank 2 exploded");
          Request never = comm.irecv(2, 13);
          Request also_never = comm.irecv((comm.rank() + 1) % 4, 14);
          EXPECT_THROW((void)never.wait(), AbortedError);
          // Later waits on the aborted world fail the same way — abort is
          // sticky, not a one-shot wakeup.
          EXPECT_THROW((void)also_never.wait(), AbortedError);
        }),
        Error);
    done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(done.load()) << "abort failed to wake pending waits within 5s";
  runner.join();
}

TEST(Request, WaitallMidBatchAbortResolvesEveryRemainingHandle) {
  // waitall is mid-batch when the world aborts: requests 0-1 have messages
  // already delivered, 2-3 never will. The batch must complete the
  // deliverable prefix, throw AbortedError once, and leave EVERY handle
  // consumed (!valid()) — a half-drained batch would leak (src, tag)
  // stream slots into any later recovery on the same world.
  std::atomic<bool> done{false};
  std::thread runner([&] {
    Cluster cluster(2);
    EXPECT_THROW(
        cluster.run([](Comm& comm) {
          if (comm.rank() == 0) {
            const std::vector<int> a{1};
            const std::vector<int> b{2};
            comm.send<int>(1, 11, a, "p2p");
            comm.send<int>(1, 12, b, "p2p");
            // Release rank 1 into its waitall only after both deliverable
            // messages are in its mailbox, then kill the world.
            comm.send<int>(1, 99, a, "p2p");
            throw Error("rank 0 exploded mid-batch");
          }
          std::vector<Request> reqs;
          reqs.push_back(comm.irecv(0, 11));
          reqs.push_back(comm.irecv(0, 12));
          reqs.push_back(comm.irecv(0, 13));  // never sent
          reqs.push_back(comm.irecv(0, 14));  // never sent
          (void)comm.recv<int>(0, 99);
          EXPECT_THROW((void)waitall(reqs), AbortedError);
          for (const Request& r : reqs) {
            EXPECT_FALSE(r.valid()) << "leaked handle after aborted waitall";
          }
        }),
        Error);
    done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(done.load()) << "aborted waitall failed to resolve within 5s";
  runner.join();
}

}  // namespace
}  // namespace sagnn
