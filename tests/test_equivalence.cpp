// The paper's accuracy-parity claim (§6.2): sparsity-aware and oblivious
// distributed training compute the same math as serial training, so losses
// and accuracies agree to floating-point reordering tolerance — across all
// four algorithms, all partitioners, and several process geometries.
#include <gtest/gtest.h>

#include "gnn/dist_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

struct EqCase {
  DistAlgo algo;
  int p;
  int c;
  const char* partitioner;
};

class DistMatchesSerial : public ::testing::TestWithParam<EqCase> {};

TEST_P(DistMatchesSerial, LossTrajectoriesAgree) {
  const EqCase c = GetParam();
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int epochs = 5;

  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;

  SerialTrainer serial(ds, cfg);
  const auto serial_metrics = serial.train();

  DistTrainerOptions opt;
  opt.gcn = cfg;
  opt.algo = c.algo;
  opt.p = c.p;
  opt.c = c.c;
  opt.partitioner = c.partitioner;
  const auto dist = train_distributed(ds, opt);

  ASSERT_EQ(dist.epochs.size(), serial_metrics.size());
  for (std::size_t e = 0; e < serial_metrics.size(); ++e) {
    // float32 accumulation-order differences grow slowly with epochs; the
    // trajectories must stay within a tight relative band.
    EXPECT_NEAR(dist.epochs[e].loss, serial_metrics[e].loss,
                5e-3 * std::max(1.0, serial_metrics[e].loss))
        << "epoch " << e;
    EXPECT_NEAR(dist.epochs[e].train_accuracy, serial_metrics[e].train_accuracy,
                0.02)
        << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DistMatchesSerial,
    ::testing::Values(
        // 1D algorithms across partitioners and p.
        EqCase{DistAlgo::k1dOblivious, 1, 1, "block"},
        EqCase{DistAlgo::k1dOblivious, 4, 1, "block"},
        EqCase{DistAlgo::k1dOblivious, 4, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "random"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "gvb"},
        EqCase{DistAlgo::k1dSparse, 7, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 8, 1, "gvb"},
        // 1.5D algorithms with c in {1, 2} and both partitioner families.
        EqCase{DistAlgo::k15dOblivious, 4, 2, "block"},
        EqCase{DistAlgo::k15dOblivious, 8, 2, "metis"},
        EqCase{DistAlgo::k15dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k15dSparse, 4, 2, "metis"},
        EqCase{DistAlgo::k15dSparse, 8, 2, "gvb"},
        EqCase{DistAlgo::k15dSparse, 16, 2, "gvb"},
        // 2D (SUMMA-style) algorithms on square grids.
        EqCase{DistAlgo::k2dOblivious, 4, 1, "block"},
        EqCase{DistAlgo::k2dOblivious, 9, 1, "metis"},
        EqCase{DistAlgo::k2dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k2dSparse, 9, 1, "gvb"},
        EqCase{DistAlgo::k2dSparse, 16, 1, "metis"}));

TEST(Equivalence, ObliviousAndSparseProduceSameTrajectory) {
  // Same partitioner, same geometry: only the communication pattern
  // differs, so the two modes must agree with each other even more tightly
  // than with serial.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 4);
  DistTrainerOptions opt;
  opt.gcn = cfg;
  opt.p = 4;
  opt.partitioner = "metis";

  opt.algo = DistAlgo::k1dOblivious;
  const auto oblivious = train_distributed(ds, opt);
  opt.algo = DistAlgo::k1dSparse;
  const auto sparse = train_distributed(ds, opt);

  for (std::size_t e = 0; e < oblivious.epochs.size(); ++e) {
    EXPECT_NEAR(oblivious.epochs[e].loss, sparse.epochs[e].loss, 1e-4);
  }
}

}  // namespace
}  // namespace sagnn
