// The paper's accuracy-parity claim (§6.2): sparsity-aware and oblivious
// distributed training compute the same math as serial training, so losses
// and accuracies agree to floating-point reordering tolerance — across all
// algorithms, all partitioners, and several process geometries. The
// registry-driven suite at the bottom re-derives its case list from the
// strategy and partitioner registries, so every implementation added later
// is automatically held to the same parity bar.
#include <gtest/gtest.h>

#include <cctype>
#include <tuple>

#include "gnn/dist_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioner_registry.hpp"

namespace sagnn {
namespace {

struct EqCase {
  DistAlgo algo;
  int p;
  int c;
  const char* partitioner;
};

class DistMatchesSerial : public ::testing::TestWithParam<EqCase> {};

TEST_P(DistMatchesSerial, LossTrajectoriesAgree) {
  const EqCase c = GetParam();
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int epochs = 5;

  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;

  SerialTrainer serial(ds, cfg);
  const auto serial_metrics = serial.train();

  auto trainer = TrainerBuilder(ds)
                     .strategy(strategy_name(c.algo))
                     .ranks(c.p, c.c)
                     .partitioner(c.partitioner)
                     .gcn(cfg)
                     .build();
  trainer->train();
  const TrainResult dist = trainer->result();

  ASSERT_EQ(dist.epochs.size(), serial_metrics.size());
  for (std::size_t e = 0; e < serial_metrics.size(); ++e) {
    // float32 accumulation-order differences grow slowly with epochs; the
    // trajectories must stay within a tight relative band.
    EXPECT_NEAR(dist.epochs[e].loss, serial_metrics[e].loss,
                5e-3 * std::max(1.0, serial_metrics[e].loss))
        << "epoch " << e;
    EXPECT_NEAR(dist.epochs[e].train_accuracy, serial_metrics[e].train_accuracy,
                0.02)
        << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DistMatchesSerial,
    ::testing::Values(
        // 1D algorithms across partitioners and p.
        EqCase{DistAlgo::k1dOblivious, 1, 1, "block"},
        EqCase{DistAlgo::k1dOblivious, 4, 1, "block"},
        EqCase{DistAlgo::k1dOblivious, 4, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "random"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 4, 1, "gvb"},
        EqCase{DistAlgo::k1dSparse, 7, 1, "metis"},
        EqCase{DistAlgo::k1dSparse, 8, 1, "gvb"},
        // 1.5D algorithms with c in {1, 2} and both partitioner families.
        EqCase{DistAlgo::k15dOblivious, 4, 2, "block"},
        EqCase{DistAlgo::k15dOblivious, 8, 2, "metis"},
        EqCase{DistAlgo::k15dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k15dSparse, 4, 2, "metis"},
        EqCase{DistAlgo::k15dSparse, 8, 2, "gvb"},
        EqCase{DistAlgo::k15dSparse, 16, 2, "gvb"},
        // 2D (SUMMA-style) algorithms on square grids.
        EqCase{DistAlgo::k2dOblivious, 4, 1, "block"},
        EqCase{DistAlgo::k2dOblivious, 9, 1, "metis"},
        EqCase{DistAlgo::k2dSparse, 4, 1, "block"},
        EqCase{DistAlgo::k2dSparse, 9, 1, "gvb"},
        EqCase{DistAlgo::k2dSparse, 16, 1, "metis"}));

// ---- Registry-driven sweep: EVERY registered (strategy x partitioner) ----
// pair must reproduce the serial loss trajectory through TrainerBuilder.

class RegistryPairMatchesSerial
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(RegistryPairMatchesSerial, LossTrajectoriesAgree) {
  const auto& [strategy, partitioner] = GetParam();
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int epochs = 3;
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;

  auto serial = TrainerBuilder(ds).strategy("serial").gcn(cfg).build();
  const auto serial_metrics = serial->train();

  // p = 4 satisfies every registered geometry (any p for 1D, c^2 | p for
  // 1.5D with c = 2, perfect square for 2D).
  const int c = strategy.rfind("1.5d", 0) == 0 ? 2 : 1;
  auto trainer = TrainerBuilder(ds)
                     .strategy(strategy)
                     .ranks(4, c)
                     .partitioner(partitioner)
                     .gcn(cfg)
                     .build();
  const auto& dist = trainer->train();

  ASSERT_EQ(dist.size(), serial_metrics.size());
  for (std::size_t e = 0; e < serial_metrics.size(); ++e) {
    EXPECT_NEAR(dist[e].loss, serial_metrics[e].loss,
                5e-3 * std::max(1.0, serial_metrics[e].loss))
        << "epoch " << e;
    EXPECT_NEAR(dist[e].train_accuracy, serial_metrics[e].train_accuracy, 0.02)
        << "epoch " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPairs, RegistryPairMatchesSerial,
    ::testing::Combine(::testing::ValuesIn(strategy_registry().names()),
                       ::testing::ValuesIn(partitioner_registry().names())),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Equivalence, ObliviousAndSparseProduceSameTrajectory) {
  // Same partitioner, same geometry: only the communication pattern
  // differs, so the two modes must agree with each other even more tightly
  // than with serial.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 4);
  auto run = [&](DistAlgo algo) {
    auto trainer = TrainerBuilder(ds)
                       .strategy(strategy_name(algo))
                       .ranks(4)
                       .partitioner("metis")
                       .gcn(cfg)
                       .build();
    trainer->train();
    return trainer->result();
  };
  const TrainResult oblivious = run(DistAlgo::k1dOblivious);
  const TrainResult sparse = run(DistAlgo::k1dSparse);

  for (std::size_t e = 0; e < oblivious.epochs.size(); ++e) {
    EXPECT_NEAR(oblivious.epochs[e].loss, sparse.epochs[e].loss, 1e-4);
  }
}

}  // namespace
}  // namespace sagnn
