// Collective operations validated against naive references across rank
// counts, roots, payload sizes, and element types.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "simcomm/cluster.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {
namespace {

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BcastAllRoots) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data(17);
      if (comm.rank() == root) {
        std::iota(data.begin(), data.end(), root * 1000);
      }
      bcast<int>(comm, root, data);
      for (int i = 0; i < 17; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], root * 1000 + i);
    }
  });
}

TEST_P(CollectivesP, ReduceSumAllRoots) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<long> data{static_cast<long>(comm.rank() + 1), 10};
      reduce_sum<long>(comm, root, data);
      if (comm.rank() == root) {
        EXPECT_EQ(data[0], static_cast<long>(p) * (p + 1) / 2);
        EXPECT_EQ(data[1], 10L * p);
      }
    }
  });
}

TEST_P(CollectivesP, AllreduceSumMatchesFormula) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    // Size chosen to exercise uneven ring chunks (not divisible by p).
    std::vector<double> data(23);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = comm.rank() + static_cast<double>(i) * 0.5;
    }
    allreduce_sum<double>(comm, data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double expected = p * (p - 1) / 2.0 + p * (static_cast<double>(i) * 0.5);
      EXPECT_NEAR(data[i], expected, 1e-9);
    }
  });
}

TEST_P(CollectivesP, AllreduceIdenticalAcrossRanks) {
  // Ring all-reduce must produce bit-identical results on every rank —
  // the property that keeps replicated GCN weights in sync.
  const int p = GetParam();
  std::vector<std::vector<real_t>> results(static_cast<std::size_t>(p));
  run_spmd(p, [&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<real_t> data(101);
    for (auto& x : data) x = rng.uniform(-1, 1);
    allreduce_sum<real_t>(comm, data);
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

TEST_P(CollectivesP, AllgathervVariableSizes) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    // Rank r contributes r+1 elements [r, r, ...].
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1, comm.rank());
    const auto all = allgatherv<int>(comm, mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r) + 1);
      for (int x : all[static_cast<std::size_t>(r)]) EXPECT_EQ(x, r);
    }
  });
}

TEST_P(CollectivesP, AlltoallvExchangesCorrectBlocks) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    // Send to d a block [rank*100+d] repeated (d+1) times.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d) + 1,
                                               comm.rank() * 100 + d);
    }
    const auto recv = alltoallv<int>(comm, send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(),
                static_cast<std::size_t>(comm.rank()) + 1);
      for (int x : recv[static_cast<std::size_t>(s)]) {
        EXPECT_EQ(x, s * 100 + comm.rank());
      }
    }
  });
}

TEST_P(CollectivesP, GathervCollectsAtRoot) {
  const int p = GetParam();
  run_spmd(p, [p](Comm& comm) {
    std::vector<float> mine{static_cast<float>(comm.rank()) * 2.0f};
    const auto all = gatherv<float>(comm, p - 1, mine);
    if (comm.rank() == p - 1) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        EXPECT_FLOAT_EQ(all[static_cast<std::size_t>(r)][0], r * 2.0f);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesP, BackToBackCollectivesDoNotCrossMatch) {
  const int p = GetParam();
  run_spmd(p, [](Comm& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      std::vector<int> b{comm.rank() == 0 ? iter : -1};
      bcast<int>(comm, 0, b);
      EXPECT_EQ(b[0], iter);
      std::vector<int> a{1};
      allreduce_sum<int>(comm, a);
      EXPECT_EQ(a[0], comm.size());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(Collectives, BcastRecordsTreeTraffic) {
  // Binomial tree: total transferred bytes = (p-1) * payload.
  auto traffic = run_spmd(8, [](Comm& comm) {
    std::vector<std::uint8_t> data(100);
    bcast<std::uint8_t>(comm, 0, data, "bcast");
  });
  EXPECT_EQ(traffic.phase("bcast").total_bytes(), 700u);
}

TEST(Collectives, AlltoallvTrafficExcludesSelf) {
  auto traffic = run_spmd(4, [](Comm& comm) {
    std::vector<std::vector<std::uint8_t>> send(4);
    for (int d = 0; d < 4; ++d) send[static_cast<std::size_t>(d)].assign(10, 0);
    alltoallv<std::uint8_t>(comm, send, "alltoall");
  });
  // 4 ranks x 3 remote destinations x 10 bytes.
  EXPECT_EQ(traffic.phase("alltoall").total_bytes(), 120u);
}

}  // namespace
}  // namespace sagnn
