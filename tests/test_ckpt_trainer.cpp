// The checkpoint/restore contract of the unified Trainer API: training 2E
// epochs uninterrupted must equal E epochs + save + restore-in-a-fresh-
// trainer + E epochs, BITWISE — identical loss trajectory, final weights,
// and per-epoch phase volumes — for serial, sampled, and distributed modes
// at multiple thread counts. Elastic restarts (restore onto a different
// rank count) re-partition and must still track the serial trajectory.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>

#include "bench_support/experiment.hpp"
#include "ckpt/errors.hpp"
#include "common/parallel.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

GcnConfig ckpt_config(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  // Exercise the epoch-keyed deterministic dropout in the resume path.
  cfg.dropout = 0.2f;
  return cfg;
}

void expect_same_trajectory(const std::vector<EpochMetrics>& a,
                            const std::vector<EpochMetrics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_DOUBLE_EQ(a[e].loss, b[e].loss) << "epoch " << e;
    EXPECT_DOUBLE_EQ(a[e].train_accuracy, b[e].train_accuracy) << "epoch " << e;
  }
}

void expect_same_weights(const GcnModel& a, const GcnModel& b) {
  ASSERT_EQ(a.n_layers(), b.n_layers());
  for (int l = 0; l < a.n_layers(); ++l) {
    EXPECT_TRUE(a.layer(l).weights() == b.layer(l).weights()) << "layer " << l;
  }
}

TEST(CkptTrainer, SerialResumeIsBitIdentical) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int half = 3;
  const GcnConfig cfg = ckpt_config(ds, 2 * half);

  auto uninterrupted = TrainerBuilder(ds).strategy("serial").gcn(cfg).build();
  uninterrupted->train();

  auto first = TrainerBuilder(ds).strategy("serial").gcn(cfg).build();
  for (int e = 0; e < half; ++e) (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  first.reset();  // the "kill": only the snapshot and the dataset survive

  auto resumed = TrainerBuilder(ds).resume(snapshot);
  EXPECT_EQ(resumed->epochs_run(), half);
  resumed->train();

  expect_same_trajectory(resumed->result().epochs,
                         uninterrupted->result().epochs);
  expect_same_weights(dynamic_cast<SerialTrainer&>(*resumed).model(),
                      dynamic_cast<SerialTrainer&>(*uninterrupted).model());
}

TEST(CkptTrainer, SampledResumeContinuesRngStreamBitIdentically) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int half = 2;
  const GcnConfig cfg = ckpt_config(ds, 2 * half);
  SamplingConfig sampling;
  sampling.batch_size = 16;
  sampling.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), 4);

  auto uninterrupted =
      TrainerBuilder(ds).strategy("sampled").sampling(sampling).gcn(cfg).build();
  uninterrupted->train();

  auto first =
      TrainerBuilder(ds).strategy("sampled").sampling(sampling).gcn(cfg).build();
  for (int e = 0; e < half; ++e) (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  first.reset();

  auto resumed = TrainerBuilder(ds).resume(snapshot);
  resumed->train();

  expect_same_trajectory(resumed->result().epochs,
                         uninterrupted->result().epochs);
  auto& a = dynamic_cast<SampledTrainer&>(*resumed);
  auto& b = dynamic_cast<SampledTrainer&>(*uninterrupted);
  expect_same_weights(a.model(), b.model());
  // The sampling-specific counters continue too (RNG stream position).
  ASSERT_EQ(a.train_detailed().size(), b.train_detailed().size());
  for (std::size_t e = 0; e < a.train_detailed().size(); ++e) {
    EXPECT_EQ(a.train_detailed()[e].sampled_edges,
              b.train_detailed()[e].sampled_edges)
        << "epoch " << e;
  }
}

struct DistCase {
  const char* strategy;
  int p;
  int c;
  const char* partitioner;
  int threads;
};

class CkptDistributedRoundTrip : public ::testing::TestWithParam<DistCase> {};

TEST_P(CkptDistributedRoundTrip, ResumeIsBitIdentical) {
  const DistCase param = GetParam();
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int half = 3;
  const GcnConfig cfg = ckpt_config(ds, 2 * half);

  auto make_builder = [&] {
    return TrainerBuilder(ds)
        .strategy(param.strategy)
        .ranks(param.p, param.c)
        .partitioner(param.partitioner)
        .threads(param.threads)
        .gcn(cfg);
  };

  auto uninterrupted = make_builder().build();
  uninterrupted->train();

  auto first = make_builder().build();
  for (int e = 0; e < half; ++e) (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  first.reset();

  // Resume without re-stating the configuration: everything (strategy,
  // geometry, partitioner, epochs) comes from the snapshot.
  auto resumed = TrainerBuilder(ds).threads(param.threads).resume(snapshot);
  EXPECT_EQ(resumed->epochs_run(), half);
  resumed->train();

  expect_same_trajectory(resumed->result().epochs,
                         uninterrupted->result().epochs);
  expect_same_weights(dynamic_cast<DistributedTrainer&>(*resumed).model(),
                      dynamic_cast<DistributedTrainer&>(*uninterrupted).model());

  // Per-epoch phase volumes: the restored traffic history plus the resumed
  // epochs must equal the uninterrupted run to the bit.
  const TrainResult& a = resumed->result();
  const TrainResult& b = uninterrupted->result();
  ASSERT_EQ(a.phase_volumes.size(), b.phase_volumes.size());
  for (const auto& [phase, vol] : b.phase_volumes) {
    ASSERT_TRUE(a.phase_volumes.count(phase)) << phase;
    EXPECT_DOUBLE_EQ(a.phase_volumes.at(phase).megabytes_per_epoch,
                     vol.megabytes_per_epoch)
        << phase;
    EXPECT_DOUBLE_EQ(a.phase_volumes.at(phase).messages_per_epoch,
                     vol.messages_per_epoch)
        << phase;
  }
  EXPECT_EQ(a.pipeline_stages, b.pipeline_stages);
  set_parallel_threads(0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndThreads, CkptDistributedRoundTrip,
    ::testing::Values(DistCase{"1d-sparse", 4, 1, "gvb", 1},
                      DistCase{"1d-sparse", 4, 1, "gvb", 4},
                      DistCase{"1d-overlap", 4, 1, "metis", 1},
                      DistCase{"1d-overlap", 4, 1, "metis", 4},
                      DistCase{"1.5d-sparse", 4, 2, "block", 1},
                      DistCase{"2d-sparse", 4, 1, "metis", 4}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      std::string name = std::string(info.param.strategy) + "_" +
                         info.param.partitioner + "_t" +
                         std::to_string(info.param.threads);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(CkptTrainer, ElasticRestartOnFewerRanksTracksSerial) {
  // Snapshot a p=4 run, restore onto p'=2: the graph is re-partitioned,
  // the replicated weights carry over, and the continued trajectory must
  // still track the serial reference within float-reordering tolerance
  // (the same bar every distributed configuration is held to).
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int half = 2, total = 5;
  const GcnConfig cfg = ckpt_config(ds, total);

  auto serial = TrainerBuilder(ds).strategy("serial").gcn(cfg).build();
  const auto serial_metrics = serial->train();

  auto first = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("gvb")
                   .gcn(cfg)
                   .build();
  for (int e = 0; e < half; ++e) (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  first.reset();

  auto resumed = TrainerBuilder(ds).ranks(2).resume(snapshot);
  auto& dist = dynamic_cast<DistributedTrainer&>(*resumed);
  EXPECT_EQ(dist.config().p, 2);
  EXPECT_EQ(resumed->epochs_run(), half);
  resumed->train();

  const auto& metrics = resumed->result().epochs;
  ASSERT_EQ(metrics.size(), serial_metrics.size());
  for (std::size_t e = 0; e < metrics.size(); ++e) {
    EXPECT_NEAR(metrics[e].loss, serial_metrics[e].loss,
                5e-3 * std::max(1.0, serial_metrics[e].loss))
        << "epoch " << e;
    EXPECT_NEAR(metrics[e].train_accuracy, serial_metrics[e].train_accuracy,
                0.02)
        << "epoch " << e;
  }
  // Per-epoch volumes now describe the p'=2 geometry, averaged over the
  // post-restart epochs only.
  EXPECT_GT(resumed->result().phase_volumes.at("alltoall").megabytes_per_epoch,
            0.0);
}

TEST(CkptTrainer, ElasticThenSameGeometryResumeKeepsTrafficBase) {
  // A snapshot taken AFTER an elastic restart records a traffic history
  // that only covers the post-restart epochs. A later same-geometry
  // resume must inherit that base: per-epoch volumes keep dividing by the
  // epochs the recorder actually covers, not the total epoch count.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = ckpt_config(ds, 6);

  auto first = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("gvb")
                   .gcn(cfg)
                   .build();
  for (int e = 0; e < 2; ++e) (void)first->run_epoch();
  std::stringstream snap_p4;
  first->save(snap_p4);

  auto elastic = TrainerBuilder(ds).ranks(2).resume(snap_p4);
  for (int e = 0; e < 2; ++e) (void)elastic->run_epoch();
  std::stringstream snap_p2;
  elastic->save(snap_p2);

  auto resumed = TrainerBuilder(ds).resume(snap_p2);  // same geometry as p2
  resumed->train();  // epochs 5 and 6
  ASSERT_EQ(resumed->result().epochs_completed(), 6);

  // Ground truth: per-epoch traffic of a fresh p=2 run (epoch-invariant
  // for full-batch training). The resumed run's recorder covers epochs
  // 3..6 and must average over exactly those 4.
  auto fresh = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(2)
                   .partitioner("gvb")
                   .gcn(cfg)
                   .build();
  (void)fresh->run_epoch();
  EXPECT_DOUBLE_EQ(
      resumed->result().phase_volumes.at("alltoall").megabytes_per_epoch,
      fresh->result().phase_volumes.at("alltoall").megabytes_per_epoch);
}

TEST(CkptTrainer, ElasticRestartOnMoreRanksResumesTraining) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = ckpt_config(ds, 4);
  auto first =
      TrainerBuilder(ds).strategy("1d-sparse").ranks(2).gcn(cfg).build();
  (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);

  auto resumed = TrainerBuilder(ds).ranks(8).partitioner("metis").resume(snapshot);
  resumed->train();
  EXPECT_EQ(resumed->result().epochs_completed(), 4);
  EXPECT_EQ(dynamic_cast<DistributedTrainer&>(*resumed).config().p, 8);
}

TEST(CkptTrainer, SamePButDifferentPartitionerRestartsTrafficAccounting) {
  // Equal rank count is NOT enough to adopt the snapshot's communication
  // history: a different partitioner changes the permutation and halos,
  // so the resume must take the elastic path — per-epoch volumes then
  // cover only the post-restart epochs under the NEW layout, matching a
  // fresh same-config run exactly.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = ckpt_config(ds, 4);
  auto first = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("gvb")
                   .gcn(cfg)
                   .build();
  (void)first->run_epoch();
  (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);

  auto resumed = TrainerBuilder(ds).partitioner("metis").resume(snapshot);
  resumed->train();
  ASSERT_EQ(resumed->result().epochs_completed(), 4);
  const double resumed_mb =
      resumed->result().phase_volumes.at("alltoall").megabytes_per_epoch;

  // Ground truth for the post-restart per-epoch volume: a fresh metis run
  // (traffic is deterministic and epoch-independent for full-batch GCN).
  auto fresh = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("metis")
                   .gcn(cfg)
                   .build();
  (void)fresh->run_epoch();
  EXPECT_DOUBLE_EQ(
      resumed_mb,
      fresh->result().phase_volumes.at("alltoall").megabytes_per_epoch);
}

TEST(CkptTrainer, EpochsOverrideExtendsTheRun) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto first = TrainerBuilder(ds).strategy("serial").gcn(ckpt_config(ds, 2)).build();
  first->train();
  std::stringstream snapshot;
  first->save(snapshot);

  auto resumed = TrainerBuilder(ds).epochs(6).resume(snapshot);
  resumed->train();
  EXPECT_EQ(resumed->result().epochs_completed(), 6);
}

TEST(CkptTrainer, StrategyMismatchIsTypedErrorNamingBoth) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto first =
      TrainerBuilder(ds).strategy("1d-sparse").ranks(4).gcn(ckpt_config(ds, 2)).build();
  (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);

  try {
    (void)TrainerBuilder(ds).strategy("2d-sparse").resume(snapshot);
    FAIL() << "expected CheckpointMismatchError";
  } catch (const ckpt::CheckpointMismatchError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1d-sparse"), std::string::npos);
    EXPECT_NE(what.find("2d-sparse"), std::string::npos);
  }
}

TEST(CkptTrainer, DatasetMismatchIsTypedError) {
  const Dataset amazon = make_amazon_sim(DatasetScale::kTiny);
  auto first = TrainerBuilder(amazon).strategy("serial").gcn(ckpt_config(amazon, 2)).build();
  (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);

  const Dataset protein = make_protein_sim(DatasetScale::kTiny);
  EXPECT_THROW((void)TrainerBuilder(protein).resume(snapshot),
               ckpt::CheckpointMismatchError);
}

TEST(CkptTrainer, ExperimentSpecCheckpointKnobsRoundTripThroughFiles) {
  // The bench-runner path: one experiment saves to disk, a second resumes
  // from it (here with the same geometry) and must match the uninterrupted
  // trajectory bitwise.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = ::testing::TempDir() + "/sagnn_ckpt_spec.bin";

  ExperimentSpec spec;
  spec.strategy = "1d-sparse";
  spec.partitioner = "gvb";
  spec.p = 4;
  spec.epochs = 2;
  spec.checkpoint_to = path;
  const TrainResult first = run_experiment(ds, spec);

  // Resume: the checkpoint's configuration is authoritative (the stale
  // spec fields must NOT leak in as overrides); only resume_overrides do.
  ExperimentSpec resume_spec;
  resume_spec.resume_from = path;
  resume_spec.resume_overrides.epochs = 5;  // extend on resume
  const TrainResult resumed = run_experiment(ds, resume_spec);
  ASSERT_EQ(resumed.epochs_completed(), 5);

  spec.checkpoint_to.clear();
  spec.epochs = 5;
  const TrainResult reference = run_experiment(ds, spec);
  for (int e = 0; e < 5; ++e) {
    EXPECT_DOUBLE_EQ(resumed.epochs[static_cast<std::size_t>(e)].loss,
                     reference.epochs[static_cast<std::size_t>(e)].loss)
        << "epoch " << e;
  }
  EXPECT_DOUBLE_EQ(first.epochs[1].loss, reference.epochs[1].loss);
}

TEST(CkptTrainer, DamagedSnapshotsThrowTypedErrorsAtResume) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto first =
      TrainerBuilder(ds).strategy("1d-sparse").ranks(4).gcn(ckpt_config(ds, 2)).build();
  (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  const std::string bytes = snapshot.str();

  {
    // Truncation at half length lands inside a section payload or header.
    std::istringstream in(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW((void)TrainerBuilder(ds).resume(in),
                 ckpt::CheckpointTruncatedError);
  }
  {
    // Corrupt a payload byte well inside the stream (past the 16-byte
    // format header and the first section header): CRC must catch it.
    std::string corrupt = bytes;
    corrupt[64] ^= 0x01;
    std::istringstream in(corrupt);
    EXPECT_THROW((void)TrainerBuilder(ds).resume(in), ckpt::CheckpointCrcError);
  }
  {
    std::string wrong_version = bytes;
    wrong_version[8] = 42;
    std::istringstream in(wrong_version);
    EXPECT_THROW((void)TrainerBuilder(ds).resume(in),
                 ckpt::CheckpointFormatError);
  }
}

}  // namespace
}  // namespace sagnn
