// Timer sanity: monotonicity and that the thread-CPU clock tracks work done
// by this thread only.
#include <gtest/gtest.h>

#include <thread>

#include "common/timer.hpp"

namespace sagnn {
namespace {

TEST(WallTimer, AdvancesAndResets) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const double a = t.seconds();
  EXPECT_GT(a, 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), a + 1.0);
}

TEST(ThreadCpuTimer, CountsOwnWork) {
  ThreadCpuTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(ThreadCpuTimer, IgnoresOtherThreadsWork) {
  ThreadCpuTimer t;
  std::thread busy([] {
    volatile double sink = 0;
    for (int i = 0; i < 5000000; ++i) sink += i;
  });
  busy.join();  // this thread mostly slept/blocked
  // The other thread's CPU time must not be charged here. Allow generous
  // slack for the join bookkeeping itself.
  EXPECT_LT(t.seconds(), 0.05);
}

TEST(PhaseAccumulator, SumsAndCounts) {
  PhaseAccumulator acc;
  acc.add(0.5);
  acc.add(0.25);
  EXPECT_DOUBLE_EQ(acc.total(), 0.75);
  EXPECT_EQ(acc.count(), 2);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
}

}  // namespace
}  // namespace sagnn
