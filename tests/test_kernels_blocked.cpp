// Bitwise parity of the blocked/tiled production kernels against their
// single-thread reference twins, across thread counts and on the ragged
// shapes (f=1, f=7, n=1) where tile remainders live. Matrix::operator== is
// exact element equality — no tolerance anywhere in this file.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { set_parallel_threads(0); }
};

const int kThreadCounts[] = {1, 2, 8};

CsrMatrix random_csr(vid_t n_rows, vid_t n_cols, eid_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n_rows, n_cols);
  for (eid_t i = 0; i < nnz; ++i) {
    coo.add(static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_rows))),
            static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_cols))),
            rng.uniform(-2, 2));
  }
  return CsrMatrix::from_coo(coo);
}

TEST(BlockedKernels, SpmmBitwiseMatchesReferenceOnRaggedShapes) {
  ThreadCountGuard guard;
  Rng rng(11);
  // (rows, cols, nnz, f) covering skew, a single row, and f in {1, 7}.
  const struct {
    vid_t rows, cols;
    eid_t nnz;
    vid_t f;
  } shapes[] = {
      {129, 65, 700, 1}, {64, 64, 511, 7}, {1, 40, 25, 7}, {257, 129, 3000, 16}};
  for (const auto& s : shapes) {
    const CsrMatrix a = random_csr(s.rows, s.cols, s.nnz, s.rows * 31 + s.f);
    const Matrix h = Matrix::random_uniform(s.cols, s.f, rng);
    Matrix want(s.rows, s.f);
    spmm_accumulate_reference(a, h, want);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got(s.rows, s.f);
      spmm_accumulate(a, h, got);
      EXPECT_TRUE(got == want) << s.rows << "x" << s.cols << " f=" << s.f
                               << " threads=" << t;
    }
  }
}

TEST(BlockedKernels, GemmBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(12);
  const struct {
    vid_t m, n, k;
  } shapes[] = {{100, 1, 1}, {1, 7, 5}, {131, 7, 7}, {77, 65, 130}, {200, 16, 16}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_uniform(s.m, s.n, rng);
    const Matrix b = Matrix::random_uniform(s.n, s.k, rng);
    Matrix want(s.m, s.k);
    gemm_accumulate_reference(a, b, want);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got(s.m, s.k);
      gemm_accumulate(a, b, got);
      EXPECT_TRUE(got == want) << s.m << "x" << s.n << "x" << s.k
                               << " threads=" << t;
    }
  }
}

TEST(BlockedKernels, GemmAtBBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(13);
  // n spans the kTileP=48 edge (47/48/49) plus the ragged minima.
  const struct {
    vid_t m, n, k;
  } shapes[] = {{300, 1, 1}, {1, 7, 3}, {211, 7, 64}, {100, 47, 65},
                {100, 48, 64}, {100, 49, 63}, {500, 16, 16}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_uniform(s.m, s.n, rng);
    const Matrix b = Matrix::random_uniform(s.m, s.k, rng);
    const Matrix want = gemm_at_b_reference(a, b);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      EXPECT_TRUE(gemm_at_b(a, b) == want)
          << s.m << "x" << s.n << "x" << s.k << " threads=" << t;
    }
  }
}

TEST(BlockedKernels, GemmABtBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(14);
  // k spans the kTileJ=64 edge; n=1 exercises the degenerate dot product.
  const struct {
    vid_t m, n, k;
  } shapes[] = {{300, 1, 1}, {1, 7, 3}, {211, 7, 63}, {100, 33, 64},
                {100, 33, 65}, {500, 16, 16}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_uniform(s.m, s.n, rng);
    const Matrix b = Matrix::random_uniform(s.k, s.n, rng);
    const Matrix want = gemm_a_bt_reference(a, b);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      EXPECT_TRUE(gemm_a_bt(a, b) == want)
          << s.m << "x" << s.n << "x" << s.k << " threads=" << t;
    }
  }
}

TEST(BlockedKernels, SpmmInsideSerialRegionStillMatches) {
  // The path every simulated rank takes: kernel called under the nesting
  // guard must produce the same bits as the pooled path.
  ThreadCountGuard guard;
  set_parallel_threads(8);
  Rng rng(15);
  const CsrMatrix a = random_csr(120, 80, 900, 21);
  const Matrix h = Matrix::random_uniform(80, 9, rng);
  Matrix pooled(120, 9);
  spmm_accumulate(a, h, pooled);
  Matrix guarded(120, 9);
  {
    SerialRegion serial;
    spmm_accumulate(a, h, guarded);
  }
  EXPECT_TRUE(pooled == guarded);
}

}  // namespace
}  // namespace sagnn
