// Partitioner correctness: validity, balance, determinism, relabeling, and
// known-optimum structures.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "sparse/permute.hpp"

namespace sagnn {
namespace {

CsrMatrix test_graph(std::uint64_t seed = 1) {
  Rng rng(seed);
  return CsrMatrix::from_coo(erdos_renyi(400, 2400, rng));
}

TEST(Partition, PartSizesAndValidate) {
  Partition p;
  p.k = 3;
  p.part_of = {0, 1, 1, 2, 0};
  p.validate();
  EXPECT_EQ(p.part_sizes(), (std::vector<vid_t>{2, 2, 1}));
}

TEST(Partition, ValidateRejectsOutOfRangeAndEmpty) {
  Partition p;
  p.k = 2;
  p.part_of = {0, 3};
  EXPECT_THROW(p.validate(), Error);
  p.part_of = {0, 0};
  EXPECT_THROW(p.validate(), Error);  // part 1 empty
}

TEST(Partition, RelabelPermutationContiguousAndOrderPreserving) {
  Partition p;
  p.k = 2;
  p.part_of = {1, 0, 1, 0};
  const auto perm = p.relabel_permutation();
  EXPECT_TRUE(is_permutation(perm));
  // Part 0 members (vertices 1, 3) get labels 0,1 in original order.
  EXPECT_EQ(perm[1], 0);
  EXPECT_EQ(perm[3], 1);
  EXPECT_EQ(perm[0], 2);
  EXPECT_EQ(perm[2], 3);
}

class PartitionerValidity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PartitionerValidity, ProducesValidBalancedPartition) {
  const auto& [name, k] = GetParam();
  const CsrMatrix a = test_graph();
  const auto part = make_partitioner(name)->partition(a, k);
  part.validate();
  EXPECT_EQ(part.n(), a.n_rows());
  EXPECT_EQ(part.k, k);
  // Vertex-count balance within a generous envelope (optimizing
  // partitioners balance nnz, which on ER graphs tracks vertices).
  const auto sizes = part.part_sizes();
  const double avg = static_cast<double>(a.n_rows()) / k;
  for (vid_t s : sizes) EXPECT_LT(s, 1.6 * avg + 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionerValidity,
    ::testing::Combine(::testing::Values("block", "random", "metis", "gvb"),
                       ::testing::Values(1, 2, 4, 7, 16)));

TEST(Partition, BlockPartitionerIsContiguous) {
  const CsrMatrix a = test_graph();
  const auto part = BlockPartitioner().partition(a, 5);
  for (vid_t v = 1; v < a.n_rows(); ++v) {
    EXPECT_GE(part.part_of[static_cast<std::size_t>(v)],
              part.part_of[static_cast<std::size_t>(v - 1)]);
  }
}

TEST(Partition, RandomPartitionerIsDeterministicPerSeed) {
  const CsrMatrix a = test_graph();
  const auto p1 = RandomPartitioner(5).partition(a, 4);
  const auto p2 = RandomPartitioner(5).partition(a, 4);
  const auto p3 = RandomPartitioner(6).partition(a, 4);
  EXPECT_EQ(p1.part_of, p2.part_of);
  EXPECT_NE(p1.part_of, p3.part_of);
}

TEST(Partition, MultilevelIsDeterministicPerSeed) {
  const CsrMatrix a = test_graph();
  PartitionerOptions opts;
  opts.seed = 77;
  const auto p1 = EdgeCutPartitioner(opts).partition(a, 8);
  const auto p2 = EdgeCutPartitioner(opts).partition(a, 8);
  EXPECT_EQ(p1.part_of, p2.part_of);
}

TEST(Partition, OptimizingPartitionersInvariantToThreadCount) {
  // The parallel-coarsening determinism contract: for a fixed seed the
  // assignment vector is identical at every pool size (round-synchronous
  // propose-accept matching; no sequential visit order anywhere).
  const CsrMatrix a = test_graph(3);
  PartitionerOptions opts;
  opts.seed = 123;
  for (const char* name : {"metis", "gvb"}) {
    std::vector<std::vector<vid_t>> results;
    for (int t : {1, 2, 8}) {
      set_parallel_threads(t);
      results.push_back(make_partitioner(name, opts)->partition(a, 8).part_of);
    }
    set_parallel_threads(0);
    EXPECT_EQ(results[0], results[1]) << name << " differs at 2 threads";
    EXPECT_EQ(results[0], results[2]) << name << " differs at 8 threads";
  }
}

TEST(Partition, MultilevelRecoversRingOfCliques) {
  // k cliques joined in a ring: the optimal k-way cut is exactly k ring
  // edges; a competent partitioner should land on (or very near) it.
  const CsrMatrix a = CsrMatrix::from_coo(ring_of_cliques(8, 16));
  const auto part = EdgeCutPartitioner().partition(a, 8);
  const auto stats = compute_volume_stats(a, part);
  EXPECT_LE(stats.edgecut, 16);  // optimum is 8; allow slack
}

TEST(Partition, MultilevelBeatsRandomOnEdgecut) {
  Rng rng(9);
  const CsrMatrix a =
      CsrMatrix::from_coo(clustered_graph(1024, 64, 8, 0.05, rng));
  const auto random_cut =
      compute_volume_stats(a, RandomPartitioner().partition(a, 8)).edgecut;
  const auto metis_cut =
      compute_volume_stats(a, EdgeCutPartitioner().partition(a, 8)).edgecut;
  EXPECT_LT(metis_cut, random_cut / 4);
}

TEST(Partition, GvbValidOnCliqueRing) {
  const CsrMatrix a = CsrMatrix::from_coo(ring_of_cliques(6, 12));
  const auto part = GvbPartitioner().partition(a, 6);
  part.validate();
  const auto stats = compute_volume_stats(a, part);
  EXPECT_LE(stats.edgecut, 14);
}

TEST(Partition, FactoryRejectsUnknownListingRegisteredNames) {
  try {
    make_partitioner("zoltan");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("zoltan"), std::string::npos);
    for (const char* name : {"block", "random", "metis", "gvb"}) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(Partition, FactoryAcceptsDescriptiveAliases) {
  // The short registry name and each partitioner's descriptive name()
  // resolve to the same implementation — the historical "metis" vs
  // "edgecut(metis-like)" mismatch must not silently default.
  EXPECT_EQ(make_partitioner("metis")->name(), "edgecut(metis-like)");
  EXPECT_EQ(make_partitioner("edgecut(metis-like)")->name(),
            "edgecut(metis-like)");
  EXPECT_EQ(make_partitioner("edgecut")->name(), "edgecut(metis-like)");
  EXPECT_EQ(make_partitioner("gvb(volume-balancing)")->name(),
            make_partitioner("gvb")->name());
}

TEST(Partition, SinglePartIsTrivial) {
  const CsrMatrix a = test_graph();
  for (const char* name : {"block", "random", "metis", "gvb"}) {
    const auto part = make_partitioner(name)->partition(a, 1);
    const auto stats = compute_volume_stats(a, part);
    EXPECT_EQ(stats.edgecut, 0) << name;
    EXPECT_EQ(stats.total_rows(), 0u) << name;
  }
}

TEST(Partition, RelabeledMatrixHasContiguousParts) {
  const CsrMatrix a = test_graph();
  const auto part = EdgeCutPartitioner().partition(a, 4);
  const auto perm = part.relabel_permutation();
  const CsrMatrix b = permute_symmetric(a, perm);
  // After relabeling, block-partitioning by part sizes must reproduce the
  // same edgecut as the original partition.
  const auto ranges_sizes = part.part_sizes();
  Partition blocked;
  blocked.k = part.k;
  blocked.part_of.resize(part.part_of.size());
  vid_t v = 0;
  for (int p = 0; p < part.k; ++p) {
    for (vid_t i = 0; i < ranges_sizes[static_cast<std::size_t>(p)]; ++i) {
      blocked.part_of[static_cast<std::size_t>(v++)] = static_cast<vid_t>(p);
    }
  }
  EXPECT_EQ(compute_volume_stats(b, blocked).edgecut,
            compute_volume_stats(a, part).edgecut);
}

}  // namespace
}  // namespace sagnn
