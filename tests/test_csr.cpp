// CSR invariants, conversion, transpose, element access, GCN normalization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/csr.hpp"

namespace sagnn {
namespace {

CooMatrix small_coo() {
  CooMatrix coo(3, 4);
  coo.add(0, 0, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(1, 1, 3.0f);
  coo.add(2, 3, 4.0f);
  return coo;
}

TEST(Csr, FromCooShape) {
  const CsrMatrix a = CsrMatrix::from_coo(small_coo());
  EXPECT_EQ(a.n_rows(), 3);
  EXPECT_EQ(a.n_cols(), 4);
  EXPECT_EQ(a.nnz(), 4);
  a.validate();
}

TEST(Csr, FromCooSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(0, 0, 2.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
}

TEST(Csr, AtReturnsZeroForAbsent) {
  const CsrMatrix a = CsrMatrix::from_coo(small_coo());
  EXPECT_FLOAT_EQ(a.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(a.at(0, 2), 2.0f);
  EXPECT_THROW(a.at(3, 0), Error);
}

TEST(Csr, ZerosIsEmpty) {
  const CsrMatrix a = CsrMatrix::zeros(5, 7);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.n_rows(), 5);
  a.validate();
}

TEST(Csr, RowAccessors) {
  const CsrMatrix a = CsrMatrix::from_coo(small_coo());
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_cols(0)[1], 2);
  EXPECT_FLOAT_EQ(a.row_vals(1)[0], 3.0f);
}

TEST(Csr, TransposeRoundTrip) {
  Rng rng(5);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(50, 400, rng));
  const CsrMatrix att = a.transpose().transpose();
  EXPECT_EQ(a, att);
}

TEST(Csr, TransposeElementwise) {
  const CsrMatrix a = CsrMatrix::from_coo(small_coo());
  const CsrMatrix t = a.transpose();
  EXPECT_EQ(t.n_rows(), 4);
  EXPECT_EQ(t.n_cols(), 3);
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    for (vid_t c = 0; c < a.n_cols(); ++c) {
      EXPECT_FLOAT_EQ(a.at(r, c), t.at(c, r));
    }
  }
}

TEST(Csr, SymmetricGraphEqualsItsTranspose) {
  Rng rng(6);
  CooMatrix coo = erdos_renyi(64, 500, rng);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a, a.transpose());
}

TEST(Csr, NormalizeSymmetricRowSumsOfRegularGraph) {
  // For a k-regular graph with self loops, Â rows sum to 1 exactly when all
  // degrees are equal.
  CooMatrix ring(4, 4);
  for (vid_t v = 0; v < 4; ++v) {
    ring.add(v, (v + 1) % 4, 1.0f);
    ring.add(v, (v + 3) % 4, 1.0f);
    ring.add(v, v, 1.0f);
  }
  CsrMatrix a = CsrMatrix::from_coo(ring);
  a.normalize_symmetric();
  for (vid_t v = 0; v < 4; ++v) {
    real_t sum = 0;
    for (real_t x : a.row_vals(v)) sum += x;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(Csr, NormalizePreservesSymmetry) {
  Rng rng(7);
  CooMatrix coo = erdos_renyi(40, 200, rng);
  coo.add_identity();
  CsrMatrix a = CsrMatrix::from_coo(coo);
  a.normalize_symmetric();
  const CsrMatrix t = a.transpose();
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    auto av = a.row_vals(r);
    auto tv = t.row_vals(r);
    ASSERT_EQ(av.size(), tv.size());
    for (std::size_t i = 0; i < av.size(); ++i) EXPECT_NEAR(av[i], tv[i], 1e-7f);
  }
}

TEST(Csr, ValidateRejectsBadColumnOrder) {
  std::vector<eid_t> ptr{0, 2};
  std::vector<vid_t> col{1, 0};  // decreasing
  std::vector<real_t> val{1, 1};
  EXPECT_THROW(CsrMatrix(1, 2, ptr, col, val), Error);
}

TEST(Csr, ValidateRejectsOutOfRangeColumn) {
  std::vector<eid_t> ptr{0, 1};
  std::vector<vid_t> col{5};
  std::vector<real_t> val{1};
  EXPECT_THROW(CsrMatrix(1, 2, ptr, col, val), Error);
}

TEST(Csr, ValidateRejectsBadRowPtr) {
  std::vector<eid_t> ptr{0, 2, 1};
  std::vector<vid_t> col{0, 1};
  std::vector<real_t> val{1, 1};
  EXPECT_THROW(CsrMatrix(2, 2, ptr, col, val), Error);
}

}  // namespace
}  // namespace sagnn
