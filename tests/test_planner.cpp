// The strategy planner (src/plan/): census statistics and their closed
// forms, search-space pinning, fail-fast unknown-name errors, ranked-plan
// determinism across host thread counts (predictions are pure arithmetic —
// no measurement), and the TrainerBuilder::autotune() end-to-end surface.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/parallel.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"
#include "plan/planner.hpp"

namespace sagnn {
namespace {

Dataset degenerate_dataset() {
  Dataset ds;
  ds.name = "one-vertex";
  ds.adjacency = CsrMatrix::zeros(1, 1);  // n = 1, nnz = 0
  ds.features = Matrix(1, 3);
  ds.labels = {0};
  ds.n_classes = 1;
  ds.train_mask = {1};
  return ds;
}

TEST(Census, RecordsGlobalCountsAndDegreeShape) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  EXPECT_EQ(census.n, ds.n_vertices());
  EXPECT_EQ(census.nnz, ds.n_edges());
  EXPECT_EQ(census.f, ds.n_features());
  EXPECT_EQ(census.n_classes, ds.n_classes);
  EXPECT_NEAR(census.avg_degree,
              static_cast<double>(ds.n_edges()) / ds.n_vertices(), 1e-9);
  EXPECT_GE(census.degree_skew, 1.0);
  EXPECT_FALSE(census.probes.empty());
}

TEST(Census, RandomHaloClosedFormBrackets) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  EXPECT_EQ(census.random_expected_halo_rows(1), 0.0);
  // More parts always means more (expected) halo.
  const double h4 = census.random_expected_halo_rows(4);
  const double h16 = census.random_expected_halo_rows(16);
  EXPECT_GT(h4, 0.0);
  EXPECT_GT(h16, h4);
  // A partitioner can only be predicted at or below random's halo when its
  // probes say so; gvb's probes must say so on a clustered graph.
  EXPECT_LE(census.expected_halo_rows("gvb", 8),
            census.random_expected_halo_rows(8));
}

TEST(Census, DegenerateGraphYieldsZeroHaloAndNoProbes) {
  const GraphCensus census = take_census(degenerate_dataset());
  EXPECT_EQ(census.n, 1u);
  EXPECT_EQ(census.nnz, 0u);
  EXPECT_EQ(census.avg_degree, 0.0);
  // Every probe k clamps to n = 1 and is dropped; the closed forms still
  // answer (zero halo, unit imbalance) instead of crashing.
  EXPECT_EQ(census.expected_halo_rows("block", 4), 0.0);
  EXPECT_EQ(census.expected_send_imbalance("block", 4), 1.0);
  EXPECT_EQ(census.expected_compute_imbalance("block", 4), 1.0);
}

TEST(Planner, PinnedKnobsShrinkTheSearchSpace) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  PlannerOptions opts;
  opts.pinned_p = 8;
  opts.strategies = {"1.5d-sparse"};
  opts.partitioners = {"gvb"};
  const Plan plan = plan_strategies(census, opts);
  ASSERT_FALSE(plan.ranked.empty());
  for (const PlanCandidate& cand : plan.ranked) {
    EXPECT_EQ(cand.p, 8);
    EXPECT_EQ(cand.strategy, "1.5d-sparse");
    EXPECT_EQ(cand.partitioner, "gvb");
  }
  // c stays searched: {1, 2} are the valid 1.5D factors at p = 8.
  EXPECT_EQ(plan.ranked.size(), 2u);
}

TEST(Planner, UnknownNamesFailFast) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  PlannerOptions opts;
  opts.strategies = {"bogus-strategy"};
  EXPECT_THROW(plan_strategies(census, opts), UnknownNameError);
  opts.strategies.clear();
  opts.partitioners = {"zoltan"};
  EXPECT_THROW(plan_strategies(census, opts), UnknownNameError);
}

TEST(Planner, InvalidGeometriesAreSkippedWithDiagnostics) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  PlannerOptions opts;
  opts.pinned_p = 8;  // not a square: no 2D candidate exists
  opts.strategies = {"2d-sparse"};
  opts.partitioners = {"block"};
  const Plan plan = plan_strategies(census, opts);
  EXPECT_TRUE(plan.ranked.empty());
  EXPECT_FALSE(plan.skipped.empty());
  EXPECT_THROW(plan.best(), Error);
}

TEST(Planner, RankingIsDeterministicAcrossThreadCounts) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  PlannerOptions opts;
  opts.p_grid = {4, 8};
  const auto plan_at = [&](int threads) {
    set_parallel_threads(threads);
    return plan_strategies(take_census(ds), opts);
  };
  const Plan a = plan_at(1);
  const Plan b = plan_at(4);
  set_parallel_threads(0);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].strategy, b.ranked[i].strategy) << "rank " << i;
    EXPECT_EQ(a.ranked[i].partitioner, b.ranked[i].partitioner) << "rank " << i;
    EXPECT_EQ(a.ranked[i].p, b.ranked[i].p) << "rank " << i;
    EXPECT_EQ(a.ranked[i].c, b.ranked[i].c) << "rank " << i;
    EXPECT_EQ(a.ranked[i].chunks, b.ranked[i].chunks) << "rank " << i;
    // Bitwise: the prediction is pure arithmetic over the census.
    EXPECT_EQ(a.ranked[i].seconds, b.ranked[i].seconds) << "rank " << i;
  }
}

TEST(Planner, EveryRegisteredStrategyImplementsPredictCost) {
  // The planner is only as wide as its predictors: a strategy landing in
  // the registry without predict_cost() would silently vanish from every
  // plan. Price one valid geometry per strategy to pin the contract.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GraphCensus census = take_census(ds);
  PlannerOptions opts;
  opts.pinned_p = 16;  // square AND cube-compatible: every family fits
  opts.partitioners = {"block"};
  const Plan plan = plan_strategies(census, opts);
  std::vector<std::string> planned;
  for (const PlanCandidate& cand : plan.ranked) planned.push_back(cand.strategy);
  for (const std::string& name : strategy_registry().names()) {
    EXPECT_NE(std::find(planned.begin(), planned.end(), name), planned.end())
        << name << " produced no valid candidate at p=16";
  }
}

TEST(TrainerBuilderAutotune, PinsBuilderKnobsAndAdoptsTheWinner) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainerBuilder builder(ds);
  builder.ranks(4).partitioner("gvb").epochs(2).autotune();
  const Plan& plan = builder.plan();
  ASSERT_FALSE(plan.ranked.empty());
  for (const PlanCandidate& cand : plan.ranked) {
    EXPECT_EQ(cand.p, 4);
    EXPECT_EQ(cand.partitioner, "gvb");
  }
  const PlanCandidate& best = plan.best();
  EXPECT_EQ(builder.peek().strategy, best.strategy);
  EXPECT_EQ(builder.peek().partitioner, best.partitioner);
  EXPECT_EQ(builder.peek().p, best.p);
  EXPECT_EQ(builder.peek().c, best.c);
  EXPECT_EQ(builder.peek().pipeline_chunks, best.chunks);

  // The adopted configuration must actually train.
  auto trainer = builder.build();
  trainer->train();
  EXPECT_EQ(trainer->result().epochs_completed(), 2);
}

TEST(TrainerBuilderAutotune, RejectsBuiltInSingleRankModes) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(TrainerBuilder(ds).strategy("serial").autotune(), Error);
}

TEST(TrainerBuilderFailFast, UnknownStrategyThrowsAtTheSetterCall) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainerBuilder builder(ds);
  try {
    builder.strategy("bogus-strategy");
    FAIL() << "strategy() accepted an unknown name";
  } catch (const UnknownNameError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus-strategy"), std::string::npos);
    EXPECT_NE(what.find("1d-sparse"), std::string::npos);
    EXPECT_NE(what.find("3d"), std::string::npos);
    EXPECT_NE(what.find("serial"), std::string::npos);  // built-ins listed
  }
  // The builder is untouched by the failed call.
  EXPECT_EQ(builder.peek().strategy, "serial");
}

TEST(TrainerBuilderFailFast, UnknownPartitionerThrowsAtTheSetterCall) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainerBuilder builder(ds);
  EXPECT_THROW(builder.partitioner("zoltan"), UnknownNameError);
  EXPECT_EQ(builder.peek().partitioner, "block");
  // Aliases are valid vocabulary, exactly like create().
  builder.partitioner("gvb(volume-balancing)");
  EXPECT_EQ(builder.peek().partitioner, "gvb(volume-balancing)");
}

TEST(RegistryCatalog, ListsCanonicalNamesWithAliases) {
  const std::string catalog = strategy_registry().catalog();
  EXPECT_NE(catalog.find("3d (aka 3d-comm-avoiding)"), std::string::npos);
  EXPECT_NE(catalog.find("summa"), std::string::npos);
  const auto aliases = strategy_registry().aliases("2d-oblivious");
  EXPECT_NE(std::find(aliases.begin(), aliases.end(), "summa"), aliases.end());
  EXPECT_TRUE(strategy_registry().aliases("no-such-strategy").empty());
}

}  // namespace
}  // namespace sagnn
