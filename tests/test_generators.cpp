// Graph generator properties: symmetry, simplicity, determinism, and the
// structural regimes the dataset analogues rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "sparse/csr.hpp"

namespace sagnn {
namespace {

void expect_simple_symmetric(const CsrMatrix& a) {
  EXPECT_EQ(a, a.transpose());
  for (vid_t v = 0; v < a.n_rows(); ++v) {
    EXPECT_FLOAT_EQ(a.at(v, v), 0.0f) << "self loop at " << v;
  }
  for (real_t x : a.vals()) EXPECT_FLOAT_EQ(x, 1.0f);
}

TEST(Generators, ErdosRenyiIsSimpleSymmetric) {
  Rng rng(1);
  expect_simple_symmetric(CsrMatrix::from_coo(erdos_renyi(100, 500, rng)));
}

TEST(Generators, ErdosRenyiDeterministic) {
  Rng a(7), b(7);
  EXPECT_EQ(CsrMatrix::from_coo(erdos_renyi(50, 200, a)),
            CsrMatrix::from_coo(erdos_renyi(50, 200, b)));
}

TEST(Generators, RmatIsSimpleSymmetric) {
  Rng rng(2);
  expect_simple_symmetric(CsrMatrix::from_coo(rmat(8, 4, rng)));
}

TEST(Generators, RmatHasSkewedDegrees) {
  // R-MAT's point: a heavy-tailed degree distribution (max degree far above
  // the average), which drives communication imbalance.
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(11, 8, rng));
  const DegreeStats st = degree_stats(a);
  EXPECT_GT(st.max, 5 * st.avg);
}

TEST(Generators, ErdosRenyiDegreesAreFlat) {
  Rng rng(4);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(2048, 2048 * 8, rng));
  const DegreeStats st = degree_stats(a);
  EXPECT_LT(st.max, 4 * st.avg);
}

TEST(Generators, ClusteredGraphIsSimpleSymmetric) {
  Rng rng(5);
  expect_simple_symmetric(
      CsrMatrix::from_coo(clustered_graph(512, 64, 6, 0.1, rng)));
}

TEST(Generators, ClusteredGraphWithoutScrambleIsBlockLocal) {
  // Without scrambling, nearly all edges stay within or next to the home
  // cluster — the "regular" structure a partitioner can recover.
  Rng rng(6);
  const vid_t cluster = 64;
  const CsrMatrix a = CsrMatrix::from_coo(
      clustered_graph(1024, cluster, 8, 0.05, rng, /*scramble_ids=*/false));
  eid_t near = 0;
  for (vid_t v = 0; v < a.n_rows(); ++v) {
    const vid_t cv = v / cluster;
    for (vid_t u : a.row_cols(v)) {
      const vid_t cu = u / cluster;
      if (cu == cv || cu == (cv + 1) % 16 || cv == (cu + 1) % 16) ++near;
    }
  }
  EXPECT_EQ(near, a.nnz());
}

TEST(Generators, RingOfCliquesKnownStructure) {
  const CsrMatrix a = CsrMatrix::from_coo(ring_of_cliques(4, 5));
  EXPECT_EQ(a.n_rows(), 20);
  // Each clique contributes C(5,2)=10 undirected edges + 4 ring edges.
  EXPECT_EQ(a.nnz(), 2 * (4 * 10 + 4));
  expect_simple_symmetric(a);
}

TEST(Generators, GridGraphDegrees) {
  const CsrMatrix a = CsrMatrix::from_coo(grid_graph(4, 5));
  EXPECT_EQ(a.n_rows(), 20);
  const DegreeStats st = degree_stats(a);
  EXPECT_EQ(st.min, 2);  // corners
  EXPECT_EQ(st.max, 4);  // interior
  expect_simple_symmetric(a);
}

TEST(Generators, DegreeStatsOnEmpty) {
  const DegreeStats st = degree_stats(CsrMatrix::zeros(0, 0));
  EXPECT_EQ(st.max, 0);
  EXPECT_DOUBLE_EQ(st.avg, 0.0);
}

TEST(Generators, RmatCsrBitExactParityWithCooPath) {
  // The streamed CSR builder must be a pure representation change: same
  // graph, bit for bit, AND the same RNG consumption (final generator
  // states equal), for both scramble settings.
  for (const bool scramble : {true, false}) {
    RmatParams params;
    params.scramble_ids = scramble;
    Rng coo_rng(77), csr_rng(77);
    const CsrMatrix via_coo = CsrMatrix::from_coo(rmat(9, 6, coo_rng, params));
    const CsrMatrix direct = rmat_csr(9, 6, csr_rng, params);
    EXPECT_EQ(via_coo, direct) << "scramble=" << scramble;
    EXPECT_EQ(coo_rng.save_state(), csr_rng.save_state())
        << "scramble=" << scramble;
  }
}

TEST(Generators, RmatCsrIsSimpleSymmetric) {
  Rng rng(8);
  expect_simple_symmetric(rmat_csr(10, 5, rng));
}

TEST(Generators, RmatCsrDeterministic) {
  Rng a(15), b(15);
  EXPECT_EQ(rmat_csr(10, 6, a), rmat_csr(10, 6, b));
}

TEST(Generators, RmatCsrScalesToMillionsOfEdges) {
  // The scale-up knob: 2^19 vertices x 8 = 4M generated edges, streamed
  // straight into CSR. Beyond memory viability, the structural properties
  // must survive the streaming build: symmetry, no self loops, unit
  // values, and the heavy degree tail.
  Rng rng(16);
  const CsrMatrix a = rmat_csr(19, 8, rng);
  EXPECT_EQ(a.n_rows(), vid_t{1} << 19);
  EXPECT_GT(a.nnz(), eid_t{4} * 1000 * 1000);
  a.validate();
  for (vid_t v = 0; v < a.n_rows(); v += 997) {
    EXPECT_FLOAT_EQ(a.at(v, v), 0.0f) << "self loop at " << v;
  }
  // Spot-check symmetry without materializing a transpose of 4M+ entries
  // twice: every arc of a sampled row must have its reverse.
  for (vid_t v = 0; v < a.n_rows(); v += 4999) {
    for (vid_t u : a.row_cols(v)) {
      EXPECT_NE(a.at(u, v), 0.0f) << "missing reverse arc " << u << "->" << v;
    }
  }
  const DegreeStats st = degree_stats(a);
  EXPECT_GT(st.max, 20 * st.avg);
}

}  // namespace
}  // namespace sagnn
