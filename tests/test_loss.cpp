// Masked softmax cross-entropy: statistics and gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/loss.hpp"

namespace sagnn {
namespace {

TEST(Loss, UniformLogitsGiveLogC) {
  const Matrix logits(2, 4);  // all zeros -> uniform softmax
  const std::vector<vid_t> labels{0, 3};
  const std::vector<std::uint8_t> mask{1, 1};
  const LossStats stats = softmax_xent_stats(logits, labels, mask);
  EXPECT_EQ(stats.count, 2);
  EXPECT_NEAR(stats.mean_loss(), std::log(4.0), 1e-5);
}

TEST(Loss, MaskExcludesRows) {
  Matrix logits(3, 2);
  logits(0, 0) = 100.0f;  // confidently class 0
  logits(1, 1) = 100.0f;
  logits(2, 0) = 100.0f;
  const std::vector<vid_t> labels{0, 1, 1};  // row 2 is wrong but unmasked
  const std::vector<std::uint8_t> mask{1, 1, 0};
  const LossStats stats = softmax_xent_stats(logits, labels, mask);
  EXPECT_EQ(stats.count, 2);
  EXPECT_EQ(stats.correct, 2);
  EXPECT_NEAR(stats.mean_loss(), 0.0, 1e-5);
  EXPECT_DOUBLE_EQ(stats.accuracy(), 1.0);
}

TEST(Loss, GradZeroOnUnmaskedRows) {
  Matrix logits(2, 3);
  logits(0, 1) = 2.0f;
  logits(1, 2) = 2.0f;
  const std::vector<vid_t> labels{1, 2};
  const std::vector<std::uint8_t> mask{0, 1};
  const Matrix grad = softmax_xent_grad(logits, labels, mask, 1);
  for (vid_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(grad(0, c), 0.0f);
  // Masked row has nonzero gradient that sums to ~0.
  real_t sum = 0;
  bool nonzero = false;
  for (vid_t c = 0; c < 3; ++c) {
    sum += grad(1, c);
    nonzero |= grad(1, c) != 0.0f;
  }
  EXPECT_TRUE(nonzero);
  EXPECT_NEAR(sum, 0.0f, 1e-6f);
}

TEST(Loss, GradMatchesFiniteDifference) {
  Rng rng(1);
  Matrix logits = Matrix::random_uniform(4, 5, rng);
  const std::vector<vid_t> labels{1, 0, 4, 2};
  const std::vector<std::uint8_t> mask{1, 0, 1, 1};
  const Matrix grad = softmax_xent_grad(logits, labels, mask, 3);

  const double eps = 1e-3;
  for (vid_t r = 0; r < 4; ++r) {
    for (vid_t c = 0; c < 5; ++c) {
      Matrix lp = logits, lm = logits;
      lp(r, c) += static_cast<real_t>(eps);
      lm(r, c) -= static_cast<real_t>(eps);
      const double fp = softmax_xent_stats(lp, labels, mask).loss_sum / 3.0;
      const double fm = softmax_xent_stats(lm, labels, mask).loss_sum / 3.0;
      const double fd = (fp - fm) / (2 * eps);
      EXPECT_NEAR(grad(r, c), fd, 5e-3) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(Loss, GradRespectsGlobalCount) {
  // Distributed use: the local gradient is scaled by the GLOBAL count.
  Matrix logits(1, 2);
  logits(0, 0) = 1.0f;
  const std::vector<vid_t> labels{0};
  const std::vector<std::uint8_t> mask{1};
  const Matrix g1 = softmax_xent_grad(logits, labels, mask, 1);
  const Matrix g4 = softmax_xent_grad(logits, labels, mask, 4);
  EXPECT_NEAR(g4(0, 0) * 4.0f, g1(0, 0), 1e-6f);
}

TEST(Loss, LabelOutOfRangeThrows) {
  const Matrix logits(1, 2);
  const std::vector<vid_t> labels{5};
  const std::vector<std::uint8_t> mask{1};
  EXPECT_THROW(softmax_xent_stats(logits, labels, mask), Error);
}

TEST(Loss, EmptyMaskIsZeroStats) {
  const Matrix logits(2, 2);
  const std::vector<vid_t> labels{0, 1};
  const std::vector<std::uint8_t> mask{0, 0};
  const LossStats stats = softmax_xent_stats(logits, labels, mask);
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.mean_loss(), 0.0);
  EXPECT_THROW(softmax_xent_grad(logits, labels, mask, 0), Error);
}

}  // namespace
}  // namespace sagnn
