// Periodic auto-checkpointing inside DistributedTrainer::train(): every N
// completed epochs a resumable snapshot lands (atomically) at the
// configured path; resuming from it continues bit-identically.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

GcnConfig tiny_config(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

std::string temp_ckpt_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(AutoCheckpoint, TrainSnapshotsEveryNEpochsAndResumesBitIdentically) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_auto_ckpt_test.ckpt");
  std::filesystem::remove(path);

  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .partitioner("gvb")
                     .gcn(tiny_config(ds, 5))
                     .auto_checkpoint(path, 2)
                     .build();
  trainer->train();
  const TrainResult& full = trainer->result();

  // train() ran epochs 1..5; snapshots fired after epochs 2 and 4, so the
  // file on disk holds the epoch-4 state (the tmp sibling must be gone).
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  auto resumed = TrainerBuilder(ds).resume(in);
  EXPECT_EQ(resumed->epochs_run(), 4);
  resumed->train();  // the remaining 5th epoch
  const TrainResult& cont = resumed->result();
  ASSERT_EQ(cont.epochs.size(), full.epochs.size());
  for (std::size_t e = 0; e < full.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(cont.epochs[e].loss, full.epochs[e].loss) << e;
  }
  std::filesystem::remove(path);
}

TEST(AutoCheckpoint, DisabledByDefaultAndOffForSteppedEpochs) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_auto_ckpt_stepped.ckpt");
  std::filesystem::remove(path);
  // run_epoch() stepping never auto-checkpoints — the knob belongs to
  // train()'s unattended loop; steppers call save() themselves.
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 4))
                     .auto_checkpoint(path, 2)
                     .build();
  (void)trainer->run_epoch();
  (void)trainer->run_epoch();
  EXPECT_FALSE(std::filesystem::exists(path));
  trainer->train();  // picks up at epoch 3; snapshots at epoch 4
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST(AutoCheckpoint, WorksForSerialTrainerToo) {
  // The knob is armed on the Trainer base, so every mode's train() loop
  // honors it — a serial run must snapshot and resume just like a
  // distributed one.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_auto_ckpt_serial.ckpt");
  std::filesystem::remove(path);
  auto trainer = TrainerBuilder(ds)
                     .strategy("serial")
                     .gcn(tiny_config(ds, 5))
                     .auto_checkpoint(path, 2)
                     .build();
  trainer->train();
  ASSERT_TRUE(std::filesystem::exists(path));

  std::ifstream in(path, std::ios::binary);
  auto resumed = TrainerBuilder(ds).resume(in);
  EXPECT_EQ(resumed->epochs_run(), 4);
  resumed->train();
  const TrainResult& cont = resumed->result();
  const TrainResult& full = trainer->result();
  ASSERT_EQ(cont.epochs.size(), full.epochs.size());
  for (std::size_t e = 0; e < full.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(cont.epochs[e].loss, full.epochs[e].loss) << e;
  }
  std::filesystem::remove(path);
}

TEST(AutoCheckpoint, WorksForSampledTrainerToo) {
  // The third mode: sampled training snapshots on the same cadence and
  // resumes bit-identically (RNG state is part of the checkpoint).
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = tiny_config(ds, 5);
  SamplingConfig sampling;
  sampling.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), 5);
  const std::string path = temp_ckpt_path("sagnn_auto_ckpt_sampled.ckpt");
  std::filesystem::remove(path);

  auto trainer = TrainerBuilder(ds)
                     .strategy("sampled")
                     .sampling(sampling)
                     .gcn(cfg)
                     .auto_checkpoint(path, 2)
                     .build();
  trainer->train();
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::ifstream in(path, std::ios::binary);
  auto resumed = TrainerBuilder(ds).resume(in);
  EXPECT_EQ(resumed->epochs_run(), 4);
  resumed->train();
  const TrainResult& cont = resumed->result();
  const TrainResult& full = trainer->result();
  ASSERT_EQ(cont.epochs.size(), full.epochs.size());
  for (std::size_t e = 0; e < full.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(cont.epochs[e].loss, full.epochs[e].loss) << e;
  }
  std::filesystem::remove(path);
}

TEST(AutoCheckpoint, RejectsEnabledWithoutPath) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .gcn(tiny_config(ds, 2))
                   .auto_checkpoint("", 2)
                   .build(),
               Error);
}

TEST(AutoCheckpoint, ResumedRunCanReArmTheKnob) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string first = temp_ckpt_path("sagnn_auto_ckpt_first.ckpt");
  const std::string second = temp_ckpt_path("sagnn_auto_ckpt_second.ckpt");
  std::filesystem::remove(first);
  std::filesystem::remove(second);

  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 2))
                     .auto_checkpoint(first, 2)
                     .build();
  trainer->train();
  ASSERT_TRUE(std::filesystem::exists(first));

  // The knob is not serialized: a plain resume trains without snapshots,
  // an explicitly re-armed one snapshots to the new path.
  std::ifstream in(first, std::ios::binary);
  auto resumed = TrainerBuilder(ds)
                     .epochs(4)
                     .auto_checkpoint(second, 2)
                     .resume(in);
  resumed->train();
  EXPECT_TRUE(std::filesystem::exists(second));
  std::filesystem::remove(first);
  std::filesystem::remove(second);
}

}  // namespace
}  // namespace sagnn
