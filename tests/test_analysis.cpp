// Graph analysis utilities: components, degree histograms, community
// fractions — and the structural signatures of the dataset analogues.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/analysis.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"

namespace sagnn {
namespace {

TEST(Analysis, ComponentsOfDisconnectedCliques) {
  // ring_of_cliques with k=1 is one clique; build two cliques manually.
  CooMatrix coo(6, 6);
  for (vid_t i = 0; i < 3; ++i) {
    for (vid_t j = i + 1; j < 3; ++j) {
      coo.add(i, j, 1);
      coo.add(i + 3, j + 3, 1);
    }
  }
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto comp = connected_components(a);
  EXPECT_EQ(count_components(comp), 2);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Analysis, IsolatedVerticesAreSingletons) {
  const CsrMatrix a = CsrMatrix::zeros(4, 4);
  EXPECT_EQ(count_components(connected_components(a)), 4);
}

TEST(Analysis, RingOfCliquesIsConnected) {
  const CsrMatrix a = CsrMatrix::from_coo(ring_of_cliques(5, 8));
  EXPECT_EQ(count_components(connected_components(a)), 1);
}

TEST(Analysis, DegreeHistogramCountsAllVertices) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(9, 6, rng));
  const auto hist = degree_histogram_log2(a);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), eid_t{0}), a.n_rows());
  EXPECT_GT(hist.size(), 3u);  // skewed graph spans several octaves
}

TEST(Analysis, DegreeSkewSeparatesRegimes) {
  Rng rng(2);
  const CsrMatrix skewed = CsrMatrix::from_coo(rmat(10, 6, rng));
  const CsrMatrix regular =
      CsrMatrix::from_coo(clustered_graph(1024, 64, 8, 0.05, rng));
  EXPECT_GT(degree_skew(skewed), 3.0 * degree_skew(regular));
}

TEST(Analysis, InternalEdgeFractionBounds) {
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(100, 500, rng));
  std::vector<vid_t> all_same(100, 0);
  EXPECT_DOUBLE_EQ(internal_edge_fraction(a, all_same), 1.0);
  std::vector<vid_t> all_distinct(100);
  std::iota(all_distinct.begin(), all_distinct.end(), 0);
  EXPECT_DOUBLE_EQ(internal_edge_fraction(a, all_distinct), 0.0);
}

TEST(Analysis, HybridGraphKeepsCommunitySignal) {
  // The amazon-sim recipe must leave enough community structure for a
  // partitioner to find: the generating communities should hold a clear
  // majority of edges despite the R-MAT overlay.
  Rng rng(4);
  std::vector<vid_t> communities;
  const CsrMatrix a = CsrMatrix::from_coo(
      hybrid_community_graph(2048, 128, 5, 2, rng, true, &communities));
  EXPECT_GT(internal_edge_fraction(a, communities), 0.5);
  // And the overlay must keep the degree skew well above the pure
  // clustered graph's.
  EXPECT_GT(degree_skew(a), 4.0);
}

TEST(Analysis, DatasetSignatures) {
  // The analogue suite's regimes, asserted as structural invariants.
  const Dataset protein = make_protein_sim(DatasetScale::kTiny);
  const Dataset amazon = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_LT(degree_skew(protein.adjacency), 3.0);   // regular
  EXPECT_GT(degree_skew(amazon.adjacency), 4.0);    // hub-skewed
  // The ring-of-clusters construction is connected up to the occasional
  // cluster whose inter-cluster coin flips all miss (tiny scale only).
  EXPECT_LE(count_components(connected_components(protein.adjacency)), 4);
}

}  // namespace
}  // namespace sagnn
