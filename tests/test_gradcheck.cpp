// End-to-end analytic-vs-numeric gradient check of the full GCN backward
// pass (SpMM aggregation + layer algebra + masked cross-entropy).
#include <gtest/gtest.h>

#include "gnn/serial_trainer.hpp"
#include "graph/generators.hpp"

namespace sagnn {
namespace {

Dataset tiny_dataset(std::uint64_t seed = 3) {
  Rng rng(seed);
  CooMatrix adj = erdos_renyi(24, 72, rng);
  return assemble_dataset("grad", std::move(adj), 5, 3, seed + 1);
}

// Loss as a function of the model weights, holding everything else fixed.
double loss_of(const Dataset& ds, const GcnConfig& cfg, GcnModel& model) {
  Matrix h = ds.features;
  for (int l = 0; l < model.n_layers(); ++l) {
    Matrix m = spmm(ds.adjacency, h);
    h = model.layer(l).forward(std::move(m));
  }
  (void)cfg;
  return softmax_xent_stats(h, ds.labels, ds.train_mask).mean_loss();
}

TEST(GradCheck, AnalyticMatchesCentralDifferences) {
  const Dataset ds = tiny_dataset();
  GcnConfig cfg;
  cfg.dims = {5, 4, 3};
  cfg.seed = 11;
  cfg.learning_rate = 0.0f;  // no update; we only want gradients

  // Compute the analytic gradients by replaying one epoch of the serial
  // trainer's backward pass manually.
  GcnModel model(cfg);
  Matrix h = ds.features;
  for (int l = 0; l < model.n_layers(); ++l) {
    Matrix m = spmm(ds.adjacency, h);
    h = model.layer(l).forward(std::move(m));
  }
  const LossStats stats = softmax_xent_stats(h, ds.labels, ds.train_mask);
  Matrix d_h = softmax_xent_grad(h, ds.labels, ds.train_mask, stats.count);
  std::vector<Matrix> grads(static_cast<std::size_t>(model.n_layers()));
  for (int l = model.n_layers() - 1; l >= 0; --l) {
    auto back = model.layer(l).backward(d_h);
    grads[static_cast<std::size_t>(l)] = std::move(back.d_weights);
    if (l > 0) d_h = spmm(ds.adjacency, back.d_m);
  }

  // Central finite differences on a sample of weight coordinates.
  const double eps = 2e-2;  // float32 arithmetic needs a fat step
  for (int l = 0; l < model.n_layers(); ++l) {
    const Matrix& g = grads[static_cast<std::size_t>(l)];
    for (vid_t r = 0; r < g.n_rows(); ++r) {
      for (vid_t c = 0; c < g.n_cols(); c += 2) {
        GcnModel mp(cfg), mm(cfg);
        mp.layer(l).weights_mut()(r, c) += static_cast<real_t>(eps);
        mm.layer(l).weights_mut()(r, c) -= static_cast<real_t>(eps);
        const double fp = loss_of(ds, cfg, mp);
        const double fm = loss_of(ds, cfg, mm);
        const double fd = (fp - fm) / (2 * eps);
        EXPECT_NEAR(g(r, c), fd, 2e-2 * std::max(1.0, std::abs(fd)))
            << "layer " << l << " weight (" << r << "," << c << ")";
      }
    }
  }
}

TEST(GradCheck, GradientStepReducesLoss) {
  const Dataset ds = tiny_dataset(5);
  GcnConfig cfg;
  cfg.dims = {5, 8, 3};
  cfg.learning_rate = 0.2f;
  cfg.epochs = 1;
  SerialTrainer trainer(ds, cfg);
  const double before = trainer.run_epoch().loss;
  double after = before;
  for (int i = 0; i < 10; ++i) after = trainer.run_epoch().loss;
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace sagnn
