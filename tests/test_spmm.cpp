// Local SpMM kernel tests, including a dense-reference property sweep and
// the compacted-column contract used by the sparsity-aware algorithms.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/blocks.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

Matrix to_dense(const CsrMatrix& a) {
  Matrix d(a.n_rows(), a.n_cols());
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    auto cols = a.row_cols(r);
    auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) d(r, cols[k]) = vals[k];
  }
  return d;
}

TEST(Spmm, IdentityTimesHIsH) {
  CooMatrix eye(4, 4);
  for (vid_t i = 0; i < 4; ++i) eye.add(i, i, 1.0f);
  const CsrMatrix a = CsrMatrix::from_coo(eye);
  Rng rng(1);
  const Matrix h = Matrix::random_uniform(4, 3, rng);
  EXPECT_EQ(spmm(a, h).max_abs_diff(h), 0.0);
}

TEST(Spmm, EmptyMatrixGivesZero) {
  const CsrMatrix a = CsrMatrix::zeros(3, 5);
  Rng rng(2);
  const Matrix h = Matrix::random_uniform(5, 2, rng);
  const Matrix z = spmm(a, h);
  for (vid_t r = 0; r < 3; ++r) {
    for (vid_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(z(r, c), 0.0f);
  }
}

TEST(Spmm, ShapeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::zeros(3, 5);
  const Matrix h(4, 2);
  EXPECT_THROW(spmm(a, h), Error);
}

TEST(Spmm, AccumulateAddsIntoZ) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 2.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Matrix h(2, 1);
  h(0, 0) = 3.0f;
  Matrix z(2, 1);
  z(0, 0) = 1.0f;
  spmm_accumulate(a, h, z);
  EXPECT_FLOAT_EQ(z(0, 0), 7.0f);
}

// Property sweep: SpMM agrees with dense GEMM on random sparse matrices of
// several shapes and densities.
class SpmmMatchesDense
    : public ::testing::TestWithParam<std::tuple<vid_t, vid_t, vid_t, int>> {};

TEST_P(SpmmMatchesDense, Agrees) {
  const auto [n, m, f, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  CooMatrix coo(n, m);
  const eid_t nnz = static_cast<eid_t>(n) * 4;
  for (eid_t k = 0; k < nnz; ++k) {
    coo.add(static_cast<vid_t>(rng.next_below(n)),
            static_cast<vid_t>(rng.next_below(m)), rng.uniform(-1, 1));
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const Matrix h = Matrix::random_uniform(m, f, rng);
  const Matrix z = spmm(a, h);
  const Matrix z_ref = gemm(to_dense(a), h);
  EXPECT_LT(z.max_abs_diff(z_ref), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmMatchesDense,
    ::testing::Values(std::tuple{8, 8, 1, 1}, std::tuple{16, 8, 3, 2},
                      std::tuple{8, 16, 5, 3}, std::tuple{64, 64, 16, 4},
                      std::tuple{100, 50, 7, 5}, std::tuple{1, 100, 4, 6},
                      std::tuple{100, 1, 4, 7}));

TEST(Spmm, CompactedBlockMatchesFullBlock) {
  // Compacting columns and packing the corresponding H rows must yield the
  // same product as the uncompacted multiply — the core SA-algorithm
  // identity.
  Rng rng(42);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 300, rng));
  const CsrMatrix block = extract_row_block(a, {0, 16});
  const Matrix h = Matrix::random_uniform(64, 8, rng);

  const Matrix full = spmm(block, h);

  const CompactedBlock cb = compact_columns(block);
  const Matrix h_packed = h.gather_rows(cb.cols);
  Matrix z(block.n_rows(), 8);
  spmm_compacted_accumulate(cb.matrix, h_packed, z);

  EXPECT_EQ(full.max_abs_diff(z), 0.0);
}

}  // namespace
}  // namespace sagnn
