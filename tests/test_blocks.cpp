// Block decomposition and sparsity-aware column analysis (NnzCols,
// compaction) — the structural machinery of Algorithms 1 and 2.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/blocks.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

TEST(Blocks, UniformRangesCoverExactly) {
  for (vid_t n : {1, 7, 16, 100, 101}) {
    for (int p : {1, 2, 3, 7, 16}) {
      if (p > n) continue;
      const auto ranges = uniform_block_ranges(n, p);
      ASSERT_EQ(static_cast<int>(ranges.size()), p);
      EXPECT_EQ(ranges.front().begin, 0);
      EXPECT_EQ(ranges.back().end, n);
      for (std::size_t i = 1; i < ranges.size(); ++i) {
        EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
      }
      // Sizes differ by at most one.
      vid_t mn = n, mx = 0;
      for (const auto& r : ranges) {
        mn = std::min(mn, r.size());
        mx = std::max(mx, r.size());
      }
      EXPECT_LE(mx - mn, 1);
    }
  }
}

TEST(Blocks, RangesFromSizes) {
  std::vector<vid_t> sizes{3, 0, 5};
  const auto ranges = ranges_from_sizes(sizes);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[0].end, 3);
  EXPECT_EQ(ranges[1].size(), 0);
  EXPECT_EQ(ranges[2].end, 8);
}

TEST(Blocks, ExtractRowBlockPreservesRows) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(40, 300, rng));
  const CsrMatrix block = extract_row_block(a, {10, 25});
  EXPECT_EQ(block.n_rows(), 15);
  EXPECT_EQ(block.n_cols(), 40);
  for (vid_t r = 0; r < 15; ++r) {
    for (vid_t c = 0; c < 40; ++c) {
      EXPECT_FLOAT_EQ(block.at(r, c), a.at(r + 10, c));
    }
  }
}

TEST(Blocks, SplitBlockColsPartitionNnz) {
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(60, 500, rng));
  const auto ranges = uniform_block_ranges(60, 4);
  const auto blocks = split_block_cols(a, ranges);
  ASSERT_EQ(blocks.size(), 4u);
  eid_t total = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    total += blocks[b].nnz();
    EXPECT_EQ(blocks[b].n_cols(), ranges[b].size());
    blocks[b].validate();
  }
  EXPECT_EQ(total, a.nnz());
  // Elementwise: block b at (r, c) equals a at (r, c + offset).
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (vid_t r = 0; r < a.n_rows(); ++r) {
      for (vid_t c = 0; c < ranges[b].size(); ++c) {
        EXPECT_FLOAT_EQ(blocks[b].at(r, c), a.at(r, ranges[b].begin + c));
      }
    }
  }
}

TEST(Blocks, SplitThenSpmmEqualsFullSpmm) {
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(48, 400, rng));
  const Matrix h = Matrix::random_uniform(48, 6, rng);
  const auto ranges = uniform_block_ranges(48, 3);
  const auto blocks = split_block_cols(a, ranges);
  Matrix z(48, 6);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const Matrix h_b = h.slice_rows(ranges[b].begin, ranges[b].end);
    spmm_accumulate(blocks[b], h_b, z);
  }
  EXPECT_LT(z.max_abs_diff(spmm(a, h)), 1e-5);
}

TEST(Blocks, NnzColsFindsExactlyNonEmptyColumns) {
  CooMatrix coo(3, 6);
  coo.add(0, 1, 1.0f);
  coo.add(1, 4, 1.0f);
  coo.add(2, 1, 1.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(nnz_cols(a), (std::vector<vid_t>{1, 4}));
}

TEST(Blocks, NnzColsEmptyMatrix) {
  EXPECT_TRUE(nnz_cols(CsrMatrix::zeros(3, 5)).empty());
}

TEST(Blocks, CompactColumnsRemapsDensely) {
  CooMatrix coo(2, 8);
  coo.add(0, 3, 1.5f);
  coo.add(0, 6, 2.5f);
  coo.add(1, 3, 3.5f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const CompactedBlock cb = compact_columns(a);
  EXPECT_EQ(cb.cols, (std::vector<vid_t>{3, 6}));
  EXPECT_EQ(cb.matrix.n_cols(), 2);
  EXPECT_FLOAT_EQ(cb.matrix.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(cb.matrix.at(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(cb.matrix.at(1, 0), 3.5f);
  cb.matrix.validate();
}

TEST(Blocks, CompactionSavesExactlyEmptyColumns) {
  Rng rng(4);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 128, rng));
  const auto blocks = split_block_cols(a, uniform_block_ranges(64, 8));
  for (const auto& b : blocks) {
    const CompactedBlock cb = compact_columns(b);
    EXPECT_EQ(static_cast<vid_t>(cb.cols.size()),
              static_cast<vid_t>(nnz_cols(b).size()));
    EXPECT_LE(cb.matrix.n_cols(), b.n_cols());
    EXPECT_EQ(cb.matrix.nnz(), b.nnz());
  }
}

}  // namespace
}  // namespace sagnn
