// The unified Trainer/TrainerBuilder API: registry resolution and error
// reporting, polymorphic use of all trainer kinds, epoch-at-a-time
// stepping vs whole-run training, and the back-compat DistAlgo mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "gnn/dist_trainer.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioner_registry.hpp"

namespace sagnn {
namespace {

GcnConfig tiny_config(const Dataset& ds, int epochs = 3) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

TEST(StrategyRegistry, ListsAllPaperAlgorithms) {
  const auto names = strategy_registry().names();
  for (const char* expected :
       {"1d-oblivious", "1d-sparse", "1d-overlap", "1.5d-oblivious",
        "1.5d-sparse", "2d-oblivious", "2d-sparse"}) {
    EXPECT_TRUE(strategy_registry().contains(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(StrategyRegistry, CanonicalNameRoundTrips) {
  for (const auto& name : strategy_registry().names()) {
    EXPECT_EQ(strategy_registry().create(name)->name(), name);
  }
}

TEST(StrategyRegistry, AcceptsHistoricalAliases) {
  for (DistAlgo algo : {DistAlgo::k1dOblivious, DistAlgo::k1dSparse,
                        DistAlgo::k15dOblivious, DistAlgo::k15dSparse,
                        DistAlgo::k2dOblivious, DistAlgo::k2dSparse}) {
    // Both the registry name and the descriptive to_string() form resolve.
    EXPECT_EQ(strategy_registry().create(strategy_name(algo))->name(),
              strategy_name(algo));
    EXPECT_EQ(strategy_registry().create(to_string(algo))->name(),
              strategy_name(algo));
  }
}

TEST(StrategyRegistry, UnknownNameListsRegisteredStrategies) {
  try {
    strategy_registry().create("3d-sparse");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3d-sparse"), std::string::npos);
    EXPECT_NE(what.find("1d-sparse"), std::string::npos);
    EXPECT_NE(what.find("2d-oblivious"), std::string::npos);
  }
}

TEST(TrainerBuilder, BuildsEveryModePolymorphically) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = tiny_config(ds, 2);
  SamplingConfig sampling;
  sampling.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), 5);

  std::vector<std::unique_ptr<Trainer>> trainers;
  trainers.push_back(TrainerBuilder(ds).strategy("serial").gcn(cfg).build());
  trainers.push_back(
      TrainerBuilder(ds).strategy("sampled").sampling(sampling).gcn(cfg).build());
  trainers.push_back(TrainerBuilder(ds)
                         .strategy("1d-sparse")
                         .ranks(4)
                         .partitioner("metis")
                         .gcn(cfg)
                         .build());
  for (auto& trainer : trainers) {
    const auto& metrics = trainer->train();
    EXPECT_EQ(metrics.size(), 2u) << trainer->name();
    EXPECT_EQ(trainer->epochs_run(), 2) << trainer->name();
    EXPECT_GT(trainer->result().epochs.front().loss, 0.0) << trainer->name();
  }
}

TEST(TrainerBuilder, DerivesGcnDimsFromDataset) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto trainer = TrainerBuilder(ds).epochs(1).build();  // no dims given
  EXPECT_EQ(trainer->train().size(), 1u);
}

TEST(TrainerBuilder, UnknownStrategyThrowsInvalidArgument) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(TrainerBuilder(ds).strategy("3d-sparse").gcn(tiny_config(ds)).build(),
               std::invalid_argument);
}

TEST(TrainerBuilder, UnknownPartitionerThrowsInvalidArgument) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .partitioner("zoltan")
                   .gcn(tiny_config(ds))
                   .build(),
               std::invalid_argument);
}

TEST(DistributedTrainer, EpochSteppingMatchesWholeRun) {
  // Per-rank state (weights, communicators, index exchange) persists
  // across run_epoch() calls, so stepping must be indistinguishable from
  // one train() call.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = tiny_config(ds, 4);

  auto whole = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("gvb")
                   .gcn(cfg)
                   .build();
  const auto whole_metrics = whole->train();

  auto stepped = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .partitioner("gvb")
                     .gcn(cfg)
                     .build();
  std::vector<EpochMetrics> step_metrics;
  for (int e = 0; e < 2; ++e) step_metrics.push_back(stepped->run_epoch());
  // Finish through train(): it must run exactly the remaining epochs.
  const auto& all = stepped->train();
  ASSERT_EQ(all.size(), whole_metrics.size());
  for (std::size_t e = 0; e < all.size(); ++e) {
    EXPECT_DOUBLE_EQ(all[e].loss, whole_metrics[e].loss) << "epoch " << e;
  }
  EXPECT_DOUBLE_EQ(step_metrics[1].loss, all[1].loss);

  // result() reflects exactly the epochs run; per-epoch volumes agree with
  // the whole-run report.
  const TrainResult& a = stepped->result();
  const TrainResult& b = whole->result();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (const auto& [phase, vol] : b.phase_volumes) {
    ASSERT_TRUE(a.phase_volumes.count(phase)) << phase;
    EXPECT_DOUBLE_EQ(a.phase_volumes.at(phase).megabytes_per_epoch,
                     vol.megabytes_per_epoch)
        << phase;
  }
}

TEST(DistributedTrainer, ResultAfterPartialRunAveragesRunEpochs) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 5))
                     .build();
  (void)trainer->run_epoch();
  (void)trainer->run_epoch();
  const TrainResult& partial = trainer->result();
  EXPECT_EQ(partial.epochs.size(), 2u);
  EXPECT_GT(partial.phase_volumes.at("alltoall").megabytes_per_epoch, 0.0);
}

TEST(DistributedTrainer, PartialSteppingReportsCompletedEpochs) {
  // Regression: a run configured for 10 epochs but stopped after 3 via
  // run_epoch() stepping must report the COMPLETED count everywhere —
  // trajectory length, epochs_completed, and every per-epoch average. An
  // identically-configured 3-epoch whole run is the ground truth: traffic
  // is deterministic, so the per-epoch volumes must match to the bit.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto stepped = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .partitioner("gvb")
                     .gcn(tiny_config(ds, 10))
                     .build();
  for (int e = 0; e < 3; ++e) (void)stepped->run_epoch();
  const TrainResult& partial = stepped->result();
  EXPECT_EQ(partial.epochs_completed(), 3);
  ASSERT_EQ(partial.epochs.size(), 3u);

  auto whole = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .partitioner("gvb")
                   .gcn(tiny_config(ds, 3))
                   .build();
  whole->train();
  const TrainResult& full = whole->result();
  EXPECT_EQ(full.epochs_completed(), 3);
  ASSERT_EQ(partial.phase_volumes.size(), full.phase_volumes.size());
  for (const auto& [phase, vol] : full.phase_volumes) {
    ASSERT_TRUE(partial.phase_volumes.count(phase)) << phase;
    EXPECT_DOUBLE_EQ(partial.phase_volumes.at(phase).megabytes_per_epoch,
                     vol.megabytes_per_epoch)
        << phase;
    EXPECT_DOUBLE_EQ(partial.phase_volumes.at(phase).messages_per_epoch,
                     vol.messages_per_epoch)
        << phase;
  }
}

TEST(Trainer, EveryModeReportsCompletedEpochCount) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = tiny_config(ds, 4);
  SamplingConfig sampling;
  sampling.fanouts.assign(static_cast<std::size_t>(cfg.n_layers()), 5);

  std::vector<std::unique_ptr<Trainer>> trainers;
  trainers.push_back(TrainerBuilder(ds).strategy("serial").gcn(cfg).build());
  trainers.push_back(
      TrainerBuilder(ds).strategy("sampled").sampling(sampling).gcn(cfg).build());
  trainers.push_back(
      TrainerBuilder(ds).strategy("1d-sparse").ranks(4).gcn(cfg).build());
  for (auto& trainer : trainers) {
    (void)trainer->run_epoch();
    EXPECT_EQ(trainer->result().epochs_completed(), 1) << trainer->name();
    trainer->train();
    EXPECT_EQ(trainer->result().epochs_completed(), 4) << trainer->name();
  }
}

TEST(DistAlgoShim, EveryAlgoNamesARegisteredStrategy) {
  // The enum survives DistTrainerOptions' removal as a convenience
  // vocabulary; each value must map onto a name the registry can build.
  const auto names = strategy_registry().names();
  for (DistAlgo algo :
       {DistAlgo::k1dOblivious, DistAlgo::k1dSparse, DistAlgo::k15dOblivious,
        DistAlgo::k15dSparse, DistAlgo::k2dOblivious, DistAlgo::k2dSparse}) {
    const std::string name = strategy_name(algo);
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << to_string(algo) << " -> " << name;
  }
}

TEST(PartitionerRegistryApi, NamesAreTheSupportedVocabulary) {
  const auto names = partitioner_registry().names();
  EXPECT_EQ(names, (std::vector<std::string>{"block", "gvb", "metis", "random"}));
}

TEST(PartitionerRegistryApi, UnknownNameListsRegisteredPartitioners) {
  // Error-path parity with the strategy registry: std::invalid_argument
  // whose message names the offender and every registered choice — via the
  // registry directly and via the make_partitioner() wrapper.
  for (auto create : {+[] { (void)partitioner_registry().create(
                          "zoltan", PartitionerOptions{}); },
                      +[] { (void)make_partitioner("zoltan"); }}) {
    try {
      create();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("zoltan"), std::string::npos);
      for (const auto& name : partitioner_registry().names()) {
        EXPECT_NE(what.find(name), std::string::npos) << name;
      }
    }
  }
}

TEST(StrategyRegistry, UnknownNameListsEveryRegisteredStrategy) {
  // The full-vocabulary counterpart of UnknownNameListsRegisteredStrategies:
  // late-added strategies (e.g. "1d-overlap") must appear too.
  try {
    strategy_registry().create("bogus-strategy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus-strategy"), std::string::npos);
    for (const auto& name : strategy_registry().names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

}  // namespace
}  // namespace sagnn
