// The explicit alpha-beta latency decomposition of EpochCost: the
// bottleneck detail (seconds == latency + beta-terms at the same rank),
// the message-count-aware total_pipelined(K, alpha, beta) model and its
// bulk >= pipe >= ideal ordering at every chunk depth, and the
// latency-capped useful-K crossover the model predicts (docs/cost_model.md).
#include <gtest/gtest.h>

#include <cmath>

#include "simcomm/cost_model.hpp"

namespace sagnn {
namespace {

TEST(PhaseCostDetail, DecomposesTheBottleneckExactly) {
  // Rank 0 sends to both peers; rank 1 receives the heavier load. The
  // detail must pick the global bottleneck (rank 0's send side here) and
  // split its seconds into the alpha share and the beta terms exactly.
  CostModel m;
  m.gpus_per_node = 2;  // ranks {0,1} share a node, rank 2 is remote
  PhaseTraffic t(3);
  t.bytes[0 * 3 + 1] = 1000;
  t.msgs[0 * 3 + 1] = 2;
  t.bytes[0 * 3 + 2] = 4000;
  t.msgs[0 * 3 + 2] = 1;
  const auto d = m.phase_cost_detail(t);
  EXPECT_DOUBLE_EQ(d.seconds, m.phase_seconds(t));
  EXPECT_DOUBLE_EQ(d.seconds, m.send_seconds(t, 0));
  EXPECT_DOUBLE_EQ(d.latency, 2 * m.alpha_intra + 1 * m.alpha_inter);
  EXPECT_DOUBLE_EQ(d.messages, 3.0);
  EXPECT_DOUBLE_EQ(d.bytes, 5000.0);
  // seconds == latency + beta terms at the bottleneck (to rounding: the
  // seconds accumulate alpha and beta terms fused per peer).
  EXPECT_NEAR(d.seconds - d.latency, m.beta_intra * 1000 + m.beta_inter * 4000,
              d.seconds * 1e-12);
}

TEST(PhaseCostDetail, AppliesVolumeScaleToBytesNotMessages) {
  CostModel m;
  m.volume_scale = 10.0;
  PhaseTraffic t(2);
  t.bytes[0 * 2 + 1] = 100;
  t.msgs[0 * 2 + 1] = 4;
  const auto d = m.phase_cost_detail(t);
  EXPECT_DOUBLE_EQ(d.bytes, 1000.0);
  EXPECT_DOUBLE_EQ(d.messages, 4.0);
  // Ranks 0 and 1 share a node under the default gpus_per_node = 4.
  EXPECT_DOUBLE_EQ(d.latency, 4 * m.alpha_intra);  // unscaled
}

TEST(EpochCostAssembly, FillsLatencySplitAndAlltoallCounts) {
  CostModel m;
  TrafficRecorder rec(2);
  rec.record("alltoall#0", 0, 1, 500);
  rec.record("alltoall#1", 0, 1, 500);
  rec.record("allreduce", 0, 1, 300);
  rec.record("gather", 1, 0, 100);
  const EpochCost cost = epoch_cost(m, rec, {0.0, 0.0});

  // Two tagged stages accumulate: 2 messages, 1000 bytes at the
  // bottleneck (both ranks on one node -> alpha_intra).
  EXPECT_DOUBLE_EQ(cost.alltoall_messages, 2.0);
  EXPECT_DOUBLE_EQ(cost.alltoall_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(cost.alltoall_latency, 2 * m.alpha_intra);
  EXPECT_DOUBLE_EQ(cost.allreduce_latency, m.alpha_intra);
  EXPECT_DOUBLE_EQ(cost.other_latency, m.alpha_intra);
  EXPECT_DOUBLE_EQ(cost.comm_latency(), cost.alltoall_latency +
                                            cost.allreduce_latency +
                                            cost.other_latency);
  EXPECT_DOUBLE_EQ(cost.comm_bandwidth(), cost.comm() - cost.comm_latency());
}

/// A synthetic depth-1 cost: compute C, one chunkable alltoall with m
/// messages of latency a each and V bytes at bandwidth b, plus a fixed
/// remainder R in the allreduce bucket.
EpochCost synthetic_cost(double compute, double m, double a, double v,
                         double b, double rest) {
  EpochCost c;
  c.compute = compute;
  c.alltoall = m * a + v * b;
  c.alltoall_latency = m * a;
  c.alltoall_messages = m;
  c.alltoall_bytes = v;
  c.allreduce = rest;
  return c;
}

TEST(EpochCostPipelinedModel, EffectiveAlphaBetaReproducesCommAtDepthOne) {
  const EpochCost c = synthetic_cost(2.0, 100, 1e-5, 1e6, 4e-11, 0.3);
  const auto [alpha, beta] = c.effective_alpha_beta();
  // The subtract-then-divide calibration round-trips to within rounding.
  EXPECT_NEAR(alpha, 1e-5, 1e-5 * 1e-12);
  EXPECT_NEAR(beta, 4e-11, 4e-11 * 1e-12);
  EXPECT_NEAR(c.comm_repriced(1, alpha, beta), c.comm(), c.comm() * 1e-12);
  EXPECT_NEAR(c.total_pipelined(1, alpha, beta), c.total(), c.total() * 1e-12);
}

TEST(EpochCostPipelinedModel, BulkPipeIdealOrderingHoldsAtEveryDepth) {
  const EpochCost c = synthetic_cost(1.0, 50, 2e-4, 1e7, 4e-11, 0.1);
  const auto [alpha, beta] = c.effective_alpha_beta();
  for (int k : {1, 2, 4, 8, 16, 64, 1024}) {
    const double comm_k = c.comm_repriced(k, alpha, beta);
    const double bulk_k = c.compute + comm_k;
    const double ideal_k = std::max(c.compute, comm_k);
    const double pipe_k = c.total_pipelined(k, alpha, beta);
    EXPECT_LE(pipe_k, bulk_k) << k;
    EXPECT_GE(pipe_k, ideal_k) << k;
  }
}

TEST(EpochCostPipelinedModel, LatencyCapsTheUsefulChunkDepth) {
  // Communication-dominated regime: pipe(K) = K*a*m + b*V + R + C/K is
  // minimized near K* = sqrt(C / (a*m)) and rises beyond it — the alpha
  // term bounds the useful pipeline depth (docs/cost_model.md derives
  // this closed form).
  const double compute = 1.0, m = 1000, a = 1e-5, v = 1e9, b = 4e-9;
  const EpochCost c = synthetic_cost(compute, m, a, v, b, 0.0);
  const auto [alpha, beta] = c.effective_alpha_beta();
  const double k_star = std::sqrt(compute / (a * m));  // = 10
  const double at_star = c.total_pipelined(static_cast<int>(k_star), alpha, beta);
  EXPECT_LT(at_star, c.total_pipelined(1, alpha, beta));
  EXPECT_LT(at_star, c.total_pipelined(100, alpha, beta));
  // Monotone rise once latency dominates: doubling K past the optimum
  // only adds alpha cost.
  EXPECT_LT(c.total_pipelined(20, alpha, beta),
            c.total_pipelined(40, alpha, beta));
  EXPECT_LT(c.total_pipelined(40, alpha, beta),
            c.total_pipelined(80, alpha, beta));
}

TEST(EpochCostPipelinedModel, CrossLayerDepthDividesTheResidual) {
  // A cross-layer schedule passes its deeper recorded stage count: same
  // repriced comm, smaller serialized residual.
  const EpochCost c = synthetic_cost(4.0, 10, 1e-6, 1e6, 4e-11, 0.0);
  const auto [alpha, beta] = c.effective_alpha_beta();
  const double within = c.total_pipelined(4, alpha, beta);          // depth 4
  const double cross = c.total_pipelined(4, alpha, beta, 20);       // depth 20
  EXPECT_LT(cross, within);
  const double comm_4 = c.comm_repriced(4, alpha, beta);
  EXPECT_DOUBLE_EQ(cross, std::max(c.compute, comm_4) +
                              std::min(c.compute, comm_4) / 20.0);
}

TEST(EpochCostScale, ScalesEveryField) {
  EpochCost c = synthetic_cost(2.0, 100, 1e-5, 1e6, 4e-11, 0.3);
  c.bcast = 0.2;
  c.other = 0.1;
  c.bcast_latency = 0.01;
  c.allreduce_latency = 0.02;
  c.other_latency = 0.03;
  const EpochCost orig = c;
  c.scale(0.5);
  EXPECT_DOUBLE_EQ(c.compute, orig.compute * 0.5);
  EXPECT_DOUBLE_EQ(c.alltoall, orig.alltoall * 0.5);
  EXPECT_DOUBLE_EQ(c.bcast, orig.bcast * 0.5);
  EXPECT_DOUBLE_EQ(c.allreduce, orig.allreduce * 0.5);
  EXPECT_DOUBLE_EQ(c.other, orig.other * 0.5);
  EXPECT_DOUBLE_EQ(c.alltoall_latency, orig.alltoall_latency * 0.5);
  EXPECT_DOUBLE_EQ(c.bcast_latency, orig.bcast_latency * 0.5);
  EXPECT_DOUBLE_EQ(c.allreduce_latency, orig.allreduce_latency * 0.5);
  EXPECT_DOUBLE_EQ(c.other_latency, orig.other_latency * 0.5);
  EXPECT_DOUBLE_EQ(c.alltoall_messages, orig.alltoall_messages * 0.5);
  EXPECT_DOUBLE_EQ(c.alltoall_bytes, orig.alltoall_bytes * 0.5);
}

}  // namespace
}  // namespace sagnn
