// The 3D communication-avoiding strategy: cube-grid geometry rules, exact
// serial parity at genuine depth (d > 1), the d = 1 degeneration to the 2D
// scheme, and the empty-slice path when the feature width is narrower than
// the depth (GNN-shaped widths are exactly where that happens).
#include <gtest/gtest.h>

#include "dist/spmm_3d.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

TEST(Spmm3dGeometry, FactorsStackedSquareGrids) {
  const CubeGrid g = CubeGrid::make(8, 2);
  EXPECT_EQ(g.q, 2);
  EXPECT_EQ(g.d, 2);
  EXPECT_EQ(CubeGrid::make(4, 1).q, 2);   // d = 1: plain 2D grid
  EXPECT_EQ(CubeGrid::make(4, 4).q, 1);   // q = 1: pure feature split
  EXPECT_EQ(CubeGrid::make(16, 4).q, 2);
  EXPECT_EQ(CubeGrid::make(12, 3).q, 2);  // non-square p, valid cube
}

TEST(Spmm3dGeometry, RanksDecomposeAsLayerRowColumn) {
  const CubeGrid g = CubeGrid::make(8, 2);  // 2 layers of 2x2
  EXPECT_EQ(g.layer(5), 1);
  EXPECT_EQ(g.grid_row(5), 0);
  EXPECT_EQ(g.grid_col(5), 1);
  EXPECT_EQ(g.rank_of(1, 0, 1), 5);
}

TEST(Spmm3dGeometry, RejectsNonCubeGeometries) {
  EXPECT_THROW(CubeGrid::make(8, 3), Error);   // 3 does not divide 8
  EXPECT_THROW(CubeGrid::make(8, 1), Error);   // 8 is not a square
  EXPECT_THROW(CubeGrid::make(24, 2), Error);  // 12 is not a square
  EXPECT_THROW(CubeGrid::make(0, 1), Error);
  EXPECT_THROW(CubeGrid::make(4, 0), Error);
}

void expect_matches_serial(int p, int c, const std::vector<vid_t>& dims = {}) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int epochs = 4;
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  if (!dims.empty()) cfg.dims = dims;
  cfg.learning_rate = 0.3f;

  SerialTrainer serial(ds, cfg);
  const auto serial_metrics = serial.train();

  auto trainer = TrainerBuilder(ds)
                     .strategy("3d")
                     .ranks(p, c)
                     .partitioner("gvb")
                     .gcn(cfg)
                     .build();
  trainer->train();
  const TrainResult dist = trainer->result();

  ASSERT_EQ(dist.epochs.size(), serial_metrics.size());
  for (std::size_t e = 0; e < serial_metrics.size(); ++e) {
    EXPECT_NEAR(dist.epochs[e].loss, serial_metrics[e].loss,
                5e-3 * std::max(1.0, serial_metrics[e].loss))
        << "p=" << p << " c=" << c << " epoch " << e;
    EXPECT_NEAR(dist.epochs[e].train_accuracy, serial_metrics[e].train_accuracy,
                0.02)
        << "p=" << p << " c=" << c << " epoch " << e;
  }
}

TEST(Spmm3dMatchesSerial, DepthTwoStackOfTwoByTwo) {
  expect_matches_serial(/*p=*/8, /*c=*/2);  // q = 2, d = 2
}

TEST(Spmm3dMatchesSerial, PureFeatureSplit) {
  expect_matches_serial(/*p=*/4, /*c=*/4);  // q = 1, d = 4: no row comm
}

TEST(Spmm3dMatchesSerial, DepthOneDegeneratesToTwoD) {
  expect_matches_serial(/*p=*/4, /*c=*/1);  // q = 2, d = 1
}

TEST(Spmm3dMatchesSerial, WidthNarrowerThanDepthLeavesSlicesEmpty) {
  // Hidden width 2 with d = 4: layers 2 and 3 own empty feature slices in
  // the hidden propagates, so the empty-slice guards must stay symmetric
  // across the layer-row all-reduce, the transpose, and the depth
  // all-gather.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  expect_matches_serial(/*p=*/4, /*c=*/4,
                        {ds.n_features(), 2, 2, ds.n_classes});
}

}  // namespace
}  // namespace sagnn
