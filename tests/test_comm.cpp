// Simulated message-passing runtime: point-to-point matching, barriers,
// splits, abort propagation.
#include <gtest/gtest.h>

#include <atomic>

#include "simcomm/cluster.hpp"

namespace sagnn {
namespace {

TEST(Comm, PingPong) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload{1, 2, 3};
      comm.send<int>(1, 7, payload, "p2p");
      const auto back = comm.recv<int>(1, 8);
      EXPECT_EQ(back, (std::vector<int>{6}));
    } else {
      const auto got = comm.recv<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
      std::vector<int> reply{6};
      comm.send<int>(0, 8, reply, "p2p");
    }
  });
}

TEST(Comm, TagMatchingIsSelective) {
  // Messages sent with different tags must be received in tag order
  // requested by the receiver, not arrival order.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> a{1}, b{2};
      comm.send<int>(1, 100, a, "p2p");
      comm.send<int>(1, 200, b, "p2p");
    } else {
      EXPECT_EQ(comm.recv<int>(0, 200)[0], 2);
      EXPECT_EQ(comm.recv<int>(0, 100)[0], 1);
    }
  });
}

TEST(Comm, FifoPerSourceAndTag) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> v{i};
        comm.send<int>(1, 5, v, "p2p");
      }
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv<int>(0, 5)[0], i);
    }
  });
}

TEST(Comm, SelfSendWorks) {
  run_spmd(1, [](Comm& comm) {
    std::vector<double> v{3.14};
    comm.send<double>(0, 1, v, "p2p");
    EXPECT_DOUBLE_EQ(comm.recv<double>(0, 1)[0], 3.14);
  });
}

TEST(Comm, EmptyPayload) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::vector<int>{}, "p2p");
    } else {
      EXPECT_TRUE(comm.recv<int>(0, 1).empty());
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_spmd(8, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 8) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, RepeatedBarriersDoNotCrossMatch) {
  run_spmd(5, [](Comm& comm) {
    for (int i = 0; i < 20; ++i) comm.barrier();
  });
}

TEST(Comm, SplitByParity) {
  run_spmd(6, [](Comm& comm) {
    Comm sub = comm.split([](int r) { return r % 2; });
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // World rank mapping preserved in order.
    EXPECT_EQ(sub.world_rank(sub.rank()), comm.rank());
    // Communication within the sub-communicator.
    std::vector<int> v{comm.rank()};
    sub.send<int>((sub.rank() + 1) % 3, 3, v, "p2p");
    const auto got = sub.recv<int>((sub.rank() + 2) % 3, 3);
    EXPECT_EQ(got[0] % 2, comm.rank() % 2);
  });
}

TEST(Comm, NestedSplits) {
  run_spmd(8, [](Comm& comm) {
    Comm half = comm.split([](int r) { return r / 4; });
    Comm quarter = half.split([](int r) { return r / 2; });
    EXPECT_EQ(quarter.size(), 2);
    quarter.barrier();
    half.barrier();
    comm.barrier();
  });
}

TEST(Comm, ConcurrentSiblingCommsDoNotCrossTalk) {
  // Two different splits from the same parent used simultaneously: tags are
  // namespaced per communicator id so messages must not cross-match.
  run_spmd(4, [](Comm& comm) {
    Comm rows = comm.split([](int r) { return r / 2; });  // {0,1} {2,3}
    Comm cols = comm.split([](int r) { return r % 2; });  // {0,2} {1,3}
    std::vector<int> row_msg{100 + comm.rank()};
    std::vector<int> col_msg{200 + comm.rank()};
    rows.send<int>(1 - rows.rank(), 9, row_msg, "p2p");
    cols.send<int>(1 - cols.rank(), 9, col_msg, "p2p");
    const auto from_row = rows.recv<int>(1 - rows.rank(), 9);
    const auto from_col = cols.recv<int>(1 - cols.rank(), 9);
    EXPECT_GE(from_row[0], 100);
    EXPECT_LT(from_row[0], 200);
    EXPECT_GE(from_col[0], 200);
  });
}

TEST(Comm, RankExceptionPropagatesWithoutDeadlock) {
  Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([](Comm& comm) {
        if (comm.rank() == 2) throw Error("rank 2 exploded");
        // Other ranks block forever on a message that never comes; the
        // abort machinery must wake them.
        (void)comm.recv<int>((comm.rank() + 1) % 4, 1);
      }),
      Error);
}

TEST(Comm, WorldSizeAndRanks) {
  std::atomic<int> sum{0};
  run_spmd(7, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 7);
    sum.fetch_add(comm.rank());
  });
  EXPECT_EQ(sum.load(), 21);
}

}  // namespace
}  // namespace sagnn
