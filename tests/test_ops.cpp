// Elementwise/rowwise dense operations used by GCN training.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dense/ops.hpp"

namespace sagnn {
namespace {

TEST(Ops, ReluClampsNegatives) {
  const Matrix z(2, 2, {-1, 2, 0, -3});
  const Matrix h = relu(z);
  EXPECT_FLOAT_EQ(h(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(h(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(h(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(h(1, 1), 0.0f);
}

TEST(Ops, ReluGradIsIndicator) {
  const Matrix z(1, 4, {-1, 0, 0.5, 3});
  const Matrix g = relu_grad(z);
  EXPECT_FLOAT_EQ(g(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g(0, 1), 0.0f);  // subgradient at 0 chosen as 0
  EXPECT_FLOAT_EQ(g(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(g(0, 3), 1.0f);
}

TEST(Ops, HadamardAndInplace) {
  const Matrix a(1, 3, {1, 2, 3});
  const Matrix b(1, 3, {4, 5, 6});
  const Matrix c = hadamard(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c(0, 2), 18.0f);
  Matrix d = a;
  hadamard_inplace(d, b);
  EXPECT_EQ(d.max_abs_diff(c), 0.0);
  Matrix wrong(2, 2);
  EXPECT_THROW(hadamard_inplace(wrong, b), Error);
}

TEST(Ops, AddAndAxpy) {
  Matrix a(1, 2, {1, 2});
  const Matrix b(1, 2, {10, 20});
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a(0, 1), 22.0f);
  axpy_inplace(a, b, 0.5f);  // conventional axpy: a += 0.5*b
  EXPECT_FLOAT_EQ(a(0, 0), 16.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 32.0f);
  axpy_inplace(a, b, -0.5f);  // negative scale subtracts (the SGD step)
  EXPECT_FLOAT_EQ(a(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(a(0, 1), 22.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(1);
  const Matrix z = Matrix::random_uniform(10, 7, rng, -5, 5);
  const Matrix p = row_softmax(z);
  for (vid_t r = 0; r < 10; ++r) {
    real_t sum = 0;
    for (vid_t c = 0; c < 7; ++c) {
      ASSERT_GT(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  const Matrix z1(1, 3, {1, 2, 3});
  const Matrix z2(1, 3, {101, 102, 103});
  EXPECT_LT(row_softmax(z1).max_abs_diff(row_softmax(z2)), 1e-6);
}

TEST(Ops, SoftmaxHandlesLargeMagnitudes) {
  const Matrix z(1, 2, {1000.0f, -1000.0f});
  const Matrix p = row_softmax(z);
  EXPECT_NEAR(p(0, 0), 1.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(p(0, 1)));
}

TEST(Ops, RowArgmax) {
  const Matrix z(2, 3, {1, 5, 2, 9, 0, 9});
  const auto am = row_argmax(z);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);  // ties break to the first maximum
}

}  // namespace
}  // namespace sagnn
