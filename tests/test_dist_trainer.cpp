// Distributed trainer plumbing: configurations run, metrics flow, volumes
// and modeled costs are populated, option validation.
#include <gtest/gtest.h>

#include "gnn/dist_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

TrainConfig base_config(const Dataset& ds, DistAlgo algo, int epochs = 3) {
  TrainConfig cfg;
  cfg.gcn = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.gcn.learning_rate = 0.3f;
  cfg.strategy = strategy_name(algo);
  return cfg;
}

TrainResult run_distributed(const Dataset& ds, const TrainConfig& cfg) {
  auto trainer = TrainerBuilder(ds).config(cfg).build();
  trainer->train();
  return trainer->result();
}

TEST(DistTrainer, RunsAllAlgorithmsAndPartitioners) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (DistAlgo algo : {DistAlgo::k1dOblivious, DistAlgo::k1dSparse,
                        DistAlgo::k15dOblivious, DistAlgo::k15dSparse}) {
    for (const char* partitioner : {"block", "random", "metis", "gvb"}) {
      SCOPED_TRACE(std::string(to_string(algo)) + " + " + partitioner);
      TrainConfig cfg = base_config(ds, algo, 2);
      cfg.p = 4;
      cfg.c = is_15d(algo) ? 2 : 1;
      cfg.partitioner = partitioner;
      const auto result = run_distributed(ds, cfg);
      ASSERT_EQ(result.epochs.size(), 2u);
      EXPECT_GT(result.epochs[0].loss, 0.0);
      EXPECT_GE(result.modeled_epoch.total(), 0.0);
    }
  }
}

TEST(DistTrainer, LossDecreases) {
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k1dSparse, 15);
  cfg.p = 4;
  cfg.partitioner = "metis";
  const auto result = run_distributed(ds, cfg);
  EXPECT_LT(result.epochs.back().loss, 0.9 * result.epochs.front().loss);
}

TEST(DistTrainer, PhaseVolumesMatchAlgorithmKind) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k1dOblivious, 2);
  cfg.p = 4;

  const auto oblivious = run_distributed(ds, cfg);
  EXPECT_GT(oblivious.phase_volumes.at("bcast").megabytes_per_epoch, 0.0);
  EXPECT_EQ(oblivious.phase_volumes.count("alltoall"), 0u);

  cfg.strategy = strategy_name(DistAlgo::k1dSparse);
  const auto sparse = run_distributed(ds, cfg);
  EXPECT_GT(sparse.phase_volumes.at("alltoall").megabytes_per_epoch, 0.0);
  EXPECT_EQ(sparse.phase_volumes.count("bcast"), 0u);
  EXPECT_GT(sparse.setup_megabytes, 0.0);
}

TEST(DistTrainer, SparsityAwareCommunicatesLessWithPartitioning) {
  // The headline mechanism: SA+partitioner moves fewer bytes per epoch than
  // the oblivious baseline on a partitionable graph.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k1dOblivious, 2);
  cfg.p = 4;
  cfg.partitioner = "block";
  const double oblivious_mb =
      run_distributed(ds, cfg).phase_volumes.at("bcast").megabytes_per_epoch;

  cfg.strategy = strategy_name(DistAlgo::k1dSparse);
  cfg.partitioner = "gvb";
  const double sa_mb =
      run_distributed(ds, cfg).phase_volumes.at("alltoall").megabytes_per_epoch;

  EXPECT_LT(sa_mb, oblivious_mb);
}

TEST(DistTrainer, VolumeModelPopulated) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k1dSparse, 1);
  cfg.p = 4;
  cfg.partitioner = "metis";
  const auto result = run_distributed(ds, cfg);
  EXPECT_EQ(result.volume_model.k, 4);
  EXPECT_GT(result.volume_model.total_rows(), 0u);
  EXPECT_GE(result.partition_wall_seconds, 0.0);
}

TEST(DistTrainer, Runs2dAlgorithms) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (DistAlgo algo : {DistAlgo::k2dOblivious, DistAlgo::k2dSparse}) {
    TrainConfig cfg = base_config(ds, algo, 2);
    cfg.p = 9;  // 3x3 grid
    cfg.partitioner = "metis";
    const auto result = run_distributed(ds, cfg);
    EXPECT_EQ(result.epochs.size(), 2u);
    // The 2D algorithm always pays its Z all-reduce.
    EXPECT_GT(result.phase_volumes.at("allreduce").megabytes_per_epoch, 0.0);
  }
}

TEST(DistTrainer, Rejects2dNonSquare) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k2dSparse, 1);
  cfg.p = 8;
  EXPECT_THROW(run_distributed(ds, cfg), Error);
}

TEST(DistTrainer, RejectsBadGrid) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k15dSparse, 1);
  cfg.p = 6;
  cfg.c = 2;  // c^2 = 4 does not divide 6
  EXPECT_THROW(run_distributed(ds, cfg), Error);
}

TEST(DistTrainer, RejectsMismatchedGcnDims) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  TrainConfig cfg = base_config(ds, DistAlgo::k1dSparse, 1);
  cfg.gcn.dims.back() += 1;
  EXPECT_THROW(run_distributed(ds, cfg), Error);
}

TEST(DistTrainer, AlgoNames) {
  EXPECT_STREQ(to_string(DistAlgo::k1dOblivious), "1d-oblivious(cagnet)");
  EXPECT_TRUE(is_15d(DistAlgo::k15dSparse));
  EXPECT_FALSE(is_15d(DistAlgo::k1dSparse));
}

}  // namespace
}  // namespace sagnn
