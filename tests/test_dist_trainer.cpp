// Distributed trainer plumbing: configurations run, metrics flow, volumes
// and modeled costs are populated, option validation.
#include <gtest/gtest.h>

#include "gnn/dist_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

DistTrainerOptions base_options(const Dataset& ds, int epochs = 3) {
  DistTrainerOptions opt;
  opt.gcn = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  opt.gcn.learning_rate = 0.3f;
  return opt;
}

// The historical DistTrainerOptions record maps onto the builder API,
// which is what these plumbing tests exercise.
TrainResult run_distributed(const Dataset& ds, const DistTrainerOptions& opt) {
  auto trainer = TrainerBuilder(ds).config(opt.to_train_config()).build();
  trainer->train();
  return trainer->result();
}

TEST(DistTrainer, RunsAllAlgorithmsAndPartitioners) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (DistAlgo algo : {DistAlgo::k1dOblivious, DistAlgo::k1dSparse,
                        DistAlgo::k15dOblivious, DistAlgo::k15dSparse}) {
    for (const char* partitioner : {"block", "random", "metis", "gvb"}) {
      SCOPED_TRACE(std::string(to_string(algo)) + " + " + partitioner);
      DistTrainerOptions opt = base_options(ds, 2);
      opt.algo = algo;
      opt.p = 4;
      opt.c = is_15d(algo) ? 2 : 1;
      opt.partitioner = partitioner;
      const auto result = run_distributed(ds, opt);
      ASSERT_EQ(result.epochs.size(), 2u);
      EXPECT_GT(result.epochs[0].loss, 0.0);
      EXPECT_GE(result.modeled_epoch.total(), 0.0);
    }
  }
}

TEST(DistTrainer, LossDecreases) {
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 15);
  opt.algo = DistAlgo::k1dSparse;
  opt.p = 4;
  opt.partitioner = "metis";
  const auto result = run_distributed(ds, opt);
  EXPECT_LT(result.epochs.back().loss, 0.9 * result.epochs.front().loss);
}

TEST(DistTrainer, PhaseVolumesMatchAlgorithmKind) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 2);
  opt.p = 4;

  opt.algo = DistAlgo::k1dOblivious;
  const auto oblivious = run_distributed(ds, opt);
  EXPECT_GT(oblivious.phase_volumes.at("bcast").megabytes_per_epoch, 0.0);
  EXPECT_EQ(oblivious.phase_volumes.count("alltoall"), 0u);

  opt.algo = DistAlgo::k1dSparse;
  const auto sparse = run_distributed(ds, opt);
  EXPECT_GT(sparse.phase_volumes.at("alltoall").megabytes_per_epoch, 0.0);
  EXPECT_EQ(sparse.phase_volumes.count("bcast"), 0u);
  EXPECT_GT(sparse.setup_megabytes, 0.0);
}

TEST(DistTrainer, SparsityAwareCommunicatesLessWithPartitioning) {
  // The headline mechanism: SA+partitioner moves fewer bytes per epoch than
  // the oblivious baseline on a partitionable graph.
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 2);
  opt.p = 4;

  opt.algo = DistAlgo::k1dOblivious;
  opt.partitioner = "block";
  const double oblivious_mb =
      run_distributed(ds, opt).phase_volumes.at("bcast").megabytes_per_epoch;

  opt.algo = DistAlgo::k1dSparse;
  opt.partitioner = "gvb";
  const double sa_mb =
      run_distributed(ds, opt).phase_volumes.at("alltoall").megabytes_per_epoch;

  EXPECT_LT(sa_mb, oblivious_mb);
}

TEST(DistTrainer, VolumeModelPopulated) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 1);
  opt.algo = DistAlgo::k1dSparse;
  opt.p = 4;
  opt.partitioner = "metis";
  const auto result = run_distributed(ds, opt);
  EXPECT_EQ(result.volume_model.k, 4);
  EXPECT_GT(result.volume_model.total_rows(), 0u);
  EXPECT_GE(result.partition_wall_seconds, 0.0);
}

TEST(DistTrainer, Runs2dAlgorithms) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (DistAlgo algo : {DistAlgo::k2dOblivious, DistAlgo::k2dSparse}) {
    DistTrainerOptions opt = base_options(ds, 2);
    opt.algo = algo;
    opt.p = 9;  // 3x3 grid
    opt.partitioner = "metis";
    const auto result = run_distributed(ds, opt);
    EXPECT_EQ(result.epochs.size(), 2u);
    // The 2D algorithm always pays its Z all-reduce.
    EXPECT_GT(result.phase_volumes.at("allreduce").megabytes_per_epoch, 0.0);
  }
}

TEST(DistTrainer, Rejects2dNonSquare) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 1);
  opt.algo = DistAlgo::k2dSparse;
  opt.p = 8;
  EXPECT_THROW(run_distributed(ds, opt), Error);
}

TEST(DistTrainer, RejectsBadGrid) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 1);
  opt.algo = DistAlgo::k15dSparse;
  opt.p = 6;
  opt.c = 2;  // c^2 = 4 does not divide 6
  EXPECT_THROW(run_distributed(ds, opt), Error);
}

TEST(DistTrainer, RejectsMismatchedGcnDims) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  DistTrainerOptions opt = base_options(ds, 1);
  opt.gcn.dims.back() += 1;
  EXPECT_THROW(run_distributed(ds, opt), Error);
}

TEST(DistTrainer, AlgoNames) {
  EXPECT_STREQ(to_string(DistAlgo::k1dOblivious), "1d-oblivious(cagnet)");
  EXPECT_TRUE(is_15d(DistAlgo::k15dSparse));
  EXPECT_FALSE(is_15d(DistAlgo::k1dSparse));
}

}  // namespace
}  // namespace sagnn
