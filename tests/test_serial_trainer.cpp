// Serial reference trainer: convergence, determinism, config validation.
#include <gtest/gtest.h>

#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

GcnConfig config_for(const Dataset& ds, int epochs = 30) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

TEST(SerialTrainer, LossDecreasesOnLearnableData) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  SerialTrainer trainer(ds, config_for(ds));
  const auto metrics = trainer.train();
  EXPECT_LT(metrics.back().loss, 0.8 * metrics.front().loss);
}

TEST(SerialTrainer, AccuracyImproves) {
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  SerialTrainer trainer(ds, config_for(ds, 60));
  const auto metrics = trainer.train();
  EXPECT_GT(metrics.back().train_accuracy, metrics.front().train_accuracy);
  EXPECT_GT(metrics.back().train_accuracy, 0.4);
}

TEST(SerialTrainer, DeterministicTraining) {
  const Dataset ds = make_reddit_sim(DatasetScale::kTiny);
  SerialTrainer a(ds, config_for(ds, 5));
  SerialTrainer b(ds, config_for(ds, 5));
  const auto ma = a.train();
  const auto mb = b.train();
  for (std::size_t e = 0; e < ma.size(); ++e) {
    EXPECT_DOUBLE_EQ(ma[e].loss, mb[e].loss);
  }
  EXPECT_DOUBLE_EQ(a.model().weight_distance(b.model()), 0.0);
}

TEST(SerialTrainer, ForwardLogitsShape) {
  const Dataset ds = make_papers_sim(DatasetScale::kTiny);
  SerialTrainer trainer(ds, config_for(ds));
  const Matrix logits = trainer.forward();
  EXPECT_EQ(logits.n_rows(), ds.n_vertices());
  EXPECT_EQ(logits.n_cols(), ds.n_classes);
}

TEST(SerialTrainer, RejectsMismatchedConfig) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnConfig bad = GcnConfig::paper_3layer(ds.n_features() + 1, ds.n_classes);
  EXPECT_THROW(SerialTrainer(ds, bad), Error);
  GcnConfig bad2 = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes + 1);
  EXPECT_THROW(SerialTrainer(ds, bad2), Error);
}

TEST(SerialTrainer, TwoLayerModelAlsoTrains) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnConfig cfg;
  cfg.dims = {ds.n_features(), 8, ds.n_classes};
  cfg.learning_rate = 0.3f;
  cfg.epochs = 20;
  SerialTrainer trainer(ds, cfg);
  const auto metrics = trainer.train();
  EXPECT_LT(metrics.back().loss, metrics.front().loss);
}

}  // namespace
}  // namespace sagnn
