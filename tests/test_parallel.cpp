// The thread-pool parallel runtime (common/parallel.hpp): coverage of the
// three contracts everything else relies on — fixed chunk boundaries,
// thread-count-invariant reductions, and the nesting guard that keeps
// simulated cluster ranks single-threaded.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "simcomm/cluster.hpp"

namespace sagnn {
namespace {

/// Restores the environment-default pool size on scope exit so tests can't
/// leak a pinned thread count into each other.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_parallel_threads(0); }
};

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int t : {1, 2, 8}) {
    set_parallel_threads(t);
    const std::int64_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(0, n, 17, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(Parallel, ChunkBoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  std::set<std::pair<std::int64_t, std::int64_t>> reference;
  for (int t : {1, 3, 8}) {
    set_parallel_threads(t);
    std::mutex mu;
    std::set<std::pair<std::int64_t, std::int64_t>> chunks;
    parallel_for(5, 104, 13, [&](std::int64_t b, std::int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    if (t == 1) {
      reference = chunks;
      // ceil((104-5)/13) = 8 chunks, first [5,18), last [96,104).
      EXPECT_EQ(chunks.size(), 8u);
      EXPECT_TRUE(chunks.count({5, 18}));
      EXPECT_TRUE(chunks.count({96, 104}));
    } else {
      EXPECT_EQ(chunks, reference) << t << " threads";
    }
  }
}

TEST(Parallel, ReduceIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  // Floating-point partial sums whose grouping WOULD change the bits if the
  // combine order ever depended on scheduling.
  std::vector<float> xs(10007);
  Rng rng(3);
  for (auto& x : xs) x = rng.uniform(-10.0f, 10.0f);
  const auto sum_at = [&](int threads) {
    set_parallel_threads(threads);
    return parallel_reduce(
        0, static_cast<std::int64_t>(xs.size()), 64, 0.0f,
        [&](std::int64_t b, std::int64_t e) {
          float acc = 0;
          for (std::int64_t i = b; i < e; ++i) acc += xs[static_cast<std::size_t>(i)];
          return acc;
        },
        [](float a, float b) { return a + b; });
  };
  const float s1 = sum_at(1);
  for (int t : {2, 5, 8}) {
    const float st = sum_at(t);
    EXPECT_EQ(std::memcmp(&s1, &st, sizeof(float)), 0) << t << " threads";
  }
}

TEST(Parallel, ReduceEmptyRangeReturnsIdentity) {
  EXPECT_EQ(parallel_reduce(
                3, 3, 1, 42,
                [](std::int64_t, std::int64_t) { return 7; },
                [](int a, int b) { return a + b; }),
            42);
}

TEST(Parallel, SetThreadsPinsAndZeroRestoresDefault) {
  ThreadCountGuard guard;
  set_parallel_threads(3);
  EXPECT_EQ(parallel_threads(), 3);
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1);
}

TEST(Parallel, SerialRegionForcesInlineExecution) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  SerialRegion serial;
  EXPECT_TRUE(in_serial_region());
  std::set<std::thread::id> ids;
  parallel_for(0, 64, 1, [&](std::int64_t, std::int64_t) {
    ids.insert(std::this_thread::get_id());  // no mutex needed: must be inline
  });
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()));
}

TEST(Parallel, SerialRegionNests) {
  {
    SerialRegion outer;
    {
      SerialRegion inner;
      EXPECT_TRUE(in_serial_region());
    }
    EXPECT_TRUE(in_serial_region());
  }
  EXPECT_FALSE(in_serial_region());
}

TEST(Parallel, ClusterRanksComputeSerially) {
  // The nesting guard of the tentpole: parallel_for issued from inside a
  // simulated rank (the Cluster SPMD launcher) must run inline on that
  // rank's own thread, so per-rank ThreadCpuTimer readings and serial
  // parity stay exact.
  ThreadCountGuard guard;
  set_parallel_threads(4);
  std::mutex mu;
  std::vector<std::pair<std::thread::id, std::set<std::thread::id>>> per_rank;
  run_spmd(3, [&](Comm& comm) {
    (void)comm;
    EXPECT_TRUE(in_serial_region());
    std::set<std::thread::id> ids;
    parallel_for(0, 32, 1, [&](std::int64_t, std::int64_t) {
      ids.insert(std::this_thread::get_id());
    });
    std::lock_guard<std::mutex> lock(mu);
    per_rank.emplace_back(std::this_thread::get_id(), std::move(ids));
  });
  ASSERT_EQ(per_rank.size(), 3u);
  for (const auto& [rank_id, ids] : per_rank) {
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_TRUE(ids.count(rank_id)) << "work escaped the rank thread";
  }
}

TEST(Parallel, WorkerThreadsRunNestedForInline) {
  ThreadCountGuard guard;
  set_parallel_threads(4);
  std::atomic<bool> nested_ok{true};
  parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    // Inside pool work every thread (workers AND the submitting thread,
    // which participates) must refuse to fan out again.
    const std::thread::id self = std::this_thread::get_id();
    parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
      if (std::this_thread::get_id() != self) nested_ok = false;
    });
  });
  EXPECT_TRUE(nested_ok.load());
}

}  // namespace
}  // namespace sagnn
