// Per-rank distributed matrix state: block extraction, NnzCols semantics,
// compaction consistency.
#include <gtest/gtest.h>

#include "dist/dist_csr.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

TEST(DistCsr, BlocksTileTheMatrix) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 512, rng));
  const auto ranges = uniform_block_ranges(64, 4);
  eid_t total = 0;
  for (int r = 0; r < 4; ++r) {
    DistCsr local(a, ranges, r);
    EXPECT_EQ(local.n_blocks(), 4);
    EXPECT_EQ(local.my_range().begin, ranges[static_cast<std::size_t>(r)].begin);
    for (int j = 0; j < 4; ++j) {
      total += local.plain_block(j).nnz();
      EXPECT_EQ(local.plain_block(j).nnz(), local.compacted_block(j).matrix.nnz());
    }
  }
  EXPECT_EQ(total, a.nnz());
}

TEST(DistCsr, NeededRowsMatchNnzCols) {
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(48, 300, rng));
  const auto ranges = uniform_block_ranges(48, 3);
  for (int r = 0; r < 3; ++r) {
    DistCsr local(a, ranges, r);
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(local.needed_rows(j), nnz_cols(local.plain_block(j)));
    }
  }
}

TEST(DistCsr, NeededRowsAreLocalIndices) {
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(40, 200, rng));
  const auto ranges = uniform_block_ranges(40, 4);
  DistCsr local(a, ranges, 1);
  for (int j = 0; j < 4; ++j) {
    for (vid_t idx : local.needed_rows(j)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, ranges[static_cast<std::size_t>(j)].size());
    }
  }
}

TEST(DistCsr, DiagonalDominantGraphNeedsFewRemoteRows) {
  // A graph with only intra-block edges needs zero remote rows.
  CooMatrix coo(8, 8);
  coo.add(0, 1, 1);
  coo.add(2, 3, 1);
  coo.add(4, 5, 1);
  coo.add(6, 7, 1);
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const auto ranges = uniform_block_ranges(8, 4);
  for (int r = 0; r < 4; ++r) {
    DistCsr local(a, ranges, r);
    EXPECT_EQ(local.total_needed_rows_remote(), 0u);
  }
}

TEST(DistCsr, RemoteRowCountMatchesVolumeIntuition) {
  Rng rng(4);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(60, 600, rng));
  const auto ranges = uniform_block_ranges(60, 4);
  DistCsr local(a, ranges, 0);
  std::uint64_t manual = 0;
  for (int j = 1; j < 4; ++j) manual += local.needed_rows(j).size();
  EXPECT_EQ(local.total_needed_rows_remote(), manual);
  // Never more than the full remote row space.
  EXPECT_LE(manual, static_cast<std::uint64_t>(60 - ranges[0].size()));
}

TEST(DistCsr, LocalSpmmReconstructsGlobalProduct) {
  // Summing each rank's plain-block multiplies reproduces A*H — the
  // underlying identity of the 1D algorithms, tested without communication.
  Rng rng(5);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(52, 400, rng));
  const Matrix h = Matrix::random_uniform(52, 6, rng);
  const auto ranges = uniform_block_ranges(52, 4);
  const Matrix z_ref = spmm(a, h);
  for (int r = 0; r < 4; ++r) {
    DistCsr local(a, ranges, r);
    Matrix z(local.local_rows(), 6);
    for (int j = 0; j < 4; ++j) {
      const Matrix h_j = h.slice_rows(ranges[static_cast<std::size_t>(j)].begin,
                                      ranges[static_cast<std::size_t>(j)].end);
      spmm_accumulate(local.plain_block(j), h_j, z);
    }
    const Matrix z_block = z_ref.slice_rows(local.my_range().begin,
                                            local.my_range().end);
    EXPECT_LT(z.max_abs_diff(z_block), 1e-5);
  }
}

TEST(DistCsr, RejectsBadArguments) {
  const CsrMatrix a = CsrMatrix::zeros(8, 8);
  const auto ranges = uniform_block_ranges(8, 2);
  EXPECT_THROW(DistCsr(a, ranges, 2), Error);
  EXPECT_THROW(DistCsr(CsrMatrix::zeros(3, 4), ranges, 0), Error);
}

}  // namespace
}  // namespace sagnn
