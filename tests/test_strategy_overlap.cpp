// The "1d-overlap" chunked-pipelining strategy and the cost accounting it
// depends on: identical training math and bytes to "1d-sparse" with K-fold
// messages, stage-tagged traffic driving TrainResult's three schedule
// columns, and a strategy-level epoch cost whose `other` bucket excludes
// the one-time index exchange exactly.
#include <gtest/gtest.h>

#include "gnn/strategy.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"
#include "sparse/blocks.hpp"

namespace sagnn {
namespace {

GcnConfig tiny_config(const Dataset& ds, int epochs = 3) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

TrainResult run(const Dataset& ds, const std::string& strategy, int chunks,
                int epochs = 3) {
  auto trainer = TrainerBuilder(ds)
                     .strategy(strategy)
                     .ranks(4)
                     .partitioner("gvb")
                     .pipeline_chunks(chunks)
                     .gcn(tiny_config(ds, epochs))
                     .build();
  trainer->train();
  return trainer->result();
}

TEST(StrategyOverlap, SameBytesAsSparseWithKFoldMessages) {
  // The pipelined schedule reuses the 1D sparsity-aware index exchange, so
  // it moves exactly the same payload per epoch — the chunking only
  // multiplies the per-pair message count (the latency price of overlap).
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int chunks = 4;
  const TrainResult sparse = run(ds, "1d-sparse", chunks);
  const TrainResult overlap = run(ds, "1d-overlap", chunks);

  const PhaseVolume& a2a_sparse = sparse.phase_volumes.at("alltoall");
  const PhaseVolume& a2a_overlap = overlap.phase_volumes.at("alltoall");
  EXPECT_DOUBLE_EQ(a2a_overlap.megabytes_per_epoch, a2a_sparse.megabytes_per_epoch);
  EXPECT_DOUBLE_EQ(a2a_overlap.messages_per_epoch,
                   chunks * a2a_sparse.messages_per_epoch);
  EXPECT_DOUBLE_EQ(overlap.setup_megabytes, sparse.setup_megabytes);

  // Identical math: the loss trajectories agree bitwise, not just within
  // the serial-parity tolerance.
  ASSERT_EQ(overlap.epochs.size(), sparse.epochs.size());
  for (std::size_t e = 0; e < sparse.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(overlap.epochs[e].loss, sparse.epochs[e].loss) << e;
    EXPECT_DOUBLE_EQ(overlap.epochs[e].train_accuracy,
                     sparse.epochs[e].train_accuracy)
        << e;
  }
}

TEST(StrategyOverlap, SurfacesThreeScheduleColumns) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (int chunks : {1, 2, 4, 8}) {
    const TrainResult r = run(ds, "1d-overlap", chunks, 2);
    EXPECT_EQ(r.pipeline_stages, chunks);
    const double bulk = r.modeled_epoch_seconds();
    const double pipe = r.modeled_epoch_pipelined_seconds();
    const double ideal = r.modeled_epoch_overlapped_seconds();
    EXPECT_LE(pipe, bulk) << chunks;
    EXPECT_GE(pipe, ideal) << chunks;
    if (chunks == 1) {
      EXPECT_DOUBLE_EQ(pipe, bulk);
    }
  }
  // Bulk-synchronous strategies report a single stage, for which the
  // pipelined column degenerates to the bulk one.
  const TrainResult sparse = run(ds, "1d-sparse", 4, 2);
  EXPECT_EQ(sparse.pipeline_stages, 1);
  EXPECT_DOUBLE_EQ(sparse.modeled_epoch_pipelined_seconds(),
                   sparse.modeled_epoch_seconds());
}

TEST(StrategyOverlap, ChunkCountsBeyondFeatureWidthClamp) {
  // More chunks than columns must not break anything: each multiply clamps
  // to its own feature width and stays exact.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const TrainResult wide = run(ds, "1d-overlap", 1000, 2);
  const TrainResult sparse = run(ds, "1d-sparse", 1, 2);
  ASSERT_EQ(wide.epochs.size(), sparse.epochs.size());
  for (std::size_t e = 0; e < sparse.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(wide.epochs[e].loss, sparse.epochs[e].loss) << e;
  }
  EXPECT_GT(wide.pipeline_stages, 1);
}

TEST(StrategyOverlap, RejectsNonPositiveChunkCount) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(run(ds, "1d-overlap", 0, 1), Error);
}

TEST(StrategyEpochCost, OtherBucketExcludesIndexExchangeExactly) {
  // The one-time index exchange is excluded during cost assembly, so the
  // per-epoch `other` bucket equals the non-setup phases' cost exactly —
  // no subtract-and-clamp remainder.
  Rng rng(5);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(16, 60, rng));
  const auto ranges = uniform_block_ranges(16, 2);
  StrategyContext ctx;
  ctx.p = 2;
  ctx.adjacency = &a;
  ctx.ranges = ranges;
  const auto strategy = strategy_registry().create("1d-sparse");

  CostModel m;
  TrafficRecorder rec(2);
  rec.record("index_exchange", 0, 1, 123457);
  rec.record("gather", 0, 1, 1000);  // lands in `other`
  rec.record("alltoall", 0, 1, 500);
  const int epochs = 3;
  const std::vector<double> cpu{0.1, 0.2};
  const EpochCost cost = strategy->epoch_cost(m, rec, cpu, ctx, epochs);
  EXPECT_DOUBLE_EQ(cost.other, m.phase_seconds(rec.phase("gather")) / epochs);
  EXPECT_DOUBLE_EQ(cost.alltoall,
                   m.phase_seconds(rec.phase("alltoall")) / epochs);
}

TEST(StrategyOverlap, BlockRowWorkSharedWithSparse1d) {
  // Both 1D strategies weight ranks by block-row nnz; the shared helper
  // must agree with a direct per-block count.
  Rng rng(6);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(24, 120, rng));
  const auto ranges = uniform_block_ranges(24, 3);
  StrategyContext ctx;
  ctx.p = 3;
  ctx.adjacency = &a;
  ctx.ranges = ranges;
  const auto work = block_row_nnz_work(ctx);
  ASSERT_EQ(work.size(), 3u);
  double total = 0;
  for (double w : work) total += w;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(a.nnz()));
  EXPECT_EQ(strategy_registry().create("1d-overlap")->rank_work(ctx), work);
  EXPECT_EQ(strategy_registry().create("1d-sparse")->rank_work(ctx), work);
}

}  // namespace
}  // namespace sagnn
