// Deterministic fault injection and closed-loop recovery: empty-plan
// bitwise parity, straggler accounting, exactly-once delivery over lossy
// links, typed retry exhaustion (never a hang), scheduled rank kills at
// epoch boundaries / mid-collective, checkpoint-atomicity survival, and
// the train()-level recovery loop (transient, cold, and elastic restarts).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "gnn/distributed_trainer.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"
#include "simcomm/cluster.hpp"
#include "simcomm/collectives.hpp"
#include "simcomm/comm.hpp"
#include "simcomm/fault.hpp"

namespace sagnn {
namespace {

GcnConfig tiny_config(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

std::string temp_ckpt_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Run `body` on a helper thread and fail (instead of hanging the suite)
/// if it does not finish within five seconds.
void with_watchdog(const std::function<void()>& body) {
  std::atomic<bool> done{false};
  std::thread runner([&] {
    body();
    done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(done.load()) << "fault-injection scenario hung (watchdog)";
  runner.join();
}

TEST(FaultPlan, SpecValidationIsTyped) {
  FaultSpec bad_drop;
  bad_drop.drop_probability = 1.5;
  EXPECT_THROW((void)FaultPlan{bad_drop}, Error);
  FaultSpec bad_slow;
  bad_slow.rank_slowdown[0] = 0.5;  // < 1 would be a speedup
  EXPECT_THROW((void)FaultPlan{bad_slow}, Error);
  FaultSpec bad_retry;
  bad_retry.max_attempts = 0;
  EXPECT_THROW((void)FaultPlan{bad_retry}, Error);
  EXPECT_TRUE(FaultPlan{FaultSpec{}}.empty());
}

TEST(FaultPlan, DecisionsAreDeterministicPureHashes) {
  FaultSpec spec;
  spec.seed = 42;
  spec.drop_probability = 0.5;
  spec.duplicate_probability = 0.5;
  const FaultPlan a(spec), b(spec);
  int drops = 0;
  for (std::uint64_t s = 0; s < 200; ++s) {
    EXPECT_EQ(a.should_drop(0, 1, 7, s, 1), b.should_drop(0, 1, 7, s, 1));
    EXPECT_EQ(a.should_duplicate(0, 1, 7, s, 1), b.should_duplicate(0, 1, 7, s, 1));
    drops += a.should_drop(0, 1, 7, s, 1) ? 1 : 0;
  }
  // Roughly half at p = 0.5 — a loose band, but enough to catch a hash
  // that collapsed to constant true/false.
  EXPECT_GT(drops, 50);
  EXPECT_LT(drops, 150);
  // Different seeds decide differently somewhere in 200 events.
  spec.seed = 43;
  const FaultPlan c(spec);
  bool any_diff = false;
  for (std::uint64_t s = 0; s < 200 && !any_diff; ++s) {
    any_diff = a.should_drop(0, 1, 7, s, 1) != c.should_drop(0, 1, 7, s, 1);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Faults, InstalledEmptyPlanIsBitwiseIdenticalAtCommLevel) {
  // The parity guarantee at the runtime layer: an installed-but-empty plan
  // must leave traffic, payloads, and counters exactly as with no plan.
  auto exchange = [](Comm& comm) {
    std::vector<std::vector<float>> send(4);
    for (int dst = 0; dst < 4; ++dst) {
      send[static_cast<std::size_t>(dst)] = {
          static_cast<float>(comm.rank() * 10 + dst)};
    }
    auto got = alltoallv<float>(comm, send);
    ASSERT_EQ(got.size(), 4u);
  };
  const TrafficRecorder plain = run_spmd(4, exchange);
  const TrafficRecorder with_plan =
      run_spmd(4, FaultPlan::make(FaultSpec{}), exchange);
  EXPECT_FALSE(with_plan.fault_counters().any());
  ASSERT_EQ(plain.phase_names(), with_plan.phase_names());
  for (const auto& name : plain.phase_names()) {
    EXPECT_EQ(plain.phase(name).bytes, with_plan.phase(name).bytes) << name;
    EXPECT_EQ(plain.phase(name).msgs, with_plan.phase(name).msgs) << name;
  }
}

TEST(Faults, EmptyPlanKeepsTrainingBitwiseIdentical) {
  // Same guarantee end to end: a distributed run with an empty plan
  // installed reproduces the fault-free loss trajectory bit for bit.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto plain = TrainerBuilder(ds)
                   .strategy("1d-sparse")
                   .ranks(4)
                   .gcn(tiny_config(ds, 3))
                   .build();
  plain->train();
  auto faulty = TrainerBuilder(ds)
                    .strategy("1d-sparse")
                    .ranks(4)
                    .gcn(tiny_config(ds, 3))
                    .fault_plan(FaultSpec{})
                    .fault_recovery(FaultRecovery::kCheckpointRestart)
                    .build();
  faulty->train();
  const TrainResult& a = plain->result();
  const TrainResult& b = faulty->result();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].loss, b.epochs[e].loss) << e;  // exact, not approx
  }
  EXPECT_FALSE(b.faults.any());
  EXPECT_EQ(b.recovery.kills, 0);
}

TEST(Faults, StragglerDelayIsChargedAndCounted) {
  FaultSpec spec;
  spec.rank_slowdown[1] = 3.0;  // rank 1 pays 2 * straggler_send_delay/send
  spec.straggler_send_delay = 200e-6;
  const auto plan = FaultPlan::make(spec);
  const TrafficRecorder traffic = run_spmd(2, plan, [](Comm& comm) {
    const std::vector<int> payload{comm.rank()};
    if (comm.rank() == 1) {
      for (int i = 0; i < 5; ++i) comm.send<int>(0, 100 + i, payload, "p2p");
    } else {
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(comm.recv<int>(1, 100 + i), std::vector<int>{1});
      }
    }
  });
  const FaultCounters fc = traffic.fault_counters();
  // 5 sends * (3 - 1) * 200us = 2ms of injected delay, exactly.
  EXPECT_NEAR(fc.straggler_seconds, 5 * 2 * 200e-6, 1e-12);
  EXPECT_EQ(fc.drops, 0u);
  EXPECT_EQ(fc.retries, 0u);
}

TEST(Faults, LossyLinkDeliversEveryMessageExactlyOnceInOrder) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_probability = 0.4;
  spec.duplicate_probability = 0.4;
  spec.max_attempts = 8;
  spec.retry_timeout = 1e-3;
  const int n = 50;
  const auto plan = FaultPlan::make(spec);
  with_watchdog([&] {
    const TrafficRecorder traffic = run_spmd(2, plan, [&](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < n; ++i) {
          const std::vector<int> payload{1000 + i};
          comm.send<int>(1, 5, payload, "p2p");
        }
      } else {
        // One tag, n messages: the seq-number stream must survive drops,
        // retransmissions, and duplicate deliveries in posted order.
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(comm.recv<int>(0, 5), std::vector<int>{1000 + i}) << i;
        }
      }
    });
    const FaultCounters fc = traffic.fault_counters();
    EXPECT_GT(fc.drops, 0u);
    // Every swallowed transmission was eventually re-requested: with no
    // retry budget exhausted, retransmissions equal drops exactly.
    EXPECT_EQ(fc.retries, fc.drops);
    EXPECT_GE(fc.timeouts, fc.retries);
    EXPECT_GT(fc.duplicates, 0u);
    // Retransmissions put real bytes back on the wire, in their own phase.
    EXPECT_GT(traffic.phase("retry").total_bytes(), 0u);
  });
}

TEST(Faults, RetryExhaustionIsATypedErrorNotAHang) {
  FaultSpec spec;
  spec.drop_probability = 1.0;  // the link never delivers
  spec.max_attempts = 3;
  spec.retry_timeout = 1e-3;
  const auto plan = FaultPlan::make(spec);
  with_watchdog([&] {
    Cluster cluster(2, plan);
    try {
      cluster.run([](Comm& comm) {
        if (comm.rank() == 0) {
          const std::vector<int> payload{1};
          comm.send<int>(1, 9, payload, "p2p");
        } else {
          (void)comm.recv<int>(0, 9);
        }
      });
      FAIL() << "expected FaultError";
    } catch (const FaultError& e) {
      EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
    }
    EXPECT_GT(cluster.traffic().fault_counters().drops, 0u);
  });
}

TEST(Faults, KillFiresDuringInFlightAlltoallv) {
  // after_sends = 2: rank 0 dies on its third cross-rank send, i.e. with
  // the collective's sends partially delivered. Peers' pending waitalls
  // must resolve via AbortedError and the root cause must surface.
  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/0, /*rank=*/0, /*after_sends=*/2,
                                /*permanent=*/false});
  const auto plan = FaultPlan::make(spec);
  with_watchdog([&] {
    Cluster cluster(4, plan);
    cluster.world().begin_fault_epoch(0);
    try {
      cluster.run([](Comm& comm) {
        std::vector<std::vector<float>> send(4);
        for (int dst = 0; dst < 4; ++dst) {
          send[static_cast<std::size_t>(dst)] = {static_cast<float>(dst)};
        }
        auto pending = ialltoallv<float>(comm, send);
        (void)pending.wait();
      });
      FAIL() << "expected RankKilledError";
    } catch (const RankKilledError& e) {
      EXPECT_EQ(e.rank(), 0);
      EXPECT_EQ(e.epoch(), 0);
      EXPECT_FALSE(e.permanent());
    }
    EXPECT_EQ(plan->kills_fired(), 1);
  });
}

TEST(Faults, KillDuringEpochRecoversFromAutoCheckpointBitwise) {
  // Two transient kills mid-run; recovery restores from the last periodic
  // snapshot and replays. Replayed epochs are deterministic (dropout keys
  // on the original row ids and the epoch index), so the final trajectory
  // must match the fault-free reference bit for bit.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_fault_recovery.ckpt");
  std::filesystem::remove(path);

  auto reference = TrainerBuilder(ds)
                       .strategy("1d-sparse")
                       .ranks(4)
                       .gcn(tiny_config(ds, 6))
                       .build();
  reference->train();

  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/3, /*rank=*/1, 0, false});
  spec.kills.push_back(KillSpec{/*epoch=*/5, /*rank=*/3, 0, false});
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 6))
                     .auto_checkpoint(path, 2)
                     .fault_plan(spec)
                     .fault_recovery(FaultRecovery::kCheckpointRestart)
                     .build();
  trainer->train();
  const TrainResult& got = trainer->result();
  const TrainResult& want = reference->result();
  ASSERT_EQ(got.epochs.size(), want.epochs.size());
  for (std::size_t e = 0; e < want.epochs.size(); ++e) {
    EXPECT_EQ(got.epochs[e].loss, want.epochs[e].loss) << e;
  }
  EXPECT_EQ(got.recovery.kills, 2);
  EXPECT_EQ(got.recovery.restores, 2);
  EXPECT_EQ(got.recovery.cold_restarts, 0);
  EXPECT_EQ(got.recovery.elastic_restarts, 0);
  // Kill at epoch 3 restored the epoch-2 snapshot (+1 replayed); kill at
  // epoch 5 restored the epoch-4 snapshot (+1 replayed).
  EXPECT_EQ(got.recovery.replayed_epochs, 2);
  EXPECT_GT(got.recovery.snapshot_bytes, 0u);
  std::filesystem::remove(path);
}

TEST(Faults, MidExchangeKillLeavesDivergedRanksAndStillRecoversBitwise) {
  // after_sends > 0 lands the kill inside epoch 3's exchange: peers are
  // mid-collective, some ranks have already applied partial updates.
  // Recovery must not trust any survivor state — it restores the epoch-2
  // snapshot and replays, so the trajectory still matches the fault-free
  // reference bit for bit.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_fault_midexchange.ckpt");
  std::filesystem::remove(path);

  auto reference = TrainerBuilder(ds)
                       .strategy("1d-sparse")
                       .ranks(4)
                       .gcn(tiny_config(ds, 5))
                       .build();
  reference->train();

  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/3, /*rank=*/2, /*after_sends=*/3,
                                /*permanent=*/false});
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 5))
                     .auto_checkpoint(path, 2)
                     .fault_plan(spec)
                     .fault_recovery(FaultRecovery::kCheckpointRestart)
                     .build();
  trainer->train();
  const TrainResult& got = trainer->result();
  const TrainResult& want = reference->result();
  ASSERT_EQ(got.epochs.size(), want.epochs.size());
  for (std::size_t e = 0; e < want.epochs.size(); ++e) {
    EXPECT_EQ(got.epochs[e].loss, want.epochs[e].loss) << e;
  }
  EXPECT_EQ(got.recovery.kills, 1);
  EXPECT_EQ(got.recovery.restores, 1);
  EXPECT_EQ(got.recovery.replayed_epochs, 1);
  std::filesystem::remove(path);
}

TEST(Faults, KillBeforeFirstSnapshotColdRestartsBitwise) {
  // The kill fires before any auto-checkpoint exists: recovery must fall
  // back to a cold restart from epoch 0 and still reproduce the reference
  // trajectory exactly (the fired kill never re-fires on replay).
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto reference = TrainerBuilder(ds)
                       .strategy("1d-sparse")
                       .ranks(4)
                       .gcn(tiny_config(ds, 4))
                       .build();
  reference->train();

  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/1, /*rank=*/2, 0, false});
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 4))
                     .fault_plan(spec)
                     .fault_recovery(FaultRecovery::kCheckpointRestart)
                     .build();
  trainer->train();
  const TrainResult& got = trainer->result();
  const TrainResult& want = reference->result();
  ASSERT_EQ(got.epochs.size(), want.epochs.size());
  for (std::size_t e = 0; e < want.epochs.size(); ++e) {
    EXPECT_EQ(got.epochs[e].loss, want.epochs[e].loss) << e;
  }
  EXPECT_EQ(got.recovery.kills, 1);
  EXPECT_EQ(got.recovery.restores, 0);
  EXPECT_EQ(got.recovery.cold_restarts, 1);
  EXPECT_EQ(got.recovery.replayed_epochs, 1);
}

TEST(Faults, PermanentKillRestartsElasticallyOnPMinus1) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_fault_elastic.ckpt");
  std::filesystem::remove(path);
  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/3, /*rank=*/2, 0, /*permanent=*/true});
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 6))
                     .auto_checkpoint(path, 2)
                     .fault_plan(spec)
                     .fault_recovery(FaultRecovery::kCheckpointRestart)
                     .build();
  trainer->train();
  const TrainResult& got = trainer->result();
  // The survivors finish the job on 3 ranks. The elastic restart
  // re-partitions, so the post-restart trajectory legitimately differs
  // from a 4-rank run — assert completion and sane training, not bits.
  EXPECT_EQ(dynamic_cast<const DistributedTrainer&>(*trainer).config().p, 3);
  ASSERT_EQ(got.epochs.size(), 6u);
  for (const auto& em : got.epochs) EXPECT_TRUE(std::isfinite(em.loss));
  EXPECT_EQ(got.recovery.kills, 1);
  EXPECT_EQ(got.recovery.elastic_restarts, 1);
  EXPECT_EQ(got.recovery.restores, 1);
  std::filesystem::remove(path);
}

TEST(Faults, TornTmpFileNeverShadowsTheGoodSnapshot) {
  // A kill between checkpoint write and rename leaves a torn .tmp sibling
  // behind; the previous good snapshot must stay authoritative. Simulate
  // the torn write directly and resume through the normal path.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string path = temp_ckpt_path("sagnn_fault_torn.ckpt");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");

  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 5))
                     .auto_checkpoint(path, 2)
                     .build();
  trainer->train();
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::ofstream torn(path + ".tmp", std::ios::binary);
    torn << "garbage from a killed writer";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  auto resumed = TrainerBuilder(ds).resume(in);
  EXPECT_EQ(resumed->epochs_run(), 4);
  resumed->train();
  const TrainResult& cont = resumed->result();
  const TrainResult& full = trainer->result();
  ASSERT_EQ(cont.epochs.size(), full.epochs.size());
  for (std::size_t e = 0; e < full.epochs.size(); ++e) {
    EXPECT_EQ(cont.epochs[e].loss, full.epochs[e].loss) << e;
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(Faults, KillWithoutRecoveryPolicyPropagatesTyped) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  FaultSpec spec;
  spec.kills.push_back(KillSpec{/*epoch=*/1, /*rank=*/0, 0, false});
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(4)
                     .gcn(tiny_config(ds, 4))
                     .fault_plan(spec)
                     .build();  // FaultRecovery::kNone
  EXPECT_THROW(trainer->train(), RankKilledError);
}

}  // namespace
}  // namespace sagnn
