// Quality properties of the optimizing partitioners — the statistical
// claims the paper's §5 and Table 2 rest on:
//   * the METIS-analogue minimizes total volume but can leave high
//     max-send imbalance on irregular graphs;
//   * the GVB-analogue reduces max send volume relative to the
//     METIS-analogue without blowing up total volume;
//   * on regular (clustered) graphs both drive the edgecut to near zero.
#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"

namespace sagnn {
namespace {

TEST(PartitionQuality, GvbReducesMaxSendOnIrregularGraph) {
  // R-MAT (amazon-like irregularity), several seeds: GVB's max send volume
  // should beat the edge-cut partitioner's in aggregate.
  int wins = 0, rounds = 0;
  double metis_max_total = 0, gvb_max_total = 0;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    const CsrMatrix a = CsrMatrix::from_coo(rmat(10, 6, rng));
    PartitionerOptions opts;
    opts.seed = seed;
    const auto metis = EdgeCutPartitioner(opts).partition(a, 8);
    const auto gvb = GvbPartitioner(opts).partition(a, 8);
    const auto sm = compute_volume_stats(a, metis);
    const auto sg = compute_volume_stats(a, gvb);
    metis_max_total += static_cast<double>(sm.max_send_rows());
    gvb_max_total += static_cast<double>(sg.max_send_rows());
    if (sg.max_send_rows() <= sm.max_send_rows()) ++wins;
    ++rounds;
  }
  EXPECT_GE(wins, 2) << "GVB should rarely lose on max send volume";
  EXPECT_LE(gvb_max_total, metis_max_total);
}

TEST(PartitionQuality, GvbDoesNotBlowUpTotalVolume) {
  Rng rng(44);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(10, 6, rng));
  PartitionerOptions opts;
  opts.seed = 5;
  const auto metis = compute_volume_stats(a, EdgeCutPartitioner(opts).partition(a, 8));
  const auto gvb = compute_volume_stats(a, GvbPartitioner(opts).partition(a, 8));
  EXPECT_LE(static_cast<double>(gvb.total_rows()),
            1.3 * static_cast<double>(metis.total_rows()));
}

TEST(PartitionQuality, ClusteredGraphCutNearZero) {
  // The Protein regime: strong communities -> optimizing partitioners cut
  // almost nothing while random/block cut a large fraction of edges.
  Rng rng(7);
  const CsrMatrix a = CsrMatrix::from_coo(clustered_graph(2048, 128, 10, 0.05, rng));
  const auto metis = compute_volume_stats(a, EdgeCutPartitioner().partition(a, 16));
  const auto random = compute_volume_stats(a, RandomPartitioner().partition(a, 16));
  EXPECT_LT(static_cast<double>(metis.edgecut),
            0.05 * static_cast<double>(random.edgecut));
}

TEST(PartitionQuality, PartitionersKeepComputeBalance) {
  Rng rng(15);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(10, 8, rng));
  for (const char* name : {"metis", "gvb"}) {
    const auto part = make_partitioner(name)->partition(a, 8);
    // nnz balance within the epsilon envelope (plus slack for the GVB
    // relaxation and integer effects).
    EXPECT_LT(compute_load_imbalance(a, part), 1.45) << name;
  }
}

TEST(PartitionQuality, MetisLikeShowsImbalanceOnIrregularGraph) {
  // Table 2's phenomenon: minimizing total volume alone leaves substantial
  // max/avg send imbalance on skewed graphs at moderate part counts.
  Rng rng(21);
  const CsrMatrix a = CsrMatrix::from_coo(rmat(11, 6, rng));
  const auto part = EdgeCutPartitioner().partition(a, 16);
  const auto stats = compute_volume_stats(a, part);
  EXPECT_GT(stats.send_imbalance_percent(), 10.0);
}

TEST(PartitionQuality, VolumeImprovesWithPartitionerHierarchy) {
  // random >= metis on total volume; this is what makes SA+partitioning
  // worthwhile at all.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const CsrMatrix& a = ds.adjacency;
  const auto rnd = compute_volume_stats(a, RandomPartitioner().partition(a, 8));
  const auto met = compute_volume_stats(a, EdgeCutPartitioner().partition(a, 8));
  EXPECT_LT(met.total_rows(), rnd.total_rows());
}

}  // namespace
}  // namespace sagnn
