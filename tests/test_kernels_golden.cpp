// Golden-trajectory regression for the kernel-format knob: flipping
// TrainConfig::kernels to SELL-C-sigma must change NOTHING observable —
// end-to-end loss/accuracy trajectories bitwise identical and per-phase
// communication volumes exactly equal, for EVERY registered
// (strategy x partitioner) pair (the case list is re-derived from the
// registries, so strategies added later are automatically held to the same
// bar with zero edits here), for the serial and sampled built-in modes,
// and for the serving engine's full_forward/infer_batch chain.
//
// Suites are prefixed "KernelsGolden" so the sanitizer CI jobs can select
// them by regex alongside the kernel parity suites.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"
#include "graph/datasets.hpp"
#include "partition/partitioner_registry.hpp"
#include "serve/graph_mutator.hpp"
#include "serve/inference_engine.hpp"

namespace sagnn {
namespace {

KernelConfig sell_config() {
  KernelConfig cfg;
  cfg.format = SpmmFormat::kSell;
  // Deliberately small chunk/sigma so tiny datasets still exercise several
  // chunks and sorting windows.
  cfg.sell_chunk = 8;
  cfg.sell_sigma = 16;
  return cfg;
}

GcnConfig tiny_gcn(const Dataset& ds, int epochs) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

/// EXACT equality of two runs: trajectories bit for bit, volumes to the
/// last byte. No tolerance — the knob's contract is bitwise neutrality.
void expect_identical_results(const TrainResult& csr, const TrainResult& sell) {
  ASSERT_EQ(csr.epochs.size(), sell.epochs.size());
  for (std::size_t e = 0; e < csr.epochs.size(); ++e) {
    EXPECT_EQ(csr.epochs[e].loss, sell.epochs[e].loss) << "epoch " << e;
    EXPECT_EQ(csr.epochs[e].train_accuracy, sell.epochs[e].train_accuracy)
        << "epoch " << e;
  }
  ASSERT_EQ(csr.phase_volumes.size(), sell.phase_volumes.size());
  for (const auto& [phase, vol] : csr.phase_volumes) {
    const auto it = sell.phase_volumes.find(phase);
    ASSERT_NE(it, sell.phase_volumes.end()) << "phase " << phase;
    EXPECT_EQ(vol.megabytes_per_epoch, it->second.megabytes_per_epoch)
        << "phase " << phase;
    EXPECT_EQ(vol.messages_per_epoch, it->second.messages_per_epoch)
        << "phase " << phase;
  }
}

// ---- Registry-driven sweep: EVERY registered (strategy x partitioner) ----

class KernelsGoldenRegistrySweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(KernelsGoldenRegistrySweep, SellTrajectoryBitwiseEqualsCsr) {
  const auto& [strategy, partitioner] = GetParam();
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig gcn = tiny_gcn(ds, 3);
  // p = 4 satisfies every registered geometry (any p for 1D, c^2 | p for
  // 1.5D with c = 2, perfect square for 2D).
  const int c = strategy.rfind("1.5d", 0) == 0 ? 2 : 1;

  auto run = [&](const KernelConfig& kernels) {
    auto trainer = TrainerBuilder(ds)
                       .strategy(strategy)
                       .ranks(4, c)
                       .partitioner(partitioner)
                       .gcn(gcn)
                       .kernels(kernels)
                       .build();
    trainer->train();
    return trainer->result();
  };
  expect_identical_results(run(KernelConfig{}), run(sell_config()));
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPairs, KernelsGoldenRegistrySweep,
    ::testing::Combine(::testing::ValuesIn(strategy_registry().names()),
                       ::testing::ValuesIn(partitioner_registry().names())),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// ---- Built-in single-rank modes ----

TEST(KernelsGolden, SerialTrajectoryBitwiseEqualsCsr) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig gcn = tiny_gcn(ds, 4);
  auto run = [&](const KernelConfig& kernels) {
    auto trainer =
        TrainerBuilder(ds).strategy("serial").gcn(gcn).kernels(kernels).build();
    trainer->train();
    return trainer->result();
  };
  expect_identical_results(run(KernelConfig{}), run(sell_config()));
}

TEST(KernelsGolden, SampledTrajectoryBitwiseEqualsCsr) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig gcn = tiny_gcn(ds, 3);
  SamplingConfig sampling;
  sampling.batch_size = 32;
  sampling.fanouts = {4, 4, 4};
  auto run = [&](const KernelConfig& kernels) {
    auto trainer = TrainerBuilder(ds)
                       .strategy("sampled")
                       .gcn(gcn)
                       .sampling(sampling)
                       .kernels(kernels)
                       .build();
    trainer->train();
    return trainer->result();
  };
  expect_identical_results(run(KernelConfig{}), run(sell_config()));
}

// ---- Serving ----

TEST(KernelsGolden, ServingForwardBitwiseEqualAcrossFormats) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  auto trainer =
      TrainerBuilder(ds).strategy("serial").gcn(tiny_gcn(ds, 2)).build();
  trainer->train();
  const GcnModel& model = dynamic_cast<SerialTrainer&>(*trainer).model();

  serve::GraphMutator g_csr(ds.adjacency);
  serve::InferenceEngine csr(model, ds.features, g_csr, 1u << 20);
  serve::GraphMutator g_sell(ds.adjacency);
  serve::InferenceEngine sell(model, ds.features, g_sell, 1u << 20,
                              sell_config());

  // The SELL full forward must be bitwise equal to the CSR one (which the
  // serving suite already pins to the training forward)...
  const Matrix full_csr = csr.full_forward();
  const Matrix full_sell = sell.full_forward();
  ASSERT_TRUE(full_sell == full_csr);

  // ...and the per-node batch path on the SELL engine must still hit the
  // same bits, closing the chain batch == full_forward == training forward.
  std::vector<vid_t> nodes;
  for (vid_t v = 0; v < ds.n_vertices(); v += 3) nodes.push_back(v);
  const Matrix batch = sell.infer_batch(nodes);
  ASSERT_EQ(batch.n_rows(), static_cast<vid_t>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_TRUE(std::equal(batch.row(static_cast<vid_t>(i)),
                           batch.row(static_cast<vid_t>(i)) + batch.n_cols(),
                           full_sell.row(nodes[i])))
        << "node " << nodes[i];
  }
}

}  // namespace
}  // namespace sagnn
