// Communication-volume model tests: hand-checked small cases and summary
// arithmetic (edgecut, per-pair rows, imbalance).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"

namespace sagnn {
namespace {

TEST(Metrics, PathGraphTwoParts) {
  // Path 0-1-2-3 split {0,1} | {2,3}: one cut edge (1,2); vertex 1 must be
  // sent to part 1 and vertex 2 to part 0.
  CooMatrix coo(4, 4);
  coo.add(0, 1, 1);
  coo.add(1, 2, 1);
  coo.add(2, 3, 1);
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Partition part;
  part.k = 2;
  part.part_of = {0, 0, 1, 1};
  const auto stats = compute_volume_stats(a, part);
  EXPECT_EQ(stats.edgecut, 1);
  EXPECT_EQ(stats.pair_rows[0 * 2 + 1], 1u);
  EXPECT_EQ(stats.pair_rows[1 * 2 + 0], 1u);
  EXPECT_EQ(stats.total_rows(), 2u);
  EXPECT_EQ(stats.max_send_rows(), 1u);
  EXPECT_NEAR(stats.send_imbalance_percent(), 0.0, 1e-9);
}

TEST(Metrics, HubVertexCountedOncePerDestination) {
  // Star: center 0 in part 0, leaves 1..4 split across parts 1 and 2. The
  // center's row is needed by both other parts but counted once each.
  CooMatrix coo(5, 5);
  for (vid_t l = 1; l < 5; ++l) coo.add(0, l, 1);
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Partition part;
  part.k = 3;
  part.part_of = {0, 1, 1, 2, 2};
  const auto stats = compute_volume_stats(a, part);
  EXPECT_EQ(stats.send_rows(0), 2u);  // 0 -> part1 and 0 -> part2
  EXPECT_EQ(stats.send_rows(1), 2u);  // leaves 1,2 -> part 0
  EXPECT_EQ(stats.send_rows(2), 2u);
  EXPECT_EQ(stats.edgecut, 4);
}

TEST(Metrics, SelfLoopsDoNotGenerateVolume) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(1, 1, 1);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Partition part;
  part.k = 2;
  part.part_of = {0, 1};
  const auto stats = compute_volume_stats(a, part);
  EXPECT_EQ(stats.total_rows(), 0u);
  EXPECT_EQ(stats.edgecut, 0);
}

TEST(Metrics, MegabyteConversion) {
  VolumeStats stats;
  stats.k = 2;
  stats.pair_rows = {0, 1000, 500, 0};
  // 1500 rows * 300 features * 4 bytes = 1.8 MB.
  EXPECT_NEAR(stats.total_megabytes(300), 1.8, 1e-9);
  EXPECT_NEAR(stats.max_send_megabytes(300), 1.2, 1e-9);
  EXPECT_NEAR(stats.avg_send_megabytes(300), 0.9, 1e-9);
}

TEST(Metrics, ImbalanceMatchesPaperDefinition) {
  VolumeStats stats;
  stats.k = 2;
  stats.pair_rows = {0, 300, 100, 0};
  // avg send = 200, max = 300 -> 50%.
  EXPECT_NEAR(stats.send_imbalance_percent(), 50.0, 1e-9);
}

TEST(Metrics, ComputeLoadImbalance) {
  CooMatrix coo(4, 4);
  coo.add(0, 1, 1);
  coo.add(0, 2, 1);
  coo.add(0, 3, 1);
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);  // degrees: 3,1,1,1
  Partition part;
  part.k = 2;
  part.part_of = {0, 0, 1, 1};
  // nnz: part0 = 4, part1 = 2, avg = 3 -> imbalance 4/3.
  EXPECT_NEAR(compute_load_imbalance(a, part), 4.0 / 3.0, 1e-9);
}

TEST(Metrics, VolumeScalesDownWithFewerParts) {
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(300, 3000, rng));
  Partition p2, p8;
  p2.k = 2;
  p8.k = 8;
  p2.part_of.resize(300);
  p8.part_of.resize(300);
  for (vid_t v = 0; v < 300; ++v) {
    p2.part_of[static_cast<std::size_t>(v)] = v % 2;
    p8.part_of[static_cast<std::size_t>(v)] = v % 8;
  }
  EXPECT_LE(compute_volume_stats(a, p2).total_rows(),
            compute_volume_stats(a, p8).total_rows());
}

TEST(Metrics, SizeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::zeros(4, 4);
  Partition part;
  part.k = 2;
  part.part_of = {0, 1};
  EXPECT_THROW(compute_volume_stats(a, part), Error);
}

}  // namespace
}  // namespace sagnn
