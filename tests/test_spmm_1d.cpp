// Distributed 1D SpMM: both modes must equal the serial product across
// graphs, rank counts and feature widths; the sparsity-aware mode must also
// communicate strictly less on partitionable graphs.
#include <gtest/gtest.h>

#include "dist/spmm_1d.hpp"
#include "graph/generators.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

struct Case {
  vid_t n;
  eid_t m;
  vid_t f;
  int p;
  SpmmMode mode;
};

Matrix run_dist_1d(const CsrMatrix& a, const Matrix& h, int p, SpmmMode mode,
                   TrafficRecorder* traffic_out = nullptr) {
  const auto ranges = uniform_block_ranges(a.n_rows(), p);
  Matrix result(a.n_rows(), h.n_cols());
  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, mode);
    const BlockRange r = spmm_dist.my_range();
    const Matrix h_local = h.slice_rows(r.begin, r.end);
    const Matrix z_local = spmm_dist.multiply(comm, h_local);
    // Stitch results into the shared output (disjoint row ranges).
    for (vid_t i = 0; i < z_local.n_rows(); ++i) {
      std::copy(z_local.row(i), z_local.row(i) + z_local.n_cols(),
                result.row(r.begin + i));
    }
  });
  if (traffic_out != nullptr) *traffic_out = cluster.traffic();
  return result;
}

class Spmm1dMatchesSerial : public ::testing::TestWithParam<Case> {};

TEST_P(Spmm1dMatchesSerial, Agrees) {
  const Case c = GetParam();
  Rng rng(c.n + c.p);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(c.n, c.m, rng));
  const Matrix h = Matrix::random_uniform(c.n, c.f, rng);
  const Matrix z = run_dist_1d(a, h, c.p, c.mode);
  EXPECT_LT(z.max_abs_diff(spmm(a, h)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Spmm1dMatchesSerial,
    ::testing::Values(Case{16, 60, 3, 1, SpmmMode::kOblivious},
                      Case{16, 60, 3, 1, SpmmMode::kSparsityAware},
                      Case{64, 400, 8, 4, SpmmMode::kOblivious},
                      Case{64, 400, 8, 4, SpmmMode::kSparsityAware},
                      Case{100, 700, 5, 7, SpmmMode::kOblivious},
                      Case{100, 700, 5, 7, SpmmMode::kSparsityAware},
                      Case{128, 1500, 16, 16, SpmmMode::kOblivious},
                      Case{128, 1500, 16, 16, SpmmMode::kSparsityAware},
                      Case{37, 150, 2, 5, SpmmMode::kSparsityAware},
                      Case{256, 4000, 4, 8, SpmmMode::kSparsityAware}));

TEST(Spmm1d, SparseVolumeNeverExceedsOblivious) {
  Rng rng(9);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(96, 500, rng));
  const Matrix h = Matrix::random_uniform(96, 8, rng);
  TrafficRecorder tr_obl(1), tr_sa(1);
  run_dist_1d(a, h, 6, SpmmMode::kOblivious, &tr_obl);
  run_dist_1d(a, h, 6, SpmmMode::kSparsityAware, &tr_sa);
  const auto obl = tr_obl.phase("bcast").total_bytes();
  const auto sa = tr_sa.phase("alltoall").total_bytes();
  EXPECT_GT(obl, 0u);
  EXPECT_LE(sa, obl);
}

TEST(Spmm1d, BlockLocalGraphIsCommunicationFree) {
  // Edges only within blocks: the sparsity-aware all-to-all must carry
  // zero remote payload ("communication-free training" regime).
  CooMatrix coo(32, 32);
  for (vid_t v = 0; v < 32; v += 8) {
    for (vid_t i = 0; i < 7; ++i) coo.add(v + i, v + i + 1, 1.0f);
  }
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Rng rng(1);
  const Matrix h = Matrix::random_uniform(32, 4, rng);
  TrafficRecorder traffic(1);
  const Matrix z = run_dist_1d(a, h, 4, SpmmMode::kSparsityAware, &traffic);
  EXPECT_LT(z.max_abs_diff(spmm(a, h)), 1e-5);
  EXPECT_EQ(traffic.phase("alltoall").total_bytes(), 0u);
}

TEST(Spmm1d, SparseVolumeMatchesNnzColsPrediction) {
  Rng rng(10);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(80, 400, rng));
  const vid_t f = 8;
  const Matrix h = Matrix::random_uniform(80, f, rng);
  const int p = 5;
  // Predict: sum over ranks of remote needed rows * f * sizeof(real_t).
  const auto ranges = uniform_block_ranges(80, p);
  std::uint64_t predicted = 0;
  for (int r = 0; r < p; ++r) {
    predicted += DistCsr(a, ranges, r).total_needed_rows_remote();
  }
  predicted *= static_cast<std::uint64_t>(f) * sizeof(real_t);
  TrafficRecorder traffic(1);
  run_dist_1d(a, h, p, SpmmMode::kSparsityAware, &traffic);
  EXPECT_EQ(traffic.phase("alltoall").total_bytes(), predicted);
}

TEST(Spmm1d, RepeatedMultipliesStayCorrect) {
  // The index exchange happens once; multiple multiplies (as in training)
  // must all be right.
  Rng rng(11);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(40, 240, rng));
  const auto ranges = uniform_block_ranges(40, 4);
  Matrix h = Matrix::random_uniform(40, 4, rng);
  Matrix expected = h;
  for (int iter = 0; iter < 3; ++iter) expected = spmm(a, expected);

  Matrix result(40, 4);
  Cluster cluster(4);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    Matrix h_local = h.slice_rows(r.begin, r.end);
    for (int iter = 0; iter < 3; ++iter) {
      h_local = spmm_dist.multiply(comm, h_local);
    }
    for (vid_t i = 0; i < h_local.n_rows(); ++i) {
      std::copy(h_local.row(i), h_local.row(i) + 4, result.row(r.begin + i));
    }
  });
  EXPECT_LT(result.max_abs_diff(expected), 1e-3);
}

TEST(Spmm1d, HandlesEmptyBlocks) {
  // A rank may own zero rows (degenerate partitions); the algorithms must
  // still work — its block contributes nothing and it requests nothing.
  Rng rng(13);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(30, 120, rng));
  const Matrix h = Matrix::random_uniform(30, 3, rng);
  const std::vector<vid_t> sizes{10, 0, 20};
  const auto ranges = ranges_from_sizes(sizes);
  for (SpmmMode mode : {SpmmMode::kOblivious, SpmmMode::kSparsityAware}) {
    Matrix result(30, 3);
    Cluster cluster(3);
    cluster.run([&](Comm& comm) {
      DistSpmm1d spmm_dist(comm, a, ranges, mode);
      const BlockRange r = spmm_dist.my_range();
      const Matrix z = spmm_dist.multiply(comm, h.slice_rows(r.begin, r.end));
      for (vid_t i = 0; i < z.n_rows(); ++i) {
        std::copy(z.row(i), z.row(i) + 3, result.row(r.begin + i));
      }
    });
    EXPECT_LT(result.max_abs_diff(spmm(a, h)), 1e-4);
  }
}

TEST(Spmm1d, WorksOnDisconnectedGraph) {
  // Two components split across ranks: zero cross traffic for SA when the
  // blocks align with components.
  CooMatrix coo(20, 20);
  for (vid_t v = 0; v < 9; ++v) coo.add(v, v + 1, 1.0f);
  for (vid_t v = 10; v < 19; ++v) coo.add(v, v + 1, 1.0f);
  coo.symmetrize();
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Rng rng(14);
  const Matrix h = Matrix::random_uniform(20, 2, rng);
  TrafficRecorder traffic(1);
  const auto ranges = uniform_block_ranges(20, 2);
  Matrix result(20, 2);
  Cluster cluster(2);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    const Matrix z = spmm_dist.multiply(comm, h.slice_rows(r.begin, r.end));
    for (vid_t i = 0; i < z.n_rows(); ++i) {
      std::copy(z.row(i), z.row(i) + 2, result.row(r.begin + i));
    }
  });
  traffic = cluster.traffic();
  EXPECT_LT(result.max_abs_diff(spmm(a, h)), 1e-5);
  EXPECT_EQ(traffic.phase("alltoall").total_bytes(), 0u);
}

Matrix run_dist_1d_pipelined(const CsrMatrix& a, const Matrix& h, int p,
                             int chunks, TrafficRecorder* traffic_out = nullptr) {
  const auto ranges = uniform_block_ranges(a.n_rows(), p);
  Matrix result(a.n_rows(), h.n_cols());
  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    const Matrix z_local =
        spmm_dist.multiply_pipelined(comm, h.slice_rows(r.begin, r.end), chunks);
    for (vid_t i = 0; i < z_local.n_rows(); ++i) {
      std::copy(z_local.row(i), z_local.row(i) + z_local.n_cols(),
                result.row(r.begin + i));
    }
  });
  if (traffic_out != nullptr) *traffic_out = cluster.traffic();
  return result;
}

TEST(Spmm1dPipelined, MatchesBulkMultiplyBitwise) {
  // Column chunking never reorders any output element's accumulation, so
  // the pipelined product is bit-identical to the bulk sparsity-aware one
  // for every chunk count — including counts above the feature width.
  Rng rng(21);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 400, rng));
  const Matrix h = Matrix::random_uniform(64, 8, rng);
  const Matrix bulk = run_dist_1d(a, h, 4, SpmmMode::kSparsityAware);
  for (int chunks : {1, 2, 3, 8, 100}) {
    const Matrix pipelined = run_dist_1d_pipelined(a, h, 4, chunks);
    EXPECT_EQ(pipelined.max_abs_diff(bulk), 0.0) << "chunks " << chunks;
  }
}

TEST(Spmm1dPipelined, StageTaggedTrafficMatchesBulkBytes) {
  Rng rng(22);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(96, 700, rng));
  const Matrix h = Matrix::random_uniform(96, 9, rng);
  const int p = 4;
  const int chunks = 3;
  TrafficRecorder bulk(1), pipe(1);
  run_dist_1d(a, h, p, SpmmMode::kSparsityAware, &bulk);
  run_dist_1d_pipelined(a, h, p, chunks, &pipe);

  // One tagged stage per chunk; bytes sum to the bulk alltoall exactly
  // (same rows requested, columns partitioned), messages go up K-fold.
  EXPECT_EQ(pipe.stage_count("alltoall"), chunks);
  EXPECT_EQ(pipe.phase_total("alltoall").total_bytes(),
            bulk.phase("alltoall").total_bytes());
  EXPECT_EQ(pipe.phase_total("alltoall").total_msgs(),
            static_cast<std::uint64_t>(chunks) *
                bulk.phase("alltoall").total_msgs());
  // No stage is empty: 9 columns over 3 chunks moves bytes in every stage.
  for (int k = 0; k < chunks; ++k) {
    EXPECT_GT(pipe.phase(TrafficRecorder::stage_phase("alltoall", k))
                  .total_bytes(),
              0u)
        << "stage " << k;
  }
}

TEST(Spmm1dPipelined, HandlesEmptyBlocksAndRepeatedMultiplies) {
  Rng rng(23);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(30, 150, rng));
  const std::vector<vid_t> sizes{10, 0, 20};
  const auto ranges = ranges_from_sizes(sizes);
  const Matrix h = Matrix::random_uniform(30, 5, rng);
  Matrix expected = h;
  for (int iter = 0; iter < 3; ++iter) expected = spmm(a, expected);

  Matrix result(30, 5);
  Cluster cluster(3);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    Matrix h_local = h.slice_rows(r.begin, r.end);
    for (int iter = 0; iter < 3; ++iter) {
      h_local = spmm_dist.multiply_pipelined(comm, h_local, 2);
    }
    for (vid_t i = 0; i < h_local.n_rows(); ++i) {
      std::copy(h_local.row(i), h_local.row(i) + 5, result.row(r.begin + i));
    }
  });
  EXPECT_LT(result.max_abs_diff(expected), 1e-3);
}

TEST(Spmm1dPipelined, RejectsObliviousMode) {
  Rng rng(24);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(16, 60, rng));
  const auto ranges = uniform_block_ranges(16, 2);
  const Matrix h = Matrix::random_uniform(16, 4, rng);
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kOblivious);
    const BlockRange r = spmm_dist.my_range();
    (void)spmm_dist.multiply_pipelined(comm, h.slice_rows(r.begin, r.end), 2);
  }),
               Error);
}

TEST(Spmm1d, ComputeSecondsAccumulate) {
  Rng rng(12);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 800, rng));
  const auto ranges = uniform_block_ranges(64, 2);
  const Matrix h = Matrix::random_uniform(64, 32, rng);
  std::vector<double> secs(2, 0.0);
  Cluster cluster(2);
  cluster.run([&](Comm& comm) {
    DistSpmm1d spmm_dist(comm, a, ranges, SpmmMode::kSparsityAware);
    const BlockRange r = spmm_dist.my_range();
    const Matrix h_local = h.slice_rows(r.begin, r.end);
    (void)spmm_dist.multiply(comm, h_local,
                             &secs[static_cast<std::size_t>(comm.rank())]);
  });
  EXPECT_GT(secs[0] + secs[1], 0.0);
}

}  // namespace
}  // namespace sagnn
