// Stress and robustness tests of the simulated cluster: message storms,
// out-of-order tag matching under load, large rank counts, interleaved
// collectives on sibling communicators, and traffic-accounting totals.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/rng.hpp"
#include "simcomm/cluster.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {
namespace {

TEST(ClusterStress, RandomP2pStormIsLossless) {
  // Every rank sends a deterministic pseudo-random sequence of messages to
  // every other rank; receivers verify content and totals.
  const int p = 8;
  const int rounds = 40;
  std::atomic<long> received_sum{0};
  run_spmd(p, [&](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 99);
    long sent = 0;
    for (int r = 0; r < rounds; ++r) {
      for (int d = 0; d < p; ++d) {
        if (d == comm.rank()) continue;
        const auto len = static_cast<std::size_t>(rng.next_below(64));
        std::vector<int> payload(len, comm.rank() * 1000 + r);
        comm.send<int>(d, 500 + r, payload, "storm");
        sent += static_cast<long>(len);
      }
    }
    (void)sent;
    for (int r = 0; r < rounds; ++r) {
      for (int s = 0; s < p; ++s) {
        if (s == comm.rank()) continue;
        const auto got = comm.recv<int>(s, 500 + r);
        for (int x : got) EXPECT_EQ(x, s * 1000 + r);
        received_sum.fetch_add(static_cast<long>(got.size()));
      }
    }
  });
  EXPECT_GT(received_sum.load(), 0);
}

TEST(ClusterStress, ManyRanksBarrierAndAllreduce) {
  const int p = 96;
  run_spmd(p, [p](Comm& comm) {
    comm.barrier();
    std::vector<long> v{1};
    allreduce_sum<long>(comm, v);
    EXPECT_EQ(v[0], p);
    comm.barrier();
  });
}

TEST(ClusterStress, InterleavedCollectivesOnRowAndColComms) {
  // 4x4 grid: every rank alternates collectives on its row and column
  // communicators; cross-matching would corrupt the sums.
  const int p = 16;
  run_spmd(p, [](Comm& comm) {
    Comm row = comm.split([](int r) { return r / 4; });
    Comm col = comm.split([](int r) { return r % 4; });
    for (int iter = 0; iter < 6; ++iter) {
      std::vector<int> a{comm.rank()};
      std::vector<int> b{comm.rank()};
      allreduce_sum<int>(row, a);
      allreduce_sum<int>(col, b);
      // Row sum: 4 consecutive ranks; col sum: stride-4 ranks.
      const int r0 = (comm.rank() / 4) * 4;
      EXPECT_EQ(a[0], r0 * 4 + 6);
      const int c0 = comm.rank() % 4;
      EXPECT_EQ(b[0], 4 * c0 + 24);
    }
  });
}

TEST(ClusterStress, TrafficTotalsAreExactUnderConcurrency) {
  // Concurrent recording from all ranks must not lose bytes: total ==
  // p * (p-1) * bytes_per_message * rounds.
  const int p = 12;
  const int rounds = 10;
  auto traffic = run_spmd(p, [&](Comm& comm) {
    for (int r = 0; r < rounds; ++r) {
      for (int d = 0; d < p; ++d) {
        if (d == comm.rank()) continue;
        std::vector<std::uint8_t> payload(17);
        comm.send<std::uint8_t>(d, 700 + r, payload, "storm");
      }
      for (int s = 0; s < p; ++s) {
        if (s == comm.rank()) continue;
        (void)comm.recv<std::uint8_t>(s, 700 + r);
      }
    }
  });
  EXPECT_EQ(traffic.phase("storm").total_bytes(),
            static_cast<std::uint64_t>(p) * (p - 1) * 17 * rounds);
  EXPECT_EQ(traffic.phase("storm").total_msgs(),
            static_cast<std::uint64_t>(p) * (p - 1) * rounds);
}

TEST(ClusterStress, ReentrantClusters) {
  // Back-to-back clusters (as the bench harness runs them) must not leak
  // state into each other.
  for (int iter = 0; iter < 5; ++iter) {
    auto traffic = run_spmd(4, [](Comm& comm) {
      std::vector<int> v{comm.rank()};
      allreduce_sum<int>(comm, v);
      EXPECT_EQ(v[0], 6);
    });
    const auto total = traffic.total({"sync"}).total_bytes();
    EXPECT_GT(total, 0u);
  }
}

TEST(ClusterStress, AbortFromManyRanksStillTerminates) {
  Cluster cluster(16);
  EXPECT_THROW(
      cluster.run([](Comm& comm) {
        if (comm.rank() % 3 == 0) throw Error("boom");
        (void)comm.recv<int>((comm.rank() + 1) % 16, 1);
      }),
      Error);
}

}  // namespace
}  // namespace sagnn
