// Bench-support table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/tableio.hpp"
#include "common/types.hpp"

namespace sagnn {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.23");
  EXPECT_EQ(Table::num(1000.0, 4), "1000");
}

TEST(Table, Banner) {
  std::ostringstream os;
  print_banner(os, "Fig 3");
  EXPECT_NE(os.str().find("==== Fig 3 ===="), std::string::npos);
}

}  // namespace
}  // namespace sagnn
