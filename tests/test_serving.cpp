// Online-serving subsystem (src/serve/): checkpoint loading without a
// Trainer, the byte-bounded LRU aggregation cache, streaming graph updates
// through the delta overlay, and the bitwise-identity contract between
// per-node inference and the training kernels' full-graph forward.
//
// Suites are prefixed "Serving" so the sanitizer CI job can select them by
// regex alongside the checkpoint suites.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "ckpt/serializer.hpp"
#include "ckpt/state_io.hpp"
#include "common/parallel.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_loader.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

using serve::AggregationCache;
using serve::GraphMutator;
using serve::InferenceEngine;
using serve::ModelLoader;

GcnConfig tiny_gcn(const Dataset& ds, int epochs = 2) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

std::string serial_snapshot(const Dataset& ds, GcnModel* trained = nullptr) {
  auto trainer = TrainerBuilder(ds).strategy("serial").gcn(tiny_gcn(ds)).build();
  trainer->train();
  if (trained != nullptr) {
    *trained = dynamic_cast<SerialTrainer&>(*trainer).model();
  }
  std::stringstream out;
  trainer->save(out);
  return out.str();
}

std::string distributed_snapshot(const Dataset& ds, GcnModel* trained = nullptr) {
  auto trainer = TrainerBuilder(ds)
                     .strategy("1d-sparse")
                     .ranks(2)
                     .partitioner("gvb")
                     .gcn(tiny_gcn(ds))
                     .build();
  trainer->train();
  if (trained != nullptr) {
    *trained = dynamic_cast<DistributedTrainer&>(*trainer).model();
  }
  std::stringstream out;
  trainer->save(out);
  return out.str();
}

bool same_weights(const GcnModel& a, const GcnModel& b) {
  if (a.n_layers() != b.n_layers()) return false;
  for (int l = 0; l < a.n_layers(); ++l) {
    if (!(a.layer(l).weights() == b.layer(l).weights())) return false;
  }
  return true;
}

/// The training forward pass (spmm + gemm + relu) on an explicit graph —
/// the ground truth every serving path must equal bit for bit.
Matrix reference_forward(const CsrMatrix& a, const Matrix& features,
                         const GcnModel& model) {
  Matrix h = features;
  for (int l = 0; l < model.n_layers(); ++l) {
    Matrix m = spmm(a, h);
    Matrix z = gemm(m, model.layer(l).weights());
    h = model.layer(l).has_relu() ? relu(z) : std::move(z);
  }
  return h;
}

// ------------------------------------------------------------ ModelLoader

TEST(ServingModelLoader, LoadsSerialCheckpointWithoutTrainer) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnModel trained;
  const std::string snap = serial_snapshot(ds, &trained);

  std::istringstream in(snap);
  ModelLoader loader(in);
  EXPECT_EQ(loader.train_config().strategy, "serial");
  EXPECT_EQ(loader.epochs_trained(), 2);
  EXPECT_EQ(loader.fingerprint().name, ds.name);
  EXPECT_EQ(loader.fingerprint().n, ds.n_vertices());
  EXPECT_EQ(loader.fingerprint().nnz, ds.n_edges());
  EXPECT_TRUE(loader.skipped_sections().empty());
  EXPECT_TRUE(same_weights(loader.model(), trained));
  EXPECT_NO_THROW(loader.require_compatible(ds));
}

TEST(ServingModelLoader, SkipsModeSpecificSectionsOfDistributedCheckpoint) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnModel trained;
  const std::string snap = distributed_snapshot(ds, &trained);

  std::istringstream in(snap);
  ModelLoader loader(in);
  EXPECT_TRUE(same_weights(loader.model(), trained));
  // Distributed training state the serving path has no use for must have
  // been skipped, not rejected.
  const auto& skipped = loader.skipped_sections();
  EXPECT_FALSE(skipped.empty());
  const std::set<std::string> names(skipped.begin(), skipped.end());
  EXPECT_TRUE(names.contains("traffic"));
}

TEST(ServingModelLoader, SkipsSampledTrainerState) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  SamplingConfig sampling;
  sampling.fanouts.assign(3, 5);
  auto trainer = TrainerBuilder(ds)
                     .strategy("sampled")
                     .sampling(sampling)
                     .gcn(tiny_gcn(ds))
                     .build();
  trainer->train();
  std::stringstream out;
  trainer->save(out);

  ModelLoader loader(out);
  const std::set<std::string> names(loader.skipped_sections().begin(),
                                    loader.skipped_sections().end());
  EXPECT_TRUE(names.contains("rng"));
}

TEST(ServingModelLoader, RejectsWrongDataset) {
  const Dataset amazon = make_amazon_sim(DatasetScale::kTiny);
  const Dataset protein = make_protein_sim(DatasetScale::kTiny);
  std::istringstream in(serial_snapshot(amazon));
  ModelLoader loader(in);
  EXPECT_THROW(loader.require_compatible(protein),
               ckpt::CheckpointMismatchError);
}

TEST(ServingModelLoader, EdgeDriftFlagRelaxesOnlyTheEdgeCount) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  std::istringstream in(serial_snapshot(ds));
  ModelLoader loader(in);

  // Same dataset with streamed edges absorbed: nnz differs, rest matches.
  Dataset drifted = ds;
  GraphMutator mutator(ds.adjacency);
  vid_t other = ds.n_vertices() - 1;
  while (mutator.at(0, other) != real_t{0}) --other;  // a genuinely new edge
  mutator.insert_edge(0, other, real_t{0.5f});
  drifted.adjacency = mutator.materialize();
  ASSERT_NE(drifted.n_edges(), ds.n_edges());
  EXPECT_THROW(loader.require_compatible(drifted),
               ckpt::CheckpointMismatchError);
  EXPECT_NO_THROW(loader.require_compatible(drifted, /*allow_edge_drift=*/true));

  // The flag must NOT excuse a different dataset identity.
  Dataset wrong = ds;
  wrong.name = "other";
  EXPECT_THROW(loader.require_compatible(wrong, /*allow_edge_drift=*/true),
               ckpt::CheckpointMismatchError);
}

TEST(ServingModelLoader, CorruptionInSkippedSectionIsStillDetected) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  std::string snap = distributed_snapshot(ds);
  // Flip a payload byte of the "traffic" section — a section the loader
  // skips. skip_section() still CRC-checks, so the damage must surface.
  const std::size_t name_pos = snap.find("traffic");
  ASSERT_NE(name_pos, std::string::npos);
  const std::size_t payload_pos = name_pos + 7 + 8 + 2;  // name | u64 len | +2
  ASSERT_LT(payload_pos, snap.size());
  snap[payload_pos] = static_cast<char>(snap[payload_pos] ^ 0x5a);
  std::istringstream in(snap);
  EXPECT_THROW(ModelLoader{in}, ckpt::CheckpointCrcError);
}

TEST(ServingModelLoader, TruncatedStreamThrowsTyped) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const std::string snap = serial_snapshot(ds);
  std::istringstream in(snap.substr(0, snap.size() / 2));
  EXPECT_THROW(ModelLoader{in}, ckpt::CheckpointTruncatedError);
}

TEST(ServingModelLoader, CheckpointWithoutModelSectionIsRejected) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  std::stringstream out;
  {
    ckpt::Serializer s(out);
    TrainConfig cfg;
    cfg.gcn = tiny_gcn(ds);
    ckpt::write_prologue(s, cfg, ds);
    ckpt::write_progress(s, 0, {});
    s.finish();
  }
  EXPECT_THROW(ModelLoader{out}, ckpt::CheckpointFormatError);
}

// ------------------------------------------------------------------ cache

std::vector<real_t> row_of(std::size_t len, real_t fill) {
  return std::vector<real_t>(len, fill);
}

TEST(ServingCache, HitMissAndLruEvictionOrder) {
  // Capacity = 3 rows of 4 floats.
  AggregationCache cache(3 * 4 * sizeof(real_t));
  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.insert(1, row_of(4, 1));
  cache.insert(2, row_of(4, 2));
  cache.insert(3, row_of(4, 3));
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 is now most-recent
  cache.insert(4, row_of(4, 4));        // evicts 2 (least recent)
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_NE(cache.lookup(4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().bytes, 3 * 4 * sizeof(real_t));
}

TEST(ServingCache, ByteCapacityBoundsAdmission) {
  AggregationCache cache(10 * sizeof(real_t));
  cache.insert(1, row_of(6, 1));
  cache.insert(2, row_of(6, 2));  // 12 floats > 10: evicts 1
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(2), nullptr);
  cache.insert(3, row_of(11, 3));  // larger than the whole capacity: dropped
  EXPECT_EQ(cache.lookup(3), nullptr);
  EXPECT_LE(cache.stats().bytes, cache.capacity_bytes());
}

TEST(ServingCache, CapacityZeroDisables) {
  AggregationCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(1, row_of(4, 1));
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ServingCache, InvalidateRemovesAndCounts) {
  AggregationCache cache(1024);
  cache.insert(7, row_of(4, 7));
  cache.invalidate(7);
  cache.invalidate(8);  // absent: not counted
  EXPECT_EQ(cache.lookup(7), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ServingCache, InsertOverExistingReplacesValue) {
  AggregationCache cache(1024);
  cache.insert(5, row_of(4, 1));
  cache.insert(5, row_of(8, 2));
  const auto* row = cache.lookup(5);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->size(), 8u);
  EXPECT_EQ(cache.stats().bytes, 8 * sizeof(real_t));
  EXPECT_EQ(cache.stats().entries, 1u);
}

// ---------------------------------------------------------------- mutator

CsrMatrix path_graph(vid_t n) {
  CooMatrix coo(n, n);
  for (vid_t v = 0; v + 1 < n; ++v) {
    coo.add(v, v + 1, real_t{1});
    coo.add(v + 1, v, real_t{1});
  }
  return CsrMatrix::from_coo(coo);
}

TEST(ServingMutator, SymmetricInsertEraseAndValueLookup) {
  GraphMutator g(path_graph(6));
  const eid_t base_nnz = g.nnz();
  EXPECT_TRUE(g.insert_edge(0, 4, real_t{0.5f}));
  EXPECT_FLOAT_EQ(g.at(0, 4), 0.5f);
  EXPECT_FLOAT_EQ(g.at(4, 0), 0.5f);
  EXPECT_EQ(g.nnz(), base_nnz + 2);
  EXPECT_FALSE(g.insert_edge(0, 4, real_t{0.5f}));  // exact duplicate
  EXPECT_TRUE(g.insert_edge(0, 4, real_t{0.7f}));   // value update
  EXPECT_EQ(g.nnz(), base_nnz + 2);
  EXPECT_TRUE(g.erase_edge(0, 4));
  EXPECT_FLOAT_EQ(g.at(0, 4), 0.0f);
  EXPECT_EQ(g.nnz(), base_nnz);
  EXPECT_FALSE(g.erase_edge(0, 4));  // absent: counted no-op
  EXPECT_EQ(g.stats().noop_ops, 2u);

  // Self loop: one entry, not two.
  EXPECT_TRUE(g.insert_edge(3, 3, real_t{1}));
  EXPECT_EQ(g.nnz(), base_nnz + 1);
  EXPECT_FLOAT_EQ(g.at(3, 3), 1.0f);
}

TEST(ServingMutator, ErasingBaseEdgeThenReinsertingRestoresIt) {
  GraphMutator g(path_graph(5));
  EXPECT_TRUE(g.erase_edge(1, 2));
  EXPECT_FLOAT_EQ(g.at(1, 2), 0.0f);
  EXPECT_TRUE(g.insert_edge(1, 2, real_t{1}));
  EXPECT_FLOAT_EQ(g.at(1, 2), 1.0f);
  // Back to the base graph: overlay should have annihilated.
  EXPECT_FALSE(g.has_overlay());
  EXPECT_EQ(g.materialize(), path_graph(5));
}

TEST(ServingMutator, OverlayIterationMatchesMaterializedCsr) {
  GraphMutator g(path_graph(8));
  g.insert_edge(0, 7, real_t{0.25f});
  g.insert_edge(2, 5, real_t{0.125f});
  g.erase_edge(3, 4);
  g.insert_edge(6, 6, real_t{2});
  ASSERT_TRUE(g.has_overlay());

  const CsrMatrix m = g.materialize();
  m.validate();
  EXPECT_EQ(m.nnz(), g.nnz());
  for (vid_t r = 0; r < g.n(); ++r) {
    std::vector<std::pair<vid_t, real_t>> via_overlay;
    g.for_each_nonzero(
        r, [&](vid_t c, real_t v) { via_overlay.emplace_back(c, v); });
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    ASSERT_EQ(via_overlay.size(), cols.size()) << "row " << r;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      EXPECT_EQ(via_overlay[k].first, cols[k]) << "row " << r;
      EXPECT_EQ(via_overlay[k].second, vals[k]) << "row " << r;
      if (k > 0) {
        EXPECT_LT(via_overlay[k - 1].first, via_overlay[k].first);
      }
    }
  }
}

TEST(ServingMutator, CompactionIsALogicalNoOp) {
  GraphMutator g(path_graph(8));
  g.insert_edge(0, 6, real_t{0.5f});
  g.erase_edge(2, 3);
  const CsrMatrix before = g.materialize();
  g.compact();
  EXPECT_FALSE(g.has_overlay());
  EXPECT_EQ(g.materialize(), before);
  EXPECT_EQ(g.stats().compactions, 1u);
}

TEST(ServingMutator, CompactionThresholdAutoCompacts) {
  GraphMutator g(path_graph(32));
  g.set_compaction_threshold(4);
  for (vid_t v = 0; v < 6; ++v) g.insert_edge(v, v + 10, real_t{1});
  EXPECT_GT(g.stats().compactions, 0u);
  EXPECT_LE(g.stats().overlay_entries, 4u);
}

TEST(ServingMutator, DirtyListenerFiresPerChangedRowOnly) {
  GraphMutator g(path_graph(6));
  std::vector<vid_t> dirtied;
  g.set_dirty_listener([&](vid_t v) { dirtied.push_back(v); });
  g.insert_edge(1, 4, real_t{1});
  EXPECT_EQ(dirtied, (std::vector<vid_t>{1, 4}));
  dirtied.clear();
  g.insert_edge(1, 4, real_t{1});  // duplicate: no change, no dirt
  EXPECT_TRUE(dirtied.empty());
  g.erase_edge(0, 5);  // absent: no change, no dirt
  EXPECT_TRUE(dirtied.empty());
  g.insert_edge(2, 2, real_t{1});  // self loop: one row dirtied once
  EXPECT_EQ(dirtied, (std::vector<vid_t>{2}));
}

TEST(ServingMutator, ImbalanceTriggersRegistryRepartition) {
  // 4 equal blocks of a path graph; then pile edges into block 0 until
  // max/avg load crosses the threshold. The mutator must compact and
  // re-partition through the registry (same path as the elastic restart),
  // restoring balance.
  const vid_t n = 64;
  GraphMutator g(path_graph(n));
  g.enable_partition_tracking(make_partitioner("block")->partition(g.materialize(), 4),
                              "metis", {}, /*imbalance_threshold=*/1.6);
  ASSERT_NE(g.partition(), nullptr);
  const double initial = g.imbalance();
  EXPECT_LT(initial, 1.2);

  int added = 0;
  for (vid_t u = 0; u < 16 && g.stats().repartitions == 0; ++u) {
    for (vid_t v = u + 2; v < 16 && g.stats().repartitions == 0; ++v) {
      if (g.insert_edge(u, v, real_t{1})) ++added;
    }
  }
  EXPECT_GT(added, 0);
  EXPECT_EQ(g.stats().repartitions, 1u);
  EXPECT_FALSE(g.has_overlay());  // repartition compacts first
  EXPECT_LE(g.imbalance(), 1.6);
  g.partition()->validate();
}

// ----------------------------------------------------------------- engine

TEST(ServingEngine, MatchesFullForwardBitwiseOnEveryNode) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnModel model(tiny_gcn(ds));
  GraphMutator g(ds.adjacency);
  InferenceEngine engine(model, ds.features, g, /*cache=*/1u << 20);

  const Matrix full = engine.full_forward();
  const Matrix ref = reference_forward(ds.adjacency, ds.features, model);
  ASSERT_TRUE(full == ref);
  for (vid_t v = 0; v < ds.n_vertices(); ++v) {
    const std::vector<real_t> logits = engine.infer_node(v);
    ASSERT_EQ(logits.size(), static_cast<std::size_t>(full.n_cols()));
    EXPECT_TRUE(std::equal(logits.begin(), logits.end(), full.row(v)))
        << "node " << v;
  }
  EXPECT_GT(engine.cache_stats().hits, 0u);  // shared neighborhoods hit
}

TEST(ServingEngine, BatchEqualsPerNodeAnswers) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnModel model(tiny_gcn(ds));
  GraphMutator g(ds.adjacency);
  InferenceEngine engine(model, ds.features, g, 1u << 20);

  const std::vector<vid_t> nodes = {0, 5, 3, 5, static_cast<vid_t>(ds.n_vertices() - 1)};
  const Matrix batch = engine.infer_batch(nodes);
  ASSERT_EQ(batch.n_rows(), static_cast<vid_t>(nodes.size()));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::vector<real_t> single = engine.infer_node(nodes[i]);
    EXPECT_TRUE(std::equal(single.begin(), single.end(),
                           batch.row(static_cast<vid_t>(i))))
        << "node " << nodes[i];
  }
}

TEST(ServingEngine, UpdatesInvalidateExactlyTheAffectedAggregations) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnModel model(tiny_gcn(ds));
  GraphMutator g(ds.adjacency);
  InferenceEngine engine(model, ds.features, g, 1u << 20);

  const vid_t u = 1;
  vid_t w = static_cast<vid_t>(ds.n_vertices() / 2);
  while (g.at(u, w) != real_t{0}) ++w;  // a genuinely new edge
  const std::vector<real_t> before = engine.infer_node(u);
  ASSERT_TRUE(g.insert_edge(u, w, real_t{0.25f}));
  EXPECT_GE(engine.cache_stats().invalidations, 1u);

  // The cached path must see the new edge immediately and bitwise-agree
  // with both the bypass path and the training kernels on the new graph.
  const std::vector<real_t> after = engine.infer_node(u);
  EXPECT_NE(before, after);
  EXPECT_EQ(after, engine.infer_node_bypass(u));
  const Matrix ref = reference_forward(g.materialize(), ds.features, model);
  EXPECT_TRUE(std::equal(after.begin(), after.end(), ref.row(u)));
}

// --------------------------------------------------- randomized property

/// Shadow model of the logical graph: every directed arc with its value.
std::map<std::pair<vid_t, vid_t>, real_t> arcs_of(const CsrMatrix& a) {
  std::map<std::pair<vid_t, vid_t>, real_t> arcs;
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      arcs[{r, cols[k]}] = vals[k];
    }
  }
  return arcs;
}

CsrMatrix csr_of(vid_t n, const std::map<std::pair<vid_t, vid_t>, real_t>& arcs) {
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> col_idx;
  std::vector<real_t> vals;
  for (const auto& [arc, v] : arcs) {
    ++row_ptr[static_cast<std::size_t>(arc.first) + 1];
    col_idx.push_back(arc.second);
    vals.push_back(v);
  }
  for (vid_t r = 0; r < n; ++r) {
    row_ptr[static_cast<std::size_t>(r) + 1] += row_ptr[static_cast<std::size_t>(r)];
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx), std::move(vals));
}

/// The ISSUE-level property: after an arbitrary seeded interleaved
/// insert/delete/query stream, every served output is bitwise equal to a
/// from-scratch forward pass on the compacted graph — across cache
/// capacities {disabled, tiny, unbounded} and thread counts {1, 4}.
TEST(ServingProperty, InterleavedStreamsStayBitwiseExact) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnModel model(tiny_gcn(ds));
  const vid_t n = ds.n_vertices();
  const std::size_t row_bytes =
      static_cast<std::size_t>(ds.n_features()) * sizeof(real_t);
  const std::size_t capacities[] = {0, 3 * row_bytes, std::size_t{1} << 30};

  for (const int threads : {1, 4}) {
    set_parallel_threads(threads);
    for (const std::size_t capacity : capacities) {
      for (const std::uint64_t seed : {11ull, 12ull}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " capacity=" +
                     std::to_string(capacity) + " seed=" + std::to_string(seed));
        Rng rng(seed);
        GraphMutator g(ds.adjacency);
        g.set_compaction_threshold(48);  // exercise mid-stream compactions
        InferenceEngine engine(model, ds.features, g, capacity);
        auto shadow = arcs_of(ds.adjacency);

        auto rand_vertex = [&] {
          return static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
        };
        std::vector<vid_t> queried;
        for (int op = 0; op < 160; ++op) {
          const double dice = rng.next_double();
          if (dice < 0.25) {
            const vid_t u = rand_vertex(), v = rand_vertex();
            const real_t w = rng.uniform(0.1f, 1.0f);
            g.insert_edge(u, v, w);
            shadow[{u, v}] = w;
            shadow[{v, u}] = w;
          } else if (dice < 0.45) {
            const vid_t u = rand_vertex(), v = rand_vertex();
            const bool existed = shadow.erase({u, v}) > 0;
            shadow.erase({v, u});
            EXPECT_EQ(g.erase_edge(u, v), existed);
          } else {
            const vid_t v = rand_vertex();
            queried.push_back(v);
            const std::vector<real_t> served = engine.infer_node(v);
            ASSERT_EQ(served, engine.infer_node_bypass(v));
          }
        }

        // The mutator's graph must BE the shadow graph...
        const CsrMatrix expected = csr_of(n, shadow);
        ASSERT_EQ(g.materialize(), expected);
        g.compact();
        ASSERT_EQ(g.materialize(), expected);
        // ...and every answer must be the from-scratch forward, bitwise.
        const Matrix scratch = reference_forward(expected, ds.features, model);
        if (queried.empty()) queried.push_back(0);
        const Matrix served = engine.infer_batch(queried);
        for (std::size_t i = 0; i < queried.size(); ++i) {
          const real_t* a = served.row(static_cast<vid_t>(i));
          const real_t* b = scratch.row(queried[i]);
          ASSERT_TRUE(std::equal(a, a + served.n_cols(), b))
              << "node " << queried[i];
        }
        ASSERT_TRUE(engine.full_forward() == scratch);
      }
    }
  }
  set_parallel_threads(0);  // restore the environment default
}

}  // namespace
}  // namespace sagnn