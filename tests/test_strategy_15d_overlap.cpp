// The "1.5d-overlap" cross-layer pipelined strategy: bitwise-identical
// math and bytes to "1.5d-sparse" with K-fold alltoall messages (the
// grid-row all-reduce is never inflated), epoch-wide stage tags that
// continue across propagate calls (cross-layer latency hiding), and
// per-stage payloads that reassemble the non-overlapped totals exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "dist/spmm_15d.hpp"
#include "gnn/strategy.hpp"
#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "simcomm/cluster.hpp"

namespace sagnn {
namespace {

GcnConfig tiny_config(const Dataset& ds, int epochs = 3) {
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, epochs);
  cfg.learning_rate = 0.3f;
  return cfg;
}

TrainResult run(const Dataset& ds, const std::string& strategy, int chunks,
                int epochs = 3, int p = 4, int c = 2) {
  auto trainer = TrainerBuilder(ds)
                     .strategy(strategy)
                     .ranks(p, c)
                     .partitioner("gvb")
                     .pipeline_chunks(chunks)
                     .gcn(tiny_config(ds, epochs))
                     .build();
  trainer->train();
  return trainer->result();
}

// ---- SpMM level: multiply_pipelined vs multiply ----

struct PipelinedRun {
  std::vector<Matrix> replicas;
  TrafficRecorder traffic{1};
  int final_stage = 0;
};

/// Run `multiplies` back-to-back pipelined multiplies (one per simulated
/// layer) with a shared epoch-wide stage counter, as the strategy does.
/// chunks < 0 means "call the bulk multiply()" (untagged baseline).
PipelinedRun run_15d(const CsrMatrix& a, const Matrix& h, int p, int c,
                     int chunks, int multiplies = 1) {
  const auto ranges = uniform_block_ranges(a.n_rows(), p / c);
  PipelinedRun out;
  out.replicas.resize(static_cast<std::size_t>(p));
  std::vector<int> stages(static_cast<std::size_t>(p), 0);
  Cluster cluster(p);
  cluster.run([&](Comm& comm) {
    DistSpmm15d spmm(comm, a, ranges, c, SpmmMode::kSparsityAware);
    const BlockRange r = spmm.my_range();
    Matrix z;
    for (int i = 0; i < multiplies; ++i) {
      const Matrix h_local = h.slice_rows(r.begin, r.end);
      z = chunks < 0
              ? spmm.multiply(h_local)
              : spmm.multiply_pipelined(
                    h_local, chunks,
                    &stages[static_cast<std::size_t>(comm.rank())]);
    }
    out.replicas[static_cast<std::size_t>(comm.rank())] = z;
  });
  out.traffic = cluster.traffic();
  out.final_stage = stages.front();
  return out;
}

TEST(Spmm15dPipelined, BitwiseIdenticalToBulkMultiply) {
  Rng rng(11);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 500, rng));
  const Matrix h = Matrix::random_uniform(64, 12, rng);
  const auto bulk = run_15d(a, h, 8, 2, /*chunks=*/-1);
  for (int chunks : {1, 2, 3, 4, 12, 100}) {
    const auto pipe = run_15d(a, h, 8, 2, chunks);
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(pipe.replicas[static_cast<std::size_t>(r)].max_abs_diff(
                    bulk.replicas[static_cast<std::size_t>(r)]),
                0.0)
          << "chunks=" << chunks << " rank " << r;
    }
  }
}

TEST(Spmm15dPipelined, StageTagsContinueAcrossMultiplies) {
  // Two back-to-back multiplies with one stage counter model two layers:
  // the second multiply's first exchange must land in the pipeline slot
  // directly after the first multiply's all-reduce — no tag reuse, no gap.
  Rng rng(12);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(48, 300, rng));
  const Matrix h = Matrix::random_uniform(48, 8, rng);
  const int chunks = 2;
  const auto two = run_15d(a, h, 4, 2, chunks, /*multiplies=*/2);

  // Per multiply: 2 alltoall stages + 1 allreduce stage -> counter at 6.
  EXPECT_EQ(two.final_stage, 6);
  EXPECT_EQ(two.traffic.stage_count("alltoall"), 4);
  EXPECT_EQ(two.traffic.stage_count("allreduce"), 2);
  for (int s : {0, 1, 3, 4}) {
    EXPECT_GT(two.traffic.phase(TrafficRecorder::stage_phase("alltoall", s))
                  .total_msgs(),
              0u)
        << "alltoall stage " << s;
  }
  for (int s : {2, 5}) {
    EXPECT_GT(two.traffic.phase(TrafficRecorder::stage_phase("allreduce", s))
                  .total_msgs(),
              0u)
        << "allreduce stage " << s;
  }
  // Identical H both times -> the two layers' stage payloads match.
  EXPECT_EQ(two.traffic.phase(TrafficRecorder::stage_phase("alltoall", 0))
                .total_bytes(),
            two.traffic.phase(TrafficRecorder::stage_phase("alltoall", 3))
                .total_bytes());
}

TEST(Spmm15dPipelined, StagePayloadsReassembleBulkTotalsExactly) {
  Rng rng(13);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(64, 500, rng));
  const Matrix h = Matrix::random_uniform(64, 10, rng);
  const auto bulk = run_15d(a, h, 8, 2, /*chunks=*/-1);
  const auto pipe = run_15d(a, h, 8, 2, /*chunks=*/4);

  // Chunking changes the schedule, never the payload: summed over stages,
  // bytes match the bulk run exactly; alltoall messages inflate K-fold
  // while the (full-width, never column-split) all-reduce is untouched.
  const PhaseTraffic a2a_bulk = bulk.traffic.phase("alltoall");
  const PhaseTraffic a2a_pipe = pipe.traffic.phase_total("alltoall");
  EXPECT_EQ(a2a_pipe.total_bytes(), a2a_bulk.total_bytes());
  EXPECT_EQ(a2a_pipe.total_msgs(), 4 * a2a_bulk.total_msgs());
  const PhaseTraffic ar_bulk = bulk.traffic.phase("allreduce");
  const PhaseTraffic ar_pipe = pipe.traffic.phase_total("allreduce");
  EXPECT_EQ(ar_pipe.total_bytes(), ar_bulk.total_bytes());
  EXPECT_EQ(ar_pipe.total_msgs(), ar_bulk.total_msgs());

  // And not just in aggregate: every (src, dst) pair moves the same bytes.
  for (std::size_t i = 0; i < a2a_bulk.bytes.size(); ++i) {
    ASSERT_EQ(a2a_pipe.bytes[i], a2a_bulk.bytes[i]) << "pair " << i;
  }

  // A K=1 tagged run records one stage per multiply; its stage-0 payload
  // must equal the union of the K=4 run's four chunk stages.
  const auto one = run_15d(a, h, 8, 2, /*chunks=*/1);
  EXPECT_EQ(one.traffic.stage_count("alltoall"), 1);
  std::uint64_t four_stage_bytes = 0;
  for (int s = 0; s < 4; ++s) {
    four_stage_bytes +=
        pipe.traffic.phase(TrafficRecorder::stage_phase("alltoall", s))
            .total_bytes();
  }
  EXPECT_EQ(one.traffic.phase(TrafficRecorder::stage_phase("alltoall", 0))
                .total_bytes(),
            four_stage_bytes);
}

// ---- Trainer level: the registered strategy ----

TEST(Strategy15dOverlap, SameBytesAsSparse15dWithKFoldAlltoallMessages) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const int chunks = 4;
  const TrainResult sparse = run(ds, "1.5d-sparse", chunks);
  const TrainResult overlap = run(ds, "1.5d-overlap", chunks);

  const PhaseVolume& a2a_sparse = sparse.phase_volumes.at("alltoall");
  const PhaseVolume& a2a_overlap = overlap.phase_volumes.at("alltoall");
  EXPECT_DOUBLE_EQ(a2a_overlap.megabytes_per_epoch,
                   a2a_sparse.megabytes_per_epoch);
  EXPECT_DOUBLE_EQ(a2a_overlap.messages_per_epoch,
                   chunks * a2a_sparse.messages_per_epoch);
  // The grid-row all-reduce is never chunked: equal bytes AND messages.
  const PhaseVolume& ar_sparse = sparse.phase_volumes.at("allreduce");
  const PhaseVolume& ar_overlap = overlap.phase_volumes.at("allreduce");
  EXPECT_DOUBLE_EQ(ar_overlap.megabytes_per_epoch, ar_sparse.megabytes_per_epoch);
  EXPECT_DOUBLE_EQ(ar_overlap.messages_per_epoch, ar_sparse.messages_per_epoch);
  EXPECT_DOUBLE_EQ(overlap.setup_megabytes, sparse.setup_megabytes);

  // Identical math: the loss trajectories agree bitwise, not just within
  // the serial-parity tolerance.
  ASSERT_EQ(overlap.epochs.size(), sparse.epochs.size());
  for (std::size_t e = 0; e < sparse.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(overlap.epochs[e].loss, sparse.epochs[e].loss) << e;
    EXPECT_DOUBLE_EQ(overlap.epochs[e].train_accuracy,
                     sparse.epochs[e].train_accuracy)
        << e;
  }
}

TEST(Strategy15dOverlap, CrossLayerStageCountIsPropagatesTimesChunks) {
  // 3 GCN layers -> 3 forward + 2 backward propagates per epoch; the
  // epoch-wide stage counter gives every propagate its own K chunk slots
  // (amazon-sim kTiny propagates 16-wide matrices everywhere, so no
  // clamping), and every epoch re-tags the same sequence — the stage
  // count must not grow with the epoch count.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (int chunks : {1, 2, 4}) {
    const TrainResult r = run(ds, "1.5d-overlap", chunks, /*epochs=*/3);
    // pipeline_stages is the deepest per-base stage count: 5 x K alltoall
    // chunk stages vs the allreduce base's 5 tagged propagate stages plus
    // the untagged gradient-reduce phase (= 6, which wins at K = 1).
    EXPECT_EQ(r.pipeline_stages, std::max(5 * chunks, 6)) << "chunks=" << chunks;
  }
  // The within-layer "1d-overlap" schedule reports K stages; the
  // cross-layer schedule's pipeline is propagates x deeper.
  const TrainResult within = run(ds, "1d-overlap", 4, 3, 4, 1);
  EXPECT_EQ(within.pipeline_stages, 4);
}

TEST(Strategy15dOverlap, ScheduleColumnsStayOrdered) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  for (int chunks : {1, 2, 8}) {
    const TrainResult r = run(ds, "1.5d-overlap", chunks, 2);
    const double bulk = r.modeled_epoch_seconds();
    const double pipe = r.modeled_epoch_pipelined_seconds();
    const double ideal = r.modeled_epoch_overlapped_seconds();
    EXPECT_LE(pipe, bulk) << chunks;
    EXPECT_GE(pipe, ideal) << chunks;
  }
}

TEST(Strategy15dOverlap, RejectsNonPositiveChunkCount) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  EXPECT_THROW(run(ds, "1.5d-overlap", 0, 1), Error);
}

TEST(Strategy15dOverlap, AliasesResolve) {
  for (const char* alias : {"15d-overlap", "1.5d-pipelined", "1.5d-overlap"}) {
    EXPECT_EQ(strategy_registry().create(alias)->name(), "1.5d-overlap")
        << alias;
  }
}

TEST(Strategy15dOverlap, WorkSharedWithSparse15d) {
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const auto ranges = uniform_block_ranges(ds.n_vertices(), 2);
  StrategyContext ctx;
  ctx.p = 4;
  ctx.c = 2;
  ctx.adjacency = &ds.adjacency;
  ctx.ranges = ranges;
  EXPECT_EQ(strategy_registry().create("1.5d-overlap")->rank_work(ctx),
            strategy_registry().create("1.5d-sparse")->rank_work(ctx));
}

TEST(Strategy15dOverlap, CheckpointResumeStaysBitIdentical) {
  // The cross-layer stage tags restart every epoch, so a same-geometry
  // resume must adopt the tagged traffic history and continue exactly.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  const GcnConfig cfg = tiny_config(ds, 4);
  auto whole = TrainerBuilder(ds)
                   .strategy("1.5d-overlap")
                   .ranks(4, 2)
                   .partitioner("gvb")
                   .pipeline_chunks(2)
                   .gcn(cfg)
                   .build();
  whole->train();

  auto first = TrainerBuilder(ds)
                   .strategy("1.5d-overlap")
                   .ranks(4, 2)
                   .partitioner("gvb")
                   .pipeline_chunks(2)
                   .gcn(cfg)
                   .build();
  for (int e = 0; e < 2; ++e) (void)first->run_epoch();
  std::stringstream snapshot;
  first->save(snapshot);
  auto resumed = TrainerBuilder(ds).resume(snapshot);
  resumed->train();

  const TrainResult& a = resumed->result();
  const TrainResult& b = whole->result();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < b.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].loss, b.epochs[e].loss) << e;
  }
  EXPECT_EQ(a.pipeline_stages, b.pipeline_stages);
  for (const auto& [phase, vol] : b.phase_volumes) {
    ASSERT_TRUE(a.phase_volumes.count(phase)) << phase;
    EXPECT_DOUBLE_EQ(a.phase_volumes.at(phase).megabytes_per_epoch,
                     vol.megabytes_per_epoch)
        << phase;
    EXPECT_DOUBLE_EQ(a.phase_volumes.at(phase).messages_per_epoch,
                     vol.messages_per_epoch)
        << phase;
  }
}

}  // namespace
}  // namespace sagnn
