// Symmetric permutation tests: element preservation, round trips, and the
// dense/label counterparts used when redistributing training data.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/permute.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

std::vector<vid_t> random_perm(vid_t n, Rng& rng) {
  std::vector<vid_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

TEST(Permute, InvertPermutation) {
  std::vector<vid_t> perm{2, 0, 1};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<vid_t>{1, 2, 0}));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<vid_t>(i));
  }
}

TEST(Permute, IsPermutationDetectsInvalid) {
  EXPECT_TRUE(is_permutation(std::vector<vid_t>{1, 0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<vid_t>{0, 0, 2}));
  EXPECT_FALSE(is_permutation(std::vector<vid_t>{0, 3, 1}));
  EXPECT_FALSE(is_permutation(std::vector<vid_t>{-1, 0, 1}));
}

TEST(Permute, SymmetricPermutationMovesElements) {
  Rng rng(3);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(30, 120, rng));
  const auto perm = random_perm(30, rng);
  const CsrMatrix b = permute_symmetric(a, perm);
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    for (vid_t c : a.row_cols(r)) {
      EXPECT_FLOAT_EQ(b.at(perm[static_cast<std::size_t>(r)],
                           perm[static_cast<std::size_t>(c)]),
                      a.at(r, c));
    }
  }
  EXPECT_EQ(a.nnz(), b.nnz());
}

TEST(Permute, IdentityPermutationIsNoop) {
  Rng rng(4);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(20, 60, rng));
  std::vector<vid_t> id(20);
  std::iota(id.begin(), id.end(), 0);
  EXPECT_EQ(permute_symmetric(a, id), a);
}

TEST(Permute, RoundTripRestoresMatrix) {
  Rng rng(5);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(40, 200, rng));
  const auto perm = random_perm(40, rng);
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(permute_symmetric(permute_symmetric(a, perm), inv), a);
}

TEST(Permute, PreservesSymmetry) {
  Rng rng(6);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(25, 100, rng));
  const auto perm = random_perm(25, rng);
  const CsrMatrix b = permute_symmetric(a, perm);
  EXPECT_EQ(b, b.transpose());
}

TEST(Permute, DenseRowsFollowPermutation) {
  Rng rng(7);
  const Matrix h = Matrix::random_uniform(10, 3, rng);
  const auto perm = random_perm(10, rng);
  const Matrix hp = permute_rows(h, perm);
  for (vid_t r = 0; r < 10; ++r) {
    for (vid_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(hp(perm[static_cast<std::size_t>(r)], c), h(r, c));
    }
  }
}

TEST(Permute, LabelsFollowPermutation) {
  std::vector<vid_t> labels{10, 20, 30};
  std::vector<vid_t> perm{2, 0, 1};
  const auto out = permute_labels(labels, perm);
  EXPECT_EQ(out, (std::vector<vid_t>{20, 30, 10}));
}

TEST(Permute, SpmmCommutesWithPermutation) {
  // (P A P^T)(P H) == P (A H): permuting the system does not change the
  // math — the foundation of the partitioning approach.
  Rng rng(8);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(32, 150, rng));
  const Matrix h = Matrix::random_uniform(32, 4, rng);
  const auto perm = random_perm(32, rng);

  const Matrix lhs = spmm(permute_symmetric(a, perm), permute_rows(h, perm));
  const Matrix rhs = permute_rows(spmm(a, h), perm);
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-5);
}

}  // namespace
}  // namespace sagnn
