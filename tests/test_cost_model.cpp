// Alpha-beta cost model: per-rank serialization, bottleneck semantics,
// intra/inter-node distinction, epoch assembly.
#include <gtest/gtest.h>

#include "simcomm/cost_model.hpp"

namespace sagnn {
namespace {

CostModel simple_model() {
  CostModel m;
  m.alpha_intra = 1.0;  // exaggerated units for easy arithmetic
  m.alpha_inter = 10.0;
  m.beta_intra = 0.5;
  m.beta_inter = 2.0;
  m.gpus_per_node = 2;
  m.compute_scale = 0.1;
  return m;
}

TEST(CostModel, NodeTopology) {
  const CostModel m = simple_model();
  EXPECT_TRUE(m.same_node(0, 1));
  EXPECT_FALSE(m.same_node(1, 2));
  EXPECT_DOUBLE_EQ(m.alpha(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.alpha(0, 2), 10.0);
  EXPECT_DOUBLE_EQ(m.beta(2, 3), 0.5);
  EXPECT_DOUBLE_EQ(m.beta(1, 2), 2.0);
}

TEST(CostModel, SendSecondsSerializesAllDestinations) {
  const CostModel m = simple_model();
  PhaseTraffic t(4);
  // rank 0 -> 1 (intra, 10B), rank 0 -> 2 (inter, 10B)
  t.bytes[0 * 4 + 1] = 10;
  t.msgs[0 * 4 + 1] = 1;
  t.bytes[0 * 4 + 2] = 10;
  t.msgs[0 * 4 + 2] = 1;
  // (1 + 0.5*10) + (10 + 2*10) = 6 + 30
  EXPECT_DOUBLE_EQ(m.send_seconds(t, 0), 36.0);
  EXPECT_DOUBLE_EQ(m.recv_seconds(t, 1), 6.0);
  EXPECT_DOUBLE_EQ(m.recv_seconds(t, 2), 30.0);
}

TEST(CostModel, SelfTrafficIsFree) {
  const CostModel m = simple_model();
  PhaseTraffic t(2);
  t.bytes[0] = 1000000;  // (0,0)
  t.msgs[0] = 5;
  EXPECT_DOUBLE_EQ(m.send_seconds(t, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.phase_seconds(t), 0.0);
}

TEST(CostModel, PhaseIsBottleneckRank) {
  const CostModel m = simple_model();
  PhaseTraffic t(4);
  t.bytes[0 * 4 + 1] = 2;   // rank0 sends 2B intra: 1 + 1 = 2
  t.msgs[0 * 4 + 1] = 1;
  t.bytes[3 * 4 + 0] = 100;  // rank3 sends 100B inter: 10 + 200 = 210
  t.msgs[3 * 4 + 0] = 1;
  EXPECT_DOUBLE_EQ(m.phase_seconds(t), 210.0);
}

TEST(CostModel, RecvSideCanBeBottleneck) {
  const CostModel m = simple_model();
  PhaseTraffic t(4);
  // Everyone sends 10B to rank 0 (inter from 2,3; intra from 1):
  for (int s = 1; s < 4; ++s) {
    t.bytes[static_cast<std::size_t>(s) * 4 + 0] = 10;
    t.msgs[static_cast<std::size_t>(s) * 4 + 0] = 1;
  }
  // rank0 recv: (1+5) + (10+20) + (10+20) = 66 > any single send cost (30).
  EXPECT_DOUBLE_EQ(m.phase_seconds(t), 66.0);
}

TEST(CostModel, ComputeSecondsScalesAndTakesMax) {
  const CostModel m = simple_model();
  EXPECT_DOUBLE_EQ(m.compute_seconds({1.0, 5.0, 2.0}), 0.5);
}

TEST(CostModel, EpochCostBucketsByPhaseName) {
  const CostModel m = simple_model();
  TrafficRecorder rec(2);
  rec.record("alltoall", 0, 1, 10);   // intra: 1 + 5 = 6
  rec.record("bcast", 1, 0, 2);       // intra: 1 + 1 = 2
  rec.record("allreduce", 0, 1, 4);   // intra: 1 + 2 = 3
  rec.record("weird", 1, 0, 2);       // other: 2
  rec.record("sync", 0, 1, 999999);   // excluded
  const EpochCost cost = epoch_cost(m, rec, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(cost.alltoall, 6.0);
  EXPECT_DOUBLE_EQ(cost.bcast, 2.0);
  EXPECT_DOUBLE_EQ(cost.allreduce, 3.0);
  EXPECT_DOUBLE_EQ(cost.other, 2.0);
  EXPECT_DOUBLE_EQ(cost.compute, 2.0);
  EXPECT_DOUBLE_EQ(cost.total(), 15.0);
}

TEST(CostModel, OverlappedTotalIsMaxOfSides) {
  EpochCost c;
  c.compute = 5;
  c.alltoall = 2;
  c.bcast = 1;
  EXPECT_DOUBLE_EQ(c.comm(), 3.0);
  EXPECT_DOUBLE_EQ(c.total(), 8.0);
  EXPECT_DOUBLE_EQ(c.total_overlapped(), 5.0);
  c.allreduce = 10;
  EXPECT_DOUBLE_EQ(c.total_overlapped(), 13.0);
}

TEST(CostModel, PipelinedTotalInterpolatesBetweenBulkAndOverlap) {
  EpochCost c;
  c.compute = 6;
  c.alltoall = 4;
  // stages = 1 is exactly the bulk-synchronous schedule.
  EXPECT_DOUBLE_EQ(c.total_pipelined(1), c.total());
  // Monotone non-increasing in stages, never below the overlap bound.
  double prev = c.total_pipelined(1);
  for (int s : {2, 3, 4, 8, 64, 4096}) {
    const double t = c.total_pipelined(s);
    EXPECT_LE(t, prev) << s;
    EXPECT_GE(t, c.total_overlapped()) << s;
    prev = t;
  }
  // Closed form: max + min / stages.
  EXPECT_DOUBLE_EQ(c.total_pipelined(2), 6.0 + 4.0 / 2.0);
  // stages -> inf converges to the idealized full overlap.
  EXPECT_NEAR(c.total_pipelined(1 << 24), c.total_overlapped(), 1e-6);
  // Degenerate stage counts clamp to the bulk-synchronous schedule.
  EXPECT_DOUBLE_EQ(c.total_pipelined(0), c.total());
  EXPECT_DOUBLE_EQ(c.total_pipelined(-3), c.total());
  // Communication-bound epochs pipeline the compute side instead.
  c.allreduce = 20;
  EXPECT_DOUBLE_EQ(c.total_pipelined(4), 24.0 + 6.0 / 4.0);
}

TEST(CostModel, EpochCostAggregatesChunkTaggedStages) {
  const CostModel m = simple_model();
  TrafficRecorder rec(2);
  rec.record("alltoall#0", 0, 1, 10);  // stage 0 bottleneck: 1 + 5 = 6
  rec.record("alltoall#1", 0, 1, 4);   // stage 1 bottleneck: 1 + 2 = 3
  rec.record("bcast#0", 1, 0, 2);      // tagged bcast: 1 + 1 = 2
  const EpochCost cost = epoch_cost(m, rec, {0.0, 0.0});
  // Stages are synchronization points: their bottleneck costs add into the
  // base bucket instead of landing in `other`.
  EXPECT_DOUBLE_EQ(cost.alltoall, 9.0);
  EXPECT_DOUBLE_EQ(cost.bcast, 2.0);
  EXPECT_DOUBLE_EQ(cost.other, 0.0);
}

TEST(CostModel, EpochCostExcludesListedBasesExactly) {
  const CostModel m = simple_model();
  TrafficRecorder rec(2);
  rec.record("index_exchange", 0, 1, 123456);
  rec.record("weird", 0, 1, 2);  // other: 1 + 1 = 2
  const EpochCost cost = epoch_cost(m, rec, {0.0, 0.0}, {"index_exchange"});
  EXPECT_DOUBLE_EQ(cost.other, 2.0);
  EXPECT_DOUBLE_EQ(cost.comm(), 2.0);
}

TEST(CostModel, VolumeScaleMultipliesBytesNotLatency) {
  CostModel m = simple_model();
  m.volume_scale = 10.0;
  PhaseTraffic t(2);
  t.bytes[0 * 2 + 1] = 10;  // intra: alpha 1, beta 0.5
  t.msgs[0 * 2 + 1] = 1;
  // 1 (latency unscaled) + 0.5 * 10 * 10 (bytes scaled)
  EXPECT_DOUBLE_EQ(m.send_seconds(t, 0), 51.0);
  EXPECT_DOUBLE_EQ(m.compute_seconds({1.0}), 1.0);  // 0.1 scale * 10
}

TEST(CostModel, DefaultsAreSane) {
  // Perlmutter-flavored defaults: inter-node latency above intra, 25 GB/s
  // links, 4 GPUs per node.
  const CostModel m;
  EXPECT_GT(m.alpha_inter, m.alpha_intra);
  EXPECT_EQ(m.gpus_per_node, 4);
  EXPECT_NEAR(m.beta_intra * 25.0e9, 1.0, 1e-9);
}

}  // namespace
}  // namespace sagnn
