// The checkpoint wire format (src/ckpt/): primitive and component
// round-trips must be bit-exact, and every way a stream can be damaged —
// truncation, corruption, wrong magic/version, reader/writer disagreement —
// must surface as the right typed error naming the bad section, never UB.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "ckpt/crc32.hpp"
#include "ckpt/state_io.hpp"

namespace sagnn {
namespace {

using ckpt::CheckpointCrcError;
using ckpt::CheckpointFormatError;
using ckpt::CheckpointTruncatedError;
using ckpt::Deserializer;
using ckpt::Serializer;

TEST(CkptCrc32, MatchesKnownVectors) {
  // The classic IEEE CRC-32 check value.
  EXPECT_EQ(ckpt::crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(ckpt::crc32(nullptr, 0), 0u);
  // Incremental == one-shot.
  std::uint32_t inc = ckpt::crc32_update(0, "1234", 4);
  inc = ckpt::crc32_update(inc, "56789", 5);
  EXPECT_EQ(inc, 0xcbf43926u);
}

TEST(CkptFormat, PrimitivesRoundTripBitExact) {
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("prims");
  s.write_u8(0xab);
  s.write_u32(0xdeadbeefu);
  s.write_u64(0x0123456789abcdefull);
  s.write_i32(-42);
  s.write_i64(-1234567890123ll);
  s.write_f32(-0.0f);
  s.write_f32(1.0f / 3.0f);
  s.write_f64(1.0 / 3.0);
  s.write_string("hello checkpoint");
  s.end_section();
  s.finish();

  Deserializer d(ss);
  d.enter_section("prims");
  EXPECT_EQ(d.read_u8(), 0xab);
  EXPECT_EQ(d.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(d.read_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(d.read_i32(), -42);
  EXPECT_EQ(d.read_i64(), -1234567890123ll);
  const float neg_zero = d.read_f32();
  EXPECT_EQ(std::bit_cast<std::uint32_t>(neg_zero),
            std::bit_cast<std::uint32_t>(-0.0f));  // sign bit survives
  EXPECT_EQ(std::bit_cast<std::uint32_t>(d.read_f32()),
            std::bit_cast<std::uint32_t>(1.0f / 3.0f));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.read_f64()),
            std::bit_cast<std::uint64_t>(1.0 / 3.0));
  EXPECT_EQ(d.read_string(), "hello checkpoint");
  d.leave_section();
  d.finish();
}

TEST(CkptFormat, UnknownSectionsCanBeSkippedByName) {
  // Self-describing: a reader can observe a section it does not know via
  // peek_section() and still land on the one it wants.
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("future_extension");
  s.write_u64(123);
  s.end_section();
  s.begin_section("known");
  s.write_i32(7);
  s.end_section();
  s.finish();

  Deserializer d(ss);
  EXPECT_EQ(d.peek_section(), "future_extension");
  d.enter_section("future_extension");
  (void)d.read_u64();
  d.leave_section();
  d.enter_section("known");
  EXPECT_EQ(d.read_i32(), 7);
  d.leave_section();
  d.finish();
}

TEST(CkptState, MatrixRoundTripsBitwise) {
  Rng rng(7);
  const Matrix m = Matrix::random_uniform(13, 5, rng, -3.0f, 3.0f);
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("m");
  ckpt::write_matrix(s, m);
  s.end_section();
  s.finish();
  Deserializer d(ss);
  d.enter_section("m");
  const Matrix back = ckpt::read_matrix(d);
  d.leave_section();
  EXPECT_TRUE(back == m);
}

TEST(CkptState, CsrRoundTripsAndValidates) {
  CooMatrix coo(4, 4);
  coo.add(0, 1, 0.5f);
  coo.add(1, 0, 0.5f);
  coo.add(2, 3, -1.25f);
  coo.add(3, 3, 2.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("a");
  ckpt::write_csr(s, a);
  s.end_section();
  s.finish();
  Deserializer d(ss);
  d.enter_section("a");
  EXPECT_TRUE(ckpt::read_csr(d) == a);
  d.leave_section();
}

TEST(CkptState, RngResumesIdenticalStream) {
  Rng rng(999);
  for (int i = 0; i < 57; ++i) (void)rng.next();  // advance mid-stream

  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("rng");
  ckpt::write_rng(s, rng);
  s.end_section();
  s.finish();
  Deserializer d(ss);
  d.enter_section("rng");
  Rng restored = ckpt::read_rng(d);
  d.leave_section();

  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(restored.next(), rng.next()) << "draw " << i;
  }
  // fork() depends on the saved seed, not only the xoshiro words.
  EXPECT_EQ(restored.fork(3).next(), rng.fork(3).next());
}

TEST(CkptState, AdamMomentsRoundTripAndContinueIdentically) {
  Rng rng(5);
  Matrix w = Matrix::random_uniform(4, 3, rng);
  Matrix w_copy = w;
  const Matrix g1 = Matrix::random_uniform(4, 3, rng);
  const Matrix g2 = Matrix::random_uniform(4, 3, rng);

  Adam a(0.01f);
  a.step(0, w, g1);

  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("adam");
  ckpt::write_adam(s, a);
  s.end_section();
  s.finish();

  Adam b(0.01f);
  {
    Deserializer d(ss);
    d.enter_section("adam");
    ckpt::read_adam_into(d, b);
    d.leave_section();
  }
  // Replay step 1 on the copy through the ORIGINAL optimizer, step 2
  // through the restored one: trajectories must coincide bitwise.
  a.step(0, w, g2);
  Adam fresh(0.01f);
  fresh.step(0, w_copy, g1);
  b.step(0, w_copy, g2);
  EXPECT_TRUE(w_copy == w);
}

TEST(CkptState, TrafficRecorderRoundTrips) {
  TrafficRecorder tr(3);
  tr.record("alltoall", 0, 1, 100);
  tr.record("alltoall", 1, 2, 250);
  tr.record(TrafficRecorder::stage_phase("alltoall", 1), 2, 0, 50);
  tr.record("allreduce", 0, 2, 8);

  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("traffic");
  ckpt::write_traffic(s, tr);
  s.end_section();
  s.finish();
  Deserializer d(ss);
  d.enter_section("traffic");
  const TrafficRecorder back = ckpt::read_traffic(d);
  d.leave_section();

  EXPECT_EQ(back.p(), 3);
  EXPECT_EQ(back.phase_names(), tr.phase_names());
  for (const auto& name : tr.phase_names()) {
    const PhaseTraffic a = tr.phase(name);
    const PhaseTraffic b = back.phase(name);
    EXPECT_EQ(a.bytes, b.bytes) << name;
    EXPECT_EQ(a.msgs, b.msgs) << name;
  }
  EXPECT_EQ(back.stage_count("alltoall"), 2);
}

TEST(CkptState, TrainConfigRoundTrips) {
  TrainConfig cfg;
  cfg.gcn.dims = {8, 16, 16, 3};
  cfg.gcn.learning_rate = 0.07f;
  cfg.gcn.weight_decay = 1e-4f;
  cfg.gcn.dropout = 0.3f;
  cfg.gcn.epochs = 42;
  cfg.gcn.seed = 777;
  cfg.strategy = "1.5d-sparse";
  cfg.threads = 4;
  cfg.p = 8;
  cfg.c = 2;
  cfg.partitioner = "gvb";
  cfg.partitioner_options.epsilon = 0.05;
  cfg.partitioner_options.seed = 31337;
  cfg.cost_model.volume_scale = 12.5;
  cfg.pipeline_chunks = 6;
  cfg.sampling.batch_size = 128;
  cfg.sampling.fanouts = {10, 5, 5};

  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("config");
  ckpt::write_train_config(s, cfg);
  s.end_section();
  s.finish();
  Deserializer d(ss);
  d.enter_section("config");
  const TrainConfig back = ckpt::read_train_config(d);
  d.leave_section();

  EXPECT_EQ(back.gcn.dims, cfg.gcn.dims);
  EXPECT_EQ(back.gcn.learning_rate, cfg.gcn.learning_rate);
  EXPECT_EQ(back.gcn.weight_decay, cfg.gcn.weight_decay);
  EXPECT_EQ(back.gcn.dropout, cfg.gcn.dropout);
  EXPECT_EQ(back.gcn.epochs, cfg.gcn.epochs);
  EXPECT_EQ(back.gcn.seed, cfg.gcn.seed);
  EXPECT_EQ(back.strategy, cfg.strategy);
  EXPECT_EQ(back.threads, cfg.threads);
  EXPECT_EQ(back.p, cfg.p);
  EXPECT_EQ(back.c, cfg.c);
  EXPECT_EQ(back.partitioner, cfg.partitioner);
  EXPECT_EQ(back.partitioner_options.epsilon, cfg.partitioner_options.epsilon);
  EXPECT_EQ(back.partitioner_options.seed, cfg.partitioner_options.seed);
  EXPECT_EQ(back.cost_model.volume_scale, cfg.cost_model.volume_scale);
  EXPECT_EQ(back.pipeline_chunks, cfg.pipeline_chunks);
  EXPECT_EQ(back.sampling.batch_size, cfg.sampling.batch_size);
  EXPECT_EQ(back.sampling.fanouts, cfg.sampling.fanouts);
}

// ---------------------------------------------------------------- failures

/// A valid one-section stream to damage in various ways.
std::string valid_stream() {
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("weights");
  for (int i = 0; i < 32; ++i) s.write_f32(static_cast<float>(i) * 0.25f);
  s.end_section();
  s.finish();
  return ss.str();
}

TEST(CkptFailure, BadMagicIsFormatError) {
  std::string bytes = valid_stream();
  bytes[0] = 'X';
  std::istringstream in(bytes);
  EXPECT_THROW(Deserializer d(in), CheckpointFormatError);
}

TEST(CkptFailure, WrongVersionIsFormatErrorNamingVersions) {
  std::string bytes = valid_stream();
  bytes[8] = 99;  // the version u32 follows the 8-byte magic (little-endian)
  std::istringstream in(bytes);
  try {
    Deserializer d(in);
    FAIL() << "expected CheckpointFormatError";
  } catch (const CheckpointFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
  }
}

TEST(CkptFailure, EmptyStreamIsTruncatedError) {
  std::istringstream in("");
  EXPECT_THROW(Deserializer d(in), CheckpointTruncatedError);
}

TEST(CkptFailure, TruncatedPayloadNamesTheSection) {
  const std::string bytes = valid_stream();
  // Cut inside the "weights" payload (header is 16 bytes, the section
  // header ~19 more; halfway through the stream is mid-payload).
  std::istringstream in(bytes.substr(0, bytes.size() / 2));
  Deserializer d(in);
  try {
    d.enter_section("weights");
    FAIL() << "expected CheckpointTruncatedError";
  } catch (const CheckpointTruncatedError& e) {
    EXPECT_EQ(e.section(), "weights");
  }
}

TEST(CkptFailure, CorruptPayloadIsCrcErrorNamingTheSection) {
  std::string bytes = valid_stream();
  // Flip one payload byte: last 19 bytes are the end marker
  // (4 + 3 + 8 + 4), preceded by the section CRC (4); step back past both
  // to land inside the payload.
  bytes[bytes.size() - 19 - 4 - 8] ^= 0x40;
  std::istringstream in(bytes);
  Deserializer d(in);
  try {
    d.enter_section("weights");
    FAIL() << "expected CheckpointCrcError";
  } catch (const CheckpointCrcError& e) {
    EXPECT_EQ(e.section(), "weights");
  }
}

TEST(CkptFailure, CorruptLengthFieldIsTypedErrorNotBadAlloc) {
  // The u64 payload length lives OUTSIDE the payload CRC; a damaged
  // length must surface as a typed checkpoint error (the chunked read
  // hits end-of-stream), never as std::bad_alloc from one giant resize.
  std::string bytes = valid_stream();
  // Section header after the 16-byte format header: u32 name_len,
  // "weights" (7 bytes), then the u64 payload length at offset 27.
  bytes[27 + 6] = 0x7f;  // payload length becomes ~2^55
  std::istringstream in(bytes);
  Deserializer d(in);
  EXPECT_THROW(d.enter_section("weights"), CheckpointTruncatedError);
}

TEST(CkptFailure, WrongSectionNameIsFormatErrorNamingBoth) {
  const std::string bytes = valid_stream();
  std::istringstream in(bytes);
  Deserializer d(in);
  try {
    d.enter_section("model");
    FAIL() << "expected CheckpointFormatError";
  } catch (const CheckpointFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("model"), std::string::npos);
    EXPECT_NE(what.find("weights"), std::string::npos);
  }
}

TEST(CkptFailure, UnreadTrailingBytesAreFormatError) {
  const std::string bytes = valid_stream();
  std::istringstream in(bytes);
  Deserializer d(in);
  d.enter_section("weights");
  (void)d.read_f32();  // 31 floats left unread
  EXPECT_THROW(d.leave_section(), CheckpointFormatError);
}

TEST(CkptFailure, ReadingPastSectionEndIsTruncatedError) {
  const std::string bytes = valid_stream();
  std::istringstream in(bytes);
  Deserializer d(in);
  d.enter_section("weights");
  for (int i = 0; i < 32; ++i) (void)d.read_f32();
  EXPECT_THROW((void)d.read_u64(), CheckpointTruncatedError);
}

TEST(CkptFailure, MissingEndMarkerIsFormatError) {
  std::stringstream ss;
  Serializer s(ss);
  s.begin_section("a");
  s.end_section();
  // no finish(): stream simply stops
  std::istringstream in(ss.str());
  Deserializer d(in);
  d.enter_section("a");
  d.leave_section();
  EXPECT_THROW(d.finish(), CheckpointTruncatedError);
}

}  // namespace
}  // namespace sagnn
