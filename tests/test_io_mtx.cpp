// Matrix Market round trips and format handling.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/io_mtx.hpp"

namespace sagnn {
namespace {

TEST(IoMtx, RoundTripGeneral) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(30, 120, rng));
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_EQ(a, b);
}

TEST(IoMtx, ParsesSymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const CooMatrix coo = read_matrix_market(ss);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_FLOAT_EQ(a.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 5.0f);  // mirrored
  EXPECT_FLOAT_EQ(a.at(2, 2), 7.0f);  // diagonal not duplicated
}

TEST(IoMtx, ParsesPatternField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n");
  const CsrMatrix a = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 0), 1.0f);
}

TEST(IoMtx, ParsesIntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 42\n");
  const CsrMatrix a = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_FLOAT_EQ(a.at(0, 1), 42.0f);
}

TEST(IoMtx, RejectsMissingBanner) {
  std::stringstream ss("3 3 0\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, RejectsUnsupportedFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, RejectsTruncatedStream) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, FileRoundTrip) {
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(16, 40, rng));
  const std::string path = ::testing::TempDir() + "/sagnn_io_test.mtx";
  write_matrix_market_file(path, a);
  EXPECT_EQ(CsrMatrix::from_coo(read_matrix_market_file(path)), a);
}

TEST(IoMtx, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

}  // namespace
}  // namespace sagnn
