// Matrix Market round trips and format handling.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/io_mtx.hpp"

namespace sagnn {
namespace {

TEST(IoMtx, RoundTripGeneral) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(30, 120, rng));
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_EQ(a, b);
}

TEST(IoMtx, ParsesSymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const CooMatrix coo = read_matrix_market(ss);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_FLOAT_EQ(a.at(1, 0), 5.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 5.0f);  // mirrored
  EXPECT_FLOAT_EQ(a.at(2, 2), 7.0f);  // diagonal not duplicated
}

TEST(IoMtx, ParsesPatternField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n");
  const CsrMatrix a = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_FLOAT_EQ(a.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 0), 1.0f);
}

TEST(IoMtx, ParsesIntegerField) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 42\n");
  const CsrMatrix a = CsrMatrix::from_coo(read_matrix_market(ss));
  EXPECT_FLOAT_EQ(a.at(0, 1), 42.0f);
}

TEST(IoMtx, RoundTripIsBitExactForAwkwardValues) {
  // Regression: the writer used to emit 6 significant digits, silently
  // perturbing values like the 1/sqrt(d_i d_j) entries of a GCN-normalized
  // adjacency. max_digits10 output must round-trip every float exactly.
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0f / 3.0f);
  coo.add(0, 2, 0.12345678f);
  coo.add(1, 1, 1.0f / std::sqrt(7.0f));
  coo.add(2, 0, -2.718281828f);
  coo.add(2, 2, 1e-38f);  // near the denormal boundary
  const CsrMatrix a = CsrMatrix::from_coo(coo);

  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = CsrMatrix::from_coo(read_matrix_market(ss));
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.vals().size(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a.vals()[k]),
              std::bit_cast<std::uint32_t>(b.vals()[k]))
        << "value " << k << " did not survive the text round trip";
  }
}

TEST(IoMtx, RejectsMissingBanner) {
  std::stringstream ss("3 3 0\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, RejectsUnsupportedFormat) {
  std::stringstream ss("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, RejectsTruncatedStream) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, TruncationErrorNamesLineAndCounts) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 1.0\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2 entries, got 1"), std::string::npos) << what;
  }
}

TEST(IoMtx, MalformedSizeLineNamesTheLine) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 three 2\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IoMtx, MalformedEntryNamesTheLine) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 2\n"
      "1 1 1.0\n"
      "2 x 1.0\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  }
}

TEST(IoMtx, MissingValueNamesTheLine) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("missing"), std::string::npos) << what;
  }
}

TEST(IoMtx, OutOfRangeIndexNamesTheLine) {
  // This used to misparse silently into a bogus CooMatrix add; now it is
  // rejected with the offending coordinates and the declared shape.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "4 1 1.0\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("(4, 1)"), std::string::npos) << what;
  }
}

TEST(IoMtx, CommentsOnlyStreamFailsCleanly) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% only comments\n"
      "% no size line\n");
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(IoMtx, FileRoundTrip) {
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(16, 40, rng));
  const std::string path = ::testing::TempDir() + "/sagnn_io_test.mtx";
  write_matrix_market_file(path, a);
  EXPECT_EQ(CsrMatrix::from_coo(read_matrix_market_file(path)), a);
}

TEST(IoMtx, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

}  // namespace
}  // namespace sagnn
