// Large-sim generator regime (the --large bench tier's inputs): the
// streamed CSR generators at millions of edges must be bit-exact across
// thread counts (construction is deliberately single-threaded — the pool
// size must not leak into the stream) and across re-runs from the same
// seed, and the power-law generator's degree distribution must show the
// heavy Zipf tail the skew-sensitive benches rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "graph/generators.hpp"

namespace sagnn {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { set_parallel_threads(0); }
};

TEST(GeneratorsScale, PowerlawCsrIsSimpleSymmetric) {
  Rng rng(21);
  const CsrMatrix a = powerlaw_csr(2000, 8, 0.8, rng);
  a.validate();
  EXPECT_EQ(a.n_rows(), 2000);
  EXPECT_GT(a.nnz(), 0);
  for (vid_t v = 0; v < a.n_rows(); ++v) {
    EXPECT_FLOAT_EQ(a.at(v, v), 0.0f) << "self loop at " << v;
    for (vid_t u : a.row_cols(v)) {
      EXPECT_NE(a.at(u, v), 0.0f) << "missing reverse arc " << u << "->" << v;
    }
  }
}

TEST(GeneratorsScale, PowerlawCsrDeterministicWithMatchingFinalState) {
  Rng r1(22), r2(22);
  const CsrMatrix a = powerlaw_csr(1500, 6, 1.0, r1);
  const CsrMatrix b = powerlaw_csr(1500, 6, 1.0, r2);
  EXPECT_TRUE(a == b);
  // Both generators must also END in the same state: downstream draws
  // (features, weights) stay reproducible after the graph is built.
  EXPECT_EQ(r1.save_state(), r2.save_state());
  EXPECT_EQ(r1.next(), r2.next());
}

TEST(GeneratorsScale, PowerlawCsrHasZipfTail) {
  // Without scrambling, low vertex ids are the Zipf hubs: degrees must be
  // monotone-ish in rank with a heavy head, and the top 1% of vertices
  // must hold a disproportionate share of the arcs.
  Rng rng(23);
  const vid_t n = 4000;
  const CsrMatrix a = powerlaw_csr(n, 8, 1.0, rng, /*scramble_ids=*/false);
  const DegreeStats st = degree_stats(a);
  EXPECT_GT(st.max, 10 * st.avg);
  EXPECT_LT(st.max, n);  // dedup caps a hub at n-1 distinct neighbors
  // Vertex 0 is the heaviest hub (up to dedup noise among the top few).
  vid_t head_max = 0;
  for (vid_t v = 0; v < 8; ++v) {
    head_max = std::max(head_max, static_cast<vid_t>(a.row_nnz(v)));
  }
  EXPECT_EQ(head_max, st.max);

  std::vector<eid_t> degrees(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) degrees[static_cast<std::size_t>(v)] = a.row_nnz(v);
  std::sort(degrees.begin(), degrees.end(), std::greater<>());
  const eid_t top1pct = std::accumulate(
      degrees.begin(), degrees.begin() + n / 100, eid_t{0});
  EXPECT_GT(static_cast<double>(top1pct), 0.10 * static_cast<double>(a.nnz()))
      << "top 1% of vertices hold too few arcs for a Zipf(1.0) tail";
}

TEST(GeneratorsScale, PowerlawCsrMillionsOfEdgesBitExactAcrossThreadCounts) {
  // The --large regime: 2^19 vertices x 16 = 4.2M sampled endpoint pairs.
  // The construction never consults the thread pool, so the pool size must
  // not leak into the output — and a second streaming pass from the same
  // seed must reproduce every byte.
  ThreadCountGuard guard;
  const vid_t n = vid_t{1} << 19;
  set_parallel_threads(1);
  Rng r1(24);
  const CsrMatrix a = powerlaw_csr(n, 16, 0.9, r1);
  EXPECT_GT(a.nnz(), eid_t{4} * 1000 * 1000);
  a.validate();
  set_parallel_threads(8);
  Rng r8(24);
  const CsrMatrix b = powerlaw_csr(n, 16, 0.9, r8);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(r1.save_state(), r8.save_state());
  const DegreeStats st = degree_stats(a);
  EXPECT_GT(st.max, 20 * st.avg);  // scrambled ids, same heavy tail
}

TEST(GeneratorsScale, RmatCsrMillionsOfEdgesBitExactAcrossThreadCounts) {
  // Same contract for the R-MAT streamer at the --large tier's exact
  // configuration (scale 18, edge factor 16 -> 4.2M generated edges).
  ThreadCountGuard guard;
  set_parallel_threads(1);
  Rng r1(25);
  const CsrMatrix a = rmat_csr(18, 16, r1);
  EXPECT_GT(a.nnz(), eid_t{4} * 1000 * 1000);
  set_parallel_threads(8);
  Rng r8(25);
  const CsrMatrix b = rmat_csr(18, 16, r8);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(r1.save_state(), r8.save_state());
}

}  // namespace
}  // namespace sagnn
