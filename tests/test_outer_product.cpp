// Distributed weight-gradient outer product Y = A_local^T B_local summed
// across ranks.
#include <gtest/gtest.h>

#include "dense/gemm.hpp"
#include "dist/outer_product.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/blocks.hpp"

namespace sagnn {
namespace {

TEST(OuterProduct, MatchesSerialGram) {
  Rng rng(1);
  const vid_t n = 40, fa = 5, fb = 3;
  const Matrix a = Matrix::random_uniform(n, fa, rng);
  const Matrix b = Matrix::random_uniform(n, fb, rng);
  const Matrix expected = gemm_at_b(a, b);

  const int p = 4;
  const auto ranges = uniform_block_ranges(n, p);
  std::vector<Matrix> results(static_cast<std::size_t>(p));
  run_spmd(p, [&](Comm& comm) {
    const auto& r = ranges[static_cast<std::size_t>(comm.rank())];
    results[static_cast<std::size_t>(comm.rank())] = distributed_gram(
        comm, a.slice_rows(r.begin, r.end), b.slice_rows(r.begin, r.end));
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_LT(results[static_cast<std::size_t>(r)].max_abs_diff(expected), 1e-4)
        << "rank " << r;
  }
}

TEST(OuterProduct, IdenticalAcrossRanks) {
  Rng rng(2);
  const vid_t n = 24;
  const Matrix a = Matrix::random_uniform(n, 4, rng);
  const Matrix b = Matrix::random_uniform(n, 4, rng);
  const int p = 3;
  const auto ranges = uniform_block_ranges(n, p);
  std::vector<Matrix> results(static_cast<std::size_t>(p));
  run_spmd(p, [&](Comm& comm) {
    const auto& r = ranges[static_cast<std::size_t>(comm.rank())];
    results[static_cast<std::size_t>(comm.rank())] = distributed_gram(
        comm, a.slice_rows(r.begin, r.end), b.slice_rows(r.begin, r.end));
  });
  // Bitwise identical (ring all-reduce determinism).
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].max_abs_diff(results[0]), 0.0);
  }
}

TEST(OuterProduct, SingleRankIsLocalGemm) {
  Rng rng(3);
  const Matrix a = Matrix::random_uniform(10, 2, rng);
  const Matrix b = Matrix::random_uniform(10, 6, rng);
  run_spmd(1, [&](Comm& comm) {
    EXPECT_EQ(distributed_gram(comm, a, b).max_abs_diff(gemm_at_b(a, b)), 0.0);
  });
}

TEST(OuterProduct, VolumeIsLowerOrder) {
  // The f x f reduction must be tiny compared to an H exchange: 2*f*f*4
  // bytes per rank vs n/p * f * 4 — the "lower-order term" claim.
  Rng rng(4);
  const vid_t n = 1024, f = 8;
  const Matrix a = Matrix::random_uniform(n, f, rng);
  const int p = 4;
  const auto ranges = uniform_block_ranges(n, p);
  auto traffic = run_spmd(p, [&](Comm& comm) {
    const auto& r = ranges[static_cast<std::size_t>(comm.rank())];
    (void)distributed_gram(comm, a.slice_rows(r.begin, r.end),
                           a.slice_rows(r.begin, r.end));
  });
  const auto bytes = traffic.phase("allreduce").total_bytes();
  const auto h_block_bytes =
      static_cast<std::uint64_t>(n / p) * f * sizeof(real_t);
  EXPECT_LT(bytes, p * 2 * h_block_bytes);
}

}  // namespace
}  // namespace sagnn
