// Tests for the deterministic RNG substrate: reproducibility, bounds,
// distribution sanity, and stream independence.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace sagnn {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformRespectsInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const real_t x = rng.uniform(-2.5f, 3.5f);
    ASSERT_GE(x, -2.5f);
    ASSERT_LT(x, 3.5f);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(99).fork(1);
  int equal12 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = f1.next();
    EXPECT_EQ(a, f1b.next());  // deterministic
    if (a == f2.next()) ++equal12;
  }
  EXPECT_LT(equal12, 5);  // independent
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SplitMix64KnownGolden) {
  // Reference values from the public-domain splitmix64 implementation.
  SplitMix64 sm(1234567ull);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(1234567ull);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace sagnn
