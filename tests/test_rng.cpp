// Tests for the deterministic RNG substrate: reproducibility, bounds,
// distribution sanity, and stream independence.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace sagnn {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, UniformRespectsInterval) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const real_t x = rng.uniform(-2.5f, 3.5f);
    ASSERT_GE(x, -2.5f);
    ASSERT_LT(x, 3.5f);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(99).fork(1);
  int equal12 = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto a = f1.next();
    EXPECT_EQ(a, f1b.next());  // deterministic
    if (a == f2.next()) ++equal12;
  }
  EXPECT_LT(equal12, 5);  // independent
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, SplitMix64KnownGolden) {
  // Reference values from the public-domain splitmix64 implementation.
  SplitMix64 sm(1234567ull);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(1234567ull);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

TEST(Zipf, DeterministicAcrossInstances) {
  const ZipfSampler a(1.2, 1000), b(1.2, 1000);
  Rng ra(42), rb(42);
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(a.sample(ra), b.sample(rb));
}

TEST(Zipf, OneUniformDrawPerSample) {
  // The inverse-CDF table promises exactly one next_double per sample, so
  // the generator state after n samples is a pure function of (seed, n).
  const ZipfSampler zipf(0.9, 4096);
  Rng sampled(7), counted(7);
  for (int i = 0; i < 1000; ++i) (void)zipf.sample(sampled);
  for (int i = 0; i < 1000; ++i) (void)counted.next_double();
  EXPECT_EQ(sampled.save_state(), counted.save_state());
}

TEST(Zipf, RanksStayInRangeAndCoverHead) {
  const std::uint64_t n = 64;
  const ZipfSampler zipf(1.1, n);
  Rng rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    ASSERT_LT(k, n);
    seen.insert(k);
  }
  // The head ranks are hot; they must all appear in a few thousand draws.
  for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(seen.contains(k)) << k;
}

TEST(Zipf, EmpiricalFrequenciesMatchTheLaw) {
  const std::uint64_t n = 50;
  const double s = 1.0;
  const ZipfSampler zipf(s, n);
  Rng rng(31);
  const int draws = 200000;
  std::vector<int> count(n, 0);
  for (int i = 0; i < draws; ++i) ++count[zipf.sample(rng)];
  // Probabilities sum to one and the head frequencies track p(k) closely.
  double total_p = 0;
  for (std::uint64_t k = 0; k < n; ++k) total_p += zipf.probability(k);
  EXPECT_NEAR(total_p, 1.0, 1e-12);
  for (std::uint64_t k = 0; k < 10; ++k) {
    const double expected = zipf.probability(k);
    const double observed = static_cast<double>(count[k]) / draws;
    EXPECT_NEAR(observed, expected, 0.1 * expected + 2e-3) << "rank " << k;
  }
  // Monotone head: rank 0 strictly hottest for s = 1.
  EXPECT_GT(count[0], count[1]);
  EXPECT_GT(count[1], count[4]);
}

TEST(Zipf, ExponentZeroIsUniform) {
  const std::uint64_t n = 16;
  const ZipfSampler zipf(0.0, n);
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(zipf.probability(k), 1.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(1.0, 0), Error);
  EXPECT_THROW(ZipfSampler(-0.5, 10), Error);
  const ZipfSampler ok(1.0, 3);
  EXPECT_THROW(ok.probability(3), Error);
}

}  // namespace
}  // namespace sagnn
