// Dropout and weight decay: determinism, placement invariance (the property
// that keeps distributed == serial), and training effects.
#include <gtest/gtest.h>

#include "dense/ops.hpp"
#include "gnn/dist_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn {
namespace {

TEST(Dropout, ZeroProbabilityIsIdentity) {
  Rng rng(1);
  Matrix m = Matrix::random_uniform(10, 4, rng);
  const Matrix orig = m;
  dropout_rows_deterministic(m, 0.0f, 7, 0);
  EXPECT_EQ(m.max_abs_diff(orig), 0.0);
}

TEST(Dropout, SurvivorsAreScaled) {
  Matrix m(1000, 1);
  m.fill(1.0f);
  dropout_rows_deterministic(m, 0.5f, 3, 0);
  int zeros = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(m.data()[i], 2.0f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.06);
}

TEST(Dropout, PlacementInvariance) {
  // Masking a whole matrix equals masking its row blocks with matching
  // offsets — the invariant that makes distributed dropout correct.
  Rng rng(2);
  Matrix full = Matrix::random_uniform(60, 5, rng);
  Matrix top = full.slice_rows(0, 25);
  Matrix bottom = full.slice_rows(25, 60);

  dropout_rows_deterministic(full, 0.3f, 99, 0);
  dropout_rows_deterministic(top, 0.3f, 99, 0);
  dropout_rows_deterministic(bottom, 0.3f, 99, 25);

  EXPECT_EQ(full.slice_rows(0, 25).max_abs_diff(top), 0.0);
  EXPECT_EQ(full.slice_rows(25, 60).max_abs_diff(bottom), 0.0);
}

TEST(Dropout, RejectsInvalidProbability) {
  Matrix m(2, 2);
  EXPECT_THROW(dropout_rows_deterministic(m, 1.0f, 1, 0), Error);
  EXPECT_THROW(dropout_rows_deterministic(m, -0.1f, 1, 0), Error);
}

TEST(WeightDecay, ShrinksWeightsWithZeroGradient) {
  GcnLayer layer(Matrix(1, 1, {2.0f}), true);
  layer.apply_gradient(Matrix(1, 1, {0.0f}), /*lr=*/0.1f, /*wd=*/0.5f);
  // W -= lr*wd*W -> 2 - 0.05*2 = 1.9
  EXPECT_FLOAT_EQ(layer.weights()(0, 0), 1.9f);
}

TEST(Regularization, DistributedMatchesSerialWithDropoutAndDecay) {
  // The headline parity property must survive both regularizers.
  const Dataset ds = make_amazon_sim(DatasetScale::kTiny);
  GcnConfig cfg = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 4);
  cfg.learning_rate = 0.2f;
  cfg.dropout = 0.3f;
  cfg.weight_decay = 0.01f;

  SerialTrainer serial(ds, cfg);
  const auto sm = serial.train();

  for (DistAlgo algo : {DistAlgo::k1dSparse, DistAlgo::k15dSparse}) {
    auto trainer = TrainerBuilder(ds)
                       .strategy(strategy_name(algo))
                       .ranks(4, is_15d(algo) ? 2 : 1)
                       .partitioner("metis")
                       .gcn(cfg)
                       .build();
    trainer->train();
    const TrainResult dist = trainer->result();
    for (std::size_t e = 0; e < sm.size(); ++e) {
      EXPECT_NEAR(dist.epochs[e].loss, sm[e].loss, 5e-3 * std::max(1.0, sm[e].loss))
          << to_string(algo) << " epoch " << e;
    }
  }
}

TEST(Regularization, WeightDecayReducesWeightNorm) {
  const Dataset ds = make_protein_sim(DatasetScale::kTiny);
  GcnConfig plain = GcnConfig::paper_3layer(ds.n_features(), ds.n_classes, 15);
  GcnConfig decayed = plain;
  decayed.weight_decay = 0.1f;
  SerialTrainer a(ds, plain), b(ds, decayed);
  a.train();
  b.train();
  auto norm = [](const GcnModel& m) {
    double acc = 0;
    for (int l = 0; l < m.n_layers(); ++l) {
      const Matrix& w = m.layer(l).weights();
      acc += w.frobenius_distance(Matrix(w.n_rows(), w.n_cols()));
    }
    return acc;
  };
  EXPECT_LT(norm(b.model()), norm(a.model()));
}

}  // namespace
}  // namespace sagnn
