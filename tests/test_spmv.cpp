// SpMV kernels, including consistency with SpMM at f=1 (independent paths).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

namespace sagnn {
namespace {

TEST(Spmv, KnownSmallProduct) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 2.0f);
  coo.add(0, 2, 1.0f);
  coo.add(1, 1, -1.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<real_t> x{1, 2, 3};
  const auto y = spmv(a, x);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(Spmv, SizeMismatchThrows) {
  const CsrMatrix a = CsrMatrix::zeros(2, 3);
  const std::vector<real_t> wrong{1, 2};
  EXPECT_THROW(spmv(a, wrong), Error);
}

TEST(Spmv, MatchesSpmmWithOneColumn) {
  Rng rng(1);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(80, 600, rng));
  std::vector<real_t> x(80);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto y = spmv(a, x);
  const Matrix h(80, 1, std::vector<real_t>(x));
  const Matrix z = spmm(a, h);
  for (vid_t r = 0; r < 80; ++r) EXPECT_NEAR(y[static_cast<std::size_t>(r)], z(r, 0), 1e-5);
}

TEST(Spmv, TransposedMatchesExplicitTranspose) {
  Rng rng(2);
  const CsrMatrix a = CsrMatrix::from_coo(erdos_renyi(50, 250, rng));
  std::vector<real_t> x(50);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto y1 = spmv_transposed(a, x);
  const auto y2 = spmv(a.transpose(), x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5);
}

TEST(Spmv, AccumulateAdds) {
  CooMatrix coo(1, 1);
  coo.add(0, 0, 3.0f);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<real_t> x{2.0f};
  std::vector<real_t> y{10.0f};
  spmv_accumulate(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 16.0f);
}

}  // namespace
}  // namespace sagnn
