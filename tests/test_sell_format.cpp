// SELL-C-sigma structural properties and the bitwise SpMM parity contract
// (sparse/sell.hpp). to_csr() must invert from_csr() exactly; padding must
// be accounted (stored == nnz + padding, ratio consistent); pathological
// sorting windows (all-equal degrees, one giant row, sigma <= 0, sigma not
// a multiple of C) must still produce a bijective slot permutation; and the
// SELL SpMM must be bitwise equal to the CSR reference at thread counts
// {1, 2, 8}. No tolerance anywhere in this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/parallel.hpp"
#include "graph/generators.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { set_parallel_threads(0); }
};

const int kThreadCounts[] = {1, 2, 8};

CsrMatrix random_csr(vid_t n_rows, vid_t n_cols, eid_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n_rows, n_cols);
  for (eid_t i = 0; i < nnz; ++i) {
    coo.add(static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_rows))),
            static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_cols))),
            rng.uniform(-2, 2));
  }
  return CsrMatrix::from_coo(coo);
}

/// One row of length n_cols, everything else degree 1 — the worst case for
/// chunk padding and the classic sigma-window pathology.
CsrMatrix giant_row_csr(vid_t n_rows, vid_t n_cols, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n_rows, n_cols);
  const vid_t giant = n_rows / 2;
  for (vid_t c = 0; c < n_cols; ++c) coo.add(giant, c, rng.uniform(-2, 2));
  for (vid_t r = 0; r < n_rows; ++r) {
    if (r != giant) {
      coo.add(r, static_cast<vid_t>(rng.next_below(
                     static_cast<std::uint64_t>(n_cols))),
              rng.uniform(-2, 2));
    }
  }
  return CsrMatrix::from_coo(coo);
}

/// Every row exactly `deg` entries — sorting is a no-op and the stable
/// permutation must come out identity.
CsrMatrix regular_csr(vid_t n, int deg, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  for (vid_t r = 0; r < n; ++r) {
    for (int d = 0; d < deg; ++d) {
      coo.add(r, (r + static_cast<vid_t>(d) * 7 + 1) % n, rng.uniform(-2, 2));
    }
  }
  return CsrMatrix::from_coo(coo);
}

void expect_bijective_perm(const SellMatrix& sell) {
  std::vector<vid_t> seen(sell.perm().begin(), sell.perm().end());
  std::sort(seen.begin(), seen.end());
  for (vid_t i = 0; i < sell.n_rows(); ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
}

void expect_roundtrip(const CsrMatrix& a, int chunk, int sigma) {
  const SellMatrix sell = SellMatrix::from_csr(a, chunk, sigma);
  EXPECT_EQ(sell.nnz(), a.nnz());
  EXPECT_GE(sell.stored(), sell.nnz());
  expect_bijective_perm(sell);
  const CsrMatrix back = sell.to_csr();
  EXPECT_TRUE(back == a) << "chunk=" << chunk << " sigma=" << sigma;
}

TEST(SellFormat, RoundTripAcrossChunkAndSigma) {
  const CsrMatrix a = random_csr(257, 129, 3000, 31);
  for (const int chunk : {1, 4, 32, 300}) {
    // sigma < chunk, equal, non-multiple, whole-matrix (<= 0).
    for (const int sigma : {1, 4, 50, 4096, 0, -1}) {
      expect_roundtrip(a, chunk, sigma);
    }
  }
}

TEST(SellFormat, RoundTripOnDegenerateShapes) {
  // Single row, single column, empty matrix, all-empty rows.
  expect_roundtrip(random_csr(1, 40, 25, 7), 32, 4096);
  expect_roundtrip(random_csr(40, 1, 25, 8), 32, 4096);
  expect_roundtrip(CsrMatrix::from_coo(CooMatrix(17, 9)), 4, 8);
  expect_roundtrip(giant_row_csr(65, 64, 9), 8, 16);
}

TEST(SellFormat, AllEqualDegreesKeepIdentityPermutation) {
  const CsrMatrix a = regular_csr(96, 3, 10);
  const SellMatrix sell = SellMatrix::from_csr(a, 8, 32);
  // Stable sort over equal keys: slot s holds row s, and with uniform row
  // lengths there is zero padding.
  for (vid_t s = 0; s < a.n_rows(); ++s) {
    EXPECT_EQ(sell.perm()[static_cast<std::size_t>(s)], s);
  }
  EXPECT_EQ(sell.stored(), sell.nnz());
  EXPECT_EQ(sell.padding_ratio(), 0.0);
  EXPECT_TRUE(sell.to_csr() == a);
}

TEST(SellFormat, GiantRowPaddingIsWindowLocal) {
  // With the whole matrix as one window the giant row sorts to slot 0 and
  // pollutes only its own chunk; padding = (chunk-1) * (giant - smalls).
  const vid_t n = 64;
  const CsrMatrix a = giant_row_csr(n, n, 11);
  const SellMatrix whole = SellMatrix::from_csr(a, 8, 0);
  EXPECT_EQ(whole.perm()[0], n / 2);  // giant row first
  EXPECT_EQ(whole.stored() - whole.nnz(), static_cast<eid_t>(7) * (n - 1));
  EXPECT_TRUE(whole.to_csr() == a);

  // With sigma == chunk the window containing the giant row pays the same
  // padding but no other window reorders at all.
  const SellMatrix local = SellMatrix::from_csr(a, 8, 8);
  EXPECT_EQ(local.stored(), whole.stored());
  for (vid_t s = 0; s < n; ++s) {
    const vid_t window = s / 8;
    EXPECT_EQ(local.perm()[static_cast<std::size_t>(s)] / 8, window)
        << "slot " << s << " escaped its sigma window";
  }
  EXPECT_TRUE(local.to_csr() == a);
}

TEST(SellFormat, PaddingAccountingMatchesChunkGeometry) {
  const CsrMatrix a = random_csr(100, 60, 900, 12);
  const SellMatrix sell = SellMatrix::from_csr(a, 16, 32);
  // stored() must equal the sum over chunks of width * lanes, recomputable
  // from the public geometry.
  eid_t recomputed = 0;
  for (vid_t k = 0; k < sell.n_chunks(); ++k) {
    const vid_t base = k * 16;
    const vid_t lanes = std::min<vid_t>(16, sell.n_rows() - base);
    vid_t width = 0;
    for (vid_t lane = 0; lane < lanes; ++lane) {
      width = std::max(width, sell.slot_len()[static_cast<std::size_t>(base + lane)]);
    }
    recomputed += static_cast<eid_t>(width) * lanes;
    EXPECT_EQ(sell.chunk_off()[static_cast<std::size_t>(k) + 1] -
                  sell.chunk_off()[static_cast<std::size_t>(k)],
              static_cast<eid_t>(width) * lanes);
  }
  EXPECT_EQ(sell.stored(), recomputed);
  const eid_t slot_sum = std::accumulate(
      sell.slot_len().begin(), sell.slot_len().end(), eid_t{0});
  EXPECT_EQ(slot_sum, sell.nnz());
}

TEST(SellFormat, SpmmParitySweepBitwiseMatchesReference) {
  ThreadCountGuard guard;
  Rng rng(13);
  const struct {
    vid_t rows, cols;
    eid_t nnz;
    vid_t f;
    int chunk, sigma;
  } cases[] = {
      {129, 65, 700, 1, 32, 4096}, {64, 64, 511, 7, 8, 8},
      {1, 40, 25, 7, 32, 0},       {257, 129, 3000, 16, 4, 12},
      {1000, 500, 8000, 64, 32, 128},
  };
  for (const auto& s : cases) {
    const CsrMatrix a = random_csr(s.rows, s.cols, s.nnz, s.rows * 17 + s.f);
    const SellMatrix sell = SellMatrix::from_csr(a, s.chunk, s.sigma);
    const Matrix h = Matrix::random_uniform(s.cols, s.f, rng);
    Matrix want(s.rows, s.f);
    spmm_accumulate_reference(a, h, want);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got(s.rows, s.f);
      spmm_accumulate(sell, h, got);
      EXPECT_TRUE(got == want) << s.rows << "x" << s.cols << " f=" << s.f
                               << " chunk=" << s.chunk << " sigma=" << s.sigma
                               << " threads=" << t;
    }
  }
}

TEST(SellFormat, GiantRowSpmmParity) {
  ThreadCountGuard guard;
  Rng rng(14);
  const CsrMatrix a = giant_row_csr(120, 120, 15);
  const Matrix h = Matrix::random_uniform(120, 16, rng);
  Matrix want(120, 16);
  spmm_accumulate_reference(a, h, want);
  for (const int sigma : {0, 8, 64}) {
    const SellMatrix sell = SellMatrix::from_csr(a, 8, sigma);
    for (int t : kThreadCounts) {
      set_parallel_threads(t);
      Matrix got(120, 16);
      spmm_accumulate(sell, h, got);
      EXPECT_TRUE(got == want) << "sigma=" << sigma << " threads=" << t;
    }
  }
}

TEST(SellFormat, OperandDispatchesBothFormats) {
  ThreadCountGuard guard;
  Rng rng(16);
  const CsrMatrix a = random_csr(90, 45, 600, 17);
  const Matrix h = Matrix::random_uniform(45, 32, rng);
  Matrix want(90, 32);
  spmm_accumulate_reference(a, h, want);

  const SpmmOperand csr_op(a, KernelConfig{});
  EXPECT_EQ(csr_op.format(), SpmmFormat::kCsr);
  EXPECT_EQ(csr_op.sell(), nullptr);

  KernelConfig sell_cfg;
  sell_cfg.format = SpmmFormat::kSell;
  sell_cfg.sell_chunk = 8;
  sell_cfg.sell_sigma = 16;
  const SpmmOperand sell_op(a, sell_cfg);
  EXPECT_EQ(sell_op.format(), SpmmFormat::kSell);
  ASSERT_NE(sell_op.sell(), nullptr);
  EXPECT_EQ(sell_op.sell()->chunk(), 8);

  for (int t : kThreadCounts) {
    set_parallel_threads(t);
    EXPECT_TRUE(spmm(csr_op, h) == want) << "csr threads=" << t;
    EXPECT_TRUE(spmm(sell_op, h) == want) << "sell threads=" << t;
  }
}

}  // namespace
}  // namespace sagnn
