# Doc-snippet compile check (ctest target "doc_snippets"): extract every
# fenced ```cpp block from docs/*.md and README.md and compile it against
# the real headers with -fsyntax-only, so the documentation can never rot
# ahead of the API.
#
# Convention: ```cpp blocks are COMPILED; intentionally-incomplete
# illustrations (pseudo-code, sketches referencing undefined names) use
# the ```c++ fence, which renders identically but is skipped here.
#
# Each snippet becomes its own translation unit. Lines starting with
# #include are hoisted above the harness prelude; the remaining statement
# lines are wrapped in a function whose parameters provide the free names
# the docs use by convention (dataset, config, trainer, cost, ...). A
# #line directive points compiler errors back at the .md source line.
#
# Usage:
#   cmake -DREPO_DIR=... -DOUT_DIR=... -DCXX=... -P CheckDocSnippets.cmake

foreach(var REPO_DIR OUT_DIR CXX)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "CheckDocSnippets.cmake needs -D${var}=...")
  endif()
endforeach()

file(GLOB doc_files ${REPO_DIR}/docs/*.md)
list(APPEND doc_files ${REPO_DIR}/README.md)
file(MAKE_DIRECTORY ${OUT_DIR})

set(prelude "
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include \"bench_support/experiment.hpp\"
#include \"gnn/strategy.hpp\"
#include \"gnn/trainer.hpp\"
#include \"graph/datasets.hpp\"
#include \"simcomm/cost_model.hpp\"
")

set(harness_open "
void doc_snippet([[maybe_unused]] const sagnn::Dataset& dataset,
                 [[maybe_unused]] sagnn::GcnConfig config,
                 [[maybe_unused]] std::unique_ptr<sagnn::Trainer>& trainer,
                 [[maybe_unused]] sagnn::EpochCost cost,
                 [[maybe_unused]] sagnn::TrainResult result) {
  {
")
set(harness_close "
  }
}
")

set(total 0)
set(failed 0)
foreach(doc ${doc_files})
  if(NOT EXISTS ${doc})
    continue()
  endif()
  get_filename_component(doc_name ${doc} NAME_WE)
  file(READ ${doc} content)
  # Line-wise state machine: collect the lines between ```cpp and ```.
  string(REPLACE ";" "\\;" content "${content}")
  string(REGEX REPLACE "\r?\n" ";" lines "${content}")
  set(in_snippet FALSE)
  set(snippet_id 0)
  set(line_no 0)
  foreach(line IN LISTS lines)
    math(EXPR line_no "${line_no} + 1")
    if(NOT in_snippet)
      if(line STREQUAL "```cpp")
        set(in_snippet TRUE)
        set(snippet "")
        set(snippet_includes "")
        math(EXPR snippet_start "${line_no} + 1")
      endif()
    elseif(line MATCHES "^```")
      set(in_snippet FALSE)
      math(EXPR snippet_id "${snippet_id} + 1")
      math(EXPR total "${total} + 1")
      set(tu ${OUT_DIR}/${doc_name}_${snippet_id}.cpp)
      file(WRITE ${tu}
           "${prelude}${snippet_includes}${harness_open}"
           "#line ${snippet_start} \"${doc}\"\n${snippet}${harness_close}")
      execute_process(
        COMMAND ${CXX} -std=c++20 -fsyntax-only -I${REPO_DIR}/src ${tu}
        RESULT_VARIABLE rc
        ERROR_VARIABLE err)
      if(NOT rc EQUAL 0)
        math(EXPR failed "${failed} + 1")
        message(SEND_ERROR
                "doc snippet ${doc_name}#${snippet_id} (${doc}:${snippet_start}) "
                "does not compile:\n${err}")
      endif()
    else()
      string(REPLACE "\\;" ";" code_line "${line}")
      if(code_line MATCHES "^[ \t]*#include")
        string(APPEND snippet_includes "${code_line}\n")
      else()
        string(APPEND snippet "${code_line}\n")
      endif()
    endif()
  endforeach()
  if(in_snippet)
    message(SEND_ERROR "unterminated \`\`\`cpp fence in ${doc}")
  endif()
endforeach()

if(failed GREATER 0)
  message(FATAL_ERROR "${failed} of ${total} doc snippets failed to compile")
endif()
if(total EQUAL 0)
  message(FATAL_ERROR "no \`\`\`cpp snippets found — fence convention broken?")
endif()
message(STATUS "all ${total} doc snippets compile")
