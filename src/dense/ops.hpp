#pragma once
// Elementwise and row-wise dense operations used by GCN training:
// activation sigma, its derivative, Hadamard products, row-softmax.

#include "dense/matrix.hpp"

namespace sagnn {

/// H = relu(Z), elementwise max(0, z).
Matrix relu(const Matrix& z);

/// D = relu'(Z): 1 where z > 0 else 0.
Matrix relu_grad(const Matrix& z);

/// Elementwise product C = A ⊙ B.
Matrix hadamard(const Matrix& a, const Matrix& b);

/// In-place C ⊙= B.
void hadamard_inplace(Matrix& c, const Matrix& b);

/// A += B.
void add_inplace(Matrix& a, const Matrix& b);

/// A += scale * B — the conventional BLAS axpy. SGD steps pass a negative
/// scale (e.g. -lr); the historical subtracting behavior of this function
/// is gone, flipped at every call site.
void axpy_inplace(Matrix& a, const Matrix& b, real_t scale);

/// Row-wise softmax with the max-subtraction trick for stability.
Matrix row_softmax(const Matrix& z);

/// argmax per row (predicted class ids).
std::vector<vid_t> row_argmax(const Matrix& z);

/// Inverted dropout on rows [row_offset, row_offset + m.n_rows()) of a
/// logically-global matrix: element (r, c) is zeroed with probability p and
/// survivors are scaled by 1/(1-p). The mask depends only on
/// (seed, global row, column), NOT on which rank evaluates it — the
/// property that keeps distributed training bit-compatible with serial.
void dropout_rows_deterministic(Matrix& m, real_t p, std::uint64_t seed,
                                vid_t row_offset);

/// Same, but with an explicit identity per row (e.g. ORIGINAL vertex ids
/// after a partitioner permutation). Both overloads agree when
/// row_ids[i] == row_offset + i.
void dropout_rows_deterministic(Matrix& m, real_t p, std::uint64_t seed,
                                std::span<const vid_t> row_ids);

}  // namespace sagnn
