#include "dense/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace sagnn {

Matrix::Matrix(vid_t n_rows, vid_t n_cols)
    : n_rows_(n_rows),
      n_cols_(n_cols),
      data_(static_cast<std::size_t>(n_rows) * n_cols, real_t{0}) {
  SAGNN_REQUIRE(n_rows >= 0 && n_cols >= 0, "matrix dimensions must be non-negative");
}

Matrix::Matrix(vid_t n_rows, vid_t n_cols, std::vector<real_t> data)
    : n_rows_(n_rows), n_cols_(n_cols), data_(std::move(data)) {
  SAGNN_REQUIRE(data_.size() == static_cast<std::size_t>(n_rows) * n_cols,
                "data size must equal n_rows*n_cols");
}

Matrix Matrix::identity(vid_t n) {
  Matrix m(n, n);
  for (vid_t i = 0; i < n; ++i) m(i, i) = real_t{1};
  return m;
}

Matrix Matrix::random_uniform(vid_t n_rows, vid_t n_cols, Rng& rng, real_t lo,
                              real_t hi) {
  Matrix m(n_rows, n_cols);
  for (auto& v : m.data_) v = rng.uniform(lo, hi);
  return m;
}

Matrix Matrix::glorot(vid_t n_rows, vid_t n_cols, Rng& rng) {
  const real_t limit =
      std::sqrt(real_t{6} / static_cast<real_t>(n_rows + n_cols));
  return random_uniform(n_rows, n_cols, rng, -limit, limit);
}

void Matrix::fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::slice_rows(vid_t begin, vid_t end) const {
  SAGNN_REQUIRE(begin >= 0 && begin <= end && end <= n_rows_,
                "slice_rows range out of bounds");
  Matrix out(end - begin, n_cols_);
  std::copy(row(begin), row(begin) + static_cast<std::size_t>(end - begin) * n_cols_,
            out.data());
  return out;
}

Matrix Matrix::slice_cols(vid_t begin, vid_t end) const {
  SAGNN_REQUIRE(begin >= 0 && begin <= end && end <= n_cols_,
                "slice_cols range out of bounds");
  Matrix out(n_rows_, end - begin);
  for (vid_t r = 0; r < n_rows_; ++r) {
    std::copy(row(r) + begin, row(r) + end, out.row(r));
  }
  return out;
}

void Matrix::paste_cols(vid_t begin, const Matrix& src) {
  SAGNN_REQUIRE(src.n_rows() == n_rows_ && begin >= 0 &&
                    begin + src.n_cols() <= n_cols_,
                "paste_cols shape mismatch");
  for (vid_t r = 0; r < n_rows_; ++r) {
    std::copy(src.row(r), src.row(r) + src.n_cols(), row(r) + begin);
  }
}

Matrix Matrix::gather_rows(std::span<const vid_t> rows) const {
  Matrix out(static_cast<vid_t>(rows.size()), n_cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SAGNN_REQUIRE(rows[i] >= 0 && rows[i] < n_rows_, "gather_rows index out of range");
    std::copy(row(rows[i]), row(rows[i]) + n_cols_, out.row(static_cast<vid_t>(i)));
  }
  return out;
}

void Matrix::scatter_rows(std::span<const vid_t> rows, const Matrix& src) {
  SAGNN_REQUIRE(src.n_rows() == static_cast<vid_t>(rows.size()) &&
                    src.n_cols() == n_cols_,
                "scatter_rows shape mismatch");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SAGNN_REQUIRE(rows[i] >= 0 && rows[i] < n_rows_, "scatter_rows index out of range");
    std::copy(src.row(static_cast<vid_t>(i)), src.row(static_cast<vid_t>(i)) + n_cols_,
              row(rows[i]));
  }
}

double Matrix::frobenius_distance(const Matrix& other) const {
  SAGNN_REQUIRE(n_rows_ == other.n_rows_ && n_cols_ == other.n_cols_,
                "shape mismatch");
  double acc = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = static_cast<double>(data_[i]) - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  SAGNN_REQUIRE(n_rows_ == other.n_rows_ && n_cols_ == other.n_cols_,
                "shape mismatch");
  double m = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(data_[i]) - other.data_[i]));
  }
  return m;
}

}  // namespace sagnn
