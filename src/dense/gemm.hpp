#pragma once
// Small dense GEMM kernels. GCN multiplies tall-skinny activations by small
// f x f weight matrices, so a straightforward register-blocked loop nest is
// adequate; no external BLAS dependency.

#include "dense/matrix.hpp"

namespace sagnn {

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C += A * B.
void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B  (A is m x n -> C is n x k). Used for the weight-gradient
/// outer product Y = H^T (A G).
Matrix gemm_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T  (B is k x n -> C is m x k). Used for G W^T in backprop.
Matrix gemm_a_bt(const Matrix& a, const Matrix& b);

}  // namespace sagnn
