#pragma once
// Small dense GEMM kernels. GCN multiplies tall-skinny activations by small
// f x f weight matrices, so a register-blocked loop nest is adequate; no
// external BLAS dependency.
//
// The production kernels run on the shared thread pool
// (common/parallel.hpp) and cache-block the strided-access cases
// (gemm_at_b, gemm_a_bt). Parallel tasks own disjoint tiles of C and every
// C element accumulates its products in the same index order as the
// reference loops, so all kernels are bitwise identical to their
// *_reference twins at every thread count.

#include "dense/matrix.hpp"

namespace sagnn {

/// C = A * B.
Matrix gemm(const Matrix& a, const Matrix& b);

/// C += A * B.
void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B  (A is m x n -> C is n x k). Used for the weight-gradient
/// outer product Y = H^T (A G).
Matrix gemm_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T  (B is k x n -> C is m x k). Used for G W^T in backprop.
Matrix gemm_a_bt(const Matrix& a, const Matrix& b);

/// Single-thread, untiled ground-truth twins, kept for the bitwise-parity
/// tests of the blocked kernels.
void gemm_accumulate_reference(const Matrix& a, const Matrix& b, Matrix& c);
Matrix gemm_at_b_reference(const Matrix& a, const Matrix& b);
Matrix gemm_a_bt_reference(const Matrix& a, const Matrix& b);

}  // namespace sagnn
