#include "dense/ops.hpp"

#include <algorithm>
#include <cmath>

namespace sagnn {

Matrix relu(const Matrix& z) {
  Matrix h(z.n_rows(), z.n_cols());
  const real_t* src = z.data();
  real_t* dst = h.data();
  for (std::size_t i = 0; i < z.size(); ++i) dst[i] = src[i] > 0 ? src[i] : real_t{0};
  return h;
}

Matrix relu_grad(const Matrix& z) {
  Matrix d(z.n_rows(), z.n_cols());
  const real_t* src = z.data();
  real_t* dst = d.data();
  for (std::size_t i = 0; i < z.size(); ++i) dst[i] = src[i] > 0 ? real_t{1} : real_t{0};
  return d;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  hadamard_inplace(c, b);
  return c;
}

void hadamard_inplace(Matrix& c, const Matrix& b) {
  SAGNN_REQUIRE(c.n_rows() == b.n_rows() && c.n_cols() == b.n_cols(),
                "hadamard shape mismatch");
  real_t* cd = c.data();
  const real_t* bd = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) cd[i] *= bd[i];
}

void add_inplace(Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_rows() == b.n_rows() && a.n_cols() == b.n_cols(),
                "add shape mismatch");
  real_t* ad = a.data();
  const real_t* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += bd[i];
}

void axpy_inplace(Matrix& a, const Matrix& b, real_t scale) {
  SAGNN_REQUIRE(a.n_rows() == b.n_rows() && a.n_cols() == b.n_cols(),
                "axpy shape mismatch");
  real_t* ad = a.data();
  const real_t* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += scale * bd[i];
}

Matrix row_softmax(const Matrix& z) {
  Matrix p(z.n_rows(), z.n_cols());
  const vid_t f = z.n_cols();
  for (vid_t r = 0; r < z.n_rows(); ++r) {
    const real_t* zr = z.row(r);
    real_t* pr = p.row(r);
    real_t m = zr[0];
    for (vid_t j = 1; j < f; ++j) m = std::max(m, zr[j]);
    real_t sum = 0;
    for (vid_t j = 0; j < f; ++j) {
      pr[j] = std::exp(zr[j] - m);
      sum += pr[j];
    }
    const real_t inv = real_t{1} / sum;
    for (vid_t j = 0; j < f; ++j) pr[j] *= inv;
  }
  return p;
}

namespace {
inline void dropout_one_row(real_t* row, vid_t cols, real_t p, real_t scale,
                            std::uint64_t seed, vid_t identity) {
  // One independent stream per row IDENTITY: rank/permutation invariant.
  Rng row_rng = Rng(seed).fork(static_cast<std::uint64_t>(identity) + 1);
  for (vid_t c = 0; c < cols; ++c) {
    row[c] = row_rng.bernoulli(p) ? real_t{0} : row[c] * scale;
  }
}
}  // namespace

void dropout_rows_deterministic(Matrix& m, real_t p, std::uint64_t seed,
                                vid_t row_offset) {
  SAGNN_REQUIRE(p >= 0.0f && p < 1.0f, "dropout probability must be in [0,1)");
  if (p == 0.0f) return;
  const real_t scale = real_t{1} / (real_t{1} - p);
  for (vid_t r = 0; r < m.n_rows(); ++r) {
    dropout_one_row(m.row(r), m.n_cols(), p, scale, seed, row_offset + r);
  }
}

void dropout_rows_deterministic(Matrix& m, real_t p, std::uint64_t seed,
                                std::span<const vid_t> row_ids) {
  SAGNN_REQUIRE(p >= 0.0f && p < 1.0f, "dropout probability must be in [0,1)");
  SAGNN_REQUIRE(row_ids.size() == static_cast<std::size_t>(m.n_rows()),
                "one identity per row required");
  if (p == 0.0f) return;
  const real_t scale = real_t{1} / (real_t{1} - p);
  for (vid_t r = 0; r < m.n_rows(); ++r) {
    dropout_one_row(m.row(r), m.n_cols(), p, scale, seed,
                    row_ids[static_cast<std::size_t>(r)]);
  }
}

std::vector<vid_t> row_argmax(const Matrix& z) {
  std::vector<vid_t> out(static_cast<std::size_t>(z.n_rows()));
  for (vid_t r = 0; r < z.n_rows(); ++r) {
    const real_t* zr = z.row(r);
    vid_t best = 0;
    for (vid_t j = 1; j < z.n_cols(); ++j) {
      if (zr[j] > zr[best]) best = j;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace sagnn
