#pragma once
// Row-major dense matrix of real_t. This is the container for the
// tall-skinny activation/feature matrices H, Z, G and the small square
// weight matrices W of GCN training.

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace sagnn {

class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized n_rows x n_cols matrix.
  Matrix(vid_t n_rows, vid_t n_cols);

  /// Construct from existing row-major data (size must be n_rows*n_cols).
  Matrix(vid_t n_rows, vid_t n_cols, std::vector<real_t> data);

  static Matrix zeros(vid_t n_rows, vid_t n_cols) { return Matrix(n_rows, n_cols); }
  static Matrix identity(vid_t n);
  /// I.i.d. uniform [lo, hi) entries from `rng`.
  static Matrix random_uniform(vid_t n_rows, vid_t n_cols, Rng& rng,
                               real_t lo = -1, real_t hi = 1);
  /// Glorot/Xavier uniform init for a weight matrix (fan_in = rows, fan_out = cols).
  static Matrix glorot(vid_t n_rows, vid_t n_cols, Rng& rng);

  vid_t n_rows() const { return n_rows_; }
  vid_t n_cols() const { return n_cols_; }
  std::size_t size() const { return data_.size(); }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  real_t* row(vid_t r) { return data_.data() + static_cast<std::size_t>(r) * n_cols_; }
  const real_t* row(vid_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * n_cols_;
  }
  std::span<real_t> row_span(vid_t r) { return {row(r), static_cast<std::size_t>(n_cols_)}; }
  std::span<const real_t> row_span(vid_t r) const {
    return {row(r), static_cast<std::size_t>(n_cols_)};
  }

  real_t& operator()(vid_t r, vid_t c) {
    return data_[static_cast<std::size_t>(r) * n_cols_ + c];
  }
  real_t operator()(vid_t r, vid_t c) const {
    return data_[static_cast<std::size_t>(r) * n_cols_ + c];
  }

  void fill(real_t v);
  void set_zero() { fill(real_t{0}); }

  /// Extract rows [begin, end) as a new matrix.
  Matrix slice_rows(vid_t begin, vid_t end) const;

  /// Extract columns [begin, end) as a new matrix. Used by the pipelined
  /// strategies, which process the feature dimension in column chunks.
  Matrix slice_cols(vid_t begin, vid_t end) const;

  /// Copy `src` into columns [begin, begin + src.n_cols()) of *this*
  /// (inverse of slice_cols; row counts must match).
  void paste_cols(vid_t begin, const Matrix& src);

  /// Gather the given rows (in order) into a new matrix. Used by the
  /// sparsity-aware pack step (T <- H[NnzCols]).
  Matrix gather_rows(std::span<const vid_t> rows) const;

  /// Scatter `src` into the given rows of *this* (inverse of gather_rows).
  void scatter_rows(std::span<const vid_t> rows, const Matrix& src);

  /// Frobenius norm of (*this - other); both shapes must match.
  double frobenius_distance(const Matrix& other) const;
  /// Max absolute elementwise difference.
  double max_abs_diff(const Matrix& other) const;

  bool operator==(const Matrix& o) const = default;

 private:
  vid_t n_rows_ = 0;
  vid_t n_cols_ = 0;
  std::vector<real_t> data_;
};

}  // namespace sagnn
