#include "dense/gemm.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/width_dispatch.hpp"

namespace sagnn {

namespace {

/// C rows [row_begin, row_end) of C += A * B, ikj order: streams through B
/// rows, C row stays hot. Per-element accumulation order is p ascending —
/// the order the reference kernel uses.
inline void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c,
                      vid_t row_begin, vid_t row_end) {
  const vid_t n = a.n_cols(), k = b.n_cols();
  for (vid_t i = row_begin; i < row_end; ++i) {
    const real_t* ai = a.row(i);
    real_t* ci = c.row(i);
    for (vid_t p = 0; p < n; ++p) {
      const real_t aip = ai[p];
      const real_t* bp = b.row(p);
      for (vid_t j = 0; j < k; ++j) ci[j] += aip * bp[j];
    }
  }
}

// Tile edges for the strided kernels: C tiles stay register/L1-resident
// while the long m dimension streams past.
constexpr vid_t kTileP = 48;
constexpr vid_t kTileJ = 64;

// Width-specialized twins of the three production bodies, templated on the
// dimension their innermost loop runs over (common/width_dispatch.hpp):
// output width k for C += A*B and A^T B, dot length n for A B^T. The
// generic instantiation (kDynamicWidth) reads the width at runtime and is
// textually the same loop; fixed widths let the compiler unroll/vectorize.
// Expression and accumulation order are unchanged everywhere, so every
// instantiation stays bitwise equal to its *_reference twin.

/// C rows [row_begin, row_end) of C += A * B with b.n_cols() == K.
template <int K>
struct GemmRowKernel {
  static void run(const Matrix& a, const Matrix& b, Matrix& c,
                  vid_t row_begin, vid_t row_end) {
    const vid_t n = a.n_cols();
    const vid_t k = K == kDynamicWidth ? b.n_cols() : K;
    for (vid_t i = row_begin; i < row_end; ++i) {
      const real_t* ai = a.row(i);
      real_t* ci = c.row(i);
      for (vid_t p = 0; p < n; ++p) {
        const real_t aip = ai[p];
        const real_t* bp = b.row(p);
        for (vid_t j = 0; j < k; ++j) ci[j] += aip * bp[j];
      }
    }
  }
};

/// C tiles [t_begin, t_end) of C = A^T B with b.n_cols() == K; `tj` is the
/// j-tile count the task index decomposes against.
template <int K>
struct GemmAtBTileKernel {
  static void run(const Matrix& a, const Matrix& b, Matrix& c,
                  std::int64_t t_begin, std::int64_t t_end, std::int64_t tj) {
    const vid_t m = a.n_rows(), n = a.n_cols();
    const vid_t k = K == kDynamicWidth ? b.n_cols() : K;
    for (std::int64_t t = t_begin; t < t_end; ++t) {
      const vid_t p0 = static_cast<vid_t>(t / tj) * kTileP;
      const vid_t j0 = static_cast<vid_t>(t % tj) * kTileJ;
      const vid_t p1 = std::min<vid_t>(p0 + kTileP, n);
      const vid_t j1 = std::min<vid_t>(j0 + kTileJ, k);
      for (vid_t i = 0; i < m; ++i) {
        const real_t* ai = a.row(i);
        const real_t* bi = b.row(i);
        for (vid_t p = p0; p < p1; ++p) {
          const real_t aip = ai[p];
          real_t* cp = c.row(p);
          for (vid_t j = j0; j < j1; ++j) cp[j] += aip * bi[j];
        }
      }
    }
  }
};

/// C rows [row_begin, row_end) of C = A B^T with a.n_cols() == N (the dot
/// length). Fixed N lets the compiler unroll the sequential dot.
template <int N>
struct GemmABtRowKernel {
  static void run(const Matrix& a, const Matrix& b, Matrix& c,
                  vid_t row_begin, vid_t row_end) {
    const vid_t n = N == kDynamicWidth ? a.n_cols() : N;
    const vid_t k = b.n_rows();
    for (vid_t j0 = 0; j0 < k; j0 += kTileJ) {
      const vid_t j1 = std::min<vid_t>(j0 + kTileJ, k);
      for (vid_t i = row_begin; i < row_end; ++i) {
        const real_t* ai = a.row(i);
        real_t* ci = c.row(i);
        for (vid_t j = j0; j < j1; ++j) {
          const real_t* bj = b.row(j);
          real_t acc = 0;
          for (vid_t p = 0; p < n; ++p) acc += ai[p] * bj[p];
          ci[j] = acc;
        }
      }
    }
  }
};

}  // namespace

void gemm_accumulate_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  SAGNN_REQUIRE(a.n_cols() == b.n_rows(), "GEMM: inner dimensions must agree");
  SAGNN_REQUIRE(c.n_rows() == a.n_rows() && c.n_cols() == b.n_cols(),
                "GEMM: C shape mismatch");
  gemm_rows(a, b, c, 0, a.n_rows());
}

void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  SAGNN_REQUIRE(a.n_cols() == b.n_rows(), "GEMM: inner dimensions must agree");
  SAGNN_REQUIRE(c.n_rows() == a.n_rows() && c.n_cols() == b.n_cols(),
                "GEMM: C shape mismatch");
  const vid_t m = a.n_rows();
  const auto rows_fn = select_by_width<GemmRowKernel>(b.n_cols());
  // Tasks own disjoint row blocks of C; within a row nothing is reordered,
  // so this is bitwise identical to the reference at any thread count.
  parallel_for(0, m, parallel_grain(m), [&](std::int64_t rb, std::int64_t re) {
    rows_fn(a, b, c, static_cast<vid_t>(rb), static_cast<vid_t>(re));
  });
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.n_rows(), b.n_cols());
  gemm_accumulate(a, b, c);
  return c;
}

Matrix gemm_at_b_reference(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_rows() == b.n_rows(), "A^T B: row counts must agree");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_cols();
  Matrix c(n, k);
  for (vid_t i = 0; i < m; ++i) {
    const real_t* ai = a.row(i);
    const real_t* bi = b.row(i);
    for (vid_t p = 0; p < n; ++p) {
      const real_t aip = ai[p];
      real_t* cp = c.row(p);
      for (vid_t j = 0; j < k; ++j) cp[j] += aip * bi[j];
    }
  }
  return c;
}

Matrix gemm_at_b(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_rows() == b.n_rows(), "A^T B: row counts must agree");
  const vid_t n = a.n_cols(), k = b.n_cols();
  Matrix c(n, k);
  // C = A^T B accumulates over the long m dimension; that order must stay
  // i-ascending per C element (bitwise parity with the reference), so the
  // kernel tiles and parallelizes over C itself: each (p, j) tile of C is
  // owned by one task that streams the m dimension once. The tile of C
  // stays cache-hot while A's column slice and B's column slice are read
  // with the same stride the reference pays.
  const std::int64_t tp = ceil_div(n, kTileP), tj = ceil_div(k, kTileJ);
  const auto tiles_fn = select_by_width<GemmAtBTileKernel>(k);
  parallel_for(0, tp * tj, 1, [&](std::int64_t tb, std::int64_t te) {
    tiles_fn(a, b, c, tb, te, tj);
  });
  return c;
}

Matrix gemm_a_bt_reference(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_cols() == b.n_cols(), "A B^T: col counts must agree");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_rows();
  Matrix c(m, k);
  for (vid_t i = 0; i < m; ++i) {
    const real_t* ai = a.row(i);
    real_t* ci = c.row(i);
    for (vid_t j = 0; j < k; ++j) {
      const real_t* bj = b.row(j);
      real_t acc = 0;
      for (vid_t p = 0; p < n; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
  return c;
}

Matrix gemm_a_bt(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_cols() == b.n_cols(), "A B^T: col counts must agree");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_rows();
  Matrix c(m, k);
  // Row blocks of C parallelize over the long m dimension; the j tile keeps
  // a block of B rows hot across the whole row block instead of cycling the
  // full B through cache once per output row. Each dot product still runs
  // p-ascending into a single accumulator — bitwise parity preserved.
  const auto rows_fn = select_by_width<GemmABtRowKernel>(n);
  parallel_for(0, m, parallel_grain(m), [&](std::int64_t rb, std::int64_t re) {
    rows_fn(a, b, c, static_cast<vid_t>(rb), static_cast<vid_t>(re));
  });
  return c;
}

}  // namespace sagnn
