#include "dense/gemm.hpp"

namespace sagnn {

void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  SAGNN_REQUIRE(a.n_cols() == b.n_rows(), "GEMM: inner dimensions must agree");
  SAGNN_REQUIRE(c.n_rows() == a.n_rows() && c.n_cols() == b.n_cols(),
                "GEMM: C shape mismatch");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_cols();
  for (vid_t i = 0; i < m; ++i) {
    const real_t* ai = a.row(i);
    real_t* ci = c.row(i);
    // ikj order: streams through B rows, C row stays hot.
    for (vid_t p = 0; p < n; ++p) {
      const real_t aip = ai[p];
      const real_t* bp = b.row(p);
      for (vid_t j = 0; j < k; ++j) ci[j] += aip * bp[j];
    }
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.n_rows(), b.n_cols());
  gemm_accumulate(a, b, c);
  return c;
}

Matrix gemm_at_b(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_rows() == b.n_rows(), "A^T B: row counts must agree");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_cols();
  Matrix c(n, k);
  for (vid_t i = 0; i < m; ++i) {
    const real_t* ai = a.row(i);
    const real_t* bi = b.row(i);
    for (vid_t p = 0; p < n; ++p) {
      const real_t aip = ai[p];
      real_t* cp = c.row(p);
      for (vid_t j = 0; j < k; ++j) cp[j] += aip * bi[j];
    }
  }
  return c;
}

Matrix gemm_a_bt(const Matrix& a, const Matrix& b) {
  SAGNN_REQUIRE(a.n_cols() == b.n_cols(), "A B^T: col counts must agree");
  const vid_t m = a.n_rows(), n = a.n_cols(), k = b.n_rows();
  Matrix c(m, k);
  for (vid_t i = 0; i < m; ++i) {
    const real_t* ai = a.row(i);
    real_t* ci = c.row(i);
    for (vid_t j = 0; j < k; ++j) {
      const real_t* bj = b.row(j);
      real_t acc = 0;
      for (vid_t p = 0; p < n; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
  return c;
}

}  // namespace sagnn
