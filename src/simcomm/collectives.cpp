// Collectives are header-only templates (collectives.hpp). This TU exists
// to give the header a home in the build graph and to host non-template
// helpers if they appear later.
#include "simcomm/collectives.hpp"

namespace sagnn {
namespace coll_detail {
// Intentionally empty.
}
}  // namespace sagnn
