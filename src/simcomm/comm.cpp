#include "simcomm/comm.hpp"

#include <algorithm>
#include <chrono>

namespace sagnn {

CommWorld::CommWorld(int size) : size_(size), traffic_(size) {
  SAGNN_REQUIRE(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

double CommWorld::now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Request CommWorld::isend(int src, int dst, long tag,
                         std::span<const std::byte> data,
                         const std::string& phase) {
  SAGNN_REQUIRE(src >= 0 && src < size_ && dst >= 0 && dst < size_,
                "send rank out of range");
  traffic_.record(phase, src, dst, data.size());
  const double sent_at = now_seconds();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    const std::uint64_t seq = box.arrival_seq[key]++;
    auto abandoned_it = box.abandoned.find(key);
    if (abandoned_it != box.abandoned.end() &&
        abandoned_it->second.erase(seq) > 0) {
      // The receive for this slot was destroyed unwaited; drop the payload
      // so later slots keep matching their own messages.
      if (abandoned_it->second.empty()) box.abandoned.erase(abandoned_it);
    } else {
      box.messages.push_back({src, tag, seq, sent_at, {data.begin(), data.end()}});
    }
  }
  box.cv.notify_all();
  return Request(this, Request::Kind::kSend, dst, src, tag, 0, sent_at);
}

Request CommWorld::irecv(int me, int src, long tag) {
  SAGNN_REQUIRE(me >= 0 && me < size_ && src >= 0 && src < size_,
                "recv rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(box.mutex);
    seq = box.posted_seq[std::make_pair(src, tag)]++;
  }
  return Request(this, Request::Kind::kRecv, me, src, tag, seq, now_seconds());
}

void CommWorld::send(int src, int dst, long tag, std::span<const std::byte> data,
                     const std::string& phase) {
  (void)isend(src, dst, tag, data, phase);
}

std::vector<std::byte> CommWorld::recv(int me, int src, long tag) {
  return irecv(me, src, tag).wait();
}

std::vector<std::byte> CommWorld::wait_recv(int me, int src, long tag,
                                            std::uint64_t seq, double posted_at,
                                            WaitStats* stats) {
  const double wait_begin = now_seconds();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag && m.seq == seq;
                           });
    if (it != box.messages.end()) {
      if (stats != nullptr) {
        // Hidden: in-flight time covered before wait() was entered (clamped
        // to the post time — a message sent before the receive was posted
        // hid nothing). Blocked: the stall inside this wait.
        stats->hidden =
            std::max(0.0, std::min(wait_begin, it->sent_at) - posted_at);
        stats->blocked = std::max(0.0, now_seconds() - wait_begin);
      }
      std::vector<std::byte> data = std::move(it->data);
      box.messages.erase(it);
      return data;
    }
    if (aborted()) throw AbortedError();
    box.cv.wait(lock);
  }
}

void CommWorld::abandon_recv(int me, int src, long tag, std::uint64_t seq) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::lock_guard lock(box.mutex);
  auto it = std::find_if(box.messages.begin(), box.messages.end(),
                         [&](const Message& m) {
                           return m.src == src && m.tag == tag && m.seq == seq;
                         });
  if (it != box.messages.end()) {
    box.messages.erase(it);
  } else {
    box.abandoned[std::make_pair(src, tag)].insert(seq);
  }
}

std::vector<std::byte> Request::wait(WaitStats* stats) {
  if (state_ == State::kDone) {
    throw RequestError("wait() called twice on the same request");
  }
  if (state_ != State::kPending) {
    throw RequestError("wait() on an empty (default or moved-from) request");
  }
  // Consumed either way: an AbortedError escape must not leave a handle the
  // destructor would try to abandon against a torn-down stream.
  state_ = State::kDone;
  if (kind_ == Kind::kSend) {
    if (stats != nullptr) *stats = {};
    return {};
  }
  return world_->wait_recv(me_, src_, tag_, seq_, posted_at_, stats);
}

void Request::release() {
  if (state_ == State::kPending && kind_ == Kind::kRecv) {
    world_->abandon_recv(me_, src_, tag_, seq_);
  }
  world_ = nullptr;
  state_ = State::kEmpty;
}

std::vector<std::vector<std::byte>> waitall(std::span<Request> requests,
                                            WaitStats* accumulated) {
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(requests.size());
  for (Request& r : requests) {
    WaitStats stats;
    payloads.push_back(r.wait(&stats));
    if (accumulated != nullptr) {
      accumulated->hidden += stats.hidden;
      accumulated->blocked += stats.blocked;
    }
  }
  return payloads;
}

void CommWorld::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

Comm::Comm(CommWorld& world, int rank) : world_(&world), rank_(rank) {
  SAGNN_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
  members_.resize(static_cast<std::size_t>(world.size()));
  for (int i = 0; i < world.size(); ++i) members_[static_cast<std::size_t>(i)] = i;
}

void Comm::barrier() {
  const int p = size();
  const long epoch = barrier_epoch_++;
  if (p == 1) return;
  // Dissemination barrier: ceil(log2 p) rounds of token passing. Recorded
  // under the "sync" phase; cost models typically exclude it (the paper's
  // alpha-beta analysis does not charge barriers).
  const std::byte token{0};
  for (int k = 0, dist = 1; dist < p; ++k, dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    world_->send(world_rank(rank_), world_rank(to),
                 stamp(kBarrierTagBase + epoch * 64 + k), {&token, 1}, "sync");
    (void)world_->recv(world_rank(rank_), world_rank(from),
                       stamp(kBarrierTagBase + epoch * 64 + k));
  }
}

Comm Comm::split(const std::function<int(int)>& color_of) const {
  const int my_color = color_of(rank_);
  Comm out;
  out.world_ = world_;
  const long seq = split_seq_;
  // split_seq_ advances on the parent so a later split() from the same
  // parent gets a different communicator id even with equal colors.
  const_cast<Comm*>(this)->split_seq_++;
  for (int r = 0; r < size(); ++r) {
    if (color_of(r) == my_color) {
      if (r == rank_) out.rank_ = static_cast<int>(out.members_.size());
      out.members_.push_back(world_rank(r));
    }
  }
  SAGNN_CHECK(out.rank_ >= 0);
  out.comm_id_ = comm_id_ * 1000003L + seq * 1009L + my_color + 1;
  return out;
}

}  // namespace sagnn
