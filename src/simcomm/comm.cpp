#include "simcomm/comm.hpp"

#include <algorithm>

namespace sagnn {

CommWorld::CommWorld(int size) : size_(size), traffic_(size) {
  SAGNN_REQUIRE(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void CommWorld::send(int src, int dst, long tag, std::span<const std::byte> data,
                     const std::string& phase) {
  SAGNN_REQUIRE(src >= 0 && src < size_ && dst >= 0 && dst < size_,
                "send rank out of range");
  traffic_.record(phase, src, dst, data.size());
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mutex);
    box.messages.push_back({src, tag, {data.begin(), data.end()}});
  }
  box.cv.notify_all();
}

std::vector<std::byte> CommWorld::recv(int me, int src, long tag) {
  SAGNN_REQUIRE(me >= 0 && me < size_ && src >= 0 && src < size_,
                "recv rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Message& m) { return m.src == src && m.tag == tag; });
    if (it != box.messages.end()) {
      std::vector<std::byte> data = std::move(it->data);
      box.messages.erase(it);
      return data;
    }
    if (aborted()) throw AbortedError();
    box.cv.wait(lock);
  }
}

void CommWorld::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

Comm::Comm(CommWorld& world, int rank) : world_(&world), rank_(rank) {
  SAGNN_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
  members_.resize(static_cast<std::size_t>(world.size()));
  for (int i = 0; i < world.size(); ++i) members_[static_cast<std::size_t>(i)] = i;
}

void Comm::barrier() {
  const int p = size();
  const long epoch = barrier_epoch_++;
  if (p == 1) return;
  // Dissemination barrier: ceil(log2 p) rounds of token passing. Recorded
  // under the "sync" phase; cost models typically exclude it (the paper's
  // alpha-beta analysis does not charge barriers).
  const std::byte token{0};
  for (int k = 0, dist = 1; dist < p; ++k, dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    world_->send(world_rank(rank_), world_rank(to),
                 stamp(kBarrierTagBase + epoch * 64 + k), {&token, 1}, "sync");
    (void)world_->recv(world_rank(rank_), world_rank(from),
                       stamp(kBarrierTagBase + epoch * 64 + k));
  }
}

Comm Comm::split(const std::function<int(int)>& color_of) const {
  const int my_color = color_of(rank_);
  Comm out;
  out.world_ = world_;
  const long seq = split_seq_;
  // split_seq_ advances on the parent so a later split() from the same
  // parent gets a different communicator id even with equal colors.
  const_cast<Comm*>(this)->split_seq_++;
  for (int r = 0; r < size(); ++r) {
    if (color_of(r) == my_color) {
      if (r == rank_) out.rank_ = static_cast<int>(out.members_.size());
      out.members_.push_back(world_rank(r));
    }
  }
  SAGNN_CHECK(out.rank_ >= 0);
  out.comm_id_ = comm_id_ * 1000003L + seq * 1009L + my_color + 1;
  return out;
}

}  // namespace sagnn
