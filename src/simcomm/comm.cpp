#include "simcomm/comm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "simcomm/fault.hpp"

namespace sagnn {

namespace {
std::chrono::duration<double> secs(double s) {
  return std::chrono::duration<double>(s);
}
}  // namespace

CommWorld::CommWorld(int size) : size_(size), traffic_(size) {
  SAGNN_REQUIRE(size > 0, "world size must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void CommWorld::install_fault_plan(std::shared_ptr<const FaultPlan> plan) {
  fault_plan_ = std::move(plan);
  if (fault_plan_ != nullptr && epoch_sends_ == nullptr) {
    epoch_sends_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) epoch_sends_[static_cast<std::size_t>(r)] = 0;
  }
}

void CommWorld::begin_fault_epoch(int epoch) {
  SAGNN_REQUIRE(epoch >= 0, "fault epoch must be >= 0");
  if (fault_plan_ == nullptr) return;
  for (int r = 0; r < size_; ++r) {
    epoch_sends_[static_cast<std::size_t>(r)].store(0, std::memory_order_relaxed);
  }
  fault_epoch_.store(epoch, std::memory_order_release);
}

void CommWorld::poll_fault(int rank) {
  const FaultPlan* plan = fault_plan_.get();
  if (plan == nullptr || !plan->has_kills()) return;
  const int epoch = fault_epoch_.load(std::memory_order_acquire);
  if (epoch < 0) return;
  plan->maybe_kill(
      rank, epoch,
      epoch_sends_[static_cast<std::size_t>(rank)].load(std::memory_order_relaxed));
}

double CommWorld::now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CommWorld::deposit(Mailbox& box, Message&& msg) {
  const bool duplicate =
      std::any_of(box.messages.begin(), box.messages.end(), [&](const Message& m) {
        return m.src == msg.src && m.tag == msg.tag && m.seq == msg.seq;
      });
  if (!duplicate) box.messages.push_back(std::move(msg));
  return !duplicate;
}

Request CommWorld::isend(int src, int dst, long tag,
                         std::span<const std::byte> data,
                         const std::string& phase) {
  SAGNN_REQUIRE(src >= 0 && src < size_ && dst >= 0 && dst < size_,
                "send rank out of range");
  const FaultPlan* plan = fault_plan_.get();
  if (plan != nullptr && src != dst) {
    // Scheduled kills fire on the victim's own thread at its send
    // boundaries (the epoch-top poll covers the after_sends == 0 case).
    const int epoch = fault_epoch_.load(std::memory_order_acquire);
    if (epoch >= 0 && plan->has_kills()) {
      const std::uint64_t done = epoch_sends_[static_cast<std::size_t>(src)]
                                     .fetch_add(1, std::memory_order_relaxed);
      plan->maybe_kill(src, epoch, done);
    }
    // Straggler: the slow rank pays its delay before every cross-rank
    // send, so its peers' blocked time rises in the overlap ledger exactly
    // as a real straggler's would.
    const double delay = plan->send_delay(src);
    if (delay > 0) {
      std::this_thread::sleep_for(secs(delay));
      traffic_.record_straggler(delay);
    }
  }
  traffic_.record(phase, src, dst, data.size());
  const double sent_at = now_seconds();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  bool dropped = false;
  bool duplicated = false;
  {
    std::lock_guard lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    const std::uint64_t seq = box.arrival_seq[key]++;
    auto abandoned_it = box.abandoned.find(key);
    if (abandoned_it != box.abandoned.end() &&
        abandoned_it->second.erase(seq) > 0) {
      // The receive for this slot was destroyed unwaited; drop the payload
      // so later slots keep matching their own messages.
      if (abandoned_it->second.empty()) box.abandoned.erase(abandoned_it);
    } else if (plan != nullptr && plan->should_drop(src, dst, tag, seq, 1)) {
      // The link swallowed the transmission. The payload parks in the
      // receiver's retransmit store — it still consumed its arrival seq,
      // so the retransmission matches the same posted receive.
      box.dropped.emplace(std::make_tuple(src, tag, seq),
                          DroppedMessage{1, sent_at, {data.begin(), data.end()}});
      dropped = true;
    } else {
      Message msg{src, tag, seq, sent_at, {data.begin(), data.end()}};
      if (plan != nullptr && plan->should_duplicate(src, dst, tag, seq, 1)) {
        // A flaky link delivers twice; the redundant copy must be
        // suppressed by its sequence number.
        Message copy = msg;
        (void)deposit(box, std::move(msg));
        duplicated = !deposit(box, std::move(copy));
      } else {
        (void)deposit(box, std::move(msg));
      }
    }
  }
  if (dropped) traffic_.record_fault_drop();
  if (duplicated) traffic_.record_fault_duplicate();
  box.cv.notify_all();
  return Request(this, Request::Kind::kSend, dst, src, tag, 0, sent_at);
}

Request CommWorld::irecv(int me, int src, long tag) {
  SAGNN_REQUIRE(me >= 0 && me < size_ && src >= 0 && src < size_,
                "recv rank out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(box.mutex);
    seq = box.posted_seq[std::make_pair(src, tag)]++;
  }
  return Request(this, Request::Kind::kRecv, me, src, tag, seq, now_seconds());
}

void CommWorld::send(int src, int dst, long tag, std::span<const std::byte> data,
                     const std::string& phase) {
  (void)isend(src, dst, tag, data, phase);
}

std::vector<std::byte> CommWorld::recv(int me, int src, long tag) {
  return irecv(me, src, tag).wait();
}

std::vector<std::byte> CommWorld::wait_recv(int me, int src, long tag,
                                            std::uint64_t seq, double posted_at,
                                            WaitStats* stats) {
  const double wait_begin = now_seconds();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  const FaultPlan* plan = fault_plan_.get();
  const bool lossy = plan != nullptr && plan->lossy(src, me);
  std::unique_lock lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Message& m) {
                             return m.src == src && m.tag == tag && m.seq == seq;
                           });
    if (it != box.messages.end()) {
      if (stats != nullptr) {
        // Hidden: in-flight time covered before wait() was entered (clamped
        // to the post time — a message sent before the receive was posted
        // hid nothing). Blocked: the stall inside this wait.
        stats->hidden =
            std::max(0.0, std::min(wait_begin, it->sent_at) - posted_at);
        stats->blocked = std::max(0.0, now_seconds() - wait_begin);
      }
      std::vector<std::byte> data = std::move(it->data);
      box.messages.erase(it);
      return data;
    }
    if (aborted()) throw AbortedError();
    if (!lossy) {
      box.cv.wait(lock);
      continue;
    }

    // Lossy link: never block forever on a message the link may have
    // swallowed. Time out (exponential backoff per attempt), consult the
    // retransmit store, and drive the bounded-retry protocol. Timing only
    // affects wall-clock — drop outcomes are hash-keyed by attempt number,
    // so the delivered payload stream is deterministic.
    const auto key = std::make_tuple(src, tag, seq);
    auto parked = box.dropped.find(key);
    if (parked == box.dropped.end()) {
      // Nothing known-dropped for this slot: the message may simply not
      // have been sent yet. Poll with the base timeout so a later drop is
      // noticed (a real receiver cannot tell the two cases apart either).
      if (box.cv.wait_for(lock, secs(plan->retry_timeout(1))) ==
          std::cv_status::timeout) {
        traffic_.record_fault_timeout();
      }
      continue;
    }
    const std::uint64_t attempts = parked->second.attempts;
    if (attempts >= static_cast<std::uint64_t>(plan->max_attempts())) {
      box.dropped.erase(parked);
      throw FaultError("link " + std::to_string(src) + "->" +
                       std::to_string(me) + " lost message (tag " +
                       std::to_string(tag) + ", seq " + std::to_string(seq) +
                       "): retry budget of " +
                       std::to_string(plan->max_attempts()) +
                       " attempts exhausted");
    }
    // Back off for this attempt's full timeout before the retransmission
    // fires. Notifies for unrelated traffic on this mailbox must not cut
    // the backoff short: nothing but our own retransmission can deliver
    // this (src, tag, seq) slot, and the protocol invariant
    // timeouts >= retries holds only if every retry is timeout-driven.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            secs(plan->retry_timeout(attempts)));
    while (box.cv.wait_until(lock, deadline) != std::cv_status::timeout) {
      if (aborted()) throw AbortedError();
    }
    traffic_.record_fault_timeout();
    if (aborted()) throw AbortedError();
    parked = box.dropped.find(key);  // wait_for released the lock
    if (parked == box.dropped.end()) continue;
    const std::uint64_t attempt = ++parked->second.attempts;
    traffic_.record_fault_retry();
    // The retransmission puts real bytes back on the wire; account them.
    traffic_.record("retry", src, me, parked->second.data.size());
    if (plan->should_drop(src, me, tag, seq, attempt)) {
      traffic_.record_fault_drop();
      continue;  // dropped again; the next cycle backs off longer
    }
    Message msg{src, tag, seq, now_seconds(), std::move(parked->second.data)};
    box.dropped.erase(parked);
    if (plan->should_duplicate(src, me, tag, seq, attempt)) {
      Message copy = msg;
      (void)deposit(box, std::move(msg));
      if (!deposit(box, std::move(copy))) traffic_.record_fault_duplicate();
    } else {
      (void)deposit(box, std::move(msg));
    }
    // Delivered: the next loop iteration claims it.
  }
}

void CommWorld::abandon_recv(int me, int src, long tag, std::uint64_t seq) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(me)];
  std::lock_guard lock(box.mutex);
  auto it = std::find_if(box.messages.begin(), box.messages.end(),
                         [&](const Message& m) {
                           return m.src == src && m.tag == tag && m.seq == seq;
                         });
  if (it != box.messages.end()) {
    box.messages.erase(it);
  } else if (box.dropped.erase(std::make_tuple(src, tag, seq)) == 0) {
    // Not arrived and not parked in the retransmit store: mark the slot so
    // the future arrival is dropped on sight.
    box.abandoned[std::make_pair(src, tag)].insert(seq);
  }
}

std::vector<std::byte> Request::wait(WaitStats* stats) {
  if (state_ == State::kDone) {
    throw RequestError("wait() called twice on the same request");
  }
  if (state_ != State::kPending) {
    throw RequestError("wait() on an empty (default or moved-from) request");
  }
  // Consumed either way: an AbortedError escape must not leave a handle the
  // destructor would try to abandon against a torn-down stream.
  state_ = State::kDone;
  if (kind_ == Kind::kSend) {
    if (stats != nullptr) *stats = {};
    return {};
  }
  return world_->wait_recv(me_, src_, tag_, seq_, posted_at_, stats);
}

void Request::release() {
  if (state_ == State::kPending && kind_ == Kind::kRecv) {
    world_->abandon_recv(me_, src_, tag_, seq_);
  }
  world_ = nullptr;
  state_ = State::kEmpty;
}

void resolve_aborted(std::span<Request> requests) {
  for (Request& r : requests) {
    if (!r.valid()) continue;
    try {
      (void)r.wait();  // immediate: waits on an aborted world never block
    } catch (const AbortedError&) {
    }
  }
}

std::vector<std::vector<std::byte>> waitall(std::span<Request> requests,
                                            WaitStats* accumulated) {
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(requests.size());
  for (Request& r : requests) {
    WaitStats stats;
    try {
      payloads.push_back(r.wait(&stats));
    } catch (const AbortedError&) {
      // The world died between two completions. Resolve every remaining
      // handle the same way so none of them leaks its stream slot through
      // the destructor's abandon path, then surface the abort.
      resolve_aborted(requests);
      throw;
    }
    if (accumulated != nullptr) {
      accumulated->hidden += stats.hidden;
      accumulated->blocked += stats.blocked;
    }
  }
  return payloads;
}

void CommWorld::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard lock(box->mutex);
    box->cv.notify_all();
  }
}

Comm::Comm(CommWorld& world, int rank) : world_(&world), rank_(rank) {
  SAGNN_REQUIRE(rank >= 0 && rank < world.size(), "rank out of range");
  members_.resize(static_cast<std::size_t>(world.size()));
  for (int i = 0; i < world.size(); ++i) members_[static_cast<std::size_t>(i)] = i;
}

void Comm::barrier() {
  const int p = size();
  const long epoch = barrier_epoch_++;
  if (p == 1) return;
  // Dissemination barrier: ceil(log2 p) rounds of token passing. Recorded
  // under the "sync" phase; cost models typically exclude it (the paper's
  // alpha-beta analysis does not charge barriers).
  const std::byte token{0};
  for (int k = 0, dist = 1; dist < p; ++k, dist <<= 1) {
    const int to = (rank_ + dist) % p;
    const int from = (rank_ - dist % p + p) % p;
    world_->send(world_rank(rank_), world_rank(to),
                 stamp(kBarrierTagBase + epoch * 64 + k), {&token, 1}, "sync");
    (void)world_->recv(world_rank(rank_), world_rank(from),
                       stamp(kBarrierTagBase + epoch * 64 + k));
  }
}

Comm Comm::split(const std::function<int(int)>& color_of) const {
  const int my_color = color_of(rank_);
  Comm out;
  out.world_ = world_;
  const long seq = split_seq_;
  // split_seq_ advances on the parent so a later split() from the same
  // parent gets a different communicator id even with equal colors.
  const_cast<Comm*>(this)->split_seq_++;
  for (int r = 0; r < size(); ++r) {
    if (color_of(r) == my_color) {
      if (r == rank_) out.rank_ = static_cast<int>(out.members_.size());
      out.members_.push_back(world_rank(r));
    }
  }
  SAGNN_CHECK(out.rank_ >= 0);
  out.comm_id_ = comm_id_ * 1000003L + seq * 1009L + my_color + 1;
  return out;
}

}  // namespace sagnn
