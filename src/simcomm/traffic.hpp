#pragma once
// Traffic accounting for the simulated cluster.
//
// Every point-to-point message is attributed to a *phase* (e.g. "alltoall",
// "bcast", "allreduce") and recorded as (src, dst, bytes). Because the
// collectives are built from point-to-point sends exactly like NCCL builds
// them, the recorded per-pair traffic is the real communication volume of
// the algorithm — the quantity the paper's evaluation is about.
//
// Pipelined schedules tag a phase with the stage (chunk) index it belongs
// to: stage k of base phase "alltoall" is recorded under "alltoall#k"
// (see stage_phase()). Consumers that care about the schedule read the
// stages individually; consumers that only care about volume aggregate by
// base_name() (phase_total(), stage_count()).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

/// Per-phase (src, dst) byte/message counters for a P-rank run.
struct PhaseTraffic {
  int p = 0;
  std::vector<std::uint64_t> bytes;  ///< p*p, [src*p + dst]
  std::vector<std::uint64_t> msgs;   ///< p*p, [src*p + dst]

  explicit PhaseTraffic(int p_ = 0)
      : p(p_),
        bytes(static_cast<std::size_t>(p_) * p_, 0),
        msgs(static_cast<std::size_t>(p_) * p_, 0) {}

  std::uint64_t bytes_between(int src, int dst) const {
    return bytes[static_cast<std::size_t>(src) * p + dst];
  }
  std::uint64_t total_bytes() const;
  std::uint64_t total_msgs() const;
  /// Total bytes sent by a rank (row sum, excluding self messages).
  std::uint64_t send_bytes(int src) const;
  /// Total bytes received by a rank (column sum, excluding self messages).
  std::uint64_t recv_bytes(int dst) const;
  std::uint64_t max_send_bytes() const;
  double avg_send_bytes() const;
  /// Paper's communication load imbalance: (max_send / avg_send - 1) * 100.
  double send_imbalance_percent() const;
};

/// Measured wall-clock decomposition of a phase's nonblocking exchanges,
/// summed over ranks and calls: `hidden` seconds of the post→wait windows
/// were covered by other work (the overlap a pipelined schedule earned),
/// `blocked` seconds were spent stalled inside wait(). Host wall-clock —
/// compare fractions, not absolute seconds, against the alpha-beta model.
struct OverlapSample {
  double hidden = 0;
  double blocked = 0;
  std::uint64_t waits = 0;  ///< completed exchange waits aggregated here
  /// Longest single stalled wait (seconds) among the aggregated exchanges —
  /// the host's straggler bound: one slow rank's deposit caps how much of
  /// the window any schedule could ever hide.
  double max_blocked = 0;

  /// hidden / (hidden + blocked); 0 when nothing was recorded.
  double fraction() const {
    const double window = hidden + blocked;
    return window > 0 ? hidden / window : 0.0;
  }
};

/// Injected-fault event counters (whole-run totals over all ranks). Like
/// the overlap ledger these are deliberately NOT checkpointed — they count
/// what this process's runtime actually injected.
struct FaultCounters {
  std::uint64_t drops = 0;       ///< send attempts a lossy link swallowed
  std::uint64_t retries = 0;     ///< retransmissions posted after timeouts
  std::uint64_t timeouts = 0;    ///< receive-side timeout expiries
  std::uint64_t duplicates = 0;  ///< redundant deliveries suppressed by seq
  double straggler_seconds = 0;  ///< injected send-side straggler delay

  bool any() const {
    return drops > 0 || retries > 0 || timeouts > 0 || duplicates > 0 ||
           straggler_seconds > 0;
  }
  FaultCounters& operator+=(const FaultCounters& o) {
    drops += o.drops;
    retries += o.retries;
    timeouts += o.timeouts;
    duplicates += o.duplicates;
    straggler_seconds += o.straggler_seconds;
    return *this;
  }
};

class TrafficRecorder {
 public:
  explicit TrafficRecorder(int p) : p_(p) {}

  /// Copyable (snapshot semantics): takes the source's lock, not its mutex.
  TrafficRecorder(const TrafficRecorder& other);
  TrafficRecorder& operator=(const TrafficRecorder& other);

  /// Record one message. Self-sends (src == dst) are recorded but excluded
  /// from the send/recv summaries above (local copies are free).
  void record(const std::string& phase, int src, int dst, std::uint64_t bytes);

  /// Snapshot of one phase (zeroed counters if the phase never occurred).
  PhaseTraffic phase(const std::string& name) const;
  /// Sum over all phases except those listed in `exclude`.
  PhaseTraffic total(const std::vector<std::string>& exclude = {}) const;
  std::vector<std::string> phase_names() const;

  /// Phase name of pipeline stage `stage` of `base` ("alltoall" + 2 ->
  /// "alltoall#2"). Stage tags compose with every accessor above: record()
  /// under the tagged name, read stages individually via phase().
  static std::string stage_phase(const std::string& base, int stage);
  /// The base phase of a possibly stage-tagged name ("alltoall#2" ->
  /// "alltoall"; untagged names pass through).
  static std::string base_name(const std::string& phase);
  /// Number of distinct recorded stages of `base` (an untagged recording
  /// counts as one stage; 0 if the base phase never occurred).
  int stage_count(const std::string& base) const;
  /// Sum of all recorded stages of `base` (equals phase(base) for untagged
  /// phases).
  PhaseTraffic phase_total(const std::string& base) const;

  /// Record the measured outcome of one completed nonblocking exchange
  /// under `phase` (stage-tagged names compose exactly like record()).
  /// `max_blocked` is the longest single stalled wait within the exchange.
  void record_overlap(const std::string& phase, double hidden, double blocked,
                      double max_blocked = 0);

  /// Fault-injection event counters (see fault.hpp). All zero unless a
  /// FaultPlan is installed and actually injecting.
  void record_fault_drop();
  void record_fault_retry();
  void record_fault_timeout();
  void record_fault_duplicate();
  void record_straggler(double seconds);
  FaultCounters fault_counters() const;

  /// Measured overlap of one phase (zeroed if never recorded).
  OverlapSample overlap(const std::string& name) const;
  /// Sum of all recorded stages of `base` (mirrors phase_total()).
  OverlapSample overlap_total(const std::string& base) const;
  /// Phases with recorded overlap samples.
  std::vector<std::string> overlap_names() const;

  /// Overwrite one phase's counters wholesale (checkpoint restore). The
  /// PhaseTraffic geometry must match this recorder's p.
  void set_phase(const std::string& name, PhaseTraffic traffic);

  void reset();
  int p() const { return p_; }

 private:
  int p_;
  mutable std::mutex mutex_;
  std::map<std::string, PhaseTraffic> phases_;
  /// Measured post→wait ledger. Deliberately NOT checkpointed: wall-clock
  /// is a property of the host session, so restored runs restart it.
  std::map<std::string, OverlapSample> overlap_;
  /// Injected-fault counters; not checkpointed for the same reason.
  FaultCounters faults_;
};

}  // namespace sagnn
