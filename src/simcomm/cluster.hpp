#pragma once
// SPMD launcher: runs one std::thread per simulated GPU rank and hands each
// a world Comm. Exceptions thrown by any rank are captured and rethrown on
// the caller thread after all ranks have been joined, so a failing rank
// cannot deadlock the harness.

#include <functional>
#include <memory>
#include <utility>

#include "simcomm/comm.hpp"

namespace sagnn {

class FaultPlan;

class Cluster {
 public:
  explicit Cluster(int p) : world_(p) {}

  /// Cluster with a deterministic fault plan (fault.hpp) installed on the
  /// world. Null or empty plans are bitwise identical to Cluster(p).
  Cluster(int p, std::shared_ptr<const FaultPlan> plan) : world_(p) {
    if (plan != nullptr) world_.install_fault_plan(std::move(plan));
  }

  int p() const { return world_.size(); }
  CommWorld& world() { return world_; }
  TrafficRecorder& traffic() { return world_.traffic(); }

  /// Run `fn(comm)` on every rank; returns when all ranks finish. Rethrows
  /// the first rank exception (by rank order) if any occurred, preferring
  /// the root cause (e.g. a RankKilledError) over secondary AbortedErrors.
  void run(const std::function<void(Comm&)>& fn);

 private:
  CommWorld world_;
};

/// One-shot convenience: build a cluster of size p, run fn, return the
/// recorded traffic.
TrafficRecorder run_spmd(int p, const std::function<void(Comm&)>& fn);

/// run_spmd with a fault plan installed on the world.
TrafficRecorder run_spmd(int p, std::shared_ptr<const FaultPlan> plan,
                         const std::function<void(Comm&)>& fn);

}  // namespace sagnn
