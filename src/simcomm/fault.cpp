#include "simcomm/fault.hpp"

#include <algorithm>
#include <cmath>

namespace sagnn {

namespace {

/// splitmix64 finalizer: the per-event decision hash. Pure function of its
/// inputs — fault outcomes are independent of thread interleaving.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform [0, 1) draw for one event, keyed by every identifying field.
double event_uniform(std::uint64_t seed, std::uint64_t kind, int src, int dst,
                     long tag, std::uint64_t seq, std::uint64_t attempt) {
  std::uint64_t h = mix64(seed ^ (kind * 0x2545f4914f6cdd1dull));
  h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
                 static_cast<std::uint32_t>(dst)));
  h = mix64(h ^ static_cast<std::uint64_t>(tag));
  h = mix64(h ^ seq);
  h = mix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(FaultSpec spec) : spec_(std::move(spec)) {
  SAGNN_REQUIRE(spec_.drop_probability >= 0 && spec_.drop_probability <= 1,
                "drop_probability must be in [0, 1]");
  SAGNN_REQUIRE(
      spec_.duplicate_probability >= 0 && spec_.duplicate_probability <= 1,
      "duplicate_probability must be in [0, 1]");
  for (const auto& [link, prob] : spec_.link_drop) {
    SAGNN_REQUIRE(prob >= 0 && prob <= 1,
                  "link_drop probability must be in [0, 1]");
    SAGNN_REQUIRE(link.first >= 0 && link.second >= 0,
                  "link_drop ranks must be non-negative");
  }
  for (const auto& [rank, factor] : spec_.rank_slowdown) {
    SAGNN_REQUIRE(rank >= 0, "rank_slowdown ranks must be non-negative");
    SAGNN_REQUIRE(factor >= 1.0, "slowdown factors must be >= 1");
  }
  SAGNN_REQUIRE(spec_.straggler_send_delay >= 0,
                "straggler_send_delay must be >= 0");
  SAGNN_REQUIRE(spec_.max_attempts >= 1, "max_attempts must be >= 1");
  SAGNN_REQUIRE(spec_.retry_timeout > 0, "retry_timeout must be positive");
  SAGNN_REQUIRE(spec_.backoff >= 1.0, "backoff must be >= 1");
  SAGNN_REQUIRE(spec_.retry_timeout_cap >= spec_.retry_timeout,
                "retry_timeout_cap must be >= retry_timeout");
  for (const KillSpec& k : spec_.kills) {
    SAGNN_REQUIRE(k.epoch >= 0 && k.rank >= 0,
                  "kill epoch and rank must be non-negative");
  }
  fired_.reserve(spec_.kills.size());
  for (std::size_t i = 0; i < spec_.kills.size(); ++i) {
    fired_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

bool FaultPlan::empty() const {
  if (!spec_.kills.empty()) return false;
  if (spec_.drop_probability > 0 || spec_.duplicate_probability > 0) return false;
  for (const auto& [link, prob] : spec_.link_drop) {
    if (prob > 0) return false;
  }
  for (const auto& [rank, factor] : spec_.rank_slowdown) {
    if (factor > 1.0) return false;
  }
  return true;
}

int FaultPlan::kills_fired() const {
  int n = 0;
  for (const auto& f : fired_) {
    if (f->load(std::memory_order_acquire)) ++n;
  }
  return n;
}

double FaultPlan::drop_probability(int src, int dst) const {
  if (src == dst) return 0;  // local copies never traverse a link
  auto it = spec_.link_drop.find({src, dst});
  return it != spec_.link_drop.end() ? it->second : spec_.drop_probability;
}

bool FaultPlan::should_drop(int src, int dst, long tag, std::uint64_t seq,
                            std::uint64_t attempt) const {
  const double prob = drop_probability(src, dst);
  if (prob <= 0) return false;
  if (prob >= 1) return true;
  return event_uniform(spec_.seed, 0xD0, src, dst, tag, seq, attempt) < prob;
}

bool FaultPlan::should_duplicate(int src, int dst, long tag, std::uint64_t seq,
                                 std::uint64_t attempt) const {
  if (src == dst) return false;
  const double prob = spec_.duplicate_probability;
  if (prob <= 0) return false;
  if (prob >= 1) return true;
  return event_uniform(spec_.seed, 0xD1, src, dst, tag, seq, attempt) < prob;
}

double FaultPlan::send_delay(int rank) const {
  auto it = spec_.rank_slowdown.find(rank);
  if (it == spec_.rank_slowdown.end()) return 0;
  return (it->second - 1.0) * spec_.straggler_send_delay;
}

double FaultPlan::retry_timeout(std::uint64_t attempt) const {
  const double exponent =
      attempt > 0 ? static_cast<double>(attempt - 1) : 0.0;
  return std::min(spec_.retry_timeout_cap,
                  spec_.retry_timeout * std::pow(spec_.backoff, exponent));
}

void FaultPlan::maybe_kill(int rank, int epoch, std::uint64_t sends_done) const {
  for (std::size_t i = 0; i < spec_.kills.size(); ++i) {
    const KillSpec& k = spec_.kills[i];
    if (k.rank != rank || k.epoch != epoch || k.after_sends > sends_done) {
      continue;
    }
    // One-shot: mark fired BEFORE throwing so the epochs a recovery loop
    // replays after restoring run clean.
    bool expected = false;
    if (fired_[i]->compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      throw RankKilledError(k.rank, k.epoch, k.permanent);
    }
  }
}

}  // namespace sagnn
