#pragma once
// Collective operations over a Comm, built from point-to-point messages the
// same way NCCL composes them from ncclSend/ncclRecv (paper §6.2):
//
//   bcast          binomial tree
//   reduce_sum     binomial tree (reverse bcast)
//   allreduce_sum  ring reduce-scatter + ring all-gather (bandwidth optimal)
//   allgatherv     ring with variable-size blocks
//   alltoallv      grouped pairwise exchange, exactly the
//                  ncclGroupStart/ncclSend/ncclRecv/ncclGroupEnd pattern
//   ialltoallv     the same exchange posted nonblocking: returns a
//                  PendingAlltoall handle; wait() at the chunk boundary
//                  (the MPI_Request idiom the pipelined SpMMs use)
//   gatherv        point-to-point funnel into the root
//
// Every operation takes a `phase` label under which its traffic is recorded,
// so bench harnesses can attribute bytes to "bcast" vs "alltoall" vs
// "allreduce" like the paper's Figure 4 breakdown.
//
// Collective calls must be made by ALL members of the communicator in the
// same order (standard SPMD contract). Tags are derived from a per-call
// user-supplied `tag` (default per-op bases) so back-to-back collectives of
// the same kind do not cross-match; all ops fully synchronize matching
// sends/recvs, so reusing a base tag across calls is safe.

#include <numeric>
#include <vector>

#include "simcomm/comm.hpp"

namespace sagnn {

namespace coll_detail {
inline constexpr long kBcastTag = 1L << 20;
inline constexpr long kReduceTag = 2L << 20;
inline constexpr long kAllreduceTag = 3L << 20;
inline constexpr long kAllgatherTag = 4L << 20;
inline constexpr long kAlltoallTag = 5L << 20;
inline constexpr long kGatherTag = 6L << 20;

/// Tag base for pipeline stage `stage` of a chunked alltoallv chain (the
/// 1D and 1.5D pipelined SpMMs share this arithmetic): distinct windows
/// for up to 127 in-flight stages, each leaving room for p step offsets
/// inside the 1<<20 window between collective tag bases
/// (127 * 8192 + p < 1<<20). Stages beyond 127 reuse a base, which stays
/// safe because recv matches FIFO per (src, tag).
inline constexpr long alltoall_stage_tag(int stage) {
  return kAlltoallTag + (1 + stage % 127) * 8192L;
}
}  // namespace coll_detail

/// Binomial-tree broadcast. All ranks must pass a `data` buffer of the same
/// element count; on return every rank holds root's contents.
template <typename T>
void bcast(Comm& comm, int root, std::vector<T>& data,
           const std::string& phase = "bcast") {
  const int p = comm.size();
  if (p == 1) return;
  const int relative = (comm.rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (relative - mask + root) % p;
      data = comm.recv<T>(src, coll_detail::kBcastTag);
      break;
    }
    mask <<= 1;
  }
  // `mask` is now the bit on which this rank received (or >= p for the
  // root); forward to children at strictly smaller offsets.
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (relative + mask + root) % p;
      comm.send<T>(dst, coll_detail::kBcastTag, std::span<const T>(data), phase);
    }
    mask >>= 1;
  }
}

/// Binomial-tree sum-reduction into `data` on the root; other ranks' buffers
/// are left in an unspecified partially-reduced state.
template <typename T>
void reduce_sum(Comm& comm, int root, std::vector<T>& data,
                const std::string& phase = "reduce") {
  const int p = comm.size();
  if (p == 1) return;
  const int relative = (comm.rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int dst = (relative - mask + root) % p;
      comm.send<T>(dst, coll_detail::kReduceTag, std::span<const T>(data), phase);
      break;
    }
    if (relative + mask < p) {
      const int src = (relative + mask + root) % p;
      auto incoming = comm.recv<T>(src, coll_detail::kReduceTag);
      SAGNN_REQUIRE(incoming.size() == data.size(), "reduce size mismatch");
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
    mask <<= 1;
  }
}

/// Ring all-reduce (reduce-scatter then all-gather). Bandwidth-optimal:
/// each rank sends ~2 * data_size bytes total regardless of p.
template <typename T>
void allreduce_sum(Comm& comm, std::span<T> data,
                   const std::string& phase = "allreduce") {
  const int p = comm.size();
  if (p == 1) return;
  const int me = comm.rank();
  const int next = (me + 1) % p;
  const int prev = (me - 1 + p) % p;

  // Chunk boundaries: p near-equal contiguous slices of `data`.
  const std::size_t n = data.size();
  auto chunk_begin = [&](int c) {
    return n * static_cast<std::size_t>(c) / static_cast<std::size_t>(p);
  };
  auto chunk = [&](int c) {
    return data.subspan(chunk_begin(c), chunk_begin(c + 1) - chunk_begin(c));
  };

  // Reduce-scatter: after p-1 steps, rank r owns the fully reduced chunk
  // (r + 1) % p.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = (me - s + p) % p;
    const int recv_c = (me - s - 1 + p) % p;
    comm.send<T>(next, coll_detail::kAllreduceTag + s, std::span<const T>(chunk(send_c)),
                 phase);
    auto incoming = comm.recv<T>(prev, coll_detail::kAllreduceTag + s);
    auto dst = chunk(recv_c);
    SAGNN_CHECK(incoming.size() == dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += incoming[i];
  }
  // All-gather the reduced chunks around the ring.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = (me - s + 1 + p) % p;
    const int recv_c = (me - s + p) % p;
    // Tag offset 4096 keeps all-gather steps disjoint from reduce-scatter
    // steps even when a fast neighbor races ahead into the second phase.
    comm.send<T>(next, coll_detail::kAllreduceTag + 4096 + s,
                 std::span<const T>(chunk(send_c)), phase);
    auto incoming = comm.recv<T>(prev, coll_detail::kAllreduceTag + 4096 + s);
    auto dst = chunk(recv_c);
    SAGNN_CHECK(incoming.size() == dst.size());
    std::copy(incoming.begin(), incoming.end(), dst.begin());
  }
}

/// Variable-size all-gather: returns all ranks' contributions, indexed by
/// rank. Ring algorithm; p-1 steps, each forwarding the block received in
/// the previous step.
template <typename T>
std::vector<std::vector<T>> allgatherv(Comm& comm, std::span<const T> mine,
                                       const std::string& phase = "allgather") {
  const int p = comm.size();
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(comm.rank())].assign(mine.begin(), mine.end());
  if (p == 1) return out;
  const int next = (comm.rank() + 1) % p;
  const int prev = (comm.rank() - 1 + p) % p;
  for (int s = 0; s < p - 1; ++s) {
    const int send_block = (comm.rank() - s + p) % p;
    const int recv_block = (comm.rank() - s - 1 + p) % p;
    comm.send<T>(next, coll_detail::kAllgatherTag + s,
                 std::span<const T>(out[static_cast<std::size_t>(send_block)]), phase);
    out[static_cast<std::size_t>(recv_block)] =
        comm.recv<T>(prev, coll_detail::kAllgatherTag + s);
  }
  return out;
}

template <typename T>
class PendingAlltoall;

template <typename T>
PendingAlltoall<T> ialltoallv(Comm& comm,
                              const std::vector<std::vector<T>>& send_bufs,
                              const std::string& phase = "alltoall",
                              long tag_base = coll_detail::kAlltoallTag);

/// One in-flight nonblocking alltoallv: sends are already deposited (the
/// runtime is eager), the per-source receives stay posted until wait().
/// wait() returns the same recv_bufs the blocking alltoallv would have —
/// the message pattern, tags, and traffic accounting are identical — and
/// records the measured post→wait window (hidden vs blocked seconds) under
/// the exchange's phase in the world's TrafficRecorder. Move-only; exactly
/// one wait() per handle.
template <typename T>
class PendingAlltoall {
 public:
  PendingAlltoall() = default;
  PendingAlltoall(PendingAlltoall&&) noexcept = default;
  PendingAlltoall& operator=(PendingAlltoall&&) noexcept = default;

  bool valid() const { return comm_ != nullptr; }

  /// Complete the exchange: claim every receive (blocking as needed),
  /// record the measured overlap, and return the per-source buffers.
  std::vector<std::vector<T>> wait() {
    SAGNN_REQUIRE(valid(), "wait() on an empty alltoall handle");
    Comm* comm = comm_;
    comm_ = nullptr;
    std::vector<std::vector<T>> recv_bufs(recvs_.size());
    double blocked = 0;
    double max_blocked = 0;
    for (std::size_t s = 0; s < recvs_.size(); ++s) {
      WaitStats stats;
      try {
        recv_bufs[s] = Comm::payload_as<T>(recvs_[s].wait(&stats));
      } catch (const AbortedError&) {
        // World torn down mid-exchange (e.g. an injected rank kill):
        // resolve the remaining handles too so none leaks its stream slot,
        // then surface the abort.
        resolve_aborted(recvs_);
        throw;
      }
      blocked += stats.blocked;
      max_blocked = std::max(max_blocked, stats.blocked);
    }
    // The exchange was outstanding from post to now; whatever of that
    // window was not stalled inside wait() was covered by useful work.
    const double window = CommWorld::now_seconds() - posted_at_;
    comm->world().traffic().record_overlap(phase_, std::max(0.0, window - blocked),
                                           blocked, max_blocked);
    return recv_bufs;
  }

 private:
  template <typename U>
  friend PendingAlltoall<U> ialltoallv(Comm&, const std::vector<std::vector<U>>&,
                                       const std::string&, long);

  Comm* comm_ = nullptr;
  std::string phase_;
  double posted_at_ = 0;
  std::vector<Request> recvs_;  ///< indexed by source communicator rank
};

/// Nonblocking all-to-all with per-destination buffers: send_bufs[d] goes
/// to rank d; the returned handle's wait() yields recv_bufs where
/// recv_bufs[s] came from rank s. Same grouped pairwise pattern — step k
/// pairs rank r with (r +/- k) mod p, the NCCL ncclGroupStart/ncclSend/
/// ncclRecv/ncclGroupEnd idiom — and the same tags as the blocking
/// alltoallv, so the two compose freely. Pipelined callers that keep
/// several exchanges in flight pass distinct `tag_base`s (one per chunk)
/// to keep the stages disjoint in the tag space; bases must leave room for
/// p step offsets and stay inside the 1<<20 window between collective tag
/// bases. Reusing a base across back-to-back exchanges is still correct —
/// the k-th posted receive per (src, tag) matches the k-th send.
template <typename T>
PendingAlltoall<T> ialltoallv(Comm& comm,
                              const std::vector<std::vector<T>>& send_bufs,
                              const std::string& phase, long tag_base) {
  const int p = comm.size();
  SAGNN_REQUIRE(send_bufs.size() == static_cast<std::size_t>(p),
                "alltoallv needs one send buffer per rank");
  PendingAlltoall<T> pending;
  pending.comm_ = &comm;
  pending.phase_ = phase;
  pending.posted_at_ = CommWorld::now_seconds();
  pending.recvs_.resize(static_cast<std::size_t>(p));
  // Local block: a self-copy, recorded so volume accounting can decide how
  // to treat it (CostModel ignores src==dst traffic).
  (void)comm.isend<T>(
      comm.rank(), tag_base,
      std::span<const T>(send_bufs[static_cast<std::size_t>(comm.rank())]), phase);
  pending.recvs_[static_cast<std::size_t>(comm.rank())] =
      comm.irecv(comm.rank(), tag_base);
  for (int step = 1; step < p; ++step) {
    const int dst = (comm.rank() + step) % p;
    const int src = (comm.rank() - step + p) % p;
    (void)comm.isend<T>(
        dst, tag_base + step,
        std::span<const T>(send_bufs[static_cast<std::size_t>(dst)]), phase);
    pending.recvs_[static_cast<std::size_t>(src)] =
        comm.irecv(src, tag_base + step);
  }
  return pending;
}

/// Blocking all-to-all: ialltoallv posted and waited in one call. A bulk-
/// synchronous caller therefore still contributes an OverlapSample — with
/// a near-empty hidden share, which is exactly what distinguishes it from
/// a pipelined schedule in the measured columns.
template <typename T>
std::vector<std::vector<T>> alltoallv(Comm& comm,
                                      const std::vector<std::vector<T>>& send_bufs,
                                      const std::string& phase = "alltoall",
                                      long tag_base = coll_detail::kAlltoallTag) {
  return ialltoallv<T>(comm, send_bufs, phase, tag_base).wait();
}

/// Gather variable-size contributions at `root`. Returns per-rank data at
/// the root, an empty vector elsewhere.
template <typename T>
std::vector<std::vector<T>> gatherv(Comm& comm, int root, std::span<const T> mine,
                                    const std::string& phase = "gather") {
  std::vector<std::vector<T>> out;
  if (comm.rank() == root) {
    out.resize(static_cast<std::size_t>(comm.size()));
    out[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = comm.recv<T>(r, coll_detail::kGatherTag);
    }
  } else {
    comm.send<T>(root, coll_detail::kGatherTag, mine, phase);
  }
  return out;
}

}  // namespace sagnn
