#include "simcomm/cluster.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace sagnn {

void Cluster::run(const std::function<void(Comm&)>& fn) {
  const int p = world_.size();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      // A simulated rank models one GPU: its compute must stay
      // single-threaded so ThreadCpuTimer measurements and the
      // bit-identical serial-parity sweep are unaffected by the host
      // thread pool (common/parallel.hpp nesting guard).
      SerialRegion serial;
      try {
        Comm comm(world_, r);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Unblock every rank waiting on a message from us; they will fail
        // with AbortedError instead of deadlocking.
        world_.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root-cause error over secondary AbortedErrors.
  std::exception_ptr aborted;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const AbortedError&) {
      aborted = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (aborted) std::rethrow_exception(aborted);
}

TrafficRecorder run_spmd(int p, const std::function<void(Comm&)>& fn) {
  Cluster cluster(p);
  cluster.run(fn);
  return cluster.traffic();
}

TrafficRecorder run_spmd(int p, std::shared_ptr<const FaultPlan> plan,
                         const std::function<void(Comm&)>& fn) {
  Cluster cluster(p, std::move(plan));
  cluster.run(fn);
  return cluster.traffic();
}

}  // namespace sagnn
