#include "simcomm/traffic.hpp"

#include <algorithm>

namespace sagnn {

std::uint64_t PhaseTraffic::total_bytes() const {
  std::uint64_t acc = 0;
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      if (s != d) acc += bytes[static_cast<std::size_t>(s) * p + d];
    }
  }
  return acc;
}

std::uint64_t PhaseTraffic::total_msgs() const {
  std::uint64_t acc = 0;
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      if (s != d) acc += msgs[static_cast<std::size_t>(s) * p + d];
    }
  }
  return acc;
}

std::uint64_t PhaseTraffic::send_bytes(int src) const {
  std::uint64_t acc = 0;
  for (int d = 0; d < p; ++d) {
    if (d != src) acc += bytes[static_cast<std::size_t>(src) * p + d];
  }
  return acc;
}

std::uint64_t PhaseTraffic::recv_bytes(int dst) const {
  std::uint64_t acc = 0;
  for (int s = 0; s < p; ++s) {
    if (s != dst) acc += bytes[static_cast<std::size_t>(s) * p + dst];
  }
  return acc;
}

std::uint64_t PhaseTraffic::max_send_bytes() const {
  std::uint64_t m = 0;
  for (int s = 0; s < p; ++s) m = std::max(m, send_bytes(s));
  return m;
}

double PhaseTraffic::avg_send_bytes() const {
  if (p == 0) return 0;
  return static_cast<double>(total_bytes()) / p;
}

double PhaseTraffic::send_imbalance_percent() const {
  const double avg = avg_send_bytes();
  if (avg <= 0) return 0;
  return (static_cast<double>(max_send_bytes()) / avg - 1.0) * 100.0;
}

TrafficRecorder::TrafficRecorder(const TrafficRecorder& other) : p_(other.p_) {
  std::lock_guard lock(other.mutex_);
  phases_ = other.phases_;
  overlap_ = other.overlap_;
  faults_ = other.faults_;
}

TrafficRecorder& TrafficRecorder::operator=(const TrafficRecorder& other) {
  if (this == &other) return *this;
  std::map<std::string, PhaseTraffic> snapshot;
  std::map<std::string, OverlapSample> overlap_snapshot;
  FaultCounters faults_snapshot;
  {
    std::lock_guard lock(other.mutex_);
    snapshot = other.phases_;
    overlap_snapshot = other.overlap_;
    faults_snapshot = other.faults_;
  }
  std::lock_guard lock(mutex_);
  p_ = other.p_;
  phases_ = std::move(snapshot);
  overlap_ = std::move(overlap_snapshot);
  faults_ = faults_snapshot;
  return *this;
}

void TrafficRecorder::record(const std::string& phase, int src, int dst,
                             std::uint64_t bytes) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = phases_.try_emplace(phase, p_);
  (void)inserted;
  it->second.bytes[static_cast<std::size_t>(src) * p_ + dst] += bytes;
  it->second.msgs[static_cast<std::size_t>(src) * p_ + dst] += 1;
}

PhaseTraffic TrafficRecorder::phase(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = phases_.find(name);
  if (it == phases_.end()) return PhaseTraffic(p_);
  return it->second;
}

PhaseTraffic TrafficRecorder::total(const std::vector<std::string>& exclude) const {
  std::lock_guard lock(mutex_);
  PhaseTraffic acc(p_);
  for (const auto& [name, tr] : phases_) {
    if (std::find(exclude.begin(), exclude.end(), name) != exclude.end()) continue;
    for (std::size_t i = 0; i < acc.bytes.size(); ++i) {
      acc.bytes[i] += tr.bytes[i];
      acc.msgs[i] += tr.msgs[i];
    }
  }
  return acc;
}

std::string TrafficRecorder::stage_phase(const std::string& base, int stage) {
  return base + "#" + std::to_string(stage);
}

std::string TrafficRecorder::base_name(const std::string& phase) {
  const std::size_t hash = phase.rfind('#');
  return hash == std::string::npos ? phase : phase.substr(0, hash);
}

int TrafficRecorder::stage_count(const std::string& base) const {
  std::lock_guard lock(mutex_);
  int count = 0;
  for (const auto& [name, tr] : phases_) {
    if (base_name(name) == base) ++count;
  }
  return count;
}

PhaseTraffic TrafficRecorder::phase_total(const std::string& base) const {
  std::lock_guard lock(mutex_);
  PhaseTraffic acc(p_);
  for (const auto& [name, tr] : phases_) {
    if (base_name(name) != base) continue;
    for (std::size_t i = 0; i < acc.bytes.size(); ++i) {
      acc.bytes[i] += tr.bytes[i];
      acc.msgs[i] += tr.msgs[i];
    }
  }
  return acc;
}

std::vector<std::string> TrafficRecorder::phase_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const auto& [name, tr] : phases_) names.push_back(name);
  return names;
}

void TrafficRecorder::record_overlap(const std::string& phase, double hidden,
                                     double blocked, double max_blocked) {
  std::lock_guard lock(mutex_);
  OverlapSample& s = overlap_[phase];
  s.hidden += hidden;
  s.blocked += blocked;
  s.waits += 1;
  s.max_blocked = std::max(s.max_blocked, max_blocked);
}

void TrafficRecorder::record_fault_drop() {
  std::lock_guard lock(mutex_);
  ++faults_.drops;
}

void TrafficRecorder::record_fault_retry() {
  std::lock_guard lock(mutex_);
  ++faults_.retries;
}

void TrafficRecorder::record_fault_timeout() {
  std::lock_guard lock(mutex_);
  ++faults_.timeouts;
}

void TrafficRecorder::record_fault_duplicate() {
  std::lock_guard lock(mutex_);
  ++faults_.duplicates;
}

void TrafficRecorder::record_straggler(double seconds) {
  std::lock_guard lock(mutex_);
  faults_.straggler_seconds += seconds;
}

FaultCounters TrafficRecorder::fault_counters() const {
  std::lock_guard lock(mutex_);
  return faults_;
}

OverlapSample TrafficRecorder::overlap(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = overlap_.find(name);
  return it == overlap_.end() ? OverlapSample{} : it->second;
}

OverlapSample TrafficRecorder::overlap_total(const std::string& base) const {
  std::lock_guard lock(mutex_);
  OverlapSample acc;
  for (const auto& [name, s] : overlap_) {
    if (base_name(name) != base) continue;
    acc.hidden += s.hidden;
    acc.blocked += s.blocked;
    acc.waits += s.waits;
    acc.max_blocked = std::max(acc.max_blocked, s.max_blocked);
  }
  return acc;
}

std::vector<std::string> TrafficRecorder::overlap_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(overlap_.size());
  for (const auto& [name, s] : overlap_) names.push_back(name);
  return names;
}

void TrafficRecorder::set_phase(const std::string& name, PhaseTraffic traffic) {
  SAGNN_REQUIRE(traffic.p == p_,
                "set_phase geometry mismatch: recorder p=" + std::to_string(p_) +
                    ", phase p=" + std::to_string(traffic.p));
  std::lock_guard lock(mutex_);
  phases_.insert_or_assign(name, std::move(traffic));
}

void TrafficRecorder::reset() {
  std::lock_guard lock(mutex_);
  phases_.clear();
  overlap_.clear();
  faults_ = FaultCounters{};
}

}  // namespace sagnn
