#include "simcomm/cost_model.hpp"

#include <algorithm>

namespace sagnn {

double CostModel::send_seconds(const PhaseTraffic& t, int rank) const {
  double acc = 0;
  for (int d = 0; d < t.p; ++d) {
    if (d == rank) continue;
    const std::size_t i = static_cast<std::size_t>(rank) * t.p + d;
    acc += alpha(rank, d) * static_cast<double>(t.msgs[i]) +
           beta(rank, d) * static_cast<double>(t.bytes[i]) * volume_scale;
  }
  return acc;
}

double CostModel::recv_seconds(const PhaseTraffic& t, int rank) const {
  double acc = 0;
  for (int s = 0; s < t.p; ++s) {
    if (s == rank) continue;
    const std::size_t i = static_cast<std::size_t>(s) * t.p + rank;
    acc += alpha(s, rank) * static_cast<double>(t.msgs[i]) +
           beta(s, rank) * static_cast<double>(t.bytes[i]) * volume_scale;
  }
  return acc;
}

double CostModel::phase_seconds(const PhaseTraffic& t) const {
  return phase_cost_detail(t).seconds;
}

CostModel::PhaseCostDetail CostModel::phase_cost_detail(
    const PhaseTraffic& t) const {
  // Evaluate both sides of every rank and keep the decomposition of the
  // single (rank, side) with the largest serialization time, so
  // seconds == latency + beta * bytes holds exactly at the bottleneck.
  PhaseCostDetail worst;
  const auto consider = [&](int rank, bool sending) {
    PhaseCostDetail side;
    for (int peer = 0; peer < t.p; ++peer) {
      if (peer == rank) continue;
      const int src = sending ? rank : peer;
      const int dst = sending ? peer : rank;
      const std::size_t i = static_cast<std::size_t>(src) * t.p + dst;
      const double msgs = static_cast<double>(t.msgs[i]);
      const double bytes = static_cast<double>(t.bytes[i]);
      side.latency += alpha(src, dst) * msgs;
      side.messages += msgs;
      side.bytes += bytes * volume_scale;
      // Same accumulation expression as send_seconds()/recv_seconds(), so
      // the detail's seconds stays bitwise equal to phase_seconds().
      side.seconds += alpha(src, dst) * msgs + beta(src, dst) * bytes * volume_scale;
    }
    if (side.seconds > worst.seconds) worst = side;
  };
  for (int r = 0; r < t.p; ++r) {
    consider(r, /*sending=*/true);
    consider(r, /*sending=*/false);
  }
  return worst;
}

double CostModel::compute_seconds(
    const std::vector<double>& per_rank_cpu_seconds) const {
  double worst = 0;
  for (double s : per_rank_cpu_seconds) worst = std::max(worst, s);
  return worst * compute_scale * volume_scale;
}

void EpochCost::scale(double factor) {
  compute *= factor;
  alltoall *= factor;
  bcast *= factor;
  allreduce *= factor;
  other *= factor;
  alltoall_latency *= factor;
  bcast_latency *= factor;
  allreduce_latency *= factor;
  other_latency *= factor;
  alltoall_messages *= factor;
  alltoall_bytes *= factor;
  // The fraction is scale-invariant; scaling the terms keeps the hidden/
  // blocked seconds themselves per-epoch like every other field.
  // measured_max_blocked is a per-wait maximum, not a per-run sum, so
  // per-epoch averaging must not touch it.
  measured_hidden *= factor;
  measured_blocked *= factor;
}

EpochCost epoch_cost(const CostModel& model, const TrafficRecorder& traffic,
                     const std::vector<double>& per_rank_cpu_seconds,
                     const std::vector<std::string>& exclude_bases) {
  EpochCost cost;
  cost.compute = model.compute_seconds(per_rank_cpu_seconds);
  for (const auto& name : traffic.phase_names()) {
    const std::string base = TrafficRecorder::base_name(name);
    if (base == "sync") continue;
    if (std::find(exclude_bases.begin(), exclude_bases.end(), base) !=
        exclude_bases.end()) {
      continue;
    }
    const CostModel::PhaseCostDetail d =
        model.phase_cost_detail(traffic.phase(name));
    if (base == "alltoall") {
      cost.alltoall += d.seconds;
      cost.alltoall_latency += d.latency;
      cost.alltoall_messages += d.messages;
      cost.alltoall_bytes += d.bytes;
    } else if (base == "bcast") {
      cost.bcast += d.seconds;
      cost.bcast_latency += d.latency;
    } else if (base == "allreduce") {
      cost.allreduce += d.seconds;
      cost.allreduce_latency += d.latency;
    } else {
      cost.other += d.seconds;
      cost.other_latency += d.latency;
    }
  }
  // Measured post→wait ledger: same base-name exclusion discipline as the
  // modeled buckets, so e.g. the one-time index exchange a strategy
  // excludes from its epoch cost does not pollute the overlap fraction.
  for (const auto& name : traffic.overlap_names()) {
    const std::string base = TrafficRecorder::base_name(name);
    if (base == "sync") continue;
    if (std::find(exclude_bases.begin(), exclude_bases.end(), base) !=
        exclude_bases.end()) {
      continue;
    }
    const OverlapSample s = traffic.overlap(name);
    cost.measured_hidden += s.hidden;
    cost.measured_blocked += s.blocked;
    cost.measured_max_blocked = std::max(cost.measured_max_blocked, s.max_blocked);
  }
  return cost;
}

}  // namespace sagnn
