#include "simcomm/cost_model.hpp"

#include <algorithm>

namespace sagnn {

double CostModel::send_seconds(const PhaseTraffic& t, int rank) const {
  double acc = 0;
  for (int d = 0; d < t.p; ++d) {
    if (d == rank) continue;
    const std::size_t i = static_cast<std::size_t>(rank) * t.p + d;
    acc += alpha(rank, d) * static_cast<double>(t.msgs[i]) +
           beta(rank, d) * static_cast<double>(t.bytes[i]) * volume_scale;
  }
  return acc;
}

double CostModel::recv_seconds(const PhaseTraffic& t, int rank) const {
  double acc = 0;
  for (int s = 0; s < t.p; ++s) {
    if (s == rank) continue;
    const std::size_t i = static_cast<std::size_t>(s) * t.p + rank;
    acc += alpha(s, rank) * static_cast<double>(t.msgs[i]) +
           beta(s, rank) * static_cast<double>(t.bytes[i]) * volume_scale;
  }
  return acc;
}

double CostModel::phase_seconds(const PhaseTraffic& t) const {
  double worst = 0;
  for (int r = 0; r < t.p; ++r) {
    worst = std::max(worst, std::max(send_seconds(t, r), recv_seconds(t, r)));
  }
  return worst;
}

double CostModel::compute_seconds(
    const std::vector<double>& per_rank_cpu_seconds) const {
  double worst = 0;
  for (double s : per_rank_cpu_seconds) worst = std::max(worst, s);
  return worst * compute_scale * volume_scale;
}

EpochCost epoch_cost(const CostModel& model, const TrafficRecorder& traffic,
                     const std::vector<double>& per_rank_cpu_seconds,
                     const std::vector<std::string>& exclude_bases) {
  EpochCost cost;
  cost.compute = model.compute_seconds(per_rank_cpu_seconds);
  for (const auto& name : traffic.phase_names()) {
    const std::string base = TrafficRecorder::base_name(name);
    if (base == "sync") continue;
    if (std::find(exclude_bases.begin(), exclude_bases.end(), base) !=
        exclude_bases.end()) {
      continue;
    }
    const double s = model.phase_seconds(traffic.phase(name));
    if (base == "alltoall") {
      cost.alltoall += s;
    } else if (base == "bcast") {
      cost.bcast += s;
    } else if (base == "allreduce") {
      cost.allreduce += s;
    } else {
      cost.other += s;
    }
  }
  return cost;
}

}  // namespace sagnn
