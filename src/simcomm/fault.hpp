#pragma once
// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is built from a FaultSpec and installed on a Cluster (which
// forwards it to its CommWorld). It drives three failure modes through the
// request runtime — per-rank straggler delays, per-link message loss with a
// bounded timeout/retry/backoff protocol, and scheduled rank kills — while
// preserving the two properties the rest of the system is built on:
//
//   * Parity by construction: every fault path is behind a null check and
//     an installed-but-EMPTY plan takes none of them, so a fault-free plan
//     is bitwise identical to no plan at all (the registry serial-parity
//     sweep is the gate).
//   * Determinism: each drop/duplicate decision is a pure hash of
//     (seed, src, dst, tag, seq, attempt) — never a shared RNG stream — so
//     outcomes are independent of thread interleaving and identical across
//     replays. Payload math is never perturbed: a survivable plan yields
//     the same loss trajectory as a fault-free run (modulo elastic
//     restarts, which legitimately re-partition).
//
// Kills are one-shot: a fired KillSpec never fires again, so the epochs a
// recovery loop replays after restoring a checkpoint run clean.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

/// An injected, unrecoverable communication fault: the bounded retry
/// protocol exhausted its attempt budget on a lossy link. Surfaced as a
/// typed error (never a hang) so harnesses can assert on it.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& msg) : Error("fault: " + msg) {}
};

/// A scheduled rank kill fired: the killed rank throws this on its own
/// thread, the Cluster aborts the world (peers resolve to AbortedError),
/// and Cluster::run() rethrows it as the root cause. A trainer running
/// with FaultRecovery::kCheckpointRestart catches it and restores from the
/// last auto-checkpoint.
class RankKilledError : public FaultError {
 public:
  RankKilledError(int rank, int epoch, bool permanent)
      : FaultError("rank " + std::to_string(rank) + " killed in epoch " +
                   std::to_string(epoch) +
                   (permanent ? " (permanent)" : " (transient)")),
        rank_(rank),
        epoch_(epoch),
        permanent_(permanent) {}

  int rank() const { return rank_; }
  int epoch() const { return epoch_; }
  /// Permanent kills take the rank away for good — recovery must restart
  /// elastically on p-1 ranks. Transient kills (preemption) restart on p.
  bool permanent() const { return permanent_; }

 private:
  int rank_;
  int epoch_;
  bool permanent_;
};

/// One scheduled rank kill. `after_sends` counts the victim's completed
/// cross-rank sends within the epoch: 0 kills at the epoch boundary
/// (before any work), a positive count kills mid-epoch — e.g. during an
/// in-flight alltoallv whose sends straddle the threshold. A kill whose
/// threshold is never reached within its epoch does not fire.
struct KillSpec {
  int epoch = 0;
  int rank = 0;
  std::uint64_t after_sends = 0;
  bool permanent = false;
};

/// Declarative description of the faults to inject. Every field defaults
/// to "no fault"; a default-constructed spec is an empty plan.
struct FaultSpec {
  /// Seed of the per-event decision hash (drops, duplicates).
  std::uint64_t seed = 1;

  /// Per-rank slowdown factors (>= 1); absent ranks run at full speed. A
  /// rank with factor s sleeps (s - 1) * straggler_send_delay before each
  /// cross-rank send, so its peers' blocked time rises in the measured
  /// overlap ledger exactly as a real straggler's would.
  std::map<int, double> rank_slowdown;
  double straggler_send_delay = 100e-6;  ///< seconds per send per unit slowdown

  /// Probability that a cross-rank message is swallowed by the link (the
  /// receive-side retry protocol then re-requests it). `link_drop` entries
  /// override the global probability for specific (src, dst) pairs.
  double drop_probability = 0;
  std::map<std::pair<int, int>, double> link_drop;

  /// Probability that a delivered message arrives twice (the redundant
  /// copy must be suppressed by its sequence number).
  double duplicate_probability = 0;

  /// Retry protocol: a receive on a lossy link times out after
  /// retry_timeout * backoff^(attempt-1) seconds (capped), triggers a
  /// retransmission, and gives up with a typed FaultError after
  /// max_attempts total attempts.
  int max_attempts = 5;
  double retry_timeout = 2e-3;
  double backoff = 2.0;
  double retry_timeout_cap = 0.25;

  std::vector<KillSpec> kills;
};

/// Validated, immutable fault plan plus the per-kill one-shot state.
/// Thread-safe: decisions are pure hashes, kill state is atomic.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);
  static std::shared_ptr<FaultPlan> make(FaultSpec spec) {
    return std::make_shared<FaultPlan>(std::move(spec));
  }

  const FaultSpec& spec() const { return spec_; }

  /// True when the plan injects nothing at all — the runtime must then be
  /// bitwise identical to having no plan installed.
  bool empty() const;

  bool has_kills() const { return !spec_.kills.empty(); }
  /// Kills that have fired so far (monotonic; fired kills never re-fire).
  int kills_fired() const;

  /// Drop probability of the (src, dst) link; 0 for self-messages.
  double drop_probability(int src, int dst) const;
  /// True when receives from src must use timed waits + retries.
  bool lossy(int src, int dst) const { return drop_probability(src, dst) > 0; }

  /// Deterministic per-event decisions, keyed by the message identity and
  /// the attempt number (attempt 1 = the original transmission).
  bool should_drop(int src, int dst, long tag, std::uint64_t seq,
                   std::uint64_t attempt) const;
  bool should_duplicate(int src, int dst, long tag, std::uint64_t seq,
                        std::uint64_t attempt) const;

  /// Injected delay before each cross-rank send of `rank` (0 = none).
  double send_delay(int rank) const;

  int max_attempts() const { return spec_.max_attempts; }
  /// Receive timeout before retransmission `attempt + 1` fires
  /// (exponential backoff, capped at retry_timeout_cap).
  double retry_timeout(std::uint64_t attempt) const;

  /// Throws RankKilledError if an unfired kill for (rank, epoch) has
  /// after_sends <= sends_done; the kill is marked fired BEFORE the throw
  /// so replayed epochs run clean.
  void maybe_kill(int rank, int epoch, std::uint64_t sends_done) const;

 private:
  FaultSpec spec_;
  /// One-shot flags, index-aligned with spec_.kills.
  mutable std::vector<std::unique_ptr<std::atomic<bool>>> fired_;
};

}  // namespace sagnn
