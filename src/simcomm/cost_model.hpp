#pragma once
// Alpha-beta communication cost model, applied to recorded traffic.
//
// The simulated ranks exchange real bytes, so volumes are exact; what the
// single-node host cannot reproduce is the *time* those bytes would take on
// the paper's machine (Perlmutter: 4xA100 per node, NVLink 25 GB/s within a
// node, Slingshot-11 NICs at 25 GB/s across nodes). This model converts a
// PhaseTraffic into seconds:
//
//   per-rank cost  t(r) = max( sum_d  a(r,d) * msgs(r,d) + b(r,d) * bytes(r,d),
//                              sum_s  a(s,r) * msgs(s,r) + b(s,r) * bytes(s,r) )
//   phase cost     T    = max_r t(r)
//
// i.e. each rank serializes its own sends (and receives), and the phase
// completes when the bottleneck rank does — which is exactly the
// "maximum communication volume between a pair of processes" effect the
// paper's partitioner targets. Self-messages are free.
//
// Compute time is handled separately: measured per-rank CPU seconds are
// scaled by `compute_scale` (CPU SpMM throughput -> A100 throughput) and the
// maximum over ranks is taken.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "simcomm/traffic.hpp"

namespace sagnn {

struct CostModel {
  double alpha_intra = 2.0e-6;   ///< latency, ranks on the same node (NVLink)
  double alpha_inter = 10.0e-6;  ///< latency, ranks on different nodes (NIC)
  double beta_intra = 1.0 / 25.0e9;  ///< s/byte within a node (25 GB/s)
  double beta_inter = 1.0 / 25.0e9;  ///< s/byte across nodes (25 GB/s)
  int gpus_per_node = 4;

  /// Measured CPU compute seconds -> modeled GPU seconds. Default assumes
  /// the A100 runs the local SpMM/GEMM mix ~50x faster than one host core;
  /// only *relative* scheme comparisons matter for the reproduction.
  double compute_scale = 1.0 / 50.0;

  /// Dataset scale factor: each simulated vertex stands for `volume_scale`
  /// worth of real (paper-sized) data. Applied to BYTES (the beta term)
  /// and to compute seconds — both are linear in n*f — but NOT to message
  /// counts or latency, because the simulated run already issues the real
  /// number of messages for the chosen P. This is what keeps the
  /// latency/bandwidth balance of the full-size system intact when the
  /// graph is scaled down (see Dataset::sim_scale).
  double volume_scale = 1.0;

  bool same_node(int a, int b) const {
    return a / gpus_per_node == b / gpus_per_node;
  }
  double alpha(int a, int b) const {
    return same_node(a, b) ? alpha_intra : alpha_inter;
  }
  double beta(int a, int b) const {
    return same_node(a, b) ? beta_intra : beta_inter;
  }

  /// Send-side serialization cost of rank r in this phase.
  double send_seconds(const PhaseTraffic& t, int rank) const;
  /// Receive-side serialization cost of rank r.
  double recv_seconds(const PhaseTraffic& t, int rank) const;
  /// Bottleneck cost of the whole phase: max over ranks of
  /// max(send, recv) serialization.
  double phase_seconds(const PhaseTraffic& t) const;

  /// One phase's bottleneck cost, decomposed at the bottleneck itself: the
  /// (rank, side) that sets `seconds` also contributes its alpha share,
  /// message count, and volume-scaled bytes, so
  /// seconds == latency + beta-terms exactly at that bottleneck.
  struct PhaseCostDetail {
    double seconds = 0;   ///< max over ranks of max(send, recv)
    double latency = 0;   ///< alpha (per-message) share at that bottleneck
    double messages = 0;  ///< messages serialized at that bottleneck
    double bytes = 0;     ///< volume-scaled bytes at that bottleneck
  };
  PhaseCostDetail phase_cost_detail(const PhaseTraffic& t) const;

  /// max over ranks of scaled compute seconds.
  double compute_seconds(const std::vector<double>& per_rank_cpu_seconds) const;
};

/// One row of an epoch-time report: modeled seconds per phase + compute,
/// plus the explicit alpha-beta decomposition of each phase bucket (the
/// latency share and, for the chunkable alltoall, the bottleneck message
/// and byte counts) that the pipelined-schedule models below consume.
struct EpochCost {
  double compute = 0;
  double alltoall = 0;
  double bcast = 0;
  double allreduce = 0;
  double other = 0;

  /// Alpha (per-message latency) share of each bucket, measured at the
  /// same bottleneck (rank, side) that sets the bucket's seconds — so
  /// e.g. alltoall == alltoall_latency + beta-terms exactly. For a
  /// stage-tagged phase the stages' bottleneck shares accumulate.
  double alltoall_latency = 0;
  double bcast_latency = 0;
  double allreduce_latency = 0;
  double other_latency = 0;

  /// Bottleneck-rank per-epoch message count and volume-scaled bytes of
  /// the alltoall bucket — the phase pipelined strategies chunk. On a
  /// bulk-synchronous (depth-1) recording these are the K=1 counts the
  /// message-count-aware total_pipelined(K, alpha, beta) reprices.
  double alltoall_messages = 0;
  double alltoall_bytes = 0;

  /// MEASURED (host wall-clock, not modeled) decomposition of the
  /// nonblocking exchanges' post→wait windows, summed over ranks: seconds
  /// covered by other work vs seconds stalled inside wait(). Absolute
  /// values live on the host clock; only measured_overlap_fraction() is
  /// comparable against the modeled schedule columns. Not checkpointed —
  /// resumes restart the measurement.
  double measured_hidden = 0;
  double measured_blocked = 0;
  /// Longest SINGLE stalled wait (host seconds) across all exchanges — the
  /// host's straggler bound: one late deposit caps how much of any window
  /// a schedule can hide, which is what the measured fraction saturates at
  /// when K grows deep. A max, not a sum; scale() leaves it alone.
  double measured_max_blocked = 0;

  /// Measured share of the outstanding-communication time that was hidden
  /// behind useful work, hidden / (hidden + blocked). The schedule model's
  /// counterpart is 1 - 1/depth (total_pipelined()); bench_overlap tracks
  /// the gap between the two. 0 when no nonblocking exchange ran.
  double measured_overlap_fraction() const {
    const double window = measured_hidden + measured_blocked;
    return window > 0 ? measured_hidden / window : 0.0;
  }

  double comm() const { return alltoall + bcast + allreduce + other; }
  double comm_latency() const {
    return alltoall_latency + bcast_latency + allreduce_latency + other_latency;
  }
  double comm_bandwidth() const { return comm() - comm_latency(); }

  /// Bulk-synchronous epoch time (the paper's execution model):
  /// communication and computation serialize.
  double total() const { return compute + comm(); }

  /// Idealized full communication/computation overlap (the asynchronous
  /// scenario of Selvitopi et al. [21]): the epoch costs whichever side is
  /// longer. A lower bound for any real pipelining scheme; the gap
  /// total() - total_overlapped() is the most overlap could ever recover.
  double total_overlapped() const { return std::max(compute, comm()); }

  /// Critical path of a chunked-pipelining schedule with `stages` stages
  /// (the "1d-overlap" strategy): communication of chunk k+1 proceeds
  /// while chunk k computes, so a two-stage software pipeline over
  /// `stages` equal chunks has makespan
  ///
  ///   max(comm, compute) + min(comm, compute) / stages
  ///
  /// which interpolates exactly between the bulk-synchronous total()
  /// (stages = 1) and the ideal total_overlapped() bound (stages -> inf):
  /// total_overlapped() <= total_pipelined(s) <= total(), monotonically
  /// non-increasing in s. Note this is the schedule bound for the traffic
  /// ALREADY recorded — a chunked run pays extra per-message latency in
  /// comm() itself, which is how the chunk-count sweet spot arises.
  ///
  /// Like total_overlapped(), this treats ALL of comm() as overlappable.
  /// For a schedule that only chunks the alltoall (e.g. "1d-overlap" with
  /// serialized gradient all-reduces), it is an optimistic bound whenever
  /// non-alltoall communication is a significant share of comm().
  double total_pipelined(int stages) const {
    const double s = static_cast<double>(std::max(1, stages));
    return std::max(compute, comm()) + std::min(compute, comm()) / s;
  }

  /// Predicted per-epoch communication when the alltoall runs in `chunks`
  /// column chunks instead of the one this cost recorded: chunking re-pays
  /// the per-message latency once per chunk over the same payload,
  ///
  ///   alltoall(K) = K * alpha * m + beta * V,
  ///
  /// with m = alltoall_messages and V = alltoall_bytes (the bottleneck
  /// counts of a bulk-synchronous K=1 recording); every other bucket is
  /// invariant (its message count does not scale with K). Passing
  /// alpha = alltoall_latency / m and beta = (alltoall - alltoall_latency)
  /// / V reproduces comm() exactly at K = 1 — see effective_alpha_beta().
  double comm_repriced(int chunks, double alpha, double beta) const {
    return static_cast<double>(std::max(1, chunks)) * alpha * alltoall_messages +
           beta * alltoall_bytes + bcast + allreduce + other;
  }

  /// Message-count-aware alpha-beta pipelined model (docs/cost_model.md):
  /// the K-chunk schedule moves comm_repriced(K) worth of communication
  /// through a pipeline `depth` stages deep (depth = K for a within-layer
  /// schedule like "1d-overlap"; cross-layer schedules like "1.5d-overlap"
  /// pass their deeper recorded stage count), so
  ///
  ///   bulk(K)  = compute + comm(K)
  ///   pipe(K)  = max(compute, comm(K)) + min(compute, comm(K)) / depth
  ///   ideal(K) = max(compute, comm(K))
  ///
  /// and bulk(K) >= pipe(K) >= ideal(K) holds for EVERY K — the latency
  /// cap on the useful chunk depth arises because comm(K) itself grows
  /// with K, not because the ordering ever inverts. Predict from a
  /// bulk-synchronous (depth-1) recording; a chunked recording's message
  /// count is already inflated.
  double total_pipelined(int chunks, double alpha, double beta,
                         int depth = 0) const {
    const double comm_k = comm_repriced(chunks, alpha, beta);
    const double d = static_cast<double>(std::max(1, depth == 0 ? chunks : depth));
    return std::max(compute, comm_k) + std::min(compute, comm_k) / d;
  }

  /// The (alpha, beta) pair that makes comm_repriced(1, alpha, beta) ==
  /// comm() exactly: the recorded bottleneck latency per message and
  /// bandwidth-seconds per byte of the alltoall bucket. This is how a
  /// measured baseline row calibrates the predictive model above (zero if
  /// the respective count is zero).
  std::pair<double, double> effective_alpha_beta() const {
    return {alltoall_messages > 0 ? alltoall_latency / alltoall_messages : 0.0,
            alltoall_bytes > 0 ? (alltoall - alltoall_latency) / alltoall_bytes
                               : 0.0};
  }

  /// Multiply every field (compute, buckets, latency shares, counts) by
  /// `factor` — per-epoch averaging of a whole-run assembly.
  void scale(double factor);
};

/// Assemble an EpochCost from a recorder: phases map onto the breakdown
/// buckets by their base name, so the stages of a chunk-tagged phase
/// ("alltoall#k") accumulate into their base bucket, each stage charged at
/// its own bottleneck rank (stages are synchronization points of the
/// pipelined schedule). "sync" is excluded (barriers are free in the
/// paper's model), as is any phase whose base name appears in
/// `exclude_bases`; remaining phases land in `other`.
EpochCost epoch_cost(const CostModel& model, const TrafficRecorder& traffic,
                     const std::vector<double>& per_rank_cpu_seconds,
                     const std::vector<std::string>& exclude_bases = {});

}  // namespace sagnn
