#pragma once
// The simulated message-passing runtime.
//
// CommWorld owns one mailbox per rank; a Comm is a view of a subset of
// ranks (like an MPI communicator / NCCL clique). Send/Recv match on
// (source, tag) exactly like MPI point-to-point with explicit tags. The
// runtime is deliberately synchronous-copy (every Send deep-copies its
// payload) — simplicity and determinism over throughput; the performance
// *model* lives in CostModel, not in the runtime's own speed.
//
// Tag space: user tags must be < kUserTagLimit. Internal operations
// (barriers, collectives) use reserved offsets above that, further prefixed
// by a per-communicator id so concurrent collectives on different
// communicators never cross-match.

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "simcomm/traffic.hpp"

namespace sagnn {

/// Thrown out of blocked receives when the cluster is torn down after
/// another rank failed; prevents deadlock on rank errors.
class AbortedError : public Error {
 public:
  AbortedError() : Error("communication aborted: another rank failed") {}
};

class CommWorld {
 public:
  explicit CommWorld(int size);

  int size() const { return size_; }
  TrafficRecorder& traffic() { return traffic_; }
  const TrafficRecorder& traffic() const { return traffic_; }

  /// Blocking matched send: copies `data` into dst's mailbox and records
  /// the bytes under `phase`.
  void send(int src, int dst, long tag, std::span<const std::byte> data,
            const std::string& phase);

  /// Blocking receive of the message with matching (src, tag).
  std::vector<std::byte> recv(int me, int src, long tag);

  /// Wake every blocked receiver with AbortedError (called by Cluster when
  /// a rank throws).
  void abort();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  struct Message {
    int src;
    long tag;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Message> messages;
  };

  int size_;
  TrafficRecorder traffic_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
};

/// A communicator: an ordered subset of world ranks plus this thread's
/// position in it. Cheap to copy. All collective operations live in
/// collectives.hpp and operate on a Comm.
class Comm {
 public:
  /// World communicator for rank `rank`.
  Comm(CommWorld& world, int rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  CommWorld& world() const { return *world_; }
  /// World rank of communicator rank r.
  int world_rank(int r) const { return members_[static_cast<std::size_t>(r)]; }

  /// Typed send of trivially-copyable elements.
  template <typename T>
  void send(int dst, long tag, std::span<const T> data, const std::string& phase) {
    static_assert(std::is_trivially_copyable_v<T>);
    world_->send(world_rank(rank_), world_rank(dst), stamp(tag),
                 std::as_bytes(data), phase);
  }

  /// Typed receive; returns the payload reinterpreted as T.
  template <typename T>
  std::vector<T> recv(int src, long tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = world_->recv(world_rank(rank_), world_rank(src), stamp(tag));
    SAGNN_CHECK(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    // Zero-byte messages are legal (empty halo); memcpy's pointer args
    // must not be null even then.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Receive into a preallocated span (size must match exactly).
  template <typename T>
  void recv_into(int src, long tag, std::span<T> out) {
    auto raw = world_->recv(world_rank(rank_), world_rank(src), stamp(tag));
    SAGNN_REQUIRE(raw.size() == out.size_bytes(), "recv_into size mismatch");
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  }

  /// Dissemination barrier over this communicator. All members must call it
  /// the same number of times (standard collective semantics).
  void barrier();

  /// Split into sub-communicators without communication: `color_of` must be
  /// a pure function agreed on by every member (it is evaluated locally for
  /// all ranks). Members keep their relative order within a color.
  Comm split(const std::function<int(int)>& color_of) const;

 private:
  Comm() = default;

  /// Tags are namespaced by communicator id so concurrent operations on
  /// different communicators never match each other's messages. The id is
  /// folded to 20 bits; collisions across *simultaneously live* comms are
  /// avoided by deriving child ids from (parent id, split sequence, color).
  long stamp(long tag) const {
    SAGNN_CHECK(tag >= 0 && tag < kTagSpace);
    return (comm_id_ % (1L << 20)) * kTagSpace + tag;
  }

  static constexpr long kTagSpace = 1L << 30;
  static constexpr long kBarrierTagBase = 1L << 28;

  CommWorld* world_ = nullptr;
  std::vector<int> members_;
  int rank_ = -1;
  long comm_id_ = 0;
  long barrier_epoch_ = 0;
  long split_seq_ = 0;
};

/// User tags passed to Comm::send/recv must stay below this bound.
inline constexpr long kUserTagLimit = 1L << 24;

}  // namespace sagnn
