#pragma once
// The simulated message-passing runtime.
//
// CommWorld owns one mailbox per rank; a Comm is a view of a subset of
// ranks (like an MPI communicator / NCCL clique). The runtime is
// request-based: isend/irecv return Request handles and wait()/waitall()
// complete them, exactly the MPI_Isend/Irecv/Wait idiom the pipelined
// SpMM schedules are written in. Blocking send/recv remain as the
// post-and-wait composition of the same primitives, so there is a single
// matching path.
//
// Semantics:
//   * Sends are eager: isend deep-copies the payload into the receiver's
//     mailbox immediately and its Request is complete on return. Progress
//     therefore never depends on the sender again — it is driven entirely
//     by the receiver's mailbox.
//   * Matching is deterministic per (source, tag): the k-th POSTED receive
//     for a (src, tag) pair completes with the k-th SENT message of that
//     pair, regardless of the order the requests are waited in. Posting
//     order, not wait order, defines the stream — which is what keeps
//     chunked pipelines bitwise reproducible.
//   * Abort-safe: when a rank fails, Cluster calls abort() and every
//     pending wait (current or future) resolves to AbortedError instead of
//     deadlocking. Destroying an unwaited receive releases its slot in the
//     (src, tag) stream without corrupting later matches (no leak).
//   * wait() on an already-completed or empty handle is a typed
//     RequestError, never undefined behavior.
//
// Tag space: user tags must be < kUserTagLimit. Internal operations
// (barriers, collectives) use reserved offsets above that, further prefixed
// by a per-communicator id so concurrent collectives on different
// communicators never cross-match — pending requests included, since the
// namespacing happens at post time.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "simcomm/traffic.hpp"

namespace sagnn {

class FaultPlan;

/// Thrown out of blocked receives when the cluster is torn down after
/// another rank failed; prevents deadlock on rank errors.
class AbortedError : public Error {
 public:
  AbortedError() : Error("communication aborted: another rank failed") {}
};

/// Misuse of a Request handle: waiting twice, or waiting an empty
/// (default-constructed or moved-from) handle.
class RequestError : public Error {
 public:
  explicit RequestError(const std::string& msg) : Error("request error: " + msg) {}
};

/// Wall-clock decomposition of one completed wait (steady-clock seconds).
/// `hidden` is in-flight time that elapsed before wait() was entered (the
/// overlap a pipelined schedule earned); `blocked` is time actually stalled
/// inside wait() for the message to arrive.
struct WaitStats {
  double hidden = 0;
  double blocked = 0;
};

class CommWorld;

/// Handle for one in-flight nonblocking operation. Move-only; exactly one
/// wait() per handle. Destroying a pending receive abandons its slot in
/// the (src, tag) stream safely (the matching message, arrived or future,
/// is dropped; later posted receives keep their positions).
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { move_from(other); }
  Request& operator=(Request&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;
  ~Request() { release(); }

  /// True if this handle holds a not-yet-waited operation.
  bool valid() const { return state_ == State::kPending; }

  /// Complete the operation. Receives return the payload bytes (and block
  /// until the matching message arrives); sends return an empty vector
  /// immediately (eager runtime). Throws AbortedError if the world aborts
  /// while pending, RequestError on double-wait or an empty handle. When
  /// `stats` is non-null it receives the hidden/blocked decomposition of
  /// this wait.
  std::vector<std::byte> wait(WaitStats* stats = nullptr);

 private:
  friend class CommWorld;
  enum class State : std::uint8_t { kEmpty, kPending, kDone };
  enum class Kind : std::uint8_t { kSend, kRecv };

  Request(CommWorld* world, Kind kind, int me, int src, long tag,
          std::uint64_t seq, double posted_at)
      : world_(world),
        state_(State::kPending),
        kind_(kind),
        me_(me),
        src_(src),
        tag_(tag),
        seq_(seq),
        posted_at_(posted_at) {}

  void move_from(Request& other) {
    world_ = other.world_;
    state_ = other.state_;
    kind_ = other.kind_;
    me_ = other.me_;
    src_ = other.src_;
    tag_ = other.tag_;
    seq_ = other.seq_;
    posted_at_ = other.posted_at_;
    other.world_ = nullptr;
    other.state_ = State::kEmpty;
  }
  void release();

  CommWorld* world_ = nullptr;
  State state_ = State::kEmpty;
  Kind kind_ = Kind::kSend;
  int me_ = -1;
  int src_ = -1;
  long tag_ = 0;
  std::uint64_t seq_ = 0;
  double posted_at_ = 0;
};

class CommWorld {
 public:
  explicit CommWorld(int size);

  int size() const { return size_; }
  TrafficRecorder& traffic() { return traffic_; }
  const TrafficRecorder& traffic() const { return traffic_; }

  /// Nonblocking matched send: copies `data` into dst's mailbox, records
  /// the bytes under `phase`, and returns an (already complete — sends are
  /// eager) Request.
  Request isend(int src, int dst, long tag, std::span<const std::byte> data,
                const std::string& phase);

  /// Nonblocking matched receive: reserves the next slot of the (src, tag)
  /// stream at post time and returns the pending Request.
  Request irecv(int me, int src, long tag);

  /// Blocking matched send — isend without keeping the handle.
  void send(int src, int dst, long tag, std::span<const std::byte> data,
            const std::string& phase);

  /// Blocking receive of the message with matching (src, tag) —
  /// irecv(...).wait().
  std::vector<std::byte> recv(int me, int src, long tag);

  /// Wake every blocked receiver with AbortedError (called by Cluster when
  /// a rank throws). Pending requests resolve at their next wait().
  void abort();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Install a deterministic fault plan (fault.hpp). Null (the default)
  /// and an installed-but-empty plan are bitwise identical: every fault
  /// path is behind the null check AND the plan's own probabilities/specs.
  /// Call before any traffic; shared so drivers can inspect the plan.
  void install_fault_plan(std::shared_ptr<const FaultPlan> plan);
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// Arm scheduled kills for `epoch` and zero the per-rank send counters
  /// their `after_sends` thresholds count against. Call single-threaded
  /// between SPMD rounds (no rank may be inside the world). Kills stay
  /// disarmed (setup traffic runs kill-free) until the first call.
  void begin_fault_epoch(int epoch);

  /// Kill check at a schedule boundary (e.g. the top of an epoch): throws
  /// RankKilledError if a scheduled kill for `rank` in the armed epoch is
  /// due. Sends perform the same check implicitly.
  void poll_fault(int rank);

  /// Steady-clock seconds (arbitrary epoch) — the clock every WaitStats
  /// figure is expressed in.
  static double now_seconds();

 private:
  friend class Request;

  struct Message {
    int src;
    long tag;
    std::uint64_t seq;  ///< position in the (src, tag) arrival stream
    double sent_at;     ///< now_seconds() at deposit
    std::vector<std::byte> data;
  };
  /// A message a lossy link swallowed, parked in the RECEIVER's mailbox
  /// so the whole retry protocol runs under the one mailbox lock. The
  /// retransmission carries the original sequence number — deterministic
  /// (src, tag) matching is preserved underneath the faults.
  struct DroppedMessage {
    std::uint64_t attempts = 0;  ///< transmissions so far (all dropped)
    double sent_at = 0;
    std::vector<std::byte> data;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Message> messages;
    /// Next arrival / next posted-receive sequence number per (src, tag).
    std::map<std::pair<int, long>, std::uint64_t> arrival_seq;
    std::map<std::pair<int, long>, std::uint64_t> posted_seq;
    /// Slots whose receive was destroyed unwaited: the matching arrival is
    /// dropped on sight so later slots keep matching their own messages.
    std::map<std::pair<int, long>, std::set<std::uint64_t>> abandoned;
    /// Retransmit store of the retry protocol, keyed (src, tag, seq).
    std::map<std::tuple<int, long, std::uint64_t>, DroppedMessage> dropped;
  };

  /// Deliver a message into the mailbox unless an identical (src, tag,
  /// seq) copy is already present — a redundant retransmission, suppressed
  /// by sequence number. Caller holds the mailbox lock; returns false on
  /// suppression.
  static bool deposit(Mailbox& box, Message&& msg);

  /// Request::wait() for receives: claim the (src, tag, seq) message.
  std::vector<std::byte> wait_recv(int me, int src, long tag, std::uint64_t seq,
                                   double posted_at, WaitStats* stats);
  /// Request destructor path: drop the slot without corrupting the stream.
  void abandon_recv(int me, int src, long tag, std::uint64_t seq);

  int size_;
  TrafficRecorder traffic_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  /// Fault injection (null = fault-free fast path, bit-identical runtime).
  std::shared_ptr<const FaultPlan> fault_plan_;
  std::atomic<int> fault_epoch_{-1};  ///< kills armed only when >= 0
  /// Per-rank cross-rank sends completed in the armed epoch (KillSpec::
  /// after_sends thresholds count these).
  std::unique_ptr<std::atomic<std::uint64_t>[]> epoch_sends_;
};

/// Wait on every request in order; returns the payloads (empty vectors for
/// sends). When `accumulated` is non-null the per-request hidden/blocked
/// times are summed into it. If the world aborts mid-batch, every
/// remaining handle is resolved to AbortedError too (no stream slot is
/// left to be abandoned against the torn-down world) and the AbortedError
/// is rethrown.
std::vector<std::vector<std::byte>> waitall(std::span<Request> requests,
                                            WaitStats* accumulated = nullptr);

/// Consume every still-pending request of an ABORTED world, swallowing the
/// AbortedError each wait raises (immediate — aborted waits never block).
/// Batch primitives call this before surfacing the abort so no destructor
/// abandons a slot against the torn-down stream.
void resolve_aborted(std::span<Request> requests);

/// A communicator: an ordered subset of world ranks plus this thread's
/// position in it. Cheap to copy. All collective operations live in
/// collectives.hpp and operate on a Comm.
class Comm {
 public:
  /// World communicator for rank `rank`.
  Comm(CommWorld& world, int rank);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  CommWorld& world() const { return *world_; }
  /// World rank of communicator rank r.
  int world_rank(int r) const { return members_[static_cast<std::size_t>(r)]; }

  /// Typed send of trivially-copyable elements.
  template <typename T>
  void send(int dst, long tag, std::span<const T> data, const std::string& phase) {
    static_assert(std::is_trivially_copyable_v<T>);
    world_->send(world_rank(rank_), world_rank(dst), stamp(tag),
                 std::as_bytes(data), phase);
  }

  /// Typed nonblocking send (eager: the Request is complete on return).
  template <typename T>
  Request isend(int dst, long tag, std::span<const T> data,
                const std::string& phase) {
    static_assert(std::is_trivially_copyable_v<T>);
    return world_->isend(world_rank(rank_), world_rank(dst), stamp(tag),
                         std::as_bytes(data), phase);
  }

  /// Nonblocking receive; the payload comes back from Request::wait() as
  /// raw bytes — convert with payload_as<T>().
  Request irecv(int src, long tag) {
    return world_->irecv(world_rank(rank_), world_rank(src), stamp(tag));
  }

  /// Reinterpret a wait()ed payload as a vector of trivially-copyable T.
  template <typename T>
  static std::vector<T> payload_as(std::vector<std::byte> raw) {
    static_assert(std::is_trivially_copyable_v<T>);
    SAGNN_CHECK(raw.size() % sizeof(T) == 0);
    std::vector<T> out(raw.size() / sizeof(T));
    // Zero-byte messages are legal (empty halo); memcpy's pointer args
    // must not be null even then.
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Typed receive; returns the payload reinterpreted as T.
  template <typename T>
  std::vector<T> recv(int src, long tag) {
    return payload_as<T>(world_->recv(world_rank(rank_), world_rank(src), stamp(tag)));
  }

  /// Receive into a preallocated span (size must match exactly).
  template <typename T>
  void recv_into(int src, long tag, std::span<T> out) {
    auto raw = world_->recv(world_rank(rank_), world_rank(src), stamp(tag));
    SAGNN_REQUIRE(raw.size() == out.size_bytes(), "recv_into size mismatch");
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  }

  /// Dissemination barrier over this communicator. All members must call it
  /// the same number of times (standard collective semantics).
  void barrier();

  /// Split into sub-communicators without communication: `color_of` must be
  /// a pure function agreed on by every member (it is evaluated locally for
  /// all ranks). Members keep their relative order within a color.
  Comm split(const std::function<int(int)>& color_of) const;

 private:
  Comm() = default;

  /// Tags are namespaced by communicator id so concurrent operations on
  /// different communicators never match each other's messages — including
  /// pending requests, since stamping happens when the request is posted.
  /// The id is folded to 20 bits; collisions across *simultaneously live*
  /// comms are avoided by deriving child ids from (parent id, split
  /// sequence, color).
  long stamp(long tag) const {
    SAGNN_CHECK(tag >= 0 && tag < kTagSpace);
    return (comm_id_ % (1L << 20)) * kTagSpace + tag;
  }

  static constexpr long kTagSpace = 1L << 30;
  static constexpr long kBarrierTagBase = 1L << 28;

  CommWorld* world_ = nullptr;
  std::vector<int> members_;
  int rank_ = -1;
  long comm_id_ = 0;
  long barrier_epoch_ = 0;
  long split_seq_ = 0;
};

/// User tags passed to Comm::send/recv must stay below this bound.
inline constexpr long kUserTagLimit = 1L << 24;

}  // namespace sagnn
