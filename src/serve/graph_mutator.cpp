#include "serve/graph_mutator.hpp"

#include <algorithm>

namespace sagnn::serve {

GraphMutator::GraphMutator(CsrMatrix base) : base_(std::move(base)) {
  SAGNN_REQUIRE(base_.n_rows() == base_.n_cols(),
                "GraphMutator needs a square adjacency");
  nnz_ = base_.nnz();
}

real_t GraphMutator::base_at(vid_t row, vid_t col, bool* present) const {
  const auto cols = base_.row_cols(row);
  const auto it = std::lower_bound(cols.begin(), cols.end(), col);
  if (it == cols.end() || *it != col) {
    *present = false;
    return real_t{0};
  }
  *present = true;
  return base_.row_vals(row)[static_cast<std::size_t>(it - cols.begin())];
}

real_t GraphMutator::at(vid_t u, vid_t v) const {
  SAGNN_REQUIRE(u >= 0 && u < n() && v >= 0 && v < n(), "vertex out of range");
  const auto dit = deltas_.find(u);
  if (dit != deltas_.end()) {
    const RowDelta& d = dit->second;
    const auto up = d.upserts.find(v);
    if (up != d.upserts.end()) return up->second;
    if (d.erases.contains(v)) return real_t{0};
  }
  bool present = false;
  return base_at(u, v, &present);
}

GraphMutator::ArcResult GraphMutator::upsert_arc(vid_t row, vid_t col,
                                                 real_t value) {
  RowDelta& d = deltas_[row];
  bool in_base = false;
  const real_t base_val = base_at(row, col, &in_base);
  const std::size_t before = d.upserts.size() + d.erases.size();

  ArcResult res;
  const auto up = d.upserts.find(col);
  if (up != d.upserts.end()) {
    // Already upserted (present): value change only.
    if (up->second != value) {
      up->second = value;
      res.changed = true;
    }
  } else if (d.erases.contains(col)) {
    // Re-inserting a base column that was pending erase.
    d.erases.erase(col);
    res.nnz_delta = 1;
    res.changed = true;
    if (base_val != value) d.upserts.emplace(col, value);
  } else if (in_base) {
    if (base_val != value) {
      d.upserts.emplace(col, value);
      res.changed = true;
    }
  } else {
    d.upserts.emplace(col, value);
    res.nnz_delta = 1;
    res.changed = true;
  }
  stats_.overlay_entries += d.upserts.size() + d.erases.size() - before;
  if (d.upserts.empty() && d.erases.empty()) deltas_.erase(row);
  return res;
}

GraphMutator::ArcResult GraphMutator::erase_arc(vid_t row, vid_t col) {
  ArcResult res;
  const auto dit = deltas_.find(row);
  bool in_base = false;
  base_at(row, col, &in_base);

  if (dit != deltas_.end()) {
    RowDelta& d = dit->second;
    const auto up = d.upserts.find(col);
    if (up != d.upserts.end()) {
      d.upserts.erase(up);
      if (in_base) {
        d.erases.insert(col);
      } else {
        --stats_.overlay_entries;
      }
      res.nnz_delta = -1;
      res.changed = true;
      if (d.upserts.empty() && d.erases.empty()) deltas_.erase(dit);
      return res;
    }
    if (d.erases.contains(col)) return res;  // already erased: no-op
  }
  if (!in_base) return res;  // never existed: no-op
  deltas_[row].erases.insert(col);
  ++stats_.overlay_entries;
  res.nnz_delta = -1;
  res.changed = true;
  return res;
}

void GraphMutator::notify_dirty(vid_t row) {
  if (dirty_listener_) dirty_listener_(row);
}

void GraphMutator::adjust_load(vid_t row, int nnz_delta) {
  if (!tracking_ || nnz_delta == 0) return;
  const int part = parts_.part_of[static_cast<std::size_t>(row)];
  part_loads_[static_cast<std::size_t>(part)] += nnz_delta;
}

bool GraphMutator::insert_edge(vid_t u, vid_t v, real_t value) {
  SAGNN_REQUIRE(u >= 0 && u < n() && v >= 0 && v < n(), "vertex out of range");
  const ArcResult a = upsert_arc(u, v, value);
  const ArcResult b = u == v ? ArcResult{} : upsert_arc(v, u, value);
  nnz_ += a.nnz_delta + b.nnz_delta;
  adjust_load(u, a.nnz_delta);
  adjust_load(v, b.nnz_delta);
  const bool changed = a.changed || b.changed;
  if (!changed) {
    ++stats_.noop_ops;
  } else if (a.nnz_delta != 0 || b.nnz_delta != 0) {
    ++stats_.inserts;
  } else {
    ++stats_.value_updates;
  }
  if (a.changed) notify_dirty(u);
  if (b.changed) notify_dirty(v);
  maybe_repartition();
  maybe_compact();
  return changed;
}

bool GraphMutator::erase_edge(vid_t u, vid_t v) {
  SAGNN_REQUIRE(u >= 0 && u < n() && v >= 0 && v < n(), "vertex out of range");
  const ArcResult a = erase_arc(u, v);
  const ArcResult b = u == v ? ArcResult{} : erase_arc(v, u);
  nnz_ += a.nnz_delta + b.nnz_delta;
  adjust_load(u, a.nnz_delta);
  adjust_load(v, b.nnz_delta);
  const bool changed = a.changed || b.changed;
  if (changed) {
    ++stats_.erases;
  } else {
    ++stats_.noop_ops;
  }
  if (a.changed) notify_dirty(u);
  if (b.changed) notify_dirty(v);
  maybe_repartition();
  maybe_compact();
  return changed;
}

CsrMatrix GraphMutator::materialize() const {
  const vid_t nn = n();
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(nn) + 1, 0);
  std::vector<vid_t> col_idx;
  std::vector<real_t> vals;
  col_idx.reserve(static_cast<std::size_t>(nnz_));
  vals.reserve(static_cast<std::size_t>(nnz_));
  for (vid_t r = 0; r < nn; ++r) {
    for_each_nonzero(r, [&](vid_t c, real_t v) {
      col_idx.push_back(c);
      vals.push_back(v);
    });
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<eid_t>(col_idx.size());
  }
  return CsrMatrix(nn, nn, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

void GraphMutator::compact() {
  if (deltas_.empty()) return;
  base_ = materialize();
  deltas_.clear();
  stats_.overlay_entries = 0;
  ++stats_.compactions;
  SAGNN_CHECK(base_.nnz() == nnz_);
}

void GraphMutator::maybe_compact() {
  if (compaction_threshold_ > 0 &&
      stats_.overlay_entries > compaction_threshold_) {
    compact();
  }
}

void GraphMutator::enable_partition_tracking(Partition parts,
                                             std::string partitioner_name,
                                             PartitionerOptions opts,
                                             double imbalance_threshold) {
  SAGNN_REQUIRE(parts.n() == n(), "partition size must match the graph");
  SAGNN_REQUIRE(imbalance_threshold > 1.0,
                "imbalance threshold must exceed 1 (perfect balance)");
  parts.validate();
  tracking_ = true;
  parts_ = std::move(parts);
  partitioner_name_ = std::move(partitioner_name);
  partitioner_opts_ = opts;
  imbalance_threshold_ = imbalance_threshold;
  recompute_loads();
}

void GraphMutator::recompute_loads() {
  part_loads_.assign(static_cast<std::size_t>(parts_.k), 0);
  for (vid_t r = 0; r < n(); ++r) {
    eid_t row_nnz = 0;
    const auto dit = deltas_.find(r);
    if (dit == deltas_.end()) {
      row_nnz = base_.row_nnz(r);
    } else {
      for_each_nonzero(r, [&](vid_t, real_t) { ++row_nnz; });
    }
    part_loads_[static_cast<std::size_t>(
        parts_.part_of[static_cast<std::size_t>(r)])] += row_nnz;
  }
}

double GraphMutator::imbalance() const {
  if (!tracking_ || part_loads_.empty()) return 0.0;
  const eid_t max_load = *std::max_element(part_loads_.begin(), part_loads_.end());
  eid_t total = 0;
  for (const eid_t l : part_loads_) total += l;
  if (total == 0) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(part_loads_.size());
  return static_cast<double>(max_load) / avg;
}

void GraphMutator::maybe_repartition() {
  if (!tracking_ || imbalance() <= imbalance_threshold_) return;
  // Same move as the checkpoint elastic restart: fold updates in, then ask
  // the registry for a fresh partition of the current graph.
  compact();
  parts_ = make_partitioner(partitioner_name_, partitioner_opts_)
               ->partition(base_, parts_.k);
  recompute_loads();
  ++stats_.repartitions;
}

}  // namespace sagnn::serve
