#pragma once
// Streaming graph updates for online serving: a delta overlay over an
// immutable CsrMatrix.
//
// CSR is the right format for reading (every kernel in src/sparse assumes
// it) and the wrong one for writing — a single edge insertion shifts O(nnz)
// array tail. The mutator therefore keeps the graph as
//
//     base CSR  +  per-row delta {upserts, erases}
//
// and answers row reads through a two-pointer merge that yields (col, val)
// pairs in strictly increasing column order — the SAME sequence a
// compacted CSR row would yield. Because every aggregation in this
// codebase accumulates a row's nonzeros in column order, reads through the
// overlay are bitwise identical to reads of the compacted matrix; the
// serving bench asserts exactly this across a compaction boundary.
//
// When the overlay grows past a configurable threshold (reads slow down
// linearly in delta size), the mutator compacts: rebuilds the CSR with the
// deltas folded in and clears the overlay. Compaction changes the physical
// representation only, never the logical graph, so cached aggregations
// survive it.
//
// Two notification hooks close the loop with the rest of the serving
// stack:
//   * a dirty listener fires once per logically-changed row (both
//     endpoints of an edge op) — the InferenceEngine subscribes it to
//     invalidate exactly the affected cache entries;
//   * optional partition tracking maintains per-part nonzero loads under
//     updates and, past an imbalance threshold, re-partitions through the
//     SAME registry path the checkpoint elastic restart uses
//     (make_partitioner by name — see TrainerBuilder::resume's ranks()
//     override), so serving rebalances with the partitioners the training
//     side already trusts.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "partition/partition.hpp"
#include "sparse/csr.hpp"

namespace sagnn::serve {

class GraphMutator {
 public:
  /// Takes the serving-time adjacency (square, e.g. a Dataset's Â).
  explicit GraphMutator(CsrMatrix base);

  vid_t n() const { return base_.n_rows(); }
  /// Logical nonzero count (base with the overlay folded in).
  eid_t nnz() const { return nnz_; }

  /// Symmetric upsert of edge {u, v} (both directions; a self loop is one
  /// entry). Returns true if the logical graph changed (new edge or new
  /// value); an exact duplicate is a no-op. Changed endpoints are reported
  /// to the dirty listener.
  bool insert_edge(vid_t u, vid_t v, real_t value = real_t{1});

  /// Symmetric removal of edge {u, v}. Returns false (counted no-op) if
  /// the edge is absent.
  bool erase_edge(vid_t u, vid_t v);

  /// Visit row `row`'s logical nonzeros as fn(col, val) in strictly
  /// increasing column order — identical to iterating the compacted CSR.
  template <typename Fn>
  void for_each_nonzero(vid_t row, Fn&& fn) const {
    const auto cols = base_.row_cols(row);
    const auto vals = base_.row_vals(row);
    const auto dit = deltas_.find(row);
    if (dit == deltas_.end()) {
      for (std::size_t k = 0; k < cols.size(); ++k) fn(cols[k], vals[k]);
      return;
    }
    const RowDelta& d = dit->second;
    auto up = d.upserts.begin();
    std::size_t k = 0;
    while (k < cols.size() || up != d.upserts.end()) {
      if (up == d.upserts.end() || (k < cols.size() && cols[k] < up->first)) {
        if (!d.erases.contains(cols[k])) fn(cols[k], vals[k]);
        ++k;
      } else if (k == cols.size() || up->first < cols[k]) {
        fn(up->first, up->second);
        ++up;
      } else {  // same column: the upsert's value wins
        fn(cols[k], up->second);
        ++k;
        ++up;
      }
    }
  }

  /// Logical value at (u, v); 0 if absent.
  real_t at(vid_t u, vid_t v) const;

  /// Build the logical graph as a standalone validated CSR.
  CsrMatrix materialize() const;

  /// Fold the overlay into the base CSR and clear it. Logical no-op.
  void compact();

  bool has_overlay() const { return !deltas_.empty(); }

  /// Auto-compact once the overlay holds more than `max_entries` pending
  /// upserts+erases (0 = never; the default). Checked after each edge op.
  void set_compaction_threshold(std::size_t max_entries) {
    compaction_threshold_ = max_entries;
    maybe_compact();
  }

  /// Called once per row whose logical content changed (at most two rows
  /// per edge op). Pass nullptr to unsubscribe.
  void set_dirty_listener(std::function<void(vid_t)> listener) {
    dirty_listener_ = std::move(listener);
  }

  /// Begin maintaining per-part nonzero loads for `parts` under updates.
  /// When max/avg part load exceeds `imbalance_threshold` after an edge
  /// op, the mutator compacts and re-partitions via
  /// make_partitioner(partitioner_name, opts) — the registry path shared
  /// with the checkpoint elastic restart.
  void enable_partition_tracking(Partition parts, std::string partitioner_name,
                                 PartitionerOptions opts,
                                 double imbalance_threshold);

  /// Current partition, or nullptr when tracking is off. Invalidated by
  /// re-partitioning.
  const Partition* partition() const {
    return tracking_ ? &parts_ : nullptr;
  }

  /// max/avg per-part nonzero load; 1.0 is perfect balance. 0 when
  /// tracking is off.
  double imbalance() const;

  struct Stats {
    std::uint64_t inserts = 0;       ///< structural insertions
    std::uint64_t value_updates = 0; ///< weight-only upserts
    std::uint64_t erases = 0;
    std::uint64_t noop_ops = 0;      ///< duplicate inserts + absent erases
    std::uint64_t compactions = 0;
    std::uint64_t repartitions = 0;
    std::size_t overlay_entries = 0; ///< pending upserts + erases
  };
  const Stats& stats() const { return stats_; }

 private:
  struct RowDelta {
    std::map<vid_t, real_t> upserts;  ///< col -> new value
    std::set<vid_t> erases;           ///< cols removed from the base row
    // Invariant: upserts and erases are disjoint; erases only holds
    // columns present in the base row.
  };

  /// One direction (row, col): returns +1/-1 nonzero-count change (0 for a
  /// value-only change or no-op) and whether the row's content changed.
  struct ArcResult {
    int nnz_delta = 0;
    bool changed = false;
  };
  ArcResult upsert_arc(vid_t row, vid_t col, real_t value);
  ArcResult erase_arc(vid_t row, vid_t col);

  real_t base_at(vid_t row, vid_t col, bool* present) const;
  void notify_dirty(vid_t row);
  void adjust_load(vid_t row, int nnz_delta);
  void maybe_compact();
  void maybe_repartition();
  void recompute_loads();

  CsrMatrix base_;
  std::unordered_map<vid_t, RowDelta> deltas_;
  eid_t nnz_ = 0;
  std::size_t compaction_threshold_ = 0;
  std::function<void(vid_t)> dirty_listener_;

  bool tracking_ = false;
  Partition parts_;
  std::string partitioner_name_;
  PartitionerOptions partitioner_opts_;
  double imbalance_threshold_ = 0.0;
  std::vector<eid_t> part_loads_;

  Stats stats_;
};

}  // namespace sagnn::serve
