#pragma once
// Read-only checkpoint loading for serving: materialize trained weights
// and the graph fingerprint from a SAGNCKPT stream WITHOUT constructing a
// Trainer.
//
// TrainerBuilder::resume() is the wrong tool for inference — it rebuilds
// the entire training apparatus (partition, simulated cluster, optimizer
// and RNG state, traffic recorders) just to get at the weight matrices. A
// serving process wants exactly three things from a checkpoint: the model
// configuration, the weights, and enough dataset identity to refuse a
// checkpoint taken on a different graph.
//
// The loader reads the common prologue every trainer writes ("config" +
// "dataset"), then walks the remaining sections: "progress" and "model"
// are interpreted; anything else — "rng", "traffic", "rank_cpu",
// "sampled_metrics", whatever a future trainer adds — is skipped through
// Deserializer::skip_section(), which still verifies the section CRC. A
// checkpoint from ANY training mode is therefore loadable, and damage
// anywhere in the file is still detected. Malformed or incompatible
// streams throw the typed errors of ckpt/errors.hpp; a stream without a
// "model" section (no trainer writes one of those, but a truncated-and-
// repaired file could look like that) is a CheckpointFormatError.

#include <iosfwd>
#include <string>
#include <vector>

#include "gnn/trainer.hpp"
#include "graph/datasets.hpp"

namespace sagnn::serve {

class ModelLoader {
 public:
  /// Parses the whole checkpoint stream eagerly; every format/CRC problem
  /// surfaces here, not at first use.
  explicit ModelLoader(std::istream& in);

  /// The "dataset" section: identity of the graph the model was trained on.
  struct Fingerprint {
    std::string name;
    vid_t n = 0;
    vid_t f = 0;
    vid_t classes = 0;
    eid_t nnz = 0;
  };

  const TrainConfig& train_config() const { return config_; }
  const Fingerprint& fingerprint() const { return fingerprint_; }
  int epochs_trained() const { return epochs_trained_; }
  const std::vector<EpochMetrics>& metrics() const { return metrics_; }
  /// Section names that were skipped (mode-specific training state).
  const std::vector<std::string>& skipped_sections() const { return skipped_; }

  const GcnModel& model() const { return model_; }
  /// Move the weights out (the loader is spent afterwards).
  GcnModel take_model() { return std::move(model_); }

  /// Throw CheckpointMismatchError unless `ds` is the checkpoint's
  /// dataset. `allow_edge_drift` relaxes only the edge count — the knob
  /// for serving graphs that have absorbed streaming updates since
  /// training; name, vertex count, feature width, and class count must
  /// always match (the model's shapes depend on them).
  void require_compatible(const Dataset& ds,
                          bool allow_edge_drift = false) const;

 private:
  TrainConfig config_;
  Fingerprint fingerprint_;
  GcnModel model_;
  int epochs_trained_ = 0;
  std::vector<EpochMetrics> metrics_;
  std::vector<std::string> skipped_;
};

}  // namespace sagnn::serve
