#pragma once
// Byte-capacity-bounded LRU cache of layer-1 aggregation rows, the memory
// the online inference engine trades for latency.
//
// What is cached and why exactly this: the first-layer aggregation
// M¹_u = (Â·H⁰)_u is the only per-node intermediate of a GCN forward pass
// that (a) depends on nothing but the graph row and the STATIC feature
// matrix — weights never touch it, so it survives arbitrarily many
// queries — and (b) sits under every query that touches u's neighborhood,
// at any layer depth. Deeper intermediates would also need invalidation
// when any multi-hop neighbor changes; M¹ rows are invalidated by exactly
// the streaming edge updates incident to u (GraphMutator's dirty
// notifications), which keeps invalidation precise instead of
// conservative.
//
// Capacity is measured in payload bytes (row length × sizeof(real_t)), not
// entries, because serving deployments budget cache memory, not counts.
// Capacity 0 disables the cache entirely (every lookup is a miss and
// inserts are dropped) — the configuration the correctness property tests
// use as the "no cache" baseline.

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace sagnn::serve {

class AggregationCache {
 public:
  /// `capacity_bytes` bounds the sum of cached row payloads; 0 disables.
  explicit AggregationCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;      ///< capacity-pressure removals
    std::uint64_t invalidations = 0;  ///< explicit removals (graph updates)
    std::size_t entries = 0;
    std::size_t bytes = 0;  ///< current payload footprint

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  /// Row for `node`, or nullptr on miss. A hit refreshes recency. The
  /// pointer stays valid until the next insert/invalidate/clear.
  const std::vector<real_t>* lookup(vid_t node);

  /// Cache `row` for `node`, evicting least-recently-used entries until it
  /// fits. A row larger than the whole capacity is not cached. Inserting
  /// over an existing entry replaces it (refreshing recency).
  void insert(vid_t node, std::vector<real_t> row);

  /// Drop `node` if cached (a graph update made its row stale).
  void invalidate(vid_t node);

  /// Drop everything; counters survive (they describe the workload, not
  /// the content).
  void clear();

  std::size_t capacity_bytes() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }
  const Stats& stats() const { return stats_; }
  void reset_counters();

 private:
  struct Entry {
    vid_t node;
    std::vector<real_t> row;
  };

  void evict_lru();

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<vid_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace sagnn::serve
