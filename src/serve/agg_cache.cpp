#include "serve/agg_cache.hpp"

namespace sagnn::serve {

const std::vector<real_t>* AggregationCache::lookup(vid_t node) {
  const auto it = index_.find(node);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->row;
}

void AggregationCache::insert(vid_t node, std::vector<real_t> row) {
  const std::size_t bytes = row.size() * sizeof(real_t);
  if (bytes > capacity_) return;  // covers the disabled (capacity 0) case
  const auto it = index_.find(node);
  if (it != index_.end()) {
    stats_.bytes -= it->second->row.size() * sizeof(real_t);
    stats_.bytes += bytes;
    it->second->row = std::move(row);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (stats_.bytes + bytes > capacity_) evict_lru();
  lru_.push_front(Entry{node, std::move(row)});
  index_[node] = lru_.begin();
  stats_.bytes += bytes;
  stats_.entries = index_.size();
}

void AggregationCache::evict_lru() {
  SAGNN_CHECK(!lru_.empty());
  const Entry& victim = lru_.back();
  stats_.bytes -= victim.row.size() * sizeof(real_t);
  index_.erase(victim.node);
  lru_.pop_back();
  ++stats_.evictions;
  stats_.entries = index_.size();
}

void AggregationCache::invalidate(vid_t node) {
  const auto it = index_.find(node);
  if (it == index_.end()) return;
  stats_.bytes -= it->second->row.size() * sizeof(real_t);
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
  stats_.entries = index_.size();
}

void AggregationCache::clear() {
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
}

void AggregationCache::reset_counters() {
  stats_.hits = 0;
  stats_.misses = 0;
  stats_.evictions = 0;
  stats_.invalidations = 0;
}

}  // namespace sagnn::serve
