#pragma once
// Online GCN inference over a mutating graph.
//
// Serving answers "what are the logits of node v RIGHT NOW?" without
// paying a full-graph forward pass per query. The engine walks v's
// L-hop neighborhood (Â contains self loops, so every frontier includes
// its sources), computes only the rows each layer actually needs, and
// backs the innermost level with the AggregationCache: the layer-1
// aggregation M¹_u = (Â·H⁰)_u is weight-independent and reusable across
// queries until an edge incident to u changes — which the GraphMutator
// reports through its dirty listener, so invalidation is exact, not
// conservative.
//
// THE contract of this subsystem is bitwise identity: for every node v
// and any overlay state,
//
//     infer_node(v) == infer_node_bypass(v)
//                   == full_forward().row(v)
//                   == the training forward on materialize()   (bit for bit)
//
// It holds because every per-row kernel here replicates the exact
// floating-point accumulation order of the training kernels: row
// aggregation visits nonzeros in strictly increasing column order (what
// GraphMutator::for_each_nonzero yields and spmm_accumulate does), and
// the row×W product accumulates over the input dimension ascending with
// the output row as the inner loop (gemm's ikj order). The serving bench
// and the property tests assert the chain across cache states, overlay
// states, compaction boundaries, and thread counts.
//
// Queries are served on the calling thread (latency path, no fan-out);
// full_forward() uses the parallel training kernels, which are bitwise
// thread-count-invariant.

#include <span>
#include <unordered_map>
#include <vector>

#include "dense/matrix.hpp"
#include "gnn/model.hpp"
#include "serve/agg_cache.hpp"
#include "serve/graph_mutator.hpp"
#include "sparse/sell.hpp"

namespace sagnn::serve {

class InferenceEngine {
 public:
  /// `graph` must outlive the engine. `features` is H⁰ (one row per
  /// vertex); `cache_capacity_bytes` bounds the aggregation cache
  /// (0 disables caching). The engine subscribes to the mutator's dirty
  /// notifications for exact cache invalidation. `kernels` selects the
  /// SpMM format full_forward() streams (sparse/sell.hpp; bitwise-neutral,
  /// so the contract above is unchanged by it).
  InferenceEngine(GcnModel model, Matrix features, GraphMutator& graph,
                  std::size_t cache_capacity_bytes,
                  const KernelConfig& kernels = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Logits of node v on the current graph (cached path).
  std::vector<real_t> infer_node(vid_t v);

  /// Same answer, never reading or writing the cache — the correctness
  /// reference the bench compares against.
  std::vector<real_t> infer_node_bypass(vid_t v);

  /// Logits for a batch of nodes (rows in input order). The L-hop
  /// frontier expansion is shared across the batch, so overlapping
  /// neighborhoods are computed once.
  Matrix infer_batch(std::span<const vid_t> nodes);

  /// Whole-graph forward with the training kernels (spmm + gemm) on
  /// materialize() — the ground truth the per-node paths are bit-equal to.
  Matrix full_forward() const;

  const GcnModel& model() const { return model_; }
  const AggregationCache::Stats& cache_stats() const { return cache_.stats(); }
  AggregationCache& cache() { return cache_; }

 private:
  /// Batch forward over the L-hop frontiers of `targets`; `use_cache`
  /// selects the cached or bypass path for the level-1 aggregations.
  Matrix infer_targets(std::span<const vid_t> targets, bool use_cache);

  /// (Â·H⁰)_row computed from the mutator (increasing-column order).
  std::vector<real_t> aggregate_features(vid_t row) const;

  GcnModel model_;
  Matrix features_;
  GraphMutator& graph_;
  AggregationCache cache_;
  /// Format knob for full_forward()'s SpMM; the operand is rebuilt per
  /// call because materialize() folds the current overlay each time.
  KernelConfig kernels_;
};

}  // namespace sagnn::serve
