#include "serve/model_loader.hpp"

#include "ckpt/state_io.hpp"

namespace sagnn::serve {

ModelLoader::ModelLoader(std::istream& in) {
  ckpt::Deserializer d(in);

  // The prologue every trainer writes, in fixed order.
  d.enter_section("config");
  config_ = ckpt::read_train_config(d);
  d.leave_section();
  if (config_.gcn.dims.size() < 2) {
    throw ckpt::CheckpointFormatError(
        "section 'config': model has no layer dimensions");
  }

  d.enter_section("dataset");
  fingerprint_.name = d.read_string();
  fingerprint_.n = d.read_i32();
  fingerprint_.f = d.read_i32();
  fingerprint_.classes = d.read_i32();
  fingerprint_.nnz = d.read_i64();
  d.leave_section();

  // Everything after the prologue is mode-specific; take what serving
  // needs, skip (with CRC verification) what it does not.
  bool have_model = false;
  while (d.peek_section() != ckpt::kEndSection) {
    const std::string& name = d.peek_section();
    if (name == "progress") {
      epochs_trained_ = ckpt::read_progress(d, metrics_);
    } else if (name == "model") {
      model_ = GcnModel(config_.gcn);
      d.enter_section("model");
      ckpt::read_model_into(d, model_);
      d.leave_section();
      have_model = true;
    } else {
      skipped_.push_back(d.skip_section());
    }
  }
  d.finish();
  if (!have_model) {
    throw ckpt::CheckpointFormatError(
        "checkpoint holds no 'model' section — nothing to serve");
  }
}

void ModelLoader::require_compatible(const Dataset& ds,
                                     bool allow_edge_drift) const {
  const bool nnz_ok = allow_edge_drift || fingerprint_.nnz == ds.n_edges();
  if (fingerprint_.name == ds.name && fingerprint_.n == ds.n_vertices() &&
      fingerprint_.f == ds.n_features() &&
      fingerprint_.classes == ds.n_classes && nnz_ok) {
    return;
  }
  throw ckpt::CheckpointMismatchError(
      "checkpoint was trained on dataset '" + fingerprint_.name + "' (n=" +
      std::to_string(fingerprint_.n) + ", f=" + std::to_string(fingerprint_.f) +
      ", classes=" + std::to_string(fingerprint_.classes) +
      ", nnz=" + std::to_string(fingerprint_.nnz) + "), serving targets '" +
      ds.name + "' (n=" + std::to_string(ds.n_vertices()) +
      ", f=" + std::to_string(ds.n_features()) +
      ", classes=" + std::to_string(ds.n_classes) +
      ", nnz=" + std::to_string(ds.n_edges()) +
      (allow_edge_drift ? ", edge drift allowed" : "") + ")");
}

}  // namespace sagnn::serve
