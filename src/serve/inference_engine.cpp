#include "serve/inference_engine.hpp"

#include <algorithm>

#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "sparse/spmm.hpp"

namespace sagnn::serve {

namespace {

/// z = sigma(m · W) for one row, replicating gemm_rows' per-element
/// accumulation order (input dimension p ascending, output j inner) and
/// ops.cpp's relu formula — the bitwise contract with the training path.
std::vector<real_t> row_times_weights(const std::vector<real_t>& m,
                                      const Matrix& w, bool apply_relu) {
  const vid_t f_in = w.n_rows();
  const vid_t f_out = w.n_cols();
  SAGNN_CHECK(m.size() == static_cast<std::size_t>(f_in));
  std::vector<real_t> z(static_cast<std::size_t>(f_out), real_t{0});
  for (vid_t p = 0; p < f_in; ++p) {
    const real_t mp = m[static_cast<std::size_t>(p)];
    const real_t* wp = w.row(p);
    for (vid_t j = 0; j < f_out; ++j) z[static_cast<std::size_t>(j)] += mp * wp[j];
  }
  if (apply_relu) {
    for (real_t& x : z) x = x > 0 ? x : real_t{0};
  }
  return z;
}

}  // namespace

InferenceEngine::InferenceEngine(GcnModel model, Matrix features,
                                 GraphMutator& graph,
                                 std::size_t cache_capacity_bytes,
                                 const KernelConfig& kernels)
    : model_(std::move(model)),
      features_(std::move(features)),
      graph_(graph),
      cache_(cache_capacity_bytes),
      kernels_(kernels) {
  SAGNN_REQUIRE(model_.n_layers() >= 1, "model has no layers");
  SAGNN_REQUIRE(features_.n_rows() == graph_.n(),
                "feature matrix must have one row per vertex");
  SAGNN_REQUIRE(model_.layer(0).in_features() == features_.n_cols(),
                "model input width must match the feature width");
  graph_.set_dirty_listener([this](vid_t v) { cache_.invalidate(v); });
}

InferenceEngine::~InferenceEngine() { graph_.set_dirty_listener(nullptr); }

std::vector<real_t> InferenceEngine::aggregate_features(vid_t row) const {
  std::vector<real_t> acc(static_cast<std::size_t>(features_.n_cols()),
                          real_t{0});
  const vid_t f = features_.n_cols();
  graph_.for_each_nonzero(row, [&](vid_t c, real_t a) {
    const real_t* hr = features_.row(c);
    for (vid_t j = 0; j < f; ++j) acc[static_cast<std::size_t>(j)] += a * hr[j];
  });
  return acc;
}

Matrix InferenceEngine::infer_targets(std::span<const vid_t> targets,
                                      bool use_cache) {
  const int n_layers = model_.n_layers();
  for (const vid_t v : targets) {
    SAGNN_REQUIRE(v >= 0 && v < graph_.n(), "query vertex out of range");
  }

  // need[l] = sorted unique vertices whose H^l rows the pass must
  // produce, l in [1, n_layers]. Expanding from the targets downward:
  // H^{l+1}[u] consumes H^l rows of u's neighborhood (self included — Â
  // carries self loops).
  std::vector<std::vector<vid_t>> need(static_cast<std::size_t>(n_layers) + 1);
  auto& top = need[static_cast<std::size_t>(n_layers)];
  top.assign(targets.begin(), targets.end());
  std::sort(top.begin(), top.end());
  top.erase(std::unique(top.begin(), top.end()), top.end());
  for (int l = n_layers - 1; l >= 1; --l) {
    auto& frontier = need[static_cast<std::size_t>(l)];
    for (const vid_t u : need[static_cast<std::size_t>(l) + 1]) {
      graph_.for_each_nonzero(u,
                              [&](vid_t c, real_t) { frontier.push_back(c); });
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());
  }

  // Level 1: layer-1 aggregations come from the cache (or are computed
  // and cached); everything above is query-local.
  std::unordered_map<vid_t, std::vector<real_t>> h;
  h.reserve(need[1].size());
  const GcnLayer& layer0 = model_.layer(0);
  for (const vid_t u : need[1]) {
    std::vector<real_t> m1;
    if (use_cache) {
      if (const std::vector<real_t>* hit = cache_.lookup(u)) {
        m1 = *hit;
      } else {
        m1 = aggregate_features(u);
        cache_.insert(u, m1);
      }
    } else {
      m1 = aggregate_features(u);
    }
    h.emplace(u, row_times_weights(m1, layer0.weights(), layer0.has_relu()));
  }

  for (int l = 1; l < n_layers; ++l) {
    const GcnLayer& layer = model_.layer(l);
    std::unordered_map<vid_t, std::vector<real_t>> next;
    const auto& level = need[static_cast<std::size_t>(l) + 1];
    next.reserve(level.size());
    const auto f_in = static_cast<std::size_t>(layer.in_features());
    for (const vid_t u : level) {
      std::vector<real_t> m(f_in, real_t{0});
      graph_.for_each_nonzero(u, [&](vid_t c, real_t a) {
        const std::vector<real_t>& hc = h.at(c);
        for (std::size_t j = 0; j < f_in; ++j) m[j] += a * hc[j];
      });
      next.emplace(u, row_times_weights(m, layer.weights(), layer.has_relu()));
    }
    h = std::move(next);
  }

  const vid_t out_width = model_.layer(n_layers - 1).out_features();
  Matrix out(static_cast<vid_t>(targets.size()), out_width);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::vector<real_t>& row = h.at(targets[i]);
    std::copy(row.begin(), row.end(), out.row(static_cast<vid_t>(i)));
  }
  return out;
}

std::vector<real_t> InferenceEngine::infer_node(vid_t v) {
  const Matrix out = infer_targets({&v, 1}, /*use_cache=*/true);
  return {out.row(0), out.row(0) + out.n_cols()};
}

std::vector<real_t> InferenceEngine::infer_node_bypass(vid_t v) {
  const Matrix out = infer_targets({&v, 1}, /*use_cache=*/false);
  return {out.row(0), out.row(0) + out.n_cols()};
}

Matrix InferenceEngine::infer_batch(std::span<const vid_t> nodes) {
  return infer_targets(nodes, /*use_cache=*/true);
}

Matrix InferenceEngine::full_forward() const {
  const CsrMatrix a = graph_.materialize();
  const SpmmOperand op(a, kernels_);
  Matrix h = features_;
  for (int l = 0; l < model_.n_layers(); ++l) {
    const GcnLayer& layer = model_.layer(l);
    Matrix m = spmm(op, h);
    Matrix z = gemm(m, layer.weights());
    h = layer.has_relu() ? relu(z) : std::move(z);
  }
  return h;
}

}  // namespace sagnn::serve
