#pragma once
// One GCN layer (Kipf & Welling), factored so the same code runs serially
// and distributed: the aggregation M = Â·H is performed OUTSIDE the layer
// (serial SpMM or a distributed SpMM algorithm); the layer owns the local
// dense algebra:
//
//   forward:   Z = M W,  H_out = sigma(Z)     (identity on the last layer)
//   backward:  dZ = dH_out (.* sigma'(Z) if activated)
//              dW = M^T dZ     (caller sums across ranks when distributed)
//              dM = dZ W^T     (caller then computes dH_in = Â dM)
//
// The layer caches M and Z from the forward pass for use in backward.

#include "dense/gemm.hpp"
#include "dense/matrix.hpp"
#include "dense/ops.hpp"

namespace sagnn {

class GcnLayer {
 public:
  GcnLayer() = default;
  GcnLayer(Matrix w, bool apply_relu) : w_(std::move(w)), relu_(apply_relu) {}

  vid_t in_features() const { return w_.n_rows(); }
  vid_t out_features() const { return w_.n_cols(); }
  bool has_relu() const { return relu_; }
  const Matrix& weights() const { return w_; }
  Matrix& weights_mut() { return w_; }

  /// Forward: consumes the aggregated input M = Â·H_in. Caches M and Z.
  Matrix forward(Matrix m);

  /// Backward helper results.
  struct Backward {
    Matrix d_weights;  ///< local contribution M^T dZ (sum across ranks!)
    Matrix d_m;        ///< dM = dZ W^T; aggregate with Â for dH_in
    Matrix d_z;        ///< dZ after activation gradient (exposed for tests)
  };

  /// Backward from the gradient wrt this layer's output.
  Backward backward(const Matrix& d_h_out) const;

  /// Apply a gradient step W -= lr * (dW + weight_decay * W).
  void apply_gradient(const Matrix& d_weights, real_t lr,
                      real_t weight_decay = 0.0f);

 private:
  Matrix w_;
  bool relu_ = true;
  Matrix cached_m_;
  Matrix cached_z_;
};

}  // namespace sagnn
