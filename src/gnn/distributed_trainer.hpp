#pragma once
// Distributed full-graph GCN training on the simulated cluster, written
// once against the DistributionStrategy interface: pick a strategy and a
// partitioner (both by registry name, via TrainConfig), and the trainer
//   1. partitions & symmetrically permutes Â (and H rows, labels, masks),
//   2. spins up P rank-threads and runs each strategy's setup (the one-time
//      index exchange is recorded separately and excluded from epoch cost,
//      as the paper excludes preprocessing),
//   3. trains the GCN with replicated weights, one run_epoch() at a time
//      (per-rank state persists across epochs, so callers may interleave
//      epoch stepping with inspection),
//   4. reports per-epoch metrics, exact per-phase communication volumes,
//      the alpha-beta modeled epoch-time breakdown, and partition quality.

#include <memory>

#include "gnn/strategy.hpp"
#include "gnn/trainer.hpp"
#include "simcomm/cluster.hpp"

namespace sagnn {

class DistributedTrainer final : public Trainer {
 public:
  /// Validates geometry (via the strategy), GCN dimensions, and resolves
  /// both registry names (std::invalid_argument on unknown ones).
  DistributedTrainer(const Dataset& dataset, TrainConfig config);
  ~DistributedTrainer() override;

  std::string name() const override;
  int epochs_run() const override { return epoch_; }
  EpochMetrics run_epoch() override;

  /// All remaining epochs. With a fault plan installed and
  /// FaultRecovery::kCheckpointRestart, this is the closed recovery loop:
  /// an injected rank kill aborts the epoch, the trainer restores from the
  /// last auto-checkpoint (elastically on p-1 ranks when the kill is
  /// permanent; cold-restarts from epoch 0 when no snapshot exists yet)
  /// and keeps training. Under FaultRecovery::kNone the typed
  /// RankKilledError propagates to the caller.
  const std::vector<EpochMetrics>& train() override;
  const TrainResult& result() override;

  /// Snapshot the job: one copy of the (replicated, verified-identical)
  /// model weights, the metric trajectory, recorded traffic, and per-rank
  /// CPU-second accumulators. Restoring on the SAME rank count continues
  /// bit-identically (loss trajectory, weights, per-epoch phase volumes);
  /// restoring on a different p is an elastic restart: the graph is
  /// re-partitioned and traffic accounting restarts at the resume epoch.
  void save(std::ostream& out) override;

  const TrainConfig& config() const { return config_; }
  /// The replicated model (every rank holds a bitwise-identical copy).
  const GcnModel& model() const;

 protected:
  void restore(ckpt::Deserializer& d, const TrainConfig& saved) override;

 private:
  struct RankState;

  StrategyContext context() const {
    return {config_.p,  config_.c, &a_, ranges_, config_.pipeline_chunks,
            config_.kernels};
  }
  /// Partition + permute the dataset for config_.p/c and spin up a fresh
  /// cluster with per-rank strategy setup. The constructor's body, also
  /// re-run by kill recovery (the aborted world, its mailboxes, and any
  /// partial epoch state are garbage after a kill — everything is rebuilt,
  /// then checkpoint state is injected via restore()).
  void initialize();
  /// Closed-loop recovery from one injected rank kill (see train()).
  void recover_from_kill(const RankKilledError& kill);
  void finalize();

  TrainConfig config_;
  const Dataset* dataset_;  ///< checkpoint fingerprint + elastic re-partition

  // The permuted problem (block rows contiguous per part).
  CsrMatrix a_;
  Matrix h0_;
  std::vector<vid_t> labels_;
  std::vector<std::uint8_t> mask_;
  std::vector<vid_t> original_id_;
  std::vector<BlockRange> ranges_;
  std::int64_t total_train_ = 0;

  std::unique_ptr<DistributionStrategy> job_strategy_;  ///< cost/geometry queries
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<RankState>> states_;
  std::vector<double> rank_cpu_seconds_;  ///< accumulated across epochs

  std::vector<EpochMetrics> epochs_;
  TrainResult result_;
  int epoch_ = 0;
  /// Epochs whose traffic is NOT in this process's recorder: 0 normally
  /// and after a same-p restore (the snapshot carries the full history);
  /// the resume epoch after an ELASTIC restore, where the old geometry's
  /// traffic is meaningless and accounting restarts fresh.
  int traffic_epoch_base_ = 0;
  int finalized_epochs_ = -1;  ///< epochs covered by result_; -1 = never

  RecoveryStats recovery_;
  /// Fault counters of clusters torn down by kill recovery (the live
  /// cluster's recorder is added at finalize()).
  FaultCounters faults_before_recovery_;
};

}  // namespace sagnn
