#include "gnn/serial_trainer.hpp"

#include "ckpt/state_io.hpp"

namespace sagnn {

SerialTrainer::SerialTrainer(const Dataset& dataset, GcnConfig config,
                             const KernelConfig& kernels)
    : dataset_(dataset),
      config_(std::move(config)),
      adjacency_(dataset.adjacency, kernels),
      model_(config_) {
  SAGNN_REQUIRE(config_.dims.front() == dataset.n_features(),
                "config input width must match dataset features");
  SAGNN_REQUIRE(config_.dims.back() == dataset.n_classes,
                "config output width must match dataset classes");
}

Matrix SerialTrainer::forward() {
  Matrix h = dataset_.features;
  if (config_.dropout > 0.0f) {
    dropout_rows_deterministic(h, config_.dropout,
                               config_.seed ^ (0x9e37ull * (epoch_ + 1)), 0);
  }
  for (int l = 0; l < model_.n_layers(); ++l) {
    Matrix m = spmm(adjacency_, h);
    h = model_.layer(l).forward(std::move(m));
  }
  return h;
}

EpochMetrics SerialTrainer::run_epoch() {
  const Matrix logits = forward();
  const LossStats stats =
      softmax_xent_stats(logits, dataset_.labels, dataset_.train_mask);

  // Backward: dH starts as the loss gradient wrt the logits.
  Matrix d_h = softmax_xent_grad(logits, dataset_.labels, dataset_.train_mask,
                                 stats.count);
  std::vector<Matrix> d_weights(static_cast<std::size_t>(model_.n_layers()));
  for (int l = model_.n_layers() - 1; l >= 0; --l) {
    auto back = model_.layer(l).backward(d_h);
    d_weights[static_cast<std::size_t>(l)] = std::move(back.d_weights);
    if (l > 0) d_h = spmm(adjacency_, back.d_m);
  }
  for (int l = 0; l < model_.n_layers(); ++l) {
    model_.layer(l).apply_gradient(d_weights[static_cast<std::size_t>(l)],
                                   config_.learning_rate, config_.weight_decay);
  }
  ++epoch_;
  metrics_.push_back({stats.mean_loss(), stats.accuracy()});
  return metrics_.back();
}

const std::vector<EpochMetrics>& SerialTrainer::train() {
  while (epoch_ < config_.epochs) {
    run_epoch();
    maybe_auto_checkpoint(epoch_);
  }
  return metrics_;
}

const TrainResult& SerialTrainer::result() {
  result_.epochs = metrics_;
  return result_;
}

void SerialTrainer::save(std::ostream& out) {
  ckpt::Serializer s(out);
  TrainConfig cfg;
  cfg.gcn = config_;
  cfg.strategy = "serial";
  ckpt::write_prologue(s, cfg, dataset_);
  ckpt::write_progress(s, epoch_, metrics_);
  s.begin_section("model");
  ckpt::write_model(s, model_);
  s.end_section();
  s.finish();
}

void SerialTrainer::restore(ckpt::Deserializer& d, const TrainConfig& /*saved*/) {
  epoch_ = ckpt::read_progress(d, metrics_);
  d.enter_section("model");
  ckpt::read_model_into(d, model_);
  d.leave_section();
}

}  // namespace sagnn
