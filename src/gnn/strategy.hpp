#pragma once
// The distribution-strategy seam of distributed training.
//
// A DistributionStrategy encapsulates everything that differs between the
// paper's communication schemes (1D/1.5D/2D x oblivious/sparsity-aware):
// the process geometry, the per-rank communicators and distributed-matrix
// state, the collective schedule of one aggregation Â·X in forward and
// backward direction, and the algorithm-specific part of the modeled
// epoch cost. The DistributedTrainer is written once against this
// interface; concrete strategies live in src/gnn/strategies/ and
// self-register with strategy_registry() under CLI-friendly names, so new
// schemes plug in without touching the trainer or any driver.
//
// Lifecycle: a strategy object is created per rank (plus one job-level
// instance for geometry/cost queries). setup() binds it to a rank inside
// the cluster; the propagate calls and reduce_comm() are only valid after
// setup().

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/registry.hpp"
#include "dense/matrix.hpp"
#include "simcomm/collectives.hpp"
#include "simcomm/cost_model.hpp"
#include "sparse/blocks.hpp"
#include "sparse/sell.hpp"

namespace sagnn {

/// Immutable job-level description shared by all ranks: the (already
/// partitioned and symmetrically permuted) adjacency and its block rows.
struct StrategyContext {
  int p = 1;  ///< simulated GPU count
  int c = 1;  ///< replication factor (1.5D family; others ignore it)
  const CsrMatrix* adjacency = nullptr;
  std::span<const BlockRange> ranges;
  /// Column-chunk count for pipelined strategies ("1d-overlap",
  /// "1.5d-overlap"); bulk-synchronous strategies ignore it.
  int pipeline_chunks = 4;
  /// Local-kernel selection forwarded to the distributed SpMM layers
  /// (sparse/sell.hpp); bitwise-neutral.
  KernelConfig kernels{};
};

struct GraphCensus;  // src/plan/census.hpp

/// One candidate configuration to be priced by predict_cost(): the census
/// plus every knob the planner (src/plan/planner.hpp) searches over.
struct PredictInput {
  const GraphCensus* census = nullptr;
  int p = 1;       ///< simulated GPU count
  int c = 1;       ///< replication factor / 3D depth
  int chunks = 1;  ///< pipeline chunks K (pipelined strategies)
  std::string partitioner = "block";  ///< partitioner registry name
  CostModel model;                    ///< volume_scale already calibrated
  std::vector<vid_t> dims;            ///< GCN layer widths {d_0 .. d_L}
  /// Host multiply-add throughput for the NOMINAL compute term (no
  /// measurement enters a prediction — that is what keeps a ranked plan
  /// deterministic across machines and thread counts). bench_planner pins
  /// the truth runs' compute to the same closed form, so regret compares
  /// schedules, not host noise.
  double host_madds_per_second = 2.5e8;
};

/// A predicted epoch cost: the closed-form volume/message models of
/// docs/strategies.md priced through the alpha-beta CostModel.
struct PredictedCost {
  bool valid = false;  ///< false: invalid geometry / strategy cannot predict
  EpochCost cost;      ///< buckets + latency decomposition, no measurement
  int depth = 1;       ///< modeled pipeline depth for total_pipelined()
  std::string note;    ///< why invalid (diagnostics)

  /// The planner's ranking score.
  double seconds() const { return cost.total_pipelined(depth); }
};

/// Prices the collective patterns of the strategies into EpochCost buckets
/// under a CostModel — the shared vocabulary of the predict_cost()
/// overrides. Byte arguments are RAW; volume_scale is applied here (to
/// bytes, never to message counts), mirroring epoch_cost(). The alpha/beta
/// mix distinguishes ring exchanges (the bottleneck rank sits on a node
/// boundary, so its neighbor link is inter-node as soon as the group spans
/// nodes) from spread exchanges (a rank talks to every group member, so
/// intra-node peers dilute the latency).
class CostEstimator {
 public:
  explicit CostEstimator(const CostModel& model) : m_(model) {}

  /// Average per-message alpha/beta for a rank exchanging with all
  /// `group - 1` peers spaced `stride` apart in global rank order.
  double alpha_spread(int group, int stride) const;
  double beta_spread(int group, int stride) const;
  /// Alpha/beta of a ring step when the ring's members are spaced `stride`
  /// apart: inter-node iff the ring spans a node boundary.
  double alpha_ring(int group, int stride) const;
  double beta_ring(int group, int stride) const;

  /// Pairwise alltoallv: `msgs` messages and `bytes` payload serialized at
  /// the bottleneck rank of a `group`-member communicator.
  void alltoall(EpochCost& c, double bytes, double msgs, int group,
                int stride) const;
  /// Binomial-tree broadcast phase, receive side of the bottleneck rank.
  void bcast(EpochCost& c, double bytes, double msgs, int group,
             int stride) const;
  /// Ring all-reduce of `payload_bytes` over `ring` members: 2(r-1)
  /// messages and ~2 payload bytes per rank.
  void allreduce(EpochCost& c, double payload_bytes, int ring,
                 int stride) const;
  /// Point-to-point traffic outside the named buckets (transpose remaps,
  /// depth all-gathers) — lands in `other` like its recorded phase would.
  void exchange(EpochCost& c, double bytes, double msgs, int group,
                int stride) const;

  /// Nominal compute seconds for `madds` multiply-adds: host throughput
  /// scaled by the model's host->device factor and volume_scale (compute
  /// is linear in n*f exactly like bytes — see CostModel::volume_scale).
  double compute_seconds(double madds, double host_madds_per_second) const;

 private:
  const CostModel& m_;
};

/// The per-propagate feature widths of one epoch for GCN layer dims
/// {d_0 .. d_L}: forward propagates at d_0 .. d_{L-1}, backward at
/// d_{L-1} .. d_1 (2L - 1 propagates; {f, 16, 16, 16, 16} for the default
/// architecture).
std::vector<vid_t> propagate_widths(const std::vector<vid_t>& dims);

/// The layer dims a prediction uses: in.dims when set, else the trainer's
/// default architecture {f, 16, 16, classes} derived from the census.
std::vector<vid_t> effective_dims(const PredictInput& in);

/// Fills the strategy-INDEPENDENT part of a prediction into `cost`: the
/// nominal compute term (tile SpMM at nnz/p per rank times the
/// partitioner's compute-imbalance factor at `n_blocks`, plus the dense
/// layer GEMMs at `dense_rows` rows per rank) and the per-layer
/// weight-gradient + loss ring all-reduces over the reduce scope
/// (`reduce_ranks` members spaced `reduce_stride` apart). Returns the
/// propagate widths for the strategy-specific communication terms.
std::vector<vid_t> predict_base(EpochCost& cost, const PredictInput& in,
                                int n_blocks, double dense_rows,
                                int reduce_ranks, int reduce_stride);

class DistributionStrategy {
 public:
  virtual ~DistributionStrategy() = default;

  /// Canonical registry name, e.g. "1.5d-sparse".
  virtual std::string name() const = 0;

  /// Number of block rows the partitioner must produce for (p, c).
  /// Throws Error on invalid geometry (non-square P for 2D, c^2 ∤ P, ...).
  virtual int n_blocks(int p, int c) const = 0;

  /// Per-rank setup: split subcommunicators, build the local distributed
  /// matrix state, run the one-time index exchange (sparsity-aware modes;
  /// recorded under phase "index_exchange"). Collective over `comm`.
  virtual void setup(Comm& comm, const StrategyContext& ctx) = 0;

  /// Called by the trainer at the top of every epoch, before the first
  /// propagate. Cross-layer pipelined strategies ("1.5d-overlap") reset
  /// their epoch-wide stage counter here so the stage-tagged traffic of
  /// layer l+1 lands in the pipeline slots directly after layer l's — the
  /// same tags every epoch, which keeps per-stage accumulation and
  /// checkpointed traffic histories comparable across epochs.
  /// Bulk-synchronous strategies ignore it.
  virtual void begin_epoch() {}

  /// One aggregation Â·X of the forward pass, input and output in this
  /// rank's H residency. Local compute seconds accumulate into
  /// *cpu_seconds when non-null.
  virtual Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) = 0;

  /// The backward-pass aggregation Â·G (Â is symmetric, so the schedule may
  /// coincide with forward; kept separate so asymmetric or pipelined
  /// schedules can diverge).
  virtual Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) = 0;

  /// Communicator whose members own pairwise-distinct block rows — the
  /// scope for global reductions of losses and weight gradients.
  virtual Comm& reduce_comm() = 0;

  /// This rank's block-row range (valid after setup()).
  virtual const BlockRange& my_range() const = 0;

  /// Relative compute weight of every rank (share of total nnz-work). Used
  /// to redistribute measured CPU seconds, which are noisy under thread
  /// oversubscription (see epoch_cost()).
  virtual std::vector<double> rank_work(const StrategyContext& ctx) const = 0;

  /// Algorithm-aware modeled cost of ONE epoch: smooths the measured CPU
  /// seconds over rank_work(), applies the alpha-beta model to the recorded
  /// traffic, averages over `epochs`, and removes the one-time index
  /// exchange from the per-epoch breakdown.
  EpochCost epoch_cost(const CostModel& model, const TrafficRecorder& traffic,
                       std::span<const double> rank_cpu_seconds,
                       const StrategyContext& ctx, int epochs) const;

  /// The compute-smoothing half of epoch_cost(), exposed so callers can
  /// also report per-rank bottlenecks.
  std::vector<double> smooth_rank_cpu(const StrategyContext& ctx,
                                      std::span<const double> measured) const;

  /// Closed-form predicted cost of ONE epoch for a candidate configuration,
  /// from census statistics alone — no setup(), no cluster, no training
  /// run. Strategies opt in by overriding; the base declines (valid =
  /// false), which the planner reports as a skipped candidate. Must return
  /// valid = false (never throw) on invalid geometry.
  virtual PredictedCost predict_cost(const PredictInput& in) const;
};

/// rank_work() of any strategy whose rank r owns block row r outright
/// (the 1D family): each rank's share is its block's nnz.
std::vector<double> block_row_nnz_work(const StrategyContext& ctx);

using StrategyRegistry = NamedRegistry<DistributionStrategy>;

/// The process-wide distribution-strategy registry.
StrategyRegistry& strategy_registry();

/// Static-initialization helper: declare one per strategy .cpp.
struct StrategyRegistration {
  StrategyRegistration(const std::string& canonical,
                       std::vector<std::string> aliases,
                       StrategyRegistry::Factory factory) {
    strategy_registry().add(canonical, std::move(aliases), std::move(factory));
  }
};

}  // namespace sagnn
