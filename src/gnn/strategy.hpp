#pragma once
// The distribution-strategy seam of distributed training.
//
// A DistributionStrategy encapsulates everything that differs between the
// paper's communication schemes (1D/1.5D/2D x oblivious/sparsity-aware):
// the process geometry, the per-rank communicators and distributed-matrix
// state, the collective schedule of one aggregation Â·X in forward and
// backward direction, and the algorithm-specific part of the modeled
// epoch cost. The DistributedTrainer is written once against this
// interface; concrete strategies live in src/gnn/strategies/ and
// self-register with strategy_registry() under CLI-friendly names, so new
// schemes plug in without touching the trainer or any driver.
//
// Lifecycle: a strategy object is created per rank (plus one job-level
// instance for geometry/cost queries). setup() binds it to a rank inside
// the cluster; the propagate calls and reduce_comm() are only valid after
// setup().

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/registry.hpp"
#include "dense/matrix.hpp"
#include "simcomm/collectives.hpp"
#include "simcomm/cost_model.hpp"
#include "sparse/blocks.hpp"

namespace sagnn {

/// Immutable job-level description shared by all ranks: the (already
/// partitioned and symmetrically permuted) adjacency and its block rows.
struct StrategyContext {
  int p = 1;  ///< simulated GPU count
  int c = 1;  ///< replication factor (1.5D family; others ignore it)
  const CsrMatrix* adjacency = nullptr;
  std::span<const BlockRange> ranges;
  /// Column-chunk count for pipelined strategies ("1d-overlap",
  /// "1.5d-overlap"); bulk-synchronous strategies ignore it.
  int pipeline_chunks = 4;
};

class DistributionStrategy {
 public:
  virtual ~DistributionStrategy() = default;

  /// Canonical registry name, e.g. "1.5d-sparse".
  virtual std::string name() const = 0;

  /// Number of block rows the partitioner must produce for (p, c).
  /// Throws Error on invalid geometry (non-square P for 2D, c^2 ∤ P, ...).
  virtual int n_blocks(int p, int c) const = 0;

  /// Per-rank setup: split subcommunicators, build the local distributed
  /// matrix state, run the one-time index exchange (sparsity-aware modes;
  /// recorded under phase "index_exchange"). Collective over `comm`.
  virtual void setup(Comm& comm, const StrategyContext& ctx) = 0;

  /// Called by the trainer at the top of every epoch, before the first
  /// propagate. Cross-layer pipelined strategies ("1.5d-overlap") reset
  /// their epoch-wide stage counter here so the stage-tagged traffic of
  /// layer l+1 lands in the pipeline slots directly after layer l's — the
  /// same tags every epoch, which keeps per-stage accumulation and
  /// checkpointed traffic histories comparable across epochs.
  /// Bulk-synchronous strategies ignore it.
  virtual void begin_epoch() {}

  /// One aggregation Â·X of the forward pass, input and output in this
  /// rank's H residency. Local compute seconds accumulate into
  /// *cpu_seconds when non-null.
  virtual Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) = 0;

  /// The backward-pass aggregation Â·G (Â is symmetric, so the schedule may
  /// coincide with forward; kept separate so asymmetric or pipelined
  /// schedules can diverge).
  virtual Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) = 0;

  /// Communicator whose members own pairwise-distinct block rows — the
  /// scope for global reductions of losses and weight gradients.
  virtual Comm& reduce_comm() = 0;

  /// This rank's block-row range (valid after setup()).
  virtual const BlockRange& my_range() const = 0;

  /// Relative compute weight of every rank (share of total nnz-work). Used
  /// to redistribute measured CPU seconds, which are noisy under thread
  /// oversubscription (see epoch_cost()).
  virtual std::vector<double> rank_work(const StrategyContext& ctx) const = 0;

  /// Algorithm-aware modeled cost of ONE epoch: smooths the measured CPU
  /// seconds over rank_work(), applies the alpha-beta model to the recorded
  /// traffic, averages over `epochs`, and removes the one-time index
  /// exchange from the per-epoch breakdown.
  EpochCost epoch_cost(const CostModel& model, const TrafficRecorder& traffic,
                       std::span<const double> rank_cpu_seconds,
                       const StrategyContext& ctx, int epochs) const;

  /// The compute-smoothing half of epoch_cost(), exposed so callers can
  /// also report per-rank bottlenecks.
  std::vector<double> smooth_rank_cpu(const StrategyContext& ctx,
                                      std::span<const double> measured) const;
};

/// rank_work() of any strategy whose rank r owns block row r outright
/// (the 1D family): each rank's share is its block's nnz.
std::vector<double> block_row_nnz_work(const StrategyContext& ctx);

using StrategyRegistry = NamedRegistry<DistributionStrategy>;

/// The process-wide distribution-strategy registry.
StrategyRegistry& strategy_registry();

/// Static-initialization helper: declare one per strategy .cpp.
struct StrategyRegistration {
  StrategyRegistration(const std::string& canonical,
                       std::vector<std::string> aliases,
                       StrategyRegistry::Factory factory) {
    strategy_registry().add(canonical, std::move(aliases), std::move(factory));
  }
};

}  // namespace sagnn
