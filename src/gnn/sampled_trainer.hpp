#pragma once
// Mini-batch GCN training with layer-wise neighbor sampling (GraphSAGE
// style) — the alternative the paper argues AGAINST in §1: sampling from
// the L-hop neighborhood per batch "suffers from irregular memory accesses,
// lack of parallelism, and risk of accuracy degradation", which motivates
// the full-batch approach this library parallelizes.
//
// This baseline exists so that claim is demonstrable inside this codebase
// (see examples/minibatch_vs_fullbatch.cpp):
//   * per-epoch sampled-edge counts show the multiplicative L-hop blow-up,
//   * loss/accuracy trajectories show the sampling-noise degradation
//     relative to SerialTrainer on the same dataset and model.
//
// Implements the unified Trainer interface (run_epoch()/train()/result()
// report the common loss/accuracy metrics); the sampling-specific counters
// are available through the *_detailed() variants.
//
// Sampling scheme: for each mini-batch of training vertices, walk layers
// backwards; at layer l each frontier vertex keeps at most fanout[l]
// uniformly-sampled in-neighbors. Aggregations use the GCN-normalized Â
// entries rescaled by deg/sample so the sampled aggregate is an unbiased
// estimator of the full-batch one.

#include <vector>

#include "gnn/serial_trainer.hpp"

namespace sagnn {

struct SampledEpochMetrics {
  double loss = 0;            ///< mean training loss over the epoch's batches
  double train_accuracy = 0;  ///< accuracy over the epoch's batch vertices
  std::int64_t sampled_edges = 0;  ///< aggregation nnz touched this epoch
  std::int64_t batches = 0;
};

class SampledTrainer final : public Trainer {
 public:
  /// `kernels` selects the SpMM format for the full-graph evaluate() pass
  /// (per-batch blocks stay CSR: they are built and discarded per batch,
  /// so a SELL conversion would cost more than it saves).
  SampledTrainer(const Dataset& dataset, GcnConfig config,
                 SamplingConfig sampling, const KernelConfig& kernels = {});

  std::string name() const override { return "sampled"; }
  int epochs_run() const override {
    return static_cast<int>(detailed_.size());
  }

  /// One epoch = one pass over all training vertices in shuffled
  /// mini-batches, with an SGD step per batch.
  EpochMetrics run_epoch() override;
  const std::vector<EpochMetrics>& train() override;
  const TrainResult& result() override;

  /// Snapshot model weights, the mini-batch RNG stream, and both metric
  /// trajectories (common + sampling counters). Resume continues the
  /// shuffles and neighbor draws bit-identically.
  void save(std::ostream& out) override;

  /// Same epoch step, returning the sampling-specific counters.
  SampledEpochMetrics run_epoch_detailed();
  /// Remaining epochs with detailed metrics for every epoch run so far.
  const std::vector<SampledEpochMetrics>& train_detailed();

  /// Full-graph (non-sampled) evaluation of the current weights; lets the
  /// accuracy comparison against full-batch training be apples-to-apples.
  LossStats evaluate() const;

  const GcnModel& model() const { return model_; }

 protected:
  void restore(ckpt::Deserializer& d, const TrainConfig& saved) override;

 private:
  /// One layer of the sampled computation graph: a block matrix mapping
  /// the previous frontier to the current one, with rescaled Â values.
  struct SampledLayer {
    CsrMatrix block;           ///< |targets| x |sources|
    std::vector<vid_t> sources;  ///< global vertex ids of the columns
  };

  /// Build the L-layer sampled computation graph for `batch` (global ids).
  /// Returns layers outermost-first along with the innermost source list.
  std::vector<SampledLayer> sample_batch(const std::vector<vid_t>& batch);

  const Dataset& dataset_;
  GcnConfig config_;
  SamplingConfig sampling_;
  /// The full adjacency in the configured kernel format (evaluate() only).
  SpmmOperand adjacency_;
  GcnModel model_;
  Rng rng_;
  std::vector<vid_t> train_vertices_;
  std::vector<SampledEpochMetrics> detailed_;
  std::vector<EpochMetrics> metrics_;
  TrainResult result_;
};

}  // namespace sagnn
