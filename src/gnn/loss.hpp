#pragma once
// Masked softmax cross-entropy for semi-supervised node classification.
// Works on a (local block of) logits with the matching label/mask slices;
// the distributed trainer all-reduces the (loss_sum, correct, count)
// triple so every rank sees the global metrics.

#include <span>

#include "dense/matrix.hpp"
#include "dense/ops.hpp"

namespace sagnn {

struct LossStats {
  double loss_sum = 0;     ///< sum of -log p[label] over masked rows
  std::int64_t correct = 0;  ///< masked rows where argmax == label
  std::int64_t count = 0;    ///< number of masked rows

  double mean_loss() const { return count > 0 ? loss_sum / count : 0.0; }
  double accuracy() const {
    return count > 0 ? static_cast<double>(correct) / count : 0.0;
  }
};

/// Forward statistics over the masked rows of `logits`.
LossStats softmax_xent_stats(const Matrix& logits, std::span<const vid_t> labels,
                             std::span<const std::uint8_t> mask);

/// Gradient of mean masked cross-entropy wrt logits: (softmax - onehot) /
/// total_count on masked rows, zero elsewhere. `total_count` is the GLOBAL
/// number of masked rows (pass LossStats::count for serial use).
Matrix softmax_xent_grad(const Matrix& logits, std::span<const vid_t> labels,
                         std::span<const std::uint8_t> mask,
                         std::int64_t total_count);

}  // namespace sagnn
