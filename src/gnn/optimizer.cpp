#include "gnn/optimizer.hpp"

#include <cmath>

namespace sagnn {

void Adam::step(std::size_t slot, Matrix& w, const Matrix& grad) {
  if (slots_.size() <= slot) slots_.resize(slot + 1);
  Moments& mom = slots_[slot];
  if (mom.m.size() == 0) {
    mom.m = Matrix(w.n_rows(), w.n_cols());
    mom.v = Matrix(w.n_rows(), w.n_cols());
  }
  SAGNN_REQUIRE(grad.n_rows() == w.n_rows() && grad.n_cols() == w.n_cols(),
                "Adam gradient shape mismatch");
  ++mom.t;
  const real_t bc1 = real_t{1} - std::pow(beta1_, static_cast<real_t>(mom.t));
  const real_t bc2 = real_t{1} - std::pow(beta2_, static_cast<real_t>(mom.t));
  real_t* wm = w.data();
  real_t* m = mom.m.data();
  real_t* v = mom.v.data();
  const real_t* g = grad.data();
  for (std::size_t i = 0; i < w.size(); ++i) {
    m[i] = beta1_ * m[i] + (real_t{1} - beta1_) * g[i];
    v[i] = beta2_ * v[i] + (real_t{1} - beta2_) * g[i] * g[i];
    const real_t mhat = m[i] / bc1;
    const real_t vhat = v[i] / bc2;
    wm[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

}  // namespace sagnn
