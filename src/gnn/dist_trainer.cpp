#include "gnn/dist_trainer.hpp"

namespace sagnn {

const char* to_string(DistAlgo algo) {
  switch (algo) {
    case DistAlgo::k1dOblivious: return "1d-oblivious(cagnet)";
    case DistAlgo::k1dSparse: return "1d-sparsity-aware";
    case DistAlgo::k15dOblivious: return "1.5d-oblivious";
    case DistAlgo::k15dSparse: return "1.5d-sparsity-aware";
    case DistAlgo::k2dOblivious: return "2d-oblivious(summa)";
    case DistAlgo::k2dSparse: return "2d-sparsity-aware";
  }
  return "?";
}

const char* strategy_name(DistAlgo algo) {
  switch (algo) {
    case DistAlgo::k1dOblivious: return "1d-oblivious";
    case DistAlgo::k1dSparse: return "1d-sparse";
    case DistAlgo::k15dOblivious: return "1.5d-oblivious";
    case DistAlgo::k15dSparse: return "1.5d-sparse";
    case DistAlgo::k2dOblivious: return "2d-oblivious";
    case DistAlgo::k2dSparse: return "2d-sparse";
  }
  return "?";
}

bool is_15d(DistAlgo algo) {
  return algo == DistAlgo::k15dOblivious || algo == DistAlgo::k15dSparse;
}

bool is_2d(DistAlgo algo) {
  return algo == DistAlgo::k2dOblivious || algo == DistAlgo::k2dSparse;
}

}  // namespace sagnn
