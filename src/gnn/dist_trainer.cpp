#include "gnn/dist_trainer.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "dist/outer_product.hpp"
#include "dist/spmm_15d.hpp"
#include "dist/spmm_1d.hpp"
#include "dist/spmm_2d.hpp"
#include "simcomm/cluster.hpp"
#include "sparse/permute.hpp"

namespace sagnn {

const char* to_string(DistAlgo algo) {
  switch (algo) {
    case DistAlgo::k1dOblivious: return "1d-oblivious(cagnet)";
    case DistAlgo::k1dSparse: return "1d-sparsity-aware";
    case DistAlgo::k15dOblivious: return "1.5d-oblivious";
    case DistAlgo::k15dSparse: return "1.5d-sparsity-aware";
    case DistAlgo::k2dOblivious: return "2d-oblivious(summa)";
    case DistAlgo::k2dSparse: return "2d-sparsity-aware";
  }
  return "?";
}

bool is_15d(DistAlgo algo) {
  return algo == DistAlgo::k15dOblivious || algo == DistAlgo::k15dSparse;
}

bool is_2d(DistAlgo algo) {
  return algo == DistAlgo::k2dOblivious || algo == DistAlgo::k2dSparse;
}

namespace {

/// Uniform facade over the two SpMM families so the training loop is
/// written once.
class SpmmEngine {
 public:
  SpmmEngine(Comm& world, const CsrMatrix& a, std::span<const BlockRange> ranges,
             const DistTrainerOptions& opt)
      : world_(world) {
    const SpmmMode mode = (opt.algo == DistAlgo::k1dSparse ||
                           opt.algo == DistAlgo::k15dSparse ||
                           opt.algo == DistAlgo::k2dSparse)
                              ? SpmmMode::kSparsityAware
                              : SpmmMode::kOblivious;
    if (is_15d(opt.algo)) {
      impl15d_ = std::make_unique<DistSpmm15d>(world, a, ranges, opt.c, mode);
    } else if (is_2d(opt.algo)) {
      impl2d_ = std::make_unique<DistSpmm2d>(world, a, ranges, mode);
    } else {
      impl1d_ = std::make_unique<DistSpmm1d>(world, a, ranges, mode);
    }
  }

  /// One aggregation Â·H, returned in the SAME residency as the input so
  /// the training loop is residency-agnostic (the 2D algorithm remaps its
  /// Z blocks back to H residency internally).
  Matrix multiply(const Matrix& h_local, double* secs) {
    if (impl15d_) return impl15d_->multiply(h_local, secs);
    if (impl2d_) {
      Matrix z = impl2d_->multiply(h_local, secs);
      return impl2d_->remap_for_next(z);
    }
    return impl1d_->multiply(world_, h_local, secs);
  }

  /// The communicator over which block rows are pairwise distinct (for
  /// global reductions of losses and weight gradients): world for 1D, the
  /// grid column for 1.5D (rows are replicated across the grid row), the
  /// grid row for 2D (rank (i,j) holds block j).
  Comm& reduce_comm() {
    if (impl15d_) return impl15d_->col_comm();
    if (impl2d_) return impl2d_->row_comm();
    return world_;
  }

  const BlockRange& my_range() const {
    if (impl15d_) return impl15d_->my_range();
    if (impl2d_) return impl2d_->input_range();
    return impl1d_->my_range();
  }

 private:
  Comm& world_;
  std::unique_ptr<DistSpmm1d> impl1d_;
  std::unique_ptr<DistSpmm15d> impl15d_;
  std::unique_ptr<DistSpmm2d> impl2d_;
};

}  // namespace

DistTrainerResult train_distributed(const Dataset& dataset,
                                    const DistTrainerOptions& opt) {
  SAGNN_REQUIRE(opt.p >= 1, "need at least one rank");
  SAGNN_REQUIRE(!is_15d(opt.algo) || opt.p % (opt.c * opt.c) == 0,
                "1.5D requires c^2 | P");
  if (is_2d(opt.algo)) (void)SquareGrid::make(opt.p);  // validates square P
  SAGNN_REQUIRE(opt.gcn.dims.front() == dataset.n_features() &&
                    opt.gcn.dims.back() == dataset.n_classes,
                "GCN dims must match the dataset");

  int n_blocks = opt.p;
  if (is_15d(opt.algo)) n_blocks = opt.p / opt.c;
  if (is_2d(opt.algo)) n_blocks = SquareGrid::make(opt.p).q;
  DistTrainerResult result;

  // ---- Partition & permute (one-time preprocessing, paper §6.3.1). ----
  WallTimer part_timer;
  const auto partitioner = make_partitioner(opt.partitioner, opt.partitioner_options);
  const Partition partition = partitioner->partition(dataset.adjacency, n_blocks);
  result.partition_wall_seconds = part_timer.seconds();
  result.volume_model = compute_volume_stats(dataset.adjacency, partition);

  const auto perm = partition.relabel_permutation();
  const CsrMatrix a = permute_symmetric(dataset.adjacency, perm);
  const Matrix h0 = permute_rows(dataset.features, perm);
  const auto labels = permute_labels(dataset.labels, perm);
  std::vector<std::uint8_t> mask(dataset.train_mask.size());
  for (std::size_t v = 0; v < mask.size(); ++v) {
    mask[static_cast<std::size_t>(perm[v])] = dataset.train_mask[v];
  }
  const auto sizes = partition.part_sizes();
  const auto ranges = ranges_from_sizes(sizes);
  // Original vertex id of each permuted row: dropout masks key on the
  // ORIGINAL identity so they match serial training exactly.
  const auto original_id = invert_permutation(perm);
  const std::int64_t total_train =
      std::count(mask.begin(), mask.end(), std::uint8_t{1});
  SAGNN_REQUIRE(total_train > 0, "dataset has no training vertices");

  // ---- SPMD training. ----
  Cluster cluster(opt.p);
  std::vector<double> rank_cpu_seconds(static_cast<std::size_t>(opt.p), 0.0);
  std::vector<EpochMetrics> epochs(static_cast<std::size_t>(opt.gcn.epochs));
  double setup_bytes = 0;

  cluster.run([&](Comm& comm) {
    SpmmEngine engine(comm, a, ranges, opt);
    // Setup traffic (index exchange) is bucketed separately: snapshot it
    // now so per-epoch accounting can subtract it.
    comm.barrier();
    if (comm.rank() == 0) {
      setup_bytes = static_cast<double>(
          cluster.traffic().phase("index_exchange").total_bytes());
    }

    const BlockRange range = engine.my_range();
    const Matrix h0_local = h0.slice_rows(range.begin, range.end);
    const std::span<const vid_t> labels_local{
        labels.data() + range.begin, static_cast<std::size_t>(range.size())};
    const std::span<const std::uint8_t> mask_local{
        mask.data() + range.begin, static_cast<std::size_t>(range.size())};

    GcnModel model(opt.gcn);  // same seed -> identical weights on all ranks
    double* cpu = &rank_cpu_seconds[static_cast<std::size_t>(comm.rank())];
    Comm& reduce_comm = engine.reduce_comm();

    for (int epoch = 0; epoch < opt.gcn.epochs; ++epoch) {
      // Forward. Input dropout masks are a pure function of
      // (seed, epoch, GLOBAL row), so they agree with serial training and
      // across replicas of the same block row.
      Matrix h = h0_local;
      if (opt.gcn.dropout > 0.0f) {
        ThreadCpuTimer t_drop;
        const std::span<const vid_t> ids{
            original_id.data() + range.begin,
            static_cast<std::size_t>(range.size())};
        dropout_rows_deterministic(
            h, opt.gcn.dropout,
            opt.gcn.seed ^ (0x9e37ull * (static_cast<std::uint64_t>(epoch) + 1)),
            ids);
        *cpu += t_drop.seconds();
      }
      for (int l = 0; l < model.n_layers(); ++l) {
        Matrix m = engine.multiply(h, cpu);
        ThreadCpuTimer t;
        h = model.layer(l).forward(std::move(m));
        *cpu += t.seconds();
      }

      // Global loss statistics (tiny all-reduce; lower-order term).
      const LossStats local = softmax_xent_stats(h, labels_local, mask_local);
      std::vector<double> triple{local.loss_sum, static_cast<double>(local.correct),
                                 static_cast<double>(local.count)};
      allreduce_sum<double>(reduce_comm, triple, "allreduce");
      if (comm.rank() == 0) {
        epochs[static_cast<std::size_t>(epoch)] = {
            triple[0] / std::max(1.0, triple[2]),
            triple[2] > 0 ? triple[1] / triple[2] : 0.0};
      }

      // Backward.
      Matrix d_h = softmax_xent_grad(h, labels_local, mask_local, total_train);
      std::vector<Matrix> d_weights(static_cast<std::size_t>(model.n_layers()));
      for (int l = model.n_layers() - 1; l >= 0; --l) {
        ThreadCpuTimer t;
        auto back = model.layer(l).backward(d_h);
        *cpu += t.seconds();
        // dW = M^T dZ summed over the disjoint block rows.
        std::vector<real_t> flat{back.d_weights.data(),
                                 back.d_weights.data() + back.d_weights.size()};
        allreduce_sum<real_t>(reduce_comm, flat, "allreduce");
        d_weights[static_cast<std::size_t>(l)] =
            Matrix(back.d_weights.n_rows(), back.d_weights.n_cols(), std::move(flat));
        if (l > 0) d_h = engine.multiply(back.d_m, cpu);
      }
      ThreadCpuTimer t;
      for (int l = 0; l < model.n_layers(); ++l) {
        model.layer(l).apply_gradient(d_weights[static_cast<std::size_t>(l)],
                                      opt.gcn.learning_rate,
                                      opt.gcn.weight_decay);
      }
      *cpu += t.seconds();
    }
  });

  // ---- Aggregate costs. ----
  result.epochs = std::move(epochs);
  result.setup_megabytes = setup_bytes / 1.0e6;
  const double inv_epochs = 1.0 / std::max(1, opt.gcn.epochs);

  // Per-epoch traffic: everything except setup and barriers, averaged.
  for (const auto& name : cluster.traffic().phase_names()) {
    if (name == "sync" || name == "index_exchange") continue;
    const PhaseTraffic tr = cluster.traffic().phase(name);
    result.phase_volumes[name] = {
        static_cast<double>(tr.total_bytes()) * inv_epochs / 1.0e6,
        static_cast<double>(tr.total_msgs()) * inv_epochs};
  }

  // Per-rank compute: the kernels are measured with per-thread CPU clocks,
  // but with hundreds of rank-threads oversubscribed on few cores the
  // per-rank split is noisy (cache and scheduler effects). Compute work is
  // nnz-dominated and exactly proportional to each rank's share of the
  // matrix, so we keep the MEASURED total and redistribute it across ranks
  // in proportion to their local nnz (1.5D ranks each execute 1/c of their
  // replicated block row). This preserves the partitioner-induced compute
  // imbalance the paper discusses (§7.1.1) without scheduling noise.
  double total_cpu = 0;
  for (double s : rank_cpu_seconds) total_cpu += s;
  std::vector<double> work(static_cast<std::size_t>(opt.p), 0.0);
  double total_work = 0;
  for (int r = 0; r < opt.p; ++r) {
    // 1D: rank r owns block row r outright. 1.5D: block row r/c, work
    // split c ways across the process row. 2D: rank (i,j) multiplies the
    // single tile A^T_{ij}, whose nnz we approximate as 1/q of block row i.
    int block = r;
    double share = 1.0;
    if (is_15d(opt.algo)) {
      block = r / opt.c;
      share = 1.0 / opt.c;
    } else if (is_2d(opt.algo)) {
      const SquareGrid grid = SquareGrid::make(opt.p);
      block = grid.grid_row(r);
      share = 1.0 / grid.q;
    }
    const auto& range = ranges[static_cast<std::size_t>(block)];
    const double nnz_local = static_cast<double>(
        a.row_ptr()[range.end] - a.row_ptr()[range.begin]);
    work[static_cast<std::size_t>(r)] = nnz_local * share;
    total_work += work[static_cast<std::size_t>(r)];
  }
  std::vector<double> smoothed_cpu(static_cast<std::size_t>(opt.p), 0.0);
  for (int r = 0; r < opt.p; ++r) {
    smoothed_cpu[static_cast<std::size_t>(r)] =
        total_work > 0 ? total_cpu * work[static_cast<std::size_t>(r)] / total_work
                       : total_cpu / opt.p;
  }

  // Modeled epoch cost: the alpha-beta model is linear in byte and message
  // counts and every epoch's traffic is identical, so the cost of one epoch
  // is the cost of the whole run divided by the epoch count.
  std::vector<double> per_epoch_cpu(smoothed_cpu.size());
  for (std::size_t r = 0; r < smoothed_cpu.size(); ++r) {
    per_epoch_cpu[r] = smoothed_cpu[r] * inv_epochs;
  }
  EpochCost all_epochs = epoch_cost(opt.cost_model, cluster.traffic(),
                                    smoothed_cpu);
  result.modeled_epoch = {all_epochs.compute * inv_epochs,
                          all_epochs.alltoall * inv_epochs,
                          all_epochs.bcast * inv_epochs,
                          all_epochs.allreduce * inv_epochs,
                          all_epochs.other * inv_epochs};
  // Remove the one-time index exchange from the per-epoch breakdown: it was
  // recorded under its own phase, which epoch_cost puts in `other`.
  const double setup_cost =
      opt.cost_model.phase_seconds(cluster.traffic().phase("index_exchange"));
  result.modeled_epoch.other =
      std::max(0.0, result.modeled_epoch.other - setup_cost * inv_epochs);

  double max_cpu = 0;
  for (double s : per_epoch_cpu) max_cpu = std::max(max_cpu, s);
  result.max_rank_cpu_seconds_per_epoch = max_cpu;
  return result;
}

}  // namespace sagnn
