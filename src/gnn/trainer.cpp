#include "gnn/trainer.hpp"

#include <istream>

#include "ckpt/state_io.hpp"
#include "common/parallel.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

std::unique_ptr<Trainer> TrainerBuilder::instantiate(TrainConfig cfg) const {
  const Dataset& ds = *dataset_;
  if (cfg.threads >= 1) set_parallel_threads(cfg.threads);
  if (cfg.gcn.dims.empty()) {
    // The paper's default architecture: 3 layers, 16 hidden units.
    cfg.gcn.dims = {ds.n_features(), 16, 16, ds.n_classes};
  }
  if (cfg.strategy == "serial") {
    return std::make_unique<SerialTrainer>(ds, cfg.gcn);
  }
  if (cfg.strategy == "sampled") {
    return std::make_unique<SampledTrainer>(ds, cfg.gcn, cfg.sampling);
  }
  // Any other name resolves against the distribution-strategy registry;
  // unknown names raise std::invalid_argument listing the registered ones.
  return std::make_unique<DistributedTrainer>(ds, std::move(cfg));
}

std::unique_ptr<Trainer> TrainerBuilder::build() const {
  return instantiate(config_);
}

std::unique_ptr<Trainer> TrainerBuilder::resume(std::istream& in) const {
  ckpt::Deserializer d(in);
  d.enter_section("config");
  TrainConfig cfg = ckpt::read_train_config(d);
  d.leave_section();
  d.enter_section("dataset");
  ckpt::check_dataset_fingerprint(d, *dataset_);
  d.leave_section();
  const TrainConfig saved = cfg;  // pre-override snapshot for restore()

  // The checkpoint's configuration is authoritative; only knobs the caller
  // explicitly set on this builder override it (elastic restart et al.).
  if (set_.strategy && config_.strategy != cfg.strategy) {
    throw ckpt::CheckpointMismatchError(
        "checkpoint was trained with strategy '" + cfg.strategy +
        "', resume requests '" + config_.strategy +
        "' — changing the algorithm mid-run is not a resume");
  }
  if (set_.ranks) {
    cfg.p = config_.p;
    // ranks(p', 0) overrides only the rank count and keeps the
    // checkpoint's replication factor.
    if (config_.c >= 1) cfg.c = config_.c;
  }
  if (set_.partitioner) {
    cfg.partitioner = config_.partitioner;
    cfg.partitioner_options = config_.partitioner_options;
  }
  if (set_.threads) cfg.threads = config_.threads;
  if (set_.pipeline_chunks) cfg.pipeline_chunks = config_.pipeline_chunks;
  if (set_.epochs) cfg.gcn.epochs = config_.gcn.epochs;
  if (set_.cost_model) cfg.cost_model = config_.cost_model;

  std::unique_ptr<Trainer> trainer = instantiate(cfg);
  trainer->restore(d, saved);
  d.finish();
  return trainer;
}

}  // namespace sagnn
