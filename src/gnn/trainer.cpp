#include "gnn/trainer.hpp"

#include "common/parallel.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

std::unique_ptr<Trainer> TrainerBuilder::build() const {
  TrainConfig cfg = config_;
  const Dataset& ds = *dataset_;
  if (cfg.threads >= 1) set_parallel_threads(cfg.threads);
  if (cfg.gcn.dims.empty()) {
    // The paper's default architecture: 3 layers, 16 hidden units.
    cfg.gcn.dims = {ds.n_features(), 16, 16, ds.n_classes};
  }
  if (cfg.strategy == "serial") {
    return std::make_unique<SerialTrainer>(ds, cfg.gcn);
  }
  if (cfg.strategy == "sampled") {
    return std::make_unique<SampledTrainer>(ds, cfg.gcn, cfg.sampling);
  }
  // Any other name resolves against the distribution-strategy registry;
  // unknown names raise std::invalid_argument listing the registered ones.
  return std::make_unique<DistributedTrainer>(ds, std::move(cfg));
}

}  // namespace sagnn
