#include "gnn/trainer.hpp"

#include <cstdio>
#include <fstream>
#include <istream>

#include "ckpt/state_io.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "gnn/distributed_trainer.hpp"
#include "gnn/sampled_trainer.hpp"
#include "gnn/serial_trainer.hpp"
#include "gnn/strategy.hpp"
#include "partition/partitioner_registry.hpp"

namespace sagnn {

void Trainer::arm_auto_checkpoint(std::string path, int every_epochs) {
  SAGNN_REQUIRE(every_epochs >= 0, "auto_checkpoint_every must be >= 0");
  SAGNN_REQUIRE(every_epochs == 0 || !path.empty(),
                "periodic auto-checkpointing needs a path "
                "(TrainerBuilder::auto_checkpoint)");
  auto_checkpoint_path_ = std::move(path);
  auto_checkpoint_every_ = every_epochs;
}

void Trainer::maybe_auto_checkpoint(int epochs_completed) {
  if (auto_checkpoint_every_ <= 0 || epochs_completed == 0 ||
      epochs_completed % auto_checkpoint_every_ != 0) {
    return;
  }
  // Write a sibling tmp file, flush-and-close with the stream state
  // checked, then rename over the target: a PROCESS crash, short write,
  // or close-time flush failure can never replace the previous good
  // snapshot with a torn one. (Durability against power loss would
  // additionally need fsync of the file and its directory, which
  // iostreams cannot express — out of scope for the preemption studies
  // this serves, whose failure mode is a killed process.)
  const std::string& path = auto_checkpoint_path_;
  const std::string tmp = path + ".tmp";
  WallTimer save_timer;
  std::ofstream out(tmp, std::ios::binary);
  SAGNN_REQUIRE(out.good(), "cannot open " + tmp + " for auto-checkpoint");
  save(out);
  out.flush();
  const auto bytes = out.tellp();
  out.close();
  SAGNN_REQUIRE(!out.fail(), "short write while auto-checkpointing to " + tmp);
  SAGNN_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot move auto-checkpoint into place at " + path);
  last_auto_save_seconds_ = save_timer.seconds();
  last_auto_snapshot_bytes_ =
      bytes > 0 ? static_cast<std::uint64_t>(bytes) : 0;
}

TrainerBuilder& TrainerBuilder::strategy(std::string name) {
  // Fail fast: catch the typo where it was written, not at build() — the
  // registry lookup there would raise the same error, only later.
  strategy_registry().require(name, {"serial", "sampled"});
  config_.strategy = std::move(name);
  set_.strategy = true;
  return *this;
}

TrainerBuilder& TrainerBuilder::partitioner(std::string name,
                                            PartitionerOptions opts) {
  partitioner_registry().require(name);
  config_.partitioner = std::move(name);
  config_.partitioner_options = opts;
  set_.partitioner = true;
  return *this;
}

TrainerBuilder& TrainerBuilder::autotune(PlannerOptions opts) {
  // Builder knobs pin search dimensions. A pinned strategy restricts the
  // registry walk to that one name — but only distributed strategies have
  // a cost surface to rank.
  if (set_.strategy) {
    SAGNN_REQUIRE(config_.strategy != "serial" && config_.strategy != "sampled",
                  "autotune() plans distributed training; '" +
                      config_.strategy + "' is a built-in single-rank mode");
    opts.strategies = {config_.strategy};
  }
  if (set_.partitioner) {
    opts.partitioners = {config_.partitioner};
    opts.census.partitioners = {config_.partitioner};
    opts.census.partitioner_options = config_.partitioner_options;
  }
  if (set_.ranks) {
    opts.pinned_p = config_.p;
    // ranks(p, 0) pins only the rank count, like resume().
    if (config_.c >= 1) opts.pinned_c = config_.c;
  }
  if (set_.pipeline_chunks) opts.pinned_chunks = config_.pipeline_chunks;
  if (set_.cost_model) opts.cost_model = config_.cost_model;
  if (!config_.gcn.dims.empty()) opts.dims = config_.gcn.dims;

  plan_ = plan_strategies(take_census(*dataset_, opts.census), opts);
  const PlanCandidate& best = plan_.best();
  // Adopt the winner WITHOUT flipping the set_ flags: autotune() is a
  // default-provider like instantiate()'s dims derivation, not an explicit
  // override (resume() semantics stay byte-for-byte).
  config_.strategy = best.strategy;
  config_.partitioner = best.partitioner;
  config_.p = best.p;
  config_.c = best.c;
  config_.pipeline_chunks = best.chunks;
  return *this;
}

std::unique_ptr<Trainer> TrainerBuilder::instantiate(TrainConfig cfg) const {
  const Dataset& ds = *dataset_;
  if (cfg.threads >= 1) set_parallel_threads(cfg.threads);
  if (cfg.gcn.dims.empty()) {
    // The paper's default architecture: 3 layers, 16 hidden units.
    cfg.gcn.dims = {ds.n_features(), 16, 16, ds.n_classes};
  }
  std::unique_ptr<Trainer> trainer;
  if (cfg.strategy == "serial") {
    trainer = std::make_unique<SerialTrainer>(ds, cfg.gcn, cfg.kernels);
  } else if (cfg.strategy == "sampled") {
    trainer =
        std::make_unique<SampledTrainer>(ds, cfg.gcn, cfg.sampling, cfg.kernels);
  } else {
    // Any other name resolves against the distribution-strategy registry;
    // unknown names raise std::invalid_argument listing the registered ones.
    trainer = std::make_unique<DistributedTrainer>(ds, cfg);
  }
  trainer->arm_auto_checkpoint(cfg.auto_checkpoint_path,
                               cfg.auto_checkpoint_every);
  return trainer;
}

std::unique_ptr<Trainer> TrainerBuilder::build() const {
  return instantiate(config_);
}

std::unique_ptr<Trainer> TrainerBuilder::resume(std::istream& in) const {
  ckpt::Deserializer d(in);
  d.enter_section("config");
  TrainConfig cfg = ckpt::read_train_config(d);
  d.leave_section();
  d.enter_section("dataset");
  ckpt::check_dataset_fingerprint(d, *dataset_);
  d.leave_section();
  const TrainConfig saved = cfg;  // pre-override snapshot for restore()

  // The checkpoint's configuration is authoritative; only knobs the caller
  // explicitly set on this builder override it (elastic restart et al.).
  if (set_.strategy && config_.strategy != cfg.strategy) {
    throw ckpt::CheckpointMismatchError(
        "checkpoint was trained with strategy '" + cfg.strategy +
        "', resume requests '" + config_.strategy +
        "' — changing the algorithm mid-run is not a resume");
  }
  if (set_.ranks) {
    cfg.p = config_.p;
    // ranks(p', 0) overrides only the rank count and keeps the
    // checkpoint's replication factor.
    if (config_.c >= 1) cfg.c = config_.c;
  }
  if (set_.partitioner) {
    cfg.partitioner = config_.partitioner;
    cfg.partitioner_options = config_.partitioner_options;
  }
  if (set_.threads) cfg.threads = config_.threads;
  if (set_.pipeline_chunks) cfg.pipeline_chunks = config_.pipeline_chunks;
  // Kernel format is a runtime knob that never enters the snapshot
  // (bitwise-neutral); the resuming builder re-arms it explicitly.
  if (set_.kernels) cfg.kernels = config_.kernels;
  if (set_.epochs) cfg.gcn.epochs = config_.gcn.epochs;
  if (set_.cost_model) cfg.cost_model = config_.cost_model;
  // Auto-checkpointing is a runtime knob that never enters the snapshot;
  // the resuming builder must re-arm it explicitly.
  if (set_.auto_checkpoint) {
    cfg.auto_checkpoint_path = config_.auto_checkpoint_path;
    cfg.auto_checkpoint_every = config_.auto_checkpoint_every;
  }
  // Fault injection is runtime-only the same way.
  if (set_.fault) {
    cfg.fault_plan = config_.fault_plan;
    cfg.fault_recovery = config_.fault_recovery;
  }

  std::unique_ptr<Trainer> trainer = instantiate(cfg);
  trainer->restore(d, saved);
  d.finish();
  return trainer;
}

}  // namespace sagnn
