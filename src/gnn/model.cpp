#include "gnn/model.hpp"

#include "common/rng.hpp"

namespace sagnn {

GcnModel::GcnModel(const GcnConfig& config) {
  SAGNN_REQUIRE(config.dims.size() >= 2, "GCN needs at least one layer");
  Rng rng(config.seed);
  layers_.reserve(config.dims.size() - 1);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    const bool is_last = l + 2 == config.dims.size();
    Matrix w = Matrix::glorot(config.dims[l], config.dims[l + 1], rng);
    layers_.emplace_back(std::move(w), /*apply_relu=*/!is_last);
  }
}

double GcnModel::weight_distance(const GcnModel& other) const {
  SAGNN_REQUIRE(n_layers() == other.n_layers(), "model depth mismatch");
  double acc = 0;
  for (int l = 0; l < n_layers(); ++l) {
    acc += layer(l).weights().frobenius_distance(other.layer(l).weights());
  }
  return acc;
}

}  // namespace sagnn
