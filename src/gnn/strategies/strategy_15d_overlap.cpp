#include "gnn/strategies/strategy_15d_overlap.hpp"

#include <algorithm>

#include "plan/census.hpp"

namespace sagnn {

PredictedCost Strategy15dOverlap::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = name() + " prediction needs a census";
    return out;
  }
  GridLayout layout;
  try {
    layout = GridLayout::make(in.p, in.c);
  } catch (const Error& err) {
    out.note = err.what();
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (static_cast<vid_t>(layout.rows) > cs.n) {
    out.note = "more block rows than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double s = sizeof(real_t);
  const int rows = layout.rows;
  const int c = layout.s;
  const int k = std::max(1, in.chunks);
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, rows, n * c / in.p, rows, c);
  // Same bytes as "1.5d-sparse", K times the alltoall messages; the
  // grid-row all-reduce stays one full-width collective per propagate.
  const double halo = cs.expected_halo_rows(in.partitioner, rows);
  const double imb = cs.expected_send_imbalance(in.partitioner, rows);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    e.alltoall(out.cost, halo / in.p * imb * w * s,
               static_cast<double>(k) * (rows - 1), rows, c);
    if (c > 1) e.allreduce(out.cost, (n * c / in.p) * w * s, c, 1);
  }
  out.valid = true;
  // Cross-layer schedule: K stages per propagate plus the final drain
  // (the trainer records n_prop * K stages for K >= 2, n_prop + 1 at
  // K = 1).
  const int n_prop = static_cast<int>(widths.size());
  out.depth = std::max(n_prop * k, n_prop + 1);
  return out;
}

namespace {
const StrategyRegistration kRegister15dOverlap{
    "1.5d-overlap", {"15d-overlap", "1.5d-pipelined"}, [] {
      return std::make_unique<Strategy15dOverlap>();
    }};
}  // namespace

}  // namespace sagnn
