#include "gnn/strategies/strategy_15d_overlap.hpp"

namespace sagnn {

namespace {
const StrategyRegistration kRegister15dOverlap{
    "1.5d-overlap", {"15d-overlap", "1.5d-pipelined"}, [] {
      return std::make_unique<Strategy15dOverlap>();
    }};
}  // namespace

}  // namespace sagnn
