#pragma once
// 2D (SUMMA-style) distribution strategies: a q x q grid tiles Â; the
// dense Z all-reduce across grid rows dominates and cannot be shrunk by
// sparsity — the scheme the paper inherits CAGNET's case against, kept as
// a faithful comparison point. Forward/backward aggregations remap their
// output back to H residency so layers chain.

#include "dist/spmm_2d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy2d final : public DistributionStrategy {
 public:
  explicit Strategy2d(SpmmMode mode) : mode_(mode) {}

  std::string name() const override {
    return mode_ == SpmmMode::kSparsityAware ? "2d-sparse" : "2d-oblivious";
  }

  int n_blocks(int p, int /*c*/) const override {
    return SquareGrid::make(p).q;
  }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    spmm_ = std::make_unique<DistSpmm2d>(comm, *ctx.adjacency, ctx.ranges, mode_,
                                         ctx.kernels);
  }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    Matrix z = spmm_->multiply(x_local, cpu_seconds);
    return spmm_->remap_for_next(z);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    Matrix z = spmm_->multiply(g_local, cpu_seconds);
    return spmm_->remap_for_next(z);
  }

  /// Ranks of a grid row hold pairwise-distinct H blocks (rank (i,j) holds
  /// block j), so the grid row is the reduction scope.
  Comm& reduce_comm() override { return spmm_->row_comm(); }
  /// Training state lives in H residency: the input range.
  const BlockRange& my_range() const override { return spmm_->input_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override;

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  SpmmMode mode_;
  std::unique_ptr<DistSpmm2d> spmm_;
};

}  // namespace sagnn
