#include "gnn/strategies/strategy_1d_overlap.hpp"

#include <algorithm>

#include "plan/census.hpp"

namespace sagnn {

PredictedCost Strategy1dOverlap::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = name() + " prediction needs a census";
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (in.p < 1 || static_cast<vid_t>(in.p) > cs.n) {
    out.note = "more ranks than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double s = sizeof(real_t);
  const int k = std::max(1, in.chunks);
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, in.p, n / in.p, in.p, 1);
  // Chunking moves the same bytes as "1d-sparse" in K times the messages;
  // the payoff is the pipelined critical path (depth = K).
  const double halo = cs.expected_halo_rows(in.partitioner, in.p);
  const double imb = cs.expected_send_imbalance(in.partitioner, in.p);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    e.alltoall(out.cost, halo / in.p * imb * w * s,
               static_cast<double>(k) * (in.p - 1), in.p, 1);
  }
  out.valid = true;
  out.depth = k;
  return out;
}

namespace {
const StrategyRegistration kRegister1dOverlap{
    "1d-overlap", {"1d-pipelined"}, [] {
      return std::make_unique<Strategy1dOverlap>();
    }};
}  // namespace

}  // namespace sagnn
