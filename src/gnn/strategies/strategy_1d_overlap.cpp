#include "gnn/strategies/strategy_1d_overlap.hpp"

namespace sagnn {

namespace {
const StrategyRegistration kRegister1dOverlap{
    "1d-overlap", {"1d-pipelined"}, [] {
      return std::make_unique<Strategy1dOverlap>();
    }};
}  // namespace

}  // namespace sagnn
