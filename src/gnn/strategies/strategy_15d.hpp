#pragma once
// 1.5D distribution strategies (paper §4.2, Algorithm 2): a (P/c) x c grid
// replicates each block row on c ranks; row fetches shrink with c at the
// price of a grid-row all-reduce. Reductions run over the grid column
// (one replica of every block row).

#include "dist/spmm_15d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy15d final : public DistributionStrategy {
 public:
  explicit Strategy15d(SpmmMode mode) : mode_(mode) {}

  std::string name() const override {
    return mode_ == SpmmMode::kSparsityAware ? "1.5d-sparse" : "1.5d-oblivious";
  }

  int n_blocks(int p, int c) const override {
    return GridLayout::make(p, c).rows;
  }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    spmm_ = std::make_unique<DistSpmm15d>(comm, *ctx.adjacency, ctx.ranges,
                                          ctx.c, mode_, ctx.kernels);
  }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    return spmm_->multiply(x_local, cpu_seconds);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    return spmm_->multiply(g_local, cpu_seconds);
  }

  Comm& reduce_comm() override { return spmm_->col_comm(); }
  const BlockRange& my_range() const override { return spmm_->my_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override;

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  SpmmMode mode_;
  std::unique_ptr<DistSpmm15d> spmm_;
};

/// rank_work() of the whole 1.5D family: rank r holds block row r/c and
/// the c replicas of a grid row split its nnz evenly.
std::vector<double> grid_replica_nnz_work(const StrategyContext& ctx);

}  // namespace sagnn
