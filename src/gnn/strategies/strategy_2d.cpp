#include "gnn/strategies/strategy_2d.hpp"

namespace sagnn {

std::vector<double> Strategy2d::rank_work(const StrategyContext& ctx) const {
  // Rank (i, j) multiplies the single tile Â_{ij}, whose nnz we
  // approximate as 1/q of block row i.
  const SquareGrid grid = SquareGrid::make(ctx.p);
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range =
        ctx.ranges[static_cast<std::size_t>(grid.grid_row(r))];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]) / grid.q;
  }
  return work;
}

namespace {
const StrategyRegistration kRegister2dOblivious{
    "2d-oblivious", {"2d-oblivious(summa)", "summa"}, [] {
      return std::make_unique<Strategy2d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister2dSparse{
    "2d-sparse", {"2d-sparsity-aware"}, [] {
      return std::make_unique<Strategy2d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
