#include "gnn/strategies/strategy_2d.hpp"

#include "plan/census.hpp"

namespace sagnn {

std::vector<double> Strategy2d::rank_work(const StrategyContext& ctx) const {
  // Rank (i, j) multiplies the single tile Â_{ij}, whose nnz we
  // approximate as 1/q of block row i.
  const SquareGrid grid = SquareGrid::make(ctx.p);
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range =
        ctx.ranges[static_cast<std::size_t>(grid.grid_row(r))];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]) / grid.q;
  }
  return work;
}

PredictedCost Strategy2d::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = name() + " prediction needs a census";
    return out;
  }
  SquareGrid grid;
  try {
    grid = SquareGrid::make(in.p);
  } catch (const Error& err) {
    out.note = err.what();
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (static_cast<vid_t>(grid.q) > cs.n) {
    out.note = "more grid rows than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double s = sizeof(real_t);
  // The dense Z all-reduce and the residency transpose are oblivious to
  // sparsity (kSparsityAware only compacts the local kernel), so both
  // modes price identically.
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, grid.q, n / grid.q, grid.q, 1);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    e.allreduce(out.cost, (n / grid.q) * w * s, grid.q, 1);
    e.exchange(out.cost, (n / grid.q) * w * s, 1, in.p, grid.q);
  }
  out.valid = true;
  return out;
}

namespace {
const StrategyRegistration kRegister2dOblivious{
    "2d-oblivious", {"2d-oblivious(summa)", "summa"}, [] {
      return std::make_unique<Strategy2d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister2dSparse{
    "2d-sparse", {"2d-sparsity-aware"}, [] {
      return std::make_unique<Strategy2d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
