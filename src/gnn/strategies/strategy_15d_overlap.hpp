#pragma once
// Replication-aware chunked-pipelining 1.5D strategy ("1.5d-overlap",
// alias "15d-overlap"): the sparsity-aware 1.5D scheme of the paper with
// the feature/gradient matrix split into K column chunks — the grid-column
// alltoallv of chunk k+1 is issued before the local SpMM of chunk k,
// exactly as "1d-overlap" chunks the 1D exchange — PLUS cross-layer
// latency hiding: the pipeline-stage counter runs across the whole epoch
// instead of resetting per propagate, so the first exchange of layer l+1
// occupies the schedule slot directly after the last SpMM chunk of layer
// l (no per-layer pipeline drain). The trainer arms this through
// DistributionStrategy::begin_epoch().
//
// Reuses the 1.5D sparsity-aware index exchange verbatim — the moved
// bytes per epoch are identical to "1.5d-sparse"; only the alltoall
// message count (x K) and the schedule differ. The grid-row partial-sum
// all-reduce stays one full-width collective per propagate (stage-tagged
// but never column-split: splitting would reorder the ring's per-element
// additions and break bitwise parity), so its message count does NOT
// scale with K. Each stage's traffic lands in the epoch-wide tagged
// phases "alltoall#s" / "allreduce#s", which EpochCost turns into the
// pipelined critical path (see docs/cost_model.md). The chunk exchanges
// are genuinely posted ahead (ialltoallv) and waited at chunk boundaries,
// so the run also reports the MEASURED per-stage hidden/blocked
// wall-clock (EpochCost::measured_overlap_fraction()).

#include "dist/spmm_15d.hpp"
#include "gnn/strategies/strategy_15d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy15dOverlap final : public DistributionStrategy {
 public:
  std::string name() const override { return "1.5d-overlap"; }

  int n_blocks(int p, int c) const override {
    return GridLayout::make(p, c).rows;
  }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    SAGNN_REQUIRE(ctx.pipeline_chunks >= 1,
                  "pipeline_chunks must be at least 1");
    chunks_ = ctx.pipeline_chunks;
    spmm_ = std::make_unique<DistSpmm15d>(comm, *ctx.adjacency, ctx.ranges,
                                          ctx.c, SpmmMode::kSparsityAware,
                                          ctx.kernels);
  }

  void begin_epoch() override { stage_ = 0; }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    return spmm_->multiply_pipelined(x_local, chunks_, &stage_, cpu_seconds);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    return spmm_->multiply_pipelined(g_local, chunks_, &stage_, cpu_seconds);
  }

  Comm& reduce_comm() override { return spmm_->col_comm(); }
  const BlockRange& my_range() const override { return spmm_->my_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override {
    return grid_replica_nnz_work(ctx);
  }

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  int chunks_ = 4;
  /// Epoch-wide pipeline-stage cursor (reset by begin_epoch, advanced by
  /// every propagate): the cross-layer schedule's source of stage tags.
  int stage_ = 0;
  std::unique_ptr<DistSpmm15d> spmm_;
};

}  // namespace sagnn
