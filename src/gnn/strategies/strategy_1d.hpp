#pragma once
// 1D block-row distribution strategies (paper §4.1): the CAGNET broadcast
// baseline ("1d-oblivious") and the paper's Algorithm 1 ("1d-sparse").
// Every rank owns one block row of Â and H; the world communicator doubles
// as the reduction scope.

#include <optional>

#include "dist/spmm_1d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy1d final : public DistributionStrategy {
 public:
  explicit Strategy1d(SpmmMode mode) : mode_(mode) {}

  std::string name() const override {
    return mode_ == SpmmMode::kSparsityAware ? "1d-sparse" : "1d-oblivious";
  }

  int n_blocks(int p, int /*c*/) const override {
    SAGNN_REQUIRE(p >= 1, "need at least one rank");
    return p;
  }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    world_.emplace(comm);
    spmm_ = std::make_unique<DistSpmm1d>(*world_, *ctx.adjacency, ctx.ranges,
                                         mode_, ctx.kernels);
  }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    return spmm_->multiply(*world_, x_local, cpu_seconds);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    return spmm_->multiply(*world_, g_local, cpu_seconds);
  }

  Comm& reduce_comm() override { return *world_; }
  const BlockRange& my_range() const override { return spmm_->my_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override;

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  SpmmMode mode_;
  std::optional<Comm> world_;
  std::unique_ptr<DistSpmm1d> spmm_;
};

}  // namespace sagnn
