#include "gnn/strategies/strategy_15d.hpp"

#include "plan/census.hpp"

namespace sagnn {

std::vector<double> grid_replica_nnz_work(const StrategyContext& ctx) {
  // Rank r holds block row r/c; the c replicas split its work.
  const GridLayout layout = GridLayout::make(ctx.p, ctx.c);
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range =
        ctx.ranges[static_cast<std::size_t>(layout.grid_row(r))];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]) /
        layout.s;
  }
  return work;
}

std::vector<double> Strategy15d::rank_work(const StrategyContext& ctx) const {
  return grid_replica_nnz_work(ctx);
}

PredictedCost Strategy15d::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = name() + " prediction needs a census";
    return out;
  }
  GridLayout layout;
  try {
    layout = GridLayout::make(in.p, in.c);
  } catch (const Error& err) {
    out.note = err.what();
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (static_cast<vid_t>(layout.rows) > cs.n) {
    out.note = "more block rows than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double s = sizeof(real_t);
  const int rows = layout.rows;
  const int c = layout.s;
  // Reduce scope: a grid column (one replica of every block row), `rows`
  // members spaced c apart. Each rank holds an n*c/p-row replica.
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, rows, n * c / in.p, rows, c);
  const double halo = cs.expected_halo_rows(in.partitioner, rows);
  const double imb = cs.expected_send_imbalance(in.partitioner, rows);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    // Grid-column fetch: the c replicas of a block row split its traffic.
    if (mode_ == SpmmMode::kSparsityAware) {
      e.alltoall(out.cost, halo / in.p * imb * w * s, rows - 1, rows, c);
    } else {
      e.bcast(out.cost, (rows - 1) * n / in.p * w * s, rows - 1, rows, c);
    }
    // Grid-row partial-sum all-reduce across the c replicas.
    if (c > 1) e.allreduce(out.cost, (n * c / in.p) * w * s, c, 1);
  }
  out.valid = true;
  return out;
}

namespace {
const StrategyRegistration kRegister15dOblivious{
    "1.5d-oblivious", {}, [] {
      return std::make_unique<Strategy15d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister15dSparse{
    "1.5d-sparse", {"1.5d-sparsity-aware"}, [] {
      return std::make_unique<Strategy15d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
