#include "gnn/strategies/strategy_15d.hpp"

namespace sagnn {

std::vector<double> grid_replica_nnz_work(const StrategyContext& ctx) {
  // Rank r holds block row r/c; the c replicas split its work.
  const GridLayout layout = GridLayout::make(ctx.p, ctx.c);
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range =
        ctx.ranges[static_cast<std::size_t>(layout.grid_row(r))];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]) /
        layout.s;
  }
  return work;
}

std::vector<double> Strategy15d::rank_work(const StrategyContext& ctx) const {
  return grid_replica_nnz_work(ctx);
}

namespace {
const StrategyRegistration kRegister15dOblivious{
    "1.5d-oblivious", {}, [] {
      return std::make_unique<Strategy15d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister15dSparse{
    "1.5d-sparse", {"1.5d-sparsity-aware"}, [] {
      return std::make_unique<Strategy15d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
