#pragma once
// Chunked-pipelining 1D distribution strategy ("1d-overlap"): the
// sparsity-aware 1D scheme of the paper with the feature/gradient matrix
// split into K column chunks, interleaving the alltoallv of chunk k+1 with
// the local SpMM of chunk k in both propagation directions (the overlap
// direction of Selvitopi et al.). Reuses the 1D sparsity-aware index
// exchange verbatim — the moved bytes per epoch are identical to
// "1d-sparse"; only the message count (x K) and the schedule differ. The
// chunk count comes from StrategyContext::pipeline_chunks
// (TrainConfig::pipeline_chunks at the API surface); each chunk's traffic
// is recorded under the stage-tagged phase "alltoall#k", which
// EpochCost::total_pipelined() turns into the pipelined critical path.
// The exchanges are genuinely posted ahead (ialltoallv) and waited at
// chunk boundaries, so alongside the modeled schedule the run reports the
// MEASURED per-stage hidden/blocked wall-clock
// (EpochCost::measured_overlap_fraction()).

#include <optional>

#include "dist/spmm_1d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy1dOverlap final : public DistributionStrategy {
 public:
  std::string name() const override { return "1d-overlap"; }

  int n_blocks(int p, int /*c*/) const override {
    SAGNN_REQUIRE(p >= 1, "need at least one rank");
    return p;
  }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    SAGNN_REQUIRE(ctx.pipeline_chunks >= 1,
                  "pipeline_chunks must be at least 1");
    chunks_ = ctx.pipeline_chunks;
    world_.emplace(comm);
    spmm_ = std::make_unique<DistSpmm1d>(*world_, *ctx.adjacency, ctx.ranges,
                                         SpmmMode::kSparsityAware, ctx.kernels);
  }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    return spmm_->multiply_pipelined(*world_, x_local, chunks_, cpu_seconds);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    return spmm_->multiply_pipelined(*world_, g_local, chunks_, cpu_seconds);
  }

  Comm& reduce_comm() override { return *world_; }
  const BlockRange& my_range() const override { return spmm_->my_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override {
    return block_row_nnz_work(ctx);
  }

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  int chunks_ = 4;
  std::optional<Comm> world_;
  std::unique_ptr<DistSpmm1d> spmm_;
};

}  // namespace sagnn
