#include "gnn/strategies/strategy_3d.hpp"

#include "plan/census.hpp"

namespace sagnn {

std::vector<double> Strategy3d::rank_work(const StrategyContext& ctx) const {
  // Rank (l, i, j) multiplies tile Â_{ij} against a 1/d feature slice:
  // approximate its nnz-work as block row i's nnz split q ways across the
  // row and d ways across the depth.
  const CubeGrid grid = CubeGrid::make(ctx.p, ctx.c);
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range =
        ctx.ranges[static_cast<std::size_t>(grid.grid_row(r))];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]) /
        (static_cast<double>(grid.q) * grid.d);
  }
  return work;
}

PredictedCost Strategy3d::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = "3d prediction needs a census";
    return out;
  }
  CubeGrid grid;
  try {
    grid = CubeGrid::make(in.p, in.c);
  } catch (const Error& e) {
    out.note = e.what();
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (static_cast<vid_t>(grid.q) > cs.n) {
    out.note = "more grid rows than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double d = static_cast<double>(grid.d);
  const double s = sizeof(real_t);
  // Reduce scope: a layer grid row (q members, stride 1 in world order).
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, grid.q, n / grid.q, grid.q, 1);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    // Layer-row partial-sum all-reduce and transpose on the 1/d slice.
    e.allreduce(out.cost, (n / grid.q) * (w / d) * s, grid.q, 1);
    e.exchange(out.cost, (n / grid.q) * (w / d) * s, 1, in.p, grid.q);
    // Depth all-gather ring reassembling the other layers' slices; fiber
    // members are spaced q^2 apart.
    if (grid.d > 1) {
      e.exchange(out.cost, (n / grid.q) * w * ((d - 1.0) / d) * s, grid.d - 1,
                 grid.d, grid.q * grid.q);
    }
  }
  out.valid = true;
  out.depth = 1;
  return out;
}

namespace {
const StrategyRegistration kRegister3d{
    "3d", {"3d-comm-avoiding"}, [] { return std::make_unique<Strategy3d>(); }};
}  // namespace

}  // namespace sagnn
