#pragma once
// The communication-avoiding 3D strategy ("3d"): d stacked q x q 2D grids
// split the feature dimension (p = q^2 * c; the builder's c knob is the
// depth d). Each layer runs the 2D scheme on a 1/d feature slice — the
// dense partial-sum all-reduce and the transpose shrink by d — and a depth
// all-gather across the fibers reassembles the full width for the next GCN
// layer. d = 1 degenerates exactly to 2D, which is how this strategy rides
// the registry serial-parity sweep unchanged. The planner (src/plan/)
// exists to quantify where — if anywhere — the extra fiber ring pays off
// for GNN-shaped (narrow) feature widths: the paper's CAGNET-style 3D
// dismissal as a measurable artifact.

#include "dist/spmm_3d.hpp"
#include "gnn/strategy.hpp"

namespace sagnn {

class Strategy3d final : public DistributionStrategy {
 public:
  std::string name() const override { return "3d"; }

  int n_blocks(int p, int c) const override { return CubeGrid::make(p, c).q; }

  void setup(Comm& comm, const StrategyContext& ctx) override {
    spmm_ = std::make_unique<DistSpmm3d>(comm, *ctx.adjacency, ctx.ranges,
                                         ctx.c, SpmmMode::kSparsityAware,
                                         ctx.kernels);
  }

  Matrix propagate_forward(const Matrix& x_local, double* cpu_seconds) override {
    return spmm_->propagate(x_local, cpu_seconds);
  }
  Matrix propagate_backward(const Matrix& g_local, double* cpu_seconds) override {
    return spmm_->propagate(g_local, cpu_seconds);
  }

  /// Ranks of a layer's grid row hold pairwise-distinct H blocks (rank
  /// (l, i, j) holds block j), so any layer-row is a reduction scope; the
  /// d parallel rings see identical data in identical order, keeping the
  /// weights bitwise-replicated across layers.
  Comm& reduce_comm() override { return spmm_->row_comm(); }
  /// Training state lives in H residency: the input range.
  const BlockRange& my_range() const override { return spmm_->input_range(); }

  std::vector<double> rank_work(const StrategyContext& ctx) const override;

  PredictedCost predict_cost(const PredictInput& in) const override;

 private:
  std::unique_ptr<DistSpmm3d> spmm_;
};

}  // namespace sagnn
