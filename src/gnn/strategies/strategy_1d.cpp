#include "gnn/strategies/strategy_1d.hpp"

#include "plan/census.hpp"

namespace sagnn {

std::vector<double> Strategy1d::rank_work(const StrategyContext& ctx) const {
  return block_row_nnz_work(ctx);
}

PredictedCost Strategy1d::predict_cost(const PredictInput& in) const {
  PredictedCost out;
  if (in.census == nullptr) {
    out.note = name() + " prediction needs a census";
    return out;
  }
  const GraphCensus& cs = *in.census;
  if (in.p < 1 || static_cast<vid_t>(in.p) > cs.n) {
    out.note = "more ranks than vertices";
    return out;
  }

  const CostEstimator e(in.model);
  const double n = static_cast<double>(cs.n);
  const double s = sizeof(real_t);
  const std::vector<vid_t> widths =
      predict_base(out.cost, in, in.p, n / in.p, in.p, 1);
  // Per propagate: oblivious broadcasts every remote block row to every
  // rank; sparsity-aware fetches only the halo rows the partitioner left
  // behind, with the bottleneck rank at the send-imbalance factor.
  const double halo = cs.expected_halo_rows(in.partitioner, in.p);
  const double imb = cs.expected_send_imbalance(in.partitioner, in.p);
  for (vid_t width : widths) {
    const double w = static_cast<double>(width);
    if (mode_ == SpmmMode::kSparsityAware) {
      e.alltoall(out.cost, halo / in.p * imb * w * s, in.p - 1, in.p, 1);
    } else {
      e.bcast(out.cost, (n - n / in.p) * w * s, in.p - 1, in.p, 1);
    }
  }
  out.valid = true;
  return out;
}

namespace {
const StrategyRegistration kRegister1dOblivious{
    "1d-oblivious", {"1d-oblivious(cagnet)", "cagnet"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister1dSparse{
    "1d-sparse", {"1d-sparsity-aware"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
