#include "gnn/strategies/strategy_1d.hpp"

namespace sagnn {

std::vector<double> Strategy1d::rank_work(const StrategyContext& ctx) const {
  // Rank r owns block row r outright: its work is the block's nnz.
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range = ctx.ranges[static_cast<std::size_t>(r)];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]);
  }
  return work;
}

namespace {
const StrategyRegistration kRegister1dOblivious{
    "1d-oblivious", {"1d-oblivious(cagnet)", "cagnet"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister1dSparse{
    "1d-sparse", {"1d-sparsity-aware"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
