#include "gnn/strategies/strategy_1d.hpp"

namespace sagnn {

std::vector<double> Strategy1d::rank_work(const StrategyContext& ctx) const {
  return block_row_nnz_work(ctx);
}

namespace {
const StrategyRegistration kRegister1dOblivious{
    "1d-oblivious", {"1d-oblivious(cagnet)", "cagnet"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kOblivious);
    }};
const StrategyRegistration kRegister1dSparse{
    "1d-sparse", {"1d-sparsity-aware"}, [] {
      return std::make_unique<Strategy1d>(SpmmMode::kSparsityAware);
    }};
}  // namespace

}  // namespace sagnn
