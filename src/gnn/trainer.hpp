#pragma once
// The unified training API (every trainer — serial, distributed, sampled —
// implements the same three-verb interface):
//
//   run_epoch()  one epoch, returns its global metrics
//   train()      run all remaining configured epochs
//   result()     aggregate TrainResult (trajectory + cost/volume reports)
//
// Construction goes through TrainerBuilder, which selects the execution
// mode and — for distributed training — the communication strategy and the
// graph partitioner purely by their registry names:
//
//   auto trainer = TrainerBuilder(dataset)
//                      .strategy("1.5d-sparse")   // any registered strategy
//                      .ranks(/*p=*/16, /*c=*/2)
//                      .partitioner("gvb")        // any registered partitioner
//                      .gcn(config)
//                      .build();
//   trainer->train();
//   const TrainResult& r = trainer->result();
//
// "serial" and "sampled" are built-in mode names; every other name is
// resolved against the DistributionStrategy registry (gnn/strategy.hpp),
// so a new strategy class becomes selectable here without touching any
// trainer or driver code.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gnn/model.hpp"
#include "graph/datasets.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "plan/planner.hpp"
#include "simcomm/cost_model.hpp"
#include "simcomm/fault.hpp"
#include "sparse/sell.hpp"

namespace sagnn {

namespace ckpt {
class Deserializer;
}  // namespace ckpt

struct TrainConfig;

/// Global per-epoch training metrics (identical across ranks).
struct EpochMetrics {
  double loss = 0;
  double train_accuracy = 0;
};

/// Exact per-phase communication per epoch, from recorded traffic.
struct PhaseVolume {
  double megabytes_per_epoch = 0;
  double messages_per_epoch = 0;
};

/// What train() does when an injected rank kill aborts an epoch
/// (RankKilledError from the fault plan's KillSpec schedule).
enum class FaultRecovery {
  /// Rethrow the typed error to the caller (who may resume manually —
  /// e.g. an elastic restart at an arbitrary new rank count).
  kNone,
  /// Closed loop: restore from the last auto-checkpoint (cold-restart
  /// from epoch 0 if none exists yet) and continue training; permanent
  /// kills restart elastically on p-1 ranks. Distributed mode only.
  kCheckpointRestart,
};

/// Bookkeeping of train()'s kill-recovery loop (zero for fault-free runs).
struct RecoveryStats {
  int kills = 0;             ///< injected rank kills caught by train()
  int restores = 0;          ///< successful auto-checkpoint restorations
  int cold_restarts = 0;     ///< kills with no snapshot yet (replay from 0)
  int elastic_restarts = 0;  ///< permanent kills absorbed on p-1 ranks
  int replayed_epochs = 0;   ///< wasted work: epochs re-run after recovery
  double recovery_seconds = 0;  ///< wall-clock rebuilding + restoring
  double last_save_seconds = 0;       ///< most recent auto-checkpoint write
  std::uint64_t snapshot_bytes = 0;   ///< size of that snapshot
};

/// Mini-batch sampling knobs (the "sampled" trainer mode).
struct SamplingConfig {
  vid_t batch_size = 64;
  /// Per-layer neighbor fanout, innermost (layer 1) first. Size must equal
  /// the number of GCN layers.
  std::vector<vid_t> fanouts;
  std::uint64_t seed = 1234;
};

/// Aggregate outcome of a training run. Serial and sampled trainers fill
/// only `epochs`; distributed trainers additionally report exact
/// communication volumes, the alpha-beta modeled epoch cost, and partition
/// quality statistics (Figures 3/4/6/7 and Table 2 of the paper).
struct TrainResult {
  std::vector<EpochMetrics> epochs;

  /// Epochs actually executed — the count every per-epoch average below is
  /// taken over. A run stopped early via run_epoch() stepping reports the
  /// completed count, never the configured one.
  int epochs_completed() const { return static_cast<int>(epochs.size()); }

  /// alpha-beta modeled time for ONE epoch, split by phase.
  EpochCost modeled_epoch;

  /// Pipeline stages (column chunks) the strategy's dominant phase ran in:
  /// 1 for every bulk-synchronous strategy, the chunk count for
  /// "1d-overlap". Feeds modeled_epoch.total_pipelined().
  int pipeline_stages = 1;

  /// Exact per-phase communication per epoch, from recorded traffic,
  /// keyed by base phase name (the stages of a chunk-tagged phase such as
  /// "alltoall#k" aggregate under "alltoall").
  std::map<std::string, PhaseVolume> phase_volumes;

  /// Predicted sparsity-aware volumes from (matrix, partition) alone;
  /// cross-checkable against phase_volumes["alltoall"].
  VolumeStats volume_model;

  double partition_wall_seconds = 0;
  double setup_megabytes = 0;  ///< one-time index-exchange volume
  double max_rank_cpu_seconds_per_epoch = 0;  ///< unscaled compute bottleneck

  /// The three modeled schedule columns: bulk-synchronous, pipelined at
  /// the stage count the run actually used, and the ideal overlap bound.
  double modeled_epoch_seconds() const { return modeled_epoch.total(); }
  double modeled_epoch_pipelined_seconds() const {
    return modeled_epoch.total_pipelined(pipeline_stages);
  }
  double modeled_epoch_overlapped_seconds() const {
    return modeled_epoch.total_overlapped();
  }

  /// MEASURED (host wall-clock) share of the nonblocking exchanges'
  /// outstanding time hidden behind useful work — the runtime counterpart
  /// of the modeled schedule columns above. 0 for strategies without
  /// nonblocking exchanges; ~0 for bulk-synchronous alltoall strategies;
  /// approaches 1 - 1/stages for the pipelined ones when compute covers
  /// the exchange. Not checkpointed: a resumed run restarts it.
  double measured_overlap_fraction() const {
    return modeled_epoch.measured_overlap_fraction();
  }

  /// Injected-fault event counters recorded by the runtime (drops,
  /// retries, timeouts, suppressed duplicates, straggler seconds) —
  /// accumulated across kill recoveries. All zero for fault-free runs.
  FaultCounters faults;

  /// Closed-loop recovery bookkeeping from train()'s kill-recovery loop.
  RecoveryStats recovery;
};

/// Common trainer interface. Epoch-at-a-time stepping and whole-run
/// training compose: train() always runs the epochs not yet executed.
class Trainer {
 public:
  virtual ~Trainer() = default;

  /// Human-readable description of the configuration.
  virtual std::string name() const = 0;

  /// Epochs executed so far.
  virtual int epochs_run() const = 0;

  /// Execute one epoch and return its global metrics.
  virtual EpochMetrics run_epoch() = 0;

  /// Execute all remaining configured epochs; returns the full trajectory.
  virtual const std::vector<EpochMetrics>& train() = 0;

  /// Aggregate result for the epochs executed so far.
  virtual const TrainResult& result() = 0;

  /// Snapshot the complete training state (configuration, model weights,
  /// RNG/optimizer state, metric trajectory, recorded traffic) to the
  /// versioned binary checkpoint format (src/ckpt/). Call between epochs;
  /// TrainerBuilder::resume() reconstructs a trainer that continues the
  /// run bit-identically to one that was never interrupted.
  virtual void save(std::ostream& out) = 0;

 protected:
  /// Restore path: the deserializer is positioned after the config and
  /// dataset sections (already consumed by TrainerBuilder::resume()).
  /// `saved` is the checkpoint's own configuration BEFORE builder
  /// overrides — trainers compare it against their merged config to tell
  /// an exact same-geometry resume from an elastic restart.
  virtual void restore(ckpt::Deserializer& d, const TrainConfig& saved) = 0;

  /// Periodic auto-checkpointing, shared by every mode's train() loop:
  /// when armed (TrainConfig::auto_checkpoint_every via TrainerBuilder),
  /// save() to the configured path after every N completed epochs,
  /// atomically against process crashes (sibling ".tmp" + checked
  /// flush/close + rename — a killed process or failed write never
  /// replaces the previous good snapshot; power-loss durability (fsync)
  /// is explicitly out of scope). Call with epochs_run() after each
  /// epoch of a train() loop; no-op when disabled. run_epoch() stepping
  /// deliberately never triggers it.
  void maybe_auto_checkpoint(int epochs_completed);

  /// The armed auto-checkpoint knobs (empty path / 0 when disabled) — the
  /// kill-recovery loop restores from this path.
  const std::string& auto_checkpoint_path() const {
    return auto_checkpoint_path_;
  }
  int auto_checkpoint_every() const { return auto_checkpoint_every_; }
  /// Wall-clock and size of the most recent auto-checkpoint write (0 until
  /// one happened) — surfaced on TrainResult::recovery.
  double last_auto_save_seconds() const { return last_auto_save_seconds_; }
  std::uint64_t last_auto_snapshot_bytes() const {
    return last_auto_snapshot_bytes_;
  }

  friend class TrainerBuilder;

 private:
  /// Builder-only: validates and stores the auto-checkpoint knobs.
  void arm_auto_checkpoint(std::string path, int every_epochs);

  int auto_checkpoint_every_ = 0;
  std::string auto_checkpoint_path_;
  double last_auto_save_seconds_ = 0;
  std::uint64_t last_auto_snapshot_bytes_ = 0;
};

/// One configuration record subsuming the per-mode option structs.
struct TrainConfig {
  GcnConfig gcn;  ///< dims auto-derived from the dataset when left empty

  /// "serial", "sampled", or a registered distribution-strategy name
  /// (e.g. "1d-sparse", "1.5d-oblivious", "2d-sparse").
  std::string strategy = "serial";

  /// Host thread-pool size for partitioning and the blocked kernels
  /// (common/parallel.hpp). 0 keeps the current pool (SAGNN_THREADS env,
  /// else hardware concurrency); >= 1 pins it. Never affects training
  /// math: kernels are bitwise thread-count-invariant and simulated rank
  /// threads always compute serially.
  int threads = 0;

  // --- distributed-mode options ---
  int p = 4;  ///< simulated GPU count
  int c = 1;  ///< replication factor (1.5D strategies)
  std::string partitioner = "block";  ///< partitioner registry name
  PartitionerOptions partitioner_options;
  CostModel cost_model;
  /// Column chunks for pipelined strategies ("1d-overlap",
  /// "1.5d-overlap"); bulk-synchronous strategies ignore it.
  int pipeline_chunks = 4;

  /// Local-kernel selection (sparse/sell.hpp): which storage the SpMM
  /// kernels stream (CSR default, or SELL-C-sigma built once per operand).
  /// Never affects training math — both formats are bitwise identical — so
  /// it is a runtime knob, deliberately NOT serialized into checkpoints
  /// (same doctrine as auto_checkpoint/fault_plan): a resumed run re-arms
  /// it explicitly via TrainerBuilder::kernels().
  KernelConfig kernels;

  /// Periodic auto-checkpointing inside train(): every
  /// `auto_checkpoint_every` completed epochs the trainer save()s to
  /// `auto_checkpoint_path`, written atomically against process crashes
  /// (sibling ".tmp" file + checked flush + rename) so an interrupted
  /// write never leaves a torn snapshot at the advertised path. 0
  /// disables. A runtime knob, deliberately NOT serialized into
  /// checkpoints — re-arm it on the resuming builder if wanted.
  int auto_checkpoint_every = 0;
  std::string auto_checkpoint_path;

  /// Deterministic fault injection on the simulated cluster (stragglers,
  /// lossy links, rank kills — see simcomm/fault.hpp); null = fault-free.
  /// A runtime knob exactly like auto-checkpointing: deliberately NOT
  /// serialized into checkpoints, so a resumed run re-arms it explicitly.
  std::shared_ptr<const FaultPlan> fault_plan;
  /// What train() does when an injected kill aborts an epoch.
  FaultRecovery fault_recovery = FaultRecovery::kNone;

  // --- sampled-mode options ---
  SamplingConfig sampling;
};

/// Fluent constructor for every trainer kind.
class TrainerBuilder {
 public:
  explicit TrainerBuilder(const Dataset& dataset) : dataset_(&dataset) {}

  /// Replace the whole configuration record. (Does not count as an
  /// explicit override for resume() — use the individual setters to
  /// deviate from a checkpoint's configuration.)
  TrainerBuilder& config(TrainConfig cfg) {
    config_ = std::move(cfg);
    return *this;
  }

  TrainerBuilder& gcn(GcnConfig cfg) {
    config_.gcn = std::move(cfg);
    return *this;
  }
  /// Execution mode / distribution strategy by registry name. Fails fast:
  /// a name that is neither a registered strategy (canonical or alias) nor
  /// a built-in mode ("serial", "sampled") raises UnknownNameError HERE,
  /// at the call site, listing every registered choice — not at build().
  TrainerBuilder& strategy(std::string name);
  TrainerBuilder& ranks(int p, int c = 1) {
    config_.p = p;
    config_.c = c;
    set_.ranks = true;
    return *this;
  }
  /// Host thread-pool size (see TrainConfig::threads; 0 = leave as-is).
  TrainerBuilder& threads(int n) {
    config_.threads = n;
    set_.threads = true;
    return *this;
  }
  /// Fails fast like strategy(): unknown partitioner names raise
  /// UnknownNameError at this call, listing the registered choices.
  TrainerBuilder& partitioner(std::string name, PartitionerOptions opts = {});
  TrainerBuilder& cost_model(const CostModel& model) {
    config_.cost_model = model;
    set_.cost_model = true;
    return *this;
  }
  /// Column-chunk count for pipelined strategies (>= 1).
  TrainerBuilder& pipeline_chunks(int chunks) {
    config_.pipeline_chunks = chunks;
    set_.pipeline_chunks = true;
    return *this;
  }
  /// Local-kernel selection: SpMM storage format and SELL-C-sigma shape
  /// (see TrainConfig::kernels). Bitwise-neutral; runtime-only on resume.
  TrainerBuilder& kernels(KernelConfig cfg) {
    config_.kernels = cfg;
    set_.kernels = true;
    return *this;
  }
  /// Arm periodic auto-checkpointing: train() snapshots to `path` every
  /// `every_epochs` completed epochs (atomic tmp-file + rename).
  TrainerBuilder& auto_checkpoint(std::string path, int every_epochs) {
    config_.auto_checkpoint_path = std::move(path);
    config_.auto_checkpoint_every = every_epochs;
    set_.auto_checkpoint = true;
    return *this;
  }
  /// Install a deterministic fault plan on the simulated cluster (shared,
  /// so the caller can keep a handle — e.g. to read kills_fired()).
  TrainerBuilder& fault_plan(std::shared_ptr<const FaultPlan> plan) {
    config_.fault_plan = std::move(plan);
    set_.fault = true;
    return *this;
  }
  /// Convenience: build the plan from a spec in place.
  TrainerBuilder& fault_plan(FaultSpec spec) {
    return fault_plan(FaultPlan::make(std::move(spec)));
  }
  /// Recovery policy for injected rank kills (see FaultRecovery).
  TrainerBuilder& fault_recovery(FaultRecovery mode) {
    config_.fault_recovery = mode;
    set_.fault = true;
    return *this;
  }
  TrainerBuilder& sampling(SamplingConfig cfg) {
    config_.sampling = std::move(cfg);
    return *this;
  }
  TrainerBuilder& epochs(int n) {
    config_.gcn.epochs = n;
    set_.epochs = true;
    return *this;
  }
  TrainerBuilder& learning_rate(real_t lr) {
    config_.gcn.learning_rate = lr;
    return *this;
  }

  /// Census-driven autotuning (docs/planner.md): take a census of the
  /// dataset, rank the candidate grid with plan_strategies(), and adopt
  /// the winner's (strategy, partitioner, p, c, pipeline_chunks) into this
  /// builder's configuration. Knobs already set on the builder PIN the
  /// corresponding search dimension and shrink the grid: strategy() and
  /// partitioner() restrict the registries to that one name, ranks(p, c)
  /// pins p (and c when >= 1), pipeline_chunks() pins K, cost_model() and
  /// gcn() feed the predictor. The ranked plan stays inspectable through
  /// plan(). A pinned strategy must be distributed — autotune() with
  /// "serial"/"sampled" raises Error; unknown names raise UnknownNameError
  /// already inside strategy()/partitioner().
  TrainerBuilder& autotune(PlannerOptions opts = {});

  /// The ranked plan of the last autotune() call (empty before).
  const Plan& plan() const { return plan_; }

  const TrainConfig& peek() const { return config_; }

  /// Instantiate the trainer. Unknown strategy or partitioner names raise
  /// std::invalid_argument listing the registered choices; geometry and
  /// dimension violations raise Error (as the per-mode constructors do).
  std::unique_ptr<Trainer> build() const;

  /// Reconstruct a trainer from a checkpoint written by Trainer::save()
  /// and continue the run bit-identically. The checkpoint's configuration
  /// is authoritative; knobs explicitly set on this builder override it:
  ///
  ///   * epochs(n)      — extend or shorten the remaining run,
  ///   * ranks(p', c')  — ELASTIC RESTART: the graph is re-partitioned for
  ///                      the new geometry and the replicated weights
  ///                      resume on p' ranks (c' = 0 keeps the
  ///                      checkpoint's replication factor),
  ///   * partitioner()/threads()/pipeline_chunks()/cost_model() — likewise;
  ///   * auto_checkpoint() — re-arms periodic snapshotting (the knob is
  ///                         never stored in checkpoints);
  ///   * fault_plan()/fault_recovery() — re-arms fault injection
  ///                         (likewise runtime-only, never stored).
  ///
  /// strategy() may be set but must match the checkpoint's strategy
  /// (changing the algorithm mid-run is a different experiment);
  /// a mismatch throws ckpt::CheckpointMismatchError. A checkpoint taken
  /// on a different dataset is rejected the same way. Damaged streams
  /// throw the typed errors of ckpt/errors.hpp.
  std::unique_ptr<Trainer> resume(std::istream& in) const;

 private:
  std::unique_ptr<Trainer> instantiate(TrainConfig cfg) const;

  const Dataset* dataset_;
  TrainConfig config_;
  Plan plan_;  ///< ranking of the last autotune() call
  /// Which knobs were explicitly set (resume() override tracking).
  struct {
    bool strategy = false;
    bool ranks = false;
    bool partitioner = false;
    bool threads = false;
    bool pipeline_chunks = false;
    bool kernels = false;
    bool epochs = false;
    bool cost_model = false;
    bool auto_checkpoint = false;
    bool fault = false;
  } set_;
};

}  // namespace sagnn
