#pragma once
// Back-compatibility shim over the unified training API (gnn/trainer.hpp).
//
// Historical entry point: pick a dataset, a DistAlgo and a partitioner
// name, and train_distributed() runs the full job. New code should prefer
// TrainerBuilder, which selects the same strategies by registry name and
// supports epoch-at-a-time stepping:
//
//   auto trainer = TrainerBuilder(ds).strategy("1d-sparse")
//                      .ranks(p).partitioner("gvb").gcn(cfg).build();
//
// The DistAlgo enum is retained for existing callers and maps 1:1 onto
// strategy registry names via strategy_name().

#include <string>

#include "gnn/trainer.hpp"

namespace sagnn {

enum class DistAlgo {
  k1dOblivious,   ///< CAGNET baseline: bcast whole H blocks
  k1dSparse,      ///< paper's 1D sparsity-aware (Algorithm 1)
  k15dOblivious,  ///< CAGNET 1.5D with replication factor c
  k15dSparse,     ///< paper's 1.5D sparsity-aware (Algorithm 2)
  k2dOblivious,   ///< SUMMA-style 2D (CAGNET's less-performant variant)
  k2dSparse,      ///< 2D with the sparsity-aware working-set reduction
};

const char* to_string(DistAlgo algo);
/// Canonical strategy-registry name implementing `algo`.
const char* strategy_name(DistAlgo algo);
bool is_15d(DistAlgo algo);
bool is_2d(DistAlgo algo);

struct DistTrainerOptions {
  DistAlgo algo = DistAlgo::k1dSparse;
  int p = 4;                        ///< simulated GPU count
  int c = 1;                        ///< replication factor (1.5D only)
  std::string partitioner = "block";  ///< partitioner registry name
  PartitionerOptions partitioner_options;
  GcnConfig gcn;
  CostModel cost_model;

  /// The equivalent unified configuration record.
  TrainConfig to_train_config() const;
};

/// Distributed runs produce the common TrainResult; the historical name is
/// kept for existing callers.
using DistTrainerResult = TrainResult;

/// Run a full distributed training job (thin wrapper over TrainerBuilder).
/// Collectives inside require p >= 1; 1.5D algorithms need c^2 | p; 2D
/// algorithms need a square p.
///
/// Deprecated since PR 4; scheduled for removal in PR 7 (see docs/api.md,
/// "Deprecations"). Migrate:
///   TrainerBuilder(ds).config(options.to_train_config()).build()->train()
/// — identical behavior, plus epoch stepping and checkpoint/restore.
[[deprecated(
    "use TrainerBuilder (see docs/api.md 'Deprecations'; removal planned "
    "for PR 7)")]]
DistTrainerResult train_distributed(const Dataset& dataset,
                                    const DistTrainerOptions& options);

}  // namespace sagnn
