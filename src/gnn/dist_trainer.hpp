#pragma once
// The DistAlgo naming layer over the unified training API (gnn/trainer.hpp).
//
// DistAlgo enumerates the paper's six distributed algorithms and maps 1:1
// onto strategy registry names via strategy_name(). Training goes through
// TrainerBuilder with the registry name:
//
//   TrainerBuilder(ds).strategy(strategy_name(algo)).ranks(p, c).build();
//
// (The old train_distributed() entry point was removed in PR 6; the
// DistTrainerOptions record and its to_train_config() shim followed in
// this revision — see docs/api.md, "Removed".)

#include <string>

#include "gnn/trainer.hpp"

namespace sagnn {

enum class DistAlgo {
  k1dOblivious,   ///< CAGNET baseline: bcast whole H blocks
  k1dSparse,      ///< paper's 1D sparsity-aware (Algorithm 1)
  k15dOblivious,  ///< CAGNET 1.5D with replication factor c
  k15dSparse,     ///< paper's 1.5D sparsity-aware (Algorithm 2)
  k2dOblivious,   ///< SUMMA-style 2D (CAGNET's less-performant variant)
  k2dSparse,      ///< 2D with the sparsity-aware working-set reduction
};

const char* to_string(DistAlgo algo);
/// Canonical strategy-registry name implementing `algo`.
const char* strategy_name(DistAlgo algo);
bool is_15d(DistAlgo algo);
bool is_2d(DistAlgo algo);

/// Distributed runs produce the common TrainResult; the historical name is
/// kept for existing callers.
using DistTrainerResult = TrainResult;

}  // namespace sagnn
