#pragma once
// Distributed full-graph GCN training on the simulated cluster.
//
// This is the top-level reproduction driver: pick a dataset, a SpMM
// algorithm (1D/1.5D x oblivious/sparsity-aware), a partitioner
// (block/random/metis-like/gvb-like) and a process count, and it
//   1. partitions & symmetrically permutes Â (and H rows, labels, masks),
//   2. spins up P rank-threads, builds the per-rank distributed matrices
//      (setup traffic is recorded separately and excluded from epoch cost,
//      as the paper excludes preprocessing),
//   3. trains the 3-layer GCN for E epochs with replicated weights,
//   4. returns per-epoch metrics, exact per-phase communication volumes,
//      the alpha-beta modeled epoch time breakdown, and partition quality
//      statistics.

#include <map>
#include <string>

#include "gnn/serial_trainer.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "simcomm/cost_model.hpp"

namespace sagnn {

enum class DistAlgo {
  k1dOblivious,   ///< CAGNET baseline: bcast whole H blocks
  k1dSparse,      ///< paper's 1D sparsity-aware (Algorithm 1)
  k15dOblivious,  ///< CAGNET 1.5D with replication factor c
  k15dSparse,     ///< paper's 1.5D sparsity-aware (Algorithm 2)
  k2dOblivious,   ///< SUMMA-style 2D (CAGNET's less-performant variant)
  k2dSparse,      ///< 2D with the sparsity-aware working-set reduction
};

const char* to_string(DistAlgo algo);
bool is_15d(DistAlgo algo);
bool is_2d(DistAlgo algo);

struct DistTrainerOptions {
  DistAlgo algo = DistAlgo::k1dSparse;
  int p = 4;                        ///< simulated GPU count
  int c = 1;                        ///< replication factor (1.5D only)
  std::string partitioner = "block";  ///< block | random | metis | gvb
  PartitionerOptions partitioner_options;
  GcnConfig gcn;
  CostModel cost_model;
};

struct PhaseVolume {
  double megabytes_per_epoch = 0;
  double messages_per_epoch = 0;
};

struct DistTrainerResult {
  std::vector<EpochMetrics> epochs;

  /// alpha-beta modeled time for ONE epoch, split by phase (Fig. 3/4/7).
  EpochCost modeled_epoch;

  /// Exact per-phase communication per epoch, from recorded traffic.
  std::map<std::string, PhaseVolume> phase_volumes;

  /// Predicted sparsity-aware volumes from (matrix, partition) alone
  /// (Table 2); cross-checkable against phase_volumes["alltoall"].
  VolumeStats volume_model;

  double partition_wall_seconds = 0;
  double setup_megabytes = 0;  ///< one-time index-exchange volume
  double max_rank_cpu_seconds_per_epoch = 0;  ///< unscaled compute bottleneck

  double modeled_epoch_seconds() const { return modeled_epoch.total(); }
};

/// Run a full distributed training job. Collectives inside require
/// p >= 1; 1.5D algorithms need c^2 | p; 2D algorithms need a square p.
DistTrainerResult train_distributed(const Dataset& dataset,
                                    const DistTrainerOptions& options);

}  // namespace sagnn
