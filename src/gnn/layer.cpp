#include "gnn/layer.hpp"

namespace sagnn {

Matrix GcnLayer::forward(Matrix m) {
  SAGNN_REQUIRE(m.n_cols() == w_.n_rows(),
                "layer input feature width mismatch");
  cached_m_ = std::move(m);
  cached_z_ = gemm(cached_m_, w_);
  return relu_ ? relu(cached_z_) : cached_z_;
}

GcnLayer::Backward GcnLayer::backward(const Matrix& d_h_out) const {
  SAGNN_REQUIRE(cached_z_.n_rows() == d_h_out.n_rows() &&
                    cached_z_.n_cols() == d_h_out.n_cols(),
                "backward called before forward, or shape mismatch");
  Backward out;
  out.d_z = relu_ ? hadamard(d_h_out, relu_grad(cached_z_)) : d_h_out;
  out.d_weights = gemm_at_b(cached_m_, out.d_z);
  out.d_m = gemm_a_bt(out.d_z, w_);
  return out;
}

void GcnLayer::apply_gradient(const Matrix& d_weights, real_t lr,
                              real_t weight_decay) {
  if (weight_decay != 0.0f) {
    // W -= lr*wd*W first, then the gradient term; order matches the usual
    // decoupled-from-nothing classic L2 formulation up to O(lr^2).
    // (IEEE a + (-s)*b == a - s*b bitwise, so flipping axpy_inplace to the
    // conventional sign kept training math bit-identical.)
    axpy_inplace(w_, w_, -lr * weight_decay);
  }
  axpy_inplace(w_, d_weights, -lr);
}

}  // namespace sagnn
