#include "gnn/loss.hpp"

#include <cmath>

namespace sagnn {

LossStats softmax_xent_stats(const Matrix& logits, std::span<const vid_t> labels,
                             std::span<const std::uint8_t> mask) {
  SAGNN_REQUIRE(labels.size() == static_cast<std::size_t>(logits.n_rows()) &&
                    mask.size() == labels.size(),
                "labels/mask must have one entry per logits row");
  LossStats stats;
  const Matrix probs = row_softmax(logits);
  for (vid_t r = 0; r < logits.n_rows(); ++r) {
    if (!mask[static_cast<std::size_t>(r)]) continue;
    const vid_t y = labels[static_cast<std::size_t>(r)];
    SAGNN_REQUIRE(y >= 0 && y < logits.n_cols(), "label out of class range");
    const double py = std::max(static_cast<double>(probs(r, y)), 1e-30);
    stats.loss_sum += -std::log(py);
    ++stats.count;
    const real_t* pr = probs.row(r);
    vid_t best = 0;
    for (vid_t j = 1; j < logits.n_cols(); ++j) {
      if (pr[j] > pr[best]) best = j;
    }
    if (best == y) ++stats.correct;
  }
  return stats;
}

Matrix softmax_xent_grad(const Matrix& logits, std::span<const vid_t> labels,
                         std::span<const std::uint8_t> mask,
                         std::int64_t total_count) {
  SAGNN_REQUIRE(total_count > 0, "gradient needs at least one masked row");
  Matrix grad(logits.n_rows(), logits.n_cols());
  const Matrix probs = row_softmax(logits);
  const real_t inv = real_t{1} / static_cast<real_t>(total_count);
  for (vid_t r = 0; r < logits.n_rows(); ++r) {
    if (!mask[static_cast<std::size_t>(r)]) continue;
    const real_t* pr = probs.row(r);
    real_t* gr = grad.row(r);
    for (vid_t j = 0; j < logits.n_cols(); ++j) gr[j] = pr[j] * inv;
    gr[labels[static_cast<std::size_t>(r)]] -= inv;
  }
  return grad;
}

}  // namespace sagnn
