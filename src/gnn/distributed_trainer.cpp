#include "gnn/distributed_trainer.hpp"

#include <algorithm>
#include <fstream>

#include "ckpt/state_io.hpp"
#include "common/timer.hpp"
#include "gnn/loss.hpp"
#include "sparse/permute.hpp"

namespace sagnn {

/// Everything one simulated rank keeps alive between epochs. The strategy
/// holds its communicators by value, so the state stays valid across
/// successive Cluster::run() invocations.
struct DistributedTrainer::RankState {
  std::unique_ptr<DistributionStrategy> strategy;
  Matrix h0_local;
  std::vector<vid_t> labels_local;
  std::vector<std::uint8_t> mask_local;
  /// Original vertex id of each permuted local row: dropout masks key on
  /// the ORIGINAL identity so they match serial training exactly.
  std::vector<vid_t> ids_local;
  GcnModel model;  ///< same seed -> identical weights on all ranks
};

DistributedTrainer::DistributedTrainer(const Dataset& dataset, TrainConfig config)
    : config_(std::move(config)), dataset_(&dataset) {
  initialize();
}

void DistributedTrainer::initialize() {
  const Dataset& dataset = *dataset_;
  SAGNN_REQUIRE(config_.p >= 1, "need at least one rank");
  job_strategy_ = strategy_registry().create(config_.strategy);
  const int n_blocks = job_strategy_->n_blocks(config_.p, config_.c);
  SAGNN_REQUIRE(config_.gcn.dims.front() == dataset.n_features() &&
                    config_.gcn.dims.back() == dataset.n_classes,
                "GCN dims must match the dataset");

  // ---- Partition & permute (one-time preprocessing, paper §6.3.1). ----
  WallTimer part_timer;
  const auto partitioner =
      make_partitioner(config_.partitioner, config_.partitioner_options);
  const Partition partition = partitioner->partition(dataset.adjacency, n_blocks);
  result_.partition_wall_seconds = part_timer.seconds();
  result_.volume_model = compute_volume_stats(dataset.adjacency, partition);

  const auto perm = partition.relabel_permutation();
  a_ = permute_symmetric(dataset.adjacency, perm);
  h0_ = permute_rows(dataset.features, perm);
  labels_ = permute_labels(dataset.labels, perm);
  mask_.assign(dataset.train_mask.size(), 0);
  for (std::size_t v = 0; v < mask_.size(); ++v) {
    mask_[static_cast<std::size_t>(perm[v])] = dataset.train_mask[v];
  }
  ranges_ = ranges_from_sizes(partition.part_sizes());
  original_id_ = invert_permutation(perm);
  total_train_ = std::count(mask_.begin(), mask_.end(), std::uint8_t{1});
  SAGNN_REQUIRE(total_train_ > 0, "dataset has no training vertices");

  // ---- Cluster + per-rank strategy setup. ----
  // Destruction order matters on re-initialization: the old RankStates
  // hold communicators into the old world, so they go first.
  states_.clear();
  cluster_ = std::make_unique<Cluster>(config_.p, config_.fault_plan);
  states_.resize(static_cast<std::size_t>(config_.p));
  rank_cpu_seconds_.assign(static_cast<std::size_t>(config_.p), 0.0);
  const StrategyContext ctx = context();
  cluster_->run([&](Comm& comm) {
    auto st = std::make_unique<RankState>();
    st->strategy = strategy_registry().create(config_.strategy);
    st->strategy->setup(comm, ctx);
    const BlockRange range = st->strategy->my_range();
    st->h0_local = h0_.slice_rows(range.begin, range.end);
    st->labels_local.assign(labels_.begin() + range.begin,
                            labels_.begin() + range.end);
    st->mask_local.assign(mask_.begin() + range.begin, mask_.begin() + range.end);
    st->ids_local.assign(original_id_.begin() + range.begin,
                         original_id_.begin() + range.end);
    st->model = GcnModel(config_.gcn);
    states_[static_cast<std::size_t>(comm.rank())] = std::move(st);
  });
  result_.setup_megabytes =
      static_cast<double>(
          cluster_->traffic().phase("index_exchange").total_bytes()) /
      1.0e6;
}

DistributedTrainer::~DistributedTrainer() = default;

std::string DistributedTrainer::name() const {
  return job_strategy_->name() + "+" + config_.partitioner + "@p=" +
         std::to_string(config_.p) +
         (config_.c > 1 ? ",c=" + std::to_string(config_.c) : "");
}

EpochMetrics DistributedTrainer::run_epoch() {
  const int e = epoch_;
  EpochMetrics metrics;
  // Arm scheduled kills for this epoch (single-threaded: no rank is inside
  // the world between cluster rounds). Setup traffic above ran kill-free.
  if (config_.fault_plan != nullptr) cluster_->world().begin_fault_epoch(e);
  cluster_->run([&](Comm& comm) {
    // Epoch-boundary kill check (KillSpec::after_sends == 0 fires here,
    // before any work of the epoch).
    if (config_.fault_plan != nullptr) comm.world().poll_fault(comm.rank());
    RankState& st = *states_[static_cast<std::size_t>(comm.rank())];
    // Cross-layer pipelined strategies reset their epoch-wide stage
    // cursor here, so every epoch tags the same stage sequence.
    st.strategy->begin_epoch();
    double* cpu = &rank_cpu_seconds_[static_cast<std::size_t>(comm.rank())];
    Comm& reduce_comm = st.strategy->reduce_comm();
    GcnModel& model = st.model;
    const GcnConfig& gcn = config_.gcn;

    // Forward. Input dropout masks are a pure function of
    // (seed, epoch, ORIGINAL row id), so they agree with serial training
    // and across replicas of the same block row.
    Matrix h = st.h0_local;
    if (gcn.dropout > 0.0f) {
      ThreadCpuTimer t_drop;
      dropout_rows_deterministic(
          h, gcn.dropout,
          gcn.seed ^ (0x9e37ull * (static_cast<std::uint64_t>(e) + 1)),
          st.ids_local);
      *cpu += t_drop.seconds();
    }
    for (int l = 0; l < model.n_layers(); ++l) {
      Matrix m = st.strategy->propagate_forward(h, cpu);
      ThreadCpuTimer t;
      h = model.layer(l).forward(std::move(m));
      *cpu += t.seconds();
    }

    // Global loss statistics (tiny all-reduce; lower-order term).
    const LossStats local = softmax_xent_stats(h, st.labels_local, st.mask_local);
    std::vector<double> triple{local.loss_sum,
                               static_cast<double>(local.correct),
                               static_cast<double>(local.count)};
    allreduce_sum<double>(reduce_comm, triple, "allreduce");
    if (comm.rank() == 0) {
      metrics = {triple[0] / std::max(1.0, triple[2]),
                 triple[2] > 0 ? triple[1] / triple[2] : 0.0};
    }

    // Backward.
    Matrix d_h = softmax_xent_grad(h, st.labels_local, st.mask_local, total_train_);
    std::vector<Matrix> d_weights(static_cast<std::size_t>(model.n_layers()));
    for (int l = model.n_layers() - 1; l >= 0; --l) {
      ThreadCpuTimer t;
      auto back = model.layer(l).backward(d_h);
      *cpu += t.seconds();
      // dW = M^T dZ summed over the disjoint block rows.
      std::vector<real_t> flat{back.d_weights.data(),
                               back.d_weights.data() + back.d_weights.size()};
      allreduce_sum<real_t>(reduce_comm, flat, "allreduce");
      d_weights[static_cast<std::size_t>(l)] = Matrix(
          back.d_weights.n_rows(), back.d_weights.n_cols(), std::move(flat));
      if (l > 0) d_h = st.strategy->propagate_backward(back.d_m, cpu);
    }
    ThreadCpuTimer t;
    for (int l = 0; l < model.n_layers(); ++l) {
      model.layer(l).apply_gradient(d_weights[static_cast<std::size_t>(l)],
                                    gcn.learning_rate, gcn.weight_decay);
    }
    *cpu += t.seconds();
  });
  epochs_.push_back(metrics);
  ++epoch_;
  return metrics;
}

const GcnModel& DistributedTrainer::model() const {
  return states_.front()->model;
}

void DistributedTrainer::save(std::ostream& out) {
  // The weights are replicated by construction (same init seed, identical
  // all-reduced gradients); verify before writing one copy, so a snapshot
  // can never launder a replication bug into a "successful" restore.
  const GcnModel& reference = states_.front()->model;
  for (const auto& st : states_) {
    for (int l = 0; l < reference.n_layers(); ++l) {
      SAGNN_CHECK(st->model.layer(l).weights() == reference.layer(l).weights());
    }
  }
  ckpt::Serializer s(out);
  ckpt::write_prologue(s, config_, *dataset_);
  ckpt::write_progress(s, epoch_, epochs_);
  s.begin_section("model");
  ckpt::write_model(s, reference);
  s.end_section();
  s.begin_section("traffic");
  ckpt::write_traffic(s, cluster_->traffic());
  s.end_section();
  s.begin_section("rank_cpu");
  s.write_vector(rank_cpu_seconds_,
                 [](ckpt::Serializer& x, double v) { x.write_f64(v); });
  s.end_section();
  // Epochs NOT covered by the recorder (nonzero iff this run itself began
  // as an elastic restart) — a later same-geometry resume must keep
  // dividing traffic by the epochs it actually covers.
  s.begin_section("traffic_base");
  s.write_i32(traffic_epoch_base_);
  s.end_section();
  s.finish();
}

void DistributedTrainer::restore(ckpt::Deserializer& d,
                                 const TrainConfig& saved) {
  epoch_ = ckpt::read_progress(d, epochs_);

  // Load the replicated weights into every rank's model. The constructor
  // already partitioned the (possibly new) geometry and ran setup, so this
  // is pure state injection — no cluster round needed.
  d.enter_section("model");
  ckpt::read_model_into(d, states_.front()->model);
  d.leave_section();
  for (std::size_t r = 1; r < states_.size(); ++r) {
    states_[r]->model = states_.front()->model;
  }

  d.enter_section("traffic");
  TrafficRecorder saved_traffic = ckpt::read_traffic(d);
  d.leave_section();
  d.enter_section("rank_cpu");
  auto saved_cpu = d.read_vector<double>(
      [](ckpt::Deserializer& x) { return x.read_f64(); });
  d.leave_section();
  if (saved_traffic.p() != saved.p) {
    throw ckpt::CheckpointFormatError(
        "section 'traffic': recorded for p=" +
        std::to_string(saved_traffic.p()) +
        " but the checkpoint config says p=" + std::to_string(saved.p));
  }
  if (saved_cpu.size() != static_cast<std::size_t>(saved_traffic.p())) {
    throw ckpt::CheckpointFormatError(
        "section 'rank_cpu': " + std::to_string(saved_cpu.size()) +
        " entries for a " + std::to_string(saved_traffic.p()) +
        "-rank snapshot");
  }
  d.enter_section("traffic_base");
  const int saved_traffic_base = d.read_i32();
  d.leave_section();
  if (saved_traffic_base < 0 || saved_traffic_base > epoch_) {
    throw ckpt::CheckpointFormatError(
        "section 'traffic_base': base " + std::to_string(saved_traffic_base) +
        " outside [0, " + std::to_string(epoch_) + "]");
  }

  // "Same geometry" means the full communication-relevant configuration,
  // not just the rank count: a changed c, partitioner (different
  // permutation and halos), or pipeline chunking (different stage tags)
  // makes the snapshot's history incomparable even at equal p.
  const bool same_comm_config =
      saved.p == config_.p && saved.c == config_.c &&
      saved.partitioner == config_.partitioner &&
      saved.partitioner_options == config_.partitioner_options &&
      saved.pipeline_chunks == config_.pipeline_chunks;
  if (same_comm_config) {
    // Adopt the snapshot's full communication history (which includes the
    // one-time index exchange this constructor just re-recorded
    // identically), so per-epoch averages continue exactly as in an
    // uninterrupted run. The snapshot's own base carries over: it is
    // nonzero when that run had itself elastically restarted.
    cluster_->traffic() = saved_traffic;
    rank_cpu_seconds_ = std::move(saved_cpu);
    traffic_epoch_base_ = saved_traffic_base;
  } else {
    // Elastic restart: the old geometry's (src, dst) counters are
    // meaningless under the new layout. Keep the fresh recorder (it
    // already holds the new index exchange) and restart per-epoch
    // accounting here.
    traffic_epoch_base_ = epoch_;
  }
  finalized_epochs_ = -1;
}

const std::vector<EpochMetrics>& DistributedTrainer::train() {
  while (epoch_ < config_.gcn.epochs) {
    try {
      run_epoch();
    } catch (const RankKilledError& kill) {
      if (config_.fault_recovery != FaultRecovery::kCheckpointRestart) throw;
      recover_from_kill(kill);
      continue;
    }
    maybe_auto_checkpoint(epoch_);
  }
  finalize();
  return epochs_;
}

void DistributedTrainer::recover_from_kill(const RankKilledError& kill) {
  WallTimer timer;
  ++recovery_.kills;
  // The aborted world's recorder dies with the cluster; bank its fault
  // counters first (the snapshot we restore holds none — they are
  // runtime-only).
  faults_before_recovery_ += cluster_->traffic().fault_counters();
  const int epochs_done_before = epoch_;

  if (kill.permanent()) {
    SAGNN_REQUIRE(config_.p > 1,
                  "permanent kill of the last remaining rank is unsurvivable");
    config_.p = config_.p - 1;
    ++recovery_.elastic_restarts;
  }

  const std::string& path = auto_checkpoint_path();
  std::ifstream snapshot;
  if (!path.empty()) snapshot.open(path, std::ios::binary);

  // Everything the kill poisoned — the aborted world, its mailboxes, and
  // rank state possibly mid-gradient — is rebuilt from scratch for the
  // (possibly reduced) geometry...
  initialize();

  if (snapshot.is_open() && snapshot.good()) {
    // ...then the last complete snapshot is injected, exactly the
    // TrainerBuilder::resume() flow. The auto-checkpoint's tmp+rename
    // atomicity guarantees this file is never a torn write.
    ckpt::Deserializer d(snapshot);
    d.enter_section("config");
    const TrainConfig saved = ckpt::read_train_config(d);
    d.leave_section();
    d.enter_section("dataset");
    ckpt::check_dataset_fingerprint(d, *dataset_);
    d.leave_section();
    restore(d, saved);
    d.finish();
    ++recovery_.restores;
  } else {
    // Killed before the first auto-checkpoint (or none armed): cold
    // restart — replay the whole run from epoch 0. Deterministic kernels
    // and one-shot kills make the replayed trajectory identical.
    epoch_ = 0;
    epochs_.clear();
    traffic_epoch_base_ = 0;
    finalized_epochs_ = -1;
    ++recovery_.cold_restarts;
  }
  recovery_.replayed_epochs += epochs_done_before - epoch_;
  recovery_.recovery_seconds += timer.seconds();
}

const TrainResult& DistributedTrainer::result() {
  finalize();
  return result_;
}

void DistributedTrainer::finalize() {
  if (finalized_epochs_ == epoch_) return;
  finalized_epochs_ = epoch_;
  // Every per-epoch average below divides by the COMPLETED epoch count
  // (== result_.epochs.size()), so a run stopped early via run_epoch()
  // stepping reports consistently. After an elastic restore the recorder
  // only holds post-restart traffic, so averages divide by the epochs it
  // actually covers (epoch_ - traffic_epoch_base_).
  result_.epochs = epochs_;

  const TrafficRecorder traffic = cluster_->traffic();  // snapshot
  const int traffic_epochs = std::max(1, epoch_ - traffic_epoch_base_);
  const double inv_epochs = 1.0 / traffic_epochs;

  // Per-epoch traffic: everything except setup and barriers, averaged.
  // Stage-tagged phases ("alltoall#k") aggregate under their base name;
  // the deepest stage count is the pipeline depth the run used.
  result_.phase_volumes.clear();
  result_.pipeline_stages = 1;
  for (const auto& phase : traffic.phase_names()) {
    const std::string base = TrafficRecorder::base_name(phase);
    if (base == "sync" || base == "index_exchange") continue;
    if (result_.phase_volumes.count(base)) continue;  // base seen already
    const PhaseTraffic tr = traffic.phase_total(base);
    result_.phase_volumes[base] = {
        static_cast<double>(tr.total_bytes()) * inv_epochs / 1.0e6,
        static_cast<double>(tr.total_msgs()) * inv_epochs};
    result_.pipeline_stages =
        std::max(result_.pipeline_stages, traffic.stage_count(base));
  }

  const StrategyContext ctx = context();
  result_.modeled_epoch =
      job_strategy_->epoch_cost(config_.cost_model, traffic, rank_cpu_seconds_,
                                ctx, traffic_epochs);

  const auto smoothed = job_strategy_->smooth_rank_cpu(ctx, rank_cpu_seconds_);
  double max_cpu = 0;
  for (double s : smoothed) max_cpu = std::max(max_cpu, s * inv_epochs);
  result_.max_rank_cpu_seconds_per_epoch = max_cpu;

  // Fault/recovery surfacing: counters accumulate across clusters torn
  // down by kill recovery plus the live recorder.
  result_.faults = faults_before_recovery_;
  result_.faults += traffic.fault_counters();
  result_.recovery = recovery_;
  result_.recovery.last_save_seconds = last_auto_save_seconds();
  result_.recovery.snapshot_bytes = last_auto_snapshot_bytes();
}

}  // namespace sagnn
