#include "gnn/strategy.hpp"

#include <algorithm>

namespace sagnn {

StrategyRegistry& strategy_registry() {
  static StrategyRegistry registry("distribution strategy");
  return registry;
}

std::vector<double> DistributionStrategy::smooth_rank_cpu(
    const StrategyContext& ctx, std::span<const double> measured) const {
  // The kernels are measured with per-thread CPU clocks, but with many
  // rank-threads oversubscribed on few cores the per-rank split is noisy
  // (cache and scheduler effects). Compute work is nnz-dominated and
  // exactly proportional to each rank's share of the matrix, so keep the
  // MEASURED total and redistribute it in proportion to rank_work(). This
  // preserves the partitioner-induced compute imbalance the paper
  // discusses (§7.1.1) without scheduling noise.
  double total_cpu = 0;
  for (double s : measured) total_cpu += s;
  const std::vector<double> work = rank_work(ctx);
  SAGNN_CHECK(static_cast<int>(work.size()) == ctx.p);
  double total_work = 0;
  for (double w : work) total_work += w;
  std::vector<double> smoothed(static_cast<std::size_t>(ctx.p), 0.0);
  for (int r = 0; r < ctx.p; ++r) {
    smoothed[static_cast<std::size_t>(r)] =
        total_work > 0 ? total_cpu * work[static_cast<std::size_t>(r)] / total_work
                       : total_cpu / ctx.p;
  }
  return smoothed;
}

EpochCost DistributionStrategy::epoch_cost(const CostModel& model,
                                           const TrafficRecorder& traffic,
                                           std::span<const double> rank_cpu_seconds,
                                           const StrategyContext& ctx,
                                           int epochs) const {
  const std::vector<double> smoothed = smooth_rank_cpu(ctx, rank_cpu_seconds);

  // The alpha-beta model is linear in byte and message counts and every
  // epoch's traffic is identical, so one epoch costs the whole run divided
  // by the epoch count. The one-time index exchange is excluded during
  // assembly (like "sync"), so the per-epoch `other` bucket is exact — no
  // subtract-and-clamp that could silently absorb accounting drift.
  const double inv_epochs = 1.0 / std::max(1, epochs);
  EpochCost all = sagnn::epoch_cost(model, traffic, smoothed, {"index_exchange"});
  all.scale(inv_epochs);
  return all;
}

std::vector<double> block_row_nnz_work(const StrategyContext& ctx) {
  // Rank r owns block row r outright: its work is the block's nnz.
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range = ctx.ranges[static_cast<std::size_t>(r)];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]);
  }
  return work;
}

}  // namespace sagnn
