#include "gnn/strategy.hpp"

#include <algorithm>

#include "plan/census.hpp"

namespace sagnn {

StrategyRegistry& strategy_registry() {
  static StrategyRegistry registry("distribution strategy");
  return registry;
}

std::vector<double> DistributionStrategy::smooth_rank_cpu(
    const StrategyContext& ctx, std::span<const double> measured) const {
  // The kernels are measured with per-thread CPU clocks, but with many
  // rank-threads oversubscribed on few cores the per-rank split is noisy
  // (cache and scheduler effects). Compute work is nnz-dominated and
  // exactly proportional to each rank's share of the matrix, so keep the
  // MEASURED total and redistribute it in proportion to rank_work(). This
  // preserves the partitioner-induced compute imbalance the paper
  // discusses (§7.1.1) without scheduling noise.
  double total_cpu = 0;
  for (double s : measured) total_cpu += s;
  const std::vector<double> work = rank_work(ctx);
  SAGNN_CHECK(static_cast<int>(work.size()) == ctx.p);
  double total_work = 0;
  for (double w : work) total_work += w;
  std::vector<double> smoothed(static_cast<std::size_t>(ctx.p), 0.0);
  for (int r = 0; r < ctx.p; ++r) {
    smoothed[static_cast<std::size_t>(r)] =
        total_work > 0 ? total_cpu * work[static_cast<std::size_t>(r)] / total_work
                       : total_cpu / ctx.p;
  }
  return smoothed;
}

EpochCost DistributionStrategy::epoch_cost(const CostModel& model,
                                           const TrafficRecorder& traffic,
                                           std::span<const double> rank_cpu_seconds,
                                           const StrategyContext& ctx,
                                           int epochs) const {
  const std::vector<double> smoothed = smooth_rank_cpu(ctx, rank_cpu_seconds);

  // The alpha-beta model is linear in byte and message counts and every
  // epoch's traffic is identical, so one epoch costs the whole run divided
  // by the epoch count. The one-time index exchange is excluded during
  // assembly (like "sync"), so the per-epoch `other` bucket is exact — no
  // subtract-and-clamp that could silently absorb accounting drift.
  const double inv_epochs = 1.0 / std::max(1, epochs);
  EpochCost all = sagnn::epoch_cost(model, traffic, smoothed, {"index_exchange"});
  all.scale(inv_epochs);
  return all;
}

PredictedCost DistributionStrategy::predict_cost(const PredictInput&) const {
  PredictedCost out;
  out.note = name() + " does not implement predict_cost()";
  return out;
}

// ---- CostEstimator -------------------------------------------------------

double CostEstimator::alpha_spread(int group, int stride) const {
  if (group <= 1) return m_.alpha_intra;
  // Of the group - 1 peers, those on the bottleneck rank's node are spaced
  // `stride` apart, so at most gpus_per_node / stride - 1 of them exist.
  const int per_node = std::max(1, m_.gpus_per_node / std::max(1, stride));
  const double intra =
      std::min<double>(group - 1, std::max(0, per_node - 1));
  const double frac = intra / static_cast<double>(group - 1);
  return frac * m_.alpha_intra + (1.0 - frac) * m_.alpha_inter;
}

double CostEstimator::beta_spread(int group, int stride) const {
  if (group <= 1) return m_.beta_intra;
  const int per_node = std::max(1, m_.gpus_per_node / std::max(1, stride));
  const double intra =
      std::min<double>(group - 1, std::max(0, per_node - 1));
  const double frac = intra / static_cast<double>(group - 1);
  return frac * m_.beta_intra + (1.0 - frac) * m_.beta_inter;
}

double CostEstimator::alpha_ring(int group, int stride) const {
  // Every ring message of the bottleneck rank goes to the SAME neighbor;
  // as soon as the ring spans a node boundary, that rank's link is
  // inter-node (the phase cost is a max over ranks).
  const bool spans = (group - 1) * std::max(1, stride) >= m_.gpus_per_node;
  return spans ? m_.alpha_inter : m_.alpha_intra;
}

double CostEstimator::beta_ring(int group, int stride) const {
  const bool spans = (group - 1) * std::max(1, stride) >= m_.gpus_per_node;
  return spans ? m_.beta_inter : m_.beta_intra;
}

void CostEstimator::alltoall(EpochCost& c, double bytes, double msgs,
                             int group, int stride) const {
  const double latency = msgs * alpha_spread(group, stride);
  const double scaled = bytes * m_.volume_scale;
  c.alltoall += latency + scaled * beta_spread(group, stride);
  c.alltoall_latency += latency;
  c.alltoall_messages += msgs;
  c.alltoall_bytes += scaled;
}

void CostEstimator::bcast(EpochCost& c, double bytes, double msgs, int group,
                          int stride) const {
  const double latency = msgs * alpha_spread(group, stride);
  c.bcast += latency + bytes * m_.volume_scale * beta_spread(group, stride);
  c.bcast_latency += latency;
}

void CostEstimator::allreduce(EpochCost& c, double payload_bytes, int ring,
                              int stride) const {
  if (ring <= 1) return;
  const double msgs = 2.0 * (ring - 1);
  const double bytes =
      2.0 * payload_bytes * static_cast<double>(ring - 1) / ring;
  const double latency = msgs * alpha_ring(ring, stride);
  c.allreduce += latency + bytes * m_.volume_scale * beta_ring(ring, stride);
  c.allreduce_latency += latency;
}

void CostEstimator::exchange(EpochCost& c, double bytes, double msgs,
                             int group, int stride) const {
  const double latency = msgs * alpha_spread(group, stride);
  c.other += latency + bytes * m_.volume_scale * beta_spread(group, stride);
  c.other_latency += latency;
}

double CostEstimator::compute_seconds(double madds,
                                      double host_madds_per_second) const {
  return madds / host_madds_per_second * m_.compute_scale * m_.volume_scale;
}

std::vector<vid_t> propagate_widths(const std::vector<vid_t>& dims) {
  std::vector<vid_t> widths;
  const int layers = static_cast<int>(dims.size()) - 1;
  for (int l = 0; l < layers; ++l) widths.push_back(dims[static_cast<std::size_t>(l)]);
  for (int l = layers - 1; l >= 1; --l) widths.push_back(dims[static_cast<std::size_t>(l)]);
  return widths;
}

std::vector<vid_t> effective_dims(const PredictInput& in) {
  if (!in.dims.empty()) return in.dims;
  SAGNN_REQUIRE(in.census != nullptr, "prediction needs a census");
  return {in.census->f, 16, 16, in.census->n_classes};
}

std::vector<vid_t> predict_base(EpochCost& cost, const PredictInput& in,
                                int n_blocks, double dense_rows,
                                int reduce_ranks, int reduce_stride) {
  const GraphCensus& cs = *in.census;
  const CostEstimator e(in.model);
  const std::vector<vid_t> dims = effective_dims(in);
  const std::vector<vid_t> widths = propagate_widths(dims);

  // Nominal compute: every scheme splits the tile SpMM's nnz * width work
  // p ways (replicas split columns, grids split tiles); what differs is
  // the dense GEMM row count (replication and 2D/3D residency duplicate
  // dense compute) and the partitioner's nnz imbalance at n_blocks.
  double width_sum = 0;
  for (vid_t w : widths) width_sum += static_cast<double>(w);
  const double spmm_madds =
      static_cast<double>(cs.nnz) / std::max(1, in.p) *
      cs.expected_compute_imbalance(in.partitioner, n_blocks) * width_sum;
  double gemm_cols = 0;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    gemm_cols += static_cast<double>(dims[l]) * static_cast<double>(dims[l + 1]);
  }
  // Forward GEMM plus the ~2x of backward (dX and dW) per layer.
  const double dense_madds = 3.0 * dense_rows * gemm_cols;
  cost.compute = e.compute_seconds(spmm_madds + dense_madds,
                                   in.host_madds_per_second);

  // Per-layer weight-gradient ring all-reduces plus the loss triple, over
  // the strategy's reduce scope.
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    e.allreduce(cost,
                static_cast<double>(dims[l]) * static_cast<double>(dims[l + 1]) *
                    sizeof(real_t),
                reduce_ranks, reduce_stride);
  }
  e.allreduce(cost, 3.0 * sizeof(double), reduce_ranks, reduce_stride);
  return widths;
}

std::vector<double> block_row_nnz_work(const StrategyContext& ctx) {
  // Rank r owns block row r outright: its work is the block's nnz.
  std::vector<double> work(static_cast<std::size_t>(ctx.p), 0.0);
  const auto row_ptr = ctx.adjacency->row_ptr();
  for (int r = 0; r < ctx.p; ++r) {
    const BlockRange& range = ctx.ranges[static_cast<std::size_t>(r)];
    work[static_cast<std::size_t>(r)] =
        static_cast<double>(row_ptr[range.end] - row_ptr[range.begin]);
  }
  return work;
}

}  // namespace sagnn
