#pragma once
// Single-process full-graph GCN trainer: the numerical reference every
// distributed configuration is property-tested against, and the baseline
// for accuracy-parity claims (paper §6.2: sparsity-aware training changes
// communication, not math). Implements the unified Trainer interface.

#include <vector>

#include "gnn/loss.hpp"
#include "gnn/trainer.hpp"
#include "sparse/sell.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

class SerialTrainer final : public Trainer {
 public:
  /// `kernels` selects the SpMM storage format (sparse/sell.hpp);
  /// bitwise-neutral, default CSR.
  SerialTrainer(const Dataset& dataset, GcnConfig config,
                const KernelConfig& kernels = {});

  std::string name() const override { return "serial"; }
  int epochs_run() const override { return epoch_; }

  /// One full-batch epoch: forward, loss, backward, SGD step.
  EpochMetrics run_epoch() override;

  /// Run the remaining configured epochs; returns the full trajectory.
  const std::vector<EpochMetrics>& train() override;

  const TrainResult& result() override;

  /// Snapshot epoch count, metric trajectory, and model weights.
  void save(std::ostream& out) override;

  /// Forward pass only; returns the logits (used by tests/examples).
  Matrix forward();

  const GcnModel& model() const { return model_; }
  GcnModel& model_mut() { return model_; }

 protected:
  void restore(ckpt::Deserializer& d, const TrainConfig& saved) override;

 private:
  const Dataset& dataset_;
  GcnConfig config_;
  /// The adjacency in the configured kernel format (views dataset_'s CSR).
  SpmmOperand adjacency_;
  GcnModel model_;
  int epoch_ = 0;  ///< epochs completed; drives the per-epoch dropout seed
  std::vector<EpochMetrics> metrics_;
  TrainResult result_;
};

}  // namespace sagnn
