#pragma once
// Single-process full-graph GCN trainer: the numerical reference every
// distributed configuration is property-tested against, and the baseline
// for accuracy-parity claims (paper §6.2: sparsity-aware training changes
// communication, not math).

#include <vector>

#include "gnn/loss.hpp"
#include "gnn/model.hpp"
#include "graph/datasets.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

struct EpochMetrics {
  double loss = 0;
  double train_accuracy = 0;
};

class SerialTrainer {
 public:
  SerialTrainer(const Dataset& dataset, GcnConfig config);

  /// One full-batch epoch: forward, loss, backward, SGD step.
  EpochMetrics run_epoch();

  /// Run config.epochs epochs.
  std::vector<EpochMetrics> train();

  /// Forward pass only; returns the logits (used by tests/examples).
  Matrix forward();

  const GcnModel& model() const { return model_; }
  GcnModel& model_mut() { return model_; }

 private:
  const Dataset& dataset_;
  GcnConfig config_;
  GcnModel model_;
  int epoch_ = 0;  ///< epochs completed; drives the per-epoch dropout seed
};

}  // namespace sagnn
