#include "gnn/sampled_trainer.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "ckpt/state_io.hpp"
#include "dense/gemm.hpp"

namespace sagnn {

SampledTrainer::SampledTrainer(const Dataset& dataset, GcnConfig config,
                               SamplingConfig sampling,
                               const KernelConfig& kernels)
    : dataset_(dataset),
      config_(std::move(config)),
      sampling_(std::move(sampling)),
      adjacency_(dataset.adjacency, kernels),
      model_(config_),
      rng_(sampling_.seed) {
  SAGNN_REQUIRE(config_.dims.front() == dataset.n_features(),
                "config input width must match dataset features");
  SAGNN_REQUIRE(config_.dims.back() == dataset.n_classes,
                "config output width must match dataset classes");
  SAGNN_REQUIRE(static_cast<int>(sampling_.fanouts.size()) == config_.n_layers(),
                "need one fanout per GCN layer");
  SAGNN_REQUIRE(sampling_.batch_size > 0, "batch size must be positive");
  for (vid_t f : sampling_.fanouts) {
    SAGNN_REQUIRE(f > 0, "fanouts must be positive");
  }
  for (vid_t v = 0; v < dataset.n_vertices(); ++v) {
    if (dataset.train_mask[static_cast<std::size_t>(v)]) {
      train_vertices_.push_back(v);
    }
  }
  SAGNN_REQUIRE(!train_vertices_.empty(), "dataset has no training vertices");
}

std::vector<SampledTrainer::SampledLayer> SampledTrainer::sample_batch(
    const std::vector<vid_t>& batch) {
  const int layers = config_.n_layers();
  std::vector<SampledLayer> out(static_cast<std::size_t>(layers));

  // Walk from the output layer inwards: the targets of layer l are the
  // sources of layer l+1; the innermost sources index the feature matrix.
  std::vector<vid_t> targets = batch;
  for (int l = layers - 1; l >= 0; --l) {
    const vid_t fanout = sampling_.fanouts[static_cast<std::size_t>(l)];

    // Sample up to `fanout` neighbors per target (plus the target itself —
    // Â has self-loops, and keeping them preserves the skip connection).
    std::vector<vid_t> sources;
    std::unordered_map<vid_t, vid_t> source_index;
    auto intern = [&](vid_t v) {
      auto [it, inserted] = source_index.try_emplace(v, static_cast<vid_t>(sources.size()));
      if (inserted) sources.push_back(v);
      return it->second;
    };

    // Collect triples with interned column ids, then build the block once
    // the source count is known.
    std::vector<CooEntry> entries;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const vid_t v = targets[t];
      const auto cols = dataset_.adjacency.row_cols(v);
      const auto vals = dataset_.adjacency.row_vals(v);
      const auto deg = static_cast<vid_t>(cols.size());
      if (deg <= fanout) {
        // Keep the exact neighborhood; no rescaling needed.
        for (vid_t k = 0; k < deg; ++k) {
          entries.push_back({static_cast<vid_t>(t), intern(cols[k]), vals[k]});
        }
      } else {
        // Uniform sample without replacement (Floyd's algorithm), value
        // rescaled by deg/fanout so the aggregate is unbiased.
        const real_t scale = static_cast<real_t>(deg) / static_cast<real_t>(fanout);
        std::unordered_map<vid_t, bool> chosen;
        for (vid_t j = deg - fanout; j < deg; ++j) {
          auto r = static_cast<vid_t>(rng_.next_below(static_cast<std::uint64_t>(j) + 1));
          if (chosen.count(r)) r = j;
          chosen[r] = true;
          entries.push_back(
              {static_cast<vid_t>(t), intern(cols[r]), vals[r] * scale});
        }
      }
    }

    CooMatrix coo(static_cast<vid_t>(targets.size()),
                  static_cast<vid_t>(sources.size()));
    for (const auto& e : entries) coo.add(e.row, e.col, e.val);
    out[static_cast<std::size_t>(l)].block = CsrMatrix::from_coo(coo);
    out[static_cast<std::size_t>(l)].sources = sources;
    targets = std::move(sources);
  }
  return out;
}

SampledEpochMetrics SampledTrainer::run_epoch_detailed() {
  SampledEpochMetrics metrics;
  // Shuffled pass over the training vertices.
  std::vector<vid_t> order = train_vertices_;
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng_.next_below(i + 1));
    std::swap(order[i], order[j]);
  }

  double loss_sum = 0;
  std::int64_t correct = 0, count = 0;
  for (std::size_t begin = 0; begin < order.size();
       begin += static_cast<std::size_t>(sampling_.batch_size)) {
    const std::size_t end =
        std::min(order.size(), begin + static_cast<std::size_t>(sampling_.batch_size));
    const std::vector<vid_t> batch(order.begin() + static_cast<std::ptrdiff_t>(begin),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
    auto layers = sample_batch(batch);
    for (const auto& l : layers) metrics.sampled_edges += l.block.nnz();

    // Forward through the sampled computation graph.
    Matrix h = dataset_.features.gather_rows(layers.front().sources);
    for (int l = 0; l < config_.n_layers(); ++l) {
      Matrix m = spmm(layers[static_cast<std::size_t>(l)].block, h);
      h = model_.layer(l).forward(std::move(m));
    }

    // Batch loss: every row of the final output is a batch vertex.
    std::vector<vid_t> labels(batch.size());
    std::vector<std::uint8_t> ones(batch.size(), 1);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      labels[i] = dataset_.labels[static_cast<std::size_t>(batch[i])];
    }
    const LossStats stats = softmax_xent_stats(h, labels, ones);
    loss_sum += stats.loss_sum;
    correct += stats.correct;
    count += stats.count;
    ++metrics.batches;

    // Backward + SGD step (per mini-batch, as mini-batch training does).
    Matrix d_h = softmax_xent_grad(h, labels, ones, stats.count);
    std::vector<Matrix> d_weights(static_cast<std::size_t>(config_.n_layers()));
    for (int l = config_.n_layers() - 1; l >= 0; --l) {
      auto back = model_.layer(l).backward(d_h);
      d_weights[static_cast<std::size_t>(l)] = std::move(back.d_weights);
      if (l > 0) {
        d_h = spmm(layers[static_cast<std::size_t>(l)].block.transpose(),
                   back.d_m);
      }
    }
    for (int l = 0; l < config_.n_layers(); ++l) {
      model_.layer(l).apply_gradient(d_weights[static_cast<std::size_t>(l)],
                                     config_.learning_rate);
    }
  }
  metrics.loss = count > 0 ? loss_sum / count : 0.0;
  metrics.train_accuracy = count > 0 ? static_cast<double>(correct) / count : 0.0;
  detailed_.push_back(metrics);
  metrics_.push_back({metrics.loss, metrics.train_accuracy});
  return metrics;
}

EpochMetrics SampledTrainer::run_epoch() {
  (void)run_epoch_detailed();
  return metrics_.back();
}

const std::vector<EpochMetrics>& SampledTrainer::train() {
  while (epochs_run() < config_.epochs) {
    (void)run_epoch_detailed();
    maybe_auto_checkpoint(epochs_run());
  }
  return metrics_;
}

const TrainResult& SampledTrainer::result() {
  result_.epochs = metrics_;
  return result_;
}

const std::vector<SampledEpochMetrics>& SampledTrainer::train_detailed() {
  while (epochs_run() < config_.epochs) {
    (void)run_epoch_detailed();
    maybe_auto_checkpoint(epochs_run());
  }
  return detailed_;
}

void SampledTrainer::save(std::ostream& out) {
  ckpt::Serializer s(out);
  TrainConfig cfg;
  cfg.gcn = config_;
  cfg.strategy = "sampled";
  cfg.sampling = sampling_;
  ckpt::write_prologue(s, cfg, dataset_);
  ckpt::write_progress(s, epochs_run(), metrics_);
  s.begin_section("model");
  ckpt::write_model(s, model_);
  s.end_section();
  s.begin_section("rng");
  ckpt::write_rng(s, rng_);
  s.end_section();
  s.begin_section("sampled_metrics");
  s.write_u64(detailed_.size());
  for (const SampledEpochMetrics& m : detailed_) {
    s.write_f64(m.loss);
    s.write_f64(m.train_accuracy);
    s.write_i64(m.sampled_edges);
    s.write_i64(m.batches);
  }
  s.end_section();
  s.finish();
}

void SampledTrainer::restore(ckpt::Deserializer& d, const TrainConfig& /*saved*/) {
  const int epoch = ckpt::read_progress(d, metrics_);
  d.enter_section("model");
  ckpt::read_model_into(d, model_);
  d.leave_section();
  d.enter_section("rng");
  rng_ = ckpt::read_rng(d);
  d.leave_section();
  d.enter_section("sampled_metrics");
  detailed_ =
      d.read_vector<SampledEpochMetrics>([](ckpt::Deserializer& x) {
        SampledEpochMetrics m;
        m.loss = x.read_f64();
        m.train_accuracy = x.read_f64();
        m.sampled_edges = x.read_i64();
        m.batches = x.read_i64();
        return m;
      });
  d.leave_section();
  if (detailed_.size() != static_cast<std::size_t>(epoch)) {
    throw ckpt::CheckpointFormatError(
        "section 'sampled_metrics': detailed trajectory length " +
        std::to_string(detailed_.size()) + " disagrees with epoch count " +
        std::to_string(epoch));
  }
}

LossStats SampledTrainer::evaluate() const {
  Matrix h = dataset_.features;
  GcnModel model_copy = model_;  // forward() caches; keep eval const
  for (int l = 0; l < model_copy.n_layers(); ++l) {
    Matrix m = spmm(adjacency_, h);
    h = model_copy.layer(l).forward(std::move(m));
  }
  return softmax_xent_stats(h, dataset_.labels, dataset_.train_mask);
}

}  // namespace sagnn
