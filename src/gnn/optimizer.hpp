#pragma once
// Optimizers for the GCN weights. SGD matches the paper's update
// W^{l} <- W^{l} - Y^{l}; Adam is provided for users who want the usual
// GCN training recipe. Both are deterministic and rank-replicable: given
// identical gradients on every rank they produce identical weights.

#include <vector>

#include "dense/matrix.hpp"
#include "dense/ops.hpp"

namespace sagnn {

class Sgd {
 public:
  explicit Sgd(real_t lr) : lr_(lr) {}
  real_t lr() const { return lr_; }
  void step(Matrix& w, const Matrix& grad) { axpy_inplace(w, grad, -lr_); }

 private:
  real_t lr_;
};

class Adam {
 public:
  /// First/second-moment estimates of one parameter slot. Public so the
  /// checkpoint visitors (ckpt::write_adam/read_adam_into) can snapshot
  /// and restore the optimizer exactly — the moments and step count are
  /// training state: dropping them changes the trajectory. The built-in
  /// trainers step via GcnLayer::apply_gradient (plain SGD) and do not
  /// carry Adam state; the visitors serve user training loops that do.
  struct Moments {
    Matrix m;
    Matrix v;
    std::int64_t t = 0;
  };

  explicit Adam(real_t lr, real_t beta1 = 0.9f, real_t beta2 = 0.999f,
                real_t eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// `slot` identifies the parameter (one moment pair per slot).
  void step(std::size_t slot, Matrix& w, const Matrix& grad);

  real_t lr() const { return lr_; }
  real_t beta1() const { return beta1_; }
  real_t beta2() const { return beta2_; }
  real_t eps() const { return eps_; }

  const std::vector<Moments>& moments() const { return slots_; }
  /// Replace the full moment state (checkpoint restore).
  void set_moments(std::vector<Moments> slots) { slots_ = std::move(slots); }

 private:
  real_t lr_, beta1_, beta2_, eps_;
  std::vector<Moments> slots_;
};

}  // namespace sagnn
