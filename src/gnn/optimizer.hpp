#pragma once
// Optimizers for the GCN weights. SGD matches the paper's update
// W^{l} <- W^{l} - Y^{l}; Adam is provided for users who want the usual
// GCN training recipe. Both are deterministic and rank-replicable: given
// identical gradients on every rank they produce identical weights.

#include <vector>

#include "dense/matrix.hpp"
#include "dense/ops.hpp"

namespace sagnn {

class Sgd {
 public:
  explicit Sgd(real_t lr) : lr_(lr) {}
  real_t lr() const { return lr_; }
  void step(Matrix& w, const Matrix& grad) { axpy_inplace(w, grad, -lr_); }

 private:
  real_t lr_;
};

class Adam {
 public:
  explicit Adam(real_t lr, real_t beta1 = 0.9f, real_t beta2 = 0.999f,
                real_t eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  /// `slot` identifies the parameter (one moment pair per slot).
  void step(std::size_t slot, Matrix& w, const Matrix& grad);

 private:
  struct Moments {
    Matrix m;
    Matrix v;
    std::int64_t t = 0;
  };
  real_t lr_, beta1_, beta2_, eps_;
  std::vector<Moments> slots_;
};

}  // namespace sagnn
