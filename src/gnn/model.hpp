#pragma once
// GCN model: a stack of GcnLayers with deterministic Glorot initialization.
// The same (config, seed) yields bit-identical weights on every rank, which
// is what keeps the replicated-weight distributed training consistent
// without broadcasting parameters.

#include <vector>

#include "gnn/layer.hpp"

namespace sagnn {

struct GcnConfig {
  /// Layer widths: {f_in, hidden..., n_classes}. The paper's setup is a
  /// 3-layer GCN with 16 hidden units: {f, 16, 16, classes}.
  std::vector<vid_t> dims;
  real_t learning_rate = 0.05f;
  /// L2 regularization: the SGD step uses W -= lr * (dW + weight_decay*W).
  /// Rank-replicable (pure function of replicated state).
  real_t weight_decay = 0.0f;
  /// Input-dropout probability applied to H^0 each epoch (Kipf & Welling
  /// train with dropout). Deterministic per (seed, epoch, global vertex),
  /// so every rank draws the identical mask for the rows it owns and
  /// distributed training stays equal to serial.
  real_t dropout = 0.0f;
  int epochs = 100;
  std::uint64_t seed = 42;

  int n_layers() const { return static_cast<int>(dims.size()) - 1; }

  /// The paper's architecture for a dataset with f input features.
  static GcnConfig paper_3layer(vid_t f, vid_t classes, int epochs = 100) {
    GcnConfig cfg;
    cfg.dims = {f, 16, 16, classes};
    cfg.epochs = epochs;
    return cfg;
  }
};

class GcnModel {
 public:
  GcnModel() = default;
  explicit GcnModel(const GcnConfig& config);

  int n_layers() const { return static_cast<int>(layers_.size()); }
  GcnLayer& layer(int l) { return layers_[static_cast<std::size_t>(l)]; }
  const GcnLayer& layer(int l) const { return layers_[static_cast<std::size_t>(l)]; }

  /// Frobenius distance between two models' weights (test helper).
  double weight_distance(const GcnModel& other) const;

 private:
  std::vector<GcnLayer> layers_;
};

}  // namespace sagnn
