#include "dist/dist_csr.hpp"

#include "sparse/spmm.hpp"

namespace sagnn {

DistCsr::DistCsr(const CsrMatrix& a, std::span<const BlockRange> ranges, int rank,
                 const KernelConfig& kernels)
    : rank_(rank), ranges_(ranges.begin(), ranges.end()) {
  SAGNN_REQUIRE(!ranges_.empty(), "need at least one block");
  SAGNN_REQUIRE(rank >= 0 && rank < static_cast<int>(ranges_.size()),
                "rank outside the block range list");
  SAGNN_REQUIRE(a.n_rows() == a.n_cols(), "distributed matrix must be square");
  SAGNN_REQUIRE(ranges_.front().begin == 0 && ranges_.back().end == a.n_rows(),
                "block ranges must tile [0, n)");
  my_range_ = ranges_[static_cast<std::size_t>(rank)];

  const CsrMatrix row_block = extract_row_block(a, my_range_);
  blocks_ = split_block_cols(row_block, ranges_);
  compacted_.reserve(blocks_.size());
  for (const CsrMatrix& b : blocks_) compacted_.push_back(compact_columns(b));
  if (kernels.format == SpmmFormat::kSell) {
    block_sell_.reserve(blocks_.size());
    compacted_sell_.reserve(compacted_.size());
    for (const CsrMatrix& b : blocks_) {
      block_sell_.push_back(SellMatrix::from_csr(b, kernels));
    }
    for (const CompactedBlock& b : compacted_) {
      compacted_sell_.push_back(SellMatrix::from_csr(b.matrix, kernels));
    }
  }
}

void DistCsr::block_accumulate(int j, const Matrix& h, Matrix& z) const {
  if (block_sell_.empty()) {
    spmm_accumulate(plain_block(j), h, z);
  } else {
    spmm_accumulate(block_sell_[static_cast<std::size_t>(j)], h, z);
  }
}

void DistCsr::compacted_accumulate(int j, const Matrix& h_packed,
                                   Matrix& z) const {
  if (compacted_sell_.empty()) {
    spmm_compacted_accumulate(compacted_block(j).matrix, h_packed, z);
  } else {
    spmm_accumulate(compacted_sell_[static_cast<std::size_t>(j)], h_packed, z);
  }
}

std::uint64_t DistCsr::total_needed_rows_remote() const {
  std::uint64_t total = 0;
  for (int j = 0; j < n_blocks(); ++j) {
    if (j == rank_) continue;
    total += needed_rows(j).size();
  }
  return total;
}

}  // namespace sagnn
