#include "dist/spmm_2d.hpp"

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

namespace {
/// User tag for the transpose exchange (must stay below kUserTagLimit).
constexpr long kTransposeTag = 2001;
}  // namespace

SquareGrid SquareGrid::make(int p) {
  SAGNN_REQUIRE(p >= 1, "need at least one rank");
  int q = 1;
  while (q * q < p) ++q;
  SAGNN_REQUIRE(q * q == p, "2D requires a perfect-square rank count");
  return {p, q};
}

DistSpmm2d::DistSpmm2d(Comm& comm, const CsrMatrix& a,
                       std::span<const BlockRange> ranges, SpmmMode mode,
                       const KernelConfig& kernels)
    : grid_(SquareGrid::make(comm.size())),
      grid_row_(grid_.grid_row(comm.rank())),
      grid_col_(grid_.grid_col(comm.rank())),
      mode_(mode),
      world_(comm),
      row_comm_(comm.split([this](int r) { return grid_.grid_row(r); })) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == grid_.q,
                "2D needs one block per grid dimension");
  SAGNN_REQUIRE(a.n_rows() == a.n_cols(), "distributed matrix must be square");
  SAGNN_REQUIRE(ranges.front().begin == 0 && ranges.back().end == a.n_rows(),
                "block ranges must tile [0, n)");
  input_range_ = ranges[static_cast<std::size_t>(grid_col_)];
  output_range_ = ranges[static_cast<std::size_t>(grid_row_)];

  const CsrMatrix row_block = extract_row_block(a, output_range_);
  tile_ = std::move(split_block_cols(row_block, ranges)[static_cast<std::size_t>(grid_col_)]);
  compacted_ = compact_columns(tile_);
  if (kernels.format == SpmmFormat::kSell) {
    tile_sell_ = SellMatrix::from_csr(tile_, kernels);
    compacted_sell_ = SellMatrix::from_csr(compacted_.matrix, kernels);
  }
}

Matrix DistSpmm2d::multiply(const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == input_range_.size(),
                "H block must match this rank's input residency");
  const vid_t f = h_local.n_cols();

  ThreadCpuTimer timer;
  Matrix z(output_range_.size(), f);
  if (mode_ == SpmmMode::kSparsityAware) {
    if (compacted_.matrix.nnz() > 0) {
      const Matrix packed = h_local.gather_rows(compacted_.cols);
      if (compacted_sell_) {
        spmm_accumulate(*compacted_sell_, packed, z);
      } else {
        spmm_compacted_accumulate(compacted_.matrix, packed, z);
      }
    }
  } else {
    if (tile_sell_) {
      spmm_accumulate(*tile_sell_, h_local, z);
    } else {
      spmm_accumulate(tile_, h_local, z);
    }
  }
  if (cpu_seconds != nullptr) *cpu_seconds += timer.seconds();

  // The dominant 2D communication: a dense all-reduce of Z across the grid
  // row. Its volume cannot be shrunk by sparsity.
  if (grid_.q > 1) {
    allreduce_sum<real_t>(row_comm_, {z.data(), z.size()}, "allreduce");
  }
  return z;
}

Matrix DistSpmm2d::remap_for_next(const Matrix& z_local) {
  SAGNN_REQUIRE(z_local.n_rows() == output_range_.size(),
                "remap input must be Z-resident");
  const int partner = grid_.rank_of(grid_col_, grid_row_);
  if (partner == world_.rank()) return z_local;

  const vid_t f = z_local.n_cols();
  world_.send<real_t>(partner, kTransposeTag,
                      {z_local.data(), z_local.size()}, "transpose");
  Matrix h(input_range_.size(), f);
  world_.recv_into<real_t>(partner, kTransposeTag, {h.data(), h.size()});
  return h;
}

}  // namespace sagnn
