#pragma once
// Per-rank state of a block-row-distributed sparse matrix (paper §4.1).
//
// Rank r of a 1D/1.5D distribution owns the block row A^T_{r·} of the
// (symmetrically permuted) adjacency, split by column into one block per
// part: A^T_{r1} ... A^T_{rk}. For each block j this precomputes
//   * the plain CSR block (columns localized to [0, |part j|)),
//   * the column-compacted block for the sparsity-aware kernel, and
//   * NnzCols(r, j): exactly the rows of H_j rank r must receive.

#include <span>
#include <vector>

#include "dist/spmm_mode.hpp"
#include "sparse/blocks.hpp"
#include "sparse/sell.hpp"

namespace sagnn {

class DistCsr {
 public:
  /// Build rank `rank`'s state for symmetric matrix `a` split into the
  /// contiguous block rows described by `ranges` (which must tile [0, n)).
  /// `kernels` selects the storage the local SpMM kernels stream
  /// (bitwise-neutral; SELL conversions are built once here).
  DistCsr(const CsrMatrix& a, std::span<const BlockRange> ranges, int rank,
          const KernelConfig& kernels = {});

  int n_blocks() const { return static_cast<int>(blocks_.size()); }
  int rank() const { return rank_; }
  const BlockRange& my_range() const { return my_range_; }
  vid_t local_rows() const { return my_range_.size(); }
  const std::vector<BlockRange>& ranges() const { return ranges_; }

  /// Block A^T_{r,j} with columns localized to block j's range.
  const CsrMatrix& plain_block(int j) const {
    return blocks_[static_cast<std::size_t>(j)];
  }
  /// Column-compacted form of plain_block(j).
  const CompactedBlock& compacted_block(int j) const {
    return compacted_[static_cast<std::size_t>(j)];
  }
  /// NnzCols(r, j): sorted local row indices of H_j this rank reads.
  const std::vector<vid_t>& needed_rows(int j) const {
    return compacted_[static_cast<std::size_t>(j)].cols;
  }
  /// Total H rows needed from OTHER blocks — the rank's sparsity-aware
  /// receive volume in rows.
  std::uint64_t total_needed_rows_remote() const;

  /// Z += plain_block(j) * H through the configured kernel format.
  void block_accumulate(int j, const Matrix& h, Matrix& z) const;
  /// Z += compacted_block(j).matrix * H_packed through the configured
  /// kernel format (the sparsity-aware remapped-index contract of
  /// spmm_compacted_accumulate).
  void compacted_accumulate(int j, const Matrix& h_packed, Matrix& z) const;

 private:
  int rank_ = 0;
  BlockRange my_range_;
  std::vector<BlockRange> ranges_;
  std::vector<CsrMatrix> blocks_;
  std::vector<CompactedBlock> compacted_;
  /// SELL twins of blocks_/compacted_[].matrix; empty on the CSR path.
  std::vector<SellMatrix> block_sell_;
  std::vector<SellMatrix> compacted_sell_;
};

}  // namespace sagnn
