#include "dist/spmm_3d.hpp"

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

namespace {
/// User tag for the within-layer transpose exchange (distinct from the 2D
/// scheme's 2001; must stay below kUserTagLimit).
constexpr long kTransposeTag = 2002;
}  // namespace

CubeGrid CubeGrid::make(int p, int d) {
  SAGNN_REQUIRE(p >= 1, "need at least one rank");
  SAGNN_REQUIRE(d >= 1, "3D depth (the c knob) must be >= 1");
  SAGNN_REQUIRE(p % d == 0, "3D requires the depth c to divide p");
  int q = 1;
  while (q * q < p / d) ++q;
  SAGNN_REQUIRE(q * q == p / d,
                "3D requires p = q^2 * c (stacked square grids)");
  return {p, q, d};
}

DistSpmm3d::DistSpmm3d(Comm& comm, const CsrMatrix& a,
                       std::span<const BlockRange> ranges, int depth,
                       SpmmMode mode, const KernelConfig& kernels)
    : grid_(CubeGrid::make(comm.size(), depth)),
      layer_(grid_.layer(comm.rank())),
      grid_row_(grid_.grid_row(comm.rank())),
      grid_col_(grid_.grid_col(comm.rank())),
      mode_(mode),
      world_(comm),
      row_comm_(comm.split([this](int r) {
        return grid_.layer(r) * grid_.q + grid_.grid_row(r);
      })),
      fiber_comm_(comm.split([this](int r) {
        return grid_.grid_row(r) * grid_.q + grid_.grid_col(r);
      })) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == grid_.q,
                "3D needs one block per grid dimension");
  SAGNN_REQUIRE(a.n_rows() == a.n_cols(), "distributed matrix must be square");
  SAGNN_REQUIRE(ranges.front().begin == 0 && ranges.back().end == a.n_rows(),
                "block ranges must tile [0, n)");
  input_range_ = ranges[static_cast<std::size_t>(grid_col_)];
  output_range_ = ranges[static_cast<std::size_t>(grid_row_)];

  const CsrMatrix row_block = extract_row_block(a, output_range_);
  tile_ = std::move(
      split_block_cols(row_block, ranges)[static_cast<std::size_t>(grid_col_)]);
  compacted_ = compact_columns(tile_);
  if (kernels.format == SpmmFormat::kSell) {
    tile_sell_ = SellMatrix::from_csr(tile_, kernels);
    compacted_sell_ = SellMatrix::from_csr(compacted_.matrix, kernels);
  }
}

Matrix DistSpmm3d::propagate(const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == input_range_.size(),
                "H block must match this rank's input residency");
  const vid_t f = h_local.n_cols();
  const vid_t begin = slice_begin(f, layer_);
  const vid_t end = slice_begin(f, layer_ + 1);
  const vid_t w = end - begin;

  // Local partial on this layer's feature slice. Every member of the
  // layer's grid row shares `w` (same layer), so skipping empty slices
  // below is symmetric across each collective's communicator.
  ThreadCpuTimer timer;
  Matrix z(output_range_.size(), w);
  if (w > 0) {
    const Matrix x = h_local.slice_cols(begin, end);
    if (mode_ == SpmmMode::kSparsityAware) {
      if (compacted_.matrix.nnz() > 0) {
        const Matrix packed = x.gather_rows(compacted_.cols);
        if (compacted_sell_) {
          spmm_accumulate(*compacted_sell_, packed, z);
        } else {
          spmm_compacted_accumulate(compacted_.matrix, packed, z);
        }
      }
    } else {
      if (tile_sell_) {
        spmm_accumulate(*tile_sell_, x, z);
      } else {
        spmm_accumulate(tile_, x, z);
      }
    }
  }
  if (cpu_seconds != nullptr) *cpu_seconds += timer.seconds();

  // Partial-sum all-reduce across the layer's grid row (the 2D scheme's
  // dominant phase, shrunk to the 1/d slice).
  if (grid_.q > 1 && w > 0) {
    allreduce_sum<real_t>(row_comm_, {z.data(), z.size()}, "allreduce");
  }

  // Transpose remap within the layer: Z residency (grid row) back to H
  // residency (grid column), as in 2D.
  Matrix h_slice;
  const int partner = grid_.rank_of(layer_, grid_col_, grid_row_);
  if (partner == world_.rank()) {
    h_slice = std::move(z);
  } else if (w > 0) {
    world_.send<real_t>(partner, kTransposeTag, {z.data(), z.size()},
                        "transpose");
    h_slice = Matrix(input_range_.size(), w);
    world_.recv_into<real_t>(partner, kTransposeTag,
                             {h_slice.data(), h_slice.size()});
  } else {
    h_slice = Matrix(input_range_.size(), 0);
  }

  // Depth all-gather: reassemble the full feature width from the d layers'
  // slices. The fiber communicator's rank IS the layer (split() keeps
  // world-rank order and the layer is the high digit), so slices land at
  // their layer index.
  if (grid_.d == 1) return h_slice;
  auto slices = allgatherv<real_t>(
      fiber_comm_, {h_slice.data(), h_slice.size()}, "depth_allgather");
  Matrix out(input_range_.size(), f);
  for (int l = 0; l < grid_.d; ++l) {
    const vid_t b = slice_begin(f, l);
    const vid_t e = slice_begin(f, l + 1);
    if (e == b) continue;
    out.paste_cols(b, Matrix(input_range_.size(), e - b,
                             std::move(slices[static_cast<std::size_t>(l)])));
  }
  return out;
}

}  // namespace sagnn
