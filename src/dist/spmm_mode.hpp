#pragma once
// Communication mode shared by all distributed SpMM algorithms (paper §4).

namespace sagnn {

enum class SpmmMode {
  kOblivious,      ///< move whole H blocks regardless of sparsity (CAGNET)
  kSparsityAware,  ///< move only the H rows the local blocks actually read
};

inline const char* to_string(SpmmMode mode) {
  return mode == SpmmMode::kOblivious ? "oblivious" : "sparsity-aware";
}

}  // namespace sagnn
