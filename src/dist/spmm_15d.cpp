#include "dist/spmm_15d.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

GridLayout GridLayout::make(int p, int c) {
  SAGNN_REQUIRE(p >= 1, "need at least one rank");
  SAGNN_REQUIRE(c >= 1, "replication factor must be positive");
  SAGNN_REQUIRE(p % (c * c) == 0, "1.5D requires c^2 | P");
  return {p, p / c, c};
}

DistSpmm15d::DistSpmm15d(Comm& comm, const CsrMatrix& a,
                         std::span<const BlockRange> ranges, int c, SpmmMode mode,
                         const KernelConfig& kernels)
    : layout_(GridLayout::make(comm.size(), c)),
      grid_row_(layout_.grid_row(comm.rank())),
      grid_col_(layout_.grid_col(comm.rank())),
      mode_(mode),
      local_(a, ranges, grid_row_, kernels),
      col_comm_(comm.split([this](int r) { return layout_.grid_col(r); })),
      row_comm_(comm.split([this](int r) { return layout_.grid_row(r); })) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == layout_.rows,
                "1.5D needs one block row per grid row");
  if (mode_ != SpmmMode::kSparsityAware) return;

  // Index exchange within the grid column: request the needed rows of every
  // ASSIGNED remote block from its replica in our column.
  std::vector<std::vector<vid_t>> wants(static_cast<std::size_t>(layout_.rows));
  for (int j = 0; j < layout_.rows; ++j) {
    if (j == grid_row_ || !assigned(j)) continue;
    wants[static_cast<std::size_t>(j)] = local_.needed_rows(j);
  }
  requests_ = alltoallv<vid_t>(col_comm_, wants, "index_exchange");
  requests_[static_cast<std::size_t>(grid_row_)].clear();
}

Matrix DistSpmm15d::multiply(const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  if (mode_ == SpmmMode::kSparsityAware) {
    // The bulk-synchronous sparsity-aware multiply IS the single-chunk
    // pipelined schedule (untagged phases, no extra column copies) — one
    // implementation, so the exchange/consume protocol cannot drift.
    return multiply_pipelined(h_local, 1, nullptr, cpu_seconds);
  }

  const vid_t f = h_local.n_cols();
  Matrix z(local_.local_rows(), f);
  // Oblivious: broadcast whole blocks within the grid column; each block
  // is broadcast only inside the columns assigned to it, so the per-rank
  // broadcast volume shrinks ~c-fold versus 1D.
  for (int j = 0; j < layout_.rows; ++j) {
    if (!assigned(j)) continue;
    const vid_t rows = local_.ranges()[static_cast<std::size_t>(j)].size();
    std::vector<real_t> buf;
    if (j == grid_row_) {
      buf.assign(h_local.data(), h_local.data() + h_local.size());
    } else {
      buf.resize(static_cast<std::size_t>(rows) * f);
    }
    bcast<real_t>(col_comm_, j, buf, "bcast");
    ThreadCpuTimer timer;
    const Matrix h_j(rows, f, std::move(buf));
    local_.block_accumulate(j, h_j, z);
    if (cpu_seconds != nullptr) *cpu_seconds += timer.seconds();
  }

  // Combine the replicas' partial sums; afterwards every rank of the grid
  // row holds the identical full Z block.
  if (layout_.s > 1) {
    allreduce_sum<real_t>(row_comm_, {z.data(), z.size()}, "allreduce");
  }
  return z;
}

Matrix DistSpmm15d::multiply_pipelined(const Matrix& h_local, int chunks,
                                       int* stage_counter, double* cpu) {
  SAGNN_REQUIRE(mode_ == SpmmMode::kSparsityAware,
                "pipelined multiply needs the sparsity-aware index exchange");
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  const vid_t f = h_local.n_cols();
  const int k_chunks =
      std::max(1, std::min(chunks, static_cast<int>(std::max<vid_t>(1, f))));
  const bool tagged = stage_counter != nullptr;
  const int stage_base = tagged ? *stage_counter : 0;
  const bool chunked = k_chunks > 1;
  const auto col_begin = [&](int k) {
    return static_cast<vid_t>(static_cast<std::int64_t>(f) * k / k_chunks);
  };

  // Pack one column chunk of the requested rows and POST its exchange
  // within the grid column (isends deposit immediately, the irecvs stay
  // pending until the chunk boundary's wait()). Under a cross-layer
  // schedule every chunk gets its epoch-wide stage id and a disjoint tag
  // window, so stages neither blur in the cost accounting nor cross-match
  // while in flight.
  const auto exchange = [&](int k) {
    const vid_t c0 = col_begin(k);
    const vid_t fc = col_begin(k + 1) - c0;
    ThreadCpuTimer pack_timer;
    std::vector<std::vector<real_t>> send(static_cast<std::size_t>(layout_.rows));
    for (int i = 0; i < layout_.rows; ++i) {
      if (i == grid_row_) continue;
      const auto& rows = requests_[static_cast<std::size_t>(i)];
      auto& buf = send[static_cast<std::size_t>(i)];
      buf.reserve(rows.size() * static_cast<std::size_t>(fc));
      for (vid_t row : rows) {
        buf.insert(buf.end(), h_local.row(row) + c0, h_local.row(row) + c0 + fc);
      }
    }
    if (cpu != nullptr) *cpu += pack_timer.seconds();
    const int stage = stage_base + k;
    return ialltoallv<real_t>(
        col_comm_, send,
        tagged ? TrafficRecorder::stage_phase("alltoall", stage) : "alltoall",
        tagged ? coll_detail::alltoall_stage_tag(stage)
               : coll_detail::kAlltoallTag);
  };

  // Own block: gather the full-width rows once, slice per chunk below
  // (only needed when our own block row is assigned to this replica).
  Matrix own_packed;
  if (assigned(grid_row_) &&
      local_.compacted_block(grid_row_).matrix.nnz() > 0) {
    ThreadCpuTimer gather_timer;
    own_packed = h_local.gather_rows(local_.compacted_block(grid_row_).cols);
    if (cpu != nullptr) *cpu += gather_timer.seconds();
  }

  // Double-buffered (depth-2) software pipeline: chunk k+1's exchange is
  // posted before chunk k is even waited for, so its irecvs are pending —
  // and the peers' eager isends in flight — through both the wait and the
  // local SpMM of chunk k. wait() at the chunk boundary records the
  // measured hidden/blocked split of that window.
  Matrix z(local_.local_rows(), f);
  auto in_flight = exchange(0);
  for (int k = 0; k < k_chunks; ++k) {
    PendingAlltoall<real_t> next;
    if (k + 1 < k_chunks) next = exchange(k + 1);
    auto received = in_flight.wait();
    in_flight = std::move(next);
    const vid_t c0 = col_begin(k);
    const vid_t fc = col_begin(k + 1) - c0;
    ThreadCpuTimer timer;
    // Accumulate into a chunk-wide scratch (pasted back below) when
    // chunked, straight into z when not.
    Matrix z_chunk = chunked ? Matrix(local_.local_rows(), fc) : Matrix();
    Matrix& z_out = chunked ? z_chunk : z;
    for (int j = 0; j < layout_.rows; ++j) {
      if (!assigned(j)) continue;
      const CompactedBlock& block = local_.compacted_block(j);
      if (block.matrix.nnz() == 0) continue;
      Matrix packed_store;
      const Matrix* packed = &packed_store;
      if (j == grid_row_) {
        if (chunked) {
          packed_store = own_packed.slice_cols(c0, c0 + fc);
        } else {
          packed = &own_packed;
        }
      } else {
        // The Matrix ctor validates the flat buffer's size against
        // (rows, cols).
        packed_store =
            Matrix(static_cast<vid_t>(block.cols.size()), fc,
                   std::move(received[static_cast<std::size_t>(j)]));
      }
      local_.compacted_accumulate(j, *packed, z_out);
    }
    if (chunked) z.paste_cols(c0, z_chunk);
    if (cpu != nullptr) *cpu += timer.seconds();
  }

  // Combine the replicas' partial sums over the FULL width in one
  // collective — element-for-element the same ring schedule as multiply(),
  // which is what keeps the math bitwise identical to "1.5d-sparse". Under
  // a cross-layer schedule it occupies its own pipeline stage.
  if (layout_.s > 1) {
    allreduce_sum<real_t>(
        row_comm_, {z.data(), z.size()},
        tagged ? TrafficRecorder::stage_phase("allreduce", stage_base + k_chunks)
               : "allreduce");
  }
  if (tagged) *stage_counter = stage_base + k_chunks + (layout_.s > 1 ? 1 : 0);
  return z;
}

}  // namespace sagnn
