#include "dist/spmm_15d.hpp"

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

GridLayout GridLayout::make(int p, int c) {
  SAGNN_REQUIRE(p >= 1, "need at least one rank");
  SAGNN_REQUIRE(c >= 1, "replication factor must be positive");
  SAGNN_REQUIRE(p % (c * c) == 0, "1.5D requires c^2 | P");
  return {p, p / c, c};
}

DistSpmm15d::DistSpmm15d(Comm& comm, const CsrMatrix& a,
                         std::span<const BlockRange> ranges, int c, SpmmMode mode)
    : layout_(GridLayout::make(comm.size(), c)),
      grid_row_(layout_.grid_row(comm.rank())),
      grid_col_(layout_.grid_col(comm.rank())),
      mode_(mode),
      local_(a, ranges, grid_row_),
      col_comm_(comm.split([this](int r) { return layout_.grid_col(r); })),
      row_comm_(comm.split([this](int r) { return layout_.grid_row(r); })) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == layout_.rows,
                "1.5D needs one block row per grid row");
  if (mode_ != SpmmMode::kSparsityAware) return;

  // Index exchange within the grid column: request the needed rows of every
  // ASSIGNED remote block from its replica in our column.
  std::vector<std::vector<vid_t>> wants(static_cast<std::size_t>(layout_.rows));
  for (int j = 0; j < layout_.rows; ++j) {
    if (j == grid_row_ || !assigned(j)) continue;
    wants[static_cast<std::size_t>(j)] = local_.needed_rows(j);
  }
  requests_ = alltoallv<vid_t>(col_comm_, wants, "index_exchange");
  requests_[static_cast<std::size_t>(grid_row_)].clear();
}

Matrix DistSpmm15d::multiply(const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  const vid_t f = h_local.n_cols();
  Matrix z(local_.local_rows(), f);

  if (mode_ == SpmmMode::kSparsityAware) {
    // Pack rows requested by the other rows of our grid column.
    ThreadCpuTimer pack_timer;
    std::vector<std::vector<real_t>> send(static_cast<std::size_t>(layout_.rows));
    for (int i = 0; i < layout_.rows; ++i) {
      if (i == grid_row_) continue;
      const auto& rows = requests_[static_cast<std::size_t>(i)];
      auto& buf = send[static_cast<std::size_t>(i)];
      buf.reserve(rows.size() * static_cast<std::size_t>(f));
      for (vid_t row : rows) {
        buf.insert(buf.end(), h_local.row(row), h_local.row(row) + f);
      }
    }
    if (cpu_seconds != nullptr) *cpu_seconds += pack_timer.seconds();

    auto received = alltoallv<real_t>(col_comm_, send, "alltoall");

    ThreadCpuTimer timer;
    for (int j = 0; j < layout_.rows; ++j) {
      if (!assigned(j)) continue;
      const CompactedBlock& block = local_.compacted_block(j);
      if (block.matrix.nnz() == 0) continue;
      Matrix packed;
      if (j == grid_row_) {
        packed = h_local.gather_rows(block.cols);
      } else {
        packed = Matrix(static_cast<vid_t>(block.cols.size()), f,
                        std::move(received[static_cast<std::size_t>(j)]));
      }
      spmm_compacted_accumulate(block.matrix, packed, z);
    }
    if (cpu_seconds != nullptr) *cpu_seconds += timer.seconds();
  } else {
    // Oblivious: broadcast whole blocks within the grid column; each block
    // is broadcast only inside the columns assigned to it, so the per-rank
    // broadcast volume shrinks ~c-fold versus 1D.
    for (int j = 0; j < layout_.rows; ++j) {
      if (!assigned(j)) continue;
      const vid_t rows = local_.ranges()[static_cast<std::size_t>(j)].size();
      std::vector<real_t> buf;
      if (j == grid_row_) {
        buf.assign(h_local.data(), h_local.data() + h_local.size());
      } else {
        buf.resize(static_cast<std::size_t>(rows) * f);
      }
      bcast<real_t>(col_comm_, j, buf, "bcast");
      ThreadCpuTimer timer;
      const Matrix h_j(rows, f, std::move(buf));
      spmm_accumulate(local_.plain_block(j), h_j, z);
      if (cpu_seconds != nullptr) *cpu_seconds += timer.seconds();
    }
  }

  // Combine the replicas' partial sums; afterwards every rank of the grid
  // row holds the identical full Z block.
  if (layout_.s > 1) {
    allreduce_sum<real_t>(row_comm_, {z.data(), z.size()}, "allreduce");
  }
  return z;
}

}  // namespace sagnn
