#include "dist/spmm_1d.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

namespace {

/// Flatten a packed row buffer back into an n x f matrix without copying
/// element-by-element.
Matrix matrix_from_flat(vid_t rows, vid_t f, std::vector<real_t> flat) {
  SAGNN_CHECK(flat.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(f));
  return Matrix(rows, f, std::move(flat));
}

}  // namespace

DistSpmm1d::DistSpmm1d(Comm& comm, const CsrMatrix& a,
                       std::span<const BlockRange> ranges, SpmmMode mode,
                       const KernelConfig& kernels)
    : local_(a, ranges, comm.rank(), kernels), mode_(mode) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == comm.size(),
                "1D needs one block row per rank");
  if (mode_ != SpmmMode::kSparsityAware) return;

  // Index exchange: tell each peer which rows of ITS block we read. The
  // replies are the packing lists used by every subsequent multiply.
  std::vector<std::vector<vid_t>> wants(static_cast<std::size_t>(comm.size()));
  for (int j = 0; j < comm.size(); ++j) {
    if (j == comm.rank()) continue;  // own block is read locally
    wants[static_cast<std::size_t>(j)] = local_.needed_rows(j);
  }
  requests_ = alltoallv<vid_t>(comm, wants, "index_exchange");
  requests_[static_cast<std::size_t>(comm.rank())].clear();
}

Matrix DistSpmm1d::multiply(Comm& comm, const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  // The bulk-synchronous sparsity-aware multiply IS the single-chunk
  // pipelined schedule (untagged phase, no extra column copies) — one
  // implementation, so the exchange/consume protocol cannot drift.
  return mode_ == SpmmMode::kSparsityAware
             ? multiply_pipelined(comm, h_local, 1, cpu_seconds)
             : multiply_oblivious(comm, h_local, cpu_seconds);
}

Matrix DistSpmm1d::multiply_oblivious(Comm& comm, const Matrix& h_local,
                                      double* cpu) {
  const vid_t f = h_local.n_cols();
  Matrix z(local_.local_rows(), f);
  for (int root = 0; root < comm.size(); ++root) {
    const vid_t rows = local_.ranges()[static_cast<std::size_t>(root)].size();
    std::vector<real_t> buf;
    if (root == comm.rank()) {
      buf.assign(h_local.data(), h_local.data() + h_local.size());
    } else {
      buf.resize(static_cast<std::size_t>(rows) * f);
    }
    bcast<real_t>(comm, root, buf, "bcast");
    ThreadCpuTimer timer;
    const Matrix h_j = matrix_from_flat(rows, f, std::move(buf));
    local_.block_accumulate(root, h_j, z);
    if (cpu != nullptr) *cpu += timer.seconds();
  }
  return z;
}

Matrix DistSpmm1d::multiply_pipelined(Comm& comm, const Matrix& h_local,
                                      int chunks, double* cpu) {
  SAGNN_REQUIRE(mode_ == SpmmMode::kSparsityAware,
                "pipelined multiply needs the sparsity-aware index exchange");
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  const vid_t f = h_local.n_cols();
  const int p = comm.size();
  const int k_chunks =
      std::max(1, std::min(chunks, static_cast<int>(std::max<vid_t>(1, f))));
  // The single-chunk schedule IS the bulk-synchronous sparsity-aware
  // multiply: untagged phase, base tag, no column slicing or pasting.
  const bool chunked = k_chunks > 1;
  const auto col_begin = [&](int k) {
    return static_cast<vid_t>(static_cast<std::int64_t>(f) * k / k_chunks);
  };

  // Pack one column chunk of the requested rows and POST its exchange:
  // isends deposit immediately, the irecvs stay pending in the returned
  // handle until the chunk boundary's wait(). Every chunk gets its own
  // traffic stage and tag window, so the stages neither blur in the cost
  // accounting nor cross-match when in flight simultaneously.
  const auto exchange = [&](int k) {
    const vid_t c0 = col_begin(k);
    const vid_t fc = col_begin(k + 1) - c0;
    ThreadCpuTimer pack_timer;
    std::vector<std::vector<real_t>> send(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      if (r == comm.rank()) continue;
      const auto& rows = requests_[static_cast<std::size_t>(r)];
      auto& buf = send[static_cast<std::size_t>(r)];
      buf.reserve(rows.size() * static_cast<std::size_t>(fc));
      for (vid_t row : rows) {
        buf.insert(buf.end(), h_local.row(row) + c0, h_local.row(row) + c0 + fc);
      }
    }
    if (cpu != nullptr) *cpu += pack_timer.seconds();
    // Per-stage tag windows shared with the 1.5D pipelined multiply —
    // see coll_detail::alltoall_stage_tag.
    return ialltoallv<real_t>(
        comm, send,
        chunked ? TrafficRecorder::stage_phase("alltoall", k) : "alltoall",
        chunked ? coll_detail::alltoall_stage_tag(k)
                : coll_detail::kAlltoallTag);
  };

  // Own block: gather the full-width rows once, slice per chunk below.
  ThreadCpuTimer gather_timer;
  const Matrix own_packed =
      h_local.gather_rows(local_.compacted_block(comm.rank()).cols);
  if (cpu != nullptr) *cpu += gather_timer.seconds();

  // Double-buffered (depth-2) software pipeline: chunk k+1's exchange is
  // posted before chunk k is even waited for, so its irecvs are pending —
  // and the peers' eager isends in flight — through both the wait and the
  // local SpMM of chunk k. wait() at the chunk boundary records the
  // measured hidden/blocked split of that window.
  Matrix z(local_.local_rows(), f);
  auto in_flight = exchange(0);
  for (int k = 0; k < k_chunks; ++k) {
    PendingAlltoall<real_t> next;
    if (k + 1 < k_chunks) next = exchange(k + 1);
    auto received = in_flight.wait();
    in_flight = std::move(next);
    const vid_t c0 = col_begin(k);
    const vid_t fc = col_begin(k + 1) - c0;
    ThreadCpuTimer timer;
    // Accumulate into a chunk-wide scratch (pasted back below) when
    // chunked, straight into z when not.
    Matrix z_chunk = chunked ? Matrix(local_.local_rows(), fc) : Matrix();
    Matrix& z_out = chunked ? z_chunk : z;
    for (int j = 0; j < p; ++j) {
      const CompactedBlock& block = local_.compacted_block(j);
      if (block.matrix.nnz() == 0) continue;
      Matrix packed_store;
      const Matrix* packed = &packed_store;
      if (j == comm.rank()) {
        if (chunked) {
          packed_store = own_packed.slice_cols(c0, c0 + fc);
        } else {
          packed = &own_packed;
        }
      } else {
        packed_store =
            matrix_from_flat(static_cast<vid_t>(block.cols.size()), fc,
                             std::move(received[static_cast<std::size_t>(j)]));
      }
      local_.compacted_accumulate(j, *packed, z_out);
    }
    if (chunked) z.paste_cols(c0, z_chunk);
    if (cpu != nullptr) *cpu += timer.seconds();
  }
  return z;
}

}  // namespace sagnn
