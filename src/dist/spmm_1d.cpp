#include "dist/spmm_1d.hpp"

#include "common/timer.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

namespace {

/// Flatten a packed row buffer back into an n x f matrix without copying
/// element-by-element.
Matrix matrix_from_flat(vid_t rows, vid_t f, std::vector<real_t> flat) {
  SAGNN_CHECK(flat.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(f));
  return Matrix(rows, f, std::move(flat));
}

}  // namespace

DistSpmm1d::DistSpmm1d(Comm& comm, const CsrMatrix& a,
                       std::span<const BlockRange> ranges, SpmmMode mode)
    : local_(a, ranges, comm.rank()), mode_(mode) {
  SAGNN_REQUIRE(static_cast<int>(ranges.size()) == comm.size(),
                "1D needs one block row per rank");
  if (mode_ != SpmmMode::kSparsityAware) return;

  // Index exchange: tell each peer which rows of ITS block we read. The
  // replies are the packing lists used by every subsequent multiply.
  std::vector<std::vector<vid_t>> wants(static_cast<std::size_t>(comm.size()));
  for (int j = 0; j < comm.size(); ++j) {
    if (j == comm.rank()) continue;  // own block is read locally
    wants[static_cast<std::size_t>(j)] = local_.needed_rows(j);
  }
  requests_ = alltoallv<vid_t>(comm, wants, "index_exchange");
  requests_[static_cast<std::size_t>(comm.rank())].clear();
}

Matrix DistSpmm1d::multiply(Comm& comm, const Matrix& h_local, double* cpu_seconds) {
  SAGNN_REQUIRE(h_local.n_rows() == local_.local_rows(),
                "H block must match this rank's row range");
  return mode_ == SpmmMode::kSparsityAware
             ? multiply_sparsity_aware(comm, h_local, cpu_seconds)
             : multiply_oblivious(comm, h_local, cpu_seconds);
}

Matrix DistSpmm1d::multiply_oblivious(Comm& comm, const Matrix& h_local,
                                      double* cpu) {
  const vid_t f = h_local.n_cols();
  Matrix z(local_.local_rows(), f);
  for (int root = 0; root < comm.size(); ++root) {
    const vid_t rows = local_.ranges()[static_cast<std::size_t>(root)].size();
    std::vector<real_t> buf;
    if (root == comm.rank()) {
      buf.assign(h_local.data(), h_local.data() + h_local.size());
    } else {
      buf.resize(static_cast<std::size_t>(rows) * f);
    }
    bcast<real_t>(comm, root, buf, "bcast");
    ThreadCpuTimer timer;
    const Matrix h_j = matrix_from_flat(rows, f, std::move(buf));
    spmm_accumulate(local_.plain_block(root), h_j, z);
    if (cpu != nullptr) *cpu += timer.seconds();
  }
  return z;
}

Matrix DistSpmm1d::multiply_sparsity_aware(Comm& comm, const Matrix& h_local,
                                           double* cpu) {
  const vid_t f = h_local.n_cols();
  const int p = comm.size();

  // Pack the rows each peer requested from our block.
  ThreadCpuTimer pack_timer;
  std::vector<std::vector<real_t>> send(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    if (r == comm.rank()) continue;
    const auto& rows = requests_[static_cast<std::size_t>(r)];
    auto& buf = send[static_cast<std::size_t>(r)];
    buf.reserve(rows.size() * static_cast<std::size_t>(f));
    for (vid_t row : rows) {
      buf.insert(buf.end(), h_local.row(row), h_local.row(row) + f);
    }
  }
  if (cpu != nullptr) *cpu += pack_timer.seconds();

  auto received = alltoallv<real_t>(comm, send, "alltoall");

  // Local SpMM on the compacted blocks: block j's columns index straight
  // into the packed buffer of its needed rows.
  ThreadCpuTimer timer;
  Matrix z(local_.local_rows(), f);
  for (int j = 0; j < p; ++j) {
    const CompactedBlock& block = local_.compacted_block(j);
    if (block.matrix.nnz() == 0) continue;
    Matrix packed;
    if (j == comm.rank()) {
      packed = h_local.gather_rows(block.cols);
    } else {
      packed = matrix_from_flat(static_cast<vid_t>(block.cols.size()), f,
                                std::move(received[static_cast<std::size_t>(j)]));
    }
    spmm_compacted_accumulate(block.matrix, packed, z);
  }
  if (cpu != nullptr) *cpu += timer.seconds();
  return z;
}

}  // namespace sagnn
