#pragma once
// Distributed 1D SpMM over the simulated cluster (paper §4.1, Algorithm 1).
//
// Every rank owns one contiguous block row of Â (as a DistCsr) and the
// matching block of H. One multiply computes Z_local = Â_local · H with
//   * kOblivious:      every H block is broadcast in turn (CAGNET), so the
//                      moved bytes depend only on the matrix SHAPE;
//   * kSparsityAware:  ranks exchange exactly the H rows the remote blocks
//                      read (NnzCols), via one all-to-all per multiply. The
//                      needed-row index lists are exchanged ONCE at
//                      construction (phase "index_exchange", which the
//                      trainer excludes from per-epoch cost).

#include "dense/matrix.hpp"
#include "dist/dist_csr.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {

class DistSpmm1d {
 public:
  /// Collective: all ranks of `comm` must construct together (the
  /// sparsity-aware mode exchanges request lists here). `kernels` selects
  /// the local SpMM storage format (bitwise-neutral; see sparse/sell.hpp).
  DistSpmm1d(Comm& comm, const CsrMatrix& a, std::span<const BlockRange> ranges,
             SpmmMode mode, const KernelConfig& kernels = {});

  const BlockRange& my_range() const { return local_.my_range(); }
  const DistCsr& local() const { return local_; }
  SpmmMode mode() const { return mode_; }

  /// One collective multiply: returns Â_local · H given this rank's H block.
  /// Local compute seconds are accumulated into *cpu_seconds when non-null.
  Matrix multiply(Comm& comm, const Matrix& h_local,
                  double* cpu_seconds = nullptr);

  /// Chunked-pipelining multiply (sparsity-aware mode only): H is split
  /// into `chunks` column chunks and chunk k+1's exchange is POSTED
  /// (ialltoallv: eager isends + pending irecvs) before chunk k is waited
  /// for and computed — a genuine double-buffered (depth-2) pipeline, not
  /// just a modeled one. Stage k's traffic is recorded under phase
  /// "alltoall#k" and its wait() records the measured hidden/blocked
  /// wall-clock split (see EpochCost::measured_overlap_fraction() next to
  /// the modeled total_pipelined()). Numerically identical to multiply():
  /// each output element accumulates its neighbors in the same order,
  /// columns are independent. `chunks` = 1 is exactly the bulk-synchronous
  /// sparsity-aware multiply (untagged "alltoall" phase) — multiply()
  /// delegates here.
  Matrix multiply_pipelined(Comm& comm, const Matrix& h_local, int chunks,
                            double* cpu_seconds = nullptr);

 private:
  Matrix multiply_oblivious(Comm& comm, const Matrix& h_local, double* cpu);

  DistCsr local_;
  SpmmMode mode_;
  /// requests_[r]: local row indices of MY H block that rank r reads
  /// (sparsity-aware only; requests_[me] is served without communication).
  std::vector<std::vector<vid_t>> requests_;
};

}  // namespace sagnn
