#include "dist/outer_product.hpp"

#include "dense/gemm.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {

Matrix distributed_gram(Comm& comm, const Matrix& a_local, const Matrix& b_local) {
  SAGNN_REQUIRE(a_local.n_rows() == b_local.n_rows(),
                "local blocks must have matching row counts");
  Matrix y = gemm_at_b(a_local, b_local);
  allreduce_sum<real_t>(comm, {y.data(), y.size()}, "allreduce");
  return y;
}

}  // namespace sagnn
