#pragma once
// Communication-avoiding 3D SpMM: d stacked q x q 2D grids split the
// FEATURE dimension (P = q^2 * d). Layer l runs the 2D scheme of
// dist/spmm_2d.hpp on feature columns [f*l/d, f*(l+1)/d): rank (l, i, j)
// owns tile Â_{ij} and the H block j, multiplies its tile against its
// layer's column slice, all-reduces the partial across the layer's grid
// row, transposes back to H residency within the layer, and finally
// all-gathers the d slices across the depth fiber (the d ranks sharing
// (i, j)) so every rank again holds the full-width block — which is what
// the next GCN layer consumes. d = 1 degenerates exactly to the 2D scheme.
//
// Communication per propagate, against 2D at the same q: the dense
// partial-sum all-reduce and the transpose shrink by d (they move a 1/d
// feature slice), at the price of a depth all-gather moving (d-1)/d of the
// full width — the classic CA trade (more memory/ranks for less reduced
// volume). For GNN-shaped f (narrow features) the latency of the extra
// fiber ring dominates quickly; the planner quantifies exactly where.

#include "dense/matrix.hpp"
#include "dist/dist_csr.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {

/// q x q x d process grid, rank = layer * q^2 + grid_row * q + grid_col.
struct CubeGrid {
  int p = 1;
  int q = 1;
  int d = 1;

  /// Throws unless p == q^2 * d for integer q.
  static CubeGrid make(int p, int d);

  int layer(int rank) const { return rank / (q * q); }
  int grid_row(int rank) const { return (rank / q) % q; }
  int grid_col(int rank) const { return rank % q; }
  int rank_of(int layer, int row, int col) const {
    return layer * q * q + row * q + col;
  }
};

class DistSpmm3d {
 public:
  /// Collective over `comm`; `ranges` must have exactly q entries.
  /// `kernels` selects the local SpMM storage format (bitwise-neutral).
  DistSpmm3d(Comm& comm, const CsrMatrix& a, std::span<const BlockRange> ranges,
             int depth, SpmmMode mode, const KernelConfig& kernels = {});

  const CubeGrid& grid() const { return grid_; }
  SpmmMode mode() const { return mode_; }
  /// Residency of this rank's H block (block id = grid column).
  const BlockRange& input_range() const { return input_range_; }
  /// Residency of this rank's Z partial before the transpose (block id =
  /// grid row).
  const BlockRange& output_range() const { return output_range_; }
  /// Ranks of this layer's grid row: pairwise-distinct H blocks, the
  /// communicator for loss/weight-gradient reductions.
  Comm& row_comm() { return row_comm_; }

  /// First feature column of `layer`'s slice at width f (balanced
  /// contiguous split; layer d's boundary is f).
  vid_t slice_begin(vid_t f, int layer) const {
    return static_cast<vid_t>(static_cast<std::uint64_t>(f) *
                              static_cast<std::uint64_t>(layer) /
                              static_cast<std::uint64_t>(grid_.d));
  }

  /// One full aggregation Â·H, input and output in H residency at full
  /// feature width: slice, partial tile SpMM, layer-row all-reduce,
  /// transpose remap, depth all-gather.
  Matrix propagate(const Matrix& h_local, double* cpu_seconds = nullptr);

 private:
  CubeGrid grid_;
  int layer_ = 0;
  int grid_row_ = 0;
  int grid_col_ = 0;
  SpmmMode mode_;
  BlockRange input_range_;
  BlockRange output_range_;
  CsrMatrix tile_;           ///< Â_{ij}, columns localized to block j
  CompactedBlock compacted_; ///< column-compacted tile (sparsity-aware kernel)
  /// SELL twins of tile_/compacted_.matrix (sparse/sell.hpp); disengaged on
  /// the default CSR path.
  std::optional<SellMatrix> tile_sell_;
  std::optional<SellMatrix> compacted_sell_;
  Comm world_;               ///< copy of the constructing communicator
  Comm row_comm_;            ///< same (layer, grid row); comm rank == grid col
  Comm fiber_comm_;          ///< same (grid row, grid col); comm rank == layer
};

}  // namespace sagnn
