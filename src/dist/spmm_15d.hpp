#pragma once
// Distributed 1.5D SpMM (paper §4.2, Algorithm 2; CAGNET's 1.5D layout).
//
// P ranks form a (P/c) x c grid. Block row i of Â and H is replicated on
// the c ranks of grid row i; the c replicas split the column blocks of the
// row among themselves (replica col takes blocks j with j % c == col),
// compute partial products, and an all-reduce across the grid row restores
// the full Z_i on every replica. Row fetches happen inside each grid
// COLUMN (one replica of every block row), so the per-rank exchange volume
// shrinks with c while the (dense) partial-sum all-reduce grows — the 1.5D
// tradeoff the paper evaluates in Figure 7.
//
//   kOblivious:      whole H blocks broadcast within the grid column.
//   kSparsityAware:  only NnzCols rows exchanged, as in the 1D algorithm.

#include "dense/matrix.hpp"
#include "dist/dist_csr.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {

/// (P/c) x c process grid, rank = grid_row * c + grid_col (row major).
struct GridLayout {
  int p = 1;
  int rows = 1;  ///< number of distinct block rows (P/c)
  int s = 1;     ///< replication factor c (grid width)

  /// Throws unless c >= 1 and c^2 divides p (the 1.5D requirement).
  static GridLayout make(int p, int c);

  int grid_row(int rank) const { return rank / s; }
  int grid_col(int rank) const { return rank % s; }
  int rank_of(int row, int col) const { return row * s + col; }
};

class DistSpmm15d {
 public:
  /// Collective over `comm` (all ranks construct together). `ranges` must
  /// have exactly P/c entries. Subcommunicators are split here and kept by
  /// value, so the object stays usable after the constructing call frame.
  DistSpmm15d(Comm& comm, const CsrMatrix& a, std::span<const BlockRange> ranges,
              int c, SpmmMode mode, const KernelConfig& kernels = {});

  const GridLayout& layout() const { return layout_; }
  const BlockRange& my_range() const { return local_.my_range(); }
  SpmmMode mode() const { return mode_; }
  /// One replica of every block row — the communicator for global
  /// reductions of losses and weight gradients.
  Comm& col_comm() { return col_comm_; }

  /// One collective multiply; every replica returns the full Z block,
  /// bitwise identical across each grid row.
  Matrix multiply(const Matrix& h_local, double* cpu_seconds = nullptr);

  /// Chunked-pipelining multiply (sparsity-aware mode only): H is split
  /// into `chunks` column chunks; the grid-column exchange of chunk k+1 is
  /// POSTED (ialltoallv) before chunk k is waited for and computed, exactly
  /// as DistSpmm1d::multiply_pipelined pipelines the 1D exchange (depth-2
  /// double buffering with measured hidden/blocked wall-clock). The grid-row
  /// partial-sum all-reduce stays one full-width collective AFTER the last
  /// chunk — splitting it per chunk would reorder each element's
  /// cross-replica additions (the ring schedule assigns chunks by buffer
  /// offset) and break bitwise parity with multiply().
  ///
  /// `stage_counter`, when non-null, is the epoch-wide pipeline-stage
  /// cursor of a cross-layer schedule: chunk k's traffic is recorded under
  /// stage *stage_counter + k, the trailing all-reduce under the next
  /// stage, and the counter advances past them — so the first exchange of
  /// the NEXT propagate occupies the pipeline slot right after this one's
  /// last SpMM chunk (cross-layer latency hiding). A null counter records
  /// untagged bulk-synchronous phases; with chunks == 1 that is exactly
  /// multiply(), which delegates here.
  Matrix multiply_pipelined(const Matrix& h_local, int chunks,
                            int* stage_counter, double* cpu_seconds = nullptr);

 private:
  bool assigned(int j) const { return j % layout_.s == grid_col_; }

  GridLayout layout_;
  int grid_row_ = 0;
  int grid_col_ = 0;
  SpmmMode mode_;
  DistCsr local_;
  Comm col_comm_;  ///< same grid column; comm rank == grid row
  Comm row_comm_;  ///< same grid row (the c replicas); comm rank == grid col
  /// requests_[i]: local rows of MY block that grid row i's replica in my
  /// column reads (sparsity-aware only).
  std::vector<std::vector<vid_t>> requests_;
};

}  // namespace sagnn
