#pragma once
// Distributed 2D (SUMMA-style) SpMM (paper §4; CAGNET's 2D variant).
//
// P = q^2 ranks form a q x q grid. Rank (i, j) owns tile Â_{ij} (rows of
// block i, columns of block j) and the H block j (H residency follows the
// grid COLUMN). One multiply computes the local partial Â_{ij} H_j and
// all-reduces it across the grid row, leaving the full Z_i on every rank of
// row i (Z residency follows the grid ROW). remap_for_next() swaps Z back
// to H residency through the transpose partner so multiplies chain, which
// is the GCN layer-to-layer pattern.
//
// The Z all-reduce moves dense blocks whose size is independent of the
// graph's sparsity — the structural reason CAGNET (and the paper) prefer
// 1D/1.5D for GNN training. kSparsityAware here only compacts the local
// working set (the kernel reads packed rows); it cannot shrink the wire
// volume.

#include "dense/matrix.hpp"
#include "dist/dist_csr.hpp"
#include "simcomm/collectives.hpp"

namespace sagnn {

/// q x q process grid, rank = grid_row * q + grid_col.
struct SquareGrid {
  int p = 1;
  int q = 1;

  /// Throws unless p is a perfect square.
  static SquareGrid make(int p);

  int grid_row(int rank) const { return rank / q; }
  int grid_col(int rank) const { return rank % q; }
  int rank_of(int row, int col) const { return row * q + col; }
};

class DistSpmm2d {
 public:
  /// Collective over `comm`; `ranges` must have exactly q entries.
  /// `kernels` selects the local SpMM storage format (bitwise-neutral).
  DistSpmm2d(Comm& comm, const CsrMatrix& a, std::span<const BlockRange> ranges,
             SpmmMode mode, const KernelConfig& kernels = {});

  const SquareGrid& grid() const { return grid_; }
  SpmmMode mode() const { return mode_; }
  /// Residency of this rank's H block (block id = grid column).
  const BlockRange& input_range() const { return input_range_; }
  /// Residency of this rank's Z block after multiply (block id = grid row).
  const BlockRange& output_range() const { return output_range_; }
  /// Ranks of this grid row: they hold pairwise-distinct H blocks, so this
  /// is the communicator for loss/weight-gradient reductions.
  Comm& row_comm() { return row_comm_; }

  /// Z_local = tile * H_local, then all-reduced across the grid row.
  Matrix multiply(const Matrix& h_local, double* cpu_seconds = nullptr);

  /// Swap a Z-resident block back to H residency (exchange with the
  /// transpose partner), enabling the next multiply in a chain.
  Matrix remap_for_next(const Matrix& z_local);

 private:
  SquareGrid grid_;
  int grid_row_ = 0;
  int grid_col_ = 0;
  SpmmMode mode_;
  BlockRange input_range_;
  BlockRange output_range_;
  CsrMatrix tile_;           ///< Â_{ij}, columns localized to block j
  CompactedBlock compacted_; ///< column-compacted tile (sparsity-aware kernel)
  /// SELL twins of tile_/compacted_.matrix (sparse/sell.hpp); disengaged on
  /// the default CSR path.
  std::optional<SellMatrix> tile_sell_;
  std::optional<SellMatrix> compacted_sell_;
  Comm world_;               ///< copy of the constructing communicator
  Comm row_comm_;            ///< same grid row; comm rank == grid col
};

}  // namespace sagnn
