#pragma once
// Distributed weight-gradient outer product (paper §2.1 backward pass):
// the f_in x f_out gradient dW = M^T dZ is the sum of each rank's local
// Gram contribution over its disjoint block rows — a tiny all-reduce
// ("lower-order term" next to the H exchanges).

#include "dense/matrix.hpp"
#include "simcomm/comm.hpp"

namespace sagnn {

/// Y = sum over ranks of a_local^T b_local, identical on every rank
/// (deterministic ring all-reduce). All ranks must pass matrices with the
/// same column counts; row counts may differ (disjoint block rows).
Matrix distributed_gram(Comm& comm, const Matrix& a_local, const Matrix& b_local);

}  // namespace sagnn
