#include "plan/census.hpp"

#include <algorithm>
#include <cmath>

#include "graph/analysis.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner_registry.hpp"

namespace sagnn {

namespace {

/// Probe-to-random halo ratio of one probe (1 when the random model is
/// degenerate, i.e. the graph has no edges).
double rho_of(const PartitionProbe& p) {
  return p.random_halo_rows > 0 ? p.halo_rows / p.random_halo_rows : 1.0;
}

/// Piecewise-linear interpolation of a per-probe quantity in log2 k:
/// exact at the probed k, held constant outside the probed range,
/// `fallback` with no probes at all.
template <typename Field>
double interpolate_log_k(const std::vector<PartitionProbe>& probes, int k,
                         double fallback, Field field) {
  if (probes.empty()) return fallback;
  if (k <= probes.front().k) return field(probes.front());
  if (k >= probes.back().k) return field(probes.back());
  for (std::size_t i = 1; i < probes.size(); ++i) {
    if (k > probes[i].k) continue;
    const double x0 = std::log2(static_cast<double>(probes[i - 1].k));
    const double x1 = std::log2(static_cast<double>(probes[i].k));
    const double t = (std::log2(static_cast<double>(k)) - x0) / (x1 - x0);
    return (1.0 - t) * field(probes[i - 1]) + t * field(probes[i]);
  }
  return field(probes.back());
}

}  // namespace

double GraphCensus::random_expected_halo_rows(int k) const {
  if (k <= 1) return 0;
  const double keep = 1.0 - 1.0 / static_cast<double>(k);
  double halo = 0;
  for (const auto& [degree, count] : degree_counts) {
    halo += static_cast<double>(count) * static_cast<double>(k - 1) *
            (1.0 - std::pow(keep, static_cast<double>(degree)));
  }
  return halo;
}

double GraphCensus::expected_halo_rows(const std::string& partitioner,
                                       int k) const {
  if (k <= 1) return 0;
  const auto it = probes.find(partitioner);
  const double rho =
      it == probes.end()
          ? 1.0
          : interpolate_log_k(it->second, k, 1.0, rho_of);
  return std::max(0.0, rho) * random_expected_halo_rows(k);
}

double GraphCensus::expected_send_imbalance(const std::string& partitioner,
                                            int k) const {
  const auto it = probes.find(partitioner);
  if (it == probes.end()) return 1.0;
  return std::max(1.0, interpolate_log_k(it->second, k, 1.0,
                                         [](const PartitionProbe& p) {
                                           return p.send_imbalance;
                                         }));
}

double GraphCensus::expected_compute_imbalance(const std::string& partitioner,
                                               int k) const {
  const auto it = probes.find(partitioner);
  if (it == probes.end()) return 1.0;
  return std::max(1.0, interpolate_log_k(it->second, k, 1.0,
                                         [](const PartitionProbe& p) {
                                           return p.compute_imbalance;
                                         }));
}

GraphCensus take_census(const Dataset& dataset, const CensusOptions& opts) {
  GraphCensus cs;
  cs.dataset = dataset.name;
  cs.n = dataset.n_vertices();
  cs.nnz = dataset.n_edges();
  cs.f = dataset.n_features();
  cs.n_classes = dataset.n_classes;
  cs.sim_scale = dataset.sim_scale;

  // One pass: the compressed degree multiset (map keeps it sorted) and the
  // distribution moments.
  const auto row_ptr = dataset.adjacency.row_ptr();
  std::map<vid_t, vid_t> counts;
  vid_t max_degree = 0;
  for (vid_t v = 0; v < cs.n; ++v) {
    const vid_t d = static_cast<vid_t>(row_ptr[v + 1] - row_ptr[v]);
    ++counts[d];
    max_degree = std::max(max_degree, d);
  }
  cs.degree_counts.assign(counts.begin(), counts.end());
  cs.avg_degree =
      cs.n > 0 ? static_cast<double>(cs.nnz) / static_cast<double>(cs.n) : 0.0;
  cs.max_degree = static_cast<double>(max_degree);
  cs.degree_skew = cs.avg_degree > 0 ? cs.max_degree / cs.avg_degree : 0.0;
  cs.degree_hist_log2 = degree_histogram_log2(dataset.adjacency);

  // Partition probes: exact volume models at a few small k per family.
  std::vector<std::string> families = opts.partitioners.empty()
                                          ? partitioner_registry().names()
                                          : opts.partitioners;
  std::vector<int> ks;
  for (int k : opts.probe_ks) {
    k = std::min(k, static_cast<int>(cs.n));  // non-empty parts need k <= n
    if (k >= 2) ks.push_back(k);
  }
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

  for (const std::string& family : families) {
    partitioner_registry().require(family);
    const auto partitioner =
        partitioner_registry().create(family, opts.partitioner_options);
    std::vector<PartitionProbe>& out = cs.probes[family];
    for (int k : ks) {
      const Partition partition = partitioner->partition(dataset.adjacency, k);
      const VolumeStats stats =
          compute_volume_stats(dataset.adjacency, partition);
      PartitionProbe probe;
      probe.k = k;
      probe.halo_rows = static_cast<double>(stats.total_rows());
      probe.random_halo_rows = cs.random_expected_halo_rows(k);
      probe.send_imbalance =
          stats.avg_send_rows() > 0
              ? static_cast<double>(stats.max_send_rows()) / stats.avg_send_rows()
              : 1.0;
      probe.compute_imbalance =
          compute_load_imbalance(dataset.adjacency, partition);
      out.push_back(probe);
    }
  }
  return cs;
}

}  // namespace sagnn
