#pragma once
// GraphCensus: cheap one-pass statistics over a dataset, the planner's only
// input (docs/planner.md). A census is everything predict_cost() needs to
// price a candidate configuration without a training run:
//
//   * global counts (n, nnz, f, classes) and the dataset's sim_scale,
//   * degree-distribution moments plus the compressed degree multiset,
//     from which the closed-form RANDOM-partition expected halo
//     E[halo](k) = sum_v (k-1) (1 - (1 - 1/k)^{deg(v)}) follows for any k,
//   * per registered partitioner family, a few cheap partition PROBES at
//     small k recording the exact sparsity-aware volume model
//     (compute_volume_stats) — the probe-to-random halo ratio rho(k) is
//     then interpolated in log k to predict each family's cut fraction at
//     the k values the strategy grid actually needs.
//
// Probes partition the graph (coarse multilevel at worst), which costs far
// less than one epoch of training; everything else is a single pass.

#include <map>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "partition/partition.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// One partition probe: the exact volume model at a small k.
struct PartitionProbe {
  int k = 1;
  double halo_rows = 0;         ///< VolumeStats::total_rows() at this k
  double random_halo_rows = 0;  ///< closed-form E[halo] at this k
  double send_imbalance = 1;    ///< max_send / avg_send (>= 1)
  double compute_imbalance = 1; ///< max part nnz / avg part nnz (>= 1)
};

struct CensusOptions {
  /// Probe part counts (clamped to [2, n], deduplicated). The defaults
  /// bracket the strategy grids of the planner; pass the exact n_blocks
  /// values of a sweep to make the halo predictions exact at those k.
  std::vector<int> probe_ks = {4, 16, 64};
  /// Partitioner families to probe; empty = every registered canonical
  /// name. Unknown names raise UnknownNameError.
  std::vector<std::string> partitioners;
  PartitionerOptions partitioner_options;
};

struct GraphCensus {
  std::string dataset;
  vid_t n = 0;
  eid_t nnz = 0;
  vid_t f = 0;          ///< feature width
  vid_t n_classes = 0;
  double sim_scale = 1.0;

  // Degree-distribution moments (the Table 2 imbalance drivers).
  double avg_degree = 0;
  double max_degree = 0;
  double degree_skew = 0;  ///< max / avg
  std::vector<eid_t> degree_hist_log2;
  /// Compressed degree multiset: (degree, vertex count), ascending degree.
  /// Enables the exact random-halo closed form at ANY k after the pass.
  std::vector<std::pair<vid_t, vid_t>> degree_counts;

  /// Exact volume-model probes per partitioner family (canonical name).
  std::map<std::string, std::vector<PartitionProbe>> probes;

  /// Closed-form expected total halo rows of a uniform RANDOM k-way
  /// partition: sum_v (k-1) (1 - (1 - 1/k)^{deg(v)}). 0 for k <= 1.
  double random_expected_halo_rows(int k) const;

  /// Predicted total halo rows for `partitioner` at part count k: the
  /// probe-to-random ratio rho, interpolated linearly in log2 k between
  /// the bracketing probes (held constant outside the probed range, rho =
  /// 1 with no probes), times the random closed form at k.
  double expected_halo_rows(const std::string& partitioner, int k) const;
  /// Predicted max/avg send-volume ratio (>= 1), interpolated the same way.
  double expected_send_imbalance(const std::string& partitioner, int k) const;
  /// Predicted max/avg per-part nnz ratio (>= 1), interpolated the same way.
  double expected_compute_imbalance(const std::string& partitioner, int k) const;
};

/// Take the census: one pass for the degree statistics plus the partition
/// probes. Deterministic (thread-count invariant, like the partitioners).
GraphCensus take_census(const Dataset& dataset, const CensusOptions& opts = {});

}  // namespace sagnn
