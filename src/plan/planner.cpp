#include "plan/planner.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "partition/partitioner_registry.hpp"

namespace sagnn {

const PlanCandidate& Plan::best() const {
  SAGNN_REQUIRE(!ranked.empty(), "empty plan: no candidate was plannable");
  return ranked.front();
}

namespace {

/// The caller's list when given (validated fail-fast), else every
/// registered canonical name.
template <typename Registry>
std::vector<std::string> resolve_names(const Registry& registry,
                                       const std::vector<std::string>& wanted) {
  if (wanted.empty()) return registry.names();
  for (const std::string& name : wanted) registry.require(name);
  return wanted;
}

}  // namespace

Plan plan_strategies(const GraphCensus& census, const PlannerOptions& opts) {
  const std::vector<std::string> strategies =
      resolve_names(strategy_registry(), opts.strategies);
  const std::vector<std::string> partitioners =
      resolve_names(partitioner_registry(), opts.partitioners);

  CostModel model = opts.cost_model;
  if (model.volume_scale == 1.0) model.volume_scale = census.sim_scale;

  const std::vector<int> ps =
      opts.pinned_p > 0 ? std::vector<int>{opts.pinned_p} : opts.p_grid;
  const std::vector<int> cs =
      opts.pinned_c >= 1 ? std::vector<int>{opts.pinned_c} : opts.c_grid;
  const std::vector<int> ks = opts.pinned_chunks >= 1
                                  ? std::vector<int>{opts.pinned_chunks}
                                  : opts.chunk_grid;

  Plan plan;
  std::set<std::string> skipped;
  // A knob the strategy ignores (c for 1D, chunks for bulk-synchronous
  // schemes) yields byte-identical predictions; keep only the smallest
  // knob value so the ranking is free of phantom variants.
  std::set<std::tuple<std::string, std::string, int, double>> seen;

  for (const std::string& strategy_name : strategies) {
    const auto strategy = strategy_registry().create(strategy_name);
    for (const std::string& partitioner : partitioners) {
      for (int p : ps) {
        for (int c : cs) {
          for (int k : ks) {
            PredictInput in;
            in.census = &census;
            in.p = p;
            in.c = c;
            in.chunks = k;
            in.partitioner = partitioner;
            in.model = model;
            in.dims = opts.dims;
            in.host_madds_per_second = opts.host_madds_per_second;
            const PredictedCost predicted = strategy->predict_cost(in);
            if (!predicted.valid) {
              skipped.insert(strategy_name + " p=" + std::to_string(p) +
                             " c=" + std::to_string(c) + ": " + predicted.note);
              continue;
            }
            const double seconds = predicted.seconds();
            if (!seen.emplace(strategy_name, partitioner, p, seconds).second) {
              continue;
            }
            PlanCandidate cand;
            cand.strategy = strategy_name;
            cand.partitioner = partitioner;
            cand.p = p;
            cand.c = c;
            cand.chunks = k;
            cand.depth = predicted.depth;
            cand.predicted = predicted.cost;
            cand.seconds = seconds;
            plan.ranked.push_back(std::move(cand));
          }
        }
      }
    }
  }

  std::sort(plan.ranked.begin(), plan.ranked.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              return std::tie(a.seconds, a.strategy, a.partitioner, a.p, a.c,
                              a.chunks) < std::tie(b.seconds, b.strategy,
                                                   b.partitioner, b.p, b.c,
                                                   b.chunks);
            });
  plan.skipped.assign(skipped.begin(), skipped.end());
  return plan;
}

}  // namespace sagnn
