#pragma once
// The strategy planner: census-driven autotuning over the strategy and
// partitioner registries (docs/planner.md). plan_strategies() enumerates a
// candidate grid — (strategy, partitioner, p, c, chunks) — prices every
// candidate through DistributionStrategy::predict_cost(), and returns the
// full ranking, cheapest first. No training runs, no measurement: a plan
// is pure arithmetic over a GraphCensus, so it is deterministic across
// machines and thread counts. TrainerBuilder::autotune() is the one-call
// surface (builder knobs pin dimensions and shrink the search);
// bench_planner quantifies the planner's regret against exhaustive truth
// sweeps and CI gates it at 10%.

#include <string>
#include <vector>

#include "gnn/strategy.hpp"
#include "plan/census.hpp"

namespace sagnn {

struct PlannerOptions {
  /// Probe configuration for take_census() when the caller lets
  /// autotune() take the census itself.
  CensusOptions census;
  /// Strategy names to consider; empty = every registered strategy.
  /// Unknown names raise UnknownNameError (fail fast, like the builder).
  std::vector<std::string> strategies;
  /// Partitioner names to consider; empty = every registered partitioner.
  std::vector<std::string> partitioners;

  /// Candidate rank counts, searched when pinned_p == 0.
  std::vector<int> p_grid = {8, 64, 256};
  int pinned_p = 0;  ///< > 0: plan exactly this p
  /// Candidate replication/depth factors, searched when pinned_c == 0.
  std::vector<int> c_grid = {1, 2, 4};
  int pinned_c = 0;  ///< >= 1: plan exactly this c
  /// Candidate pipeline-chunk counts, searched when pinned_chunks == 0.
  std::vector<int> chunk_grid = {1, 2, 4, 8, 16};
  int pinned_chunks = 0;  ///< >= 1: plan exactly this K

  /// Priced through this model; volume_scale == 1.0 is auto-calibrated to
  /// the census's sim_scale, mirroring ExperimentSpec.
  CostModel cost_model;
  /// GCN layer dims; empty = the default architecture {f, 16, 16, classes}.
  std::vector<vid_t> dims;
  /// Host throughput for the nominal compute term (see PredictInput).
  double host_madds_per_second = 2.5e8;
};

/// One priced candidate configuration.
struct PlanCandidate {
  std::string strategy;
  std::string partitioner;
  int p = 0;
  int c = 1;
  int chunks = 1;
  int depth = 1;        ///< modeled pipeline depth
  EpochCost predicted;  ///< closed-form buckets (no measurement)
  double seconds = 0;   ///< predicted.total_pipelined(depth) — the rank key
};

/// The ranked plan: every valid candidate, cheapest first. Ties rank
/// deterministically by (strategy, partitioner, p, c, chunks).
struct Plan {
  std::vector<PlanCandidate> ranked;
  /// Unique diagnostics for declined candidates (invalid geometry,
  /// strategies without a predictor).
  std::vector<std::string> skipped;

  /// The winning candidate. Throws Error if nothing was plannable.
  const PlanCandidate& best() const;
};

/// Enumerate, price, and rank the candidate grid. Equal-cost duplicates
/// (a knob the strategy ignores, e.g. c for the 1D family) collapse onto
/// the smallest knob value.
Plan plan_strategies(const GraphCensus& census, const PlannerOptions& opts);

}  // namespace sagnn
