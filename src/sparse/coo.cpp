#include "sparse/coo.hpp"

#include <algorithm>

namespace sagnn {

void CooMatrix::add(vid_t row, vid_t col, real_t val) {
  SAGNN_REQUIRE(row >= 0 && row < n_rows_, "COO row index out of range");
  SAGNN_REQUIRE(col >= 0 && col < n_cols_, "COO col index out of range");
  entries_.push_back({row, col, val});
}

void CooMatrix::coalesce() {
  std::sort(entries_.begin(), entries_.end(), [](const CooEntry& a, const CooEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].val += entries_[i].val;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

void CooMatrix::symmetrize() {
  SAGNN_REQUIRE(n_rows_ == n_cols_, "symmetrize requires a square matrix");
  const std::size_t original = entries_.size();
  entries_.reserve(2 * original);
  for (std::size_t i = 0; i < original; ++i) {
    const CooEntry e = entries_[i];
    if (e.row != e.col) entries_.push_back({e.col, e.row, e.val});
  }
  coalesce();
}

void CooMatrix::drop_diagonal() {
  std::erase_if(entries_, [](const CooEntry& e) { return e.row == e.col; });
}

void CooMatrix::add_identity(real_t val) {
  SAGNN_REQUIRE(n_rows_ == n_cols_, "add_identity requires a square matrix");
  entries_.reserve(entries_.size() + static_cast<std::size_t>(n_rows_));
  for (vid_t i = 0; i < n_rows_; ++i) entries_.push_back({i, i, val});
  coalesce();
}

bool CooMatrix::is_symmetric() const {
  if (n_rows_ != n_cols_) return false;
  auto sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const CooEntry& a, const CooEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  auto find = [&](vid_t r, vid_t c) -> const CooEntry* {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), std::pair{r, c},
                               [](const CooEntry& e, const std::pair<vid_t, vid_t>& key) {
                                 return e.row != key.first ? e.row < key.first
                                                           : e.col < key.second;
                               });
    if (it == sorted.end() || it->row != r || it->col != c) return nullptr;
    return &*it;
  };
  for (const auto& e : sorted) {
    const CooEntry* t = find(e.col, e.row);
    if (t == nullptr || t->val != e.val) return false;
  }
  return true;
}

}  // namespace sagnn
