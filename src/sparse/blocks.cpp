#include "sparse/blocks.hpp"

#include <algorithm>

namespace sagnn {

std::vector<BlockRange> uniform_block_ranges(vid_t n, int p) {
  SAGNN_REQUIRE(p > 0, "need at least one part");
  std::vector<BlockRange> ranges(static_cast<std::size_t>(p));
  const vid_t base = n / p;
  const vid_t extra = n % p;
  vid_t begin = 0;
  for (int i = 0; i < p; ++i) {
    const vid_t sz = base + (i < extra ? 1 : 0);
    ranges[static_cast<std::size_t>(i)] = {begin, begin + sz};
    begin += sz;
  }
  return ranges;
}

std::vector<BlockRange> ranges_from_sizes(std::span<const vid_t> sizes) {
  std::vector<BlockRange> ranges(sizes.size());
  vid_t begin = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    SAGNN_REQUIRE(sizes[i] >= 0, "negative part size");
    ranges[i] = {begin, begin + sizes[i]};
    begin += sizes[i];
  }
  return ranges;
}

CsrMatrix extract_row_block(const CsrMatrix& a, BlockRange range) {
  SAGNN_REQUIRE(range.begin >= 0 && range.begin <= range.end && range.end <= a.n_rows(),
                "row block range out of bounds");
  const vid_t rows = range.size();
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  const eid_t base = a.row_ptr()[range.begin];
  for (vid_t r = 0; r < rows; ++r) {
    row_ptr[r + 1] = a.row_ptr()[range.begin + r + 1] - base;
  }
  std::vector<vid_t> col_idx(a.col_idx().begin() + base,
                             a.col_idx().begin() + a.row_ptr()[range.end]);
  std::vector<real_t> vals(a.vals().begin() + base,
                           a.vals().begin() + a.row_ptr()[range.end]);
  return CsrMatrix(rows, a.n_cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

std::vector<CsrMatrix> split_block_cols(const CsrMatrix& a,
                                        std::span<const BlockRange> ranges) {
  SAGNN_REQUIRE(!ranges.empty(), "need at least one column range");
  SAGNN_REQUIRE(ranges.back().end == a.n_cols(),
                "column ranges must cover the full column space");
  const int p = static_cast<int>(ranges.size());

  // Map each global column to its block id (column ranges are contiguous, so
  // a linear scan per row with binary search is enough; use upper_bound).
  std::vector<vid_t> block_begin(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) block_begin[i] = ranges[i].begin;

  // Count nnz per (row, block), then fill.
  std::vector<std::vector<eid_t>> ptr(static_cast<std::size_t>(p));
  for (auto& v : ptr) v.assign(static_cast<std::size_t>(a.n_rows()) + 1, 0);
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    for (vid_t c : a.row_cols(r)) {
      auto it = std::upper_bound(block_begin.begin(), block_begin.end(), c);
      const auto b = static_cast<std::size_t>(it - block_begin.begin() - 1);
      ++ptr[b][static_cast<std::size_t>(r) + 1];
    }
  }
  std::vector<std::vector<vid_t>> cols(static_cast<std::size_t>(p));
  std::vector<std::vector<real_t>> vals(static_cast<std::size_t>(p));
  for (int b = 0; b < p; ++b) {
    auto& pb = ptr[static_cast<std::size_t>(b)];
    for (vid_t r = 0; r < a.n_rows(); ++r) pb[r + 1] += pb[r];
    cols[static_cast<std::size_t>(b)].resize(static_cast<std::size_t>(pb.back()));
    vals[static_cast<std::size_t>(b)].resize(static_cast<std::size_t>(pb.back()));
  }
  std::vector<std::vector<eid_t>> cursor = ptr;
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    for (std::size_t k = 0; k < rc.size(); ++k) {
      auto it = std::upper_bound(block_begin.begin(), block_begin.end(), rc[k]);
      const auto b = static_cast<std::size_t>(it - block_begin.begin() - 1);
      const eid_t dst = cursor[b][static_cast<std::size_t>(r)]++;
      cols[b][static_cast<std::size_t>(dst)] = rc[k] - ranges[b].begin;
      vals[b][static_cast<std::size_t>(dst)] = rv[k];
    }
  }
  std::vector<CsrMatrix> out;
  out.reserve(static_cast<std::size_t>(p));
  for (int b = 0; b < p; ++b) {
    out.emplace_back(a.n_rows(), ranges[static_cast<std::size_t>(b)].size(),
                     std::move(ptr[static_cast<std::size_t>(b)]),
                     std::move(cols[static_cast<std::size_t>(b)]),
                     std::move(vals[static_cast<std::size_t>(b)]));
  }
  return out;
}

std::vector<vid_t> nnz_cols(const CsrMatrix& a) {
  std::vector<bool> present(static_cast<std::size_t>(a.n_cols()), false);
  for (vid_t c : a.col_idx()) present[static_cast<std::size_t>(c)] = true;
  std::vector<vid_t> out;
  for (vid_t c = 0; c < a.n_cols(); ++c) {
    if (present[static_cast<std::size_t>(c)]) out.push_back(c);
  }
  return out;
}

CompactedBlock compact_columns(const CsrMatrix& a) {
  CompactedBlock out;
  out.cols = nnz_cols(a);
  std::vector<vid_t> remap(static_cast<std::size_t>(a.n_cols()), -1);
  for (std::size_t i = 0; i < out.cols.size(); ++i) {
    remap[static_cast<std::size_t>(out.cols[i])] = static_cast<vid_t>(i);
  }
  std::vector<eid_t> row_ptr(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<vid_t> col_idx(a.col_idx().size());
  for (std::size_t k = 0; k < col_idx.size(); ++k) {
    col_idx[k] = remap[static_cast<std::size_t>(a.col_idx()[k])];
  }
  std::vector<real_t> vals(a.vals().begin(), a.vals().end());
  out.matrix = CsrMatrix(a.n_rows(), static_cast<vid_t>(out.cols.size()),
                         std::move(row_ptr), std::move(col_idx), std::move(vals));
  return out;
}

}  // namespace sagnn
