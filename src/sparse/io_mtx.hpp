#pragma once
// Matrix Market (.mtx) I/O so users can run the library on real datasets
// (Reddit/Amazon/... exported from SuiteSparse or OGB) instead of the
// bundled synthetic analogues.

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// Parse a MatrixMarket coordinate stream. Supports `general` and
/// `symmetric` patterns, `real`/`integer`/`pattern` fields. Symmetric
/// inputs are expanded to full storage. 1-based indices are converted.
CooMatrix read_matrix_market(std::istream& in);
CooMatrix read_matrix_market_file(const std::string& path);

/// Write coordinate `general real` format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

}  // namespace sagnn
