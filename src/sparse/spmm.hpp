#pragma once
// Sparse-matrix × tall-skinny-dense-matrix multiplication kernels.
//
// This is the workhorse of full-graph GCN training (paper §2.1). The local
// kernel stands in for cuSPARSE csrmm2: Z += A * H where A is CSR
// (n_rows x n_cols) and H is row-major dense (n_cols x f).
//
// spmm_accumulate runs over nnz-balanced row blocks on the shared thread
// pool (common/parallel.hpp). Every output row is owned by exactly one
// block and accumulated in the same nonzero order as the reference kernel,
// so the result is bitwise identical to spmm_accumulate_reference at every
// thread count (and serial inside simulated cluster ranks, where the
// nesting guard disables fan-out).

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// Z += A * H. Z must be (A.n_rows x H.n_cols); H must have A.n_cols rows.
void spmm_accumulate(const CsrMatrix& a, const Matrix& h, Matrix& z);

/// The original single-loop serial kernel. Kept as the ground truth the
/// blocked kernel is tested bitwise against.
void spmm_accumulate_reference(const CsrMatrix& a, const Matrix& h, Matrix& z);

/// Z = A * H (convenience; allocates).
Matrix spmm(const CsrMatrix& a, const Matrix& h);

/// Z += A * H where the column indices of `a` address rows of a *compacted*
/// buffer `h_packed` (used by the sparsity-aware algorithms, which receive
/// only the needed rows of H and remap indices once at setup).
/// Identical kernel; documented separately because callers rely on the
/// remapped-index contract.
inline void spmm_compacted_accumulate(const CsrMatrix& a, const Matrix& h_packed,
                                      Matrix& z) {
  spmm_accumulate(a, h_packed, z);
}

}  // namespace sagnn
