#pragma once
// Block decomposition of sparse matrices for the 1D / 1.5D distributions,
// plus the sparsity-aware column analysis:
//
//   * block-row extraction (each rank owns n/P contiguous rows of A^T)
//   * block-column splitting of a block row (A^T_{i1} ... A^T_{iP})
//   * NnzCols(i,j): the nonzero column indices of block A^T_{ij} — exactly
//     the rows of H_j that rank i must receive (paper §4.1, Fig. 1)
//   * column compaction: remap a block's columns onto 0..k-1 so the local
//     SpMM can run directly on the packed received buffer.

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace sagnn {

/// Half-open row/column range [begin, end).
struct BlockRange {
  vid_t begin = 0;
  vid_t end = 0;
  vid_t size() const { return end - begin; }
};

/// Split n items into p near-equal contiguous ranges (first n%p ranges get
/// one extra item) — the plain block distribution.
std::vector<BlockRange> uniform_block_ranges(vid_t n, int p);

/// Ranges from explicit part sizes (partitioner output; variable widths).
std::vector<BlockRange> ranges_from_sizes(std::span<const vid_t> sizes);

/// Extract rows [range.begin, range.end) as a standalone CSR with the same
/// column space.
CsrMatrix extract_row_block(const CsrMatrix& a, BlockRange range);

/// Split `a` by column into one CSR per range; column indices are localized
/// to each block (global col c -> c - range.begin).
std::vector<CsrMatrix> split_block_cols(const CsrMatrix& a,
                                        std::span<const BlockRange> ranges);

/// Sorted unique column indices that contain at least one nonzero.
/// For block A^T_{ij} this is NnzCols(i,j).
std::vector<vid_t> nnz_cols(const CsrMatrix& a);

/// A block whose column indices were compacted onto the nonzero columns:
/// `matrix.col_idx[k]` indexes into `cols` (i.e. into the packed buffer of
/// received H rows).
struct CompactedBlock {
  CsrMatrix matrix;        // n_rows x |cols|
  std::vector<vid_t> cols; // original column ids, sorted ascending
};

/// Compact the columns of `a` (drop empty columns, remap indices).
CompactedBlock compact_columns(const CsrMatrix& a);

}  // namespace sagnn
