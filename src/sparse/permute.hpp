#pragma once
// Symmetric permutation of sparse matrices and row reordering of dense
// matrices. After graph partitioning, the adjacency matrix is relabeled so
// that each part owns a contiguous block of rows (paper §6.3.1); these
// helpers implement that relabeling.

#include <span>
#include <vector>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// Returns inverse of a permutation: inv[perm[i]] == i.
std::vector<vid_t> invert_permutation(std::span<const vid_t> perm);

/// True iff `perm` is a permutation of 0..n-1.
bool is_permutation(std::span<const vid_t> perm);

/// Symmetric permutation: B[perm[i], perm[j]] = A[i, j]. Requires square A
/// and a valid permutation of size A.n_rows().
CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const vid_t> perm);

/// Row permutation of a dense matrix: B[perm[i], :] = A[i, :].
Matrix permute_rows(const Matrix& a, std::span<const vid_t> perm);

/// Labels permutation: out[perm[i]] = labels[i].
std::vector<vid_t> permute_labels(std::span<const vid_t> labels,
                                  std::span<const vid_t> perm);

}  // namespace sagnn
