#include "sparse/io_mtx.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace sagnn {

namespace {
std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  SAGNN_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty MatrixMarket stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SAGNN_REQUIRE(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  SAGNN_REQUIRE(lower(object) == "matrix" && lower(format) == "coordinate",
                "only coordinate matrices are supported");
  field = lower(field);
  symmetry = lower(symmetry);
  SAGNN_REQUIRE(field == "real" || field == "integer" || field == "pattern",
                "unsupported MatrixMarket field: " + field);
  SAGNN_REQUIRE(symmetry == "general" || symmetry == "symmetric",
                "unsupported MatrixMarket symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  dims >> rows >> cols >> nnz;
  SAGNN_REQUIRE(rows > 0 && cols > 0 && nnz >= 0, "bad MatrixMarket size line");

  CooMatrix coo(static_cast<vid_t>(rows), static_cast<vid_t>(cols));
  for (long long k = 0; k < nnz; ++k) {
    SAGNN_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "MatrixMarket stream truncated");
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    es >> r >> c;
    if (field != "pattern") es >> v;
    coo.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1),
            static_cast<real_t>(v));
    if (symmetry == "symmetric" && r != c) {
      coo.add(static_cast<vid_t>(c - 1), static_cast<vid_t>(r - 1),
              static_cast<real_t>(v));
    }
  }
  coo.coalesce();
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SAGNN_REQUIRE(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  SAGNN_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, a);
}

}  // namespace sagnn
