#include "sparse/io_mtx.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace sagnn {

namespace {
std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

[[noreturn]] void fail_at(long long line_no, const std::string& what) {
  throw Error("MatrixMarket line " + std::to_string(line_no) + ": " + what);
}

/// True when the line holds only whitespace after position `pos` (used to
/// reject trailing junk on the size and entry lines).
bool only_whitespace_left(std::istringstream& s) {
  std::string rest;
  s >> rest;
  return rest.empty();
}
}  // namespace

CooMatrix read_matrix_market(std::istream& in) {
  std::string line;
  long long line_no = 0;
  SAGNN_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty MatrixMarket stream");
  ++line_no;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") fail_at(line_no, "missing MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    fail_at(line_no, "only coordinate matrices are supported (got object '" +
                         object + "', format '" + format + "')");
  }
  field = lower(field);
  symmetry = lower(symmetry);
  if (field != "real" && field != "integer" && field != "pattern") {
    fail_at(line_no, "unsupported MatrixMarket field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    fail_at(line_no, "unsupported MatrixMarket symmetry: " + symmetry);
  }

  // Skip comments; the first non-comment line is the size line.
  bool have_size_line = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  if (!have_size_line) {
    fail_at(line_no + 1, "stream ended before the size line");
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz) || !only_whitespace_left(dims)) {
    fail_at(line_no, "malformed size line '" + line +
                         "' (expected '<rows> <cols> <nnz>')");
  }
  if (rows <= 0 || cols <= 0 || nnz < 0) {
    fail_at(line_no, "non-positive dimensions in size line '" + line + "'");
  }

  CooMatrix coo(static_cast<vid_t>(rows), static_cast<vid_t>(cols));
  for (long long k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) {
      fail_at(line_no + 1, "stream truncated: expected " + std::to_string(nnz) +
                               " entries, got " + std::to_string(k));
    }
    ++line_no;
    std::istringstream es(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(es >> r >> c)) {
      fail_at(line_no, "malformed entry '" + line + "'");
    }
    if (field != "pattern") {
      if (!(es >> v)) {
        fail_at(line_no, "entry '" + line + "' is missing its " + field +
                             " value");
      }
    }
    if (!only_whitespace_left(es)) {
      fail_at(line_no, "trailing junk on entry '" + line + "'");
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      fail_at(line_no, "index (" + std::to_string(r) + ", " + std::to_string(c) +
                           ") outside the declared " + std::to_string(rows) +
                           " x " + std::to_string(cols) + " shape");
    }
    coo.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1),
            static_cast<real_t>(v));
    if (symmetry == "symmetric" && r != c) {
      coo.add(static_cast<vid_t>(c - 1), static_cast<vid_t>(r - 1),
              static_cast<real_t>(v));
    }
  }
  coo.coalesce();
  return coo;
}

CooMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SAGNN_REQUIRE(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.n_rows() << ' ' << a.n_cols() << ' ' << a.nnz() << '\n';
  // max_digits10 digits make the decimal round-trip exact: every float
  // value read back equals the one written, bit for bit.
  const auto default_precision = out.precision();
  out.precision(std::numeric_limits<real_t>::max_digits10);
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
  out.precision(default_precision);
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  SAGNN_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, a);
}

}  // namespace sagnn
