#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

namespace sagnn {

CsrMatrix::CsrMatrix(vid_t n_rows, vid_t n_cols, std::vector<eid_t> row_ptr,
                     std::vector<vid_t> col_idx, std::vector<real_t> vals)
    : n_rows_(n_rows),
      n_cols_(n_cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  validate();
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  CooMatrix sorted = coo;
  sorted.coalesce();
  const vid_t n = sorted.n_rows();
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> col_idx;
  std::vector<real_t> vals;
  col_idx.reserve(sorted.entries().size());
  vals.reserve(sorted.entries().size());
  for (const auto& e : sorted.entries()) {
    ++row_ptr[static_cast<std::size_t>(e.row) + 1];
    col_idx.push_back(e.col);
    vals.push_back(e.val);
  }
  for (vid_t r = 0; r < n; ++r) row_ptr[r + 1] += row_ptr[r];
  return CsrMatrix(n, sorted.n_cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

CsrMatrix CsrMatrix::zeros(vid_t n_rows, vid_t n_cols) {
  CsrMatrix m;
  m.n_rows_ = n_rows;
  m.n_cols_ = n_cols;
  m.row_ptr_.assign(static_cast<std::size_t>(n_rows) + 1, 0);
  return m;
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<eid_t> t_ptr(static_cast<std::size_t>(n_cols_) + 1, 0);
  for (vid_t c : col_idx_) ++t_ptr[static_cast<std::size_t>(c) + 1];
  for (vid_t c = 0; c < n_cols_; ++c) t_ptr[c + 1] += t_ptr[c];

  std::vector<vid_t> t_col(col_idx_.size());
  std::vector<real_t> t_val(vals_.size());
  std::vector<eid_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (vid_t r = 0; r < n_rows_; ++r) {
    for (eid_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const eid_t dst = cursor[col_idx_[k]]++;
      t_col[dst] = r;
      t_val[dst] = vals_[k];
    }
  }
  // Rows of the transpose are filled in increasing source-row order, so the
  // column indices are already sorted — the counting sort preserves every
  // CSR invariant by construction, and the unchecked path skips re-walking
  // all nnz in validate().
  return CsrMatrix(UncheckedTag{}, n_cols_, n_rows_, std::move(t_ptr),
                   std::move(t_col), std::move(t_val));
}

real_t CsrMatrix::at(vid_t r, vid_t c) const {
  SAGNN_REQUIRE(r >= 0 && r < n_rows_ && c >= 0 && c < n_cols_,
                "CsrMatrix::at index out of range");
  auto cols = row_cols(r);
  auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return real_t{0};
  return vals_[row_ptr_[r] + (it - cols.begin())];
}

void CsrMatrix::normalize_symmetric() {
  SAGNN_REQUIRE(n_rows_ == n_cols_, "normalize_symmetric requires square matrix");
  std::vector<real_t> inv_sqrt_deg(static_cast<std::size_t>(n_rows_), real_t{0});
  for (vid_t r = 0; r < n_rows_; ++r) {
    real_t deg = 0;
    for (eid_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) deg += vals_[k];
    inv_sqrt_deg[r] = deg > 0 ? real_t{1} / std::sqrt(deg) : real_t{0};
  }
  for (vid_t r = 0; r < n_rows_; ++r) {
    for (eid_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      vals_[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[col_idx_[k]];
    }
  }
}

void CsrMatrix::validate() const {
  SAGNN_REQUIRE(n_rows_ >= 0 && n_cols_ >= 0, "negative dimensions");
  SAGNN_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(n_rows_) + 1,
                "row_ptr size mismatch");
  SAGNN_REQUIRE(row_ptr_.front() == 0, "row_ptr[0] must be 0");
  SAGNN_REQUIRE(row_ptr_.back() == static_cast<eid_t>(col_idx_.size()),
                "row_ptr back must equal nnz");
  SAGNN_REQUIRE(col_idx_.size() == vals_.size(), "col_idx/vals size mismatch");
  for (vid_t r = 0; r < n_rows_; ++r) {
    SAGNN_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr must be non-decreasing");
    for (eid_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      SAGNN_REQUIRE(col_idx_[k] >= 0 && col_idx_[k] < n_cols_,
                    "column index out of range");
      if (k > row_ptr_[r]) {
        SAGNN_REQUIRE(col_idx_[k - 1] < col_idx_[k],
                      "column indices must be strictly increasing within a row");
      }
    }
  }
}

}  // namespace sagnn
