#pragma once
// SELL-C-sigma sparse format and the KernelConfig knob that selects it.
//
// SELL-C-sigma (Kreutzer et al., sliced ELLPACK with row sorting) stores
// the matrix in chunks of C consecutive slots. Within a sorting window of
// sigma slots, rows are stably reordered by descending nonzero count, so
// the rows sharing a chunk have similar lengths and the per-chunk padding
// (each chunk is allocated at the width of its longest row) stays small.
// Storage inside a chunk is column-major: entry slice e of all lanes is
// contiguous, and a slot walks its row at stride `lanes`.
//
// Bitwise contract: the SpMM kernel over a SellMatrix accumulates each
// output row's nonzeros in the same ascending-column order as the CSR
// reference kernel, and padding entries are never touched arithmetically
// (per-slot lengths bound the loop; no `0 * x` that could flip a -0.0).
// The permutation maps slots to original rows bijectively, so parallel
// chunk blocks own disjoint output rows. Result: bitwise identical to
// spmm_accumulate_reference on the source CsrMatrix at every thread count
// (tests/test_sell_format.cpp sweeps this).
//
// The format is selected per-trainer via KernelConfig (TrainConfig::kernels
// -> TrainerBuilder::kernels() -> StrategyContext::kernels); the default
// stays plain CSR, which is bitwise identical anyway — the knob only
// changes which bytes the kernel streams.

#include <optional>
#include <vector>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// Which storage the local SpMM kernels stream.
enum class SpmmFormat {
  kCsr,   ///< plain CSR (default; the format everything else shares)
  kSell,  ///< SELL-C-sigma built once per operand from the CSR
};

/// Kernel selection knob, carried by TrainConfig/ExperimentSpec and plumbed
/// to every local SpMM call site. Runtime-only: deliberately NOT serialized
/// into checkpoints (same doctrine as auto_checkpoint/fault_plan — the
/// format never changes results, so a resumed run re-arms it explicitly via
/// TrainerBuilder::kernels()).
struct KernelConfig {
  SpmmFormat format = SpmmFormat::kCsr;
  int sell_chunk = 32;    ///< C: rows per chunk
  int sell_sigma = 4096;  ///< sigma: sorting-window size in rows (<=0: whole matrix)
};

/// SELL-C-sigma matrix, built once from a CsrMatrix.
class SellMatrix {
 public:
  SellMatrix() = default;

  /// Convert. `chunk` >= 1; `sigma` <= 0 sorts the whole matrix as one
  /// window, otherwise it is rounded up to a multiple of `chunk` so no
  /// chunk straddles two sorting windows.
  static SellMatrix from_csr(const CsrMatrix& a, int chunk, int sigma);
  static SellMatrix from_csr(const CsrMatrix& a, const KernelConfig& config) {
    return from_csr(a, config.sell_chunk, config.sell_sigma);
  }

  /// Exact inverse of from_csr: reconstructs the source matrix (bitwise;
  /// round-trip tested). O(nnz + n).
  CsrMatrix to_csr() const;

  vid_t n_rows() const { return n_rows_; }
  vid_t n_cols() const { return n_cols_; }
  eid_t nnz() const { return nnz_; }
  int chunk() const { return c_; }
  int sigma() const { return sigma_; }

  /// Allocated entries including padding (>= nnz()).
  eid_t stored() const { return chunk_off_.empty() ? 0 : chunk_off_.back(); }
  /// Fraction of allocated entries that are padding, in [0, 1).
  double padding_ratio() const {
    return stored() == 0 ? 0.0
                         : static_cast<double>(stored() - nnz_) /
                               static_cast<double>(stored());
  }

  vid_t n_chunks() const { return static_cast<vid_t>(chunk_off_.size()) - 1; }
  /// Original row held by slot s (bijection over [0, n_rows)).
  std::span<const vid_t> perm() const { return perm_; }
  /// Real (unpadded) length of slot s.
  std::span<const vid_t> slot_len() const { return len_; }
  /// Storage offset of chunk k (n_chunks()+1 entries; deltas are the
  /// per-chunk allocated sizes, the weights the parallel kernel balances).
  std::span<const eid_t> chunk_off() const { return chunk_off_; }
  std::span<const vid_t> col_idx() const { return col_idx_; }
  std::span<const real_t> vals() const { return vals_; }

 private:
  vid_t n_rows_ = 0;
  vid_t n_cols_ = 0;
  int c_ = 0;
  int sigma_ = 0;
  eid_t nnz_ = 0;
  std::vector<vid_t> perm_;       // slot -> original row
  std::vector<vid_t> len_;        // slot -> real row length
  std::vector<eid_t> chunk_off_;  // chunk -> storage offset
  std::vector<vid_t> col_idx_;    // column-major per chunk, padded
  std::vector<real_t> vals_;

  friend class SellMatrixTestPeer;
};

/// Z += A * H over the SELL storage. Bitwise identical to
/// spmm_accumulate_reference on the source CSR at every thread count.
void spmm_accumulate(const SellMatrix& a, const Matrix& h, Matrix& z);

/// A SpMM left operand in whichever format `config` selects: a non-owning
/// view of the CSR plus, when format == kSell, an owned SELL conversion
/// built once at construction. The CsrMatrix must outlive the operand
/// (owners build operands next to their stable CSR members).
class SpmmOperand {
 public:
  SpmmOperand() = default;
  SpmmOperand(const CsrMatrix& csr, const KernelConfig& config);

  const CsrMatrix& csr() const { return *csr_; }
  SpmmFormat format() const {
    return sell_ ? SpmmFormat::kSell : SpmmFormat::kCsr;
  }
  /// The SELL conversion, or nullptr on the CSR path.
  const SellMatrix* sell() const { return sell_ ? &*sell_ : nullptr; }

  /// Z += A * H via the selected format. Bitwise identical across formats.
  void accumulate(const Matrix& h, Matrix& z) const;

 private:
  const CsrMatrix* csr_ = nullptr;
  std::optional<SellMatrix> sell_;
};

/// Z = A * H (convenience; allocates).
Matrix spmm(const SpmmOperand& a, const Matrix& h);

}  // namespace sagnn
