#include "sparse/permute.hpp"

#include <algorithm>
#include <numeric>

namespace sagnn {

std::vector<vid_t> invert_permutation(std::span<const vid_t> perm) {
  std::vector<vid_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<vid_t>(i);
  }
  return inv;
}

bool is_permutation(std::span<const vid_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (vid_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, std::span<const vid_t> perm) {
  SAGNN_REQUIRE(a.n_rows() == a.n_cols(), "symmetric permutation requires square matrix");
  SAGNN_REQUIRE(perm.size() == static_cast<std::size_t>(a.n_rows()),
                "permutation size mismatch");
  const vid_t n = a.n_rows();
  const auto inv = invert_permutation(perm);

  // Row r of the result is old row inv[r]; remap and sort its columns.
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t r = 0; r < n; ++r) {
    row_ptr[r + 1] = row_ptr[r] + a.row_nnz(inv[static_cast<std::size_t>(r)]);
  }
  std::vector<vid_t> col_idx(static_cast<std::size_t>(a.nnz()));
  std::vector<real_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<std::pair<vid_t, real_t>> scratch;
  for (vid_t r = 0; r < n; ++r) {
    const vid_t old_r = inv[static_cast<std::size_t>(r)];
    const auto cols = a.row_cols(old_r);
    const auto vs = a.row_vals(old_r);
    scratch.clear();
    scratch.reserve(cols.size());
    for (std::size_t k = 0; k < cols.size(); ++k) {
      scratch.emplace_back(perm[static_cast<std::size_t>(cols[k])], vs[k]);
    }
    std::sort(scratch.begin(), scratch.end());
    eid_t out = row_ptr[r];
    for (const auto& [c, v] : scratch) {
      col_idx[static_cast<std::size_t>(out)] = c;
      vals[static_cast<std::size_t>(out)] = v;
      ++out;
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx), std::move(vals));
}

Matrix permute_rows(const Matrix& a, std::span<const vid_t> perm) {
  SAGNN_REQUIRE(perm.size() == static_cast<std::size_t>(a.n_rows()),
                "permutation size mismatch");
  Matrix out(a.n_rows(), a.n_cols());
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.n_cols(), out.row(perm[static_cast<std::size_t>(r)]));
  }
  return out;
}

std::vector<vid_t> permute_labels(std::span<const vid_t> labels,
                                  std::span<const vid_t> perm) {
  SAGNN_REQUIRE(labels.size() == perm.size(), "labels/permutation size mismatch");
  std::vector<vid_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[static_cast<std::size_t>(perm[i])] = labels[i];
  }
  return out;
}

}  // namespace sagnn
