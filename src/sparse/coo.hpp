#pragma once
// Coordinate-format sparse matrix: the assembly format.
//
// Graph generators emit COO triples; CSR (the compute format) is built from
// a COO via CsrMatrix::from_coo. COO supports duplicate coalescing,
// symmetrization and self-loop manipulation — the preprocessing steps GCN
// training applies to a raw adjacency matrix.

#include <vector>

#include "common/types.hpp"

namespace sagnn {

struct CooEntry {
  vid_t row;
  vid_t col;
  real_t val;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(vid_t n_rows, vid_t n_cols) : n_rows_(n_rows), n_cols_(n_cols) {
    SAGNN_REQUIRE(n_rows >= 0 && n_cols >= 0, "matrix dimensions must be non-negative");
  }

  vid_t n_rows() const { return n_rows_; }
  vid_t n_cols() const { return n_cols_; }
  eid_t nnz() const { return static_cast<eid_t>(entries_.size()); }

  const std::vector<CooEntry>& entries() const { return entries_; }
  std::vector<CooEntry>& entries() { return entries_; }

  /// Append one entry; bounds-checked.
  void add(vid_t row, vid_t col, real_t val);

  /// Sort by (row, col) and sum duplicates in place.
  void coalesce();

  /// Make the pattern symmetric: for every (i,j,v) ensure (j,i,v) exists.
  /// Requires a square matrix. Duplicates are resolved by a later coalesce().
  void symmetrize();

  /// Remove all diagonal entries.
  void drop_diagonal();

  /// Add the identity: A + I (GCN's self-loop augmentation). Coalesce first
  /// if diagonal entries may already exist.
  void add_identity(real_t val = real_t{1});

  /// True if for every (i,j) there is a matching (j,i) with equal value.
  /// Intended for tests; O(nnz log nnz).
  bool is_symmetric() const;

 private:
  vid_t n_rows_ = 0;
  vid_t n_cols_ = 0;
  std::vector<CooEntry> entries_;
};

}  // namespace sagnn
