#pragma once
// Sparse matrix-vector products. SpMV is the classical target of the
// partitioning literature the paper builds on (§1: partitioners usually
// amortize over many SpMV iterations of a sparse solver); it is provided
// both for completeness and for tests that check the f=1 degenerate case of
// the SpMM machinery against an independent implementation.

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace sagnn {

/// y = A * x.
std::vector<real_t> spmv(const CsrMatrix& a, std::span<const real_t> x);

/// y += A * x into a caller-provided buffer.
void spmv_accumulate(const CsrMatrix& a, std::span<const real_t> x,
                     std::span<real_t> y);

/// y = A^T * x without materializing the transpose (scatter formulation).
std::vector<real_t> spmv_transposed(const CsrMatrix& a, std::span<const real_t> x);

}  // namespace sagnn
