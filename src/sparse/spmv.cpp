#include "sparse/spmv.hpp"

namespace sagnn {

void spmv_accumulate(const CsrMatrix& a, std::span<const real_t> x,
                     std::span<real_t> y) {
  SAGNN_REQUIRE(x.size() == static_cast<std::size_t>(a.n_cols()),
                "SpMV: x size must equal column count");
  SAGNN_REQUIRE(y.size() == static_cast<std::size_t>(a.n_rows()),
                "SpMV: y size must equal row count");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    real_t acc = 0;
    for (eid_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += vals[k] * x[static_cast<std::size_t>(col_idx[k])];
    }
    y[static_cast<std::size_t>(r)] += acc;
  }
}

std::vector<real_t> spmv(const CsrMatrix& a, std::span<const real_t> x) {
  std::vector<real_t> y(static_cast<std::size_t>(a.n_rows()), real_t{0});
  spmv_accumulate(a, x, y);
  return y;
}

std::vector<real_t> spmv_transposed(const CsrMatrix& a,
                                    std::span<const real_t> x) {
  SAGNN_REQUIRE(x.size() == static_cast<std::size_t>(a.n_rows()),
                "SpMV^T: x size must equal row count");
  std::vector<real_t> y(static_cast<std::size_t>(a.n_cols()), real_t{0});
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const real_t xr = x[static_cast<std::size_t>(r)];
    if (xr == real_t{0}) continue;
    for (eid_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx[k])] += vals[k] * xr;
    }
  }
  return y;
}

}  // namespace sagnn
