#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/parallel.hpp"
#include "common/width_dispatch.hpp"
#include "sparse/spmm.hpp"

namespace sagnn {

SellMatrix SellMatrix::from_csr(const CsrMatrix& a, int chunk, int sigma) {
  SAGNN_REQUIRE(chunk >= 1, "SELL: chunk must be >= 1");
  SellMatrix s;
  s.n_rows_ = a.n_rows();
  s.n_cols_ = a.n_cols();
  s.c_ = chunk;
  s.nnz_ = a.nnz();
  const vid_t n = a.n_rows();
  // Effective sorting window: whole matrix when sigma <= 0, else rounded up
  // to a chunk multiple so every chunk lies inside one window.
  const vid_t window =
      sigma <= 0 ? std::max<vid_t>(n, chunk)
                 : static_cast<vid_t>(ceil_div(sigma, chunk)) * chunk;
  s.sigma_ = static_cast<int>(window);

  s.perm_.resize(static_cast<std::size_t>(n));
  std::iota(s.perm_.begin(), s.perm_.end(), vid_t{0});
  for (vid_t w = 0; w < n; w += window) {
    const vid_t w_end = std::min<vid_t>(w + window, n);
    // Stable: equal-degree rows keep ascending original order, so the
    // layout (and thus to_csr and the kernel's memory walk) is a pure
    // function of the matrix — no comparator ties decided by libc.
    std::stable_sort(s.perm_.begin() + w, s.perm_.begin() + w_end,
                     [&](vid_t x, vid_t y) { return a.row_nnz(x) > a.row_nnz(y); });
  }

  s.len_.resize(static_cast<std::size_t>(n));
  for (vid_t slot = 0; slot < n; ++slot) {
    s.len_[static_cast<std::size_t>(slot)] =
        static_cast<vid_t>(a.row_nnz(s.perm_[static_cast<std::size_t>(slot)]));
  }

  const vid_t n_chunks = static_cast<vid_t>(ceil_div(n, chunk));
  s.chunk_off_.assign(static_cast<std::size_t>(n_chunks) + 1, 0);
  for (vid_t k = 0; k < n_chunks; ++k) {
    const vid_t base = k * chunk;
    const vid_t lanes = std::min<vid_t>(chunk, n - base);
    vid_t width = 0;
    for (vid_t lane = 0; lane < lanes; ++lane) {
      width = std::max(width, s.len_[static_cast<std::size_t>(base + lane)]);
    }
    s.chunk_off_[static_cast<std::size_t>(k) + 1] =
        s.chunk_off_[static_cast<std::size_t>(k)] +
        static_cast<eid_t>(width) * lanes;
  }

  // Padding entries stay (col 0, val 0); the kernel never reads them (the
  // per-slot length bounds the loop), so their contents are cosmetic.
  s.col_idx_.assign(static_cast<std::size_t>(s.stored()), 0);
  s.vals_.assign(static_cast<std::size_t>(s.stored()), real_t{0});
  for (vid_t k = 0; k < n_chunks; ++k) {
    const vid_t base = k * chunk;
    const vid_t lanes = std::min<vid_t>(chunk, n - base);
    const eid_t off = s.chunk_off_[static_cast<std::size_t>(k)];
    for (vid_t lane = 0; lane < lanes; ++lane) {
      const vid_t slot = base + lane;
      const auto cols = a.row_cols(s.perm_[static_cast<std::size_t>(slot)]);
      const auto vals = a.row_vals(s.perm_[static_cast<std::size_t>(slot)]);
      for (vid_t e = 0; e < s.len_[static_cast<std::size_t>(slot)]; ++e) {
        const auto idx = static_cast<std::size_t>(
            off + static_cast<eid_t>(e) * lanes + lane);
        s.col_idx_[idx] = cols[static_cast<std::size_t>(e)];
        s.vals_[idx] = vals[static_cast<std::size_t>(e)];
      }
    }
  }
  return s;
}

CsrMatrix SellMatrix::to_csr() const {
  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n_rows_) + 1, 0);
  for (vid_t slot = 0; slot < n_rows_; ++slot) {
    row_ptr[static_cast<std::size_t>(perm_[static_cast<std::size_t>(slot)]) + 1] =
        len_[static_cast<std::size_t>(slot)];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(n_rows_); ++r) {
    row_ptr[r + 1] += row_ptr[r];
  }
  std::vector<vid_t> col_idx(static_cast<std::size_t>(nnz_));
  std::vector<real_t> vals(static_cast<std::size_t>(nnz_));
  const vid_t n_chunks = this->n_chunks();
  for (vid_t k = 0; k < n_chunks; ++k) {
    const vid_t base = k * c_;
    const vid_t lanes = std::min<vid_t>(c_, n_rows_ - base);
    const eid_t off = chunk_off_[static_cast<std::size_t>(k)];
    for (vid_t lane = 0; lane < lanes; ++lane) {
      const vid_t slot = base + lane;
      const auto dst =
          static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(
              perm_[static_cast<std::size_t>(slot)])]);
      for (vid_t e = 0; e < len_[static_cast<std::size_t>(slot)]; ++e) {
        const auto idx = static_cast<std::size_t>(
            off + static_cast<eid_t>(e) * lanes + lane);
        col_idx[dst + static_cast<std::size_t>(e)] = col_idx_[idx];
        vals[dst + static_cast<std::size_t>(e)] = vals_[idx];
      }
    }
  }
  return {n_rows_, n_cols_, std::move(row_ptr), std::move(col_idx),
          std::move(vals)};
}

namespace {

/// Chunks [chunk_begin, chunk_end) of Z += A * H over SELL storage. Slots
/// walk their rows in the same ascending-column order as the CSR kernel;
/// the padded tail (e >= len) is never read.
template <int F>
struct SellChunkKernel {
  static void run(const SellMatrix& a, const Matrix& h, Matrix& z,
                  vid_t chunk_begin, vid_t chunk_end) {
    const vid_t f = F == kDynamicWidth ? h.n_cols() : F;
    const auto perm = a.perm();
    const auto len = a.slot_len();
    const auto off = a.chunk_off();
    const auto col_idx = a.col_idx();
    const auto vals = a.vals();
    const vid_t c = a.chunk(), n = a.n_rows();
    for (vid_t k = chunk_begin; k < chunk_end; ++k) {
      const vid_t base = k * c;
      const vid_t lanes = std::min<vid_t>(c, n - base);
      const eid_t o = off[k];
      for (vid_t lane = 0; lane < lanes; ++lane) {
        const vid_t slot = base + lane;
        real_t* zr = z.row(perm[slot]);
        const vid_t m = len[slot];
        for (vid_t e = 0; e < m; ++e) {
          const auto idx =
              static_cast<std::size_t>(o + static_cast<eid_t>(e) * lanes + lane);
          const real_t v = vals[idx];
          const real_t* hr = h.row(col_idx[idx]);
          for (vid_t j = 0; j < f; ++j) zr[j] += v * hr[j];
        }
      }
    }
  }
};

}  // namespace

void spmm_accumulate(const SellMatrix& a, const Matrix& h, Matrix& z) {
  SAGNN_REQUIRE(h.n_rows() == a.n_cols(), "SpMM: H row count must equal A col count");
  SAGNN_REQUIRE(z.n_rows() == a.n_rows() && z.n_cols() == h.n_cols(),
                "SpMM: Z shape must be (A rows x H cols)");
  const auto rows_fn = select_by_width<SellChunkKernel>(h.n_cols());
  const vid_t n_chunks = a.n_chunks();
  if (in_serial_region()) {
    rows_fn(a, h, z, 0, n_chunks);
    return;
  }
  const std::int64_t n_blocks = std::min<std::int64_t>(
      n_chunks, static_cast<std::int64_t>(parallel_threads()) * 4);
  if (n_blocks <= 1) {
    rows_fn(a, h, z, 0, n_chunks);
    return;
  }
  // Same nnz-balancing as the CSR kernel, over chunks: block b owns the
  // chunks whose cumulative allocated-entry count falls in its share.
  // Chunks own disjoint slots and the permutation is a bijection, so
  // blocks write disjoint output rows — bitwise at any thread count.
  const auto off = a.chunk_off();
  const double per_block =
      static_cast<double>(a.stored()) / static_cast<double>(n_blocks);
  std::vector<vid_t> bounds(static_cast<std::size_t>(n_blocks) + 1, 0);
  bounds.back() = n_chunks;
  for (std::int64_t b = 1; b < n_blocks; ++b) {
    const auto target = static_cast<eid_t>(per_block * static_cast<double>(b));
    const auto it = std::lower_bound(off.begin(), off.end(), target);
    bounds[static_cast<std::size_t>(b)] = static_cast<vid_t>(
        std::min<std::ptrdiff_t>(it - off.begin(), n_chunks));
  }
  parallel_for(0, n_blocks, 1, [&](std::int64_t bb, std::int64_t be) {
    for (std::int64_t b = bb; b < be; ++b) {
      rows_fn(a, h, z, bounds[static_cast<std::size_t>(b)],
              bounds[static_cast<std::size_t>(b) + 1]);
    }
  });
}

SpmmOperand::SpmmOperand(const CsrMatrix& csr, const KernelConfig& config)
    : csr_(&csr) {
  if (config.format == SpmmFormat::kSell) {
    sell_.emplace(SellMatrix::from_csr(csr, config));
  }
}

void SpmmOperand::accumulate(const Matrix& h, Matrix& z) const {
  SAGNN_REQUIRE(csr_ != nullptr, "SpmmOperand: accumulate on empty operand");
  if (sell_) {
    spmm_accumulate(*sell_, h, z);
  } else {
    spmm_accumulate(*csr_, h, z);
  }
}

Matrix spmm(const SpmmOperand& a, const Matrix& h) {
  Matrix z(a.csr().n_rows(), h.n_cols());
  a.accumulate(h, z);
  return z;
}

}  // namespace sagnn
