#pragma once
// Compressed Sparse Row matrix: the compute format for all SpMM kernels.
//
// Invariants (checked by validate(), asserted by constructors):
//   * row_ptr has n_rows+1 entries, row_ptr[0] == 0, non-decreasing
//   * col_idx[k] in [0, n_cols) for all k
//   * within each row, column indices are strictly increasing

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/coo.hpp"

namespace sagnn {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Take ownership of prebuilt arrays. Validates invariants.
  CsrMatrix(vid_t n_rows, vid_t n_cols, std::vector<eid_t> row_ptr,
            std::vector<vid_t> col_idx, std::vector<real_t> vals);

  /// Build from a COO. Duplicates are summed.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// n_rows x n_cols all-zero matrix.
  static CsrMatrix zeros(vid_t n_rows, vid_t n_cols);

  vid_t n_rows() const { return n_rows_; }
  vid_t n_cols() const { return n_cols_; }
  eid_t nnz() const { return static_cast<eid_t>(col_idx_.size()); }

  std::span<const eid_t> row_ptr() const { return row_ptr_; }
  std::span<const vid_t> col_idx() const { return col_idx_; }
  std::span<const real_t> vals() const { return vals_; }
  std::span<real_t> vals_mut() { return vals_; }

  /// Column indices of row r.
  std::span<const vid_t> row_cols(vid_t r) const {
    return {col_idx_.data() + row_ptr_[r], col_idx_.data() + row_ptr_[r + 1]};
  }
  /// Values of row r.
  std::span<const real_t> row_vals(vid_t r) const {
    return {vals_.data() + row_ptr_[r], vals_.data() + row_ptr_[r + 1]};
  }
  eid_t row_nnz(vid_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Explicit transpose (counting sort by column). O(nnz + n).
  CsrMatrix transpose() const;

  /// Value at (r, c), zero if absent. Binary search within the row.
  real_t at(vid_t r, vid_t c) const;

  /// Scale to the symmetric GCN normalization D^{-1/2} (A) D^{-1/2},
  /// where D is the row-sum degree diagonal of *this*. Requires square.
  void normalize_symmetric();

  /// Check all invariants; throws Error on violation (used by tests and by
  /// deserialization paths).
  void validate() const;

  bool operator==(const CsrMatrix& o) const = default;

 private:
  /// Tag for the unchecked construction path: arrays produced by kernels
  /// that preserve the invariants structurally (e.g. transpose()'s counting
  /// sort) skip the O(nnz) validate() pass. Public constructors and
  /// from_coo always validate.
  struct UncheckedTag {};
  CsrMatrix(UncheckedTag, vid_t n_rows, vid_t n_cols, std::vector<eid_t> row_ptr,
            std::vector<vid_t> col_idx, std::vector<real_t> vals)
      : n_rows_(n_rows),
        n_cols_(n_cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        vals_(std::move(vals)) {}

  vid_t n_rows_ = 0;
  vid_t n_cols_ = 0;
  std::vector<eid_t> row_ptr_{0};
  std::vector<vid_t> col_idx_;
  std::vector<real_t> vals_;
};

}  // namespace sagnn
