#include "sparse/spmm.hpp"

namespace sagnn {

void spmm_accumulate(const CsrMatrix& a, const Matrix& h, Matrix& z) {
  SAGNN_REQUIRE(h.n_rows() == a.n_cols(), "SpMM: H row count must equal A col count");
  SAGNN_REQUIRE(z.n_rows() == a.n_rows() && z.n_cols() == h.n_cols(),
                "SpMM: Z shape must be (A rows x H cols)");
  const vid_t f = h.n_cols();
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    real_t* zr = z.row(r);
    for (eid_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const real_t v = vals[k];
      const real_t* hr = h.row(col_idx[k]);
      // Inner loop over the short dense dimension; vectorizes well.
      for (vid_t j = 0; j < f; ++j) zr[j] += v * hr[j];
    }
  }
}

Matrix spmm(const CsrMatrix& a, const Matrix& h) {
  Matrix z(a.n_rows(), h.n_cols());
  spmm_accumulate(a, h, z);
  return z;
}

}  // namespace sagnn
