#include "sparse/spmm.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/width_dispatch.hpp"

namespace sagnn {

namespace {

inline void spmm_rows(const CsrMatrix& a, const Matrix& h, Matrix& z,
                      vid_t row_begin, vid_t row_end) {
  const vid_t f = h.n_cols();
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (vid_t r = row_begin; r < row_end; ++r) {
    real_t* zr = z.row(r);
    for (eid_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const real_t v = vals[k];
      const real_t* hr = h.row(col_idx[k]);
      // Inner loop over the short dense dimension; vectorizes well.
      for (vid_t j = 0; j < f; ++j) zr[j] += v * hr[j];
    }
  }
}

/// Width-specialized twin of spmm_rows: the same loop with the feature
/// width fixed at compile time (F = kDynamicWidth reads it at runtime,
/// making the generic instantiation textually identical to spmm_rows).
/// The compiler fully unrolls/vectorizes the j loop for the fixed widths;
/// the expression and accumulation order are unchanged, so every
/// instantiation stays bitwise equal to the reference.
template <int F>
struct SpmmRowKernel {
  static void run(const CsrMatrix& a, const Matrix& h, Matrix& z,
                  vid_t row_begin, vid_t row_end) {
    const vid_t f = F == kDynamicWidth ? h.n_cols() : F;
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto vals = a.vals();
    for (vid_t r = row_begin; r < row_end; ++r) {
      real_t* zr = z.row(r);
      for (eid_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const real_t v = vals[k];
        const real_t* hr = h.row(col_idx[k]);
        for (vid_t j = 0; j < f; ++j) zr[j] += v * hr[j];
      }
    }
  }
};

}  // namespace

void spmm_accumulate_reference(const CsrMatrix& a, const Matrix& h, Matrix& z) {
  SAGNN_REQUIRE(h.n_rows() == a.n_cols(), "SpMM: H row count must equal A col count");
  SAGNN_REQUIRE(z.n_rows() == a.n_rows() && z.n_cols() == h.n_cols(),
                "SpMM: Z shape must be (A rows x H cols)");
  spmm_rows(a, h, z, 0, a.n_rows());
}

void spmm_accumulate(const CsrMatrix& a, const Matrix& h, Matrix& z) {
  SAGNN_REQUIRE(h.n_rows() == a.n_cols(), "SpMM: H row count must equal A col count");
  SAGNN_REQUIRE(z.n_rows() == a.n_rows() && z.n_cols() == h.n_cols(),
                "SpMM: Z shape must be (A rows x H cols)");
  const vid_t n = a.n_rows();
  // Resolve the width-specialized row kernel once; the hot loops below
  // contain no dispatch (common/width_dispatch.hpp).
  const auto rows_fn = select_by_width<SpmmRowKernel>(h.n_cols());
  // Serial-region check first: it is thread-local and lock-free, and it is
  // the path every simulated rank takes per layer per epoch.
  if (in_serial_region()) {
    rows_fn(a, h, z, 0, n);
    return;
  }
  const std::int64_t n_blocks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(parallel_threads()) * 4);
  if (n_blocks <= 1) {
    rows_fn(a, h, z, 0, n);
    return;
  }
  // nnz-balanced row blocks: block b owns the rows whose cumulative nonzero
  // count falls in [b, b+1) * nnz/n_blocks. Power-law graphs make equal-ROW
  // blocks wildly imbalanced; equal-NNZ blocks keep every worker busy.
  // Each row still accumulates its nonzeros in CSR order, so the result is
  // bitwise identical to the reference kernel for any block count.
  const auto row_ptr = a.row_ptr();
  const double per_block =
      static_cast<double>(a.nnz()) / static_cast<double>(n_blocks);
  std::vector<vid_t> bounds(static_cast<std::size_t>(n_blocks) + 1, 0);
  bounds.back() = n;
  for (std::int64_t b = 1; b < n_blocks; ++b) {
    const auto target = static_cast<eid_t>(per_block * static_cast<double>(b));
    const auto it = std::lower_bound(row_ptr.begin(), row_ptr.end(), target);
    bounds[static_cast<std::size_t>(b)] =
        static_cast<vid_t>(std::min<std::ptrdiff_t>(it - row_ptr.begin(), n));
  }
  parallel_for(0, n_blocks, 1, [&](std::int64_t bb, std::int64_t be) {
    for (std::int64_t b = bb; b < be; ++b) {
      rows_fn(a, h, z, bounds[static_cast<std::size_t>(b)],
              bounds[static_cast<std::size_t>(b) + 1]);
    }
  });
}

Matrix spmm(const CsrMatrix& a, const Matrix& h) {
  Matrix z(a.n_rows(), h.n_cols());
  spmm_accumulate(a, h, z);
  return z;
}

}  // namespace sagnn
