#pragma once
// Deterministic, seedable random number generation.
//
// All stochastic pieces of the library (graph generators, weight init,
// synthetic features, partitioner tie-breaking) draw from Xoshiro256**
// seeded through SplitMix64, so that every experiment in bench/ is exactly
// reproducible from its printed seed.

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

/// SplitMix64: used to expand a single 64-bit seed into the Xoshiro state.
/// Passes BigCrush when used directly; we use it only for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedbeefcafef00dull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) with Lemire's bounded-rejection method
  /// (no modulo bias).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform real in [0, 1).
  double next_double();

  /// Uniform real in [lo, hi).
  real_t uniform(real_t lo, real_t hi);

  /// Standard normal via Box–Muller (no cached spare: keeps the generator
  /// state a pure function of the draw count).
  real_t normal();

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Fork a statistically independent stream, e.g. one per rank/vertex.
  Rng fork(std::uint64_t stream_id) const;

  /// Complete generator state {s0, s1, s2, s3, seed}, for checkpointing:
  /// load_state(save_state()) makes the stream continue bit-identically.
  std::array<std::uint64_t, 5> save_state() const {
    return {s_[0], s_[1], s_[2], s_[3], seed_};
  }
  void load_state(const std::array<std::uint64_t, 5>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<std::size_t>(i)];
    seed_ = state[4];
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

/// Deterministic Zipf(s, N) sampler over 0-based ranks [0, N): rank k is
/// drawn with probability (k+1)^-s / H_{N,s}. Built as an inverse-CDF
/// table, so every sample() consumes EXACTLY ONE uniform draw from the
/// supplied Rng — the generator state after n samples is a pure function
/// of (seed, n), independent of the exponent, the table, or any rejection
/// luck. This is what makes Zipf-driven workload benches (bench_serving)
/// replayable from a printed seed. The table itself is a pure function of
/// (s, n); memory is 8 bytes per rank.
class ZipfSampler {
 public:
  /// `exponent` >= 0 (0 degenerates to the uniform distribution); `n` >= 1.
  ZipfSampler(double exponent, std::uint64_t n);

  std::uint64_t n() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  /// Draw one 0-based rank. Consumes exactly one Rng::next_double().
  std::uint64_t sample(Rng& rng) const;

  /// Exact probability mass of 0-based rank k under the normalized law.
  double probability(std::uint64_t k) const;

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k); cdf_.back() == 1
  double exponent_ = 1.0;
};

}  // namespace sagnn
