#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace sagnn {

namespace {

thread_local int t_serial_depth = 0;
thread_local bool t_pool_worker = false;

int env_default_threads() {
  if (const char* env = std::getenv("SAGNN_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

/// The process-wide pool. Workers sleep on a condition variable between
/// jobs; a job is a chunk counter the workers and the submitting thread
/// drain together. Exactly one job runs at a time (parallel_for from
/// inside parallel work runs inline instead — see in_serial_region()).
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int threads() {
    // Lock-free fast path: kernels on simulated rank threads query the
    // size per call, and must never contend on the pool mutex.
    const int cached = size_cache_.load(std::memory_order_relaxed);
    if (cached != 0) return cached;
    std::lock_guard<std::mutex> lock(mu_);
    const int resolved = resolved_size_locked();
    size_cache_.store(resolved, std::memory_order_relaxed);
    return resolved;
  }

  void set_threads(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    desired_ = n;
    size_cache_.store(resolved_size_locked(), std::memory_order_relaxed);
    if (!workers_.empty() &&
        static_cast<int>(workers_.size()) + 1 != resolved_size_locked()) {
      shutdown_locked(lock);
    }
  }

  /// Run task(i) for i in [0, n_tasks), participating from the calling
  /// thread; returns when every task has finished.
  void run(std::int64_t n_tasks, const std::function<void(std::int64_t)>& task) {
    // One job at a time: a second top-level submitter queues here instead
    // of clobbering the active job's slots. (Nested submission from inside
    // a task never reaches run() — the serial-region guard runs it inline.)
    std::lock_guard<std::mutex> job_lock(job_mu_);
    std::uint64_t job_epoch = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const int size = resolved_size_locked();
      if (size <= 1) {
        lock.unlock();
        for (std::int64_t i = 0; i < n_tasks; ++i) task(i);
        return;
      }
      if (workers_.empty()) start_locked(size);
      task_ = &task;
      n_tasks_ = n_tasks;
      done_ = 0;
      job_epoch = ++epoch_;
      next_.store(pack(job_epoch, 0), std::memory_order_relaxed);
      cv_work_.notify_all();
    }
    {
      // The submitting thread participates in the job; while it does, it
      // must refuse nested fan-out exactly like a worker would (nested
      // parallel_for inside a task runs inline).
      SerialRegion in_pool_work;
      drain(task, n_tasks, job_epoch);
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return done_ == n_tasks_; });
    task_ = nullptr;
  }

  ~Pool() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!workers_.empty()) shutdown_locked(lock);
  }

 private:
  int resolved_size_locked() const {
    return desired_ >= 1 ? desired_ : env_default_threads();
  }

  void start_locked(int size) {
    stop_ = false;
    workers_.reserve(static_cast<std::size_t>(size - 1));
    for (int i = 0; i < size - 1; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void shutdown_locked(std::unique_lock<std::mutex>& lock) {
    stop_ = true;
    cv_work_.notify_all();
    std::vector<std::thread> workers = std::move(workers_);
    workers_.clear();
    lock.unlock();
    for (auto& w : workers) w.join();
    lock.lock();
    stop_ = false;
  }

  // The claim counter packs (job epoch | chunk index) into one word so a
  // chunk claim is atomic WITH the job-identity check: a worker that went
  // to sleep holding job A's task pointer can never steal a chunk of job B
  // (its CAS fails on the epoch bits) and thus never runs a destroyed
  // std::function. 2^24 epochs and 2^40 chunks; an ABA wrap would need one
  // worker descheduled across 16M complete jobs.
  static constexpr int kEpochShift = 40;
  static constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kEpochShift) - 1;
  static std::uint64_t pack(std::uint64_t epoch, std::int64_t index) {
    return (epoch << kEpochShift) | static_cast<std::uint64_t>(index);
  }

  /// Claim and execute chunks of job `job_epoch` until the counter runs
  /// dry or a newer job replaces it.
  void drain(const std::function<void(std::int64_t)>& task, std::int64_t n_tasks,
             std::uint64_t job_epoch) {
    const std::uint64_t epoch_bits = pack(job_epoch, 0);
    std::int64_t finished = 0;
    std::uint64_t cur = next_.load(std::memory_order_relaxed);
    while (true) {
      if ((cur & ~kIndexMask) != epoch_bits) break;  // not our job anymore
      const auto i = static_cast<std::int64_t>(cur & kIndexMask);
      if (i >= n_tasks) break;
      if (!next_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
        continue;  // cur reloaded by the failed CAS
      }
      task(i);
      ++finished;
      cur = next_.load(std::memory_order_relaxed);
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      done_ += finished;
      if (done_ == n_tasks_) cv_done_.notify_all();
    }
  }

  void worker_main() {
    t_pool_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      const auto* task = task_;
      const std::int64_t n_tasks = n_tasks_;
      if (task == nullptr) continue;  // job already fully drained
      lock.unlock();
      drain(*task, n_tasks, seen);
      lock.lock();
    }
  }

  std::mutex job_mu_;  ///< serializes whole jobs (held across run())
  std::mutex mu_;      ///< guards all pool state below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  int desired_ = 0;  ///< 0 = environment default
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  const std::function<void(std::int64_t)>* task_ = nullptr;
  std::int64_t n_tasks_ = 0;
  std::int64_t done_ = 0;  ///< guarded by mu_
  std::atomic<std::uint64_t> next_{0};  ///< packed (epoch, next chunk index)
  std::atomic<int> size_cache_{0};      ///< resolved pool size; 0 = stale
};

}  // namespace

int parallel_threads() { return Pool::instance().threads(); }

void set_parallel_threads(int n) { Pool::instance().set_threads(n); }

bool in_serial_region() { return t_pool_worker || t_serial_depth > 0; }

SerialRegion::SerialRegion() { ++t_serial_depth; }
SerialRegion::~SerialRegion() { --t_serial_depth; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t n_chunks = ceil_div(end - begin, g);
  const auto chunk = [&](std::int64_t i) {
    const std::int64_t b = begin + i * g;
    const std::int64_t e = b + g < end ? b + g : end;
    fn(b, e);
  };
  if (n_chunks == 1 || in_serial_region()) {
    for (std::int64_t i = 0; i < n_chunks; ++i) chunk(i);
    return;
  }
  Pool::instance().run(n_chunks, chunk);
}

}  // namespace sagnn
