#pragma once
// String-keyed factory registry with alias support — the extension seam
// behind the partitioner and distribution-strategy catalogs. Components
// self-register at static-initialization time (the library is linked as an
// object library, so every registrar translation unit is always present),
// which lets drivers select implementations purely by name and lets new
// implementations be added without touching any existing caller.

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

template <typename Base, typename... Args>
class NamedRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Base>(Args...)>;

  /// `kind` names the registry in error messages ("partitioner", ...).
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Register a factory under a canonical name plus optional aliases.
  /// Canonical names appear in names(); aliases only resolve in create().
  void add(const std::string& canonical, std::vector<std::string> aliases,
           Factory factory) {
    SAGNN_REQUIRE(factory != nullptr, "null factory for " + canonical);
    insert_key(canonical, factory);
    canonical_.push_back(canonical);
    for (const std::string& alias : aliases) insert_key(alias, factory);
  }

  bool contains(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }

  /// Sorted canonical names (the supported vocabulary).
  std::vector<std::string> names() const {
    std::vector<std::string> out = canonical_;
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Instantiate by canonical name or alias. Unknown names get a
  /// std::invalid_argument that lists every registered choice.
  template <typename... CallArgs>
  std::unique_ptr<Base> create(const std::string& name, CallArgs&&... args) const {
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::ostringstream os;
      os << "unknown " << kind_ << ": '" << name << "' (registered: ";
      const auto known = names();
      for (std::size_t i = 0; i < known.size(); ++i) {
        os << (i > 0 ? ", " : "") << known[i];
      }
      os << ")";
      throw std::invalid_argument(os.str());
    }
    return it->second(std::forward<CallArgs>(args)...);
  }

 private:
  void insert_key(const std::string& key, const Factory& factory) {
    const bool inserted = factories_.emplace(key, factory).second;
    SAGNN_REQUIRE(inserted, "duplicate " + kind_ + " registration: " + key);
  }

  std::string kind_;
  std::map<std::string, Factory> factories_;
  std::vector<std::string> canonical_;
};

}  // namespace sagnn
