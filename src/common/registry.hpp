#pragma once
// String-keyed factory registry with alias support — the extension seam
// behind the partitioner and distribution-strategy catalogs. Components
// self-register at static-initialization time (the library is linked as an
// object library, so every registrar translation unit is always present),
// which lets drivers select implementations purely by name and lets new
// implementations be added without touching any existing caller.

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

/// Typed unknown-name error raised by NamedRegistry::create()/require().
/// Subclasses std::invalid_argument, so pre-existing catch sites keep
/// working; the message always lists every registered choice.
class UnknownNameError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

template <typename Base, typename... Args>
class NamedRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Base>(Args...)>;

  /// `kind` names the registry in error messages ("partitioner", ...).
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  /// Register a factory under a canonical name plus optional aliases.
  /// Canonical names appear in names(); aliases only resolve in create().
  void add(const std::string& canonical, std::vector<std::string> aliases,
           Factory factory) {
    SAGNN_REQUIRE(factory != nullptr, "null factory for " + canonical);
    insert_key(canonical, factory);
    canonical_.push_back(canonical);
    for (const std::string& alias : aliases) insert_key(alias, factory);
    aliases_.emplace(canonical, std::move(aliases));
  }

  bool contains(const std::string& name) const {
    return factories_.find(name) != factories_.end();
  }

  /// Sorted canonical names (the supported vocabulary).
  std::vector<std::string> names() const {
    std::vector<std::string> out = canonical_;
    std::sort(out.begin(), out.end());
    return out;
  }

  /// The aliases registered alongside a canonical name (empty for unknown
  /// or alias-free names).
  std::vector<std::string> aliases(const std::string& canonical) const {
    auto it = aliases_.find(canonical);
    return it != aliases_.end() ? it->second : std::vector<std::string>{};
  }

  /// Human-readable catalog: every canonical name with its aliases, e.g.
  /// "gvb (aka gvb(volume-balancing))". Used by error messages and the
  /// drivers' --list mode.
  std::string catalog() const {
    std::ostringstream os;
    const auto known = names();
    for (std::size_t i = 0; i < known.size(); ++i) {
      os << (i > 0 ? ", " : "") << known[i];
      const auto aka = aliases(known[i]);
      for (std::size_t a = 0; a < aka.size(); ++a) {
        os << (a == 0 ? " (aka " : ", ") << aka[a];
      }
      if (!aka.empty()) os << ")";
    }
    return os.str();
  }

  /// Fail-fast validation: throws UnknownNameError unless `name` resolves
  /// (canonical or alias) or appears in `builtins` — extra vocabulary the
  /// caller accepts outside this registry ("serial", "sampled").
  void require(const std::string& name,
               std::initializer_list<const char*> builtins = {}) const {
    if (contains(name)) return;
    for (const char* b : builtins) {
      if (name == b) return;
    }
    std::ostringstream os;
    os << "unknown " << kind_ << ": '" << name << "' (registered: " << catalog();
    bool first = true;
    for (const char* b : builtins) {
      os << (first ? "; built-in: " : ", ") << b;
      first = false;
    }
    os << ")";
    throw UnknownNameError(os.str());
  }

  /// Instantiate by canonical name or alias. Unknown names get an
  /// UnknownNameError (a std::invalid_argument) listing every registered
  /// choice.
  template <typename... CallArgs>
  std::unique_ptr<Base> create(const std::string& name, CallArgs&&... args) const {
    auto it = factories_.find(name);
    if (it == factories_.end()) require(name);  // throws
    return it->second(std::forward<CallArgs>(args)...);
  }

 private:
  void insert_key(const std::string& key, const Factory& factory) {
    const bool inserted = factories_.emplace(key, factory).second;
    SAGNN_REQUIRE(inserted, "duplicate " + kind_ + " registration: " + key);
  }

  std::string kind_;
  std::map<std::string, Factory> factories_;
  std::vector<std::string> canonical_;
  std::map<std::string, std::vector<std::string>> aliases_;
};

}  // namespace sagnn
