#pragma once
// Shared thread-pool parallel runtime for host compute (partitioning and
// the blocked SpMM/GEMM kernels).
//
// Design rules that every user of this header relies on:
//
//   * One lazily-started fixed pool per process. Size resolution order:
//     set_parallel_threads() override (the TrainConfig::threads knob) >
//     SAGNN_THREADS environment variable > std::thread::hardware_concurrency.
//   * Determinism: parallel_for splits [begin, end) into fixed chunks of
//     `grain` iterations. Chunk boundaries depend only on (range, grain),
//     never on the worker count, so a kernel whose chunks own disjoint
//     outputs is bit-identical at every thread count. parallel_reduce
//     combines the per-chunk partials with a fixed binary tree over the
//     chunk index — also independent of scheduling.
//   * Nesting guard: a thread inside a SerialRegion (every simulated
//     cluster rank thread — see Cluster::run) or inside a pool worker runs
//     parallel_for inline and serially. Per-rank ThreadCpuTimer compute
//     measurement and the bit-identical serial-parity sweep are therefore
//     unaffected by the pool's existence.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace sagnn {

/// Worker count the next parallel_for will use (>= 1). Resolves the pool
/// size on first call; 1 means all work runs inline on the caller.
int parallel_threads();

/// Override the pool size. n >= 1 pins it; n <= 0 resets to the
/// environment default (SAGNN_THREADS, else hardware concurrency). An
/// already-started pool is shut down and relaunched at the new size on its
/// next use. Must not be called from inside parallel work.
void set_parallel_threads(int n);

/// True when the calling thread must not fan out: it is a pool worker or
/// sits inside a SerialRegion.
bool in_serial_region();

/// RAII marker forcing parallel_for on this thread (and the code it calls)
/// to run inline and serially. Nests. Cluster::run wraps every simulated
/// rank in one, so distributed-trainer compute stays single-threaded and
/// per-rank CPU timing stays meaningful.
class SerialRegion {
 public:
  SerialRegion();
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;
};

/// Invoke fn(chunk_begin, chunk_end) for every grain-sized chunk of
/// [begin, end), possibly concurrently. Chunks are exactly
/// [begin + i*grain, min(end, begin + (i+1)*grain)) regardless of the
/// worker count; the serial path visits them in index order. fn must not
/// throw (kernels and scans here never do).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Deterministic reduction: partials[i] = map(chunk_i begin, chunk_i end),
/// folded by a fixed binary tree over the chunk index. The result is a
/// pure function of (range, grain, map, combine) — thread count and
/// scheduling cannot change it. `identity` is returned for an empty range.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T identity, const MapFn& map, const CombineFn& combine) {
  if (end <= begin) return identity;
  const std::int64_t g = grain < 1 ? 1 : grain;
  const std::int64_t n_chunks = ceil_div(end - begin, g);
  std::vector<T> partials(static_cast<std::size_t>(n_chunks), identity);
  parallel_for(begin, end, g, [&](std::int64_t b, std::int64_t e) {
    partials[static_cast<std::size_t>((b - begin) / g)] = map(b, e);
  });
  for (std::int64_t stride = 1; stride < n_chunks; stride *= 2) {
    for (std::int64_t i = 0; i + stride < n_chunks; i += 2 * stride) {
      partials[static_cast<std::size_t>(i)] =
          combine(std::move(partials[static_cast<std::size_t>(i)]),
                  std::move(partials[static_cast<std::size_t>(i + stride)]));
    }
  }
  return std::move(partials.front());
}

/// Grain that yields roughly `per_thread` chunks per worker — the default
/// sizing for scan loops where per-iteration cost is uniform.
inline std::int64_t parallel_grain(std::int64_t n, std::int64_t per_thread = 4) {
  const std::int64_t tasks = static_cast<std::int64_t>(parallel_threads()) * per_thread;
  return n <= tasks ? 1 : ceil_div(n, tasks);
}

}  // namespace sagnn
