#pragma once
// Compile-time feature-width specialization: the single runtime dispatch
// point shared by every width-templated kernel (SpMM over CSR, SpMM over
// SELL-C-sigma, and the GEMM variants).
//
// GCN feature widths are small and highly repetitive — the hidden width is
// 16 in the paper configuration, and input/output widths cluster around a
// handful of powers of two. Templating the inner accumulate loop on the
// width F lets the compiler fully unroll and vectorize it; everything else
// (shape checks, blocking, parallel fan-out) stays width-agnostic and is
// written once.
//
// Contract: a kernel is a class template `Kernel<F>` exposing a static
// member function `run` whose signature is identical for every F. F is the
// compile-time width, or kDynamicWidth (-1) for the runtime-f fallback —
// the fallback body must be TEXTUALLY the same loop with `f` read at
// runtime, so every instantiation performs the identical floating-point
// operations in the identical order and stays bitwise equal to the
// *_reference kernels (tests/test_kernels_specialized.cpp sweeps this).
//
// select_by_width resolves the function pointer once per kernel call, so
// the hot loops themselves contain no dispatch.

#include "common/types.hpp"

namespace sagnn {

/// Sentinel template argument: read the width at runtime.
inline constexpr int kDynamicWidth = -1;

/// The widths with dedicated instantiations. Chosen to cover the repo's
/// actual call sites: hidden width 16, common input widths 32/64/128.
/// Any other width takes the generic runtime-f path.
inline constexpr int kSpecializedWidths[] = {16, 32, 64, 128};

/// Returns &Kernel<F>::run for the specialized F matching `f`, or the
/// generic &Kernel<kDynamicWidth>::run. All instantiations share one
/// signature, so the result is an ordinary function pointer.
template <template <int> class Kernel>
auto select_by_width(vid_t f) {
  switch (f) {
    case 16:
      return &Kernel<16>::run;
    case 32:
      return &Kernel<32>::run;
    case 64:
      return &Kernel<64>::run;
    case 128:
      return &Kernel<128>::run;
    default:
      return &Kernel<kDynamicWidth>::run;
  }
}

}  // namespace sagnn
