#pragma once
// Timing utilities.
//
// The simulated cluster runs many "GPU ranks" as threads on few cores, so
// wall-clock time on a rank thread is polluted by time-slicing. Compute
// phases are therefore measured with the per-thread CPU clock
// (CLOCK_THREAD_CPUTIME_ID), which only advances while *this* thread runs.
// Communication time is never measured; it is modeled from recorded traffic
// by simcomm::CostModel.

#include <chrono>
#include <cstdint>

namespace sagnn {

/// Monotonic wall-clock timer (for whole-program / harness timing).
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = clock_t::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock_t::now() - start_).count();
  }

 private:
  using clock_t = std::chrono::steady_clock;
  clock_t::time_point start_;
};

/// Per-thread CPU-time timer; immune to oversubscription.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset() { start_ = now(); }
  /// CPU seconds consumed by the calling thread since reset().
  double seconds() const { return now() - start_; }

  /// Current per-thread CPU time in seconds.
  static double now();

 private:
  double start_ = 0.0;
};

/// Accumulates named phase durations (e.g. "spmm", "pack").
class PhaseAccumulator {
 public:
  void add(double seconds) { total_ += seconds; ++count_; }
  double total() const { return total_; }
  std::int64_t count() const { return count_; }
  void reset() { total_ = 0.0; count_ = 0; }

 private:
  double total_ = 0.0;
  std::int64_t count_ = 0;
};

}  // namespace sagnn
