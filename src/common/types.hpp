#pragma once
// Fundamental integer/floating types and error-checking macros shared by
// every module of the library.
//
// Conventions (used consistently across sparse/, dense/, dist/, gnn/):
//   vid_t    vertex / row / column id of the graph (fits 2^31 vertices)
//   eid_t    edge / nonzero offset (CSR row pointers; may exceed 2^31)
//   real_t   value type of all numeric matrices (float, as in GPU training)

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sagnn {

using vid_t = std::int32_t;
using eid_t = std::int64_t;
using real_t = float;

/// Thrown by SAGNN_CHECK / SAGNN_REQUIRE on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

/// Internal invariant check; active in all build types. These guard logic
/// errors inside the library itself.
#define SAGNN_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::sagnn::detail::fail(#cond, __FILE__, __LINE__, std::string()); \
  } while (0)

/// Public-API precondition check with a caller-facing message.
#define SAGNN_REQUIRE(cond, msg)                                \
  do {                                                          \
    if (!(cond))                                                \
      ::sagnn::detail::fail(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Integer ceiling division, used throughout block-distribution code.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace sagnn
