#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace sagnn {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SAGNN_CHECK(bound > 0);
  // Lemire's multiply-shift rejection sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

real_t Rng::uniform(real_t lo, real_t hi) {
  return lo + static_cast<real_t>(next_double()) * (hi - lo);
}

real_t Rng::normal() {
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<real_t>(r * std::cos(2.0 * M_PI * u2));
}

Rng Rng::fork(std::uint64_t stream_id) const {
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ull * (stream_id + 1)));
  return Rng(sm.next());
}

ZipfSampler::ZipfSampler(double exponent, std::uint64_t n)
    : exponent_(exponent) {
  SAGNN_REQUIRE(n >= 1, "ZipfSampler needs at least one rank");
  SAGNN_REQUIRE(exponent >= 0.0, "Zipf exponent must be >= 0");
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // exact, so a draw of 1-eps can never fall off the end
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // First rank whose CDF strictly exceeds u: next_double() is in [0, 1),
  // so the result is always a valid index.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint64_t k) const {
  SAGNN_REQUIRE(k < cdf_.size(), "Zipf rank out of range");
  const auto i = static_cast<std::size_t>(k);
  return k == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace sagnn
