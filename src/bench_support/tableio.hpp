#pragma once
// Plain-text table printing for the bench harness: every bench binary
// prints the rows/series of the paper table or figure it regenerates, in a
// aligned fixed-width format plus an optional CSV dump for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace sagnn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Numeric convenience: formats doubles with `precision` significant
  /// digits.
  static std::string num(double v, int precision = 4);

  /// Aligned fixed-width rendering.
  void print(std::ostream& os) const;
  /// Comma-separated rendering (headers + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("==== title ====") used between experiment
/// blocks in bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace sagnn
