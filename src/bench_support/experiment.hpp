#pragma once
// The one shared experiment runner behind every bench and example driver:
// a fully name-driven configuration record (strategy and partitioner are
// registry strings, the dataset is optional by name) funneled through
// TrainerBuilder. Drivers stopped carrying their own trainer-wiring code —
// adding a strategy or partitioner makes it selectable everywhere at once.

#include <iosfwd>
#include <string>

#include "gnn/trainer.hpp"

namespace sagnn {

struct ExperimentSpec {
  /// "serial", "sampled", or any registered distribution strategy.
  std::string strategy = "1d-sparse";
  std::string partitioner = "block";  ///< partitioner registry name
  int p = 4;
  int c = 1;
  int epochs = 2;
  /// Host thread-pool size (TrainConfig::threads; 0 = leave as-is).
  int threads = 0;
  /// Column chunks for pipelined strategies ("1d-overlap", "1.5d-overlap").
  int pipeline_chunks = 4;
  /// Layer widths etc.; dims are auto-derived from the dataset when empty.
  GcnConfig gcn;
  PartitionerOptions partitioner_options;
  /// volume_scale is auto-calibrated from Dataset::sim_scale when left at
  /// the default 1.0 (see CostModel::volume_scale).
  CostModel cost_model;
  SamplingConfig sampling;
  /// Local-kernel selection (SpMM storage format; sparse/sell.hpp).
  /// Bitwise-neutral — results never depend on it.
  KernelConfig kernels;

  // --- checkpoint knobs (src/ckpt/) ---
  /// When non-empty, resume from this checkpoint file instead of building
  /// a fresh trainer. The checkpoint's configuration is authoritative —
  /// the spec's other fields are IGNORED on resume; deviate only through
  /// `resume_overrides` below.
  std::string resume_from;
  /// Explicit overrides applied on resume; zero/empty fields keep the
  /// checkpoint's values. Setting p (and optionally c) is an elastic
  /// restart onto a new rank count.
  struct ResumeOverrides {
    int p = 0;
    int c = 0;
    int epochs = 0;
    std::string partitioner;
  };
  ResumeOverrides resume_overrides;
  /// When non-empty, save the final training state to this file after the
  /// run, so a later experiment can continue from it.
  std::string checkpoint_to;

  /// The equivalent TrainConfig for `dataset`.
  TrainConfig to_train_config(const Dataset& dataset) const;
};

/// Build, train, and report one experiment.
TrainResult run_experiment(const Dataset& dataset, const ExperimentSpec& spec);

/// Print every registered strategy and partitioner (canonical names with
/// aliases, plus the built-in trainer modes) — the payload of the drivers'
/// --list flag.
void print_registry_catalog(std::ostream& out);

/// Shared --list flag handling for driver mains: when any argument equals
/// "--list", print the catalog to stdout and return true (the caller exits
/// 0 without running anything).
bool handle_list_flag(int argc, char** argv);

}  // namespace sagnn
