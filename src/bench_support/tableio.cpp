#include "bench_support/tableio.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/types.hpp"

namespace sagnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  SAGNN_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace sagnn
