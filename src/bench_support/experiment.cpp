#include "bench_support/experiment.hpp"

namespace sagnn {

TrainConfig ExperimentSpec::to_train_config(const Dataset& dataset) const {
  TrainConfig cfg;
  cfg.gcn = gcn;  // empty dims stay empty; TrainerBuilder derives them
  cfg.gcn.epochs = epochs;
  cfg.strategy = strategy;
  cfg.threads = threads;
  cfg.p = p;
  cfg.c = c;
  cfg.partitioner = partitioner;
  cfg.partitioner_options = partitioner_options;
  cfg.cost_model = cost_model;
  cfg.pipeline_chunks = pipeline_chunks;
  if (cfg.cost_model.volume_scale == 1.0) {
    // Calibrate modeled times to the full-size dataset this analogue
    // stands for (see Dataset::sim_scale / CostModel::volume_scale).
    cfg.cost_model.volume_scale = dataset.sim_scale;
  }
  cfg.sampling = sampling;
  return cfg;
}

TrainResult run_experiment(const Dataset& dataset, const ExperimentSpec& spec) {
  auto trainer = TrainerBuilder(dataset).config(spec.to_train_config(dataset)).build();
  trainer->train();
  return trainer->result();
}

}  // namespace sagnn
