#include "bench_support/experiment.hpp"

#include <cstring>
#include <fstream>
#include <iostream>

#include "gnn/strategy.hpp"
#include "partition/partitioner_registry.hpp"

namespace sagnn {

TrainConfig ExperimentSpec::to_train_config(const Dataset& dataset) const {
  TrainConfig cfg;
  cfg.gcn = gcn;  // empty dims stay empty; TrainerBuilder derives them
  cfg.gcn.epochs = epochs;
  cfg.strategy = strategy;
  cfg.threads = threads;
  cfg.p = p;
  cfg.c = c;
  cfg.partitioner = partitioner;
  cfg.partitioner_options = partitioner_options;
  cfg.cost_model = cost_model;
  cfg.pipeline_chunks = pipeline_chunks;
  cfg.kernels = kernels;
  if (cfg.cost_model.volume_scale == 1.0) {
    // Calibrate modeled times to the full-size dataset this analogue
    // stands for (see Dataset::sim_scale / CostModel::volume_scale).
    cfg.cost_model.volume_scale = dataset.sim_scale;
  }
  cfg.sampling = sampling;
  return cfg;
}

TrainResult run_experiment(const Dataset& dataset, const ExperimentSpec& spec) {
  std::unique_ptr<Trainer> trainer;
  if (!spec.resume_from.empty()) {
    // Resume path: the checkpoint's configuration is authoritative. Only
    // fields the caller put into resume_overrides become explicit builder
    // overrides (a different p than the snapshot's is an elastic restart).
    std::ifstream in(spec.resume_from, std::ios::binary);
    SAGNN_REQUIRE(in.good(), "cannot open checkpoint " + spec.resume_from);
    TrainerBuilder builder(dataset);
    const auto& ov = spec.resume_overrides;
    // c = 0 in ranks() means "keep the checkpoint's replication factor"
    // on the resume path (TrainerBuilder::resume documents this).
    if (ov.p > 0) builder.ranks(ov.p, ov.c);
    if (!ov.partitioner.empty()) {
      builder.partitioner(ov.partitioner, spec.partitioner_options);
    }
    if (ov.epochs > 0) builder.epochs(ov.epochs);
    trainer = builder.resume(in);
  } else {
    trainer = TrainerBuilder(dataset).config(spec.to_train_config(dataset)).build();
  }
  trainer->train();
  if (!spec.checkpoint_to.empty()) {
    std::ofstream out(spec.checkpoint_to, std::ios::binary);
    SAGNN_REQUIRE(out.good(),
                  "cannot open " + spec.checkpoint_to + " for writing");
    trainer->save(out);
  }
  return trainer->result();
}

void print_registry_catalog(std::ostream& out) {
  out << "strategies:   " << strategy_registry().catalog() << "\n"
      << "trainer modes: serial, sampled (built-in, not registry entries)\n"
      << "partitioners: " << partitioner_registry().catalog() << "\n";
}

bool handle_list_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      print_registry_catalog(std::cout);
      return true;
    }
  }
  return false;
}

}  // namespace sagnn
