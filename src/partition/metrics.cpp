#include "partition/metrics.hpp"

#include <algorithm>

namespace sagnn {

std::uint64_t VolumeStats::send_rows(int j) const {
  std::uint64_t acc = 0;
  for (int i = 0; i < k; ++i) acc += pair_rows[static_cast<std::size_t>(j) * k + i];
  return acc;
}

std::uint64_t VolumeStats::recv_rows(int i) const {
  std::uint64_t acc = 0;
  for (int j = 0; j < k; ++j) acc += pair_rows[static_cast<std::size_t>(j) * k + i];
  return acc;
}

std::uint64_t VolumeStats::total_rows() const {
  std::uint64_t acc = 0;
  for (auto v : pair_rows) acc += v;
  return acc;
}

std::uint64_t VolumeStats::max_send_rows() const {
  std::uint64_t m = 0;
  for (int j = 0; j < k; ++j) m = std::max(m, send_rows(j));
  return m;
}

double VolumeStats::avg_send_rows() const {
  return k > 0 ? static_cast<double>(total_rows()) / k : 0.0;
}

double VolumeStats::send_imbalance_percent() const {
  const double avg = avg_send_rows();
  if (avg <= 0) return 0.0;
  return (static_cast<double>(max_send_rows()) / avg - 1.0) * 100.0;
}

double VolumeStats::total_megabytes(vid_t f) const {
  return static_cast<double>(total_rows()) * f * sizeof(real_t) / 1.0e6;
}
double VolumeStats::avg_send_megabytes(vid_t f) const {
  return avg_send_rows() * f * sizeof(real_t) / 1.0e6;
}
double VolumeStats::max_send_megabytes(vid_t f) const {
  return static_cast<double>(max_send_rows()) * f * sizeof(real_t) / 1.0e6;
}

VolumeStats compute_volume_stats(const CsrMatrix& adj, const Partition& partition) {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(), "adjacency must be square");
  SAGNN_REQUIRE(partition.n() == adj.n_rows(), "partition size mismatch");
  const int k = partition.k;
  VolumeStats stats;
  stats.k = k;
  stats.pair_rows.assign(static_cast<std::size_t>(k) * k, 0);

  // For each vertex v: find the distinct parts among its neighbors; v's row
  // of H is sent from part(v) to each such part != part(v).
  std::vector<bool> touched(static_cast<std::size_t>(k), false);
  std::vector<int> touch_list;
  for (vid_t v = 0; v < adj.n_rows(); ++v) {
    const int pv = partition.part_of[static_cast<std::size_t>(v)];
    touch_list.clear();
    for (vid_t u : adj.row_cols(v)) {
      const int pu = partition.part_of[static_cast<std::size_t>(u)];
      if (!touched[static_cast<std::size_t>(pu)]) {
        touched[static_cast<std::size_t>(pu)] = true;
        touch_list.push_back(pu);
      }
      if (pu != pv && u > v) ++stats.edgecut;
    }
    for (int pu : touch_list) {
      touched[static_cast<std::size_t>(pu)] = false;
      if (pu != pv) {
        ++stats.pair_rows[static_cast<std::size_t>(pv) * k + pu];
      }
    }
  }
  return stats;
}

double compute_load_imbalance(const CsrMatrix& adj, const Partition& partition) {
  const int k = partition.k;
  std::vector<std::uint64_t> nnz(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < adj.n_rows(); ++v) {
    nnz[static_cast<std::size_t>(partition.part_of[static_cast<std::size_t>(v)])] +=
        static_cast<std::uint64_t>(adj.row_nnz(v));
  }
  const double avg = static_cast<double>(adj.nnz()) / k;
  std::uint64_t mx = 0;
  for (auto x : nnz) mx = std::max(mx, x);
  return avg > 0 ? static_cast<double>(mx) / avg : 1.0;
}

}  // namespace sagnn
