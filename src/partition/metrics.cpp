#include "partition/metrics.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace sagnn {

std::uint64_t VolumeStats::send_rows(int j) const {
  std::uint64_t acc = 0;
  for (int i = 0; i < k; ++i) acc += pair_rows[static_cast<std::size_t>(j) * k + i];
  return acc;
}

std::uint64_t VolumeStats::recv_rows(int i) const {
  std::uint64_t acc = 0;
  for (int j = 0; j < k; ++j) acc += pair_rows[static_cast<std::size_t>(j) * k + i];
  return acc;
}

std::uint64_t VolumeStats::total_rows() const {
  std::uint64_t acc = 0;
  for (auto v : pair_rows) acc += v;
  return acc;
}

std::uint64_t VolumeStats::max_send_rows() const {
  std::uint64_t m = 0;
  for (int j = 0; j < k; ++j) m = std::max(m, send_rows(j));
  return m;
}

double VolumeStats::avg_send_rows() const {
  return k > 0 ? static_cast<double>(total_rows()) / k : 0.0;
}

double VolumeStats::send_imbalance_percent() const {
  const double avg = avg_send_rows();
  if (avg <= 0) return 0.0;
  return (static_cast<double>(max_send_rows()) / avg - 1.0) * 100.0;
}

double VolumeStats::total_megabytes(vid_t f) const {
  return static_cast<double>(total_rows()) * f * sizeof(real_t) / 1.0e6;
}
double VolumeStats::avg_send_megabytes(vid_t f) const {
  return avg_send_rows() * f * sizeof(real_t) / 1.0e6;
}
double VolumeStats::max_send_megabytes(vid_t f) const {
  return static_cast<double>(max_send_rows()) * f * sizeof(real_t) / 1.0e6;
}

VolumeStats compute_volume_stats(const CsrMatrix& adj, const Partition& partition) {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(), "adjacency must be square");
  SAGNN_REQUIRE(partition.n() == adj.n_rows(), "partition size mismatch");
  const int k = partition.k;
  const vid_t n = adj.n_rows();

  // For each vertex v: find the distinct parts among its neighbors; v's row
  // of H is sent from part(v) to each such part != part(v). The per-vertex
  // scans are independent, so chunks accumulate private counters that are
  // merged by a fixed tree (exact integer sums: thread-count invariant).
  struct Partial {
    std::vector<std::uint64_t> pair_rows;
    std::uint64_t edgecut = 0;
  };
  Partial stats_acc = parallel_reduce(
      0, n, parallel_grain(n),
      Partial{std::vector<std::uint64_t>(static_cast<std::size_t>(k) * k, 0), 0},
      [&](std::int64_t lo, std::int64_t hi) {
        Partial acc{std::vector<std::uint64_t>(static_cast<std::size_t>(k) * k, 0), 0};
        std::vector<bool> touched(static_cast<std::size_t>(k), false);
        std::vector<int> touch_list;
        for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
          const int pv = partition.part_of[static_cast<std::size_t>(v)];
          touch_list.clear();
          for (vid_t u : adj.row_cols(v)) {
            const int pu = partition.part_of[static_cast<std::size_t>(u)];
            if (!touched[static_cast<std::size_t>(pu)]) {
              touched[static_cast<std::size_t>(pu)] = true;
              touch_list.push_back(pu);
            }
            if (pu != pv && u > v) ++acc.edgecut;
          }
          for (int pu : touch_list) {
            touched[static_cast<std::size_t>(pu)] = false;
            if (pu != pv) {
              ++acc.pair_rows[static_cast<std::size_t>(pv) * k + pu];
            }
          }
        }
        return acc;
      },
      [](Partial x, const Partial& y) {
        for (std::size_t i = 0; i < x.pair_rows.size(); ++i) {
          x.pair_rows[i] += y.pair_rows[i];
        }
        x.edgecut += y.edgecut;
        return x;
      });
  VolumeStats stats;
  stats.k = k;
  stats.pair_rows = std::move(stats_acc.pair_rows);
  stats.edgecut = static_cast<eid_t>(stats_acc.edgecut);
  return stats;
}

double compute_load_imbalance(const CsrMatrix& adj, const Partition& partition) {
  const int k = partition.k;
  const vid_t n = adj.n_rows();
  std::vector<std::uint64_t> nnz = parallel_reduce(
      0, n, parallel_grain(n),
      std::vector<std::uint64_t>(static_cast<std::size_t>(k), 0),
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::uint64_t> acc(static_cast<std::size_t>(k), 0);
        for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
          acc[static_cast<std::size_t>(
              partition.part_of[static_cast<std::size_t>(v)])] +=
              static_cast<std::uint64_t>(adj.row_nnz(v));
        }
        return acc;
      },
      [](std::vector<std::uint64_t> x, const std::vector<std::uint64_t>& y) {
        for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
        return x;
      });
  const double avg = static_cast<double>(adj.nnz()) / k;
  std::uint64_t mx = 0;
  for (auto x : nnz) mx = std::max(mx, x);
  return avg > 0 ? static_cast<double>(mx) / avg : 1.0;
}

}  // namespace sagnn
