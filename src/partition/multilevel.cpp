// Multilevel k-way edge-cut partitioner (METIS analogue):
//   1. coarsen by heavy-edge matching until the graph is small,
//   2. initial partition by greedy region growing,
//   3. uncoarsen with greedy boundary (FM-style) refinement per level.
//
// Matches the role METIS plays in the paper: minimizes *total* edgecut with
// a computational-balance constraint, and is oblivious to per-part maximum
// communication volume — the blind spot GvbPartitioner fixes.

#include <algorithm>
#include <deque>
#include <numeric>

#include "partition/partition.hpp"
#include "partition/partitioner_registry.hpp"
#include "partition/refine_detail.hpp"

namespace sagnn {

namespace partition_detail {

PGraph build_base_graph(const CsrMatrix& adj, bool balance_edges) {
  PGraph g;
  g.n = adj.n_rows();
  g.xadj.assign(static_cast<std::size_t>(g.n) + 1, 0);
  g.vwgt.assign(static_cast<std::size_t>(g.n), 1);
  // Count non-self edges.
  for (vid_t v = 0; v < g.n; ++v) {
    eid_t cnt = 0;
    for (vid_t u : adj.row_cols(v)) {
      if (u != v) ++cnt;
    }
    g.xadj[static_cast<std::size_t>(v) + 1] = g.xadj[static_cast<std::size_t>(v)] + cnt;
    if (balance_edges) g.vwgt[static_cast<std::size_t>(v)] = 1 + cnt;
  }
  g.adjncy.resize(static_cast<std::size_t>(g.xadj.back()));
  g.adjwgt.assign(static_cast<std::size_t>(g.xadj.back()), 1);
  for (vid_t v = 0; v < g.n; ++v) {
    eid_t out = g.xadj[static_cast<std::size_t>(v)];
    for (vid_t u : adj.row_cols(v)) {
      if (u != v) g.adjncy[static_cast<std::size_t>(out++)] = u;
    }
  }
  g.total_vwgt = std::accumulate(g.vwgt.begin(), g.vwgt.end(), std::int64_t{0});
  return g;
}

// Heavy-edge matching: visit vertices in random order; match each unmatched
// vertex to its unmatched neighbor with the heaviest connecting edge.
// Returns the coarse graph and writes the fine->coarse map.
PGraph coarsen_once(const PGraph& g, Rng& rng, std::vector<vid_t>& cmap) {
  const vid_t n = g.n;
  std::vector<vid_t> match(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  for (vid_t idx = 0; idx < n; ++idx) {
    const vid_t v = order[static_cast<std::size_t>(idx)];
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    vid_t best = -1;
    std::int64_t best_w = -1;
    for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const vid_t u = g.adjncy[static_cast<std::size_t>(e)];
      if (match[static_cast<std::size_t>(u)] != -1 || u == v) continue;
      if (g.adjwgt[static_cast<std::size_t>(e)] > best_w) {
        best_w = g.adjwgt[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    if (best == -1) {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    } else {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  // Assign coarse ids.
  cmap.assign(static_cast<std::size_t>(n), -1);
  vid_t nc = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (cmap[static_cast<std::size_t>(v)] != -1) continue;
    const vid_t u = match[static_cast<std::size_t>(v)];
    cmap[static_cast<std::size_t>(v)] = nc;
    cmap[static_cast<std::size_t>(u)] = nc;
    ++nc;
  }

  // Build the coarse graph: sum vertex weights; merge parallel edges.
  PGraph cg;
  cg.n = nc;
  cg.vwgt.assign(static_cast<std::size_t>(nc), 0);
  for (vid_t v = 0; v < n; ++v) {
    cg.vwgt[static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)])] +=
        g.vwgt[static_cast<std::size_t>(v)];
  }
  cg.total_vwgt = g.total_vwgt;

  // Aggregate coarse adjacency with a scratch accumulator indexed by coarse id.
  std::vector<std::int64_t> acc(static_cast<std::size_t>(nc), 0);
  std::vector<vid_t> touched;
  std::vector<std::vector<std::pair<vid_t, std::int64_t>>> rows(
      static_cast<std::size_t>(nc));
  // Group fine vertices by coarse id.
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(nc));
  for (vid_t v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)])].push_back(v);
  }
  for (vid_t c = 0; c < nc; ++c) {
    touched.clear();
    for (vid_t v : members[static_cast<std::size_t>(c)]) {
      for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const vid_t cu = cmap[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])];
        if (cu == c) continue;  // contracted edge disappears
        if (acc[static_cast<std::size_t>(cu)] == 0) touched.push_back(cu);
        acc[static_cast<std::size_t>(cu)] += g.adjwgt[static_cast<std::size_t>(e)];
      }
    }
    auto& row = rows[static_cast<std::size_t>(c)];
    row.reserve(touched.size());
    for (vid_t cu : touched) {
      row.emplace_back(cu, acc[static_cast<std::size_t>(cu)]);
      acc[static_cast<std::size_t>(cu)] = 0;
    }
    std::sort(row.begin(), row.end());
  }
  cg.xadj.assign(static_cast<std::size_t>(nc) + 1, 0);
  for (vid_t c = 0; c < nc; ++c) {
    cg.xadj[static_cast<std::size_t>(c) + 1] =
        cg.xadj[static_cast<std::size_t>(c)] +
        static_cast<eid_t>(rows[static_cast<std::size_t>(c)].size());
  }
  cg.adjncy.resize(static_cast<std::size_t>(cg.xadj.back()));
  cg.adjwgt.resize(static_cast<std::size_t>(cg.xadj.back()));
  for (vid_t c = 0; c < nc; ++c) {
    eid_t out = cg.xadj[static_cast<std::size_t>(c)];
    for (const auto& [cu, w] : rows[static_cast<std::size_t>(c)]) {
      cg.adjncy[static_cast<std::size_t>(out)] = cu;
      cg.adjwgt[static_cast<std::size_t>(out)] = w;
      ++out;
    }
  }
  return cg;
}

void fix_empty_parts(const PGraph& g, int k, std::vector<vid_t>& part) {
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(k));
  for (vid_t v = 0; v < g.n; ++v) {
    members[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])].push_back(v);
  }
  for (int p = 0; p < k; ++p) {
    if (!members[static_cast<std::size_t>(p)].empty()) continue;
    // Steal a vertex from the currently largest part.
    int donor = 0;
    for (int q = 1; q < k; ++q) {
      if (members[static_cast<std::size_t>(q)].size() >
          members[static_cast<std::size_t>(donor)].size()) {
        donor = q;
      }
    }
    SAGNN_CHECK(members[static_cast<std::size_t>(donor)].size() > 1);
    const vid_t v = members[static_cast<std::size_t>(donor)].back();
    members[static_cast<std::size_t>(donor)].pop_back();
    members[static_cast<std::size_t>(p)].push_back(v);
    part[static_cast<std::size_t>(v)] = static_cast<vid_t>(p);
  }
}

// Greedy graph-growing initial partition on the coarsest graph.
void initial_partition(const PGraph& g, int k, Rng& rng, std::vector<vid_t>& part) {
  const vid_t n = g.n;
  part.assign(static_cast<std::size_t>(n), -1);
  const std::int64_t target = g.total_vwgt / k;
  vid_t assigned = 0;
  for (int p = 0; p < k - 1 && assigned < n; ++p) {
    // Seed: a random unassigned vertex.
    vid_t seed = -1;
    for (int tries = 0; tries < 32 && seed == -1; ++tries) {
      const auto cand =
          static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (part[static_cast<std::size_t>(cand)] == -1) seed = cand;
    }
    if (seed == -1) {
      for (vid_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
      }
    }
    // BFS-grow until the weight target is met.
    std::int64_t w = 0;
    std::deque<vid_t> queue{seed};
    part[static_cast<std::size_t>(seed)] = static_cast<vid_t>(p);
    w += g.vwgt[static_cast<std::size_t>(seed)];
    ++assigned;
    while (!queue.empty() && w < target && assigned < n) {
      const vid_t v = queue.front();
      queue.pop_front();
      for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1] && w < target; ++e) {
        const vid_t u = g.adjncy[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(u)] != -1) continue;
        part[static_cast<std::size_t>(u)] = static_cast<vid_t>(p);
        w += g.vwgt[static_cast<std::size_t>(u)];
        ++assigned;
        queue.push_back(u);
      }
      // If the frontier died but the target is unmet, jump to another
      // unassigned vertex (disconnected graphs).
      if (queue.empty() && w < target) {
        for (vid_t v2 = 0; v2 < n; ++v2) {
          if (part[static_cast<std::size_t>(v2)] == -1) {
            part[static_cast<std::size_t>(v2)] = static_cast<vid_t>(p);
            w += g.vwgt[static_cast<std::size_t>(v2)];
            ++assigned;
            queue.push_back(v2);
            break;
          }
        }
      }
    }
  }
  // Remainder goes to the last part.
  for (vid_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = static_cast<vid_t>(k - 1);
    }
  }
  fix_empty_parts(g, k, part);
}

void refine_edgecut(const PGraph& g, int k, double eps, int passes, Rng& rng,
                    std::vector<vid_t>& part) {
  const vid_t n = g.n;
  std::vector<std::int64_t> pw(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v) {
    pw[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.vwgt[static_cast<std::size_t>(v)];
  }
  const double max_allowed = (1.0 + eps) * static_cast<double>(g.total_vwgt) / k;

  std::vector<std::int64_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<vid_t> touched;
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (vid_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
    }
    for (vid_t idx = 0; idx < n; ++idx) {
      const vid_t v = order[static_cast<std::size_t>(idx)];
      const vid_t pv = part[static_cast<std::size_t>(v)];
      touched.clear();
      bool boundary = false;
      for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const vid_t pu =
            part[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])];
        if (conn[static_cast<std::size_t>(pu)] == 0) touched.push_back(pu);
        conn[static_cast<std::size_t>(pu)] += g.adjwgt[static_cast<std::size_t>(e)];
        if (pu != pv) boundary = true;
      }
      if (boundary) {
        const std::int64_t internal = conn[static_cast<std::size_t>(pv)];
        vid_t best = -1;
        std::int64_t best_gain = 0;
        for (vid_t pu : touched) {
          if (pu == pv) continue;
          const std::int64_t gain = conn[static_cast<std::size_t>(pu)] - internal;
          const bool fits =
              static_cast<double>(pw[static_cast<std::size_t>(pu)] +
                                  g.vwgt[static_cast<std::size_t>(v)]) <= max_allowed;
          const bool keeps_src =
              pw[static_cast<std::size_t>(pv)] - g.vwgt[static_cast<std::size_t>(v)] > 0;
          if (gain > best_gain && fits && keeps_src) {
            best_gain = gain;
            best = pu;
          }
        }
        if (best != -1) {
          pw[static_cast<std::size_t>(pv)] -= g.vwgt[static_cast<std::size_t>(v)];
          pw[static_cast<std::size_t>(best)] += g.vwgt[static_cast<std::size_t>(v)];
          part[static_cast<std::size_t>(v)] = best;
          improved = true;
        }
      }
      for (vid_t pu : touched) conn[static_cast<std::size_t>(pu)] = 0;
    }
    if (!improved) break;
  }
}

std::vector<vid_t> multilevel_edgecut(const CsrMatrix& adj, int k,
                                      const PartitionerOptions& opts) {
  Rng rng(opts.seed);
  PGraph base = build_base_graph(adj, opts.balance_edges);

  // V-cycle: coarsen...
  std::vector<PGraph> levels;
  std::vector<std::vector<vid_t>> cmaps;
  levels.push_back(std::move(base));
  const vid_t stop_n =
      std::max<vid_t>(static_cast<vid_t>(k) * opts.coarsen_target_per_part, 64);
  while (levels.back().n > stop_n) {
    std::vector<vid_t> cmap;
    PGraph cg = coarsen_once(levels.back(), rng, cmap);
    if (cg.n > levels.back().n * 9 / 10) break;  // diminishing returns
    levels.push_back(std::move(cg));
    cmaps.push_back(std::move(cmap));
  }

  // ...initial partition on the coarsest...
  std::vector<vid_t> part;
  initial_partition(levels.back(), k, rng, part);
  refine_edgecut(levels.back(), k, opts.epsilon, opts.refine_passes, rng, part);

  // ...and uncoarsen with refinement at every level.
  for (std::size_t lvl = cmaps.size(); lvl-- > 0;) {
    const auto& cmap = cmaps[lvl];
    std::vector<vid_t> fine(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      fine[v] = part[static_cast<std::size_t>(cmap[v])];
    }
    part = std::move(fine);
    refine_edgecut(levels[lvl], k, opts.epsilon, opts.refine_passes, rng, part);
  }
  fix_empty_parts(levels.front(), k, part);
  return part;
}

}  // namespace partition_detail

Partition EdgeCutPartitioner::partition(const CsrMatrix& adj, int k) const {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(), "adjacency must be square");
  SAGNN_REQUIRE(k >= 1 && k <= adj.n_rows(), "k must be in [1, n]");
  Partition out;
  out.k = k;
  if (k == 1) {
    out.part_of.assign(static_cast<std::size_t>(adj.n_rows()), 0);
    return out;
  }
  out.part_of = partition_detail::multilevel_edgecut(adj, k, opts_);
  out.validate();
  return out;
}

namespace {
// Canonical short name "metis" (how the paper refers to it); the class's
// descriptive name() is an accepted alias so both spellings resolve.
const PartitionerRegistration kRegisterEdgeCut{
    "metis", {"edgecut", "edgecut(metis-like)"}, [](const PartitionerOptions& opts) {
      return std::make_unique<EdgeCutPartitioner>(opts);
    }};
}  // namespace

}  // namespace sagnn
