// Multilevel k-way edge-cut partitioner (METIS analogue):
//   1. coarsen by heavy-edge matching until the graph is small,
//   2. initial partition by greedy region growing,
//   3. uncoarsen with greedy boundary (FM-style) refinement per level.
//
// Matches the role METIS plays in the paper: minimizes *total* edgecut with
// a computational-balance constraint, and is oblivious to per-part maximum
// communication volume — the blind spot GvbPartitioner fixes.
//
// The coarsening and scan phases run on the shared thread pool
// (common/parallel.hpp). Determinism contract: for a fixed seed the
// partition is identical at EVERY thread count — matching is
// round-synchronous propose–accept with hash-derived edge tie-breaks (no
// sequential visit order), contraction tasks own disjoint coarse rows, and
// the refinement move loop stays sequential over a boundary set that is
// computed in parallel but ordered by vertex id.

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/parallel.hpp"
#include "partition/partition.hpp"
#include "partition/partitioner_registry.hpp"
#include "partition/refine_detail.hpp"

namespace sagnn {

namespace partition_detail {

namespace {

/// SplitMix64 finalizer: the per-edge tie-break hash of the matching. A
/// pure function of (seed, endpoint pair), so every thread layout sees the
/// same total order on edges.
inline std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t edge_hash(std::uint64_t seed, vid_t a, vid_t b) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return mix64(seed ^ (lo * 0x9e3779b97f4a7c15ull + hi + 1));
}

}  // namespace

PGraph build_base_graph(const CsrMatrix& adj, bool balance_edges) {
  PGraph g;
  g.n = adj.n_rows();
  g.xadj.assign(static_cast<std::size_t>(g.n) + 1, 0);
  g.vwgt.assign(static_cast<std::size_t>(g.n), 1);
  // Count non-self edges per row (parallel; disjoint slots)...
  std::vector<eid_t> cnt(static_cast<std::size_t>(g.n), 0);
  parallel_for(0, g.n, parallel_grain(g.n), [&](std::int64_t b, std::int64_t e) {
    for (vid_t v = static_cast<vid_t>(b); v < static_cast<vid_t>(e); ++v) {
      eid_t c = 0;
      for (vid_t u : adj.row_cols(v)) {
        if (u != v) ++c;
      }
      cnt[static_cast<std::size_t>(v)] = c;
      if (balance_edges) g.vwgt[static_cast<std::size_t>(v)] = 1 + c;
    }
  });
  // ...sequential prefix sum...
  for (vid_t v = 0; v < g.n; ++v) {
    g.xadj[static_cast<std::size_t>(v) + 1] =
        g.xadj[static_cast<std::size_t>(v)] + cnt[static_cast<std::size_t>(v)];
  }
  g.adjncy.resize(static_cast<std::size_t>(g.xadj.back()));
  g.adjwgt.assign(static_cast<std::size_t>(g.xadj.back()), 1);
  // ...and parallel fill into each row's own span.
  parallel_for(0, g.n, parallel_grain(g.n), [&](std::int64_t b, std::int64_t e) {
    for (vid_t v = static_cast<vid_t>(b); v < static_cast<vid_t>(e); ++v) {
      eid_t out = g.xadj[static_cast<std::size_t>(v)];
      for (vid_t u : adj.row_cols(v)) {
        if (u != v) g.adjncy[static_cast<std::size_t>(out++)] = u;
      }
    }
  });
  g.total_vwgt = parallel_reduce(
      0, g.n, parallel_grain(g.n), std::int64_t{0},
      [&](std::int64_t b, std::int64_t e) {
        std::int64_t acc = 0;
        for (std::int64_t v = b; v < e; ++v) acc += g.vwgt[static_cast<std::size_t>(v)];
        return acc;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  return g;
}

// Round-synchronous heavy-edge matching (parallel handshake): each round,
// every unmatched vertex proposes to its best unmatched neighbor under the
// total edge order (weight, edge_hash, neighbor id); mutual proposals
// match. The globally best eligible edge is always mutual, so every round
// makes progress; hash tie-breaks make the expected round count
// logarithmic. The outcome is a pure function of (graph, seed).
// Returns the coarse graph and writes the fine->coarse map.
PGraph coarsen_once(const PGraph& g, std::uint64_t seed, std::vector<vid_t>& cmap) {
  const vid_t n = g.n;
  const std::int64_t grain = parallel_grain(n);
  std::vector<vid_t> match(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> propose(static_cast<std::size_t>(n), -1);
  const int max_rounds = 32;
  for (int round = 0; round < max_rounds; ++round) {
    // Propose phase: reads `match` (frozen this round), writes own slot.
    parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
      for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
        if (match[static_cast<std::size_t>(v)] != -1) {
          propose[static_cast<std::size_t>(v)] = -1;
          continue;
        }
        vid_t best = -1;
        std::int64_t best_w = -1;
        std::uint64_t best_h = 0;
        for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
          const vid_t u = g.adjncy[static_cast<std::size_t>(e)];
          if (u == v || match[static_cast<std::size_t>(u)] != -1) continue;
          const std::int64_t w = g.adjwgt[static_cast<std::size_t>(e)];
          if (w < best_w) continue;
          const std::uint64_t h = edge_hash(seed, v, u);
          if (w > best_w || h > best_h || (h == best_h && u > best)) {
            best_w = w;
            best_h = h;
            best = u;
          }
        }
        propose[static_cast<std::size_t>(v)] = best;
      }
    });
    // Accept phase: v matches u iff the proposals are mutual. Both
    // endpoints detect the handshake independently and write only their
    // own match slot — race-free and schedule-independent.
    const std::int64_t matched = parallel_reduce(
        0, n, grain, std::int64_t{0},
        [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t acc = 0;
          for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
            const vid_t u = propose[static_cast<std::size_t>(v)];
            if (u != -1 && propose[static_cast<std::size_t>(u)] == v) {
              match[static_cast<std::size_t>(v)] = u;
              ++acc;
            }
          }
          return acc;
        },
        [](std::int64_t x, std::int64_t y) { return x + y; });
    if (matched == 0) break;
  }
  // Leftovers (no unmatched neighbor, or round cap) stay single.
  parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
    for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
      if (match[static_cast<std::size_t>(v)] == -1) {
        match[static_cast<std::size_t>(v)] = v;
      }
    }
  });

  // Assign coarse ids (sequential scan: O(n), order defines the ids) and
  // record the one or two fine members of each coarse vertex.
  cmap.assign(static_cast<std::size_t>(n), -1);
  std::vector<vid_t> rep1, rep2;
  rep1.reserve(static_cast<std::size_t>(n) / 2 + 1);
  rep2.reserve(static_cast<std::size_t>(n) / 2 + 1);
  vid_t nc = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (cmap[static_cast<std::size_t>(v)] != -1) continue;
    const vid_t u = match[static_cast<std::size_t>(v)];
    cmap[static_cast<std::size_t>(v)] = nc;
    cmap[static_cast<std::size_t>(u)] = nc;
    rep1.push_back(v);
    rep2.push_back(u);
    ++nc;
  }

  // Build the coarse graph: sum vertex weights; merge parallel edges.
  // Contraction is parallel over coarse vertices — each task merges the
  // (at most two) member adjacency lists of its own coarse rows with a
  // sort+combine on a task-local buffer.
  PGraph cg;
  cg.n = nc;
  cg.vwgt.assign(static_cast<std::size_t>(nc), 0);
  cg.total_vwgt = g.total_vwgt;
  std::vector<std::vector<std::pair<vid_t, std::int64_t>>> rows(
      static_cast<std::size_t>(nc));
  const std::int64_t cgrain = parallel_grain(nc);
  parallel_for(0, nc, cgrain, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<std::pair<vid_t, std::int64_t>> buf;
    for (vid_t c = static_cast<vid_t>(lo); c < static_cast<vid_t>(hi); ++c) {
      const vid_t v = rep1[static_cast<std::size_t>(c)];
      const vid_t u = rep2[static_cast<std::size_t>(c)];
      cg.vwgt[static_cast<std::size_t>(c)] =
          g.vwgt[static_cast<std::size_t>(v)] +
          (u != v ? g.vwgt[static_cast<std::size_t>(u)] : 0);
      buf.clear();
      const vid_t members[2] = {v, u};
      const int n_members = u == v ? 1 : 2;
      for (int mi = 0; mi < n_members; ++mi) {
        const vid_t member = members[mi];
        for (eid_t e = g.xadj[static_cast<std::size_t>(member)];
             e < g.xadj[static_cast<std::size_t>(member) + 1]; ++e) {
          const vid_t cu =
              cmap[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])];
          if (cu == c) continue;  // contracted edge disappears
          buf.emplace_back(cu, g.adjwgt[static_cast<std::size_t>(e)]);
        }
      }
      std::sort(buf.begin(), buf.end());
      auto& row = rows[static_cast<std::size_t>(c)];
      row.reserve(buf.size());
      for (const auto& [cu, w] : buf) {
        if (!row.empty() && row.back().first == cu) {
          row.back().second += w;
        } else {
          row.emplace_back(cu, w);
        }
      }
    }
  });
  cg.xadj.assign(static_cast<std::size_t>(nc) + 1, 0);
  for (vid_t c = 0; c < nc; ++c) {
    cg.xadj[static_cast<std::size_t>(c) + 1] =
        cg.xadj[static_cast<std::size_t>(c)] +
        static_cast<eid_t>(rows[static_cast<std::size_t>(c)].size());
  }
  cg.adjncy.resize(static_cast<std::size_t>(cg.xadj.back()));
  cg.adjwgt.resize(static_cast<std::size_t>(cg.xadj.back()));
  parallel_for(0, nc, cgrain, [&](std::int64_t lo, std::int64_t hi) {
    for (vid_t c = static_cast<vid_t>(lo); c < static_cast<vid_t>(hi); ++c) {
      eid_t out = cg.xadj[static_cast<std::size_t>(c)];
      for (const auto& [cu, w] : rows[static_cast<std::size_t>(c)]) {
        cg.adjncy[static_cast<std::size_t>(out)] = cu;
        cg.adjwgt[static_cast<std::size_t>(out)] = w;
        ++out;
      }
    }
  });
  return cg;
}

void fix_empty_parts(const PGraph& g, int k, std::vector<vid_t>& part) {
  std::vector<std::vector<vid_t>> members(static_cast<std::size_t>(k));
  for (vid_t v = 0; v < g.n; ++v) {
    members[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])].push_back(v);
  }
  for (int p = 0; p < k; ++p) {
    if (!members[static_cast<std::size_t>(p)].empty()) continue;
    // Steal a vertex from the currently largest part.
    int donor = 0;
    for (int q = 1; q < k; ++q) {
      if (members[static_cast<std::size_t>(q)].size() >
          members[static_cast<std::size_t>(donor)].size()) {
        donor = q;
      }
    }
    SAGNN_CHECK(members[static_cast<std::size_t>(donor)].size() > 1);
    const vid_t v = members[static_cast<std::size_t>(donor)].back();
    members[static_cast<std::size_t>(donor)].pop_back();
    members[static_cast<std::size_t>(p)].push_back(v);
    part[static_cast<std::size_t>(v)] = static_cast<vid_t>(p);
  }
}

// Greedy graph-growing initial partition on the coarsest graph. Runs on the
// smallest level only, so it stays sequential (and rng-order dependent,
// which is fine: the draw sequence is independent of the thread count).
void initial_partition(const PGraph& g, int k, Rng& rng, std::vector<vid_t>& part) {
  const vid_t n = g.n;
  part.assign(static_cast<std::size_t>(n), -1);
  const std::int64_t target = g.total_vwgt / k;
  vid_t assigned = 0;
  for (int p = 0; p < k - 1 && assigned < n; ++p) {
    // Seed: a random unassigned vertex.
    vid_t seed = -1;
    for (int tries = 0; tries < 32 && seed == -1; ++tries) {
      const auto cand =
          static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (part[static_cast<std::size_t>(cand)] == -1) seed = cand;
    }
    if (seed == -1) {
      for (vid_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          seed = v;
          break;
        }
      }
    }
    // BFS-grow until the weight target is met.
    std::int64_t w = 0;
    std::deque<vid_t> queue{seed};
    part[static_cast<std::size_t>(seed)] = static_cast<vid_t>(p);
    w += g.vwgt[static_cast<std::size_t>(seed)];
    ++assigned;
    while (!queue.empty() && w < target && assigned < n) {
      const vid_t v = queue.front();
      queue.pop_front();
      for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1] && w < target; ++e) {
        const vid_t u = g.adjncy[static_cast<std::size_t>(e)];
        if (part[static_cast<std::size_t>(u)] != -1) continue;
        part[static_cast<std::size_t>(u)] = static_cast<vid_t>(p);
        w += g.vwgt[static_cast<std::size_t>(u)];
        ++assigned;
        queue.push_back(u);
      }
      // If the frontier died but the target is unmet, jump to another
      // unassigned vertex (disconnected graphs).
      if (queue.empty() && w < target) {
        for (vid_t v2 = 0; v2 < n; ++v2) {
          if (part[static_cast<std::size_t>(v2)] == -1) {
            part[static_cast<std::size_t>(v2)] = static_cast<vid_t>(p);
            w += g.vwgt[static_cast<std::size_t>(v2)];
            ++assigned;
            queue.push_back(v2);
            break;
          }
        }
      }
    }
  }
  // Remainder goes to the last part.
  for (vid_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == -1) {
      part[static_cast<std::size_t>(v)] = static_cast<vid_t>(k - 1);
    }
  }
  fix_empty_parts(g, k, part);
}

void refine_edgecut(const PGraph& g, int k, double eps, int passes, Rng& rng,
                    std::vector<vid_t>& part) {
  const vid_t n = g.n;
  const std::int64_t grain = parallel_grain(n);
  std::vector<std::int64_t> pw = parallel_reduce(
      0, n, grain, std::vector<std::int64_t>(static_cast<std::size_t>(k), 0),
      [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::int64_t> acc(static_cast<std::size_t>(k), 0);
        for (std::int64_t v = lo; v < hi; ++v) {
          acc[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
              g.vwgt[static_cast<std::size_t>(v)];
        }
        return acc;
      },
      [k](std::vector<std::int64_t> x, const std::vector<std::int64_t>& y) {
        for (int p = 0; p < k; ++p) {
          x[static_cast<std::size_t>(p)] += y[static_cast<std::size_t>(p)];
        }
        return x;
      });
  const double max_allowed = (1.0 + eps) * static_cast<double>(g.total_vwgt) / k;

  std::vector<std::int64_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<vid_t> touched;
  std::vector<std::uint8_t> is_boundary(static_cast<std::size_t>(n), 0);
  std::vector<vid_t> boundary;

  for (int pass = 0; pass < passes; ++pass) {
    // Gain/edge-cut candidate evaluation is the scan half of the pass:
    // find the boundary vertices in parallel (only they can move). The
    // move loop itself stays sequential over an id-ordered, seed-shuffled
    // boundary list, so the outcome cannot depend on the thread count.
    parallel_for(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
      for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
        const vid_t pv = part[static_cast<std::size_t>(v)];
        std::uint8_t b = 0;
        for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
          const auto u = static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)]);
          if (part[u] != pv) {
            b = 1;
            break;
          }
        }
        is_boundary[static_cast<std::size_t>(v)] = b;
      }
    });
    boundary.clear();
    for (vid_t v = 0; v < n; ++v) {
      if (is_boundary[static_cast<std::size_t>(v)]) boundary.push_back(v);
    }
    if (boundary.empty()) break;
    for (std::size_t i = boundary.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
      std::swap(boundary[i], boundary[j]);
    }

    bool improved = false;
    for (const vid_t v : boundary) {
      const vid_t pv = part[static_cast<std::size_t>(v)];
      touched.clear();
      bool still_boundary = false;
      for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const vid_t pu =
            part[static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)])];
        if (conn[static_cast<std::size_t>(pu)] == 0) touched.push_back(pu);
        conn[static_cast<std::size_t>(pu)] += g.adjwgt[static_cast<std::size_t>(e)];
        if (pu != pv) still_boundary = true;
      }
      if (still_boundary) {
        const std::int64_t internal = conn[static_cast<std::size_t>(pv)];
        vid_t best = -1;
        std::int64_t best_gain = 0;
        for (vid_t pu : touched) {
          if (pu == pv) continue;
          const std::int64_t gain = conn[static_cast<std::size_t>(pu)] - internal;
          const bool fits =
              static_cast<double>(pw[static_cast<std::size_t>(pu)] +
                                  g.vwgt[static_cast<std::size_t>(v)]) <= max_allowed;
          const bool keeps_src =
              pw[static_cast<std::size_t>(pv)] - g.vwgt[static_cast<std::size_t>(v)] > 0;
          if (gain > best_gain && fits && keeps_src) {
            best_gain = gain;
            best = pu;
          }
        }
        if (best != -1) {
          pw[static_cast<std::size_t>(pv)] -= g.vwgt[static_cast<std::size_t>(v)];
          pw[static_cast<std::size_t>(best)] += g.vwgt[static_cast<std::size_t>(v)];
          part[static_cast<std::size_t>(v)] = best;
          improved = true;
        }
      }
      for (vid_t pu : touched) conn[static_cast<std::size_t>(pu)] = 0;
    }
    if (!improved) break;
  }
}

std::vector<vid_t> multilevel_edgecut(const CsrMatrix& adj, int k,
                                      const PartitionerOptions& opts) {
  Rng rng(opts.seed);
  PGraph base = build_base_graph(adj, opts.balance_edges);

  // V-cycle: coarsen... (one rng draw per level seeds the matching hashes;
  // the draw count never depends on the thread count)
  std::vector<PGraph> levels;
  std::vector<std::vector<vid_t>> cmaps;
  levels.push_back(std::move(base));
  const vid_t stop_n =
      std::max<vid_t>(static_cast<vid_t>(k) * opts.coarsen_target_per_part, 64);
  while (levels.back().n > stop_n) {
    std::vector<vid_t> cmap;
    const std::uint64_t level_seed = rng.next();
    PGraph cg = coarsen_once(levels.back(), level_seed, cmap);
    if (cg.n > levels.back().n * 9 / 10) break;  // diminishing returns
    levels.push_back(std::move(cg));
    cmaps.push_back(std::move(cmap));
  }

  // ...initial partition on the coarsest...
  std::vector<vid_t> part;
  initial_partition(levels.back(), k, rng, part);
  refine_edgecut(levels.back(), k, opts.epsilon, opts.refine_passes, rng, part);

  // ...and uncoarsen with refinement at every level.
  for (std::size_t lvl = cmaps.size(); lvl-- > 0;) {
    const auto& cmap = cmaps[lvl];
    std::vector<vid_t> fine(cmap.size());
    const auto n_fine = static_cast<std::int64_t>(cmap.size());
    parallel_for(0, n_fine, parallel_grain(n_fine),
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t v = lo; v < hi; ++v) {
                     const auto coarse =
                         static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)]);
                     fine[static_cast<std::size_t>(v)] = part[coarse];
                   }
                 });
    part = std::move(fine);
    refine_edgecut(levels[lvl], k, opts.epsilon, opts.refine_passes, rng, part);
  }
  fix_empty_parts(levels.front(), k, part);
  return part;
}

}  // namespace partition_detail

Partition EdgeCutPartitioner::partition(const CsrMatrix& adj, int k) const {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(), "adjacency must be square");
  SAGNN_REQUIRE(k >= 1 && k <= adj.n_rows(), "k must be in [1, n]");
  Partition out;
  out.k = k;
  if (k == 1) {
    out.part_of.assign(static_cast<std::size_t>(adj.n_rows()), 0);
    return out;
  }
  out.part_of = partition_detail::multilevel_edgecut(adj, k, opts_);
  out.validate();
  return out;
}

namespace {
// Canonical short name "metis" (how the paper refers to it); the class's
// descriptive name() is an accepted alias so both spellings resolve.
const PartitionerRegistration kRegisterEdgeCut{
    "metis", {"edgecut", "edgecut(metis-like)"}, [](const PartitionerOptions& opts) {
      return std::make_unique<EdgeCutPartitioner>(opts);
    }};
}  // namespace

}  // namespace sagnn
