#pragma once
// Self-registering partitioner catalog. Each partitioner translation unit
// registers its factory under a short canonical name ("block", "random",
// "metis", "gvb") plus its descriptive Partitioner::name() as an alias, so
// both spellings resolve. make_partitioner() in partition.hpp is a thin
// wrapper over this registry.

#include "common/registry.hpp"
#include "partition/partition.hpp"

namespace sagnn {

using PartitionerRegistry = NamedRegistry<Partitioner, const PartitionerOptions&>;

/// The process-wide registry (Meyers singleton; safe to use from static
/// registrars in other translation units).
PartitionerRegistry& partitioner_registry();

/// Static-initialization helper: declare one per partitioner .cpp.
struct PartitionerRegistration {
  PartitionerRegistration(const std::string& canonical,
                          std::vector<std::string> aliases,
                          PartitionerRegistry::Factory factory) {
    partitioner_registry().add(canonical, std::move(aliases), std::move(factory));
  }
};

}  // namespace sagnn
