#include "partition/partitioner_registry.hpp"

namespace sagnn {

PartitionerRegistry& partitioner_registry() {
  static PartitionerRegistry registry("partitioner");
  return registry;
}

}  // namespace sagnn
