#include <numeric>

#include "partition/partition.hpp"
#include "partition/partitioner_registry.hpp"
#include "sparse/blocks.hpp"

namespace sagnn {

Partition BlockPartitioner::partition(const CsrMatrix& adj, int k) const {
  SAGNN_REQUIRE(k >= 1 && k <= adj.n_rows(), "k must be in [1, n]");
  Partition part;
  part.k = k;
  part.part_of.resize(static_cast<std::size_t>(adj.n_rows()));
  const auto ranges = uniform_block_ranges(adj.n_rows(), k);
  for (int p = 0; p < k; ++p) {
    for (vid_t v = ranges[static_cast<std::size_t>(p)].begin;
         v < ranges[static_cast<std::size_t>(p)].end; ++v) {
      part.part_of[static_cast<std::size_t>(v)] = static_cast<vid_t>(p);
    }
  }
  return part;
}

Partition RandomPartitioner::partition(const CsrMatrix& adj, int k) const {
  SAGNN_REQUIRE(k >= 1 && k <= adj.n_rows(), "k must be in [1, n]");
  const vid_t n = adj.n_rows();
  // Random permutation, then equal-size contiguous blocks: good vertex-count
  // balance, no communication awareness (paper §5's strawman).
  std::vector<vid_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed_);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  Partition part;
  part.k = k;
  part.part_of.resize(static_cast<std::size_t>(n));
  const auto ranges = uniform_block_ranges(n, k);
  for (int p = 0; p < k; ++p) {
    for (vid_t i = ranges[static_cast<std::size_t>(p)].begin;
         i < ranges[static_cast<std::size_t>(p)].end; ++i) {
      part.part_of[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
          static_cast<vid_t>(p);
    }
  }
  return part;
}

namespace {
const PartitionerRegistration kRegisterBlock{
    "block", {}, [](const PartitionerOptions&) {
      return std::make_unique<BlockPartitioner>();
    }};
const PartitionerRegistration kRegisterRandom{
    "random", {}, [](const PartitionerOptions& opts) {
      return std::make_unique<RandomPartitioner>(opts.seed);
    }};
}  // namespace

}  // namespace sagnn
