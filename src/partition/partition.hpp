#pragma once
// Graph partitioning interfaces (paper §5).
//
// A Partition assigns every vertex to one of k parts. Training relabels
// vertices so each part is a contiguous block of rows (paper §6.3.1); the
// relabeling permutation is derived here.
//
// Partitioners provided:
//   BlockPartitioner     n/k contiguous rows per part (no reordering) —
//                        the plain 1D block distribution.
//   RandomPartitioner    random permutation then block distribution — the
//                        "good load balance, bad communication" baseline.
//   EdgeCutPartitioner   from-scratch multilevel partitioner minimizing
//                        total edgecut (METIS analogue).
//   GvbPartitioner       volume-balancing partitioner minimizing maximum
//                        per-part send volume AND total volume
//                        (Graph-VB analogue, Acer et al. [2]).

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

struct Partition {
  int k = 1;
  std::vector<vid_t> part_of;  ///< vertex -> part id in [0, k)

  vid_t n() const { return static_cast<vid_t>(part_of.size()); }

  /// Number of vertices in each part.
  std::vector<vid_t> part_sizes() const;

  /// Permutation perm[old_id] = new_id making parts contiguous and
  /// preserving relative order within each part.
  std::vector<vid_t> relabel_permutation() const;

  /// Throws unless every part id is in range and every part is non-empty
  /// (k <= n assumed).
  void validate() const;
};

/// Common knobs for the optimizing partitioners.
struct PartitionerOptions {
  double epsilon = 0.10;     ///< load-balance tolerance: w(part) <= (1+eps)*avg
  bool balance_edges = true; ///< balance nnz (compute load) instead of vertices
  int refine_passes = 8;     ///< max refinement passes per level
  std::uint64_t seed = 0x5a5a5a5aull;
  vid_t coarsen_target_per_part = 30;  ///< stop coarsening near k*this vertices

  bool operator==(const PartitionerOptions&) const = default;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::string name() const = 0;
  /// Partition the symmetric adjacency `adj` into k parts.
  virtual Partition partition(const CsrMatrix& adj, int k) const = 0;
};

class BlockPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "block"; }
  Partition partition(const CsrMatrix& adj, int k) const override;
};

class RandomPartitioner final : public Partitioner {
 public:
  explicit RandomPartitioner(std::uint64_t seed = 0xabcdef12ull) : seed_(seed) {}
  std::string name() const override { return "random"; }
  Partition partition(const CsrMatrix& adj, int k) const override;

 private:
  std::uint64_t seed_;
};

class EdgeCutPartitioner final : public Partitioner {
 public:
  explicit EdgeCutPartitioner(PartitionerOptions opts = {}) : opts_(opts) {}
  std::string name() const override { return "edgecut(metis-like)"; }
  Partition partition(const CsrMatrix& adj, int k) const override;
  const PartitionerOptions& options() const { return opts_; }

 private:
  PartitionerOptions opts_;
};

class GvbPartitioner final : public Partitioner {
 public:
  explicit GvbPartitioner(PartitionerOptions opts = {}) : opts_(opts) {}
  std::string name() const override { return "gvb(volume-balancing)"; }
  Partition partition(const CsrMatrix& adj, int k) const override;
  const PartitionerOptions& options() const { return opts_; }

 private:
  PartitionerOptions opts_;
};

/// Factory by registry name: "block" | "random" | "metis" | "gvb" (each
/// partitioner's descriptive name() is accepted as an alias, e.g.
/// "edgecut(metis-like)" for "metis"). Unknown names raise
/// std::invalid_argument listing the registered names. New partitioners
/// self-register via partition/partitioner_registry.hpp — no switch to edit.
std::unique_ptr<Partitioner> make_partitioner(const std::string& name,
                                              PartitionerOptions opts = {});

}  // namespace sagnn
