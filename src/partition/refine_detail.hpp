#pragma once
// Internal shared structures of the partitioners (multilevel.cpp, gvb.cpp).
// Not part of the public API.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "partition/partition.hpp"
#include "sparse/csr.hpp"

namespace sagnn::partition_detail {

/// Weighted graph in adjacency-array form used inside the partitioners.
struct PGraph {
  vid_t n = 0;
  std::vector<eid_t> xadj;
  std::vector<vid_t> adjncy;
  std::vector<std::int64_t> adjwgt;
  std::vector<std::int64_t> vwgt;
  std::int64_t total_vwgt = 0;
};

PGraph build_base_graph(const CsrMatrix& adj, bool balance_edges);
/// One round-synchronous propose–accept matching + contraction step.
/// Deterministic for a fixed `seed` independent of the thread count.
PGraph coarsen_once(const PGraph& g, std::uint64_t seed, std::vector<vid_t>& cmap);
void initial_partition(const PGraph& g, int k, Rng& rng, std::vector<vid_t>& part);
void refine_edgecut(const PGraph& g, int k, double eps, int passes, Rng& rng,
                    std::vector<vid_t>& part);
void fix_empty_parts(const PGraph& g, int k, std::vector<vid_t>& part);
std::vector<vid_t> multilevel_edgecut(const CsrMatrix& adj, int k,
                                      const PartitionerOptions& opts);

}  // namespace sagnn::partition_detail
