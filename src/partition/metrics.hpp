#pragma once
// Communication-volume model of a partitioned SpMM (paper §5, Table 2).
//
// For the sparsity-aware 1D algorithm, part j must send the H-row of vertex
// v ∈ j to part i exactly when v has a neighbor in i (the column segment of
// v in block A^T_{i·} is nonzero). These metrics are *predictions* from the
// matrix and partition alone; tests cross-check them against the traffic the
// simulated cluster actually records.

#include <vector>

#include "partition/partition.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

struct VolumeStats {
  int k = 1;
  /// vol[j*k + i]: number of H rows part j sends to part i (i != j; the
  /// diagonal is zero by construction).
  std::vector<std::uint64_t> pair_rows;
  eid_t edgecut = 0;  ///< number of undirected edges crossing parts

  std::uint64_t send_rows(int j) const;
  std::uint64_t recv_rows(int i) const;
  std::uint64_t total_rows() const;
  std::uint64_t max_send_rows() const;
  double avg_send_rows() const;
  /// (max_send / avg_send - 1) * 100, the paper's "load imbalance %".
  double send_imbalance_percent() const;

  /// Volumes in bytes for feature width f (H rows are f real_t values).
  double total_megabytes(vid_t f) const;
  double avg_send_megabytes(vid_t f) const;
  double max_send_megabytes(vid_t f) const;
};

/// Compute the sparsity-aware volume model for `partition` of symmetric
/// adjacency `adj`.
VolumeStats compute_volume_stats(const CsrMatrix& adj, const Partition& partition);

/// Computational balance: max over parts of (nnz in part) / (avg nnz).
double compute_load_imbalance(const CsrMatrix& adj, const Partition& partition);

}  // namespace sagnn
