// Volume-balancing partitioner (Graph-VB analogue, Acer et al. [2]).
//
// Starts from the multilevel edge-cut partition and then refines directly on
// the *communication volume* metrics of sparsity-aware SpMM:
//
//   send contribution of vertex v in part a  =  |D(v) \ {a}|
//     where D(v) = set of parts containing a neighbor of v
//   send_vol(a) = sum of contributions of its vertices
//
// The refinement performs greedy vertex moves that lexicographically
// minimize (max_p send_vol(p), total volume) under the same compute-balance
// constraint as the edge-cut phase. All volume bookkeeping is maintained
// incrementally via per-vertex neighbor-part counters, so a move costs
// O(deg(v) * log deg) instead of a full recount.

#include <algorithm>
#include <numeric>

#include "common/parallel.hpp"
#include "partition/partition.hpp"
#include "partition/partitioner_registry.hpp"
#include "partition/refine_detail.hpp"

namespace sagnn {

namespace {

using partition_detail::PGraph;

/// Per-vertex counts of neighbors by part, kept sorted by part id.
class NeighborPartCounts {
 public:
  void build(const PGraph& g, const std::vector<vid_t>& part) {
    counts_.assign(static_cast<std::size_t>(g.n), {});
    // Each vertex owns its own counter vector — the scan parallelizes over
    // disjoint slots (identical result at every thread count).
    parallel_for(0, g.n, parallel_grain(g.n), [&](std::int64_t lo, std::int64_t hi) {
      for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
        auto& c = counts_[static_cast<std::size_t>(v)];
        for (eid_t e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
          const auto u = static_cast<std::size_t>(g.adjncy[static_cast<std::size_t>(e)]);
          bump(c, part[u], 1);
        }
      }
    });
  }

  /// Number of distinct neighbor parts excluding `excl`.
  int distinct_excluding(vid_t v, vid_t excl) const {
    const auto& c = counts_[static_cast<std::size_t>(v)];
    int n = static_cast<int>(c.size());
    for (const auto& [p, cnt] : c) {
      if (p == excl) {
        --n;
        break;
      }
    }
    return n;
  }

  int count_of(vid_t v, vid_t p) const {
    const auto& c = counts_[static_cast<std::size_t>(v)];
    auto it = std::lower_bound(c.begin(), c.end(), p,
                               [](const auto& e, vid_t key) { return e.first < key; });
    return (it != c.end() && it->first == p) ? it->second : 0;
  }

  /// Distinct parts among v's neighbors (D(v)).
  std::vector<vid_t> parts_of(vid_t v) const {
    std::vector<vid_t> out;
    out.reserve(counts_[static_cast<std::size_t>(v)].size());
    for (const auto& [p, cnt] : counts_[static_cast<std::size_t>(v)]) {
      out.push_back(p);
    }
    return out;
  }

  /// Adjust count of part p for vertex v by delta; returns the new count.
  int bump(vid_t v, vid_t p, int delta) {
    return bump(counts_[static_cast<std::size_t>(v)], p, delta);
  }

 private:
  static int bump(std::vector<std::pair<vid_t, int>>& c, vid_t p, int delta) {
    auto it = std::lower_bound(c.begin(), c.end(), p,
                               [](const auto& e, vid_t key) { return e.first < key; });
    if (it == c.end() || it->first != p) {
      SAGNN_CHECK(delta > 0);
      it = c.insert(it, {p, 0});
    }
    it->second += delta;
    SAGNN_CHECK(it->second >= 0);
    const int result = it->second;
    if (result == 0) c.erase(it);
    return result;
  }

  std::vector<std::vector<std::pair<vid_t, int>>> counts_;
};

class VolumeRefiner {
 public:
  VolumeRefiner(const PGraph& g, int k, double eps, std::vector<vid_t>& part)
      : g_(g), k_(k), part_(part) {
    counts_.build(g, part);
    // Initial per-part weight/volume totals: private per-chunk accumulators
    // merged with exact integer sums — thread-count invariant.
    struct Vols {
      std::vector<std::int64_t> pw, send, recv;
    };
    const std::size_t ks = static_cast<std::size_t>(k);
    Vols vols = parallel_reduce(
        0, g.n, parallel_grain(g.n),
        Vols{std::vector<std::int64_t>(ks, 0), std::vector<std::int64_t>(ks, 0),
             std::vector<std::int64_t>(ks, 0)},
        [&](std::int64_t lo, std::int64_t hi) {
          Vols acc{std::vector<std::int64_t>(ks, 0), std::vector<std::int64_t>(ks, 0),
                   std::vector<std::int64_t>(ks, 0)};
          for (vid_t v = static_cast<vid_t>(lo); v < static_cast<vid_t>(hi); ++v) {
            const vid_t a = part[static_cast<std::size_t>(v)];
            acc.pw[static_cast<std::size_t>(a)] += g.vwgt[static_cast<std::size_t>(v)];
            acc.send[static_cast<std::size_t>(a)] += counts_.distinct_excluding(v, a);
            // v's H row is received once by each distinct neighbor part != a.
            for (vid_t d : counts_.parts_of(v)) {
              if (d != a) acc.recv[static_cast<std::size_t>(d)] += 1;
            }
          }
          return acc;
        },
        [ks](Vols x, const Vols& y) {
          for (std::size_t p = 0; p < ks; ++p) {
            x.pw[p] += y.pw[p];
            x.send[p] += y.send[p];
            x.recv[p] += y.recv[p];
          }
          return x;
        });
    pw_ = std::move(vols.pw);
    send_vol_ = std::move(vols.send);
    recv_vol_ = std::move(vols.recv);
    max_allowed_ = (1.0 + eps) * static_cast<double>(g.total_vwgt) / k;
  }

  /// Bottleneck volume: max over parts of max(send, recv) — the quantity
  /// that serializes the all-to-all on the bottleneck process.
  std::int64_t bottleneck() const {
    std::int64_t m = 0;
    for (int p = 0; p < k_; ++p) {
      m = std::max({m, send_vol_[static_cast<std::size_t>(p)],
                    recv_vol_[static_cast<std::size_t>(p)]});
    }
    return m;
  }
  std::int64_t total_send() const {
    return std::accumulate(send_vol_.begin(), send_vol_.end(), std::int64_t{0});
  }

  /// Part achieving the bottleneck volume (send or recv side).
  int bottleneck_part() const {
    int best = 0;
    std::int64_t best_v = -1;
    for (int p = 0; p < k_; ++p) {
      const std::int64_t v = std::max(send_vol_[static_cast<std::size_t>(p)],
                                      recv_vol_[static_cast<std::size_t>(p)]);
      if (v > best_v) {
        best_v = v;
        best = p;
      }
    }
    return best;
  }

  /// (new bottleneck, new total) objective if v moved to part b; does not
  /// mutate state.
  std::pair<std::int64_t, std::int64_t> evaluate_move(vid_t v, vid_t b) {
    const vid_t a = part_[static_cast<std::size_t>(v)];
    scratch_send_.assign(static_cast<std::size_t>(k_), 0);
    scratch_recv_.assign(static_cast<std::size_t>(k_), 0);
    apply_deltas(v, a, b, scratch_send_, scratch_recv_);
    std::int64_t new_max = 0, new_total = 0;
    for (int p = 0; p < k_; ++p) {
      const std::int64_t s =
          send_vol_[static_cast<std::size_t>(p)] + scratch_send_[static_cast<std::size_t>(p)];
      const std::int64_t r =
          recv_vol_[static_cast<std::size_t>(p)] + scratch_recv_[static_cast<std::size_t>(p)];
      new_max = std::max({new_max, s, r});
      new_total += s;
    }
    return {new_max, new_total};
  }

  bool balance_ok(vid_t v, vid_t b) const {
    const vid_t a = part_[static_cast<std::size_t>(v)];
    const std::int64_t w = g_.vwgt[static_cast<std::size_t>(v)];
    return static_cast<double>(pw_[static_cast<std::size_t>(b)] + w) <= max_allowed_ &&
           pw_[static_cast<std::size_t>(a)] - w > 0;
  }

  void commit_move(vid_t v, vid_t b) {
    const vid_t a = part_[static_cast<std::size_t>(v)];
    scratch_send_.assign(static_cast<std::size_t>(k_), 0);
    scratch_recv_.assign(static_cast<std::size_t>(k_), 0);
    apply_deltas(v, a, b, scratch_send_, scratch_recv_);
    for (int p = 0; p < k_; ++p) {
      send_vol_[static_cast<std::size_t>(p)] += scratch_send_[static_cast<std::size_t>(p)];
      recv_vol_[static_cast<std::size_t>(p)] += scratch_recv_[static_cast<std::size_t>(p)];
    }
    // Update neighbor counters (v's neighbors see v change parts).
    for (eid_t e = g_.xadj[static_cast<std::size_t>(v)];
         e < g_.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const vid_t u = g_.adjncy[static_cast<std::size_t>(e)];
      counts_.bump(u, a, -1);
      counts_.bump(u, b, +1);
    }
    pw_[static_cast<std::size_t>(a)] -= g_.vwgt[static_cast<std::size_t>(v)];
    pw_[static_cast<std::size_t>(b)] += g_.vwgt[static_cast<std::size_t>(v)];
    part_[static_cast<std::size_t>(v)] = b;
  }

  /// Distinct neighbor parts of v (candidate destinations).
  std::vector<vid_t> candidate_parts(vid_t v) const {
    std::vector<vid_t> parts;
    for (eid_t e = g_.xadj[static_cast<std::size_t>(v)];
         e < g_.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const vid_t p =
          part_[static_cast<std::size_t>(g_.adjncy[static_cast<std::size_t>(e)])];
      if (p != part_[static_cast<std::size_t>(v)] &&
          std::find(parts.begin(), parts.end(), p) == parts.end()) {
        parts.push_back(p);
      }
    }
    return parts;
  }

  const std::vector<std::int64_t>& send_vol() const { return send_vol_; }

 private:
  /// Fill per-part send/recv volume changes of moving v from a to b.
  /// Does not mutate the refiner state.
  void apply_deltas(vid_t v, vid_t a, vid_t b, std::vector<std::int64_t>& dsend,
                    std::vector<std::int64_t>& drecv) {
    // v's own contribution migrates and is re-evaluated against the new
    // home part (D(v) itself is unchanged by v's move). Each destination
    // part's receive count follows v's destination set.
    dsend[static_cast<std::size_t>(a)] -= counts_.distinct_excluding(v, a);
    dsend[static_cast<std::size_t>(b)] += counts_.distinct_excluding(v, b);
    for (vid_t d : counts_.parts_of(v)) {
      if (d != a) drecv[static_cast<std::size_t>(d)] -= 1;
      if (d != b) drecv[static_cast<std::size_t>(d)] += 1;
    }
    // Each neighbor u in part c may gain/lose a destination.
    for (eid_t e = g_.xadj[static_cast<std::size_t>(v)];
         e < g_.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const vid_t u = g_.adjncy[static_cast<std::size_t>(e)];
      const vid_t c = part_[static_cast<std::size_t>(u)];
      if (counts_.count_of(u, a) == 1 && a != c) {
        dsend[static_cast<std::size_t>(c)] -= 1;  // u stops being sent to a
        drecv[static_cast<std::size_t>(a)] -= 1;
      }
      if (counts_.count_of(u, b) == 0 && b != c) {
        dsend[static_cast<std::size_t>(c)] += 1;  // u starts being sent to b
        drecv[static_cast<std::size_t>(b)] += 1;
      }
    }
  }

  const PGraph& g_;
  int k_;
  std::vector<vid_t>& part_;
  NeighborPartCounts counts_;
  std::vector<std::int64_t> pw_;
  std::vector<std::int64_t> send_vol_;
  std::vector<std::int64_t> recv_vol_;
  std::vector<std::int64_t> scratch_send_;
  std::vector<std::int64_t> scratch_recv_;
  double max_allowed_ = 0;
};

}  // namespace

Partition GvbPartitioner::partition(const CsrMatrix& adj, int k) const {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(), "adjacency must be square");
  SAGNN_REQUIRE(k >= 1 && k <= adj.n_rows(), "k must be in [1, n]");
  Partition out;
  out.k = k;
  if (k == 1) {
    out.part_of.assign(static_cast<std::size_t>(adj.n_rows()), 0);
    return out;
  }

  // Phase 1: total-volume-oriented multilevel edge-cut partition. A
  // slightly looser balance than requested leaves headroom for the volume
  // refinement (the paper notes GVB trades some compute balance away).
  PartitionerOptions ec_opts = opts_;
  out.part_of = partition_detail::multilevel_edgecut(adj, k, ec_opts);

  // Phase 2: greedy (max_send, total) refinement on the fine graph.
  PGraph g = partition_detail::build_base_graph(adj, opts_.balance_edges);
  VolumeRefiner refiner(g, k, opts_.epsilon * 1.5, out.part_of);
  Rng rng(opts_.seed ^ 0x9e3779b9ull);

  std::vector<vid_t> order(static_cast<std::size_t>(g.n));
  std::iota(order.begin(), order.end(), 0);

  const int max_passes = std::max(4, opts_.refine_passes * 2);
  for (int pass = 0; pass < max_passes; ++pass) {
    bool moved = false;
    // Pass A: attack the bottleneck part — move its boundary vertices
    // wherever (bottleneck, total) improves lexicographically.
    const int bottleneck = refiner.bottleneck_part();
    for (vid_t i = g.n - 1; i > 0; --i) {
      const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
    }
    for (vid_t idx = 0; idx < g.n; ++idx) {
      const vid_t v = order[static_cast<std::size_t>(idx)];
      const vid_t pv = out.part_of[static_cast<std::size_t>(v)];
      const bool in_bottleneck = pv == bottleneck;
      const auto cands = refiner.candidate_parts(v);
      if (cands.empty()) continue;
      const std::int64_t cur_max = refiner.bottleneck();
      const std::int64_t cur_total = refiner.total_send();
      vid_t best = -1;
      std::pair<std::int64_t, std::int64_t> best_obj{cur_max, cur_total};
      for (vid_t b : cands) {
        if (!refiner.balance_ok(v, b)) continue;
        const auto obj = refiner.evaluate_move(v, b);
        // Bottleneck vertices may trade total volume for max volume; other
        // vertices must improve total without worsening the max.
        const bool improves =
            in_bottleneck ? obj < best_obj
                          : (obj.first <= best_obj.first && obj.second < best_obj.second);
        if (improves) {
          best_obj = obj;
          best = b;
        }
      }
      if (best != -1) {
        refiner.commit_move(v, best);
        moved = true;
      }
    }
    if (!moved) break;
  }

  partition_detail::fix_empty_parts(g, k, out.part_of);
  out.validate();
  return out;
}

namespace {
const PartitionerRegistration kRegisterGvb{
    "gvb", {"gvb(volume-balancing)"}, [](const PartitionerOptions& opts) {
      return std::make_unique<GvbPartitioner>(opts);
    }};
}  // namespace

}  // namespace sagnn
