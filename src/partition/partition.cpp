#include "partition/partition.hpp"

#include <numeric>

#include "partition/partitioner_registry.hpp"

namespace sagnn {

std::vector<vid_t> Partition::part_sizes() const {
  std::vector<vid_t> sizes(static_cast<std::size_t>(k), 0);
  for (vid_t p : part_of) ++sizes[static_cast<std::size_t>(p)];
  return sizes;
}

std::vector<vid_t> Partition::relabel_permutation() const {
  const auto sizes = part_sizes();
  std::vector<vid_t> offset(static_cast<std::size_t>(k), 0);
  for (int p = 1; p < k; ++p) {
    offset[static_cast<std::size_t>(p)] =
        offset[static_cast<std::size_t>(p - 1)] + sizes[static_cast<std::size_t>(p - 1)];
  }
  std::vector<vid_t> perm(part_of.size());
  for (std::size_t v = 0; v < part_of.size(); ++v) {
    perm[v] = offset[static_cast<std::size_t>(part_of[v])]++;
  }
  return perm;
}

void Partition::validate() const {
  SAGNN_REQUIRE(k >= 1, "partition must have at least one part");
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (vid_t p : part_of) {
    SAGNN_REQUIRE(p >= 0 && p < k, "part id out of range");
    seen[static_cast<std::size_t>(p)] = true;
  }
  if (static_cast<vid_t>(part_of.size()) >= k) {
    for (int p = 0; p < k; ++p) {
      SAGNN_REQUIRE(seen[static_cast<std::size_t>(p)],
                    "partition has an empty part");
    }
  }
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name,
                                              PartitionerOptions opts) {
  // Throws std::invalid_argument listing the registered names when `name`
  // matches neither a canonical name nor an alias.
  return partitioner_registry().create(name, opts);
}

}  // namespace sagnn
