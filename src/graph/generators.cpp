#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/csr.hpp"

namespace sagnn {

namespace {

/// Apply a random relabeling to all entries of a COO (in place); returns
/// the permutation used (perm[old] = new).
std::vector<vid_t> scramble(CooMatrix& coo, Rng& rng) {
  const vid_t n = coo.n_rows();
  std::vector<vid_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  for (auto& e : coo.entries()) {
    e.row = perm[static_cast<std::size_t>(e.row)];
    e.col = perm[static_cast<std::size_t>(e.col)];
  }
  return perm;
}

void finalize_simple_symmetric(CooMatrix& coo) {
  coo.drop_diagonal();
  // Set all values to 1 before coalescing so duplicate edges collapse to
  // weight-1 edges rather than accumulating counts.
  for (auto& e : coo.entries()) e.val = real_t{1};
  coo.coalesce();
  // coalesce sums duplicates; reset to unit weights.
  for (auto& e : coo.entries()) e.val = real_t{1};
  coo.symmetrize();
  for (auto& e : coo.entries()) e.val = real_t{1};
}

}  // namespace

CooMatrix erdos_renyi(vid_t n, eid_t m, Rng& rng) {
  SAGNN_REQUIRE(n > 1, "need at least 2 vertices");
  CooMatrix coo(n, n);
  for (eid_t k = 0; k < m; ++k) {
    const auto u = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) coo.add(u, v, real_t{1});
  }
  finalize_simple_symmetric(coo);
  return coo;
}

CooMatrix rmat(int scale, int edge_factor, Rng& rng, RmatParams params) {
  SAGNN_REQUIRE(scale >= 1 && scale < 31, "rmat scale out of range");
  SAGNN_REQUIRE(edge_factor >= 1, "edge_factor must be positive");
  const vid_t n = vid_t{1} << scale;
  const eid_t m = static_cast<eid_t>(n) * edge_factor;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  SAGNN_REQUIRE(abc < 1.0, "rmat probabilities must sum below 1");

  CooMatrix coo(n, n);
  for (eid_t k = 0; k < m; ++k) {
    vid_t row = 0, col = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < params.a) {
        // top-left quadrant
      } else if (r < ab) {
        col |= vid_t{1} << bit;
      } else if (r < abc) {
        row |= vid_t{1} << bit;
      } else {
        row |= vid_t{1} << bit;
        col |= vid_t{1} << bit;
      }
    }
    if (row != col) coo.add(row, col, real_t{1});
  }
  if (params.scramble_ids) scramble(coo, rng);
  finalize_simple_symmetric(coo);
  return coo;
}

CsrMatrix rmat_csr(int scale, int edge_factor, Rng& rng, RmatParams params) {
  SAGNN_REQUIRE(scale >= 1 && scale < 31, "rmat scale out of range");
  SAGNN_REQUIRE(edge_factor >= 1, "edge_factor must be positive");
  const vid_t n = vid_t{1} << scale;
  const eid_t m = static_cast<eid_t>(n) * edge_factor;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  SAGNN_REQUIRE(abc < 1.0, "rmat probabilities must sum below 1");

  // One quadrant descent == `scale` next_double draws, exactly as rmat().
  auto draw_edge = [&](vid_t& row, vid_t& col) {
    row = 0;
    col = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < params.a) {
        // top-left quadrant
      } else if (r < ab) {
        col |= vid_t{1} << bit;
      } else if (r < abc) {
        row |= vid_t{1} << bit;
      } else {
        row |= vid_t{1} << bit;
        col |= vid_t{1} << bit;
      }
    }
  };

  // Pass 1: per-vertex arc counts (both directions, duplicates included —
  // dedup happens in place after the fill). Snapshot the generator first so
  // pass 2 can replay the identical edge stream.
  const auto edge_state = rng.save_state();
  std::vector<eid_t> count(static_cast<std::size_t>(n), 0);
  for (eid_t k = 0; k < m; ++k) {
    vid_t row, col;
    draw_edge(row, col);
    if (row != col) {
      ++count[static_cast<std::size_t>(row)];
      ++count[static_cast<std::size_t>(col)];
    }
  }

  // The COO path draws the scramble permutation AFTER the edge stream; the
  // RNG is at exactly that point now, so the permutation matches bit for
  // bit. A bijection maps degrees with it: remap the counts instead of
  // recounting.
  std::vector<vid_t> perm;
  if (params.scramble_ids) {
    perm.resize(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    for (vid_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<vid_t>(
          rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
  }
  const auto final_state = rng.save_state();

  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t id = params.scramble_ids ? perm[static_cast<std::size_t>(v)] : v;
    row_ptr[static_cast<std::size_t>(id) + 1] = count[static_cast<std::size_t>(v)];
  }
  for (vid_t v = 0; v < n; ++v) {
    row_ptr[static_cast<std::size_t>(v) + 1] += row_ptr[static_cast<std::size_t>(v)];
  }
  count.clear();
  count.shrink_to_fit();

  // Pass 2: replay the edge stream and scatter both arc directions straight
  // into their rows.
  std::vector<vid_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<eid_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  rng.load_state(edge_state);
  for (eid_t k = 0; k < m; ++k) {
    vid_t row, col;
    draw_edge(row, col);
    if (row != col) {
      const vid_t u =
          params.scramble_ids ? perm[static_cast<std::size_t>(row)] : row;
      const vid_t v =
          params.scramble_ids ? perm[static_cast<std::size_t>(col)] : col;
      col_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
      col_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
    }
  }
  rng.load_state(final_state);

  // Sort + dedup each row in place, compacting as we go. The write cursor
  // never passes the read cursor (dedup only shrinks rows), so no extra
  // buffer is needed.
  eid_t write = 0;
  eid_t row_begin = 0;
  for (vid_t r = 0; r < n; ++r) {
    const eid_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];
    auto* first = col_idx.data() + row_begin;
    auto* last = col_idx.data() + row_end;
    std::sort(first, last);
    last = std::unique(first, last);
    for (auto* p = first; p != last; ++p) {
      col_idx[static_cast<std::size_t>(write++)] = *p;
    }
    row_begin = row_end;
    row_ptr[static_cast<std::size_t>(r) + 1] = write;
  }
  col_idx.resize(static_cast<std::size_t>(write));
  col_idx.shrink_to_fit();
  std::vector<real_t> vals(static_cast<std::size_t>(write), real_t{1});
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

CsrMatrix powerlaw_csr(vid_t n, int avg_degree, double exponent, Rng& rng,
                       bool scramble_ids) {
  SAGNN_REQUIRE(n > 1, "need at least 2 vertices");
  SAGNN_REQUIRE(avg_degree >= 1, "avg_degree must be positive");
  SAGNN_REQUIRE(exponent >= 0.0, "exponent must be >= 0");
  const eid_t m = static_cast<eid_t>(n) * avg_degree / 2;
  // The inverse-CDF table is a pure function of (exponent, n): building it
  // consumes no RNG draws, so it can sit outside the snapshotted region.
  const ZipfSampler zipf(exponent, static_cast<std::uint64_t>(n));

  // Each endpoint pair costs exactly two next_double draws (ZipfSampler
  // documents one uniform per sample), which is what lets pass 2 replay
  // pass 1's stream bit for bit from the snapshot.
  auto draw_edge = [&](vid_t& row, vid_t& col) {
    row = static_cast<vid_t>(zipf.sample(rng));
    col = static_cast<vid_t>(zipf.sample(rng));
  };

  // Pass 1: per-vertex arc counts (both directions, duplicates included —
  // dedup happens in place after the fill).
  const auto edge_state = rng.save_state();
  std::vector<eid_t> count(static_cast<std::size_t>(n), 0);
  for (eid_t k = 0; k < m; ++k) {
    vid_t row, col;
    draw_edge(row, col);
    if (row != col) {
      ++count[static_cast<std::size_t>(row)];
      ++count[static_cast<std::size_t>(col)];
    }
  }

  // Scramble permutation drawn after the edge stream, exactly as the COO
  // generators order their draws; remap counts through the bijection.
  std::vector<vid_t> perm;
  if (scramble_ids) {
    perm.resize(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    for (vid_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<vid_t>(
          rng.next_below(static_cast<std::uint64_t>(i) + 1));
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(j)]);
    }
  }
  const auto final_state = rng.save_state();

  std::vector<eid_t> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t id = scramble_ids ? perm[static_cast<std::size_t>(v)] : v;
    row_ptr[static_cast<std::size_t>(id) + 1] = count[static_cast<std::size_t>(v)];
  }
  for (vid_t v = 0; v < n; ++v) {
    row_ptr[static_cast<std::size_t>(v) + 1] += row_ptr[static_cast<std::size_t>(v)];
  }
  count.clear();
  count.shrink_to_fit();

  // Pass 2: replay the stream, scatter both arc directions into their rows.
  std::vector<vid_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<eid_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  rng.load_state(edge_state);
  for (eid_t k = 0; k < m; ++k) {
    vid_t row, col;
    draw_edge(row, col);
    if (row != col) {
      const vid_t u =
          scramble_ids ? perm[static_cast<std::size_t>(row)] : row;
      const vid_t v =
          scramble_ids ? perm[static_cast<std::size_t>(col)] : col;
      col_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] = v;
      col_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = u;
    }
  }
  rng.load_state(final_state);

  // Sort + dedup each row in place, compacting as we go (same invariant as
  // rmat_csr: the write cursor never passes the read cursor).
  eid_t write = 0;
  eid_t row_begin = 0;
  for (vid_t r = 0; r < n; ++r) {
    const eid_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];
    auto* first = col_idx.data() + row_begin;
    auto* last = col_idx.data() + row_end;
    std::sort(first, last);
    last = std::unique(first, last);
    for (auto* p = first; p != last; ++p) {
      col_idx[static_cast<std::size_t>(write++)] = *p;
    }
    row_begin = row_end;
    row_ptr[static_cast<std::size_t>(r) + 1] = write;
  }
  col_idx.resize(static_cast<std::size_t>(write));
  col_idx.shrink_to_fit();
  std::vector<real_t> vals(static_cast<std::size_t>(write), real_t{1});
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(vals));
}

CooMatrix clustered_graph(vid_t n, vid_t cluster_size, int intra_degree,
                          double inter_fraction, Rng& rng, bool scramble_ids,
                          std::vector<vid_t>* cluster_of) {
  SAGNN_REQUIRE(cluster_size > 1 && n >= cluster_size, "bad cluster size");
  SAGNN_REQUIRE(inter_fraction >= 0.0 && inter_fraction <= 1.0,
                "inter_fraction must be a probability");
  const vid_t n_clusters = ceil_div(n, cluster_size);
  CooMatrix coo(n, n);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t cl = v / cluster_size;
    const vid_t cl_begin = cl * cluster_size;
    const vid_t cl_end = std::min(n, cl_begin + cluster_size);
    const vid_t cl_sz = cl_end - cl_begin;
    for (int d = 0; d < intra_degree; ++d) {
      const auto u = cl_begin + static_cast<vid_t>(
          rng.next_below(static_cast<std::uint64_t>(cl_sz)));
      if (u != v) coo.add(v, u, real_t{1});
    }
    if (n_clusters > 1 && rng.bernoulli(inter_fraction)) {
      // One edge to a vertex in the next cluster on the ring.
      const vid_t ncl = (cl + 1) % n_clusters;
      const vid_t ncl_begin = ncl * cluster_size;
      const vid_t ncl_end = std::min(n, ncl_begin + cluster_size);
      if (ncl_end > ncl_begin) {
        const auto u = ncl_begin + static_cast<vid_t>(rng.next_below(
            static_cast<std::uint64_t>(ncl_end - ncl_begin)));
        if (u != v) coo.add(v, u, real_t{1});
      }
    }
  }
  std::vector<vid_t> perm;
  if (scramble_ids) perm = scramble(coo, rng);
  if (cluster_of != nullptr) {
    cluster_of->assign(static_cast<std::size_t>(n), 0);
    for (vid_t v = 0; v < n; ++v) {
      const vid_t new_id = scramble_ids ? perm[static_cast<std::size_t>(v)] : v;
      (*cluster_of)[static_cast<std::size_t>(new_id)] = v / cluster_size;
    }
  }
  finalize_simple_symmetric(coo);
  return coo;
}

CooMatrix hybrid_community_graph(vid_t n, vid_t cluster_size, int intra_degree,
                                 int overlay_edge_factor, Rng& rng,
                                 bool scramble_ids,
                                 std::vector<vid_t>* cluster_of) {
  SAGNN_REQUIRE(cluster_size > 1 && n >= cluster_size, "bad cluster size");
  SAGNN_REQUIRE(overlay_edge_factor >= 0, "overlay factor must be >= 0");
  CooMatrix coo(n, n);

  // Clustered base: strong intra-cluster connectivity in natural order.
  for (vid_t v = 0; v < n; ++v) {
    const vid_t cl = v / cluster_size;
    const vid_t cl_begin = cl * cluster_size;
    const vid_t cl_end = std::min(n, cl_begin + cluster_size);
    const vid_t cl_sz = cl_end - cl_begin;
    for (int d = 0; d < intra_degree; ++d) {
      const auto u = cl_begin + static_cast<vid_t>(
          rng.next_below(static_cast<std::uint64_t>(cl_sz)));
      if (u != v) coo.add(v, u, real_t{1});
    }
  }

  // Skewed overlay: R-MAT endpoint pairs over the same id space. Bits
  // beyond n are masked by rejection. Skew above the Graph500 defaults:
  // co-purchase / citation hubs are extreme, and the hub rows are exactly
  // what drives the max-send-volume imbalance (Table 2).
  int scale = 0;
  while ((vid_t{1} << scale) < n) ++scale;
  const eid_t overlay = static_cast<eid_t>(n) * overlay_edge_factor;
  RmatParams params;
  params.a = 0.65;
  params.b = 0.15;
  params.c = 0.15;
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (eid_t k = 0; k < overlay; ++k) {
    vid_t row = 0, col = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < params.a) {
      } else if (r < ab) {
        col |= vid_t{1} << bit;
      } else if (r < abc) {
        row |= vid_t{1} << bit;
      } else {
        row |= vid_t{1} << bit;
        col |= vid_t{1} << bit;
      }
    }
    if (row < n && col < n && row != col) coo.add(row, col, real_t{1});
  }

  std::vector<vid_t> perm;
  if (scramble_ids) perm = scramble(coo, rng);
  if (cluster_of != nullptr) {
    cluster_of->assign(static_cast<std::size_t>(n), 0);
    for (vid_t v = 0; v < n; ++v) {
      const vid_t new_id = scramble_ids ? perm[static_cast<std::size_t>(v)] : v;
      (*cluster_of)[static_cast<std::size_t>(new_id)] = v / cluster_size;
    }
  }
  finalize_simple_symmetric(coo);
  return coo;
}

CooMatrix ring_of_cliques(int k, int s) {
  SAGNN_REQUIRE(k >= 1 && s >= 2, "need k >= 1 cliques of size >= 2");
  const vid_t n = static_cast<vid_t>(k) * s;
  CooMatrix coo(n, n);
  for (int c = 0; c < k; ++c) {
    const vid_t base = static_cast<vid_t>(c) * s;
    for (vid_t i = 0; i < s; ++i) {
      for (vid_t j = i + 1; j < s; ++j) coo.add(base + i, base + j, real_t{1});
    }
    if (k > 1) {
      const vid_t next_base = static_cast<vid_t>((c + 1) % k) * s;
      coo.add(base + s - 1, next_base, real_t{1});
    }
  }
  finalize_simple_symmetric(coo);
  return coo;
}

CooMatrix grid_graph(vid_t rows, vid_t cols) {
  SAGNN_REQUIRE(rows >= 1 && cols >= 1, "grid must be non-empty");
  const vid_t n = rows * cols;
  CooMatrix coo(n, n);
  auto id = [cols](vid_t r, vid_t c) { return r * cols + c; };
  for (vid_t r = 0; r < rows; ++r) {
    for (vid_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) coo.add(id(r, c), id(r, c + 1), real_t{1});
      if (r + 1 < rows) coo.add(id(r, c), id(r + 1, c), real_t{1});
    }
  }
  finalize_simple_symmetric(coo);
  return coo;
}

DegreeStats degree_stats(const CsrMatrix& a) {
  DegreeStats st;
  if (a.n_rows() == 0) return st;
  st.min = static_cast<vid_t>(a.row_nnz(0));
  for (vid_t r = 0; r < a.n_rows(); ++r) {
    const auto d = static_cast<vid_t>(a.row_nnz(r));
    st.max = std::max(st.max, d);
    st.min = std::min(st.min, d);
  }
  st.avg = static_cast<double>(a.nnz()) / a.n_rows();
  return st;
}

}  // namespace sagnn
