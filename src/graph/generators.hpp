#pragma once
// Synthetic graph generators. These provide scaled analogues of the paper's
// four datasets (Table 3), parameterized to reproduce the structural
// properties the evaluation depends on:
//   * R-MAT          — skewed/irregular degree structure (Reddit, Amazon,
//                      Papers analogues); high communication imbalance.
//   * Erdős–Rényi    — unstructured baseline for tests.
//   * clustered      — strong community structure with light inter-cluster
//                      coupling (Protein analogue); a good partitioner can
//                      drive the edgecut to nearly zero, which is what makes
//                      SA+GVB 14x faster at high process counts in Fig. 3.
//
// All generators return symmetric simple graphs (no self loops) as COO and
// are deterministic in the provided RNG.

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

/// G(n, m): sample m undirected edges uniformly (with replacement, then
/// dedup), symmetrize, drop self-loops.
CooMatrix erdos_renyi(vid_t n, eid_t m, Rng& rng);

/// R-MAT parameters; defaults are the Graph500 values (a=0.57, b=c=0.19).
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  bool scramble_ids = true;  ///< random vertex relabeling (kills locality)
};

/// R-MAT graph with 2^scale vertices and edge_factor * 2^scale undirected
/// edges (before dedup). Output is symmetrized and loop-free.
CooMatrix rmat(int scale, int edge_factor, Rng& rng, RmatParams params = {});

/// The scale-up path of the same generator: identical graph, CSR built
/// directly — no COO intermediate, no coalesce/symmetrize copies. The edge
/// stream is generated twice from a snapshotted RNG state (count pass +
/// fill pass), both directions land straight in their rows, and rows are
/// sorted + deduplicated in place, so peak memory is ~8 bytes per stored
/// arc instead of the COO path's ~3x that. Use this for the
/// millions-of-edges sims (serving/wall-clock benches); for a fixed
/// (seed, scale, edge_factor, params) the result is BITWISE identical to
/// CsrMatrix::from_coo(rmat(...)) and the RNG ends in the same state
/// (tests/test_generators.cpp pins both).
CsrMatrix rmat_csr(int scale, int edge_factor, Rng& rng, RmatParams params = {});

/// Power-law ("scale-free") graph streamed straight into CSR, the second
/// large-sim generator next to rmat_csr. n*avg_degree/2 endpoint pairs are
/// drawn i.i.d. from Zipf(exponent) over the vertex ids (low ids are the
/// hubs before scrambling), symmetrized, deduplicated, and loop-free. Uses
/// the same two-pass streamed construction as rmat_csr — every Zipf draw
/// consumes exactly one uniform (inverse-CDF table), so the count pass and
/// the fill pass replay the identical edge stream from a snapshotted RNG
/// state and peak memory is ~8 bytes per stored arc. Deterministic in
/// (n, avg_degree, exponent, seed): bitwise identical output and final RNG
/// state regardless of thread count (construction is single-threaded by
/// design) or how often it is re-run.
CsrMatrix powerlaw_csr(vid_t n, int avg_degree, double exponent, Rng& rng,
                       bool scramble_ids = true);

/// Clustered ("protein-like") graph: n vertices in n/cluster_size clusters;
/// each vertex draws ~intra_degree neighbors inside its cluster and with
/// probability inter_fraction one neighbor from an adjacent cluster.
/// Vertex ids are scrambled so that a plain block distribution does NOT see
/// the structure — the partitioner must recover it. If `cluster_of` is
/// non-null it receives each (possibly scrambled) vertex's home cluster id,
/// usable as community labels.
CooMatrix clustered_graph(vid_t n, vid_t cluster_size, int intra_degree,
                          double inter_fraction, Rng& rng,
                          bool scramble_ids = true,
                          std::vector<vid_t>* cluster_of = nullptr);

/// Hybrid community + hub graph ("amazon-like"): a clustered base graph
/// (partitioner-recoverable structure) overlaid with R-MAT edges (skewed
/// hub degrees). This combination reproduces the two properties the
/// paper's Amazon evaluation rests on simultaneously: graph partitioning
/// helps a lot, AND the per-part send volumes are badly imbalanced because
/// hub rows must be sent to many parts (Table 2's rising imbalance).
/// `overlay_edge_factor` R-MAT edges per vertex are added on top of the
/// clustered edges before a single consistent scramble.
CooMatrix hybrid_community_graph(vid_t n, vid_t cluster_size, int intra_degree,
                                 int overlay_edge_factor, Rng& rng,
                                 bool scramble_ids = true,
                                 std::vector<vid_t>* cluster_of = nullptr);

/// Ring of cliques: k cliques of size s, consecutive cliques joined by one
/// edge. Deterministic; used by partitioner unit tests (known optimum).
CooMatrix ring_of_cliques(int k, int s);

/// 2D grid graph (rows x cols, 4-neighborhood). Deterministic; regular.
CooMatrix grid_graph(vid_t rows, vid_t cols);

/// Degree statistics of a symmetric CSR (for Table 3-style reporting).
struct DegreeStats {
  double avg = 0;
  vid_t max = 0;
  vid_t min = 0;
};
DegreeStats degree_stats(const CsrMatrix& a);

}  // namespace sagnn
