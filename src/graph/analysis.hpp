#pragma once
// Structural graph analysis used by dataset reporting, partitioner
// diagnostics, and tests: connected components, degree distributions, and
// clustering-quality measures that explain why a graph is (or is not)
// partitionable — the property separating the paper's Protein results from
// its Amazon results.

#include <vector>

#include "sparse/csr.hpp"

namespace sagnn {

/// Connected components of a symmetric graph: returns the component id of
/// each vertex (ids are dense, in discovery order) via BFS.
std::vector<vid_t> connected_components(const CsrMatrix& adj);

/// Number of distinct values in a component labeling.
vid_t count_components(const std::vector<vid_t>& components);

/// log2-bucketed degree histogram: bucket[i] counts vertices whose degree
/// d satisfies 2^i <= d < 2^(i+1); bucket 0 also counts degree-0/1.
std::vector<eid_t> degree_histogram_log2(const CsrMatrix& adj);

/// Degree skew: max degree divided by average degree. ~1 for regular
/// graphs; large for hub-heavy graphs (the Table 2 imbalance driver).
double degree_skew(const CsrMatrix& adj);

/// Fraction of edges whose endpoints share a `membership` label — e.g. how
/// much of the graph a partition keeps internal (1 - cut fraction).
double internal_edge_fraction(const CsrMatrix& adj,
                              const std::vector<vid_t>& membership);

}  // namespace sagnn
