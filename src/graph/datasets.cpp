#include "graph/datasets.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace sagnn {

Dataset assemble_dataset(std::string name, CooMatrix adj, vid_t n_features,
                         vid_t n_classes, std::uint64_t seed,
                         const std::vector<vid_t>* community_labels) {
  Dataset ds;
  ds.name = std::move(name);
  const vid_t n = adj.n_rows();
  Rng rng(seed);

  // GCN preprocessing: Â = D^{-1/2} (A + I) D^{-1/2}.
  adj.add_identity();
  ds.adjacency = CsrMatrix::from_coo(adj);
  ds.adjacency.normalize_symmetric();

  // Labels: either supplied community structure or uniform random.
  ds.n_classes = n_classes;
  if (community_labels != nullptr) {
    SAGNN_REQUIRE(community_labels->size() == static_cast<std::size_t>(n),
                  "community label size mismatch");
    ds.labels = *community_labels;
    for (auto& l : ds.labels) l %= n_classes;
  } else {
    ds.labels.resize(static_cast<std::size_t>(n));
    for (auto& l : ds.labels) {
      l = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n_classes)));
    }
  }

  // Features: a per-class embedding plus noise, so the classification task
  // is learnable and training-loss trajectories are meaningful.
  Rng emb_rng = rng.fork(1);
  Matrix class_emb = Matrix::random_uniform(n_classes, n_features, emb_rng, -1, 1);
  ds.features = Matrix(n, n_features);
  Rng noise_rng = rng.fork(2);
  for (vid_t v = 0; v < n; ++v) {
    const real_t* emb = class_emb.row(ds.labels[static_cast<std::size_t>(v)]);
    real_t* fv = ds.features.row(v);
    for (vid_t j = 0; j < n_features; ++j) {
      fv[j] = emb[j] + real_t{0.5} * noise_rng.normal();
    }
  }

  // 30% of vertices are labeled training vertices (semi-supervised node
  // classification, as in Kipf & Welling).
  ds.train_mask.assign(static_cast<std::size_t>(n), 0);
  Rng mask_rng = rng.fork(3);
  for (auto& m : ds.train_mask) m = mask_rng.bernoulli(0.3) ? 1 : 0;
  return ds;
}

namespace {

/// sim_scale = (paper_n * paper_f) / (sim_n * sim_f); see Dataset::sim_scale.
double scale_vs_paper(double paper_n, double paper_f, const Dataset& ds) {
  return paper_n * paper_f /
         (static_cast<double>(ds.n_vertices()) * ds.n_features());
}

}  // namespace

Dataset make_reddit_sim(DatasetScale scale, std::uint64_t seed) {
  // Reddit: small, very dense (avg degree ~493 in the paper), irregular
  // but with subreddit-style community structure under the skew.
  vid_t n = 0, cluster = 0;
  int intra = 0, overlay = 0;
  vid_t f = 0, classes = 0;
  switch (scale) {
    case DatasetScale::kTiny:
      n = 256; cluster = 32; intra = 4; overlay = 4; f = 16; classes = 8;
      break;
    case DatasetScale::kSmall:
      n = 1024; cluster = 64; intra = 15; overlay = 15; f = 32; classes = 8;
      break;
    case DatasetScale::kDefault:
      n = 4096; cluster = 128; intra = 25; overlay = 20; f = 64; classes = 16;
      break;
  }
  Rng rng(seed);
  std::vector<vid_t> communities;
  CooMatrix adj = hybrid_community_graph(n, cluster, intra, overlay, rng,
                                         /*scramble_ids=*/true, &communities);
  Dataset ds = assemble_dataset("reddit-sim", std::move(adj), f, classes,
                                seed * 31 + 7, &communities);
  ds.sim_scale = scale_vs_paper(232965, 602, ds);
  return ds;
}

Dataset make_amazon_sim(DatasetScale scale, std::uint64_t seed) {
  // Amazon: large, very sparse (avg degree ~16), with BOTH community
  // structure (co-purchase clusters a partitioner can recover) and skewed
  // hub degrees (best-sellers) — the combination behind Table 2's rising
  // communication-volume imbalance.
  vid_t n = 0, cluster = 0;
  int intra = 0, overlay = 0;
  vid_t f = 0, classes = 0;
  switch (scale) {
    case DatasetScale::kTiny:
      n = 512; cluster = 64; intra = 3; overlay = 1; f = 16; classes = 8;
      break;
    case DatasetScale::kSmall:
      n = 4096; cluster = 128; intra = 5; overlay = 2; f = 32; classes = 8;
      break;
    case DatasetScale::kDefault:
      n = 32768; cluster = 256; intra = 5; overlay = 2; f = 32; classes = 12;
      break;
  }
  Rng rng(seed);
  std::vector<vid_t> communities;
  CooMatrix adj = hybrid_community_graph(n, cluster, intra, overlay, rng,
                                         /*scramble_ids=*/true, &communities);
  Dataset ds = assemble_dataset("amazon-sim", std::move(adj), f, classes,
                                seed * 31 + 7, &communities);
  ds.sim_scale = scale_vs_paper(14249639, 300, ds);
  return ds;
}

Dataset make_protein_sim(DatasetScale scale, std::uint64_t seed) {
  // Protein: dense but *regular* — strong cluster structure that a graph
  // partitioner can exploit to near-zero edgecut.
  vid_t n = 0, cluster = 0;
  int intra = 0;
  vid_t f = 0, classes = 0;
  switch (scale) {
    case DatasetScale::kTiny:
      n = 256; cluster = 32; intra = 8; f = 16; classes = 8;
      break;
    case DatasetScale::kSmall:
      n = 4096; cluster = 128; intra = 16; f = 32; classes = 8;
      break;
    case DatasetScale::kDefault:
      n = 16384; cluster = 128; intra = 40; f = 32; classes = 12;
      break;
  }
  Rng rng(seed);
  std::vector<vid_t> communities;
  CooMatrix adj = clustered_graph(n, cluster, intra, /*inter_fraction=*/0.05, rng,
                                  /*scramble_ids=*/true, &communities);
  // Community-aligned labels: neighborhood aggregation reinforces the
  // signal instead of washing it out (and matches how real protein-family
  // labels track graph clusters).
  Dataset ds = assemble_dataset("protein-sim", std::move(adj), f, classes,
                                seed * 31 + 7, &communities);
  ds.sim_scale = scale_vs_paper(8745542, 300, ds);
  return ds;
}

Dataset make_papers_sim(DatasetScale scale, std::uint64_t seed) {
  // Papers: the largest graph; sparse citation-network structure — field
  // communities (partitionable) plus highly-cited hub papers (skew).
  vid_t n = 0, cluster = 0;
  int intra = 0, overlay = 0;
  vid_t f = 0, classes = 0;
  switch (scale) {
    case DatasetScale::kTiny:
      n = 512; cluster = 64; intra = 2; overlay = 1; f = 8; classes = 8;
      break;
    case DatasetScale::kSmall:
      n = 8192; cluster = 256; intra = 4; overlay = 2; f = 16; classes = 8;
      break;
    case DatasetScale::kDefault:
      n = 65536; cluster = 256; intra = 4; overlay = 2; f = 16; classes = 16;
      break;
  }
  Rng rng(seed);
  std::vector<vid_t> communities;
  CooMatrix adj = hybrid_community_graph(n, cluster, intra, overlay, rng,
                                         /*scramble_ids=*/true, &communities);
  Dataset ds = assemble_dataset("papers-sim", std::move(adj), f, classes,
                                seed * 31 + 7, &communities);
  ds.sim_scale = scale_vs_paper(111059956, 128, ds);
  return ds;
}

Dataset make_dataset(const std::string& name, DatasetScale scale,
                     std::uint64_t seed) {
  if (name == "reddit") return make_reddit_sim(scale, seed);
  if (name == "amazon") return make_amazon_sim(scale, seed);
  if (name == "protein") return make_protein_sim(scale, seed);
  if (name == "papers") return make_papers_sim(scale, seed);
  throw Error("unknown dataset: " + name +
              " (expected reddit|amazon|protein|papers)");
}

}  // namespace sagnn
