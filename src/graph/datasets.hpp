#pragma once
// Synthetic analogues of the paper's four datasets (Table 3) plus the
// training inputs GCN needs: the GCN-normalized adjacency matrix
// Â = D^{-1/2}(A+I)D^{-1/2}, a feature matrix H0, integer labels, and a
// train mask.
//
// The real datasets are not redistributable / do not fit this environment,
// so each recipe is a scaled generator configuration that preserves the
// structural regime the paper's evaluation leans on (see DESIGN.md §2):
//
//   Reddit-sim   small & very dense, irregular        (R-MAT, high ef)
//   Amazon-sim   large & very sparse, irregular       (R-MAT, low ef)
//                -> high communication-volume imbalance under METIS-like
//                   partitioning (Table 2 regime)
//   Protein-sim  dense & *regular/clustered*          (clustered generator)
//                -> partitioner reduces edgecut to ~0 (the 14x regime)
//   Papers-sim   largest & sparse                     (R-MAT)
//
// `DatasetScale` shrinks/grows every recipe coherently so tests use tiny
// instances and benches use the default ones.

#include <string>
#include <vector>

#include "dense/matrix.hpp"
#include "sparse/csr.hpp"

namespace sagnn {

struct Dataset {
  std::string name;
  CsrMatrix adjacency;    ///< Â: symmetric, GCN-normalized, with self loops
  Matrix features;        ///< n x f input features H0
  std::vector<vid_t> labels;  ///< one class id per vertex
  vid_t n_classes = 0;
  std::vector<std::uint8_t> train_mask;  ///< 1 = labeled training vertex

  /// How much real (paper-sized) data each simulated vertex stands for:
  /// (paper_n * paper_f) / (sim_n * sim_f). Feed into
  /// CostModel::volume_scale so modeled times reflect the full-size
  /// system's latency/bandwidth balance. 1.0 for non-analogue datasets.
  double sim_scale = 1.0;

  vid_t n_vertices() const { return adjacency.n_rows(); }
  eid_t n_edges() const { return adjacency.nnz(); }
  vid_t n_features() const { return features.n_cols(); }
};

enum class DatasetScale {
  kTiny,     ///< unit/property tests (hundreds of vertices)
  kSmall,    ///< fast integration tests (thousands)
  kDefault,  ///< bench harness (tens of thousands)
};

/// Table-3 analogue recipes.
Dataset make_reddit_sim(DatasetScale scale, std::uint64_t seed = 1);
Dataset make_amazon_sim(DatasetScale scale, std::uint64_t seed = 2);
Dataset make_protein_sim(DatasetScale scale, std::uint64_t seed = 3);
Dataset make_papers_sim(DatasetScale scale, std::uint64_t seed = 4);

/// Lookup by name ("reddit", "amazon", "protein", "papers").
Dataset make_dataset(const std::string& name, DatasetScale scale,
                     std::uint64_t seed = 7);

/// Assemble a Dataset from a raw symmetric adjacency COO: adds self loops,
/// normalizes, synthesizes features/labels. `community_labels`, when
/// provided, makes labels learnable (used by the clustered recipe).
Dataset assemble_dataset(std::string name, CooMatrix adj, vid_t n_features,
                         vid_t n_classes, std::uint64_t seed,
                         const std::vector<vid_t>* community_labels = nullptr);

}  // namespace sagnn
