#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>

#include "graph/generators.hpp"

namespace sagnn {

std::vector<vid_t> connected_components(const CsrMatrix& adj) {
  SAGNN_REQUIRE(adj.n_rows() == adj.n_cols(),
                "connected components need a square adjacency");
  const vid_t n = adj.n_rows();
  std::vector<vid_t> component(static_cast<std::size_t>(n), -1);
  vid_t next_id = 0;
  std::deque<vid_t> queue;
  for (vid_t seed = 0; seed < n; ++seed) {
    if (component[static_cast<std::size_t>(seed)] != -1) continue;
    component[static_cast<std::size_t>(seed)] = next_id;
    queue.push_back(seed);
    while (!queue.empty()) {
      const vid_t v = queue.front();
      queue.pop_front();
      for (vid_t u : adj.row_cols(v)) {
        if (component[static_cast<std::size_t>(u)] == -1) {
          component[static_cast<std::size_t>(u)] = next_id;
          queue.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

vid_t count_components(const std::vector<vid_t>& components) {
  vid_t mx = -1;
  for (vid_t c : components) mx = std::max(mx, c);
  return mx + 1;
}

std::vector<eid_t> degree_histogram_log2(const CsrMatrix& adj) {
  std::vector<eid_t> hist;
  for (vid_t v = 0; v < adj.n_rows(); ++v) {
    const eid_t deg = adj.row_nnz(v);
    int bucket = 0;
    for (eid_t d = deg; d > 1; d >>= 1) ++bucket;
    if (static_cast<std::size_t>(bucket) >= hist.size()) {
      hist.resize(static_cast<std::size_t>(bucket) + 1, 0);
    }
    ++hist[static_cast<std::size_t>(bucket)];
  }
  return hist;
}

double degree_skew(const CsrMatrix& adj) {
  const DegreeStats st = degree_stats(adj);
  return st.avg > 0 ? static_cast<double>(st.max) / st.avg : 0.0;
}

double internal_edge_fraction(const CsrMatrix& adj,
                              const std::vector<vid_t>& membership) {
  SAGNN_REQUIRE(membership.size() == static_cast<std::size_t>(adj.n_rows()),
                "membership size mismatch");
  eid_t internal = 0, total = 0;
  for (vid_t v = 0; v < adj.n_rows(); ++v) {
    for (vid_t u : adj.row_cols(v)) {
      if (u <= v) continue;  // count undirected edges once; skip self loops
      ++total;
      if (membership[static_cast<std::size_t>(v)] ==
          membership[static_cast<std::size_t>(u)]) {
        ++internal;
      }
    }
  }
  return total > 0 ? static_cast<double>(internal) / static_cast<double>(total)
                   : 1.0;
}

}  // namespace sagnn
