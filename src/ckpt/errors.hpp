#pragma once
// Typed error hierarchy of the checkpoint subsystem. Every failure mode of
// reading a snapshot — truncation, corruption, wrong format revision, or a
// configuration that contradicts the checkpoint — throws a distinct type
// naming the section it happened in, so callers can distinguish "retry
// with the right file" from "the file is damaged" without string-matching.

#include <string>

#include "common/types.hpp"

namespace sagnn::ckpt {

/// Base of every checkpoint failure (itself a sagnn::Error, so existing
/// catch sites keep working).
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Bad magic, unsupported version, or a section that is not what the
/// reader expected (wrong name, trailing bytes, missing end marker).
class CheckpointFormatError : public CheckpointError {
 public:
  explicit CheckpointFormatError(const std::string& what)
      : CheckpointError("checkpoint format error: " + what) {}
};

/// The stream ended before the bytes the header promised.
class CheckpointTruncatedError : public CheckpointError {
 public:
  explicit CheckpointTruncatedError(const std::string& section)
      : CheckpointError("checkpoint truncated in section '" + section + "'"),
        section_(section) {}
  const std::string& section() const { return section_; }

 private:
  std::string section_;
};

/// A section's payload does not match its stored CRC32.
class CheckpointCrcError : public CheckpointError {
 public:
  CheckpointCrcError(const std::string& section, std::uint32_t expected,
                     std::uint32_t actual)
      : CheckpointError("checkpoint CRC mismatch in section '" + section +
                        "': stored " + std::to_string(expected) +
                        ", computed " + std::to_string(actual)),
        section_(section) {}
  const std::string& section() const { return section_; }

 private:
  std::string section_;
};

/// The checkpoint is intact but contradicts the restore request: different
/// dataset, different strategy name, incompatible model shape.
class CheckpointMismatchError : public CheckpointError {
 public:
  explicit CheckpointMismatchError(const std::string& what)
      : CheckpointError("checkpoint mismatch: " + what) {}
};

}  // namespace sagnn::ckpt
