#pragma once
// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), table-driven. Used
// as the per-section integrity check of the checkpoint format.

#include <cstddef>
#include <cstdint>

namespace sagnn::ckpt {

/// One-shot CRC32 of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t len);

/// Incremental form: feed `crc` from a previous call (start from 0).
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len);

}  // namespace sagnn::ckpt
