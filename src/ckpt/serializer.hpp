#pragma once
// The checkpoint wire format: a versioned, self-describing, little-endian
// chunked binary stream.
//
//   header   := magic "SAGNCKPT" (8 bytes) | u32 version | u32 byte-order
//               probe 0x01020304 (written little-endian, so a reader on a
//               big-endian host sees 0x04030201 and can reject cleanly)
//   section  := u32 name_len | name bytes | u64 payload_len | payload
//               | u32 crc32(payload)
//   trailer  := section named "end" with empty payload
//
// Sections are written and read in order, but each one carries its own
// name, length, and CRC, so a reader can skip sections it does not know
// and detect exactly which section a corruption or truncation hit.
// All integers are little-endian fixed-width; floats are IEEE-754 bit
// patterns of their fixed width — what makes bit-identical restore a
// well-defined promise.
//
// Serializer buffers one section at a time (begin_section/end_section);
// Deserializer validates the header on construction, then enter_section()
// loads + CRC-checks one section and the typed read_* calls consume it
// (leave_section() asserts nothing is left over). Failures throw the
// typed errors of ckpt/errors.hpp, never UB.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ckpt/errors.hpp"

namespace sagnn::ckpt {

inline constexpr std::array<char, 8> kMagic = {'S', 'A', 'G', 'N',
                                               'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kByteOrderProbe = 0x01020304u;
inline constexpr const char* kEndSection = "end";

class Serializer {
 public:
  /// Writes the format header immediately.
  explicit Serializer(std::ostream& out);

  /// Start buffering a named section. Sections cannot nest.
  void begin_section(const std::string& name);
  /// Flush the buffered section (header + payload + CRC) to the stream.
  void end_section();
  /// Write the end-marker section. Call exactly once, after the last
  /// section.
  void finish();

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);

  template <typename T, typename WriteOne>
  void write_vector(const std::vector<T>& v, WriteOne write_one) {
    write_u64(v.size());
    for (const T& x : v) write_one(*this, x);
  }

 private:
  void put_bytes(const void* data, std::size_t len);
  void raw_u32(std::ostream& os, std::uint32_t v);
  void raw_u64(std::ostream& os, std::uint64_t v);

  std::ostream& out_;
  std::string buffer_;  ///< payload of the open section
  std::string section_name_;
  bool in_section_ = false;
};

class Deserializer {
 public:
  /// Reads and validates magic, version, and byte-order probe.
  explicit Deserializer(std::istream& in);

  /// Load the next section, which must be named `name` (throws
  /// CheckpointFormatError otherwise, CheckpointTruncatedError if the
  /// stream ends early, CheckpointCrcError on payload corruption).
  void enter_section(const std::string& name);
  /// Peek the name of the next section without consuming its payload
  /// checks; returns "end" at the trailer. Used to branch on optional
  /// sections.
  const std::string& peek_section();
  /// Finish the current section; throws CheckpointFormatError if payload
  /// bytes remain unread (a reader/writer disagreement, not corruption —
  /// CRC already passed).
  void leave_section();
  /// Consume the next section WITHOUT interpreting its payload (the CRC is
  /// still verified, so damage in a skipped section is detected); returns
  /// the skipped section's name. Used by readers that want only a subset
  /// of a trainer's sections (serve/ModelLoader) and must stay robust to
  /// mode-specific sections they do not know. Refuses to skip the end
  /// marker.
  std::string skip_section();
  /// Consume the end marker; throws if the stream holds something else.
  void finish();

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();

  template <typename T, typename ReadOne>
  std::vector<T> read_vector(ReadOne read_one) {
    const std::uint64_t n = read_u64();
    check_remaining(n);  // each element is >= 1 byte: cheap sanity bound
    std::vector<T> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_one(*this));
    return v;
  }

  /// Name of the section currently being read (for error reporting in
  /// higher-level readers).
  const std::string& section_name() const { return section_name_; }

  /// Unread bytes left in the current section's payload. Readers that
  /// allocate based on counts they just read (matrix shapes, slot counts)
  /// must bound the allocation against this first, so a corrupt count is
  /// a typed error instead of a giant allocation.
  std::uint64_t remaining() const {
    return in_section_ ? payload_.size() - cursor_ : 0;
  }

 private:
  /// Read the header of the next section into (pending_name_,
  /// pending_len_) if not already peeked.
  void load_header();
  /// Read + CRC-check the pending section's payload into payload_.
  void load_body();
  /// Throw CheckpointTruncatedError unless `n` more payload bytes exist.
  void check_remaining(std::uint64_t n) const;
  const char* take_bytes(std::size_t len);
  std::uint32_t raw_u32(const char* context);
  std::uint64_t raw_u64(const char* context);

  std::istream& in_;
  std::string section_name_;  ///< section whose payload is loaded
  std::string payload_;
  std::size_t cursor_ = 0;
  bool in_section_ = false;

  std::string pending_name_;  ///< peeked-but-not-entered section header
  std::uint64_t pending_len_ = 0;
  bool header_loaded_ = false;
};

}  // namespace sagnn::ckpt
