#include "ckpt/crc32.hpp"

#include <array>

namespace sagnn::ckpt {

namespace {
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
constexpr auto kTable = make_table();
}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_update(0, data, len);
}

}  // namespace sagnn::ckpt
