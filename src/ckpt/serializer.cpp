#include "ckpt/serializer.hpp"

#include <bit>
#include <istream>
#include <limits>
#include <ostream>

#include "ckpt/crc32.hpp"

namespace sagnn::ckpt {

// ---------------------------------------------------------------- writer

Serializer::Serializer(std::ostream& out) : out_(out) {
  out_.write(kMagic.data(), kMagic.size());
  raw_u32(out_, kVersion);
  raw_u32(out_, kByteOrderProbe);
  SAGNN_REQUIRE(out_.good(), "checkpoint stream not writable");
}

void Serializer::raw_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  os.write(b, 4);
}

void Serializer::raw_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  os.write(b, 8);
}

void Serializer::begin_section(const std::string& name) {
  SAGNN_REQUIRE(!in_section_, "checkpoint sections cannot nest");
  SAGNN_REQUIRE(!name.empty() && name != kEndSection,
                "invalid checkpoint section name: '" + name + "'");
  section_name_ = name;
  buffer_.clear();
  in_section_ = true;
}

void Serializer::end_section() {
  SAGNN_REQUIRE(in_section_, "end_section without begin_section");
  raw_u32(out_, static_cast<std::uint32_t>(section_name_.size()));
  out_.write(section_name_.data(),
             static_cast<std::streamsize>(section_name_.size()));
  raw_u64(out_, buffer_.size());
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  raw_u32(out_, crc32(buffer_.data(), buffer_.size()));
  SAGNN_REQUIRE(out_.good(),
                "checkpoint stream failed while writing section '" +
                    section_name_ + "'");
  in_section_ = false;
}

void Serializer::finish() {
  SAGNN_REQUIRE(!in_section_, "finish() inside an open section");
  const std::string end = kEndSection;
  raw_u32(out_, static_cast<std::uint32_t>(end.size()));
  out_.write(end.data(), static_cast<std::streamsize>(end.size()));
  raw_u64(out_, 0);
  raw_u32(out_, crc32(nullptr, 0));
  out_.flush();
  SAGNN_REQUIRE(out_.good(), "checkpoint stream failed while finishing");
}

void Serializer::put_bytes(const void* data, std::size_t len) {
  SAGNN_REQUIRE(in_section_, "checkpoint writes must happen inside a section");
  buffer_.append(static_cast<const char*>(data), len);
}

void Serializer::write_u8(std::uint8_t v) { put_bytes(&v, 1); }

void Serializer::write_u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  put_bytes(b, 4);
}

void Serializer::write_u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  put_bytes(b, 8);
}

void Serializer::write_i32(std::int32_t v) {
  write_u32(static_cast<std::uint32_t>(v));
}

void Serializer::write_i64(std::int64_t v) {
  write_u64(static_cast<std::uint64_t>(v));
}

void Serializer::write_f32(float v) { write_u32(std::bit_cast<std::uint32_t>(v)); }

void Serializer::write_f64(double v) { write_u64(std::bit_cast<std::uint64_t>(v)); }

void Serializer::write_string(const std::string& s) {
  write_u64(s.size());
  put_bytes(s.data(), s.size());
}

// ---------------------------------------------------------------- reader

Deserializer::Deserializer(std::istream& in) : in_(in) {
  std::array<char, 8> magic{};
  in_.read(magic.data(), magic.size());
  if (in_.gcount() != static_cast<std::streamsize>(magic.size())) {
    throw CheckpointTruncatedError("header");
  }
  if (magic != kMagic) {
    throw CheckpointFormatError("bad magic — not a SAGNN checkpoint");
  }
  const std::uint32_t version = raw_u32("header");
  if (version != kVersion) {
    throw CheckpointFormatError("unsupported checkpoint version " +
                                std::to_string(version) + " (this build reads " +
                                std::to_string(kVersion) + ")");
  }
  const std::uint32_t probe = raw_u32("header");
  if (probe != kByteOrderProbe) {
    throw CheckpointFormatError(
        "byte-order probe mismatch — checkpoint written on an "
        "incompatible-endianness host");
  }
}

std::uint32_t Deserializer::raw_u32(const char* context) {
  char b[4];
  in_.read(b, 4);
  if (in_.gcount() != 4) throw CheckpointTruncatedError(context);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t Deserializer::raw_u64(const char* context) {
  char b[8];
  in_.read(b, 8);
  if (in_.gcount() != 8) throw CheckpointTruncatedError(context);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

void Deserializer::load_header() {
  if (header_loaded_) return;
  const std::uint32_t name_len = raw_u32("section header");
  // A section name is a short ASCII identifier; a giant length here means
  // the stream is desynchronized or corrupt, not a real name.
  if (name_len == 0 || name_len > 256) {
    throw CheckpointFormatError("implausible section-name length " +
                                std::to_string(name_len));
  }
  pending_name_.resize(name_len);
  in_.read(pending_name_.data(), name_len);
  if (in_.gcount() != static_cast<std::streamsize>(name_len)) {
    throw CheckpointTruncatedError("section header");
  }
  pending_len_ = raw_u64(pending_name_.c_str());
  header_loaded_ = true;
}

const std::string& Deserializer::peek_section() {
  SAGNN_REQUIRE(!in_section_, "peek_section inside an open section");
  load_header();
  return pending_name_;
}

void Deserializer::enter_section(const std::string& name) {
  SAGNN_REQUIRE(!in_section_, "checkpoint sections cannot nest");
  load_header();
  if (pending_name_ != name) {
    throw CheckpointFormatError("expected section '" + name + "', found '" +
                                pending_name_ + "'");
  }
  load_body();
  section_name_ = pending_name_;
  cursor_ = 0;
  in_section_ = true;
  header_loaded_ = false;
}

void Deserializer::load_body() {
  // The length field is outside the payload CRC, so it can be damaged on
  // its own: read in bounded chunks instead of trusting it for one big
  // allocation — a corrupt huge length hits end-of-stream after at most
  // one extra chunk and reports as truncation, never bad_alloc.
  constexpr std::uint64_t kChunk = 1u << 20;
  payload_.clear();
  for (std::uint64_t left = pending_len_; left > 0;) {
    const auto take = static_cast<std::size_t>(std::min(left, kChunk));
    const std::size_t old_size = payload_.size();
    payload_.resize(old_size + take);
    in_.read(payload_.data() + old_size, static_cast<std::streamsize>(take));
    if (in_.gcount() != static_cast<std::streamsize>(take)) {
      throw CheckpointTruncatedError(pending_name_);
    }
    left -= take;
  }
  const std::uint32_t stored = raw_u32(pending_name_.c_str());
  const std::uint32_t actual = crc32(payload_.data(), payload_.size());
  if (stored != actual) {
    throw CheckpointCrcError(pending_name_, stored, actual);
  }
}

std::string Deserializer::skip_section() {
  SAGNN_REQUIRE(!in_section_, "skip_section inside an open section");
  load_header();
  if (pending_name_ == kEndSection) {
    throw CheckpointFormatError("cannot skip the end marker");
  }
  load_body();  // still CRC-checks: damage in a skipped section is detected
  header_loaded_ = false;
  return pending_name_;
}

void Deserializer::leave_section() {
  SAGNN_REQUIRE(in_section_, "leave_section without enter_section");
  if (cursor_ != payload_.size()) {
    throw CheckpointFormatError(
        "section '" + section_name_ + "' has " +
        std::to_string(payload_.size() - cursor_) + " unread trailing bytes");
  }
  in_section_ = false;
}

void Deserializer::finish() {
  SAGNN_REQUIRE(!in_section_, "finish() inside an open section");
  load_header();
  if (pending_name_ != kEndSection) {
    throw CheckpointFormatError("expected end marker, found section '" +
                                pending_name_ + "'");
  }
}

void Deserializer::check_remaining(std::uint64_t n) const {
  if (!in_section_ || payload_.size() - cursor_ < n) {
    throw CheckpointTruncatedError(in_section_ ? section_name_
                                               : std::string("header"));
  }
}

const char* Deserializer::take_bytes(std::size_t len) {
  check_remaining(len);
  const char* p = payload_.data() + cursor_;
  cursor_ += len;
  return p;
}

std::uint8_t Deserializer::read_u8() {
  return static_cast<std::uint8_t>(*take_bytes(1));
}

std::uint32_t Deserializer::read_u32() {
  const char* b = take_bytes(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::uint64_t Deserializer::read_u64() {
  const char* b = take_bytes(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

std::int32_t Deserializer::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

std::int64_t Deserializer::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

float Deserializer::read_f32() { return std::bit_cast<float>(read_u32()); }

double Deserializer::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string Deserializer::read_string() {
  const std::uint64_t len = read_u64();
  const char* b = take_bytes(static_cast<std::size_t>(len));
  return std::string(b, static_cast<std::size_t>(len));
}

}  // namespace sagnn::ckpt
