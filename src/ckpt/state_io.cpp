#include "ckpt/state_io.hpp"

namespace sagnn::ckpt {

void write_matrix(Serializer& s, const Matrix& m) {
  s.write_i32(m.n_rows());
  s.write_i32(m.n_cols());
  const real_t* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) s.write_f32(p[i]);
}

Matrix read_matrix(Deserializer& d) {
  const vid_t rows = d.read_i32();
  const vid_t cols = d.read_i32();
  if (rows < 0 || cols < 0) {
    throw CheckpointFormatError("negative matrix shape in section '" +
                                d.section_name() + "'");
  }
  // Division keeps the comparison overflow-proof for any corrupt count.
  const std::uint64_t cells =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  if (cells > d.remaining() / sizeof(real_t)) {
    throw CheckpointFormatError(
        "section '" + d.section_name() + "' declares a " +
        std::to_string(rows) + " x " + std::to_string(cols) +
        " matrix but holds only " + std::to_string(d.remaining()) + " bytes");
  }
  std::vector<real_t> data(static_cast<std::size_t>(cells));
  for (real_t& v : data) v = d.read_f32();
  return Matrix(rows, cols, std::move(data));
}

void write_csr(Serializer& s, const CsrMatrix& m) {
  s.write_i32(m.n_rows());
  s.write_i32(m.n_cols());
  s.write_u64(m.row_ptr().size());
  for (eid_t v : m.row_ptr()) s.write_i64(v);
  s.write_u64(m.col_idx().size());
  for (vid_t v : m.col_idx()) s.write_i32(v);
  s.write_u64(m.vals().size());
  for (real_t v : m.vals()) s.write_f32(v);
}

CsrMatrix read_csr(Deserializer& d) {
  const vid_t rows = d.read_i32();
  const vid_t cols = d.read_i32();
  auto row_ptr = d.read_vector<eid_t>([](Deserializer& x) { return x.read_i64(); });
  auto col_idx = d.read_vector<vid_t>([](Deserializer& x) { return x.read_i32(); });
  auto vals = d.read_vector<real_t>([](Deserializer& x) { return x.read_f32(); });
  try {
    // The validating constructor rejects any structural corruption the CRC
    // let through (e.g. a checkpoint written by buggy code).
    return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                     std::move(vals));
  } catch (const Error& e) {
    throw CheckpointFormatError("invalid CSR in section '" + d.section_name() +
                                "': " + e.what());
  }
}

void write_rng(Serializer& s, const Rng& rng) {
  for (std::uint64_t v : rng.save_state()) s.write_u64(v);
}

Rng read_rng(Deserializer& d) {
  std::array<std::uint64_t, 5> state{};
  for (std::uint64_t& v : state) v = d.read_u64();
  Rng rng;
  rng.load_state(state);
  return rng;
}

void write_adam(Serializer& s, const Adam& adam) {
  s.write_u64(adam.moments().size());
  for (const Adam::Moments& mom : adam.moments()) {
    s.write_i64(mom.t);
    write_matrix(s, mom.m);
    write_matrix(s, mom.v);
  }
}

void read_adam_into(Deserializer& d, Adam& adam) {
  const std::uint64_t n = d.read_u64();
  // Each slot is at least t (8 bytes) + two matrix headers: bound the
  // allocation before trusting a possibly-corrupt count (division, so a
  // near-2^64 count cannot wrap the comparison).
  if (n > d.remaining() / 8) {
    throw CheckpointFormatError("section '" + d.section_name() +
                                "' declares " + std::to_string(n) +
                                " optimizer slots but is too small");
  }
  std::vector<Adam::Moments> slots(static_cast<std::size_t>(n));
  for (Adam::Moments& mom : slots) {
    mom.t = d.read_i64();
    mom.m = read_matrix(d);
    mom.v = read_matrix(d);
  }
  adam.set_moments(std::move(slots));
}

void write_model(Serializer& s, const GcnModel& model) {
  s.write_i32(model.n_layers());
  for (int l = 0; l < model.n_layers(); ++l) {
    s.write_u8(model.layer(l).has_relu() ? 1 : 0);
    write_matrix(s, model.layer(l).weights());
  }
}

void read_model_into(Deserializer& d, GcnModel& model) {
  const int layers = d.read_i32();
  if (layers != model.n_layers()) {
    throw CheckpointMismatchError(
        "section '" + d.section_name() + "': checkpoint model has " +
        std::to_string(layers) + " layers, configuration builds " +
        std::to_string(model.n_layers()));
  }
  for (int l = 0; l < layers; ++l) {
    const bool relu = d.read_u8() != 0;
    Matrix w = read_matrix(d);
    GcnLayer& layer = model.layer(l);
    if (relu != layer.has_relu() || w.n_rows() != layer.weights().n_rows() ||
        w.n_cols() != layer.weights().n_cols()) {
      throw CheckpointMismatchError(
          "section '" + d.section_name() + "': layer " + std::to_string(l) +
          " shape/activation disagrees with the configured model");
    }
    layer.weights_mut() = std::move(w);
  }
}

void write_metrics(Serializer& s, const std::vector<EpochMetrics>& metrics) {
  s.write_u64(metrics.size());
  for (const EpochMetrics& m : metrics) {
    s.write_f64(m.loss);
    s.write_f64(m.train_accuracy);
  }
}

std::vector<EpochMetrics> read_metrics(Deserializer& d) {
  return d.read_vector<EpochMetrics>([](Deserializer& x) {
    EpochMetrics m;
    m.loss = x.read_f64();
    m.train_accuracy = x.read_f64();
    return m;
  });
}

void write_traffic(Serializer& s, const TrafficRecorder& traffic) {
  const auto names = traffic.phase_names();
  s.write_i32(traffic.p());
  s.write_u64(names.size());
  for (const std::string& name : names) {
    const PhaseTraffic tr = traffic.phase(name);
    s.write_string(name);
    s.write_u64(tr.bytes.size());
    for (std::uint64_t v : tr.bytes) s.write_u64(v);
    for (std::uint64_t v : tr.msgs) s.write_u64(v);
  }
}

TrafficRecorder read_traffic(Deserializer& d) {
  const int p = d.read_i32();
  if (p < 0) {
    throw CheckpointFormatError("negative rank count in section '" +
                                d.section_name() + "'");
  }
  TrafficRecorder traffic(p);
  const std::uint64_t n_phases = d.read_u64();
  for (std::uint64_t i = 0; i < n_phases; ++i) {
    const std::string name = d.read_string();
    const std::uint64_t cells = d.read_u64();
    if (cells != static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p)) {
      throw CheckpointFormatError("phase '" + name + "' in section '" +
                                  d.section_name() +
                                  "' has wrong counter-matrix size");
    }
    // byte + msg counters, 8 bytes each; division so p near 2^30 (cells
    // near 2^60) cannot wrap the bound and reach the allocation below.
    if (cells > d.remaining() / 16) {
      throw CheckpointFormatError("section '" + d.section_name() +
                                  "' is too small for phase '" + name +
                                  "' at p=" + std::to_string(p));
    }
    PhaseTraffic tr(p);
    for (std::uint64_t& v : tr.bytes) v = d.read_u64();
    for (std::uint64_t& v : tr.msgs) v = d.read_u64();
    traffic.set_phase(name, std::move(tr));
  }
  return traffic;
}

void write_train_config(Serializer& s, const TrainConfig& cfg) {
  // gcn
  s.write_u64(cfg.gcn.dims.size());
  for (vid_t dim : cfg.gcn.dims) s.write_i32(dim);
  s.write_f32(cfg.gcn.learning_rate);
  s.write_f32(cfg.gcn.weight_decay);
  s.write_f32(cfg.gcn.dropout);
  s.write_i32(cfg.gcn.epochs);
  s.write_u64(cfg.gcn.seed);
  // mode / geometry
  s.write_string(cfg.strategy);
  s.write_i32(cfg.threads);
  s.write_i32(cfg.p);
  s.write_i32(cfg.c);
  s.write_string(cfg.partitioner);
  s.write_f64(cfg.partitioner_options.epsilon);
  s.write_u8(cfg.partitioner_options.balance_edges ? 1 : 0);
  s.write_i32(cfg.partitioner_options.refine_passes);
  s.write_u64(cfg.partitioner_options.seed);
  s.write_i32(cfg.partitioner_options.coarsen_target_per_part);
  // cost model
  s.write_f64(cfg.cost_model.alpha_intra);
  s.write_f64(cfg.cost_model.alpha_inter);
  s.write_f64(cfg.cost_model.beta_intra);
  s.write_f64(cfg.cost_model.beta_inter);
  s.write_i32(cfg.cost_model.gpus_per_node);
  s.write_f64(cfg.cost_model.compute_scale);
  s.write_f64(cfg.cost_model.volume_scale);
  s.write_i32(cfg.pipeline_chunks);
  // sampling
  s.write_i32(cfg.sampling.batch_size);
  s.write_u64(cfg.sampling.fanouts.size());
  for (vid_t f : cfg.sampling.fanouts) s.write_i32(f);
  s.write_u64(cfg.sampling.seed);
}

TrainConfig read_train_config(Deserializer& d) {
  TrainConfig cfg;
  cfg.gcn.dims = d.read_vector<vid_t>([](Deserializer& x) { return x.read_i32(); });
  cfg.gcn.learning_rate = d.read_f32();
  cfg.gcn.weight_decay = d.read_f32();
  cfg.gcn.dropout = d.read_f32();
  cfg.gcn.epochs = d.read_i32();
  cfg.gcn.seed = d.read_u64();
  cfg.strategy = d.read_string();
  cfg.threads = d.read_i32();
  cfg.p = d.read_i32();
  cfg.c = d.read_i32();
  cfg.partitioner = d.read_string();
  cfg.partitioner_options.epsilon = d.read_f64();
  cfg.partitioner_options.balance_edges = d.read_u8() != 0;
  cfg.partitioner_options.refine_passes = d.read_i32();
  cfg.partitioner_options.seed = d.read_u64();
  cfg.partitioner_options.coarsen_target_per_part = d.read_i32();
  cfg.cost_model.alpha_intra = d.read_f64();
  cfg.cost_model.alpha_inter = d.read_f64();
  cfg.cost_model.beta_intra = d.read_f64();
  cfg.cost_model.beta_inter = d.read_f64();
  cfg.cost_model.gpus_per_node = d.read_i32();
  cfg.cost_model.compute_scale = d.read_f64();
  cfg.cost_model.volume_scale = d.read_f64();
  cfg.pipeline_chunks = d.read_i32();
  cfg.sampling.batch_size = d.read_i32();
  cfg.sampling.fanouts =
      d.read_vector<vid_t>([](Deserializer& x) { return x.read_i32(); });
  cfg.sampling.seed = d.read_u64();
  return cfg;
}

void write_dataset_fingerprint(Serializer& s, const Dataset& ds) {
  s.write_string(ds.name);
  s.write_i32(ds.n_vertices());
  s.write_i32(ds.n_features());
  s.write_i32(ds.n_classes);
  s.write_i64(ds.n_edges());
}

void check_dataset_fingerprint(Deserializer& d, const Dataset& ds) {
  const std::string name = d.read_string();
  const vid_t n = d.read_i32();
  const vid_t f = d.read_i32();
  const vid_t classes = d.read_i32();
  const eid_t nnz = d.read_i64();
  if (name != ds.name || n != ds.n_vertices() || f != ds.n_features() ||
      classes != ds.n_classes || nnz != ds.n_edges()) {
    throw CheckpointMismatchError(
        "section '" + d.section_name() + "': checkpoint was taken on dataset '" +
        name + "' (n=" + std::to_string(n) + ", f=" + std::to_string(f) +
        ", classes=" + std::to_string(classes) + ", nnz=" + std::to_string(nnz) +
        "), restore targets '" + ds.name + "' (n=" +
        std::to_string(ds.n_vertices()) + ", f=" +
        std::to_string(ds.n_features()) + ", classes=" +
        std::to_string(ds.n_classes) + ", nnz=" + std::to_string(ds.n_edges()) +
        ")");
  }
}

void write_prologue(Serializer& s, const TrainConfig& cfg, const Dataset& ds) {
  s.begin_section("config");
  write_train_config(s, cfg);
  s.end_section();
  s.begin_section("dataset");
  write_dataset_fingerprint(s, ds);
  s.end_section();
}

void write_progress(Serializer& s, int epoch,
                    const std::vector<EpochMetrics>& metrics) {
  s.begin_section("progress");
  s.write_i32(epoch);
  write_metrics(s, metrics);
  s.end_section();
}

int read_progress(Deserializer& d, std::vector<EpochMetrics>& metrics) {
  d.enter_section("progress");
  const int epoch = d.read_i32();
  metrics = read_metrics(d);
  d.leave_section();
  if (epoch < 0 || metrics.size() != static_cast<std::size_t>(epoch)) {
    throw CheckpointFormatError(
        "section 'progress': epoch count " + std::to_string(epoch) +
        " disagrees with trajectory length " + std::to_string(metrics.size()));
  }
  return epoch;
}

}  // namespace sagnn::ckpt
